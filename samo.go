// Package samo is the public API of the SAMO reproduction — Sparsity-aware
// Memory Optimization for large-model training (Singh & Bhatele, IPDPS 2023).
//
// The workflow mirrors the paper:
//
//  1. Build a model (package nn via the re-exported builders, or any stack
//     of nn.Layer values).
//  2. Prune it — Magnitude, Random or the Early-Bird algorithm the paper
//     uses — obtaining per-layer index sets of surviving parameters.
//  3. Create a State in ModeSAMO: θ16 stays dense for fast kernels, every
//     other model-state tensor is stored compressed on a shared linearized
//     index.
//  4. Train — serially with Trainer, or with the hybrid data + inter-layer
//     parallel engine (Train), which also compresses the data-parallel
//     gradient all-reduce.
//
// The companion Summit performance simulator (Estimate, PlanDevices) answers
// "what would this buy me at N GPUs" with the paper's calibrated hardware
// model, and package-level memory functions expose the §III-D closed forms.
//
// # Compute substrate
//
// Every CPU kernel — the blocked GEMM micro-kernels behind MatMul and its
// transposed variants, im2col, fp16 conversion, and the sparse
// compress/expand and SpMM/SDDMM paths — executes on one persistent,
// process-wide worker pool (internal/parallel) rather than spawning
// goroutines per call. SetWorkers bounds the per-call fan-out atomically
// and is safe to call mid-run; the pool itself is sized at GOMAXPROCS once.
//
// The dense GEMM family — the kernels the paper's dense-compute argument
// rests on — runs a unified BLIS-style shared-pack pipeline: each kc×nc
// panel of B is packed once per call by the workers cooperatively, then
// swept by all of them, instead of once per worker (which duplicated
// memory traffic exactly when rows-per-worker was small, the FC backward
// regime). All three family members dispatch through it — the forward
// product and the transposed backward products MatMulT (C = A·Bᵀ, input
// gradient) and TMatMul (C = Aᵀ·B, weight gradient) — sharing the sweep
// kernels and differing only in packing: MatMulT transpose-packs B
// panels, TMatMul transpose-packs A blocks. A tiny per-shape autotuner,
// bucketed by (op variant, ceil-log2 shape), picks among the blocking
// candidates — shared-pack panels at three aspect ratios, a pack-free
// direct-B kernel for very small forward m, an mc row-blocked variant for
// tall m, and two v3 strip kernels that pack panels in 8-wide k-major
// column strips and sweep them with eight register accumulators per C row
// — by timing the first few real calls on each bucket; every candidate
// produces bitwise-identical output at every worker count, so the choice
// can never perturb training. Decisions persist by default under the user
// cache dir (samo/gemm_tune.json) via a debounced background save and are
// pre-loaded at startup; the persisted records carry the variant (omitted
// for the forward product, so older tables load unchanged; records from
// unknown future variants are skipped). SAMO_GEMM_TUNE overrides the path
// ("off" disables); SaveTuneTable/LoadTuneTable give explicit control,
// and FlushTuneTable persists synchronously for short-lived processes
// that would exit inside the background saver's coalescing window.
//
// The conv backward lowering (Col2Im), previously the last serial kernel
// in the stack, runs as a parallel gather over disjoint (image, input-row)
// strips: each worker visits the contributions to its rows in the serial
// scatter's exact per-element order, so the result is bitwise-identical to
// the serial reference at every worker count — resizing the pool can never
// change training results (pinned by the col2im determinism goldens and
// the FuzzCol2ImAdjoint fuzz target).
//
// # Sparse execution
//
// Pruned fully connected layers can exploit their sparsity during
// training, not just in storage: Sparsify replaces pruned Linear layers
// with first-class sparse layers (nn.SparseLinear) whose weights live in
// CSR. The forward pass is a transposed-CSR SpMM (y = x·Wᵀ against the
// (out,in) pattern), the input gradient is the same kernel against a
// cached transpose whose values refresh through a precomputed permutation,
// and the weight gradient is SDDMM sampled at the surviving pattern —
// gradient entries for pruned weights are never materialized, so the whole
// model state (capture, all-reduce, optimizer, and under sparse execution
// θ16 itself) is sized fφ. Every sparse kernel gives each output element a
// single owning worker and a fixed accumulation order, so results are
// bitwise-identical at every worker count, matching the GEMM/Col2Im
// contract (pinned by determinism goldens and the FuzzSpMMInto/
// FuzzSpMMTInto/FuzzSDDMMInto targets).
//
// Because sparse kernels only win above a density-dependent threshold, a
// density-aware crossover — an autotuner keyed by (shape bucket, density
// band) — times sparse against dense-masked execution on the first calls
// of each bucket and freezes the winner, so low-sparsity layers fall back
// to the dense GEMM and never regress; a frozen bucket never re-probes
// (the two paths differ in summation order, so flipping mid-training would
// perturb results). SAMO_SPARSE_XOVER=sparse|dense pins the path
// process-wide; scripts/bench.sh gates the ≥90%-sparsity points of the
// BenchmarkSpMM matrix at MIN_SPMM_SPEEDUP. Like the GEMM blockings,
// frozen crossover decisions persist under the user cache dir
// (samo/sparse_xover.json, next to gemm_tune.json; SAMO_SPARSE_XOVER_TABLE
// overrides the path, "off" disables) via the same debounced background
// save, startup pre-load and corrupt-file quarantine — so a serving
// process inherits its training run's execution paths instead of spending
// its first requests probing; FlushXoverTable persists synchronously at
// cmd exit.
//
// # Serving
//
// The training stack has a forward-only twin for inference. Every layer's
// eval forward is contractually cache-free, and Model.Infer /
// Model.InferWindowed run it against arenas sized to the forward working
// set — the windowed runner ping-pongs activations between two arenas so
// peak residency is one layer's input plus its output, at 0 allocs/op in
// steady state. InferenceState is the state-side counterpart: it holds
// fp16-grid resident weights only — no gradients, no master θ32 copies, no
// optimizer moments, no reduce buffers — so its Memory() ledger is the 2φ
// θ16 line alone (InferenceBreakdown), while sharing ModelState's
// fingerprint, so a training checkpoint loads straight into inference mode
// through internal/ckpt with tag, fingerprint and CRC verification (and
// its Load is transactional like ModelState's). Inferencer owns the two
// arenas for a single-goroutine serving loop.
//
// cmd/samo-serve puts it behind dynamic micro-batching (internal/serve):
// concurrent single-sample requests gather into padded power-of-two
// batches keyed like the GEMM autotuner's buckets, a bounded admission
// queue converts overload into immediate backpressure (ErrOverloaded), and
// Close drains gracefully and flushes both autotuner tables. The engine's
// determinism contract is batch-composition independence — under the
// default fixed-bucket padding a response's bits depend only on the
// sample, never on the traffic sharing its batch — and its load-test
// harness records p50/p99 latency and throughput to BENCH_serving.json.
//
// # Fault tolerance
//
// The parallel engine treats rank failure as a tested scenario, not an
// exception. The communication fabric carries a poison/abort model: when a
// rank fails (an injected FaultPlan in tests, an engine-detected error, or
// the configurable collective deadline tripping on a stalled peer), the
// fabric is poisoned once and every blocking primitive unwinds promptly
// with a typed RankFailedError or DeadlineError instead of deadlocking.
// Fault injection is deterministic — crash points are keyed to engine
// steps and per-rank collective entry counts, message drop/delay schedules
// to fixed counters — so every failure scenario replays identically.
//
// Checkpointing is crash-consistent (internal/ckpt): each pipeline stage's
// model state is saved through temp-file+fsync+rename with a JSON manifest
// carrying the step, a structural fingerprint and the data CRC, verified
// by read-back; a step is durable only when every stage's shard verifies,
// and a corrupt latest checkpoint falls back to the previous one with a
// surfaced warning. On a fabric abort, Train tears the fabric down
// (draining its pooled buffers), rebuilds ranks, reloads the newest
// durable checkpoint and replays the remaining batches — the recovered
// run's losses and θ32 are bitwise-identical to an uninterrupted run
// (pinned by crash-at-every-step goldens under -race). ParallelConfig
// wires it up: CheckpointDir/Every/Keep, Resume, CollectiveDeadline,
// MaxRestarts and the test-only Fault plan.
//
// # Transport
//
// The fabric is split from the wire: Fabric owns the failure domain and the
// collective algorithms (ring all-reduce, ordered reduce, broadcast,
// barrier), while a pluggable Transport moves the bytes. The default is the
// in-process channel mesh (goroutine ranks, zero-copy pooled buffers); the
// TCP transport (internal/comm/tcp) runs the same fabric across OS
// processes, each hosting a contiguous block of ranks. Frames are
// length-prefixed with a one-byte kind (p2p data, collective chunk, poison),
// floats cross the wire bit-preserved, and wire buffers recycle through
// power-of-two capacity classes so steady-state sends are allocation-free.
// Connection errors map onto the same poison path as local failures — a dead
// peer surfaces as RankFailedError, a stalled socket trips the
// CollectiveDeadline backstop as DeadlineError — so a killed peer process is
// just another recoverable abort: the survivor rebuilds the mesh (waiting up
// to the dial timeout for the peer to be restarted) and resumes from the
// newest durable checkpoint. A conformance suite pins collectives
// bitwise-identical across transports, so a multi-process run reproduces the
// single-process run exactly. Select it with ParallelConfig.Net
// (NetConfig{Peers, Proc, DialTimeout}) or samo-train's
// -transport tcp -peers host:port,host:port -proc N flags.
//
// # Overlapped communication
//
// The data-parallel gradient all-reduce can run BEHIND the backward pass
// instead of as a barrier after it. Gradients are laid out in size-bounded
// buckets packed in backward order (core.ReduceBuckets): each parameter's
// ∇θ16 aliases a segment of exactly one contiguous slab, so gradient
// capture writes straight into the reduce payload, and the engine —
// via a per-layer completion hook on the backward pass — launches bucket
// i's all-reduce on an async lane (comm.AllReduceAsync and a per-rank
// serial worker goroutine) the moment the final microbatch's backward
// crosses the bucket's lowest layer, while earlier layers are still
// computing. The engine drains every in-flight handle before the
// end-of-batch consensus, so the fabric's FIFO matching and fault
// protocol are untouched.
//
// The determinism contract survives: the bucket plan is a pure function
// of model structure and the size bound, both the overlapped and the
// serial path consume the identical plan-ordered buffer list, and the
// async lane executes launches serially in order — so overlap-on vs
// overlap-off is bitwise-identical, at every worker count, on both
// transports, under fault injection (pinned by a worker-sweep suite and a
// crash-mid-overlapped-reduce recovery golden). Enable it with
// ParallelConfig.OverlapReduce (samo-train -overlap); per-collective
// exposed wall time — full duration for synchronous calls, only the
// un-hidden blocking tail for overlapped ones — is tracked per rank and
// surfaced via the fabric's stats and samo-train's final report, and
// scripts/bench.sh records the serial-vs-overlapped step-time matrix in
// BENCH_comm.json (overlap_step_speedup; the simulator's overlap-aware
// cost model, simulate.RunWithOptions, is validated against it).
//
// # Pruning schedules
//
// Besides one-shot pruning before training, the sparsity can be reached
// GRADUALLY during training with Zhu & Gupta's cubic schedule
// (PruneSchedule): starting from an initial sparsity, prune events every
// Frequency steps between BeginStep and EndStep remove the
// smallest-magnitude surviving weights — per layer or by global ranking —
// until the final sparsity is reached, letting the network adapt between
// events. The defining property of the implementation is that every event
// shrinks the existing storage IN PLACE: CSR patterns and their cached
// transposes, the compressed θ32/∇θ32 vectors, optimizer moments and the
// bucketed all-reduce slabs all compact leftward inside their original
// backing arrays, so NNZ only ever decreases, memory and communication
// volume ratchet down with the schedule, and training between events stays
// allocation-free. Selection reads the θ32 master weights after the global
// overflow consensus, where every data-parallel replica is
// bitwise-identical — so all replicas (and the masked-dense reference
// mode) shrink to the exact same pattern with no extra communication, at
// any worker count, on either transport, with overlap on or off.
// Checkpoints carry their pattern: one written after an event loads only
// into states whose pattern it is a subset of (shrinking them on load),
// and crash recovery around a prune event is bitwise-identical to an
// uninterrupted run. Drive it with NewGradualPruner (single-process,
// call MaybePrune after each trainer step) or ParallelConfig.PruneSchedule
// (samo-train's -prune-* flags); examples/scaling_study -mode schedule
// sweeps schedules into an accuracy-proxy vs speedup frontier.
//
// Steady-state training steps are allocation-free across every model
// family — MLP, CNN (im2col conv, batch norm, pooling, residual blocks)
// and GPT (embedding, attention, layer norm, GELU MLP) — as are the fp16
// compress/expand primitives: each trainer or simulated rank owns a
// size-keyed tensor arena that supplies activations, gradients and
// scratch buffers and reclaims them wholesale after the optimizer step;
// layer caches and kernel job descriptors recycle through typed pools,
// and the in-process collectives hand pooled chunk buffers from sender to
// receiver zero-copy (pooled per fabric, in power-of-two capacity classes
// under a hard retention bound). Run scripts/bench.sh to regenerate
// BENCH_kernels.json, the kernel/throughput/allocation baseline the
// benchmarks are tracked against; it fails if the packed or shared-pack
// kernel regresses below 1.5x the seed GEMM on the Figure-1 shapes, or if
// the parallel Col2Im drops below 1.5x the serial scatter on the conv
// backward shapes (on multi-core machines; see MIN_COL2IM_SPEEDUP).
package samo

import (
	"io"

	"github.com/sparse-dl/samo/internal/axonn"
	"github.com/sparse-dl/samo/internal/comm"
	"github.com/sparse-dl/samo/internal/core"
	"github.com/sparse-dl/samo/internal/experiments"
	"github.com/sparse-dl/samo/internal/hw"
	"github.com/sparse-dl/samo/internal/nn"
	"github.com/sparse-dl/samo/internal/optim"
	"github.com/sparse-dl/samo/internal/prune"
	"github.com/sparse-dl/samo/internal/simulate"
	"github.com/sparse-dl/samo/internal/sparse"
	"github.com/sparse-dl/samo/internal/tensor"
)

// Re-exported core types. The aliases make the public surface explicit
// while the implementations live in focused internal packages.
type (
	// Tensor is a dense row-major float32 tensor.
	Tensor = tensor.Tensor
	// RNG is the deterministic generator used for initialization and data.
	RNG = tensor.RNG
	// Model is an ordered stack of layers.
	Model = nn.Model
	// Layer is a differentiable module with explicit forward/backward.
	Layer = nn.Layer
	// PruneResult holds per-layer indices of surviving parameters.
	PruneResult = prune.Result
	// PruneSchedule is a gradual magnitude-pruning schedule (Zhu & Gupta's
	// cubic sparsity ramp) driven during training.
	PruneSchedule = prune.Schedule
	// GradualPruner applies a PruneSchedule to a live State with in-place
	// pattern shrinkage.
	GradualPruner = core.GradualPruner
	// State manages mixed-precision model states, dense or SAMO-compressed.
	State = core.ModelState
	// Trainer drives single-process training through a State.
	Trainer = core.Trainer
	// Mode selects dense or SAMO storage.
	Mode = core.Mode
	// Optimizer is the parameter-update strategy.
	Optimizer = optim.Optimizer
	// Batch is one training batch for the parallel engine.
	Batch = axonn.Batch
	// ParallelConfig describes the Ginter × Gdata hybrid layout.
	ParallelConfig = axonn.Config
	// ParallelResult aggregates a parallel training run.
	ParallelResult = axonn.Result
	// NetConfig selects the TCP transport for multi-process training:
	// Peers lists every process's listen address, Proc is this process's
	// index, and ranks split into contiguous blocks across processes.
	NetConfig = axonn.NetConfig
	// FaultPlan injects deterministic failures into the fabric (tests/chaos).
	FaultPlan = comm.FaultPlan
	// RankFailedError is the typed abort every blocked primitive unwinds
	// with after a rank fails.
	RankFailedError = comm.RankFailedError
	// DeadlineError reports a collective exceeding CollectiveDeadline.
	DeadlineError = comm.DeadlineError
	// Machine is a cluster hardware profile for the simulator.
	Machine = hw.Machine
	// Estimate is one simulated (framework, model, GPU-count) outcome.
	Estimate = simulate.Result
	// MemoryBreakdown itemizes model-state bytes by component.
	MemoryBreakdown = core.MemoryBreakdown
	// InferenceState holds forward-only resident weights (θ16 grid, no
	// gradients or optimizer state) and loads training checkpoints.
	InferenceState = core.InferenceState
	// Inferencer runs cache-free forwards over an InferenceState at
	// 0 allocs/op (single goroutine; serve.Engine adds micro-batching).
	Inferencer = core.Inferencer
)

// Storage modes.
const (
	// ModeDense is ordinary mixed-precision training.
	ModeDense = core.Dense
	// ModeSAMO compresses θ32, ∇θ16, ∇θ32 and optimizer states to the
	// unpruned coordinates (the paper's contribution).
	ModeSAMO = core.SAMO
)

// NewRNG returns a deterministic generator.
func NewRNG(seed uint64) *RNG { return tensor.NewRNG(seed) }

// SetWorkers bounds the kernel worker pool's per-call parallelism (n < 1
// resets to GOMAXPROCS) and returns the previous bound. Safe to call while
// training runs on other goroutines; results do not depend on the worker
// count (work partitioning is static and reductions are single-owner).
func SetWorkers(n int) int { return tensor.SetWorkers(n) }

// SaveTuneTable persists the GEMM autotuner's per-shape blocking
// decisions to a JSON file; LoadTuneTable pre-seeds them so a new process
// (or a benchmark run) skips the probe phase. The choice never affects
// results — every candidate blocking is bitwise-identical — only speed.
func SaveTuneTable(path string) error { return tensor.SaveTuneTable(path) }

// LoadTuneTable pre-seeds the GEMM autotuner from a SaveTuneTable file.
func LoadTuneTable(path string) error { return tensor.LoadTuneTable(path) }

// FlushTuneTable synchronously persists the autotuner's decisions to the
// default tune path (SAMO_GEMM_TUNE, or the user cache dir). The
// background saver debounces writes and cannot run at process exit, so
// short-lived programs — the cmds call this as they return from run() —
// would otherwise lose every blocking decision they probed. A no-op when
// persistence is disabled or when this process has frozen no new decision
// since startup (a table holding only disk-loaded decisions is never
// rewritten, so a stale startup copy cannot clobber a concurrent
// process's newer save).
func FlushTuneTable() error { return tensor.FlushTuneTable() }

// FlushXoverTable is FlushTuneTable's sparse-execution companion: it
// synchronously persists the sparse/dense crossover decisions frozen in
// this process to the default table path (SAMO_SPARSE_XOVER_TABLE, or
// samo/sparse_xover.json under the user cache dir). The same dirty-flag
// discipline applies — a process that froze nothing new writes nothing.
// Unlike the GEMM blockings the two crossover paths are not bitwise
// identical, so persistence also pins execution paths across processes:
// a model served tomorrow runs the paths it trained on today.
func FlushXoverTable() error { return sparse.FlushXoverTable() }

// NewTensor returns a zero-filled tensor with the given shape.
func NewTensor(shape ...int) *Tensor { return tensor.New(shape...) }

// FillNormal fills t with N(0, std²) values from rng.
func FillNormal(t *Tensor, std float64, rng *RNG) { tensor.FillNormal(t, std, rng) }

// --- Model builders ---------------------------------------------------------

// NewMLP builds a multi-layer perceptron with the given layer widths.
func NewMLP(name string, dims []int, rng *RNG) *Model { return nn.BuildMLP(name, dims, rng) }

// NewGPT builds a GPT-style decoder from a config (see GPTConfig).
func NewGPT(cfg GPTConfig, rng *RNG) *Model { return nn.BuildGPT(cfg, rng) }

// GPTConfig describes a GPT-family model.
type GPTConfig = nn.GPTConfig

// The paper's Table I transformer configurations (for accounting and
// simulation; build tiny variants for in-process training).
var (
	GPT3XL   = nn.GPT3XL
	GPT3o2B7 = nn.GPT3_2B7
	GPT3o6B7 = nn.GPT3_6B7
	GPT3o13B = nn.GPT3_13B
)

// NewVGG builds a VGG-style CNN (see nn.BuildVGG for the plan format).
func NewVGG(name string, plan []int, inC, dim, classes int, rng *RNG) *Model {
	return nn.BuildVGG(name, plan, inC, dim, classes, rng)
}

// NewWideResNet builds a WideResNet-style CNN with n blocks per group and
// width multiplier k.
func NewWideResNet(name string, n, k, inC, dim, classes int, rng *RNG) *Model {
	return nn.BuildWideResNet(name, n, k, inC, dim, classes, rng)
}

// --- Pruning ----------------------------------------------------------------

// PruneMagnitude prunes each prunable layer to the target sparsity by
// per-layer magnitude (the uniform pruning the paper's memory model assumes).
func PruneMagnitude(m *Model, sparsity float64) *PruneResult {
	return prune.MagnitudePerLayer(pruneLayers(m), sparsity)
}

// PruneMagnitudeGlobal prunes by global magnitude ranking.
func PruneMagnitudeGlobal(m *Model, sparsity float64) *PruneResult {
	return prune.MagnitudeGlobal(pruneLayers(m), sparsity)
}

// PruneRandom prunes a random subset (control baseline).
func PruneRandom(m *Model, sparsity float64, seed uint64) *PruneResult {
	return prune.Random(pruneLayers(m), sparsity, seed)
}

// NewGradualPruner binds a gradual magnitude-pruning schedule to a live
// training state (see the package's "Pruning schedules" section). Call
// MaybePrune(step) after every trainer step; on schedule events it shrinks
// the state's sparse patterns — and every dependent storage layer — in
// place, on other steps it is a free no-op. The parallel engine drives the
// same machinery via ParallelConfig.PruneSchedule.
func NewGradualPruner(s *State, sched PruneSchedule) (*GradualPruner, error) {
	return core.NewGradualPruner(s, sched)
}

// Sparsify replaces every pruned Linear layer of a model with a
// first-class sparse-execution layer (nn.SparseLinear): CSR weights, SpMM
// forward, SDDMM weight gradient restricted to the surviving pattern, and
// a density-aware crossover that falls back to the masked-dense GEMM where
// sparse kernels would lose. Unconverted layers are shared with the
// original model — train one model or the other, not both. Pin the
// execution path per process with SAMO_SPARSE_XOVER=sparse|dense when
// bitwise reproducibility across machines matters more than speed.
func Sparsify(m *Model, pr *PruneResult) *Model { return nn.Sparsify(m, pr) }

// SetSparseCompute pins every sparse-layer execution decision to "sparse"
// or "dense", or restores per-bucket probing with "auto", returning the
// previous mode. Pinning gives machine-independent numerics (the crossover
// otherwise freezes whichever path times faster here) and probe-free
// timings; SAMO_SPARSE_XOVER sets the initial mode.
func SetSparseCompute(mode string) (prev string, err error) { return sparse.SetXover(mode) }

// EarlyBird is the convergence-tested pruning algorithm the paper uses
// (You et al., ICLR 2020). Call Observe(model) after each training epoch;
// when it returns true, Ticket() holds the pruning result.
type EarlyBird struct{ eb *prune.EarlyBird }

// NewEarlyBird returns an Early-Bird tracker at the target sparsity.
func NewEarlyBird(sparsity float64) *EarlyBird {
	return &EarlyBird{eb: prune.NewEarlyBird(sparsity)}
}

// Observe records the current mask; true means the ticket has converged.
func (e *EarlyBird) Observe(m *Model) bool { return e.eb.Observe(pruneLayers(m)) }

// Ticket returns the converged pruning result (nil before convergence).
func (e *EarlyBird) Ticket() *PruneResult { return e.eb.Ticket() }

// Force draws the ticket immediately from the current parameters.
func (e *EarlyBird) Force(m *Model) *PruneResult { return e.eb.Force(pruneLayers(m)) }

func pruneLayers(m *Model) []prune.Layer {
	var layers []prune.Layer
	for _, e := range m.PruneLayers() {
		layers = append(layers, prune.Layer{Name: e.Name, Values: e.Param.Value.Data()})
	}
	return layers
}

// --- Training ---------------------------------------------------------------

// NewState wraps a model's mixed-precision states. pr may be nil in
// ModeDense; ModeSAMO requires a pruning result.
func NewState(m *Model, opt Optimizer, mode Mode, pr *PruneResult) *State {
	return core.NewModelState(m, opt, mode, pr)
}

// NewTrainer returns a single-process trainer over a state.
func NewTrainer(s *State) *Trainer { return core.NewTrainer(s) }

// NewInferenceState wraps a model for forward-only serving: weights are
// masked and snapped to the fp16 grid, gradient tensors are released, and
// no optimizer state or reduce buffers ever exist — Memory() is the 2φ θ16
// line alone. It shares NewState's fingerprint for the same (model,
// optimizer, mode, pruning) identity, so a training checkpoint saved with
// SaveState (or internal/ckpt) loads directly via its Load; Save refuses.
func NewInferenceState(m *Model, opt Optimizer, mode Mode, pr *PruneResult) *InferenceState {
	return core.NewInferenceState(m, opt, mode, pr)
}

// NewInferencer returns a forward-only runner over an inference state:
// Forward(x) is bitwise-identical to the model's eval forward and performs
// zero heap allocations in steady state. Not concurrency-safe — wrap it in
// internal/serve's engine (cmd/samo-serve) for concurrent callers.
func NewInferencer(s *InferenceState) *Inferencer { return core.NewInferencer(s) }

// SaveState writes a checkpoint of the full training state (compressed θ32,
// optimizer moments, loss-scaler) to w — SAMO checkpoints shrink with the
// same (24p−6)φ arithmetic as resident memory. It returns the byte count.
func SaveState(w io.Writer, s *State) (int64, error) { return s.Save(w) }

// LoadState restores a checkpoint into a structurally matching State;
// resumed training is bitwise identical to uninterrupted training.
func LoadState(r io.Reader, s *State) error { return s.Load(r) }

// NewAdam, NewAdamW and NewSGD construct the optimizers used in the paper.
func NewAdam(lr float64) Optimizer { return optim.NewAdam(lr) }

// NewAdamW returns decoupled-weight-decay Adam (GPT recipe).
func NewAdamW(lr, weightDecay float64) Optimizer { return optim.NewAdamW(lr, weightDecay) }

// NewSGD returns SGD with momentum and L2 weight decay (CNN recipe).
func NewSGD(lr, momentum, weightDecay float64) Optimizer {
	return optim.NewSGD(lr, momentum, weightDecay)
}

// Train runs hybrid data + inter-layer parallel training on an in-process
// fabric: cfg.Ginter pipeline stages × cfg.Gdata data-parallel replicas,
// one goroutine per simulated GPU. build must return identically
// initialized models (fixed seed); optb builds one optimizer per rank.
func Train(cfg ParallelConfig, build func() *Model, optb func() Optimizer, pr *PruneResult, batches []Batch) ParallelResult {
	return axonn.Train(cfg, build, optb, pr, batches)
}

// --- Memory model (§III-D) --------------------------------------------------

// DefaultModelStateBytes returns M_default = 20φ.
func DefaultModelStateBytes(params int64) int64 { return core.DefaultModelStateBytes(params) }

// SAMOModelStateBytes returns M_SAMO = 24(1−p)φ + 2φ.
func SAMOModelStateBytes(params int64, sparsity float64) int64 {
	return core.SAMOModelStateBytes(params, sparsity)
}

// InferenceModelStateBytes returns the forward-only resident footprint:
// the 2φ θ16 line alone (no gradients, master copies or optimizer states).
func InferenceModelStateBytes(params int64) int64 { return core.InferenceBreakdown(params).Total() }

// MemorySavingsPercent returns the relative saving 100·(24p−6)/20.
func MemorySavingsPercent(sparsity float64) float64 { return core.SavingsPercent(sparsity) }

// BreakEvenSparsity is the sparsity below which SAMO costs memory (0.25).
const BreakEvenSparsity = core.BreakEvenSparsity

// --- Performance estimation (Summit simulator) ------------------------------

// Summit returns the paper's testbed profile.
func Summit() Machine { return hw.Summit() }

// EstimateGPT simulates one training iteration of a Table I GPT config on
// the machine at the given GPU count. samoEnabled selects AxoNN+SAMO versus
// plain AxoNN; sparsity is the pruned fraction.
func EstimateGPT(cfg GPTConfig, m Machine, gpus int, samoEnabled bool, sparsity float64) Estimate {
	method := simulate.MethodAxoNN
	if samoEnabled {
		method = simulate.MethodSAMO
	}
	return simulate.Run(method, simulate.TransformerJob(cfg), m, gpus, sparsity)
}

// RunExperiment regenerates one of the paper's tables or figures into w.
// Valid names: fig1..fig8, table1, table2, memory.
func RunExperiment(name string, w io.Writer, trainIters int) bool {
	switch name {
	case "fig1":
		experiments.Figure1(w)
	case "fig2":
		experiments.Figure2(w)
	case "fig3":
		experiments.Figure3(w)
	case "fig4":
		experiments.Figure4(w, trainIters)
	case "fig5":
		experiments.Figure5(w)
	case "fig6":
		experiments.Figure6(w)
	case "fig7":
		experiments.Figure7(w)
	case "fig8":
		experiments.Figure8(w)
	case "table1":
		experiments.Table1(w)
	case "table2":
		experiments.Table2(w)
	case "memory":
		experiments.MemoryReport(w)
	case "sweep":
		experiments.SparsitySweep(w)
	case "sparseexec":
		experiments.SparseExec(w)
	default:
		return false
	}
	return true
}

// ExperimentNames lists the experiments RunExperiment accepts: the paper's
// figures and tables in order, then the extension studies.
func ExperimentNames() []string {
	return []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "table1", "table2", "memory", "sweep", "sparseexec"}
}
