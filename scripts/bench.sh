#!/usr/bin/env bash
# bench.sh — regression harness for the kernel and training hot paths.
#
# Runs the kernel-path benchmarks (seed saxpy GEMM vs packed micro-kernel at
# the Figure 1 FC shapes, transposed products, compress/expand) plus the
# experiment-level suites (Figure1Kernels, Table2Throughput,
# EndToEndParallelStep, SerialTrainStep) and writes BENCH_kernels.json at
# the repository root with ns/op, B/op and allocs/op per benchmark, the
# packed-vs-seed GEMM speedups, and the machine fingerprint.
#
# Usage: scripts/bench.sh [benchtime]   (default 2s; raise for stabler
# numbers, or pass e.g. 3x for a quick smoke run)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-2s}"
OUT="BENCH_kernels.json"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

echo "running kernel benchmarks (benchtime=$BENCHTIME)..." >&2
go test -run '^$' -bench 'BenchmarkGEMM|BenchmarkMatMulT|BenchmarkTMatMul' \
    -benchmem -benchtime="$BENCHTIME" ./internal/tensor/ | tee -a "$TMP" >&2

echo "running training-path benchmarks..." >&2
go test -run '^$' \
    -bench 'BenchmarkFigure1Kernels|BenchmarkTable2Throughput|BenchmarkEndToEndParallelStep|BenchmarkSerialTrainStep|BenchmarkCompressExpandRoundTrip' \
    -benchmem -benchtime="$BENCHTIME" . | tee -a "$TMP" >&2

python3 - "$TMP" "$OUT" <<'EOF'
import json, re, subprocess, sys

lines = open(sys.argv[1]).read().splitlines()
cpu = ""
results = {}
for ln in lines:
    if ln.startswith("cpu:"):
        cpu = ln[4:].strip()
    m = re.match(r"^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) [^\s]+)*", ln)
    if not m:
        continue
    name = re.sub(r"-\d+$", "", m.group(1))
    entry = {"iters": int(m.group(2)), "ns_per_op": float(m.group(3))}
    for val, unit in re.findall(r"([\d.]+) (B/op|allocs/op|GFLOPS)", ln):
        key = unit.replace("/", "_per_")
        entry[key] = float(val)
    results[name] = entry

speedups = {}
for name, e in results.items():
    m = re.match(r"BenchmarkGEMM/packed/(\d+)", name)
    if m:
        seed = results.get("BenchmarkGEMM/seed/" + m.group(1))
        if seed:
            speedups["gemm_%sx%s" % (m.group(1), m.group(1))] = round(
                seed["ns_per_op"] / e["ns_per_op"], 3)

go_version = subprocess.run(["go", "version"], capture_output=True, text=True).stdout.strip()
json.dump({
    "description": "Kernel/training hot-path benchmark baseline. "
                   "Regenerate with scripts/bench.sh.",
    "cpu": cpu,
    "go": go_version,
    "gemm_speedup_packed_vs_seed": speedups,
    "benchmarks": dict(sorted(results.items())),
}, open(sys.argv[2], "w"), indent=2)
print("wrote", sys.argv[2])
EOF
