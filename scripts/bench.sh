#!/usr/bin/env bash
# bench.sh — regression harness for the kernel and training hot paths.
#
# Runs the kernel-path benchmarks (seed saxpy GEMM vs packed v1 vs the
# autotuned shared-pack v2 at the Figure 1 FC shapes plus the small-m
# backward shapes, transposed products, compress/expand) and the
# experiment-level suites (Figure1Kernels, Table2Throughput,
# EndToEndParallelStep, SerialTrainStep), then writes BENCH_kernels.json at
# the repository root with ns/op, B/op and allocs/op per benchmark, the
# GEMM speedup matrix (packed-vs-seed, shared-vs-seed, shared-vs-packed,
# small-m shared-vs-packed) and the machine fingerprint.
#
# The script FAILS (non-zero exit) if the packed or shared-pack kernel
# regresses below MIN_GEMM_SPEEDUP (default 1.5x) over the seed kernel on
# any Figure-1 FC shape — the repo's floor for the kernel-path win. The
# same floor applies to the transposed backward products: the autotuned
# shared-pack MatMulT/TMatMul must hold MIN_GEMM_SPEEDUP over the PR-1 4×4
# register-tile kernels on every Figure-1 backward shape (warn-only on
# single-CPU machines, like the col2im gate below — the committed baseline
# records 1.8-2.8x even serially, but a one-core scheduler leaves the gate
# no headroom against noise).
# 1.5x holds on dedicated hardware; on shared/virtualized machines the
# seed kernel's memory-light loop swings with clock and steal state (we
# have measured the same binary at 2.9 and 4.6 GFLOPS an hour apart, and
# the committed baseline from a shared dev box records 1.37-1.54x), so
# such environments — CI included — set MIN_GEMM_SPEEDUP=1.2: a broken
# pack path lands near 1.0x, so the relaxed floor still catches real
# regressions without tripping on scheduler noise.
#
# It also gates the sparse execution path: the transposed-CSR SpMM must
# beat the dense-masked GEMM by MIN_SPMM_SPEEDUP (default 1.5x) at the
# >=90%-sparsity points of the BenchmarkSpMM matrix (the committed
# baseline records 2.1-20x there); the 50-75% points are recorded ungated —
# dense winning at low sparsity is the density-aware crossover's reason to
# exist, not a regression. Warn-only on single-CPU machines.
#
# It also gates the conv backward lowering: the parallel Col2Im gather
# (BenchmarkCol2Im/parallel, 8 workers) must hold MIN_COL2IM_SPEEDUP
# (default 1.5x) over the serial scatter reference on every VGG /
# WideResNet backward shape. The win comes from parallel fan-out, so on a
# single-CPU machine — where the pool degrades to inline execution and
# only the gather kernel's ~1.1-1.3x serial advantage remains — the gate
# downgrades to a warning automatically; shared multi-core CI sets
# MIN_COL2IM_SPEEDUP=1.2 for the same noise reasons as the GEMM floor.
#
# It also records the transport overhead: the same AllReduce and p2p
# ping-pong workloads over the in-process channel mesh and the TCP loopback
# wire land in BENCH_comm.json with the tcp/local ratio per workload. Only
# the small-payload (latency-bound) points are gated — there the ratio is
# framing + syscall cost (~10-30x on a quiet box); at large payloads the
# in-process mesh hands the same slice pointer zero-copy while the wire
# must serialize, so that ratio grows with payload size and is recorded
# ungated. The gate (MAX_COMM_OVERHEAD, default 100x) is warn-only either
# way: it flags a pathological wire path — a lost fast path or per-send
# allocation storm — without failing on scheduler noise.
#
# Finally it exercises the serving path end to end: a samo-serve smoke run
# (concurrent requests verified bitwise against the offline inference
# forward) followed by a load test whose p50/p99 latency and throughput
# land in BENCH_serving.json. The p99 floor (MAX_SERVE_P99_MS, default
# 25ms for the tiny benchmark model) is warn-only on single-CPU machines,
# where the batching engine and its clients contend for one core and
# latency measures the scheduler, not the engine.
#
# Usage: scripts/bench.sh [benchtime]   (default 2s; raise for stabler
# numbers, or pass e.g. 3x for a quick smoke run — count-based benchtimes
# are too noisy for the regression gate, which then only warns)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-2s}"
OUT="BENCH_kernels.json"
MIN_GEMM_SPEEDUP="${MIN_GEMM_SPEEDUP:-1.5}"
MIN_COL2IM_SPEEDUP="${MIN_COL2IM_SPEEDUP:-1.5}"
MIN_SPMM_SPEEDUP="${MIN_SPMM_SPEEDUP:-1.5}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

echo "running kernel benchmarks (benchtime=$BENCHTIME, count=3)..." >&2
# count=3 with min-aggregation below: on shared machines a noise burst in
# one 2s window can swing a 200ms/op benchmark by 10%; the minimum of
# three runs is the honest kernel speed.
go test -run '^$' -bench 'BenchmarkGEMM|BenchmarkMatMulT|BenchmarkTMatMul|BenchmarkCol2Im' \
    -benchmem -benchtime="$BENCHTIME" -count=3 ./internal/tensor/ | tee -a "$TMP" >&2

echo "running sparse-execution benchmarks..." >&2
# The sparse-vs-dense FC matrix behind the density-aware crossover: at
# >=90% sparsity the CSR kernels must convert pruned FLOPs into time
# (gated at MIN_SPMM_SPEEDUP below); at 50-75% dense is allowed to win.
go test -run '^$' -bench 'BenchmarkSpMM|BenchmarkSDDMM' \
    -benchmem -benchtime="$BENCHTIME" -count=3 ./internal/sparse/ | tee -a "$TMP" >&2

echo "running training-path benchmarks..." >&2
go test -run '^$' \
    -bench 'BenchmarkFigure1Kernels|BenchmarkTable2Throughput|BenchmarkEndToEndParallelStep|BenchmarkSerialTrainStep|BenchmarkCompressExpandRoundTrip' \
    -benchmem -benchtime="$BENCHTIME" . | tee -a "$TMP" >&2

GATE=1
case "$BENCHTIME" in
    *x) GATE=0 ;; # count-based smoke runs are too noisy to gate on
esac

python3 - "$TMP" "$OUT" "$MIN_GEMM_SPEEDUP" "$GATE" "$MIN_COL2IM_SPEEDUP" "$MIN_SPMM_SPEEDUP" <<'EOF'
import json, os, re, subprocess, sys

lines = open(sys.argv[1]).read().splitlines()
min_speedup = float(sys.argv[3])
gate = sys.argv[4] == "1"
min_col2im = float(sys.argv[5])
min_spmm = float(sys.argv[6])
cpu = ""
results = {}
for ln in lines:
    if ln.startswith("cpu:"):
        cpu = ln[4:].strip()
    m = re.match(r"^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) [^\s]+)*", ln)
    if not m:
        continue
    name = re.sub(r"-\d+$", "", m.group(1))
    entry = {"iters": int(m.group(2)), "ns_per_op": float(m.group(3))}
    for val, unit in re.findall(r"([\d.]+) (B/op|allocs/op|GFLOPS)", ln):
        key = unit.replace("/", "_per_")
        entry[key] = float(val)
    # -count>1 repeats a benchmark; keep the fastest run (noise only adds).
    if name not in results or entry["ns_per_op"] < results[name]["ns_per_op"]:
        results[name] = entry

def ratio(slow, fast):
    if slow in results and fast in results:
        return round(results[slow]["ns_per_op"] / results[fast]["ns_per_op"], 3)
    return None

packed_vs_seed, shared_vs_seed, shared_vs_packed = {}, {}, {}
for name in list(results):
    m = re.match(r"BenchmarkGEMM/packed/(\d+)$", name)
    if not m:
        continue
    dim = m.group(1)
    key = "gemm_%sx%s" % (dim, dim)
    packed_vs_seed[key] = ratio("BenchmarkGEMM/seed/" + dim, "BenchmarkGEMM/packed/" + dim)
    shared_vs_seed[key] = ratio("BenchmarkGEMM/seed/" + dim, "BenchmarkGEMM/shared/" + dim)
    shared_vs_packed[key] = ratio("BenchmarkGEMM/packed/" + dim, "BenchmarkGEMM/shared/" + dim)

smallm = {}
for name in list(results):
    m = re.match(r"BenchmarkGEMMSmallM/packed/(\d+x\d+)$", name)
    if not m:
        continue
    shape = m.group(1)
    smallm["gemm_" + shape] = ratio(
        "BenchmarkGEMMSmallM/packed/" + shape, "BenchmarkGEMMSmallM/shared/" + shape)

matmult, tmatmul = {}, {}
for name in list(results):
    m = re.match(r"Benchmark(MatMulT|TMatMul)/tiled/(\d+)$", name)
    if not m:
        continue
    bench, dim = m.group(1), m.group(2)
    table = matmult if bench == "MatMulT" else tmatmul
    table["gemm_%sx%s" % (dim, dim)] = ratio(
        "Benchmark%s/tiled/%s" % (bench, dim), "Benchmark%s/shared/%s" % (bench, dim))

col2im = {}
for name in list(results):
    m = re.match(r"BenchmarkCol2Im/serial/(\S+)$", name)
    if not m:
        continue
    shape = m.group(1)
    col2im[shape] = ratio("BenchmarkCol2Im/serial/" + shape,
                          "BenchmarkCol2Im/parallel/" + shape)

spmm, sddmm = {}, {}
for name in list(results):
    m = re.match(r"BenchmarkSpMM/dense/(\d+)x([\d.]+)$", name)
    if m:
        dim, sp = m.group(1), m.group(2)
        spmm["spmm_%s_s%s" % (dim, sp)] = ratio(
            "BenchmarkSpMM/dense/%sx%s" % (dim, sp),
            "BenchmarkSpMM/sparse/%sx%s" % (dim, sp))
    m = re.match(r"BenchmarkSDDMM/dense/(\d+)$", name)
    if m:
        dim = m.group(1)
        sddmm["sddmm_%s" % dim] = ratio(
            "BenchmarkSDDMM/dense/" + dim, "BenchmarkSDDMM/sparse/" + dim)

go_version = subprocess.run(["go", "version"], capture_output=True, text=True).stdout.strip()
json.dump({
    "description": "Kernel/training hot-path benchmark baseline. "
                   "Regenerate with scripts/bench.sh.",
    "cpu": cpu,
    "cpus": os.cpu_count(),
    "go": go_version,
    "gemm_speedup_packed_vs_seed": packed_vs_seed,
    "gemm_speedup_shared_vs_seed": shared_vs_seed,
    "gemm_speedup_shared_vs_packed": shared_vs_packed,
    "gemm_smallm_speedup_shared_vs_packed": smallm,
    "matmult_speedup_shared_vs_tiled": matmult,
    "tmatmul_speedup_shared_vs_tiled": tmatmul,
    "col2im_speedup_parallel_vs_serial": col2im,
    "spmm_speedup_sparse_vs_dense": spmm,
    "sddmm_speedup_sparse_vs_dense": sddmm,
    "benchmarks": dict(sorted(results.items())),
}, open(sys.argv[2], "w"), indent=2)
print("wrote", sys.argv[2])

# Regression gate: both optimized kernels must hold the floor over the
# seed kernel on every Figure-1 FC shape.
failures = []
for label, table in (("packed", packed_vs_seed), ("shared", shared_vs_seed)):
    for key, sp in sorted(table.items()):
        if sp is None:
            failures.append("%s %s: missing benchmark data" % (label, key))
        elif sp < min_speedup:
            failures.append("%s kernel on %s: %.3fx over seed, floor is %.2fx"
                            % (label, key, sp, min_speedup))
if failures:
    msg = ("GEMM kernel regression vs seed baseline:\n  " + "\n  ".join(failures) +
           "\n(the dense GEMM is the paper's whole lever on throughput; "
           "do not ship a kernel below the floor)")
    if gate:
        sys.exit(msg)
    print("WARNING (not gating, count-based benchtime):\n" + msg)

# Transposed-GEMM gate: the autotuned backward products must hold the same
# floor over the PR-1 tiled kernels on every Figure-1 backward shape.
# Warn-only on a single CPU, like the col2im gate: the win holds even
# serially, but a one-core box leaves no headroom against scheduler noise.
t_failures = []
for label, table in (("MatMulT", matmult), ("TMatMul", tmatmul)):
    for key, sp in sorted(table.items()):
        if sp is None:
            t_failures.append("%s %s: missing benchmark data" % (label, key))
        elif sp < min_speedup:
            t_failures.append("%s shared kernel on %s: %.3fx over tiled, floor is %.2fx"
                              % (label, key, sp, min_speedup))
if t_failures:
    msg = ("Transposed GEMM regression vs tiled baseline:\n  " +
           "\n  ".join(t_failures) +
           "\n(the backward-pass GEMMs dominate pruned-model step time — "
           "Figure 1; do not ship them below the floor)")
    if gate and (os.cpu_count() or 1) > 1:
        sys.exit(msg)
    reason = "single CPU" if (os.cpu_count() or 1) <= 1 else "count-based benchtime"
    print("WARNING (not gating, %s):\n%s" % (reason, msg))

# Col2im gate: the parallel gather must hold the floor over the serial
# scatter on every conv backward shape. The speedup is parallel fan-out,
# so a single-CPU machine (pool degraded to inline execution) can only
# warn — there is nothing to parallelize against.
c_failures = []
for shape, sp in sorted(col2im.items()):
    if sp is None:
        c_failures.append("col2im %s: missing benchmark data" % shape)
    elif sp < min_col2im:
        c_failures.append("parallel col2im on %s: %.3fx over serial, floor is %.2fx"
                          % (shape, sp, min_col2im))
if c_failures:
    msg = ("Col2Im parallel regression vs serial reference:\n  " +
           "\n  ".join(c_failures) +
           "\n(the conv backward lowering was the last serial hot path; "
           "do not ship it below the floor)")
    if gate and (os.cpu_count() or 1) > 1:
        sys.exit(msg)
    reason = "single CPU" if (os.cpu_count() or 1) <= 1 else "count-based benchtime"
    print("WARNING (not gating, %s):\n%s" % (reason, msg))

# SpMM gate: at the high-sparsity points (>=90%, the paper's regime) the
# transposed-CSR SpMM must beat the dense-masked GEMM by the floor — the
# whole premise of first-class sparse execution. Low-sparsity points are
# recorded but never gated: dense winning there is what the density-aware
# crossover exists to detect. Warn-only on a single CPU, like the other
# parallel-kernel gates.
s_failures = []
for key, sp in sorted(spmm.items()):
    sparsity = float(key.rsplit("_s", 1)[1])
    if sparsity < 0.9:
        continue
    if sp is None:
        s_failures.append("%s: missing benchmark data" % key)
    elif sp < min_spmm:
        s_failures.append("sparse SpMM on %s: %.3fx over dense-masked, floor is %.2fx"
                          % (key, sp, min_spmm))
if s_failures:
    msg = ("Sparse SpMM regression vs dense-masked baseline:\n  " +
           "\n  ".join(s_failures) +
           "\n(at >=90% sparsity the pruned FLOPs must convert to time; "
           "do not ship the sparse path below the floor)")
    if gate and (os.cpu_count() or 1) > 1:
        sys.exit(msg)
    reason = "single CPU" if (os.cpu_count() or 1) <= 1 else "count-based benchtime"
    print("WARNING (not gating, %s):\n%s" % (reason, msg))
EOF

echo "running transport benchmarks (local vs tcp loopback)..." >&2
COMM_OUT="BENCH_comm.json"
MAX_COMM_OVERHEAD="${MAX_COMM_OVERHEAD:-100}"
COMM_TMP="$(mktemp)"
go test -run '^$' -bench 'BenchmarkAllReduce|BenchmarkSendRecv' \
    -benchmem -benchtime="$BENCHTIME" -count=3 ./internal/comm/ | tee "$COMM_TMP" >&2

python3 - "$COMM_TMP" "$COMM_OUT" "$MAX_COMM_OVERHEAD" <<'EOF'
import json, os, re, subprocess, sys

lines = open(sys.argv[1]).read().splitlines()
max_overhead = float(sys.argv[3])
cpu = ""
results = {}
for ln in lines:
    if ln.startswith("cpu:"):
        cpu = ln[4:].strip()
    m = re.match(r"^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op", ln)
    if not m:
        continue
    name = re.sub(r"-\d+$", "", m.group(1))
    entry = {"iters": int(m.group(2)), "ns_per_op": float(m.group(3))}
    for val, unit in re.findall(r"([\d.]+) (B/op|allocs/op|MB/s)", ln):
        entry[unit.replace("/", "_per_")] = float(val)
    if name not in results or entry["ns_per_op"] < results[name]["ns_per_op"]:
        results[name] = entry

# tcp/local overhead per workload: same benchmark name with the transport
# segment swapped.
overhead = {}
for name in sorted(results):
    if "/local/" not in name:
        continue
    tcp = name.replace("/local/", "/tcp/")
    if tcp in results:
        key = name.replace("Benchmark", "").replace("/local", "")
        overhead[key] = round(results[tcp]["ns_per_op"] / results[name]["ns_per_op"], 2)

go_version = subprocess.run(["go", "version"], capture_output=True, text=True).stdout.strip()
json.dump({
    "description": "Transport benchmark baseline: in-process channel mesh vs "
                   "TCP loopback wire. Regenerate with scripts/bench.sh.",
    "cpu": cpu,
    "cpus": os.cpu_count(),
    "go": go_version,
    "tcp_overhead_vs_local": overhead,
    "benchmarks": dict(sorted(results.items())),
}, open(sys.argv[2], "w"), indent=2)
print("wrote", sys.argv[2])

# Warn-only framing-overhead gate: loopback cost is machine state, not code
# quality, so this never fails the run — it exists to flag a pathological
# wire path (lost local fast path, per-send allocations) loudly. Only the
# latency-bound small-payload points gate; the large-payload ratio measures
# the in-process mesh's zero-copy advantage, which legitimately grows with
# payload size.
bad = ["%s: tcp is %.1fx local (envelope %.0fx)" % (k, v, max_overhead)
       for k, v in sorted(overhead.items())
       if v > max_overhead and "sz1024" in k]
if bad:
    print("WARNING: transport overhead outside the expected envelope "
          "(warn-only):\n  " + "\n  ".join(bad))
EOF
rm -f "$COMM_TMP"

echo "running overlap step benchmarks (serial vs overlapped reduce)..." >&2
# Serial-barrier vs backward-overlapped bucket reduce, full engine step, on
# both transports. Merged into BENCH_comm.json as overlap_step_speedup.
# Warn-only (MIN_OVERLAP_SPEEDUP, default 1.0): on a single hardware thread
# the async lane has no spare core to overlap onto, so the ratio measures
# goroutine-scheduler overhead, not the communication schedule; even on
# multi-core boxes step time is engine-dominated at this tiny model size, so
# the gate flags a pathological async lane rather than enforcing a win.
MIN_OVERLAP_SPEEDUP="${MIN_OVERLAP_SPEEDUP:-1.0}"
OVERLAP_TMP="$(mktemp)"
go test -run '^$' -bench 'BenchmarkOverlapStep' -benchmem \
    -benchtime="$BENCHTIME" ./internal/axonn/ | tee "$OVERLAP_TMP" >&2

python3 - "$OVERLAP_TMP" "$COMM_OUT" "$MIN_OVERLAP_SPEEDUP" <<'EOF'
import json, os, re, sys

lines = open(sys.argv[1]).read().splitlines()
min_speedup = float(sys.argv[3])
results = {}
for ln in lines:
    m = re.match(r"^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op", ln)
    if not m:
        continue
    name = re.sub(r"-\d+$", "", m.group(1))
    entry = {"iters": int(m.group(2)), "ns_per_op": float(m.group(3))}
    for val, unit in re.findall(r"([\d.]+) (B/op|allocs/op)", ln):
        entry[unit.replace("/", "_per_")] = float(val)
    if name not in results or entry["ns_per_op"] < results[name]["ns_per_op"]:
        results[name] = entry

speedup = {}
for transport in ("local", "tcp"):
    serial = results.get("BenchmarkOverlapStep/%s/serial" % transport)
    overlap = results.get("BenchmarkOverlapStep/%s/overlap" % transport)
    if serial and overlap:
        speedup[transport] = round(serial["ns_per_op"] / overlap["ns_per_op"], 3)

doc = json.load(open(sys.argv[2]))
doc["overlap_step_speedup"] = speedup
doc["benchmarks"].update(results)
doc["benchmarks"] = dict(sorted(doc["benchmarks"].items()))
json.dump(doc, open(sys.argv[2], "w"), indent=2)
print("merged overlap matrix into", sys.argv[2], speedup)

bad = ["%s: overlapped step %.3fx vs serial, floor %.2fx" % (k, v, min_speedup)
       for k, v in sorted(speedup.items()) if v < min_speedup]
if bad:
    reason = ("single CPU — nothing to overlap onto"
              if (os.cpu_count() or 1) <= 1 else "warn-only gate")
    print("WARNING (not gating, %s):\n  " % reason + "\n  ".join(bad))
EOF
rm -f "$OVERLAP_TMP"

echo "running serving smoke + load test..." >&2
SERVE_OUT="BENCH_serving.json"
MAX_SERVE_P99_MS="${MAX_SERVE_P99_MS:-25}"
# Smoke first: every served response must be bitwise-identical to the
# offline inference forward at the serving geometry — a perf number from an
# engine that serves wrong bits would be meaningless.
go run ./cmd/samo-serve -mode smoke -model gpt -requests 48 -concurrency 8 >&2
go run ./cmd/samo-serve -mode loadtest -model gpt -requests 400 -concurrency 12 \
    -out "$SERVE_OUT" >&2

python3 - "$SERVE_OUT" "$MAX_SERVE_P99_MS" "$GATE" <<'EOF'
import json, os, sys

rep = json.load(open(sys.argv[1]))
max_p99 = float(sys.argv[2])
gate = sys.argv[3] == "1"
print("serving: p50 %.3f ms, p99 %.3f ms, %.0f req/s (mean batch %.2f)"
      % (rep["p50_ms"], rep["p99_ms"], rep["throughput_rps"], rep["mean_batch"]))
if rep["p99_ms"] > max_p99:
    msg = ("serving p99 latency %.3f ms exceeds the %.1f ms floor "
           "(batching window is 200us; a p99 this high means the engine "
           "is queueing, not batching)" % (rep["p99_ms"], max_p99))
    if gate and (os.cpu_count() or 1) > 1:
        sys.exit(msg)
    reason = "single CPU" if (os.cpu_count() or 1) <= 1 else "count-based benchtime"
    print("WARNING (not gating, %s):\n%s" % (reason, msg))
EOF
