package samo_test

import (
	"bytes"
	"io"
	"strings"
	"testing"

	samo "github.com/sparse-dl/samo"
)

func TestQuickstartFlow(t *testing.T) {
	// The README's quickstart, as a test: build, prune, enable SAMO, train.
	rng := samo.NewRNG(1)
	model := samo.NewMLP("demo", []int{8, 32, 4}, rng)
	ticket := samo.PruneMagnitude(model, 0.9)
	if s := ticket.Sparsity(); s < 0.85 || s > 0.95 {
		t.Fatalf("ticket sparsity %g", s)
	}
	state := samo.NewState(model, samo.NewAdam(0.01), samo.ModeSAMO, ticket)
	trainer := samo.NewTrainer(state)

	x := samo.NewTensor(16, 8)
	samo.FillNormal(x, 1, samo.NewRNG(2))
	targets := make([]int, 16)
	for i := range targets {
		targets[i] = i % 4
	}
	first := trainer.EvalLoss(x, targets)
	for i := 0; i < 40; i++ {
		trainer.TrainStep(x, targets)
	}
	if last := trainer.EvalLoss(x, targets); last >= first {
		t.Errorf("quickstart did not learn: %g -> %g", first, last)
	}
	// Memory ledger beats dense.
	denseState := samo.NewState(samo.NewMLP("demo", []int{8, 32, 4}, samo.NewRNG(1)),
		samo.NewAdam(0.01), samo.ModeDense, nil)
	if state.Memory().Total() >= denseState.Memory().Total() {
		t.Error("SAMO state must be smaller than dense at 90% sparsity")
	}
}

func TestMemoryModelFacade(t *testing.T) {
	phi := int64(1_000_000)
	if samo.DefaultModelStateBytes(phi) != 20*phi {
		t.Error("M_default")
	}
	if samo.SAMOModelStateBytes(phi, samo.BreakEvenSparsity) != samo.DefaultModelStateBytes(phi) {
		t.Error("break-even identity")
	}
	if s := samo.MemorySavingsPercent(0.9); s < 77 || s > 79 {
		t.Errorf("savings at 0.9 = %g", s)
	}
}

func TestEstimateGPTFacade(t *testing.T) {
	m := samo.Summit()
	ax := samo.EstimateGPT(samo.GPT3o2B7, m, 512, false, 0.9)
	sa := samo.EstimateGPT(samo.GPT3o2B7, m, 512, true, 0.9)
	if !ax.Feasible || !sa.Feasible {
		t.Fatal("2.7B on 512 GPUs must be feasible")
	}
	if sa.BatchTime >= ax.BatchTime {
		t.Errorf("SAMO estimate %.3fs not faster than AxoNN %.3fs", sa.BatchTime, ax.BatchTime)
	}
}

func TestRunExperimentDispatch(t *testing.T) {
	for _, name := range samo.ExperimentNames() {
		if name == "fig4" {
			continue // training experiment, covered separately
		}
		var buf bytes.Buffer
		if !samo.RunExperiment(name, &buf, 0) {
			t.Errorf("experiment %q not recognized", name)
		}
		if buf.Len() == 0 {
			t.Errorf("experiment %q produced no output", name)
		}
	}
	if samo.RunExperiment("nonsense", io.Discard, 0) {
		t.Error("unknown experiment should return false")
	}
}

func TestExperimentNamesCoverPaper(t *testing.T) {
	names := strings.Join(samo.ExperimentNames(), " ")
	for _, want := range []string{"fig1", "fig8", "table1", "table2"} {
		if !strings.Contains(names, want) {
			t.Errorf("missing %s", want)
		}
	}
}
