package main

import (
	"strings"
	"testing"
)

// TestRunSmoke regenerates the two analytic (non-training) experiments and
// checks that both sections arrive on the writer.
func TestRunSmoke(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-exp", "memory,table1"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := buf.String(); len(got) == 0 {
		t.Fatal("no experiment output")
	}
}

// TestRunUnknownExperiment pins the error path: a bad name must return an
// error listing the valid experiments, not exit the process.
func TestRunUnknownExperiment(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"-exp", "fig99"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("expected unknown-experiment error, got %v", err)
	}
}
