package main

import (
	"strings"
	"testing"
)

// TestRunSmoke regenerates the two analytic (non-training) experiments and
// checks that both sections arrive on the writer.
func TestRunSmoke(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-exp", "memory,table1"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := buf.String(); len(got) == 0 {
		t.Fatal("no experiment output")
	}
}

// TestRunSparseExec drives the measured sparse-execution experiment — the
// cmd's sparse-execution mode — and checks the comparison table arrives.
func TestRunSparseExec(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-exp", "sparseexec"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"Sparse execution", "speedup"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// TestRunUnknownExperiment pins the error path: a bad name must return an
// error listing the valid experiments, not exit the process.
func TestRunUnknownExperiment(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"-exp", "fig99"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("expected unknown-experiment error, got %v", err)
	}
}
