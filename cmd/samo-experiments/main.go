// samo-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	samo-experiments -exp all            # everything (fig4 trains ~2 min)
//	samo-experiments -exp fig6,table2    # specific experiments
//	samo-experiments -exp fig4 -iters 300
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	samo "github.com/sparse-dl/samo"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment names, or 'all': "+
		strings.Join(samo.ExperimentNames(), ","))
	iters := flag.Int("iters", 200, "training iterations for fig4")
	flag.Parse()

	names := samo.ExperimentNames()
	if *exp != "all" {
		names = strings.Split(*exp, ",")
	}
	for i, name := range names {
		if i > 0 {
			fmt.Println()
		}
		if !samo.RunExperiment(strings.TrimSpace(name), os.Stdout, *iters) {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (valid: %s)\n",
				name, strings.Join(samo.ExperimentNames(), ", "))
			os.Exit(1)
		}
	}
}
