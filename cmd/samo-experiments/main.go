// samo-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	samo-experiments -exp all            # everything (fig4 trains ~2 min)
//	samo-experiments -exp fig6,table2    # specific experiments
//	samo-experiments -exp fig4 -iters 300
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	samo "github.com/sparse-dl/samo"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run is the testable body of the command: flags parse from args, output
// goes to out, and failures return instead of exiting the process.
func run(args []string, out io.Writer) error {
	// Persist any GEMM autotuner and sparse-crossover decisions this
	// process probed before it exits — the debounced background savers
	// cannot be relied on in a short-lived command (see samo.FlushTuneTable).
	defer func() { _ = samo.FlushTuneTable() }()
	defer func() { _ = samo.FlushXoverTable() }()
	fs := flag.NewFlagSet("samo-experiments", flag.ContinueOnError)
	// Parse errors are returned (main prints them once, to stderr);
	// -h gets the usage on the success writer and a clean exit.
	fs.SetOutput(io.Discard)
	exp := fs.String("exp", "all", "comma-separated experiment names, or 'all': "+
		strings.Join(samo.ExperimentNames(), ","))
	iters := fs.Int("iters", 200, "training iterations for fig4")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fs.SetOutput(out)
			fs.Usage()
			return nil
		}
		return err
	}

	names := samo.ExperimentNames()
	if *exp != "all" {
		names = strings.Split(*exp, ",")
	}
	for i, name := range names {
		if i > 0 {
			fmt.Fprintln(out)
		}
		if !samo.RunExperiment(strings.TrimSpace(name), out, *iters) {
			return fmt.Errorf("unknown experiment %q (valid: %s)",
				name, strings.Join(samo.ExperimentNames(), ", "))
		}
	}
	return nil
}
