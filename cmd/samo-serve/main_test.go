package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSmokeMLP runs the full pipeline — train, checkpoint handoff into the
// forward-only state, concurrent serving — and relies on run's own bitwise
// verification against the offline forward.
func TestSmokeMLP(t *testing.T) {
	t.Setenv("SAMO_GEMM_TUNE", "off")
	t.Setenv("SAMO_SPARSE_XOVER_TABLE", "off")
	var out bytes.Buffer
	err := run([]string{"-mode", "smoke", "-model", "mlp", "-hidden", "16",
		"-requests", "12", "-concurrency", "4", "-max-batch", "4",
		"-train-iters", "2", "-checkpoint-dir", t.TempDir()}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "smoke ok") {
		t.Fatalf("missing smoke verdict in output:\n%s", out.String())
	}
}

// TestSmokeGPTSAMO exercises the compressed-checkpoint handoff.
func TestSmokeGPTSAMO(t *testing.T) {
	t.Setenv("SAMO_GEMM_TUNE", "off")
	t.Setenv("SAMO_SPARSE_XOVER_TABLE", "off")
	var out bytes.Buffer
	err := run([]string{"-mode", "smoke", "-samo", "-hidden", "16",
		"-requests", "8", "-concurrency", "2", "-max-batch", "2",
		"-train-iters", "1", "-checkpoint-dir", t.TempDir()}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "smoke ok") {
		t.Fatalf("missing smoke verdict in output:\n%s", out.String())
	}
}

// TestLoadtestReport checks the report lands where -out points, with the
// fields the bench gate reads.
func TestLoadtestReport(t *testing.T) {
	t.Setenv("SAMO_GEMM_TUNE", "off")
	t.Setenv("SAMO_SPARSE_XOVER_TABLE", "off")
	path := filepath.Join(t.TempDir(), "BENCH_serving.json")
	var out bytes.Buffer
	err := run([]string{"-mode", "loadtest", "-model", "mlp", "-hidden", "16",
		"-requests", "24", "-concurrency", "4", "-max-batch", "4",
		"-train-iters", "1", "-out", path}, &out)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep map[string]any
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"p50_ms", "p99_ms", "throughput_rps", "requests"} {
		if _, ok := rep[key]; !ok {
			t.Fatalf("report missing %q:\n%s", key, blob)
		}
	}
}

// TestBadFlags pins the error paths: unknown mode/model/pad, and the
// smoke + pow2 combination (smoke's bitwise claim needs fixed geometry).
func TestBadFlags(t *testing.T) {
	t.Setenv("SAMO_GEMM_TUNE", "off")
	t.Setenv("SAMO_SPARSE_XOVER_TABLE", "off")
	for _, args := range [][]string{
		{"-mode", "nope"},
		{"-model", "nope"},
		{"-pad", "nope"},
		{"-mode", "smoke", "-pad", "pow2"},
		{"-not-a-flag"},
	} {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v: expected an error", args)
		}
	}
	// -h prints usage and exits cleanly.
	var out bytes.Buffer
	if err := run([]string{"-h"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "-mode") {
		t.Fatal("usage output missing flags")
	}
}
