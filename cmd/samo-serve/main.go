// samo-serve runs the end-to-end serving path: train briefly, hand the
// checkpoint to a forward-only InferenceState (no gradients, no optimizer
// state), and serve concurrent single-sample requests through the dynamic
// micro-batching engine.
//
// Two modes:
//
//	samo-serve -mode smoke     # serve N concurrent requests, drain, and
//	                           # verify every response is bitwise-identical
//	                           # to the offline inference forward
//	samo-serve -mode loadtest  # drive the engine under concurrency and
//	                           # write p50/p99 latency + throughput JSON
//	                           # (BENCH_serving.json) to -out
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"

	samo "github.com/sparse-dl/samo"
	"github.com/sparse-dl/samo/internal/ckpt"
	"github.com/sparse-dl/samo/internal/core"
	"github.com/sparse-dl/samo/internal/data"
	"github.com/sparse-dl/samo/internal/serve"
	"github.com/sparse-dl/samo/internal/tensor"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run is the testable body of the command: flags parse from args, output
// goes to out, and failures return instead of exiting the process.
func run(args []string, out io.Writer) error {
	// The serve engine's Close flushes both autotuner tables, but every
	// error exit path should too — same contract as the other cmds.
	defer func() { _ = samo.FlushTuneTable() }()
	defer func() { _ = samo.FlushXoverTable() }()
	fs := flag.NewFlagSet("samo-serve", flag.ContinueOnError)
	// Parse errors are returned (main prints them once, to stderr);
	// -h gets the usage on the success writer and a clean exit.
	fs.SetOutput(io.Discard)
	mode := fs.String("mode", "smoke", "smoke (verify served outputs against the offline forward) or loadtest (write a latency/throughput report)")
	modelKind := fs.String("model", "gpt", "model family: gpt or mlp")
	hidden := fs.Int("hidden", 32, "model width")
	layers := fs.Int("layers", 1, "transformer blocks (gpt)")
	useSAMO := fs.Bool("samo", false, "train with SAMO-compressed states (exercises compressed checkpoints)")
	sparsity := fs.Float64("sparsity", 0.9, "pruned fraction when -samo is set")
	trainIters := fs.Int("train-iters", 4, "training steps before the checkpoint handoff (0 = serve the fresh init)")
	requests := fs.Int("requests", 64, "total requests to serve")
	concurrency := fs.Int("concurrency", 8, "concurrent client goroutines")
	maxBatch := fs.Int("max-batch", 8, "samples per forward (padded to the next power of two)")
	queueDepth := fs.Int("queue", 0, "admission queue depth (0 = 4x max-batch)")
	window := fs.Duration("window", 200*time.Microsecond, "micro-batch gather window")
	pad := fs.String("pad", "fixed", "batch padding policy: fixed (constant geometry, traffic-independent bits) or pow2")
	ckptDir := fs.String("checkpoint-dir", "", "checkpoint handoff directory (empty = a temp dir)")
	outPath := fs.String("out", "", "loadtest report file (empty = stdout)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fs.SetOutput(out)
			fs.Usage()
			return nil
		}
		return err
	}
	if *mode != "smoke" && *mode != "loadtest" {
		return fmt.Errorf("samo-serve: -mode %q: want smoke or loadtest", *mode)
	}

	// --- Build, train, checkpoint. ------------------------------------------
	const seq, vocab, mlpIn, mlpClasses = 12, 48, 24, 10
	gptCfg := samo.GPTConfig{Name: "serve", Layers: *layers, Hidden: *hidden,
		Heads: 4, Seq: seq, Vocab: vocab}
	build := func() *samo.Model {
		if *modelKind == "mlp" {
			return samo.NewMLP("serve", []int{mlpIn, *hidden, mlpClasses}, samo.NewRNG(1))
		}
		return samo.NewGPT(gptCfg, samo.NewRNG(1))
	}
	if *modelKind != "gpt" && *modelKind != "mlp" {
		return fmt.Errorf("samo-serve: -model %q: want gpt or mlp", *modelKind)
	}

	var pr *samo.PruneResult
	smode := samo.ModeDense
	if *useSAMO {
		pr = samo.PruneMagnitude(build(), *sparsity)
		smode = samo.ModeSAMO
	}
	newOpt := func() samo.Optimizer { return samo.NewAdamW(3e-3, 0.01) }
	state := samo.NewState(build(), newOpt(), smode, pr)
	trainer := samo.NewTrainer(state)

	corpus := data.SynthText("serve-corpus", vocab, 20000, 2)
	mlpRNG := samo.NewRNG(7)
	cursor := 0
	for i := 0; i < *trainIters; i++ {
		if *modelKind == "mlp" {
			x := samo.NewTensor(8, mlpIn)
			samo.FillNormal(x, 1, mlpRNG)
			targets := make([]int, 8)
			for j := range targets {
				targets[j] = (i + j) % mlpClasses
			}
			trainer.TrainStep(x, targets)
		} else {
			b, c := corpus.LMBatch(cursor, 4, seq)
			cursor = c
			trainer.TrainStep(b.Input, b.Targets)
		}
	}

	dir := *ckptDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "samo-serve-ckpt-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	tag := fmt.Sprintf("serve-%s-h%d-l%d-%v", *modelKind, *hidden, *layers, smode)
	mgr, err := ckpt.New(ckpt.Options{Dir: dir, Shards: 1, Tag: tag})
	if err != nil {
		return err
	}
	if err := mgr.Save(*trainIters, 0, state); err != nil {
		return err
	}

	// The serving state: a second, independently built model whose training
	// machinery never exists. Load verifies tag + fingerprint + CRC, then
	// reconstructs dense fp16 weights from the checkpoint's θ32.
	infState := core.NewInferenceState(build(), newOpt(), smode, pr)
	if err := mgr.Load(*trainIters, 0, infState); err != nil {
		return err
	}
	mem := infState.Memory()
	fmt.Fprintf(out, "serving %s: %d params, resident %.2f MiB (training state would be %.2f MiB)\n",
		tag, state.Model().NumParams(),
		float64(mem.Total())/(1<<20), float64(state.Memory().Total())/(1<<20))

	// --- Deterministic request samples. --------------------------------------
	nSamples := *requests
	if *mode == "loadtest" && nSamples > 64 {
		nSamples = 64 // loadtest cycles a fixed pool; smoke verifies each
	}
	samples := make([]*tensor.Tensor, nSamples)
	sCursor := 0
	sRNG := samo.NewRNG(11)
	for i := range samples {
		if *modelKind == "mlp" {
			x := samo.NewTensor(1, mlpIn)
			samo.FillNormal(x, 1, sRNG)
			samples[i] = x
		} else {
			b, c := corpus.LMBatch(sCursor, 1, seq)
			sCursor = c
			samples[i] = b.Input
		}
	}

	padPolicy := serve.PadFixed
	switch *pad {
	case "fixed":
	case "pow2":
		padPolicy = serve.PadPow2
	default:
		return fmt.Errorf("samo-serve: -pad %q: want fixed or pow2", *pad)
	}
	if *mode == "smoke" && padPolicy != serve.PadFixed {
		return fmt.Errorf("samo-serve: smoke verifies bitwise identity, which only PadFixed guarantees (use -pad fixed)")
	}
	engine := serve.New(infState, serve.Config{
		MaxBatch:    *maxBatch,
		QueueDepth:  *queueDepth,
		BatchWindow: *window,
		Pad:         padPolicy,
	})

	if *mode == "loadtest" {
		rep, err := serve.LoadTest(engine, tag, func(i int) *tensor.Tensor {
			return samples[i%len(samples)]
		}, *requests, *concurrency)
		if cerr := engine.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		blob = append(blob, '\n')
		if *outPath == "" {
			_, err = out.Write(blob)
			return err
		}
		if err := os.WriteFile(*outPath, blob, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "loadtest: %d requests x%d concurrency: p50 %.3f ms, p99 %.3f ms, %.0f req/s -> %s\n",
			rep.Requests, rep.Concurrency, rep.P50Ms, rep.P99Ms, rep.ThroughputRPS, *outPath)
		return nil
	}

	// --- Smoke: serve concurrently, drain, verify bitwise. -------------------
	// Offline references come from the TRAINED state's inference forward at
	// the serving geometry: each sample replicated to the fixed batch
	// bucket, first sample's rows sliced out. A pass certifies the
	// checkpoint handoff and the batching engine at once — ckpt-loaded
	// weights match trained weights, and a sample's rows served among
	// arbitrary concurrent traffic match its offline forward bit for bit
	// (PadFixed keeps the geometry constant; row values are independent
	// across a batch, so WHO shares the batch cannot matter).
	bucket := 1
	for bucket < *maxBatch {
		bucket *= 2
	}
	refs := make([][]float32, len(samples))
	refArena := tensor.NewArena()
	for i, x := range samples {
		s0 := x.Dim(0)
		shape := append([]int{bucket * s0}, x.Shape()[1:]...)
		xr := tensor.New(shape...)
		for r := 0; r < bucket; r++ {
			copy(xr.Data()[r*x.Len():(r+1)*x.Len()], x.Data())
		}
		y := state.Model().Infer(refArena, xr)
		rps := y.Dim(0) / bucket
		rowLen := y.Len() / y.Dim(0)
		refs[i] = append([]float32(nil), y.Data()[:rps*rowLen]...)
		refArena.Reset()
	}

	var wg sync.WaitGroup
	var next atomic.Int64
	errs := make([]error, *concurrency)
	for c := 0; c < *concurrency; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(samples) {
					return
				}
				var y *tensor.Tensor
				for {
					var err error
					y, err = engine.Infer(samples[i])
					if err == nil {
						break
					}
					if err != serve.ErrOverloaded {
						errs[c] = err
						return
					}
					time.Sleep(100 * time.Microsecond)
				}
				if len(y.Data()) != len(refs[i]) {
					errs[c] = fmt.Errorf("request %d: served %d values, offline %d", i, len(y.Data()), len(refs[i]))
					return
				}
				for j, v := range y.Data() {
					if math.Float32bits(v) != math.Float32bits(refs[i][j]) {
						errs[c] = fmt.Errorf("request %d: served[%d]=%x != offline %x (not bitwise-identical)",
							i, j, math.Float32bits(v), math.Float32bits(refs[i][j]))
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	if err := engine.Close(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	st := engine.Stats()
	fmt.Fprintf(out, "smoke ok: %d concurrent requests bitwise-identical to the offline forward (%d batches, mean batch %.2f, %d padded samples)\n",
		len(samples), st.Batches, st.MeanBatch(), st.PaddedSamples)
	return nil
}
