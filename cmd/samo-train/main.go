// samo-train trains a small GPT-style model on a synthetic corpus with the
// real hybrid-parallel engine (goroutine ranks), with or without SAMO.
//
// Usage:
//
//	samo-train -ginter 2 -gdata 2 -samo -iters 100
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	samo "github.com/sparse-dl/samo"
	"github.com/sparse-dl/samo/internal/data"
	"github.com/sparse-dl/samo/internal/nn"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run is the testable body of the command: flags parse from args, output
// goes to out, and failures return instead of exiting the process.
func run(args []string, out io.Writer) error {
	// The autotuners' background savers debounce writes, so a short
	// training run can exit before any decision reaches disk; flush both
	// tables synchronously on every exit path (best-effort — a failed write
	// only means the next run re-probes). The crossover flush matters most
	// here: it is what hands a later samo-serve this run's frozen
	// sparse/dense execution paths.
	defer func() { _ = samo.FlushTuneTable() }()
	defer func() { _ = samo.FlushXoverTable() }()
	fs := flag.NewFlagSet("samo-train", flag.ContinueOnError)
	// Parse errors are returned (main prints them once, to stderr);
	// -h gets the usage on the success writer and a clean exit.
	fs.SetOutput(io.Discard)
	ginter := fs.Int("ginter", 2, "pipeline stages (inter-layer parallelism)")
	gdata := fs.Int("gdata", 2, "data-parallel groups")
	useSAMO := fs.Bool("samo", false, "enable SAMO-compressed model states")
	overlap := fs.Bool("overlap", false, "overlap bucketed gradient all-reduce with backward")
	sparsity := fs.Float64("sparsity", 0.9, "pruned fraction when -samo is set")
	pruneBegin := fs.Int("prune-begin", -1, "gradual pruning: first event step (-1 = one-shot pruning only)")
	pruneEnd := fs.Int("prune-end", 0, "gradual pruning: step the final sparsity is reached at")
	pruneEvery := fs.Int("prune-every", 1, "gradual pruning: steps between prune events")
	pruneFinal := fs.Float64("prune-final", 0, "gradual pruning: final pruned fraction")
	pruneGlobal := fs.Bool("prune-global", false, "gradual pruning: rank magnitudes globally instead of per layer")
	iters := fs.Int("iters", 100, "training iterations")
	hidden := fs.Int("hidden", 48, "model width")
	layers := fs.Int("layers", 2, "transformer blocks")
	ckptDir := fs.String("checkpoint-dir", "", "directory for crash-consistent checkpoints (empty = off)")
	ckptEvery := fs.Int("checkpoint-every", 10, "checkpoint period in iterations")
	ckptKeep := fs.Int("checkpoint-keep", 2, "complete checkpoints to retain")
	resume := fs.Bool("resume", false, "resume from the newest verified checkpoint in -checkpoint-dir")
	deadline := fs.Duration("deadline", 0, "collective deadline (failure backstop detector; 0 = off)")
	transport := fs.String("transport", "local", "fabric transport: local (in-process) or tcp (multi-process)")
	peers := fs.String("peers", "", "comma-separated listen addresses, one per process (tcp transport)")
	proc := fs.Int("proc", 0, "this process's index into -peers (tcp transport)")
	dialTimeout := fs.Duration("dial-timeout", 0, "tcp mesh build timeout, incl. waiting for restarted peers (0 = transport default)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fs.SetOutput(out)
			fs.Usage()
			return nil
		}
		return err
	}

	cfg := samo.GPTConfig{Name: "cli", Layers: *layers, Hidden: *hidden,
		Heads: 4, Seq: 12, Vocab: 48}
	build := func() *samo.Model { return samo.NewGPT(cfg, samo.NewRNG(1)) }

	var ticket *samo.PruneResult
	mode := samo.ModeDense
	if *useSAMO {
		// Validate before pruning: an out-of-range target would otherwise
		// panic inside the pruning package (its contract is validated input).
		if *sparsity < 0 || *sparsity >= 1 {
			return fmt.Errorf("-sparsity %g outside [0,1)", *sparsity)
		}
		ticket = samo.PruneMagnitude(build(), *sparsity)
		mode = samo.ModeSAMO
		fmt.Fprintf(out, "pruned %d of %d prunable parameters (%.0f%% sparsity)\n",
			ticket.TotalParams()-ticket.KeptParams(), ticket.TotalParams(),
			100*ticket.Sparsity())
	}

	corpus := data.SynthText("cli-corpus", cfg.Vocab, 20000, 2)
	var batches []samo.Batch
	cursor := 0
	batchSamples := 4 * *gdata
	for i := 0; i < *iters; i++ {
		b, c := corpus.LMBatch(cursor, batchSamples, cfg.Seq)
		cursor = c
		batches = append(batches, b)
	}

	pcfg := samo.ParallelConfig{Ginter: *ginter, Gdata: *gdata, Microbatch: 1, Mode: mode,
		OverlapReduce:      *overlap,
		CheckpointDir:      *ckptDir,
		CheckpointEvery:    *ckptEvery,
		CheckpointKeep:     *ckptKeep,
		Resume:             *resume,
		CollectiveDeadline: *deadline,
	}
	if *pruneBegin >= 0 {
		if !*useSAMO {
			return errors.New("-prune-begin requires -samo (gradual pruning shrinks pruned model states)")
		}
		sched := samo.PruneSchedule{
			Initial:   *sparsity,
			Final:     *pruneFinal,
			BeginStep: *pruneBegin,
			EndStep:   *pruneEnd,
			Frequency: *pruneEvery,
			Global:    *pruneGlobal,
		}
		if err := sched.Validate(); err != nil {
			return err
		}
		pcfg.PruneSchedule = &sched
	}
	switch *transport {
	case "local":
		if *peers != "" {
			return errors.New("-peers requires -transport tcp")
		}
	case "tcp":
		if *peers == "" {
			return errors.New("-transport tcp requires -peers")
		}
		pcfg.Net = &samo.NetConfig{
			Peers:       strings.Split(*peers, ","),
			Proc:        *proc,
			DialTimeout: *dialTimeout,
		}
	default:
		return fmt.Errorf("unknown -transport %q (want local or tcp)", *transport)
	}
	if pcfg.Ginter > len(build().Layers) {
		return fmt.Errorf("ginter %d exceeds %d layers", pcfg.Ginter, len(build().Layers))
	}
	fmt.Fprintf(out, "training %s on %d virtual GPUs (Ginter=%d × Gdata=%d), mode=%v, transport=%s\n",
		cfg.Name, pcfg.GPUs(), pcfg.Ginter, pcfg.Gdata, mode, *transport)

	res := samo.Train(pcfg, build, func() samo.Optimizer { return samo.NewAdamW(3e-3, 0.01) },
		ticket, batches)
	for _, w := range res.Warnings {
		fmt.Fprintf(out, "warning: %s\n", w)
	}
	if res.Err != nil {
		return res.Err
	}
	if res.StartBatch > 0 {
		fmt.Fprintf(out, "resumed from checkpoint step %d\n", res.StartBatch)
	}
	// Losses are recorded by the data-group-0 last-stage rank; under the tcp
	// transport only the process hosting that rank has them to report.
	if res.Fabric.IsLocal(pcfg.Ginter - 1) {
		for i, l := range res.Losses {
			if i < res.StartBatch {
				continue // not trained in this process; no loss to report
			}
			if i%10 == 0 || i == len(res.Losses)-1 {
				fmt.Fprintf(out, "iter %4d  loss %.4f  ppl %8.2f\n", i, l, nn.Perplexity(l))
			}
		}
		fmt.Fprintf(out, "skipped steps (loss-scale overflow): %d\n", res.SkippedSteps)
	}
	fmt.Fprintf(out, "p2p elements moved: %d; collective elements: %d\n",
		res.Fabric.TotalP2PElements(), res.Fabric.TotalCollElements())
	// Exposed time is what collectives cost the critical path: full duration
	// for synchronous calls, only the un-hidden waiting tail for overlapped
	// ones — the number -overlap exists to shrink.
	fmt.Fprintf(out, "exposed collective time: %v (overlap=%v)\n",
		time.Duration(res.Fabric.TotalExposedCollNanos()), *overlap)
	return nil
}
