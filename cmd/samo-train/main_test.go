package main

import (
	"net"
	"strings"
	"sync"
	"testing"
)

// TestRunSmoke trains a deliberately tiny configuration end to end through
// the real hybrid-parallel engine, in both dense and SAMO modes.
func TestRunSmoke(t *testing.T) {
	for _, args := range [][]string{
		{"-iters", "3", "-ginter", "1", "-gdata", "1", "-hidden", "16", "-layers", "1"},
		{"-iters", "3", "-ginter", "2", "-gdata", "1", "-hidden", "16", "-layers", "2", "-samo"},
		{"-iters", "3", "-ginter", "1", "-gdata", "2", "-hidden", "16", "-layers", "1", "-overlap"},
	} {
		var buf strings.Builder
		if err := run(args, &buf); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
		got := buf.String()
		if !strings.Contains(got, "training cli on") || !strings.Contains(got, "iter") {
			t.Errorf("run(%v) output missing training report:\n%s", args, got)
		}
		if !strings.Contains(got, "exposed collective time:") {
			t.Errorf("run(%v) output missing exposed collective report:\n%s", args, got)
		}
	}
}

// TestRunHelp pins the -h contract: usage on the output writer and a nil
// error (a clean exit), not a parse failure.
func TestRunHelp(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-h"}, &buf); err != nil {
		t.Fatalf("run(-h): %v", err)
	}
	if !strings.Contains(buf.String(), "-ginter") {
		t.Errorf("-h output missing flag usage:\n%s", buf.String())
	}
}

// TestRunRejectsBadLayout pins the error path: more pipeline stages than
// layers must fail with an error, not exit the process.
func TestRunRejectsBadLayout(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"-iters", "1", "-ginter", "5", "-layers", "1", "-hidden", "16"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("expected ginter-exceeds-layers error, got %v", err)
	}
}

// TestRunCheckpointResume trains half the run, then restarts the command
// with -resume and the same checkpoint dir: the second invocation must pick
// up at the saved step and report only the remaining iterations.
func TestRunCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	base := []string{"-ginter", "2", "-gdata", "1", "-hidden", "16", "-layers", "2",
		"-checkpoint-dir", dir, "-checkpoint-every", "2"}

	var first strings.Builder
	if err := run(append([]string{"-iters", "4"}, base...), &first); err != nil {
		t.Fatalf("first run: %v", err)
	}

	var second strings.Builder
	if err := run(append([]string{"-iters", "8", "-resume"}, base...), &second); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	got := second.String()
	if !strings.Contains(got, "resumed from checkpoint step 4") {
		t.Fatalf("resumed run missing resume banner:\n%s", got)
	}
	if strings.Contains(got, "iter    0") {
		t.Fatalf("resumed run must not report pre-resume iterations:\n%s", got)
	}
	if !strings.Contains(got, "iter    7") {
		t.Fatalf("resumed run missing final iteration report:\n%s", got)
	}
}

// TestRunTransportFlags pins the transport flag surface: unknown transports
// and inconsistent -peers usage fail before any training starts.
func TestRunTransportFlags(t *testing.T) {
	for _, tc := range []struct{ args, want string }{
		{"-transport carrier-pigeon", "unknown -transport"},
		{"-transport tcp", "requires -peers"},
		{"-peers localhost:1234,localhost:1235", "requires -transport tcp"},
	} {
		var buf strings.Builder
		err := run(strings.Fields(tc.args), &buf)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("run(%s): got %v, want error containing %q", tc.args, err, tc.want)
		}
	}
}

// TestRunTCPTransport drives the command end to end over the TCP transport:
// two run() invocations (one per process index) form a loopback mesh and
// train data-parallel. Only the process hosting the loss-writer rank prints
// iteration lines.
func TestRunTCPTransport(t *testing.T) {
	var addrs []string
	for i := 0; i < 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		addrs = append(addrs, ln.Addr().String())
		ln.Close()
	}
	base := []string{"-iters", "3", "-ginter", "1", "-gdata", "2", "-hidden", "16",
		"-layers", "1", "-transport", "tcp", "-peers", strings.Join(addrs, ","),
		"-dial-timeout", "30s", "-proc"}

	outs := make([]strings.Builder, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			errs[p] = run(append(append([]string{}, base...), []string{"0", "1"}[p]), &outs[p])
		}(p)
	}
	wg.Wait()
	for p := 0; p < 2; p++ {
		if errs[p] != nil {
			t.Fatalf("proc %d: %v\noutput:\n%s", p, errs[p], outs[p].String())
		}
	}
	if got := outs[0].String(); !strings.Contains(got, "transport=tcp") || !strings.Contains(got, "iter") {
		t.Errorf("proc 0 output missing training report:\n%s", got)
	}
	if got := outs[1].String(); strings.Contains(got, "iter ") {
		t.Errorf("proc 1 hosts no loss-writer rank but printed iteration lines:\n%s", got)
	}
}

// TestRunResumeRequiresDir pins flag validation through the engine: -resume
// without -checkpoint-dir is a config error surfaced on Result.Err.
func TestRunResumeRequiresDir(t *testing.T) {
	var buf strings.Builder
	err := run([]string{"-iters", "1", "-hidden", "16", "-resume"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "Resume") {
		t.Fatalf("expected resume-requires-dir error, got %v", err)
	}
}
