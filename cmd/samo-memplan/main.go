// samo-memplan prints the memory plan for the paper's model zoo: model-state
// bytes under dense mixed precision vs SAMO, and the Ginter each requires on
// Summit-class 16 GB GPUs — the mechanism by which memory savings become
// communication savings (§IV-B).
//
// Usage:
//
//	samo-memplan -sparsity 0.9 -gpus 512
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	samo "github.com/sparse-dl/samo"
	"github.com/sparse-dl/samo/internal/core"
	"github.com/sparse-dl/samo/internal/hw"
	"github.com/sparse-dl/samo/internal/simulate"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run is the testable body of the command: flags parse from args, output
// goes to out, and failures return instead of exiting the process.
func run(args []string, out io.Writer) error {
	// Persist any GEMM autotuner decisions this process probed before it
	// exits, like the other cmds — the debounced background saver cannot
	// be relied on in a short-lived command (see samo.FlushTuneTable).
	// Today memplan's analytic pipeline runs no GEMMs, so this is a free
	// no-op; it keeps the exit contract uniform if a future planner does.
	defer func() { _ = samo.FlushTuneTable() }()
	defer func() { _ = samo.FlushXoverTable() }()
	fs := flag.NewFlagSet("samo-memplan", flag.ContinueOnError)
	// Parse errors are returned (main prints them once, to stderr);
	// -h gets the usage on the success writer and a clean exit.
	fs.SetOutput(io.Discard)
	sparsity := fs.Float64("sparsity", 0.9, "pruned fraction")
	gpus := fs.Int("gpus", 512, "GPU count to plan for")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			fs.SetOutput(out)
			fs.Usage()
			return nil
		}
		return err
	}

	m := hw.Summit()
	fmt.Fprintf(out, "memory plan at sparsity %.2f on %s (%d GPUs, %.0f GB each)\n\n",
		*sparsity, m.Name, *gpus, float64(m.MemoryBytes)/(1<<30))
	fmt.Fprintf(out, "%-16s %12s %12s %10s %14s %14s\n",
		"model", "dense(GB)", "SAMO(GB)", "saved", "dense layout", "SAMO layout")

	for _, j := range simulate.StandardJobs() {
		dense := core.DefaultModelStateBytes(j.Phi)
		samoB := core.SAMOModelStateBytes(j.Phi, *sparsity)
		g := *gpus
		if g > j.MaxGPUs {
			g = j.MaxGPUs
		}
		if g < j.MinGPUs {
			g = j.MinGPUs
		}
		dp := simulate.Run(simulate.MethodAxoNN, j, m, g, *sparsity)
		sp := simulate.Run(simulate.MethodSAMO, j, m, g, *sparsity)
		layout := func(r simulate.Result) string {
			if !r.Feasible {
				return "OOM"
			}
			return fmt.Sprintf("Gi=%d Gd=%d", r.Plan.Ginter, r.Plan.Gdata)
		}
		fmt.Fprintf(out, "%-16s %12.2f %12.2f %9.0f%% %14s %14s\n",
			j.Name, core.GiB(dense), core.GiB(samoB),
			100*(1-float64(samoB)/float64(dense)),
			layout(dp), layout(sp))
	}
	fmt.Fprintf(out, "\nanalytical break-even sparsity: %.2f (below it SAMO costs memory)\n",
		core.BreakEvenSparsity)
	return nil
}
