package main

import (
	"strings"
	"testing"
)

// TestRunSmoke plans the full model zoo at a small GPU count and checks the
// report structure: the table header, one row per standard job, and the
// break-even line.
func TestRunSmoke(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-gpus", "16", "-sparsity", "0.8"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := buf.String()
	for _, want := range []string{"memory plan at sparsity 0.80", "dense(GB)", "break-even sparsity"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunRejectsBadFlag pins the error path for unknown flags.
func TestRunRejectsBadFlag(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-no-such-flag"}, &buf); err == nil {
		t.Fatal("expected flag parse error")
	}
}
