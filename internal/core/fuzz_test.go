package core

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// FuzzSnapshotLoad hammers Load with truncated, bit-flipped and adversarial
// checkpoint bytes. The contract under test: Load must always return an
// error on bad input — never panic, never OOM on attacker-controlled
// lengths, and never leave the ModelState partially mutated (a recovery
// that resumes from a half-applied checkpoint would silently diverge).
//
// fixCRC lets the fuzzer past the CRC trailer: when true, the trailer is
// recomputed over the (mutated) payload so the deep parsing and structural
// validation paths are exercised, not just the checksum reject.
func FuzzSnapshotLoad(f *testing.F) {
	// Seed corpus: a valid save (both modes), plus targeted corruptions.
	for _, mode := range []Mode{Dense, SAMO} {
		_, ms, _ := buildTestSetup(mode, 0.75, 42)
		trainABatch(ms)
		var buf bytes.Buffer
		if _, err := ms.Save(&buf); err != nil {
			f.Fatal(err)
		}
		valid := buf.Bytes()
		f.Add(valid, false)
		f.Add(valid[:len(valid)/2], true)   // truncated mid-parameter
		f.Add(valid[:9], true)              // truncated in the header
		flip := append([]byte(nil), valid...)
		flip[len(flip)/3] ^= 0x40 // bit-flip in the payload
		f.Add(flip, false)        // caught by CRC
		f.Add(flip, true)         // CRC "repaired": must fail structurally or load
		// Adversarial: huge name length with a tiny body.
		f.Add(adversarialNameLen(), true)
	}
	f.Add([]byte{}, false)
	f.Add([]byte("SAMO"), true)

	_, ms, _ := buildTestSetup(SAMO, 0.75, 42)
	trainABatch(ms)
	before := saveBytes(f, ms)

	f.Fuzz(func(t *testing.T, data []byte, fixCRC bool) {
		if fixCRC && len(data) >= 4 {
			payload := data[:len(data)-4]
			fixed := make([]byte, len(data))
			copy(fixed, payload)
			binary.LittleEndian.PutUint32(fixed[len(payload):], crc32.ChecksumIEEE(payload))
			data = fixed
		}
		err := ms.Load(bytes.NewReader(data))
		after := saveBytes(t, ms)
		if err != nil {
			// Failed loads must leave the state bitwise untouched.
			if !bytes.Equal(before, after) {
				t.Fatal("Load returned an error but mutated the state")
			}
			return
		}
		// A successful load of fuzzer bytes is only acceptable when those
		// bytes round-trip: the state must now serialize to exactly what was
		// loaded (the input was a genuine checkpoint for this structure).
		if !bytes.Equal(data, after) {
			t.Fatal("Load accepted bytes that do not round-trip through Save")
		}
		before = after
	})
}

func trainABatch(ms *ModelState) {
	x, targets := makeBatch(8, 8, 4, 300)
	tr := NewTrainer(ms)
	tr.TrainStep(x, targets)
}

func saveBytes(t interface{ Fatal(...any) }, ms *ModelState) []byte {
	var buf bytes.Buffer
	if _, err := ms.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// adversarialNameLen builds a header-valid checkpoint whose first parameter
// name claims to be enormous — the classic length-prefix attack.
func adversarialNameLen() []byte {
	var b bytes.Buffer
	put := func(v any) { binary.Write(&b, binary.LittleEndian, v) }
	put(uint32(snapMagic))
	put(uint32(snapVersion))
	put(uint32(SAMO))
	put(float64(1024)) // scale
	put(uint32(0))     // good
	put(uint32(0))     // skipped (scaler)
	put(uint32(1))     // steps
	put(uint32(0))     // skipped
	put(uint32(6))          // param count (matches test MLP)
	put(uint32(0xFFFFFFF0)) // first parameter's name length
	put(uint32(0))          // CRC placeholder, recomputed by fixCRC
	return b.Bytes()
}
