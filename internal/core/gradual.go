package core

import (
	"fmt"
	"math"
	"sort"

	"github.com/sparse-dl/samo/internal/prune"
)

// In-training gradual magnitude pruning (Zhu & Gupta's cubic schedule,
// prune.Schedule) over a live ModelState. The defining constraint is that
// NNZ only ever DECREASES: every prune event compacts the existing storage
// in place — CSR patterns and their cached transposes, the shared indices,
// θ32/∇θ32/tmp16, optimizer state vectors and the grad16 reduce-bucket
// slabs — so steady-state training between events stays allocation-free
// and no backing array is ever reallocated.
//
// Selection reads θ32 (the master weights). After the optimizer step that
// precedes an event every data-parallel replica holds bitwise-identical
// θ32 — the engine sequences events after the global overflow consensus —
// and θ32 trajectories are identical between SAMO and the masked-dense
// reference, so all replicas and both storage modes select the exact same
// survivors with no extra communication.

// shrinkOp names one parameter's keep mask for applyShrinks. keep is in
// stored pattern order (ascending dense-view id for index-compressed
// parameters, CSR order for pattern layers).
type shrinkOp struct {
	st   *paramState
	keep []bool
}

// applyShrinks compacts every storage layer onto the kept pattern
// positions, in place. Three parameter shapes exist:
//
//   - pattern-layer parameters (SparseLinear's Wv): the layer shrinks its
//     CSR structures and re-heads the parameter; the stored vectors and
//     optimizer state compact to the new pattern length;
//   - SAMO-compressed parameters: the index and every NNZ-length vector
//     compact, and dense θ16 zeroes the dropped coordinates;
//   - masked-dense parameters (pruned, Dense mode): storage stays
//     full-length; dropped coordinates are zeroed in θ16/θ32/optimizer
//     state and the index shrinks, keeping the reference bitwise equal to
//     SAMO.
//
// The grad16 bucket slabs compact last (compactBuckets) and the clip
// buffers re-alias the compacted ∇θ32 vectors.
func (ms *ModelState) applyShrinks(ops []shrinkOp) {
	segKeeps := make(map[*paramState][]bool, len(ops))
	for _, op := range ops {
		st, keep := op.st, op.keep
		if pl := ms.patterns[st.p]; pl != nil {
			pl.ShrinkPattern(keep)
		}
		switch {
		case st.compressed:
			ids := st.ix.IDs()
			d16 := st.p.Value.Data()
			for i, k := range keep {
				if !k {
					d16[ids[i]] = 0
				}
			}
			st.ix.ShrinkTo(keep)
			st.theta32 = compactKept32(st.p.Name, st.theta32, keep)
			st.grad32 = compactKept32(st.p.Name, st.grad32, keep)
			st.tmp16 = compactKept32(st.p.Name, st.tmp16, keep)
			ms.opt.CompactState(st.p.Name, keep)
			segKeeps[st] = keep
		case st.ix != nil:
			ids := st.ix.IDs()
			d16 := st.p.Value.Data()
			for i, k := range keep {
				if !k {
					id := ids[i]
					d16[id] = 0
					st.theta32[id] = 0
					st.grad16[id] = 0
					for _, vec := range ms.opt.States(st.p.Name) {
						vec[id] = 0
					}
				}
			}
			st.ix.ShrinkTo(keep)
		default:
			if ms.patterns[st.p] == nil {
				panic(fmt.Sprintf("core: shrink of non-shrinkable parameter %s", st.p.Name))
			}
			st.theta32 = compactKept32(st.p.Name, st.theta32, keep)
			st.grad32 = compactKept32(st.p.Name, st.grad32, keep)
			ms.opt.CompactState(st.p.Name, keep)
			segKeeps[st] = keep
		}
	}
	ms.compactBuckets(segKeeps)
	for i, st := range ms.states {
		ms.clipBufs[i] = st.grad32
	}
}

// compactKept32 filters v to the kept positions in place and returns the
// shortened slice over the same backing array.
func compactKept32(name string, v []float32, keep []bool) []float32 {
	if len(v) != len(keep) {
		panic(fmt.Sprintf("core: %s vector %d vs keep mask %d", name, len(v), len(keep)))
	}
	w := 0
	for i, k := range keep {
		if k {
			v[w] = v[i]
			w++
		}
	}
	return v[:w]
}

// GradualPruner drives a prune.Schedule over a live ModelState. Call
// MaybePrune with the step index after each applied-or-skipped optimizer
// step; on non-event steps it is a comparison and a return (no allocation,
// preserving the zero-alloc steady state between events).
type GradualPruner struct {
	sched   prune.Schedule
	ms      *ModelState
	targets []*paramState // index-compressed, masked-dense or pattern-layer params
}

// NewGradualPruner validates the schedule and binds it to the state's
// shrinkable parameters. A state with none (e.g. an unpruned dense model,
// or a pipeline stage hosting only embeddings) is legal: MaybePrune is
// then a no-op — check Targets when that should be a configuration error.
func NewGradualPruner(ms *ModelState, sched prune.Schedule) (*GradualPruner, error) {
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	gp := &GradualPruner{sched: sched, ms: ms}
	for _, st := range ms.states {
		if st.ix != nil || ms.patterns[st.p] != nil {
			gp.targets = append(gp.targets, st)
		}
	}
	return gp, nil
}

// Targets reports how many parameters the schedule shrinks.
func (gp *GradualPruner) Targets() int { return len(gp.targets) }

// Schedule returns the bound schedule.
func (gp *GradualPruner) Schedule() prune.Schedule { return gp.sched }

// MaybePrune runs a prune event if step is one, returning whether any
// pattern shrank. Every event is a pure function of (step, θ32), so all
// data-parallel replicas shrink identically.
func (gp *GradualPruner) MaybePrune(step int) bool {
	if len(gp.targets) == 0 || !gp.sched.IsPruneEvent(step) {
		return false
	}
	target := gp.sched.SparsityAt(step)
	var ops []shrinkOp
	if gp.sched.Global {
		ops = gp.selectGlobal(target)
	} else {
		ops = gp.selectPerLayer(target)
	}
	if len(ops) == 0 {
		return false
	}
	gp.ms.applyShrinks(ops)
	return true
}

// storedNNZ returns a target's current pattern length.
func (gp *GradualPruner) storedNNZ(st *paramState) int {
	if st.ix != nil {
		return st.ix.NNZ()
	}
	return len(st.theta32)
}

// magnitudes returns a target's |θ32| bit-pattern keys in stored pattern
// order (gathered through the index for masked-dense parameters, whose
// θ32 is full-length). Allocation is fine here: this runs only at events.
func (gp *GradualPruner) magnitudes(st *paramState) []uint32 {
	var mags []uint32
	if st.ix != nil && !st.compressed {
		ids := st.ix.IDs()
		mags = make([]uint32, len(ids))
		for i, id := range ids {
			mags[i] = magBits(st.theta32[id])
		}
		return mags
	}
	mags = make([]uint32, len(st.theta32))
	for i, v := range st.theta32 {
		mags[i] = magBits(v)
	}
	return mags
}

// magBits is the IEEE-754 magnitude key shared with prune.maskSmallest: a
// total order over float32 magnitudes (−0 ties +0, NaN above +Inf, so NaN
// weights are kept, never silently pruned), giving bitwise-reproducible
// tie-breaks at the threshold.
func magBits(v float32) uint32 { return math.Float32bits(v) &^ (1 << 31) }

// selectPerLayer prunes each target down to the event's sparsity
// independently (the paper's uniform per-layer assumption).
func (gp *GradualPruner) selectPerLayer(target float64) []shrinkOp {
	var ops []shrinkOp
	for _, st := range gp.targets {
		full := gp.ms.fullSize(st)
		wantKept := full - int(target*float64(full))
		drop := gp.storedNNZ(st) - wantKept
		if drop <= 0 {
			continue
		}
		mags := gp.magnitudes(st)
		keys := make([]uint64, len(mags))
		for i, m := range mags {
			keys[i] = uint64(m)<<32 | uint64(uint32(i))
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		keep := make([]bool, len(mags))
		for i := range keep {
			keep[i] = true
		}
		for _, k := range keys[:drop] {
			keep[uint32(k)] = false
		}
		ops = append(ops, shrinkOp{st: st, keep: keep})
	}
	return ops
}

// selectGlobal pools every target into one magnitude ranking and prunes
// the globally smallest until the pooled sparsity hits the event's target.
// Ties break by (magnitude bits, target order, position) — the same
// total order as prune.MagnitudeGlobal.
func (gp *GradualPruner) selectGlobal(target float64) []shrinkOp {
	type cand struct {
		bits uint32
		ti   int32
		pos  int32
	}
	var cands []cand
	var fullTotal, nnzTotal int
	for ti, st := range gp.targets {
		fullTotal += gp.ms.fullSize(st)
		mags := gp.magnitudes(st)
		nnzTotal += len(mags)
		for i, m := range mags {
			cands = append(cands, cand{bits: m, ti: int32(ti), pos: int32(i)})
		}
	}
	wantKept := fullTotal - int(target*float64(fullTotal))
	drop := nnzTotal - wantKept
	if drop <= 0 {
		return nil
	}
	sort.Slice(cands, func(a, b int) bool {
		ca, cb := cands[a], cands[b]
		if ca.bits != cb.bits {
			return ca.bits < cb.bits
		}
		if ca.ti != cb.ti {
			return ca.ti < cb.ti
		}
		return ca.pos < cb.pos
	})
	keeps := make([][]bool, len(gp.targets))
	for ti, st := range gp.targets {
		keep := make([]bool, gp.storedNNZ(st))
		for i := range keep {
			keep[i] = true
		}
		keeps[ti] = keep
	}
	dropped := make([]int, len(gp.targets))
	for _, c := range cands[:drop] {
		keeps[c.ti][c.pos] = false
		dropped[c.ti]++
	}
	var ops []shrinkOp
	for ti, st := range gp.targets {
		if dropped[ti] > 0 {
			ops = append(ops, shrinkOp{st: st, keep: keeps[ti]})
		}
	}
	return ops
}
