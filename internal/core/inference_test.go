package core

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"github.com/sparse-dl/samo/internal/ckpt"
	"github.com/sparse-dl/samo/internal/nn"
	"github.com/sparse-dl/samo/internal/optim"
	"github.com/sparse-dl/samo/internal/prune"
	"github.com/sparse-dl/samo/internal/tensor"
)

// buildInferSetup mirrors buildTestSetup for the forward-only state: same
// seed, same pruning identity, independent model instance.
func buildInferSetup(mode Mode, sparsity float64, seed uint64) (*nn.Model, *InferenceState) {
	rng := tensor.NewRNG(seed)
	m := nn.BuildMLP("mlp", []int{8, 16, 4}, rng)
	var layers []prune.Layer
	for _, e := range m.PruneLayers() {
		layers = append(layers, prune.Layer{Name: e.Name, Values: e.Param.Value.Data()})
	}
	pr := prune.MagnitudePerLayer(layers, sparsity)
	return m, NewInferenceState(m, optim.NewAdam(0.01), mode, pr)
}

// TestInferenceFingerprintMatchesModelState pins the checkpoint-handoff
// contract: an InferenceState built with the same (model, optimizer, mode,
// pruning) identity as a training ModelState hashes to the SAME
// fingerprint, so ckpt.Manager accepts a training checkpoint into
// inference mode — and refuses one from a different configuration.
func TestInferenceFingerprintMatchesModelState(t *testing.T) {
	for _, mode := range []Mode{Dense, SAMO} {
		t.Run(mode.String(), func(t *testing.T) {
			_, ms, pr := buildTestSetup(mode, 0.5, 3)
			rng := tensor.NewRNG(3)
			m2 := nn.BuildMLP("mlp", []int{8, 16, 4}, rng)
			is := NewInferenceState(m2, optim.NewAdam(0.01), mode, pr)
			if ms.Fingerprint() != is.Fingerprint() {
				t.Fatalf("fingerprints differ: training %x, inference %x",
					ms.Fingerprint(), is.Fingerprint())
			}
		})
	}
	// Cross-mode fingerprints must differ (a SAMO checkpoint cannot load
	// into a dense-built inference state).
	_, msD, prD := buildTestSetup(Dense, 0.5, 3)
	rng := tensor.NewRNG(3)
	isS := NewInferenceState(nn.BuildMLP("mlp", []int{8, 16, 4}, rng),
		optim.NewAdam(0.01), SAMO, prD)
	if msD.Fingerprint() == isS.Fingerprint() {
		t.Fatal("dense training and SAMO inference fingerprints collide")
	}
}

// TestInferenceStateMemoryForwardOnly pins the shrunken footprint: the
// forward-only ledger is the θ16 line alone — no gradients, no master
// weights, no optimizer states, no down-cast temp — matching the
// InferenceBreakdown closed form, and every Param.Grad is released.
func TestInferenceStateMemoryForwardOnly(t *testing.T) {
	m, is := buildInferSetup(Dense, 0, 7)
	b := is.Memory()
	if b.Grad16 != 0 || b.Theta32 != 0 || b.Grad32 != 0 || b.OptStates != 0 || b.TempCopy != 0 {
		t.Fatalf("training components in inference ledger: %+v", b)
	}
	phi := int64(m.NumParams())
	if want := InferenceBreakdown(phi); b != want {
		t.Fatalf("ledger %+v != closed form %+v", b, want)
	}
	for _, p := range m.Params() {
		if p.Grad != nil {
			t.Fatalf("%s still holds a gradient tensor", p.Name)
		}
	}
	// And it is strictly smaller than any training configuration.
	_, ms, _ := buildTestSetup(Dense, 0, 7)
	if b.Total() >= ms.Memory().Total() {
		t.Fatalf("inference footprint %d not below training %d", b.Total(), ms.Memory().Total())
	}
}

// TestInferenceCheckpointRoundTrip is the handoff golden: train, snapshot,
// load into a fresh forward-only state, and require the inference forward
// to match the trained model's eval forward BITWISE, in both storage
// modes. Also pins that InferenceState refuses to Save.
func TestInferenceCheckpointRoundTrip(t *testing.T) {
	for _, mode := range []Mode{Dense, SAMO} {
		t.Run(mode.String(), func(t *testing.T) {
			_, ms, pr := buildTestSetup(mode, 0.5, 3)
			tr := NewTrainer(ms)
			for i := 0; i < 5; i++ {
				x, targets := makeBatch(8, 8, 4, uint64(20+i))
				tr.TrainStep(x, targets)
			}
			var buf bytes.Buffer
			if _, err := ms.Save(&buf); err != nil {
				t.Fatal(err)
			}

			rng := tensor.NewRNG(3)
			m2 := nn.BuildMLP("mlp", []int{8, 16, 4}, rng)
			is := NewInferenceState(m2, optim.NewAdam(0.01), mode, pr)
			if err := is.Load(bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatal(err)
			}
			if _, err := is.Save(&bytes.Buffer{}); err == nil {
				t.Fatal("InferenceState.Save must refuse (read-only state)")
			}

			x, _ := makeBatch(8, 8, 4, 99)
			a := tensor.NewArena()
			want := append([]float32(nil), ms.Model().Infer(a, x).Data()...)
			a.Reset()
			got := is.Model().Infer(a, x).Data()
			for i := range want {
				if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
					t.Fatalf("output %d differs after checkpoint handoff: %x vs %x",
						i, math.Float32bits(want[i]), math.Float32bits(got[i]))
				}
			}
		})
	}
}

// TestInferenceLoadTransactional pins parse-then-commit on the inference
// loader: a corrupt snapshot must leave the weights bitwise-unchanged.
func TestInferenceLoadTransactional(t *testing.T) {
	_, ms, pr := buildTestSetup(SAMO, 0.5, 3)
	tr := NewTrainer(ms)
	x, targets := makeBatch(8, 8, 4, 21)
	tr.TrainStep(x, targets)
	var buf bytes.Buffer
	if _, err := ms.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)/2] ^= 0xFF // corrupt the payload: CRC must catch it

	rng := tensor.NewRNG(3)
	m2 := nn.BuildMLP("mlp", []int{8, 16, 4}, rng)
	is := NewInferenceState(m2, optim.NewAdam(0.01), SAMO, pr)
	before := make(map[string][]float32)
	for _, p := range m2.Params() {
		before[p.Name] = append([]float32(nil), p.Value.Data()...)
	}
	if err := is.Load(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupt snapshot loaded without error")
	}
	for _, p := range m2.Params() {
		for i, v := range p.Value.Data() {
			if math.Float32bits(v) != math.Float32bits(before[p.Name][i]) {
				t.Fatalf("%s[%d] mutated by failed load", p.Name, i)
			}
		}
	}
}

// TestInferenceCkptManagerHandoff runs the handoff through internal/ckpt:
// the manager's manifest carries tag + fingerprint, so a training
// checkpoint loads into a matching inference state and is refused by a
// structurally different one.
func TestInferenceCkptManagerHandoff(t *testing.T) {
	_, ms, pr := buildTestSetup(Dense, 0.5, 3)
	tr := NewTrainer(ms)
	x, targets := makeBatch(8, 8, 4, 22)
	tr.TrainStep(x, targets)

	dir := t.TempDir()
	mgr, err := ckpt.New(ckpt.Options{Dir: filepath.Join(dir, "ck"), Shards: 1, Tag: "handoff"})
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Save(1, 0, ms); err != nil {
		t.Fatal(err)
	}

	rng := tensor.NewRNG(3)
	is := NewInferenceState(nn.BuildMLP("mlp", []int{8, 16, 4}, rng),
		optim.NewAdam(0.01), Dense, pr)
	if err := mgr.Load(1, 0, is); err != nil {
		t.Fatalf("manager refused a matching inference state: %v", err)
	}

	// A structurally different inference state must be refused up front.
	rng2 := tensor.NewRNG(3)
	wrong := NewInferenceState(nn.BuildMLP("mlp", []int{8, 32, 4}, rng2),
		optim.NewAdam(0.01), Dense, nil)
	if err := mgr.Load(1, 0, wrong); err == nil {
		t.Fatal("manager loaded a checkpoint into a mismatched inference state")
	}
}

// TestInferencerZeroAllocAndEquivalence pins the serving hot path: the
// Inferencer's windowed forward matches the model's eval forward bitwise
// and performs zero heap allocations in steady state — with no Grad or
// optimizer tensors resident (the state's ledger is θ16-only).
func TestInferencerZeroAllocAndEquivalence(t *testing.T) {
	t.Setenv("SAMO_GEMM_TUNE", "off") // hermetic: see TestTrainStepZeroAlloc
	t.Setenv("SAMO_SPARSE_XOVER_TABLE", "off")
	m, is := buildInferSetup(Dense, 0, 13)
	inf := NewInferencer(is)
	x, _ := makeBatch(8, 8, 4, 31)

	a := tensor.NewArena()
	want := append([]float32(nil), m.Infer(a, x).Data()...)
	got := inf.Forward(x)
	for i := range want {
		if math.Float32bits(want[i]) != math.Float32bits(got.Data()[i]) {
			t.Fatalf("Inferencer.Forward differs at %d", i)
		}
	}
	for i := 0; i < 3; i++ { // warm arenas and job pools
		inf.Forward(x)
	}
	if n := testing.AllocsPerRun(20, func() { inf.Forward(x) }); n != 0 {
		t.Fatalf("steady-state Inferencer.Forward allocates %.1f per run, want 0", n)
	}
}
