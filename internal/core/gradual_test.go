package core

import (
	"bytes"
	"strings"
	"testing"

	"github.com/sparse-dl/samo/internal/nn"
	"github.com/sparse-dl/samo/internal/optim"
	"github.com/sparse-dl/samo/internal/prune"
	"github.com/sparse-dl/samo/internal/tensor"
)

// testSchedule ramps 0.5 → 0.9 with four prune events at steps 2, 4, 6, 8.
func testSchedule() prune.Schedule {
	return prune.Schedule{Initial: 0.5, Final: 0.9, BeginStep: 2, EndStep: 8, Frequency: 2}
}

// TestGradualPruneNNZMonotoneAndInPlace pins the tentpole storage contract:
// across a full cubic ramp, every pattern length only ever decreases, all
// NNZ-length vectors (θ32, ∇θ32, tmp16, optimizer moments) shrink in
// lockstep, nothing is reallocated — compaction re-heads the original
// backing arrays — and the model fingerprint is invariant, so checkpoints
// before and after an event address the same state identity.
func TestGradualPruneNNZMonotoneAndInPlace(t *testing.T) {
	_, ms, _ := buildTestSetup(SAMO, 0.5, 51)
	gp, err := NewGradualPruner(ms, testSchedule())
	if err != nil {
		t.Fatal(err)
	}
	if gp.Targets() == 0 {
		t.Fatal("no shrink targets on a pruned SAMO state")
	}
	fp := ms.Fingerprint()

	heads := make(map[*paramState]*float32)
	slabHeads := make([]*float32, len(ms.reduceBufs))
	for _, st := range gp.targets {
		if st.compressed {
			heads[st] = &st.theta32[0]
		}
	}
	for bi, buf := range ms.reduceBufs {
		if len(buf) > 0 {
			slabHeads[bi] = &buf[0]
		}
	}

	nnzOf := func(st *paramState) int {
		if st.ix != nil {
			return st.ix.NNZ()
		}
		return len(st.theta32)
	}
	prev := make(map[*paramState]int)
	for _, st := range gp.targets {
		prev[st] = nnzOf(st)
	}

	tr := NewTrainer(ms)
	shrinks := 0
	for step := 0; step < 10; step++ {
		x, targets := makeBatch(6, 8, 4, uint64(6000+step))
		tr.TrainStep(x, targets)
		if gp.MaybePrune(step) {
			shrinks++
		}
		for _, st := range gp.targets {
			nnz := nnzOf(st)
			if nnz > prev[st] {
				t.Fatalf("step %d: %s NNZ grew %d -> %d", step, st.p.Name, prev[st], nnz)
			}
			prev[st] = nnz
			if !st.compressed {
				continue
			}
			if len(st.grad32) != nnz || len(st.tmp16) != nnz || len(st.theta32) != nnz ||
				len(st.grad16) != nnz || st.ix.NNZ() != nnz || st.p.Value.Len() != st.ix.FullLen() {
				t.Fatalf("step %d: %s vectors off lockstep: θ32 %d ∇32 %d tmp %d ∇16 %d ix %d",
					step, st.p.Name, len(st.theta32), len(st.grad32), len(st.tmp16),
					len(st.grad16), st.ix.NNZ())
			}
			for _, vec := range ms.opt.States(st.p.Name) {
				if len(vec) != nnz {
					t.Fatalf("step %d: %s optimizer vector %d != nnz %d", step, st.p.Name, len(vec), nnz)
				}
			}
			if &st.theta32[0] != heads[st] {
				t.Fatalf("step %d: %s θ32 was reallocated by a prune event", step, st.p.Name)
			}
			// Dropped dense coordinates must read exactly zero.
			mask := st.ix.Mask()
			for i, v := range st.p.Value.Data() {
				if !mask.Get(i) && v != 0 {
					t.Fatalf("step %d: %s dense θ16[%d] = %g off-pattern", step, st.p.Name, i, v)
				}
			}
		}
		for bi, buf := range ms.reduceBufs {
			if slabHeads[bi] != nil && len(buf) > 0 && &buf[0] != slabHeads[bi] {
				t.Fatalf("step %d: bucket %d slab reallocated", step, bi)
			}
		}
		if got := ms.Fingerprint(); got != fp {
			t.Fatalf("step %d: fingerprint changed %x -> %x across a prune event", step, fp, got)
		}
	}
	if shrinks < 3 {
		t.Fatalf("only %d shrinking events fired, want ≥ 3", shrinks)
	}
	// The end of the ramp hit Final exactly: kept = full − ⌊0.9·full⌋.
	for _, st := range gp.targets {
		full := ms.fullSize(st)
		want := full - int(0.9*float64(full))
		if nnzOf(st) != want {
			t.Errorf("%s final NNZ %d, want %d at 90%% sparsity", st.p.Name, nnzOf(st), want)
		}
	}
}

// TestGradualPruneSAMOMatchesMaskedDense extends the repo's central
// equivalence to gradual pruning: a full ramp trained with SAMO-compressed
// storage and with the masked-dense reference yields bitwise-identical
// losses, survivors and final parameters — selection reads θ32, which the
// two modes share exactly.
func TestGradualPruneSAMOMatchesMaskedDense(t *testing.T) {
	for _, global := range []bool{false, true} {
		sched := testSchedule()
		sched.Global = global
		_, msD, _ := buildTestSetup(Dense, 0.5, 52)
		_, msS, _ := buildTestSetup(SAMO, 0.5, 52)
		gpD, err := NewGradualPruner(msD, sched)
		if err != nil {
			t.Fatal(err)
		}
		gpS, _ := NewGradualPruner(msS, sched)

		trD, trS := NewTrainer(msD), NewTrainer(msS)
		for step := 0; step < 10; step++ {
			x, targets := makeBatch(6, 8, 4, uint64(6100+step))
			lD, _ := trD.TrainStep(x, targets)
			lS, _ := trS.TrainStep(x.Clone(), targets)
			if lD != lS {
				t.Fatalf("global=%v step %d: losses diverged %g vs %g", global, step, lD, lS)
			}
			if gpD.MaybePrune(step) != gpS.MaybePrune(step) {
				t.Fatalf("global=%v step %d: modes disagreed on shrinking", global, step)
			}
		}
		pd, ps := msD.Model().Params(), msS.Model().Params()
		for i := range pd {
			if d := tensor.MaxAbsDiff(pd[i].Value, ps[i].Value); d != 0 {
				t.Errorf("global=%v: param %s differs by %g after ramp", global, pd[i].Name, d)
			}
		}
		for i, st := range msD.states {
			if st.ix == nil {
				continue
			}
			if got, want := st.ix.NNZ(), msS.states[i].ix.NNZ(); got != want {
				t.Errorf("global=%v: %s patterns diverged: %d vs %d", global, st.p.Name, got, want)
			}
		}
	}
}

// TestGradualPruneGlobalPooledTarget pins the global criterion's accounting:
// after the final event the POOLED sparsity across all targets hits Final,
// rather than each layer independently.
func TestGradualPruneGlobalPooledTarget(t *testing.T) {
	sched := prune.Schedule{Initial: 0.5, Final: 0.8, BeginStep: 0, EndStep: 4, Frequency: 2, Global: true}
	_, ms, _ := buildTestSetup(SAMO, 0.5, 53)
	gp, err := NewGradualPruner(ms, sched)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrainer(ms)
	for step := 0; step < 5; step++ {
		x, targets := makeBatch(6, 8, 4, uint64(6200+step))
		tr.TrainStep(x, targets)
		gp.MaybePrune(step)
	}
	var full, kept int
	for _, st := range gp.targets {
		full += ms.fullSize(st)
		kept += gp.storedNNZ(st)
	}
	if want := full - int(0.8*float64(full)); kept != want {
		t.Fatalf("pooled kept %d of %d, want %d at 80%% global sparsity", kept, full, want)
	}
}

// TestGradualPruneSparseExecLayers drives the ramp through first-class
// SparseLinear layers: the CSR patterns shrink in place at each event
// (NNZ monotone, backed by the same arrays) and training — whose input
// gradient rides the cached transpose refreshed by ShrinkPattern — keeps
// reducing the loss afterwards.
func TestGradualPruneSparseExecLayers(t *testing.T) {
	sm, ms := buildSparseExecSetup(nn.ExecSparse, 0.5, 54)
	gp, err := NewGradualPruner(ms, testSchedule())
	if err != nil {
		t.Fatal(err)
	}
	if gp.Targets() == 0 {
		t.Fatal("no pattern-layer targets after Sparsify")
	}
	var sls []*nn.SparseLinear
	for _, l := range sm.Layers {
		if sl, ok := l.(*nn.SparseLinear); ok {
			sls = append(sls, sl)
		}
	}
	prev := make([]int, len(sls))
	for i, sl := range sls {
		prev[i] = sl.NNZ()
	}
	tr := NewTrainer(ms)
	shrinks := 0
	for step := 0; step < 10; step++ {
		x, targets := makeBatch(8, 16, 8, uint64(6300+step))
		tr.TrainStep(x, targets)
		if gp.MaybePrune(step) {
			shrinks++
		}
		for i, sl := range sls {
			if sl.NNZ() > prev[i] {
				t.Fatalf("step %d: layer %d NNZ grew %d -> %d", step, i, prev[i], sl.NNZ())
			}
			prev[i] = sl.NNZ()
		}
	}
	if shrinks < 3 {
		t.Fatalf("only %d shrinking events fired, want ≥ 3", shrinks)
	}
	for _, sl := range sls {
		full := sl.PatternFullLen()
		if want := full - int(0.9*float64(full)); sl.NNZ() != want {
			t.Errorf("layer NNZ %d, want %d at 90%% sparsity", sl.NNZ(), want)
		}
	}
	// Training still learns on the shrunk patterns.
	x, targets := makeBatch(16, 16, 8, 6400)
	first := tr.EvalLoss(x, targets)
	for i := 0; i < 40; i++ {
		tr.TrainStep(x, targets)
	}
	if last := tr.EvalLoss(x, targets); last >= first {
		t.Errorf("post-ramp training did not learn: %g -> %g", first, last)
	}
}

// TestGradualPruneZeroAllocBetweenEvents pins the steady-state contract:
// once the ramp has finished, a training step plus the non-event
// MaybePrune check allocates nothing — prune events pay their own cost,
// the steps between them stay on the zero-alloc path.
func TestGradualPruneZeroAllocBetweenEvents(t *testing.T) {
	t.Setenv("SAMO_GEMM_TUNE", "off") // hermetic: see TestTrainStepZeroAlloc
	_, ms, _ := buildTestSetup(SAMO, 0.5, 55)
	sched := prune.Schedule{Initial: 0.5, Final: 0.8, BeginStep: 1, EndStep: 3, Frequency: 1}
	gp, err := NewGradualPruner(ms, sched)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrainer(ms)
	x, targets := makeBatch(16, 8, 4, 6500)
	step := 0
	run := func() {
		tr.TrainStep(x, targets)
		gp.MaybePrune(step)
		step++
	}
	for step < 8 { // through the whole ramp, then warm the shrunk steady state
		run()
	}
	if a := testing.AllocsPerRun(30, run); a != 0 {
		t.Errorf("steady state between events allocates %.1f per step, want 0", a)
	}
}

// TestGradualCheckpointShrinkOnLoad is the resume golden for mid-ramp
// checkpoints: a snapshot taken after some prune events loads into a FRESH
// state still holding the initial (larger) pattern — the loader shrinks the
// state onto the checkpoint's pattern first — and the resumed run finishes
// the ramp bitwise-identically to the uninterrupted one.
func TestGradualCheckpointShrinkOnLoad(t *testing.T) {
	sched := testSchedule() // events at 2, 4, 6, 8
	_, msA, _ := buildTestSetup(SAMO, 0.5, 56)
	gpA, err := NewGradualPruner(msA, sched)
	if err != nil {
		t.Fatal(err)
	}
	trA := NewTrainer(msA)
	var buf bytes.Buffer
	for step := 0; step < 5; step++ { // through events 2 and 4
		x, tg := makeBatch(6, 8, 4, uint64(6600+step))
		trA.TrainStep(x, tg)
		gpA.MaybePrune(step)
	}
	if _, err := msA.Save(&buf); err != nil {
		t.Fatal(err)
	}
	var lossesA []float64
	for step := 5; step < 10; step++ { // events 6 and 8 remain
		x, tg := makeBatch(6, 8, 4, uint64(6600+step))
		l, _ := trA.TrainStep(x, tg)
		lossesA = append(lossesA, l)
		gpA.MaybePrune(step)
	}

	_, msB, _ := buildTestSetup(SAMO, 0.5, 56) // fresh: initial 50% pattern
	if err := msB.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("shrink-on-load failed: %v", err)
	}
	gpB, _ := NewGradualPruner(msB, sched)
	trB := NewTrainer(msB)
	for step := 5; step < 10; step++ {
		x, tg := makeBatch(6, 8, 4, uint64(6600+step))
		l, _ := trB.TrainStep(x, tg)
		if l != lossesA[step-5] {
			t.Fatalf("step %d: resumed loss %.9f != original %.9f", step, l, lossesA[step-5])
		}
		gpB.MaybePrune(step)
	}
	pa, pb := msA.Model().Params(), msB.Model().Params()
	for i := range pa {
		if d := tensor.MaxAbsDiff(pa[i].Value, pb[i].Value); d != 0 {
			t.Errorf("param %s differs by %g after mid-ramp resume", pa[i].Name, d)
		}
	}
	for i, st := range msA.states {
		if st.ix != nil && st.ix.NNZ() != msB.states[i].ix.NNZ() {
			t.Errorf("%s final patterns diverged: %d vs %d",
				st.p.Name, st.ix.NNZ(), msB.states[i].ix.NNZ())
		}
	}
}

// TestGradualCheckpointNonSubsetRefused pins the matching-pattern contract:
// a checkpoint whose pattern holds coordinates the current state has
// already pruned away cannot load — patterns only ever shrink, so the
// loader refuses rather than resurrecting dropped coordinates.
func TestGradualCheckpointNonSubsetRefused(t *testing.T) {
	_, msWide, _ := buildTestSetup(SAMO, 0.5, 57)
	var buf bytes.Buffer
	if _, err := msWide.Save(&buf); err != nil { // initial 50% pattern
		t.Fatal(err)
	}

	_, msNarrow, _ := buildTestSetup(SAMO, 0.5, 57)
	gp, err := NewGradualPruner(msNarrow, prune.Schedule{
		Initial: 0.5, Final: 0.8, BeginStep: 0, EndStep: 0, Frequency: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrainer(msNarrow)
	x, tg := makeBatch(6, 8, 4, 6700)
	tr.TrainStep(x, tg)
	if !gp.MaybePrune(0) {
		t.Fatal("one-shot event did not shrink")
	}
	err = msNarrow.Load(bytes.NewReader(buf.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "pattern") {
		t.Fatalf("pre-shrink checkpoint loaded into post-shrink state: %v", err)
	}
}

// TestGradualInferenceLoadsPostShrinkCheckpoint closes the serving handoff:
// an InferenceState built from the ORIGINAL pruning identity accepts a
// mid-ramp training checkpoint (shrinking its own patterns on load) and
// reproduces the trained model's forward bitwise.
func TestGradualInferenceLoadsPostShrinkCheckpoint(t *testing.T) {
	_, ms, pr := buildTestSetup(SAMO, 0.5, 58)
	gp, err := NewGradualPruner(ms, testSchedule())
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrainer(ms)
	for step := 0; step < 7; step++ { // through events 2, 4, 6
		x, tg := makeBatch(6, 8, 4, uint64(6800+step))
		tr.TrainStep(x, tg)
		gp.MaybePrune(step)
	}
	var buf bytes.Buffer
	if _, err := ms.Save(&buf); err != nil {
		t.Fatal(err)
	}

	rng := tensor.NewRNG(58)
	m2 := nn.BuildMLP("mlp", []int{8, 16, 4}, rng)
	is := NewInferenceState(m2, optim.NewAdam(0.01), SAMO, pr)
	if ms.Fingerprint() != is.Fingerprint() {
		t.Fatal("fingerprints diverged across a prune event")
	}
	if err := is.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("inference shrink-on-load failed: %v", err)
	}
	x, _ := makeBatch(8, 8, 4, 6900)
	a := tensor.NewArena()
	want := append([]float32(nil), ms.Model().Infer(a, x).Data()...)
	a.Reset()
	got := is.Model().Infer(a, x).Data()
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("inference output %d differs after mid-ramp handoff: %g vs %g",
				i, want[i], got[i])
		}
	}
}
