// Package core implements SAMO — Sparsity-aware Memory Optimization — the
// paper's primary contribution (§III). After a pruning algorithm marks a
// fraction p of the parameters as zero, SAMO:
//
//   - keeps the half-precision parameters θ16 DENSE (zeros filled in), so the
//     forward and backward passes run on fast dense kernels unchanged;
//   - stores every other model state — θ32, ∇θ16, ∇θ32 and the optimizer
//     states — COMPRESSED to the unpruned coordinates, all sharing one
//     linearized int32 index tensor per layer;
//   - compresses gradients at layer granularity during the backward pass, so
//     dense gradients for the whole model never coexist;
//   - runs the optimizer directly on the compressed vectors and "expands"
//     the down-cast parameters back to dense θ16.
//
// The memory accounting in this file is the paper's §III-D analytical model;
// ModelState in state.go is the working implementation, and the two are
// cross-checked in tests.
package core

import (
	"fmt"
	"math"
)

// Bytes-per-parameter constants of mixed-precision training with Adam
// (§III-D): θ16 and ∇θ16 are 2 bytes, θ32 and ∇θ32 are 4, and Adam keeps
// two fp32 moments (8 bytes).
const (
	BytesTheta16  = 2
	BytesGrad16   = 2
	BytesTheta32  = 4
	BytesGrad32   = 4
	BytesOptState = 8
	BytesIndex    = 4 // one int32 per unpruned parameter
)

// DefaultModelStateBytes returns M_default = 20φ: the model-state memory of
// ordinary mixed-precision training with Adam for φ parameters.
func DefaultModelStateBytes(phi int64) int64 {
	return phi * (BytesTheta16 + BytesGrad16 + BytesTheta32 + BytesGrad32 + BytesOptState)
}

// SAMOModelStateBytes returns M_SAMO = 24fφ + 2φ (eq. 2), where f = 1−p:
// 18fφ for the compressed states, 4fφ for the shared index, 2φ for dense
// θ16, and 2fφ for the temporary compressed half-precision copy created in
// the optimizer's down-cast step.
func SAMOModelStateBytes(phi int64, p float64) int64 {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("core: sparsity %g out of [0,1]", p))
	}
	f := 1 - p
	return int64(math.Round(24*f*float64(phi))) + 2*phi
}

// SavingsBytes returns M_default − M_SAMO = (24p − 6)φ (eq. 5). Negative for
// p < 0.25: below the break-even sparsity SAMO costs memory.
func SavingsBytes(phi int64, p float64) int64 {
	return DefaultModelStateBytes(phi) - SAMOModelStateBytes(phi, p)
}

// SavingsPercent returns the relative saving 100·(24p−6)/20, the y-axis of
// the paper's Figure 2.
func SavingsPercent(p float64) float64 {
	return 100 * (24*p - 6) / 20
}

// BreakEvenSparsity is the sparsity where SAMO's index and temporary-copy
// overheads are exactly paid for: 24p − 6 = 0.
const BreakEvenSparsity = 0.25

// MemoryBreakdown itemizes model-state memory by component for one
// configuration. All quantities are bytes.
type MemoryBreakdown struct {
	Theta16   int64 // dense fp16 parameters (always 2φ)
	Grad16    int64 // fp16 gradients (2fφ compressed, 2φ dense)
	Theta32   int64 // fp32 master parameters
	Grad32    int64 // fp32 gradients
	OptStates int64 // Adam moments
	Index     int64 // shared int32 indices (SAMO only)
	TempCopy  int64 // compressed fp16 copy in the down-cast step (SAMO only)
}

// Total sums all components.
func (m MemoryBreakdown) Total() int64 {
	return m.Theta16 + m.Grad16 + m.Theta32 + m.Grad32 + m.OptStates + m.Index + m.TempCopy
}

// DefaultBreakdown itemizes ordinary mixed-precision training.
func DefaultBreakdown(phi int64) MemoryBreakdown {
	return MemoryBreakdown{
		Theta16:   BytesTheta16 * phi,
		Grad16:    BytesGrad16 * phi,
		Theta32:   BytesTheta32 * phi,
		Grad32:    BytesGrad32 * phi,
		OptStates: BytesOptState * phi,
	}
}

// SAMOBreakdown itemizes SAMO storage for kept = fφ unpruned parameters out
// of φ total.
func SAMOBreakdown(phi, kept int64) MemoryBreakdown {
	return MemoryBreakdown{
		Theta16:   BytesTheta16 * phi,
		Grad16:    BytesGrad16 * kept,
		Theta32:   BytesTheta32 * kept,
		Grad32:    BytesGrad32 * kept,
		OptStates: BytesOptState * kept,
		Index:     BytesIndex * kept,
		TempCopy:  BytesTheta16 * kept,
	}
}

// InferenceBreakdown itemizes forward-only storage for φ parameters: dense
// θ16 alone (2φ). Gradients, master weights, optimizer states and the
// down-cast temp copy do not exist in inference mode — the shrunken
// footprint InferenceState.Memory reports (plus any layer-owned sparse
// pattern bytes in Index, which depend on the model rather than on φ).
func InferenceBreakdown(phi int64) MemoryBreakdown {
	return MemoryBreakdown{Theta16: BytesTheta16 * phi}
}

// GiB formats a byte count in binary gigabytes.
func GiB(b int64) float64 { return float64(b) / (1 << 30) }
