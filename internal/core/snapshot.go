package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
)

// Checkpointing. A SAMO checkpoint stores exactly what the GPU stores:
// compressed θ32, compressed optimizer states and the loss-scaler state —
// so checkpoints shrink with the same (24p−6)φ arithmetic as resident
// memory. Dense θ16 is NOT stored: it is reconstructed by expansion on
// load, the same operation the optimizer's down-cast step performs.
//
// Format (little-endian): magic, version, mode, scaler state, step counts,
// then per parameter: name, pattern block, stored length, θ32 values, K
// optimizer-state vectors. A CRC-32 of the payload guards against
// truncation.
//
// The pattern block (version 2) serializes the stored pattern of every
// pruned or pattern-bearing parameter: a flag byte (0 = dense, 1 =
// pattern) and, when present, the ascending linearized dense-view ids. A
// run with a gradual pruning schedule shrinks patterns mid-run, so the
// initial pruning result no longer describes checkpoints written after an
// event; the checkpoint itself must carry its pattern. On load the stored
// pattern must be a SUBSET of the state's current pattern — equal resumes
// directly, a strict subset shrinks the state in place first
// (shrink-on-load), anything else is refused: checkpoints load only into
// matching patterns.

const (
	snapMagic   = 0x53414D4F // "SAMO"
	snapVersion = 2
)

// Save writes the model state to w. It returns the number of payload bytes
// written (the checkpoint size, for compression accounting).
func (ms *ModelState) Save(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w, crc: crc32.NewIEEE()}
	bw := bufio.NewWriter(cw)

	put := func(v any) error { return binary.Write(bw, binary.LittleEndian, v) }
	if err := put(uint32(snapMagic)); err != nil {
		return 0, err
	}
	must := func(errs ...error) error {
		for _, e := range errs {
			if e != nil {
				return e
			}
		}
		return nil
	}
	scale, good, skipped := ms.Scaler.Snapshot()
	if err := must(
		put(uint32(snapVersion)),
		put(uint32(ms.Mode)),
		put(scale),
		put(uint32(good)),
		put(uint32(skipped)),
		put(uint32(ms.steps)),
		put(uint32(ms.skipped)),
		put(uint32(len(ms.states))),
	); err != nil {
		return 0, err
	}
	for _, st := range ms.states {
		if err := putString(bw, st.p.Name); err != nil {
			return 0, err
		}
		if err := putPattern(bw, ms.patternIDs(st)); err != nil {
			return 0, err
		}
		if err := must(
			put(uint32(len(st.theta32))),
			put(uint32(ms.opt.StepCount(st.p.Name))),
		); err != nil {
			return 0, err
		}
		if err := putFloats(bw, st.theta32); err != nil {
			return 0, err
		}
		opt := ms.opt.States(st.p.Name)
		if err := put(uint32(len(opt))); err != nil {
			return 0, err
		}
		for _, vec := range opt {
			if len(vec) != len(st.theta32) {
				return 0, fmt.Errorf("core: optimizer state length %d != %d for %s",
					len(vec), len(st.theta32), st.p.Name)
			}
			if err := putFloats(bw, vec); err != nil {
				return 0, err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	// Trailer: CRC of everything written so far.
	if err := binary.Write(cw.w, binary.LittleEndian, cw.crc.Sum32()); err != nil {
		return 0, err
	}
	return cw.n + 4, nil
}

// snapStaging holds a fully parsed and validated checkpoint before any of
// it touches live state. Load is transactional: it parses the whole payload
// into a staging area first, so an error at any byte leaves the ModelState
// exactly as it was — a half-applied checkpoint is worse than none, because
// recovery would then resume from a state no run ever produced.
type snapStaging struct {
	scale         float64
	scalerGood    int
	scalerSkipped int
	steps         int
	skipped       int
	params        []snapParam
}

type snapParam struct {
	stepCount int
	theta32   []float32
	opt       [][]float32
	// keep, when non-nil, maps the checkpoint's strict-subset pattern onto
	// the state's current pattern: the state must shrink to the kept
	// positions before the staged vectors fit (shrink-on-load).
	keep []bool
}

// Load restores a checkpoint written by Save into a structurally matching
// ModelState (same model, same mode, same pruning result, same optimizer
// type). Dense θ16 is reconstructed by expanding the restored θ32. The whole
// checkpoint is read into memory to verify the CRC trailer, then parsed in
// full, before any state is touched (checkpoints are small by construction —
// that is the point): on error the ModelState is bitwise unchanged.
func (ms *ModelState) Load(r io.Reader) error {
	raw, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	stg, err := ms.parseSnapshot(raw)
	if err != nil {
		return err
	}

	// --- Commit: nothing below can fail. ---

	// Shrink-on-load: when the checkpoint's pattern is a strict subset of
	// the current one (it was written after later prune events), shrink the
	// live state to it first so the staged vectors fit exactly.
	var ops []shrinkOp
	for i, st := range ms.states {
		if k := stg.params[i].keep; k != nil {
			ops = append(ops, shrinkOp{st: st, keep: k})
		}
	}
	if len(ops) > 0 {
		ms.applyShrinks(ops)
	}

	// Prime optimizer state vectors if absent (fresh state). A zero-grad
	// step allocates them; every value is overwritten below, so only the
	// side effect on θ32 (decay, Adam bias correction) needs undoing.
	for _, st := range ms.states {
		if ms.opt.States(st.p.Name) == nil {
			zeros := make([]float32, len(st.theta32))
			saved := append([]float32(nil), st.theta32...)
			ms.opt.Step(st.p.Name, st.theta32, zeros)
			copy(st.theta32, saved) // undo any decay the priming step applied
		}
	}
	for i, st := range ms.states {
		sp := &stg.params[i]
		ms.opt.SetStepCount(st.p.Name, sp.stepCount)
		copy(st.theta32, sp.theta32)
		for k, vec := range ms.opt.States(st.p.Name) {
			copy(vec, sp.opt[k])
		}
		// Rebuild dense θ16 from the restored master weights (§III-C's
		// down-cast path).
		if st.compressed {
			for i, v := range st.theta32 {
				st.tmp16[i] = quantizeOne(v)
			}
			st.ix.Expand(st.p.Value.Data(), st.tmp16)
		} else {
			dst := st.p.Value.Data()
			for i, v := range st.theta32 {
				dst[i] = quantizeOne(v)
			}
		}
		zero(st.grad16)
	}
	ms.Scaler.Restore(stg.scale, stg.scalerGood, stg.scalerSkipped)
	ms.steps = stg.steps
	ms.skipped = stg.skipped
	return nil
}

// snapSpec is the structural identity a checkpoint must match to parse:
// mode, optimizer vector count, and per parameter its name and stored
// length, in order. ModelState and InferenceState both reduce to one, so
// training and forward-only loads share a single transactional parser.
type snapSpec struct {
	mode   Mode
	wantK  int
	params []snapParamSpec
}

type snapParamSpec struct {
	name   string
	stored int
	// ids is the current stored pattern (nil: dense parameter, no pattern
	// block in the checkpoint); full is the dense-view length it addresses.
	ids  []int32
	full int
	// patternSized marks parameters whose stored length IS the pattern
	// length (SAMO-compressed and pattern-layer parameters): for those a
	// subset checkpoint carries shorter vectors. Masked-dense parameters
	// keep full-length vectors under any pattern.
	patternSized bool
}

// patternIDs returns a parameter's current stored-pattern ids, nil for
// parameters without a pattern. Freshly allocated for pattern layers;
// aliased for index-compressed ones (callers must not modify).
func (ms *ModelState) patternIDs(st *paramState) []int32 {
	if pl := ms.patterns[st.p]; pl != nil {
		return pl.PatternIDs()
	}
	if st.ix != nil {
		return st.ix.IDs()
	}
	return nil
}

// parseSnapshot validates raw against this state's structure and returns the
// staged contents. It never mutates ms.
func (ms *ModelState) parseSnapshot(raw []byte) (*snapStaging, error) {
	// Optimizer vectors per parameter, derived from the optimizer type
	// rather than States() (which is nil until primed): 4 bytes per float.
	spec := snapSpec{mode: ms.Mode, wantK: ms.opt.StateBytesPerParam() / 4}
	for _, st := range ms.states {
		spec.params = append(spec.params, snapParamSpec{
			name:         st.p.Name,
			stored:       len(st.theta32),
			ids:          ms.patternIDs(st),
			full:         ms.fullSize(st),
			patternSized: st.compressed || ms.patterns[st.p] != nil,
		})
	}
	return parseSnapshot(raw, &spec)
}

// parseSnapshot validates raw against spec and returns the staged contents
// without touching any live state.
func parseSnapshot(raw []byte, spec *snapSpec) (*snapStaging, error) {
	if len(raw) < 8 {
		return nil, fmt.Errorf("core: checkpoint truncated (%d bytes)", len(raw))
	}
	payload := raw[:len(raw)-4]
	want := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("core: checkpoint CRC mismatch (corrupt or truncated)")
	}
	br := bytes.NewReader(payload)
	get := func(v any) error { return binary.Read(br, binary.LittleEndian, v) }

	var magic, version, mode, n uint32
	var scalerGood, scalerSkipped, steps, skipped uint32
	var scale float64
	if err := get(&magic); err != nil {
		return nil, err
	}
	if magic != snapMagic {
		return nil, fmt.Errorf("core: not a SAMO checkpoint (magic %#x)", magic)
	}
	if err := get(&version); err != nil {
		return nil, err
	}
	if version != snapVersion {
		return nil, fmt.Errorf("core: unsupported checkpoint version %d", version)
	}
	if err := get(&mode); err != nil {
		return nil, err
	}
	if Mode(mode) != spec.mode {
		return nil, fmt.Errorf("core: checkpoint mode %v does not match state mode %v", Mode(mode), spec.mode)
	}
	for _, v := range []any{&scale, &scalerGood, &scalerSkipped, &steps, &skipped, &n} {
		if err := get(v); err != nil {
			return nil, err
		}
	}
	if int(n) != len(spec.params) {
		return nil, fmt.Errorf("core: checkpoint has %d parameters, state has %d", n, len(spec.params))
	}

	stg := &snapStaging{
		scale:         scale,
		scalerGood:    int(scalerGood),
		scalerSkipped: int(scalerSkipped),
		steps:         int(steps),
		skipped:       int(skipped),
		params:        make([]snapParam, len(spec.params)),
	}
	for i := range spec.params {
		ps := &spec.params[i]
		name, err := getString(br)
		if err != nil {
			return nil, err
		}
		if name != ps.name {
			return nil, fmt.Errorf("core: checkpoint parameter %q does not match %q (order must be identical)", name, ps.name)
		}
		sp := &stg.params[i]
		var flag uint8
		if err := get(&flag); err != nil {
			return nil, err
		}
		if flag > 1 {
			return nil, fmt.Errorf("core: %s has invalid pattern flag %d", name, flag)
		}
		if (flag == 1) != (ps.ids != nil) {
			return nil, fmt.Errorf("core: %s pattern presence mismatch (checkpoint %v, state %v)",
				name, flag == 1, ps.ids != nil)
		}
		expect := ps.stored
		if flag == 1 {
			var cnt uint32
			if err := get(&cnt); err != nil {
				return nil, err
			}
			if int(cnt) > len(ps.ids) {
				return nil, fmt.Errorf("core: %s checkpoint pattern has %d ids, current pattern only %d — checkpoints load only into matching patterns",
					name, cnt, len(ps.ids))
			}
			stored := make([]int32, cnt)
			if err := getInts(br, stored); err != nil {
				return nil, err
			}
			keep, err := subsetKeep(ps.ids, stored)
			if err != nil {
				return nil, fmt.Errorf("core: %s %w — checkpoints load only into matching patterns", name, err)
			}
			sp.keep = keep
			if ps.patternSized {
				expect = int(cnt)
			}
		}
		var ln, stepCount uint32
		if err := get(&ln); err != nil {
			return nil, err
		}
		if err := get(&stepCount); err != nil {
			return nil, err
		}
		if int(ln) != expect {
			return nil, fmt.Errorf("core: %s stored length %d != %d", name, ln, expect)
		}
		sp.stepCount = int(stepCount)
		sp.theta32 = make([]float32, ln)
		if err := getFloats(br, sp.theta32); err != nil {
			return nil, err
		}
		var k uint32
		if err := get(&k); err != nil {
			return nil, err
		}
		if int(k) != spec.wantK {
			return nil, fmt.Errorf("core: %s has %d optimizer vectors, checkpoint %d", name, spec.wantK, k)
		}
		sp.opt = make([][]float32, k)
		for j := range sp.opt {
			sp.opt[j] = make([]float32, ln)
			if err := getFloats(br, sp.opt[j]); err != nil {
				return nil, err
			}
		}
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("core: %d trailing bytes in checkpoint payload", br.Len())
	}
	return stg, nil
}

func quantizeOne(v float32) float32 {
	d := [1]float32{v}
	quantize(d[:])
	return d[0]
}

// putPattern writes one parameter's pattern block: absent (flag 0) or the
// ascending linearized ids of the stored pattern (flag 1).
func putPattern(w io.Writer, ids []int32) error {
	if ids == nil {
		return binary.Write(w, binary.LittleEndian, uint8(0))
	}
	if err := binary.Write(w, binary.LittleEndian, uint8(1)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(ids))); err != nil {
		return err
	}
	return putInts(w, ids)
}

// subsetKeep maps a checkpoint's stored pattern onto the current one:
// keep[i] reports whether current id i survives in stored. A nil keep
// means the patterns are identical. Both inputs are ascending and unique
// (current by construction; a stored sequence that is not collapses to
// "not a subset" here), so one two-pointer merge is both the subset test
// and the mask build.
func subsetKeep(current, stored []int32) ([]bool, error) {
	if len(stored) == len(current) {
		for i := range stored {
			if stored[i] != current[i] {
				return nil, fmt.Errorf("checkpoint pattern is not a subset of the current pattern")
			}
		}
		return nil, nil
	}
	keep := make([]bool, len(current))
	j := 0
	for i := 0; i < len(current) && j < len(stored); i++ {
		if current[i] == stored[j] {
			keep[i] = true
			j++
		}
	}
	if j != len(stored) {
		return nil, fmt.Errorf("checkpoint pattern is not a subset of the current pattern")
	}
	return keep, nil
}

func putString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := w.Write([]byte(s))
	return err
}

func getString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("core: implausible name length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func putFloats(w io.Writer, s []float32) error {
	buf := make([]byte, 4*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	_, err := w.Write(buf)
	return err
}

func getFloats(r io.Reader, s []float32) error {
	buf := make([]byte, 4*len(s))
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range s {
		s[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return nil
}

func putInts(w io.Writer, s []int32) error {
	buf := make([]byte, 4*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
	}
	_, err := w.Write(buf)
	return err
}

func getInts(r io.Reader, s []int32) error {
	buf := make([]byte, 4*len(s))
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range s {
		s[i] = int32(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	return nil
}

type countingWriter struct {
	w   io.Writer
	n   int64
	crc hash.Hash32
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.crc.Write(p[:n])
	return n, err
}
