package core

import (
	"github.com/sparse-dl/samo/internal/nn"
	"github.com/sparse-dl/samo/internal/tensor"
)

// Trainer runs single-process mixed-precision training through a ModelState:
// the serial reference the parallel engine must reproduce, and the workhorse
// of the statistical-efficiency experiment (Figure 4).
type Trainer struct {
	State *ModelState
}

// NewTrainer wraps a ModelState.
func NewTrainer(state *ModelState) *Trainer { return &Trainer{State: state} }

// TrainStep processes one batch: scaled forward/backward with layer-granular
// gradient capture, then the SAMO/mixed-precision optimizer step. It returns
// the (unscaled) mean loss and whether the step was applied.
func (t *Trainer) TrainStep(x *tensor.Tensor, targets []int) (float64, bool) {
	m := t.State.Model()
	m.ZeroGrads()
	y, caches := m.Forward(x, true)
	loss, grad := nn.CrossEntropy(y, targets)
	tensor.Scale(grad, t.State.LossScale())
	m.Backward(caches, grad, t.State.GradHook())
	applied := t.State.Step()
	return loss, applied
}

// EvalLoss computes the mean loss on a batch without training.
func (t *Trainer) EvalLoss(x *tensor.Tensor, targets []int) float64 {
	y, _ := t.State.Model().Forward(x, false)
	loss, _ := nn.CrossEntropy(y, targets)
	return loss
}
