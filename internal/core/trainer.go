package core

import (
	"github.com/sparse-dl/samo/internal/nn"
	"github.com/sparse-dl/samo/internal/tensor"
)

// Trainer runs single-process mixed-precision training through a ModelState:
// the serial reference the parallel engine must reproduce, and the workhorse
// of the statistical-efficiency experiment (Figure 4).
//
// The trainer owns a tensor arena and a reusable cache slice, so after the
// first batch every TrainStep runs with zero heap allocations: activations,
// gradients and scratch all come from the arena and are reclaimed wholesale
// when the step completes.
type Trainer struct {
	State *ModelState

	arena  *tensor.Arena
	caches []any
}

// NewTrainer wraps a ModelState.
func NewTrainer(state *ModelState) *Trainer { return &Trainer{State: state} }

// TrainStep processes one batch: scaled forward/backward with layer-granular
// gradient capture, then the SAMO/mixed-precision optimizer step. It returns
// the (unscaled) mean loss and whether the step was applied.
func (t *Trainer) TrainStep(x *tensor.Tensor, targets []int) (float64, bool) {
	m := t.State.Model()
	if t.arena == nil {
		t.arena = tensor.NewArena()
	}
	if len(t.caches) != len(m.Layers) {
		t.caches = make([]any, len(m.Layers))
	}
	m.ZeroGrads()
	y := m.ForwardArena(t.arena, x, true, t.caches)
	loss, grad := nn.CrossEntropyArena(t.arena, y, targets)
	tensor.Scale(grad, t.State.LossScale())
	m.BackwardArena(t.arena, t.caches, grad, t.State.GradHook())
	applied := t.State.Step()
	t.arena.Reset()
	return loss, applied
}

// EvalLoss computes the mean loss on a batch without training. It runs the
// cache-free inference forward: no backward caches are built and no cache
// pools are touched, so evaluation interleaved with training leaves the
// pools exactly as the training steps expect them.
func (t *Trainer) EvalLoss(x *tensor.Tensor, targets []int) float64 {
	if t.arena == nil {
		t.arena = tensor.NewArena()
	}
	y := t.State.Model().Infer(t.arena, x)
	loss, _ := nn.CrossEntropyArena(t.arena, y, targets)
	t.arena.Reset()
	return loss
}
