package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/sparse-dl/samo/internal/nn"
	"github.com/sparse-dl/samo/internal/optim"
	"github.com/sparse-dl/samo/internal/prune"
	"github.com/sparse-dl/samo/internal/tensor"
)

func TestMemoryModelClosedForm(t *testing.T) {
	phi := int64(1_000_000)
	if got := DefaultModelStateBytes(phi); got != 20*phi {
		t.Errorf("M_default = %d, want 20φ", got)
	}
	// At p=0.9: 24·0.1·φ + 2φ = 4.4φ.
	if got := SAMOModelStateBytes(phi, 0.9); got != int64(4.4*float64(phi)) {
		t.Errorf("M_SAMO(0.9) = %d, want 4.4φ", got)
	}
	// Break-even at p = 0.25.
	if SavingsBytes(phi, BreakEvenSparsity) != 0 {
		t.Errorf("savings at break-even = %d, want 0", SavingsBytes(phi, BreakEvenSparsity))
	}
	if SavingsBytes(phi, 0.1) >= 0 {
		t.Error("below break-even, SAMO must cost memory")
	}
}

func TestMemorySavingsPaperNumbers(t *testing.T) {
	// §III-D: "66-78% of memory" for p in [0.8, 0.9].
	if s := SavingsPercent(0.8); math.Abs(s-66) > 1 {
		t.Errorf("savings at 0.8 = %g%%, want 66%%", s)
	}
	if s := SavingsPercent(0.9); math.Abs(s-78) > 1 {
		t.Errorf("savings at 0.9 = %g%%, want 78%%", s)
	}
	// Abstract: GPT-3 2.7B drops from 80.16 GB to ≈20.28 GB at p=0.9
	// (the paper's 2.7B count is ≈2.65·4 = the exact φ matters; check the
	// ratio instead: 20φ -> 4.4φ is a 74% reduction less the rounding).
	def := DefaultModelStateBytes(2_700_000_000)
	samo := SAMOModelStateBytes(2_700_000_000, 0.9)
	red := 100 * (1 - float64(samo)/float64(def))
	if math.Abs(red-74) > 5 {
		t.Errorf("2.7B reduction = %.1f%%, paper reports 74%%", red)
	}
}

func TestSavingsMonotoneInSparsity(t *testing.T) {
	f := func(a, b uint8) bool {
		p1 := float64(a%100) / 100
		p2 := float64(b%100) / 100
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return SavingsBytes(1e9, p1) <= SavingsBytes(1e9, p2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBreakdownMatchesClosedForm(t *testing.T) {
	phi, kept := int64(1000), int64(100) // p = 0.9
	b := SAMOBreakdown(phi, kept)
	if b.Total() != SAMOModelStateBytes(phi, 0.9) {
		t.Errorf("breakdown total %d != closed form %d", b.Total(), SAMOModelStateBytes(phi, 0.9))
	}
	d := DefaultBreakdown(phi)
	if d.Total() != DefaultModelStateBytes(phi) {
		t.Errorf("dense breakdown total %d != closed form %d", d.Total(), DefaultModelStateBytes(phi))
	}
}

// buildTestSetup makes a small MLP pruned to the given sparsity with a
// ModelState in the requested mode. Both modes share an identical seed so
// they start from identical θ16.
func buildTestSetup(mode Mode, sparsity float64, seed uint64) (*nn.Model, *ModelState, *prune.Result) {
	rng := tensor.NewRNG(seed)
	m := nn.BuildMLP("mlp", []int{8, 16, 4}, rng)
	var layers []prune.Layer
	for _, e := range m.PruneLayers() {
		layers = append(layers, prune.Layer{Name: e.Name, Values: e.Param.Value.Data()})
	}
	pr := prune.MagnitudePerLayer(layers, sparsity)
	ms := NewModelState(m, optim.NewAdam(0.01), mode, pr)
	return m, ms, pr
}

func makeBatch(n, in, classes int, seed uint64) (*tensor.Tensor, []int) {
	rng := tensor.NewRNG(seed)
	x := tensor.New(n, in)
	tensor.FillNormal(x, 1, rng)
	targets := make([]int, n)
	for i := range targets {
		targets[i] = rng.Intn(classes)
	}
	return x, targets
}

func TestSAMOMatchesMaskedDenseTraining(t *testing.T) {
	// The central correctness property: training with SAMO-compressed
	// states must produce bit-identical parameters to training with dense
	// (but masked) states — compression is a storage change, not a math
	// change.
	_, msDense, _ := buildTestSetup(Dense, 0.75, 42)
	_, msSAMO, _ := buildTestSetup(SAMO, 0.75, 42)

	trD := NewTrainer(msDense)
	trS := NewTrainer(msSAMO)
	for step := 0; step < 10; step++ {
		x, targets := makeBatch(6, 8, 4, uint64(100+step))
		lD, _ := trD.TrainStep(x, targets)
		lS, _ := trS.TrainStep(x.Clone(), targets)
		if lD != lS {
			t.Fatalf("step %d: losses diverged %g vs %g", step, lD, lS)
		}
	}
	pd := msDense.Model().Params()
	ps := msSAMO.Model().Params()
	for i := range pd {
		if d := tensor.MaxAbsDiff(pd[i].Value, ps[i].Value); d != 0 {
			t.Errorf("param %s differs by %g after training", pd[i].Name, d)
		}
	}
}

func TestPrunedCoordinatesStayZero(t *testing.T) {
	m, ms, pr := buildTestSetup(SAMO, 0.8, 7)
	tr := NewTrainer(ms)
	for step := 0; step < 5; step++ {
		x, targets := makeBatch(4, 8, 4, uint64(step))
		tr.TrainStep(x, targets)
	}
	for _, e := range m.PruneLayers() {
		ix := pr.Index(e.Name)
		mask := ix.Mask()
		for i, v := range e.Param.Value.Data() {
			if !mask.Get(i) && v != 0 {
				t.Fatalf("pruned coordinate %s[%d] became %g", e.Name, i, v)
			}
		}
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	_, ms, _ := buildTestSetup(SAMO, 0.5, 11)
	tr := NewTrainer(ms)
	x, targets := makeBatch(16, 8, 4, 500)
	first := tr.EvalLoss(x, targets)
	for step := 0; step < 60; step++ {
		tr.TrainStep(x, targets)
	}
	last := tr.EvalLoss(x, targets)
	if last >= first {
		t.Errorf("loss did not decrease: %g -> %g", first, last)
	}
}

func TestMemoryLedgerMatchesAnalyticModel(t *testing.T) {
	// The implementation's byte ledger must agree with §III-D for the
	// prunable portion. The MLP also has biases (unprunable, stored dense);
	// account for them separately.
	m, ms, pr := buildTestSetup(SAMO, 0.75, 13)
	led := ms.Memory()

	var phiPrunable, kept, phiRest int64
	for _, p := range m.Params() {
		if nn.Prunable(p) {
			phiPrunable += int64(p.Size())
		} else {
			phiRest += int64(p.Size())
		}
	}
	kept = int64(pr.KeptParams())

	want := SAMOBreakdown(phiPrunable, kept).Total() + DefaultBreakdown(phiRest).Total()
	if led.Total() != want {
		t.Errorf("ledger %d != analytic %d", led.Total(), want)
	}
	// And SAMO must beat dense storage at this sparsity.
	msD := NewModelState(nn.BuildMLP("mlp", []int{8, 16, 4}, tensor.NewRNG(13)),
		optim.NewAdam(0.01), Dense, nil)
	if led.Total() >= msD.Memory().Total() {
		t.Error("SAMO ledger not smaller than dense ledger at p=0.75")
	}
}

func TestReduceBuffersCompressed(t *testing.T) {
	m, ms, pr := buildTestSetup(SAMO, 0.9, 17)
	var prunable int64
	for _, p := range m.Params() {
		if nn.Prunable(p) {
			prunable += int64(p.Size())
		}
	}
	var unprunable int64
	for _, p := range m.Params() {
		if !nn.Prunable(p) {
			unprunable += int64(p.Size())
		}
	}
	want := int64(pr.KeptParams()) + unprunable
	if got := ms.GradElements(); got != want {
		t.Errorf("all-reduce payload %d elements, want %d (compressed)", got, want)
	}
	// Dense mode: full payload.
	_, msD, _ := buildTestSetup(Dense, 0.9, 17)
	if got := msD.GradElements(); got != prunable+unprunable {
		t.Errorf("dense payload %d, want %d", got, prunable+unprunable)
	}
}

func TestOverflowSkipsStepAndHalvesScale(t *testing.T) {
	m, ms, _ := buildTestSetup(SAMO, 0.5, 19)
	ms.Scaler.Scale = 65536
	// Inject an enormous gradient that overflows fp16 after scaling.
	p := m.Params()[0]
	before := p.Value.Clone()
	p.Grad.Fill(1e9)
	ms.CaptureAll()
	applied := ms.Step()
	if applied {
		t.Fatal("overflowed step must be skipped")
	}
	if ms.Scaler.Scale != 32768 {
		t.Errorf("scale = %g, want halved", ms.Scaler.Scale)
	}
	if d := tensor.MaxAbsDiff(before, p.Value); d != 0 {
		t.Error("skipped step must not move parameters")
	}
	if ms.SkippedSteps() != 1 || ms.Steps() != 0 {
		t.Errorf("step accounting wrong: %d applied, %d skipped", ms.Steps(), ms.SkippedSteps())
	}
	// Recovery: a sane gradient afterwards applies.
	p.Grad.Fill(0.01)
	ms.CaptureAll()
	if !ms.Step() {
		t.Error("post-overflow step should apply")
	}
}

func TestGradHookClearsDenseGrads(t *testing.T) {
	m, ms, _ := buildTestSetup(SAMO, 0.5, 23)
	x, targets := makeBatch(4, 8, 4, 600)
	m.ZeroGrads()
	y, caches := m.Forward(x, true)
	_, grad := nn.CrossEntropy(y, targets)
	tensor.Scale(grad, ms.LossScale())
	m.Backward(caches, grad, ms.GradHook())
	// After the hook, every dense Grad accumulator must be zero: whole-model
	// dense gradients never coexist (§III-C).
	for _, p := range m.Params() {
		if tensor.MaxAbs(p.Grad) != 0 {
			t.Errorf("dense grad %s not cleared by hook", p.Name)
		}
	}
}

func TestThetaValuesStayOnFp16Grid(t *testing.T) {
	_, ms, _ := buildTestSetup(SAMO, 0.5, 29)
	tr := NewTrainer(ms)
	for step := 0; step < 3; step++ {
		x, targets := makeBatch(4, 8, 4, uint64(700+step))
		tr.TrainStep(x, targets)
	}
	for _, p := range ms.Model().Params() {
		for i, v := range p.Value.Data() {
			q := quantizeOne(v)
			if q != v {
				t.Fatalf("%s[%d] = %g off the fp16 grid", p.Name, i, v)
			}
		}
	}
}

func TestDenseModeWithoutPruning(t *testing.T) {
	rng := tensor.NewRNG(31)
	m := nn.BuildMLP("mlp", []int{6, 10, 3}, rng)
	ms := NewModelState(m, optim.NewAdam(0.01), Dense, nil)
	tr := NewTrainer(ms)
	x, targets := makeBatch(8, 6, 3, 800)
	first := tr.EvalLoss(x, targets)
	for i := 0; i < 40; i++ {
		tr.TrainStep(x, targets)
	}
	if last := tr.EvalLoss(x, targets); last >= first {
		t.Errorf("dense training did not learn: %g -> %g", first, last)
	}
}

func TestSAMOModeRequiresPruneResult(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SAMO without pruning must panic")
		}
	}()
	rng := tensor.NewRNG(37)
	m := nn.BuildMLP("mlp", []int{4, 4}, rng)
	NewModelState(m, optim.NewAdam(0.01), SAMO, nil)
}

func TestClipNormIntegration(t *testing.T) {
	_, ms, _ := buildTestSetup(SAMO, 0.5, 41)
	ms.ClipNorm = 1e-6 // clip everything to ~zero
	tr := NewTrainer(ms)
	before := ms.Model().Params()[0].Value.Clone()
	x, targets := makeBatch(4, 8, 4, 900)
	tr.TrainStep(x, targets)
	after := ms.Model().Params()[0].Value
	// With a microscopic clip norm, parameter movement is bounded by
	// lr·clip ~ 1e-8 per Adam quirk; fp16 rounding makes it zero.
	if d := tensor.MaxAbsDiff(before, after); d > 1e-2 {
		t.Errorf("clipping ineffective: moved %g", d)
	}
}
