package core

import (
	"math"
	"testing"

	"github.com/sparse-dl/samo/internal/nn"
	"github.com/sparse-dl/samo/internal/optim"
	"github.com/sparse-dl/samo/internal/prune"
	"github.com/sparse-dl/samo/internal/tensor"
)

// buildSparseExecSetup prunes an MLP and replaces its Linears with
// first-class SparseLinear layers pinned to the given execution path,
// wrapped in a SAMO-mode ModelState — the sparse-execution training stack
// end to end.
func buildSparseExecSetup(exec nn.ExecMode, sparsity float64, seed uint64) (*nn.Model, *ModelState) {
	rng := tensor.NewRNG(seed)
	m := nn.BuildMLP("smlp", []int{16, 32, 8}, rng)
	var layers []prune.Layer
	for _, e := range m.PruneLayers() {
		layers = append(layers, prune.Layer{Name: e.Name, Values: e.Param.Value.Data()})
	}
	pr := prune.MagnitudePerLayer(layers, sparsity)
	sm := nn.Sparsify(m, pr)
	for _, l := range sm.Layers {
		if sl, ok := l.(*nn.SparseLinear); ok {
			sl.Exec = exec
		}
	}
	return sm, NewModelState(sm, optim.NewAdam(0.01), SAMO, pr)
}

// TestSparseExecTrainStepZeroAlloc pins the sparse execution path's perf
// contract: a full pruned-model TrainStep over SparseLinear layers — CSR
// forward, SDDMM weight gradient, transposed-CSR input gradient, rank-1
// weight-vector capture and optimizer step — runs at zero steady-state
// allocations, on both execution paths (the dense fallback materializes its
// masked-dense scratch once, then stays allocation-free).
func TestSparseExecTrainStepZeroAlloc(t *testing.T) {
	t.Setenv("SAMO_GEMM_TUNE", "off") // hermetic: see TestTrainStepZeroAlloc
	for _, exec := range []nn.ExecMode{nn.ExecSparse, nn.ExecDense} {
		_, ms := buildSparseExecSetup(exec, 0.9, 17)
		tr := NewTrainer(ms)
		x, targets := makeBatch(16, 16, 8, 18)
		for i := 0; i < 3; i++ {
			tr.TrainStep(x, targets)
		}
		if a := testing.AllocsPerRun(30, func() { tr.TrainStep(x, targets) }); a != 0 {
			t.Errorf("exec=%d: sparse TrainStep allocates %.1f per step, want 0", exec, a)
		}
	}
}

// TestSparseLinearForwardBackwardZeroAlloc pins the layer in isolation: a
// steady-state forward+backward pair over the arena — including the cached
// transpose's value refresh and, on the dense path, the masked-dense
// re-materialization — allocates nothing. Workers are pinned above one so
// the pooled parallel dispatch (not the inline fallback) is what is pinned.
func TestSparseLinearForwardBackwardZeroAlloc(t *testing.T) {
	t.Setenv("SAMO_GEMM_TUNE", "off")
	defer tensor.SetWorkers(tensor.SetWorkers(4))
	for _, exec := range []nn.ExecMode{nn.ExecSparse, nn.ExecDense} {
		rng := tensor.NewRNG(19)
		dense := nn.NewLinear("fc", 64, 48, rng)
		pr := prune.MagnitudePerLayer(
			[]prune.Layer{{Name: "fc.weight", Values: dense.W.Value.Data()}}, 0.9)
		sl := nn.NewSparseLinear("fc", dense.W.Value, pr.Index("fc.weight"))
		sl.Exec = exec
		x := tensor.New(32, 64)
		tensor.FillNormal(x, 1, rng)
		arena := tensor.NewArena()
		step := func() {
			y, cache := sl.Forward(arena, x, true)
			sl.Backward(arena, cache, y) // y has the gradient's shape
			arena.Reset()
		}
		for i := 0; i < 3; i++ {
			step()
		}
		if a := testing.AllocsPerRun(30, step); a != 0 {
			t.Errorf("exec=%d: SparseLinear forward+backward allocates %.1f per step, want 0", exec, a)
		}
	}
}

// TestSparseExecTrainStepDeterminism pins the acceptance contract on the
// whole pruned-model training step: with the execution path pinned (the
// crossover's machine-dependent freeze held fixed), training is
// bitwise-identical at every worker count — every sparse kernel accumulates
// in a fixed per-element order, so pool resizing can never perturb results.
func TestSparseExecTrainStepDeterminism(t *testing.T) {
	defer tensor.SetWorkers(tensor.SetWorkers(0))
	var ref []*tensor.Tensor
	for _, workers := range []int{1, 2, 3, 4, 8, 16} {
		tensor.SetWorkers(workers)
		sm, ms := buildSparseExecSetup(nn.ExecSparse, 0.9, 23)
		tr := NewTrainer(ms)
		for step := 0; step < 4; step++ {
			x, targets := makeBatch(12, 16, 8, uint64(300+step))
			tr.TrainStep(x, targets)
		}
		var params []*tensor.Tensor
		for _, p := range sm.Params() {
			params = append(params, p.Value)
		}
		if ref == nil {
			ref = params
			continue
		}
		for pi, p := range params {
			a, b := ref[pi].Data(), p.Data()
			for i := range a {
				if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
					t.Fatalf("workers=%d: param %d differs from 1-worker run at %d (%g vs %g)",
						workers, pi, i, a[i], b[i])
				}
			}
		}
	}
}

// TestSparseExecMatchesMaskedDenseTraining checks the sparse execution
// path's training math against the masked-dense reference the repo already
// trusts: the same pruned MLP trained through SparseLinear layers and
// through masked-dense Linear layers converges to the same parameters
// within fp16-roundoff tolerance (the two paths sum in different orders, so
// bitwise equality is not expected — unlike across worker counts).
func TestSparseExecMatchesMaskedDenseTraining(t *testing.T) {
	// Masked-dense reference: pruned Linears in Dense mode enforce the mask.
	_, msD, _ := buildTestSetup(Dense, 0.9, 29)
	rng := tensor.NewRNG(29)
	m2 := nn.BuildMLP("mlp", []int{8, 16, 4}, rng)
	var layers []prune.Layer
	for _, e := range m2.PruneLayers() {
		layers = append(layers, prune.Layer{Name: e.Name, Values: e.Param.Value.Data()})
	}
	pr := prune.MagnitudePerLayer(layers, 0.9)
	sm := nn.Sparsify(m2, pr)
	for _, l := range sm.Layers {
		if sl, ok := l.(*nn.SparseLinear); ok {
			sl.Exec = nn.ExecSparse
		}
	}
	msS := NewModelState(sm, optim.NewAdam(0.01), SAMO, pr)

	trD, trS := NewTrainer(msD), NewTrainer(msS)
	var lastD, lastS float64
	for step := 0; step < 8; step++ {
		x, targets := makeBatch(6, 8, 4, uint64(400+step))
		lastD, _ = trD.TrainStep(x, targets)
		lastS, _ = trS.TrainStep(x.Clone(), targets)
	}
	if math.Abs(lastD-lastS) > 1e-3*(1+math.Abs(lastD)) {
		t.Fatalf("sparse-exec loss %g diverged from masked-dense %g", lastS, lastD)
	}
	// Compare the sparse weight vectors against the masked-dense weights
	// compressed onto the same indices.
	for _, l := range sm.Layers {
		sl, ok := l.(*nn.SparseLinear)
		if !ok {
			continue
		}
		name := sl.Wv.Name
		var denseVal []float32
		for _, p := range msD.Model().Params() {
			if p.Name == name {
				denseVal = p.Value.Data()
			}
		}
		if denseVal == nil {
			t.Fatalf("no masked-dense twin for %s", name)
		}
		ix := pr.Index(name)
		comp := make([]float32, ix.NNZ())
		ix.Compress(comp, denseVal)
		// Scatter the sparse values back through the (in,out) order.
		got := make([]float32, ix.NNZ())
		deq := sl.DenseEquivalent()
		ix.Compress(got, deq.Data())
		for i := range comp {
			if d := math.Abs(float64(comp[i] - got[i])); d > 2e-2 {
				t.Fatalf("%s[%d]: sparse-exec %g vs masked-dense %g", name, i, got[i], comp[i])
			}
		}
	}
}

// TestSparseExecMemoryLedger checks that the ledger sees the sparse layer
// honestly: θ16 itself shrinks to the surviving coordinates (the paper
// keeps θ16 dense only because it computes dense; under sparse execution it
// compresses too) and the CSR structure is accounted as index bytes.
func TestSparseExecMemoryLedger(t *testing.T) {
	sm, ms := buildSparseExecSetup(nn.ExecSparse, 0.9, 31)
	b := ms.Memory()
	var nnz, biases int64
	var meta int64
	for _, l := range sm.Layers {
		if sl, ok := l.(*nn.SparseLinear); ok {
			nnz += int64(sl.NNZ())
			biases += int64(sl.B.Value.Len())
			meta += sl.Wv.MetaBytes
		}
	}
	if want := BytesTheta16 * (nnz + biases); b.Theta16 != want {
		t.Errorf("Theta16 = %d, want %d (compressed θ16 + dense biases)", b.Theta16, want)
	}
	if b.Index != meta {
		t.Errorf("Index = %d, want %d (CSR patterns + refresh perm)", b.Index, meta)
	}
}
