package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"github.com/sparse-dl/samo/internal/fp16"
	"github.com/sparse-dl/samo/internal/nn"
	"github.com/sparse-dl/samo/internal/optim"
	"github.com/sparse-dl/samo/internal/prune"
	"github.com/sparse-dl/samo/internal/sparse"
	"github.com/sparse-dl/samo/internal/tensor"
)

// Mode selects how model states are stored.
type Mode int

const (
	// Dense is ordinary mixed-precision training: every state tensor dense.
	Dense Mode = iota
	// SAMO compresses θ32/∇θ16/∇θ32/os to the unpruned coordinates.
	SAMO
)

func (m Mode) String() string {
	if m == SAMO {
		return "SAMO"
	}
	return "Dense"
}

// paramState holds one parameter's model-state tensors. For a pruned
// parameter under SAMO, ix is non-nil and every vector here has length
// ix.NNZ(); otherwise vectors are dense (length = parameter size).
//
// Storage-width note: gradients and parameters that are logically fp16
// (∇θ16, θ16) hold values rounded onto the fp16 grid. Element values are
// bit-faithful to half precision (including ±Inf on overflow); the Go slices
// are float32 for kernel uniformity, and the memory ledger accounts them at
// their logical 2-byte width, exactly as MemoryBreakdown specifies.
type paramState struct {
	p *nn.Param
	// ix is non-nil whenever the parameter is pruned. compressed selects
	// SAMO storage; a pruned parameter in Dense mode keeps dense state
	// tensors but still enforces the mask on captured gradients, giving the
	// masked-dense reference SAMO must match bit for bit.
	ix         *sparse.Index
	compressed bool

	theta32 []float32 // master weights (compressed under SAMO)
	grad16  []float32 // fp16-grid scaled gradients, captured layer by layer
	grad32  []float32 // fp32 unscaled gradients (optimizer input)
	tmp16   []float32 // compressed fp16 copy for the down-cast step
}

// ModelState implements mixed-precision training state management with or
// without SAMO. It owns θ32, ∇θ16, ∇θ32 and drives the optimizer; the
// model's nn.Param.Value tensors play the role of dense θ16 (values kept on
// the fp16 grid).
type ModelState struct {
	Mode   Mode
	Scaler *optim.LossScaler
	// ClipNorm, when positive, applies global gradient-norm clipping before
	// the optimizer step (Brown et al.'s recipe uses 1.0).
	ClipNorm float64

	model    *nn.Model
	opt      optim.Optimizer
	states   []*paramState
	byParam  map[*nn.Param]*paramState
	overflow bool
	steps    int
	skipped  int

	// patterns maps each pattern-bearing parameter (e.g. a SparseLinear's
	// Wv) to the layer owning its shrinkable support, discovered once at
	// construction. Gradual pruning and shrink-on-load drive the layers'
	// in-place pattern compaction through this map.
	patterns map[*nn.Param]nn.PatternLayer

	// Steady-state scratch, built once so Step/ReduceBuffers/GradHook do
	// not allocate per call.
	hook        nn.GradHook
	layerParams map[nn.Layer][]*nn.Param
	reduceBufs  [][]float32
	clipBufs    [][]float32

	// Bucketed all-reduce plan (see buckets.go). Every paramState.grad16
	// aliases a segment of exactly one bucket slab; the slabs, in backward
	// order, ARE the reduce payload. bucketMembers records each bucket's
	// member parameters in packing order — membership is FIXED at plan
	// time; a prune event compacts segments inside their slab (see
	// compactBuckets) rather than re-planning.
	buckets       []ReduceBucket
	bucketMembers [][]*paramState
	readyAt       []int // readyAt[l] = #buckets final once layer l's backward is done
}

// NewModelState builds the state manager. For SAMO mode, pr must hold the
// pruning result; its masks are applied to the parameters immediately
// (pruned weights are set to zero in the dense θ16, as the paper requires).
// For Dense mode, pr may be nil (no pruning) or non-nil (pruned-but-dense
// storage — the masked-dense reference SAMO must match numerically).
func NewModelState(model *nn.Model, opt optim.Optimizer, mode Mode, pr *prune.Result) *ModelState {
	ms := &ModelState{
		Mode:    mode,
		Scaler:  optim.NewLossScaler(),
		model:   model,
		opt:     opt,
		byParam: make(map[*nn.Param]*paramState),
	}
	if mode == SAMO && pr == nil {
		panic("core: SAMO mode requires a pruning result")
	}
	ms.patterns = make(map[*nn.Param]nn.PatternLayer)
	for _, l := range model.Layers {
		if pl, ok := l.(nn.PatternLayer); ok {
			ms.patterns[pl.PatternParam()] = pl
		}
	}
	for _, p := range model.Params() {
		st := &paramState{p: p}
		var ix *sparse.Index
		if pr != nil && nn.Prunable(p) {
			if shared := pr.Index(p.Name); shared != nil {
				// Own copy: gradual pruning shrinks it in place, and the
				// pruning result may be shared across ranks.
				ix = shared.Clone()
			}
		}
		if ix != nil {
			// Zero the pruned coordinates of dense θ16.
			ix.Mask().Apply(p.Value.Data())
		}
		// fp16-quantize the initial dense parameters (mixed-precision init).
		quantize(p.Value.Data())
		st.ix = ix
		// grad16 is not allocated here: planBuckets aliases it into the
		// bucket slabs below, so the reduce payload is contiguous per bucket.
		if mode == SAMO && ix != nil {
			st.compressed = true
			n := ix.NNZ()
			st.theta32 = make([]float32, n)
			st.grad32 = make([]float32, n)
			st.tmp16 = make([]float32, n)
			ix.Compress(st.theta32, p.Value.Data())
		} else {
			n := p.Size()
			st.theta32 = make([]float32, n)
			st.grad32 = make([]float32, n)
			copy(st.theta32, p.Value.Data())
		}
		ms.states = append(ms.states, st)
		ms.byParam[p] = st
	}
	ms.layerParams = make(map[nn.Layer][]*nn.Param)
	ms.hook = nn.GradHook{Capture: func(layer nn.Layer) {
		ps, ok := ms.layerParams[layer]
		if !ok {
			ps = layer.Params()
			ms.layerParams[layer] = ps
		}
		for _, p := range ps {
			ms.captureParam(p)
		}
	}}
	ms.clipBufs = make([][]float32, len(ms.states))
	for i, st := range ms.states {
		ms.clipBufs[i] = st.grad32
	}
	ms.planBuckets(DefaultReduceBucketElems)
	return ms
}

func quantize(data []float32) {
	for i, v := range data {
		data[i] = fp16.Round(v)
	}
}

// LossScale returns the current dynamic loss scale to multiply into the
// loss gradient before backward.
func (ms *ModelState) LossScale() float32 { return float32(ms.Scaler.Scale) }

// GradHook returns the backward-pass hook that captures (and under SAMO,
// compresses) each layer's gradients the moment that layer's backward
// finishes — §III-C's layer-granular compression. The dense accumulator is
// cleared afterwards so whole-model dense gradients never coexist. The hook
// is built once at construction (and memoizes each layer's parameter list),
// so fetching and running it allocates nothing.
func (ms *ModelState) GradHook() nn.GradHook { return ms.hook }

func (ms *ModelState) captureParam(p *nn.Param) {
	st, ok := ms.byParam[p]
	if !ok {
		panic(fmt.Sprintf("core: gradient for unregistered parameter %s", p.Name))
	}
	g := p.Grad.Data()
	switch {
	case st.compressed:
		// Compress: gather unpruned coordinates, quantizing to the fp16 grid
		// (∇θ16 is half precision). Accumulate: a pipelined schedule calls
		// the hook once per microbatch.
		for i, id := range st.ix.IDs() {
			st.grad16[i] = fp16.Round(st.grad16[i] + g[id])
		}
	case st.ix != nil:
		// Masked-dense: full-size storage, but pruned coordinates carry no
		// gradient, so they (and their optimizer states) stay exactly zero.
		for _, id := range st.ix.IDs() {
			st.grad16[id] = fp16.Round(st.grad16[id] + g[id])
		}
	default:
		for i := range g {
			st.grad16[i] = fp16.Round(st.grad16[i] + g[i])
		}
	}
	p.Grad.Zero()
}

// CaptureAll captures every parameter's gradient (the non-pipelined path,
// equivalent to running the hook over all layers).
func (ms *ModelState) CaptureAll() {
	for _, st := range ms.states {
		ms.captureParam(st.p)
	}
}

// ReduceBuffers exposes the captured fp16 gradient payload for data-parallel
// all-reduce, one buffer per size-bounded bucket in backward order (the order
// gradients become final — see planBuckets). Under SAMO these hold the
// compressed vectors — the paper's collective-communication optimization:
// message size drops from 2φ to 2fφ bytes with no extra copies. Both the
// serial-barrier and the overlapped reduce paths consume exactly this list
// in exactly this order, which is what makes them bitwise-identical. The
// returned slice is owned by the state and reused across calls (do not
// modify its structure).
func (ms *ModelState) ReduceBuffers() [][]float32 { return ms.reduceBufs }

// GradElements returns the total element count of the all-reduce payload.
func (ms *ModelState) GradElements() int64 {
	var n int64
	for _, st := range ms.states {
		n += int64(len(st.grad16))
	}
	return n
}

// Overflow scans the captured fp16 gradients for Inf/NaN — the per-step
// overflow check behind dynamic loss scaling. Large gradient vectors scan
// chunked on the worker pool with an atomic early exit
// (tensor.HasNonFiniteSlice); the scan allocates nothing, preserving the
// fp16 train-step zero-alloc contract. In distributed training every rank
// must agree on the verdict (or their loss scales and parameters diverge),
// so the engine reduces this flag globally before calling StepGiven.
func (ms *ModelState) Overflow() bool {
	for _, st := range ms.states {
		if tensor.HasNonFiniteSlice(st.grad16) {
			return true
		}
	}
	return false
}

// Step runs the mixed-precision optimizer step (§III-C):
//
//  1. overflow check on ∇θ16 (dynamic loss scaling);
//  2. upscale: ∇θ32 = ∇θ16 / scale, computed directly on the compressed
//     vectors;
//  3. optimizer on (θ32, ∇θ32) — compressed vectors, dense kernels;
//  4. down-cast: tmp16 = fp16(θ32); then EXPAND tmp16 into dense θ16.
//
// It returns true if the step was applied, false if skipped on overflow.
// Gradient accumulators are cleared either way.
func (ms *ModelState) Step() bool { return ms.StepGiven(ms.Overflow()) }

// StepGiven is Step with an externally supplied (e.g. globally reduced)
// overflow verdict.
func (ms *ModelState) StepGiven(overflow bool) bool {
	// Snapshot the scale the in-flight gradients were produced under:
	// Scaler.Update may grow it for the NEXT step.
	scaleUsed := ms.Scaler.Scale
	if !ms.Scaler.Update(overflow) {
		ms.skipped++
		for _, st := range ms.states {
			zero(st.grad16)
		}
		return false
	}
	invScale := float32(1 / scaleUsed)

	for _, st := range ms.states {
		for i, g := range st.grad16 {
			st.grad32[i] = g * invScale
		}
	}
	if ms.ClipNorm > 0 {
		optim.ClipGradNorm(ms.clipBufs, ms.ClipNorm)
	}
	for _, st := range ms.states {
		ms.opt.Step(st.p.Name, st.theta32, st.grad32)
		if st.compressed {
			// Down-cast with expansion: compressed fp16 copy, then scatter.
			for i, v := range st.theta32 {
				st.tmp16[i] = fp16.Round(v)
			}
			st.ix.Expand(st.p.Value.Data(), st.tmp16)
		} else {
			dst := st.p.Value.Data()
			for i, v := range st.theta32 {
				dst[i] = fp16.Round(v)
			}
		}
		zero(st.grad16)
	}
	ms.steps++
	return true
}

// Steps returns how many optimizer steps were applied.
func (ms *ModelState) Steps() int { return ms.steps }

// SkippedSteps returns how many steps were skipped due to fp16 overflow.
func (ms *ModelState) SkippedSteps() int { return ms.skipped }

// Memory returns the byte-accurate ledger of this state's storage at its
// logical widths. For SAMO it equals SAMOBreakdown(φ, fφ) plus the dense
// remainder for unprunable parameters; the equivalence with the §III-D
// closed form is asserted in tests.
func (ms *ModelState) Memory() MemoryBreakdown {
	var b MemoryBreakdown
	for _, st := range ms.states {
		full := int64(st.p.Size())
		stored := int64(len(st.theta32))
		b.Theta16 += BytesTheta16 * full
		b.Grad16 += BytesGrad16 * stored
		b.Theta32 += BytesTheta32 * stored
		b.Grad32 += BytesGrad32 * stored
		b.OptStates += int64(ms.opt.StateBytesPerParam()) * stored
		if st.compressed {
			b.Index += st.ix.Bytes()
			b.TempCopy += BytesTheta16 * stored
		}
		// Layer-owned structure (e.g. a SparseLinear's CSR patterns) rides
		// with the parameter it indexes.
		b.Index += st.p.MetaBytes
	}
	return b
}

// Fingerprint hashes the state's IMMUTABLE structure — mode, optimizer
// footprint, and per parameter its name and full (pattern-independent)
// size. Two states with equal fingerprints accept each other's
// checkpoints; the checkpoint manager stores it in the manifest so a
// resume against a different model, optimizer or storage mode is refused
// up front instead of failing byte-by-byte mid-load.
//
// The stored (pattern-dependent) length is deliberately NOT hashed: a
// gradual pruning schedule shrinks patterns mid-run, and a freshly rebuilt
// state (initial pattern) must accept a post-shrink checkpoint to recover.
// The pattern itself is serialized inside the snapshot and validated there
// — a checkpoint loads only into a matching (superset) pattern, with the
// state shrunk on load.
func (ms *ModelState) Fingerprint() uint64 {
	h := fnv.New64a()
	var b [8]byte
	putU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	putU64(uint64(ms.Mode))
	putU64(uint64(ms.opt.StateBytesPerParam()))
	for _, st := range ms.states {
		h.Write([]byte(st.p.Name))
		putU64(uint64(ms.fullSize(st)))
	}
	return h.Sum64()
}

// fullSize returns a parameter's pattern-independent element count: the
// dense-view length for pattern-bearing parameters (whose p.Size() shrinks
// with the pattern), the tensor size otherwise.
func (ms *ModelState) fullSize(st *paramState) int {
	if pl := ms.patterns[st.p]; pl != nil {
		return pl.PatternFullLen()
	}
	return st.p.Size()
}

// Model returns the managed model.
func (ms *ModelState) Model() *nn.Model { return ms.model }

func zero(s []float32) {
	for i := range s {
		s[i] = 0
	}
}
