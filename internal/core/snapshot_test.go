package core

import (
	"bytes"
	"strings"
	"testing"

	"github.com/sparse-dl/samo/internal/nn"
	"github.com/sparse-dl/samo/internal/optim"
	"github.com/sparse-dl/samo/internal/tensor"
)

func TestCheckpointResumeEquivalence(t *testing.T) {
	// Train 5 steps, checkpoint, train 5 more (run A). Separately, rebuild
	// from scratch, load the checkpoint, train the same 5 batches (run B).
	// A and B must agree bitwise: checkpointing captures the full training
	// state (θ32, Adam moments, loss scaler).
	_, msA, _ := buildTestSetup(SAMO, 0.7, 77)
	trA := NewTrainer(msA)
	for step := 0; step < 5; step++ {
		x, tg := makeBatch(6, 8, 4, uint64(2000+step))
		trA.TrainStep(x, tg)
	}
	var buf bytes.Buffer
	n, err := msA.Save(&buf)
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("Save reported %d bytes, wrote %d", n, buf.Len())
	}
	var lossesA []float64
	for step := 5; step < 10; step++ {
		x, tg := makeBatch(6, 8, 4, uint64(2000+step))
		l, _ := trA.TrainStep(x, tg)
		lossesA = append(lossesA, l)
	}

	_, msB, _ := buildTestSetup(SAMO, 0.7, 77)
	if err := msB.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("Load: %v", err)
	}
	trB := NewTrainer(msB)
	for step := 5; step < 10; step++ {
		x, tg := makeBatch(6, 8, 4, uint64(2000+step))
		l, _ := trB.TrainStep(x, tg)
		if l != lossesA[step-5] {
			t.Fatalf("step %d: resumed loss %.9f != original %.9f", step, l, lossesA[step-5])
		}
	}
	// Final parameters identical.
	pa, pb := msA.Model().Params(), msB.Model().Params()
	for i := range pa {
		if d := tensor.MaxAbsDiff(pa[i].Value, pb[i].Value); d != 0 {
			t.Errorf("param %s differs by %g after resume", pa[i].Name, d)
		}
	}
}

func TestCheckpointRestoresScalerAndCounters(t *testing.T) {
	_, ms, _ := buildTestSetup(SAMO, 0.5, 79)
	ms.Scaler.Scale = 4096
	tr := NewTrainer(ms)
	x, tg := makeBatch(4, 8, 4, 3000)
	tr.TrainStep(x, tg)

	var buf bytes.Buffer
	if _, err := ms.Save(&buf); err != nil {
		t.Fatal(err)
	}
	_, ms2, _ := buildTestSetup(SAMO, 0.5, 79)
	if err := ms2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if ms2.Scaler.Scale != ms.Scaler.Scale {
		t.Errorf("scaler scale %g != %g", ms2.Scaler.Scale, ms.Scaler.Scale)
	}
	if ms2.Steps() != ms.Steps() || ms2.SkippedSteps() != ms.SkippedSteps() {
		t.Error("step counters not restored")
	}
}

func TestCheckpointSAMOSmallerThanDense(t *testing.T) {
	// The SAMO payoff extends to checkpoints: compressed θ32 + moments at
	// 90% sparsity make the file far smaller than the dense checkpoint of
	// the same model.
	_, msS, _ := buildTestSetup(SAMO, 0.9, 81)
	msD := NewModelState(nn.BuildMLP("mlp", []int{8, 16, 4}, tensor.NewRNG(81)),
		optim.NewAdam(0.01), Dense, nil)
	// Prime optimizer states so both serialize them.
	trS, trD := NewTrainer(msS), NewTrainer(msD)
	x, tg := makeBatch(4, 8, 4, 4000)
	trS.TrainStep(x, tg)
	trD.TrainStep(x.Clone(), tg)

	var bs, bd bytes.Buffer
	if _, err := msS.Save(&bs); err != nil {
		t.Fatal(err)
	}
	if _, err := msD.Save(&bd); err != nil {
		t.Fatal(err)
	}
	if bs.Len() >= bd.Len() {
		t.Errorf("SAMO checkpoint %d bytes not smaller than dense %d", bs.Len(), bd.Len())
	}
	// At 90% sparsity of the weight-dominated MLP, expect well under half.
	if float64(bs.Len()) > 0.6*float64(bd.Len()) {
		t.Errorf("compression weaker than expected: %d vs %d", bs.Len(), bd.Len())
	}
}

func TestCheckpointCorruptionDetected(t *testing.T) {
	_, ms, _ := buildTestSetup(SAMO, 0.5, 83)
	var buf bytes.Buffer
	if _, err := ms.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Flip a payload byte: CRC must catch it.
	corrupt := append([]byte(nil), raw...)
	corrupt[len(corrupt)/2] ^= 0xFF
	_, ms2, _ := buildTestSetup(SAMO, 0.5, 83)
	if err := ms2.Load(bytes.NewReader(corrupt)); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Errorf("corruption not detected: %v", err)
	}
	// Truncation must be caught too.
	_, ms3, _ := buildTestSetup(SAMO, 0.5, 83)
	if err := ms3.Load(bytes.NewReader(raw[:len(raw)-10])); err == nil {
		t.Error("truncation not detected")
	}
	// Wrong mode must be rejected.
	_, msD, _ := buildTestSetup(Dense, 0.5, 83)
	if err := msD.Load(bytes.NewReader(raw)); err == nil || !strings.Contains(err.Error(), "mode") {
		t.Errorf("mode mismatch not detected: %v", err)
	}
	// Garbage must be rejected by magic.
	_, ms4, _ := buildTestSetup(SAMO, 0.5, 83)
	junk := append([]byte("notasamocheckpointbutlongenough"), 0, 0, 0, 0)
	if err := ms4.Load(bytes.NewReader(junk)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestCheckpointFreshStateLoad(t *testing.T) {
	// Loading into a never-stepped state (no optimizer vectors yet) works:
	// Load primes and overwrites them.
	_, ms, _ := buildTestSetup(SAMO, 0.6, 87)
	tr := NewTrainer(ms)
	x, tg := makeBatch(4, 8, 4, 5000)
	tr.TrainStep(x, tg)
	var buf bytes.Buffer
	if _, err := ms.Save(&buf); err != nil {
		t.Fatal(err)
	}

	_, fresh, _ := buildTestSetup(SAMO, 0.6, 87) // never stepped
	if err := fresh.Load(&buf); err != nil {
		t.Fatalf("Load into fresh state: %v", err)
	}
	pa, pb := ms.Model().Params(), fresh.Model().Params()
	for i := range pa {
		if d := tensor.MaxAbsDiff(pa[i].Value, pb[i].Value); d != 0 {
			t.Errorf("param %s differs by %g", pa[i].Name, d)
		}
	}
}
