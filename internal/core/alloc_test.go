package core

import (
	"testing"

	"github.com/sparse-dl/samo/internal/nn"
	"github.com/sparse-dl/samo/internal/optim"
	"github.com/sparse-dl/samo/internal/prune"
	"github.com/sparse-dl/samo/internal/tensor"
)

// TestTrainStepZeroAlloc pins the tentpole perf contract: after warmup, a
// full mixed-precision SAMO training step — forward, loss, scaled backward
// with layer-granular gradient capture, optimizer step, fp16 down-cast and
// expansion — performs zero heap allocations. Everything runs on the
// trainer's arena, the layer cache pools, and the kernel job free lists.
func TestTrainStepZeroAlloc(t *testing.T) {
	// Hermetic allocation counting: AllocsPerRun tallies process-wide
	// mallocs, so a background tune-table save (triggered whenever a GEMM
	// bucket happens to freeze nearby) would show up as phantom allocs.
	// "off" makes the freeze path inert; persistence itself is pinned by
	// TestTunePersistenceRoundTripAllocFree.
	t.Setenv("SAMO_GEMM_TUNE", "off")

	for _, mode := range []Mode{Dense, SAMO} {
		_, ms, _ := buildTestSetup(mode, 0.75, 7)
		tr := NewTrainer(ms)
		x, targets := makeBatch(16, 8, 4, 8)
		// Warm: arena free lists, cache pools, optimizer state, worker pool.
		for i := 0; i < 3; i++ {
			tr.TrainStep(x, targets)
		}
		if a := testing.AllocsPerRun(30, func() { tr.TrainStep(x, targets) }); a != 0 {
			t.Errorf("%v: TrainStep allocates %.1f per step, want 0", mode, a)
		}
	}
}

// stateFor prunes the model's weight matrices and wraps it in a ModelState.
func stateFor(m *nn.Model, mode Mode, sparsity float64) *ModelState {
	var layers []prune.Layer
	for _, e := range m.PruneLayers() {
		layers = append(layers, prune.Layer{Name: e.Name, Values: e.Param.Value.Data()})
	}
	pr := prune.MagnitudePerLayer(layers, sparsity)
	return NewModelState(m, optim.NewAdam(1e-3), mode, pr)
}

// TestCNNTrainStepZeroAlloc extends the zero-alloc contract to the CNN
// path: im2col lowering, conv forward/backward, batch norm, pooling and
// the residual shortcut must all run on pooled/arena state. PR 1 left
// closure dispatch on this path; this pins the closed gap.
func TestCNNTrainStepZeroAlloc(t *testing.T) {
	// Hermetic allocation counting: AllocsPerRun tallies process-wide
	// mallocs, so a background tune-table save (triggered whenever a GEMM
	// bucket happens to freeze nearby) would show up as phantom allocs.
	// "off" makes the freeze path inert; persistence itself is pinned by
	// TestTunePersistenceRoundTripAllocFree.
	t.Setenv("SAMO_GEMM_TUNE", "off")

	rng := tensor.NewRNG(21)
	m := nn.BuildVGG("allocvgg", []int{8, -1, 16, -1}, 3, 8, 4, rng)
	tr := NewTrainer(stateFor(m, SAMO, 0.75))
	x := tensor.New(4, 3, 8, 8)
	tensor.FillNormal(x, 1, rng)
	targets := []int{0, 1, 2, 3}
	for i := 0; i < 3; i++ {
		tr.TrainStep(x, targets)
	}
	if a := testing.AllocsPerRun(20, func() { tr.TrainStep(x, targets) }); a != 0 {
		t.Errorf("CNN TrainStep allocates %.1f per step, want 0", a)
	}

	// The residual (WideResNet) path adds shortcut convs and batch norm in
	// a different composition; pin it too.
	rng2 := tensor.NewRNG(22)
	mr := nn.BuildWideResNet("allocwrn", 1, 1, 3, 8, 4, rng2)
	trr := NewTrainer(stateFor(mr, SAMO, 0.75))
	for i := 0; i < 3; i++ {
		trr.TrainStep(x, targets)
	}
	if a := testing.AllocsPerRun(20, func() { trr.TrainStep(x, targets) }); a != 0 {
		t.Errorf("WideResNet TrainStep allocates %.1f per step, want 0", a)
	}
}

// TestConv2DForwardBackwardZeroAlloc pins the conv layer in isolation: a
// steady-state forward+backward pair — im2col, the GEMM triple, and the
// PARALLEL Col2Im gather in Backward — must run entirely on the arena and
// the pooled kernel jobs. Workers are pinned above one so the test
// exercises the pool-dispatch path of the parallel col2im, not the inline
// fallback.
func TestConv2DForwardBackwardZeroAlloc(t *testing.T) {
	// Hermetic allocation counting: AllocsPerRun tallies process-wide
	// mallocs, so a background tune-table save (triggered whenever a GEMM
	// bucket happens to freeze nearby) would show up as phantom allocs.
	// "off" makes the freeze path inert; persistence itself is pinned by
	// TestTunePersistenceRoundTripAllocFree.
	t.Setenv("SAMO_GEMM_TUNE", "off")

	defer tensor.SetWorkers(tensor.SetWorkers(4))
	rng := tensor.NewRNG(31)
	conv := nn.NewConv2d("alloc-conv", tensor.ConvSpec{
		InC: 8, OutC: 16, Kernel: 3, Stride: 1, Pad: 1, InH: 12, InW: 12}, rng)
	x := tensor.New(2, 8, 12, 12)
	tensor.FillNormal(x, 1, rng)
	arena := tensor.NewArena()
	step := func() {
		y, cache := conv.Forward(arena, x, true)
		conv.Backward(arena, cache, y) // y has the gradient's shape; values are irrelevant here
		arena.Reset()
	}
	for i := 0; i < 3; i++ {
		step() // warm arena free lists, cache pools, worker pool, autotuner
	}
	if a := testing.AllocsPerRun(30, step); a != 0 {
		t.Errorf("Conv2d forward+backward allocates %.1f per step, want 0", a)
	}
}

// TestTunePersistenceRoundTripAllocFree pins the default-path autotune
// persistence: decisions frozen during training save to TunePath() and load
// back, and neither the loaded table nor the save machinery adds
// allocations to the training step.
func TestTunePersistenceRoundTripAllocFree(t *testing.T) {
	t.Setenv("SAMO_GEMM_TUNE", t.TempDir()+"/gemm_tune.json")
	_, ms, _ := buildTestSetup(SAMO, 0.75, 9)
	tr := NewTrainer(ms)
	x, targets := makeBatch(16, 8, 4, 8)
	for i := 0; i < 60; i++ {
		tr.TrainStep(x, targets) // enough calls for the hot buckets to freeze
	}
	path := tensor.TunePath()
	if err := tensor.SaveTuneTable(path); err != nil {
		t.Fatalf("SaveTuneTable(%s): %v", path, err)
	}
	tensor.ResetTuneTable()
	if err := tensor.LoadTuneTable(path); err != nil {
		t.Fatalf("LoadTuneTable(%s): %v", path, err)
	}
	if a := testing.AllocsPerRun(30, func() { tr.TrainStep(x, targets) }); a != 0 {
		t.Errorf("TrainStep with reloaded tune table allocates %.1f per step, want 0", a)
	}
}

// TestGPTTrainStepZeroAlloc extends the zero-alloc contract to the GPT
// path: embedding lookup, attention (whose per-head fan-out used closure
// dispatch before this PR), layer norm, GELU MLP and the LM head.
func TestGPTTrainStepZeroAlloc(t *testing.T) {
	// Hermetic allocation counting: AllocsPerRun tallies process-wide
	// mallocs, so a background tune-table save (triggered whenever a GEMM
	// bucket happens to freeze nearby) would show up as phantom allocs.
	// "off" makes the freeze path inert; persistence itself is pinned by
	// TestTunePersistenceRoundTripAllocFree.
	t.Setenv("SAMO_GEMM_TUNE", "off")

	rng := tensor.NewRNG(23)
	cfg := nn.GPTConfig{Name: "alloc-gpt", Layers: 2, Hidden: 16, Heads: 2,
		Seq: 8, Vocab: 32, BatchSize: 2}
	m := nn.BuildGPT(cfg, rng)
	tr := NewTrainer(stateFor(m, SAMO, 0.5))
	tokens := make([]int, 2*cfg.Seq)
	targets := make([]int, 2*cfg.Seq)
	drng := tensor.NewRNG(24)
	for i := range tokens {
		tokens[i] = drng.Intn(cfg.Vocab)
		targets[i] = drng.Intn(cfg.Vocab)
	}
	x := nn.TokensToTensor(tokens)
	for i := 0; i < 3; i++ {
		tr.TrainStep(x, targets)
	}
	if a := testing.AllocsPerRun(20, func() { tr.TrainStep(x, targets) }); a != 0 {
		t.Errorf("GPT TrainStep allocates %.1f per step, want 0", a)
	}
}
