package core

import (
	"testing"
)

// TestTrainStepZeroAlloc pins the tentpole perf contract: after warmup, a
// full mixed-precision SAMO training step — forward, loss, scaled backward
// with layer-granular gradient capture, optimizer step, fp16 down-cast and
// expansion — performs zero heap allocations. Everything runs on the
// trainer's arena, the layer cache pools, and the kernel job free lists.
func TestTrainStepZeroAlloc(t *testing.T) {
	for _, mode := range []Mode{Dense, SAMO} {
		_, ms, _ := buildTestSetup(mode, 0.75, 7)
		tr := NewTrainer(ms)
		x, targets := makeBatch(16, 8, 4, 8)
		// Warm: arena free lists, cache pools, optimizer state, worker pool.
		for i := 0; i < 3; i++ {
			tr.TrainStep(x, targets)
		}
		if a := testing.AllocsPerRun(30, func() { tr.TrainStep(x, targets) }); a != 0 {
			t.Errorf("%v: TrainStep allocates %.1f per step, want 0", mode, a)
		}
	}
}
