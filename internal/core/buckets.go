package core

import "fmt"

// Bucketed all-reduce plan.
//
// The data-parallel reduce payload (every paramState's ∇θ16 vector) is laid
// out in size-bounded contiguous slabs — buckets — packed at parameter
// granularity in BACKWARD order: the first bucket holds the last layers'
// gradients, which are the first to become final during backward. Each
// paramState.grad16 aliases a segment of exactly one slab, so gradient
// capture writes straight into the reduce payload with no gather copy, and
// the engine can launch bucket i's all-reduce the moment the backward pass
// crosses bucket i's lowest layer — while earlier layers are still
// computing.
//
// Determinism contract: the plan is a pure function of the model structure
// and maxElems, so every rank in a stage group builds the identical plan,
// and the overlapped and serial-barrier reduce paths consume the identical
// buffer list in the identical order. Bucket contents and reduce order are
// fixed here, never by arrival timing — which is what makes overlap-on vs
// overlap-off bitwise-identical.

// DefaultReduceBucketElems bounds each bucket's element count. 2^18 fp16
// elements is 512 KiB on the wire — large enough to amortize per-collective
// latency, small enough that a model of any size yields several buckets to
// pipeline behind backward.
const DefaultReduceBucketElems = 1 << 18

// ReduceBucket is one contiguous slab of the all-reduce payload.
type ReduceBucket struct {
	// Layer is the lowest model-layer index contributing gradients to this
	// bucket: the bucket is final once that layer's backward has completed.
	Layer int
	// Data is the flat fp16-grid gradient slab, aliased by the member
	// parameters' grad16 segments.
	Data []float32
}

// ReduceBuckets returns the bucket plan in backward (launch) order. The
// slice and slabs are owned by the state and reused across steps.
func (ms *ModelState) ReduceBuckets() []ReduceBucket { return ms.buckets }

// BucketReady reports how many leading buckets of ReduceBuckets are final
// once layer `layer`'s backward has completed — the iterator the engine
// consumes from nn.GradHook.LayerDone to launch overlapped reduces.
func (ms *ModelState) BucketReady(layer int) int { return ms.readyAt[layer] }

// PlanReduceBuckets re-plans the bucket layout with a new size bound,
// preserving any captured gradient values. The engine calls it once at
// worker construction when Config.ReduceBucketElems overrides the default;
// it is not a steady-state operation (it allocates fresh slabs).
func (ms *ModelState) PlanReduceBuckets(maxElems int) { ms.planBuckets(maxElems) }

// planBuckets packs parameters into buckets and aliases every grad16 into
// its slab segment. Walks layers in backward order, starting a new bucket
// whenever adding the next parameter would exceed maxElems (a single
// parameter larger than maxElems gets a bucket of its own).
func (ms *ModelState) planBuckets(maxElems int) {
	if maxElems <= 0 {
		maxElems = DefaultReduceBucketElems
	}
	layers := ms.model.Layers

	type member struct {
		st    *paramState
		layer int
	}
	var packed [][]member
	var cur []member
	curElems := 0
	flush := func() {
		if len(cur) > 0 {
			packed = append(packed, cur)
			cur, curElems = nil, 0
		}
	}
	for li := len(layers) - 1; li >= 0; li-- {
		for _, p := range layers[li].Params() {
			st, ok := ms.byParam[p]
			if !ok {
				panic(fmt.Sprintf("core: bucket plan saw unregistered parameter %s", p.Name))
			}
			n := len(st.theta32) // stored (possibly compressed) gradient length
			if curElems > 0 && curElems+n > maxElems {
				flush()
			}
			cur = append(cur, member{st, li})
			curElems += n
		}
	}
	flush()

	ms.buckets = make([]ReduceBucket, len(packed))
	ms.reduceBufs = make([][]float32, len(packed))
	ms.bucketMembers = make([][]*paramState, len(packed))
	for bi, members := range packed {
		mem := make([]*paramState, len(members))
		for i, m := range members {
			mem[i] = m.st
		}
		ms.bucketMembers[bi] = mem
		total := 0
		for _, m := range members {
			total += len(m.st.theta32)
		}
		slab := make([]float32, total)
		off := 0
		for _, m := range members {
			n := len(m.st.theta32)
			seg := slab[off : off+n : off+n]
			// Preserve captured values across a re-plan (construction-time
			// grad16 is nil, so this is a no-op there).
			copy(seg, m.st.grad16)
			m.st.grad16 = seg
			off += n
		}
		// Members are packed in descending layer order, so the last one
		// carries the bucket's lowest contributing layer.
		ms.buckets[bi] = ReduceBucket{Layer: members[len(members)-1].layer, Data: slab}
		ms.reduceBufs[bi] = slab
	}

	// readyAt[l] counts buckets whose lowest layer is >= l. Bucket minima
	// are non-increasing across the plan, so the ready set is always a
	// prefix of ReduceBuckets.
	ms.readyAt = make([]int, len(layers)+1)
	for l := range ms.readyAt {
		n := 0
		for _, b := range ms.buckets {
			if b.Layer >= l {
				n++
			}
		}
		ms.readyAt[l] = n
	}
}

// compactBuckets shrinks the grad16 slabs in place after a pattern shrink:
// each touched bucket's member segments slide leftward inside the existing
// slab (membership, packing order, Layer minima and hence readyAt never
// change — the plan is fixed; only segment lengths shrink). segKeeps holds
// the keep mask for every member whose stored vectors compacted; members
// absent from it (untouched parameters, and masked-dense ones whose
// storage stays full-length) keep their length and only shift. Kept values
// move with their positions, so a mid-run shrink never corrupts captured
// gradients; no allocation happens here.
func (ms *ModelState) compactBuckets(segKeeps map[*paramState][]bool) {
	for bi, members := range ms.bucketMembers {
		touched := false
		for _, st := range members {
			if _, ok := segKeeps[st]; ok {
				touched = true
				break
			}
		}
		if !touched {
			continue
		}
		slab := ms.buckets[bi].Data
		w := 0
		for _, st := range members {
			seg := st.grad16
			start := w
			if keep, ok := segKeeps[st]; ok {
				// In-slab left compaction: writes never pass reads because
				// segments only ever shrink.
				for i, k := range keep {
					if k {
						slab[w] = seg[i]
						w++
					}
				}
			} else {
				copy(slab[w:w+len(seg)], seg)
				w += len(seg)
			}
			st.grad16 = slab[start:w:w]
		}
		ms.buckets[bi].Data = slab[:w]
		ms.reduceBufs[bi] = ms.buckets[bi].Data
	}
}
