package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"

	"github.com/sparse-dl/samo/internal/fp16"
	"github.com/sparse-dl/samo/internal/nn"
	"github.com/sparse-dl/samo/internal/optim"
	"github.com/sparse-dl/samo/internal/prune"
	"github.com/sparse-dl/samo/internal/sparse"
	"github.com/sparse-dl/samo/internal/tensor"
)

// InferenceState is the forward-only counterpart of ModelState: it holds a
// model whose weights are fp16-grid dense tensors (or CSR values, for
// SparseLinear layers) and NOTHING else — no gradient accumulators, no θ32
// master weights, no optimizer states, no reduce buffers. Construction
// releases every Param.Grad tensor, so the resident footprint is the θ16
// line of the §III-D ledger alone: 2φ plus any layer-owned sparse pattern
// bytes.
//
// The state is constructed with the same (model, optimizer, mode, pruning)
// identity a training run would use, so Fingerprint matches the ModelState
// that produced a checkpoint and ckpt.Manager.Load accepts training
// checkpoints directly: θ32 is parsed, quantized onto the fp16 grid and
// expanded into the dense weights — the optimizer-state vectors are
// validated and discarded. The model handed in must not be trained
// afterwards (its gradient tensors are gone; Backward would panic).
type InferenceState struct {
	Mode Mode

	model    *nn.Model
	optBytes int // optimizer footprint of the checkpoints this state accepts
	params   []inferParam
	patterns map[*nn.Param]nn.PatternLayer
}

// inferParam mirrors paramState's structural fields without any of its
// storage. The index is this state's private clone: loading a checkpoint
// written after gradual prune events shrinks it in place.
type inferParam struct {
	p          *nn.Param
	ix         *sparse.Index
	compressed bool
}

// NewInferenceState builds a forward-only state over model. opt identifies
// the optimizer of the training runs whose checkpoints this state should
// accept (only its per-parameter state footprint is read; no optimizer is
// retained). mode and pr must match the training configuration exactly as
// for NewModelState: pruning masks are applied to the dense weights and the
// initial parameters are fp16-quantized, so a freshly built inference model
// is bitwise-identical to a freshly built training model before any steps.
func NewInferenceState(model *nn.Model, opt optim.Optimizer, mode Mode, pr *prune.Result) *InferenceState {
	if mode == SAMO && pr == nil {
		panic("core: SAMO mode requires a pruning result")
	}
	s := &InferenceState{
		Mode:     mode,
		model:    model,
		optBytes: opt.StateBytesPerParam(),
		patterns: make(map[*nn.Param]nn.PatternLayer),
	}
	for _, l := range model.Layers {
		if pl, ok := l.(nn.PatternLayer); ok {
			s.patterns[pl.PatternParam()] = pl
		}
	}
	for _, p := range model.Params() {
		ip := inferParam{p: p}
		if pr != nil && nn.Prunable(p) {
			// Private clone: shrink-on-load mutates the index in place, and
			// the pruning result may be shared with other states.
			if shared := pr.Index(p.Name); shared != nil {
				ip.ix = shared.Clone()
			}
		}
		if ip.ix != nil {
			ip.ix.Mask().Apply(p.Value.Data())
		}
		quantize(p.Value.Data())
		if mode == SAMO && ip.ix != nil {
			ip.compressed = true
		}
		// Forward-only: the gradient accumulator will never be written.
		// Release it so the footprint shrinks from 4φ (Value+Grad fp32
		// slices) to the θ16 line alone.
		p.Grad = nil
		s.params = append(s.params, ip)
	}
	return s
}

// Model returns the managed model.
func (s *InferenceState) Model() *nn.Model { return s.model }

// Memory returns the forward-only ledger: dense θ16 at its logical 2-byte
// width plus layer-owned index structure (SparseLinear CSR patterns). Every
// training-only component — gradients, master weights, optimizer states,
// the down-cast temp copy — is zero by construction.
func (s *InferenceState) Memory() MemoryBreakdown {
	var b MemoryBreakdown
	for _, ip := range s.params {
		b.Theta16 += BytesTheta16 * int64(ip.p.Size())
		b.Index += ip.p.MetaBytes
	}
	return b
}

// Fingerprint hashes the same structural identity as ModelState.Fingerprint
// — mode, optimizer footprint, per-parameter name and full (pre-pruning)
// size — so a training checkpoint's manifest fingerprint matches and
// ckpt.Manager loads it into inference mode with the same up-front refusal
// semantics, at any point of a gradual pruning schedule (patterns are
// validated structurally inside the snapshot, not here).
func (s *InferenceState) Fingerprint() uint64 {
	h := fnv.New64a()
	var b [8]byte
	putU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	putU64(uint64(s.Mode))
	putU64(uint64(s.optBytes))
	for _, ip := range s.params {
		h.Write([]byte(ip.p.Name))
		putU64(uint64(s.fullSize(ip)))
	}
	return h.Sum64()
}

// fullSize is the dense (pre-pruning) element count of a parameter — the
// pattern layer's full matrix for SparseLinear values, p.Size() otherwise.
func (s *InferenceState) fullSize(ip inferParam) int {
	if pl := s.patterns[ip.p]; pl != nil {
		return pl.PatternFullLen()
	}
	return ip.p.Size()
}

// Save is unsupported: an InferenceState holds no θ32 or optimizer state to
// serialize. It exists so the type satisfies ckpt.State for loading.
func (s *InferenceState) Save(io.Writer) (int64, error) {
	return 0, fmt.Errorf("core: InferenceState is read-only (no θ32/optimizer state to save)")
}

// Load restores the weights from a training checkpoint written by
// ModelState.Save: the full payload is CRC-checked and parsed against this
// state's structure first (transactional, like ModelState.Load), then θ32
// is quantized onto the fp16 grid and expanded into the dense weights.
// Scaler state, step counts and optimizer vectors are validated but
// discarded — inference has no consumer for them.
func (s *InferenceState) Load(r io.Reader) error {
	raw, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	// The spec is rebuilt per call: a previous shrink-on-load may have
	// shrunk patterns, and the next checkpoint validates against the
	// current ones.
	spec := snapSpec{mode: s.Mode, wantK: s.optBytes / 4}
	for _, ip := range s.params {
		ps := snapParamSpec{name: ip.p.Name, stored: ip.p.Size(), full: s.fullSize(ip)}
		switch {
		case s.patterns[ip.p] != nil:
			ps.ids = s.patterns[ip.p].PatternIDs()
			ps.patternSized = true
		case ip.compressed:
			ps.stored = ip.ix.NNZ()
			ps.ids = ip.ix.IDs()
			ps.patternSized = true
		case ip.ix != nil:
			ps.ids = ip.ix.IDs()
		}
		spec.params = append(spec.params, ps)
	}
	stg, err := parseSnapshot(raw, &spec)
	if err != nil {
		return err
	}
	// Commit: shrink-on-load where the checkpoint's pattern is a strict
	// subset, then θ32 -> fp16 grid -> dense θ16 (the optimizer down-cast
	// path, without an optimizer).
	for i, ip := range s.params {
		sp := &stg.params[i]
		if k := sp.keep; k != nil {
			switch {
			case s.patterns[ip.p] != nil:
				s.patterns[ip.p].ShrinkPattern(k)
			case ip.compressed:
				ids := ip.ix.IDs()
				dst := ip.p.Value.Data()
				for j, kk := range k {
					if !kk {
						dst[ids[j]] = 0
					}
				}
				ip.ix.ShrinkTo(k)
			default:
				ip.ix.ShrinkTo(k)
			}
		}
		if ip.compressed {
			for j, v := range sp.theta32 {
				sp.theta32[j] = fp16.Round(v)
			}
			ip.ix.Expand(ip.p.Value.Data(), sp.theta32)
		} else {
			dst := ip.p.Value.Data()
			for j, v := range sp.theta32 {
				dst[j] = fp16.Round(v)
			}
		}
	}
	return nil
}

// Inferencer runs steady-state forward passes over an InferenceState with
// activation memory sized to the forward working set: the model executes
// through nn.Model.InferWindowed over two ping-ponged arenas, so an
// activation is reclaimed one layer after it is produced instead of
// surviving to the end of the pass. After warm-up a Forward performs zero
// heap allocations.
//
// An Inferencer is NOT safe for concurrent use (its arenas are not); the
// serving engine gives each batching loop its own.
type Inferencer struct {
	state *InferenceState
	a, b  *tensor.Arena
}

// NewInferencer wraps an InferenceState.
func NewInferencer(st *InferenceState) *Inferencer {
	return &Inferencer{state: st, a: tensor.NewArena(), b: tensor.NewArena()}
}

// State returns the wrapped InferenceState.
func (inf *Inferencer) State() *InferenceState { return inf.state }

// Forward runs one forward-only pass. The returned tensor is owned by the
// Inferencer's arenas and is valid only until the next Forward call — copy
// out anything that must survive (the serving engine copies each request's
// rows into its response buffer).
func (inf *Inferencer) Forward(x *tensor.Tensor) *tensor.Tensor {
	return inf.state.model.InferWindowed(inf.a, inf.b, x)
}
