package experiments

import (
	"bytes"
	"testing"
)

func TestSparsitySweepShape(t *testing.T) {
	var buf bytes.Buffer
	rows := SparsitySweep(&buf)
	if len(rows) < 8 {
		t.Fatalf("%d rows", len(rows))
	}
	var sawDrop bool
	for i, r := range rows {
		if !r.Feasible {
			t.Fatalf("p=%.2f infeasible (2.7B fits dense on 512 GPUs)", r.Sparsity)
		}
		if i > 0 {
			prev := rows[i-1]
			// Memory strictly decreases with sparsity.
			if r.MemoryGB >= prev.MemoryGB {
				t.Errorf("memory must fall with sparsity: %.2f -> %.2f GB", prev.MemoryGB, r.MemoryGB)
			}
			// Ginter never increases.
			if r.Ginter > prev.Ginter {
				t.Errorf("Ginter rose with sparsity: %d -> %d", prev.Ginter, r.Ginter)
			}
			if r.Ginter < prev.Ginter {
				sawDrop = true
				// A Ginter drop must improve batch time.
				if r.BatchTime >= prev.BatchTime {
					t.Errorf("Ginter drop at p=%.2f did not speed up: %.3f -> %.3f",
						r.Sparsity, prev.BatchTime, r.BatchTime)
				}
			}
		}
	}
	if !sawDrop {
		t.Error("sweep never shrank Ginter — the mechanism under test")
	}
	// At low sparsity SAMO must LOSE (compression overhead, no comm gain);
	// at 0.9 it must win big. The performance break-even lies between the
	// memory break-even (0.25) and the first Ginter drop.
	if rows[0].SpeedupPct >= 0 {
		t.Errorf("p=0 should be a slowdown, got %+.1f%%", rows[0].SpeedupPct)
	}
	last := rows[len(rows)-1]
	if last.SpeedupPct < 20 {
		t.Errorf("p=%.2f speedup %.1f%%, want large", last.Sparsity, last.SpeedupPct)
	}
}
