package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/sparse-dl/samo/internal/nn"
	"github.com/sparse-dl/samo/internal/prune"
	"github.com/sparse-dl/samo/internal/tensor"
)

// SparseExecRow is one measured point of the sparse-execution study.
type SparseExecRow struct {
	Dim      int
	Sparsity float64
	DenseMS  float64 // masked-dense fwd+bwd, ms per step
	SparseMS float64 // sparse-execution fwd+bwd, ms per step
	Speedup  float64 // DenseMS / SparseMS
}

// SparseExec is the in-process, measured counterpart of Figure 1 — run on
// this machine's CPU kernels instead of the calibrated Summit model. It
// times one FC layer's forward+backward at the paper's pruned sparsities,
// masked-dense (nn.Linear over weights with zeros) versus first-class
// sparse execution (nn.SparseLinear pinned to the CSR kernels), and prints
// the pruned-FLOPs speedup. The expected shape: sparse loses or roughly
// ties at 50% sparsity — the regime where the density-aware crossover
// falls back to dense — and wins increasingly past 90%, where only
// (1−p)·flops survive.
func SparseExec(w io.Writer) []SparseExecRow {
	const batch = 64
	const timedIters = 3
	fmt.Fprintln(w, "Sparse execution: FC forward+backward, masked-dense vs CSR kernels (measured on this host)")
	fmt.Fprintf(w, "%6s %10s %12s %12s %9s\n", "dim", "sparsity", "dense(ms)", "sparse(ms)", "speedup")
	var rows []SparseExecRow
	for _, dim := range []int{128, 256} {
		for _, sparsity := range []float64{0.5, 0.9, 0.99} {
			rng := tensor.NewRNG(uint64(dim)*100 + uint64(sparsity*100))
			dense := nn.NewLinear("fc", dim, dim, rng)
			pr := prune.MagnitudePerLayer(
				[]prune.Layer{{Name: "fc.weight", Values: dense.W.Value.Data()}}, sparsity)
			ix := pr.Index("fc.weight")
			ix.Mask().Apply(dense.W.Value.Data())
			sl := nn.NewSparseLinear("fc", dense.W.Value, ix)
			sl.Exec = nn.ExecSparse
			copy(sl.B.Value.Data(), dense.B.Value.Data())

			x := tensor.New(batch, dim)
			tensor.FillNormal(x, 1, rng)
			arena := tensor.NewArena()
			stepDense := func() {
				y, c := dense.Forward(arena, x, true)
				dense.Backward(arena, c, y)
				arena.Reset()
			}
			stepSparse := func() {
				y, c := sl.Forward(arena, x, true)
				sl.Backward(arena, c, y)
				arena.Reset()
			}
			r := SparseExecRow{Dim: dim, Sparsity: sparsity,
				DenseMS:  minStepMS(stepDense, timedIters),
				SparseMS: minStepMS(stepSparse, timedIters)}
			r.Speedup = r.DenseMS / r.SparseMS
			rows = append(rows, r)
			fmt.Fprintf(w, "%6d %10.2f %12.4f %12.4f %8.2fx\n",
				dim, sparsity, r.DenseMS, r.SparseMS, r.Speedup)
		}
	}
	fmt.Fprintln(w, "(speedup < 1 at low sparsity is the crossover's point: it falls back to dense there)")
	return rows
}

// minStepMS warms fn once, then reports the fastest of iters timed runs in
// milliseconds (minimum, not mean: scheduling noise only adds time).
func minStepMS(fn func(), iters int) float64 {
	fn()
	best := time.Duration(1<<62 - 1)
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		fn()
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return float64(best) / 1e6
}
