package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"github.com/sparse-dl/samo/internal/simulate"
)

func TestFigure1Shape(t *testing.T) {
	var buf bytes.Buffer
	rows := Figure1(&buf)
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6", len(rows))
	}
	for _, r := range rows {
		ratio := r.Sputnik / r.CuBLAS
		if ratio < 4 || ratio > 25 {
			t.Errorf("dim %d: Sputnik/cuBLAS %.1f outside 6-22x band", r.Dim, ratio)
		}
		if r.CuSPARSE <= r.Sputnik {
			t.Errorf("dim %d: cuSPARSE must be slowest", r.Dim)
		}
	}
	if rows[5].Sputnik/rows[5].CuBLAS <= rows[0].Sputnik/rows[0].CuBLAS {
		t.Error("gap should grow with size")
	}
	if !strings.Contains(buf.String(), "Figure 1") {
		t.Error("missing header")
	}
}

func TestFigure2Shape(t *testing.T) {
	var buf bytes.Buffer
	rows := Figure2(&buf)
	// Monotone increasing; negative below 0.25; 66-78% in [0.8, 0.9].
	for i := 1; i < len(rows); i++ {
		if rows[i].Savings < rows[i-1].Savings {
			t.Fatal("savings must increase with sparsity")
		}
	}
	for _, r := range rows {
		if r.Sparsity < 0.24 && r.Savings >= 0 {
			t.Errorf("p=%.2f should have negative savings", r.Sparsity)
		}
		if r.Sparsity > 0.79 && r.Sparsity < 0.91 && (r.Savings < 65 || r.Savings > 79) {
			t.Errorf("p=%.2f: savings %.1f%% outside 66-78%% band", r.Sparsity, r.Savings)
		}
	}
}

func TestFigure3BubbleIsSixUnits(t *testing.T) {
	var buf bytes.Buffer
	res := Figure3(&buf)
	for s, sb := range res.Stages {
		if sb.Bubble != 6 {
			t.Errorf("stage %d bubble %g, want 6 (the paper's Figure 3)", s, sb.Bubble)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "GPU 0") || !strings.Contains(out, "GPU 2") {
		t.Error("Gantt chart missing rows")
	}
}

func TestFigure4ConvergenceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	var buf bytes.Buffer
	results := Figure4(&buf, 60)
	if len(results) != 2 {
		t.Fatalf("%d results, want 2", len(results))
	}
	for _, r := range results {
		d := r.Dense.Points
		s := r.SAMO.Points
		if len(d) != len(s) || len(d) < 3 {
			t.Fatalf("%s: malformed curves", r.Model)
		}
		// Both runs must learn: final perplexity well below initial.
		if d[len(d)-1].Perplexity >= d[0].Perplexity*0.9 {
			t.Errorf("%s: dense did not learn (%.1f -> %.1f)", r.Model, d[0].Perplexity, d[len(d)-1].Perplexity)
		}
		if s[len(s)-1].Perplexity >= s[0].Perplexity*0.9 {
			t.Errorf("%s: SAMO did not learn (%.1f -> %.1f)", r.Model, s[0].Perplexity, s[len(s)-1].Perplexity)
		}
		// The paper's claim: pruned+SAMO matches dense convergence. At
		// this scale we accept a modest gap.
		df := d[len(d)-1].Perplexity
		sf := s[len(s)-1].Perplexity
		if sf > df*1.35 {
			t.Errorf("%s: SAMO final ppl %.2f too far above dense %.2f", r.Model, sf, df)
		}
	}
}

func TestFigures5to7ReportedSpeedups(t *testing.T) {
	for name, fig := range map[string]func(io.Writer) map[string]map[simulate.Method][]simulate.Result{
		"fig5": Figure5, "fig6": Figure6, "fig7": Figure7,
	} {
		var buf bytes.Buffer
		res := fig(&buf)
		if len(res) != 2 {
			t.Fatalf("%s: %d panels", name, len(res))
		}
		for model, series := range res {
			ax := series[simulate.MethodAxoNN]
			sa := series[simulate.MethodSAMO]
			if len(ax) == 0 || len(ax) != len(sa) {
				t.Fatalf("%s/%s: malformed series", name, model)
			}
			last := len(ax) - 1
			if sp := simulate.Speedup(ax[last], sa[last]); sp < 10 {
				t.Errorf("%s/%s: max-GPU speedup %.1f%%, want >=10%%", name, model, sp)
			}
			if name != "fig5" {
				sput := series[simulate.MethodSputnik]
				for i := range sput {
					if sput[i].Feasible && sput[i].BatchTime <= sa[i].BatchTime {
						t.Errorf("%s/%s[%d]: Sputnik (%.2fs) beat SAMO (%.2fs)",
							name, model, i, sput[i].BatchTime, sa[i].BatchTime)
					}
				}
			}
		}
	}
}

func TestFigure8SavingsStructure(t *testing.T) {
	var buf bytes.Buffer
	res := Figure8(&buf)
	if len(res) != 3 {
		t.Fatalf("%d GPU counts", len(res))
	}
	d128 := res[128]
	d512 := res[512]
	// At 128 GPUs, p2p is the dominant saving; at 512, bubble+collective.
	p2p128 := d128[0].P2P - d128[1].P2P
	other128 := (d128[0].Bubble - d128[1].Bubble) + (d128[0].Collective - d128[1].Collective)
	if p2p128 <= 0 || p2p128 < other128*0.8 {
		t.Errorf("at 128 GPUs p2p saving %.2fs should lead (others %.2fs)", p2p128, other128)
	}
	p2p512 := d512[0].P2P - d512[1].P2P
	other512 := (d512[0].Bubble - d512[1].Bubble) + (d512[0].Collective - d512[1].Collective)
	if other512 <= p2p512 {
		t.Errorf("at 512 GPUs bubble+collective saving %.2fs should lead p2p %.2fs", other512, p2p512)
	}
}

func TestTable1ListsAllModels(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf)
	out := buf.String()
	for _, name := range []string{"WideResnet-101", "VGG-19", "GPT-3 XL", "GPT-3 2.7B", "GPT-3 6.7B", "GPT-3 13B"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table I missing %s", name)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	var buf bytes.Buffer
	rows := Table2(&buf)
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for i, r := range rows {
		if !(r.SAMO > r.AxoNN && r.AxoNN > r.Sputnik) {
			t.Errorf("row %d: ordering violated: %+v", i, r)
		}
		if i > 0 && r.SAMO >= rows[i-1].SAMO {
			t.Errorf("utilization must fall with scale")
		}
	}
	// SAMO's edge at the largest scale (paper: 31.0 vs 22.9).
	last := rows[len(rows)-1]
	if last.SAMO-last.AxoNN < 4 {
		t.Errorf("SAMO edge at 2048 GPUs too small: %.1f vs %.1f", last.SAMO, last.AxoNN)
	}
}

func TestMemoryReportHeadline(t *testing.T) {
	var buf bytes.Buffer
	dense, samo := MemoryReport(&buf)
	red := 100 * (1 - float64(samo)/float64(dense))
	// Abstract: 74% reduction for GPT-3 2.7B.
	if red < 70 || red > 80 {
		t.Errorf("2.7B reduction %.1f%%, paper reports 74%%", red)
	}
}
