package experiments

import (
	"fmt"
	"io"

	"github.com/sparse-dl/samo/internal/core"
	"github.com/sparse-dl/samo/internal/hw"
	"github.com/sparse-dl/samo/internal/nn"
	"github.com/sparse-dl/samo/internal/simulate"
)

// SweepRow is one sparsity point of the extension study.
type SweepRow struct {
	Sparsity   float64
	MemoryGB   float64 // SAMO model-state bytes for 2.7B
	Ginter     int
	BatchTime  float64
	SpeedupPct float64 // over dense AxoNN at the same GPU count
	Feasible   bool
}

// SparsitySweep is an extension beyond the paper's fixed p=0.9 evaluation:
// it sweeps the pruned fraction for GPT-3 2.7B on 512 GPUs and reports where
// SAMO's communication gains turn on (the break-even at p=0.25 is a memory
// statement; the *performance* break-even sits wherever the memory saving
// first shrinks Ginter). The paper's §III-D hints at this; the sweep makes
// it quantitative.
func SparsitySweep(w io.Writer) []SweepRow {
	m := hw.Summit()
	j := simulate.TransformerJob(nn.GPT3_2B7)
	const gpus = 512
	ax := simulate.Run(simulate.MethodAxoNN, j, m, gpus, 0)
	fmt.Fprintf(w, "Sparsity sweep (extension): GPT-3 2.7B on %d GPUs; dense AxoNN baseline %.3fs (Ginter=%d)\n",
		gpus, ax.BatchTime, ax.Plan.Ginter)
	fmt.Fprintf(w, "%10s %12s %8s %12s %10s\n", "sparsity", "state(GB)", "Ginter", "batch(s)", "speedup")
	var rows []SweepRow
	for _, p := range []float64{0, 0.1, 0.25, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95} {
		sa := simulate.Run(simulate.MethodSAMO, j, m, gpus, p)
		row := SweepRow{
			Sparsity: p,
			MemoryGB: core.GiB(core.SAMOModelStateBytes(j.Phi, p)),
			Feasible: sa.Feasible,
		}
		if sa.Feasible {
			row.Ginter = sa.Plan.Ginter
			row.BatchTime = sa.BatchTime
			row.SpeedupPct = simulate.Speedup(ax, sa)
			fmt.Fprintf(w, "%10.2f %12.2f %8d %12.3f %9.1f%%\n",
				p, row.MemoryGB, row.Ginter, row.BatchTime, row.SpeedupPct)
		} else {
			fmt.Fprintf(w, "%10.2f %12.2f %8s %12s %10s\n", p, row.MemoryGB, "-", "OOM", "-")
		}
		rows = append(rows, row)
	}
	return rows
}
