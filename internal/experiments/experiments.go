// Package experiments regenerates every table and figure of the paper's
// evaluation (§V–VI). Each Figure*/Table* function prints the same rows or
// series the paper reports and returns the underlying data so tests can
// assert the shapes (who wins, by roughly what factor, where the crossovers
// fall). Absolute numbers come from the calibrated Summit simulator for the
// scaling studies and from real in-process training for the statistical
// efficiency study.
package experiments

import (
	"fmt"
	"io"

	"github.com/sparse-dl/samo/internal/core"
	"github.com/sparse-dl/samo/internal/hw"
	"github.com/sparse-dl/samo/internal/nn"
	"github.com/sparse-dl/samo/internal/simulate"
)

// Sparsity is the pruned fraction used throughout the evaluation (§V: "we
// prune the networks to a sparsity of 90%").
const Sparsity = 0.9

// Fig1Row is one point of the kernel comparison sweep.
type Fig1Row struct {
	Dim                       int
	CuBLAS, Sputnik, CuSPARSE float64 // seconds
}

// Figure1 reproduces the FC-layer kernel sweep: batch 576, square weights
// 128²–4096², 90% sparse, mixed precision. Dense cuBLAS wins by 6–22× over
// Sputnik; cuSPARSE is far behind (its design point is >99% scientific
// sparsity).
func Figure1(w io.Writer) []Fig1Row {
	m := hw.Summit()
	const batch = 576
	fmt.Fprintln(w, "Figure 1: FC layer time, batch 576, 90% sparse weights (model-calibrated)")
	fmt.Fprintf(w, "%8s %12s %12s %12s %14s\n", "dim", "cuBLAS(ms)", "Sputnik(ms)", "cuSPARSE(ms)", "Sputnik/cuBLAS")
	var rows []Fig1Row
	for _, dim := range []int{128, 256, 512, 1024, 2048, 4096} {
		r := Fig1Row{
			Dim:      dim,
			CuBLAS:   m.SparseFCTime(hw.KernelCuBLAS, dim, batch, Sparsity),
			Sputnik:  m.SparseFCTime(hw.KernelSputnik, dim, batch, Sparsity),
			CuSPARSE: m.SparseFCTime(hw.KernelCuSPARSE, dim, batch, Sparsity),
		}
		rows = append(rows, r)
		fmt.Fprintf(w, "%8d %12.4f %12.4f %12.4f %14.1f\n",
			dim, r.CuBLAS*1e3, r.Sputnik*1e3, r.CuSPARSE*1e3, r.Sputnik/r.CuBLAS)
	}
	return rows
}

// Fig2Row is one point of the analytical memory-savings curve.
type Fig2Row struct {
	Sparsity float64
	Savings  float64 // percent
}

// Figure2 reproduces the §III-D memory model: savings cross zero at p=0.25
// and reach 66–78% in the 0.8–0.9 region of interest.
func Figure2(w io.Writer) []Fig2Row {
	fmt.Fprintln(w, "Figure 2: SAMO memory savings vs sparsity (analytical, eq. 5)")
	fmt.Fprintf(w, "%10s %12s\n", "sparsity", "savings(%)")
	var rows []Fig2Row
	for p := 0.0; p <= 1.0001; p += 0.05 {
		r := Fig2Row{Sparsity: p, Savings: core.SavingsPercent(p)}
		rows = append(rows, r)
		mark := ""
		if p >= 0.8-1e-9 && p <= 0.9+1e-9 {
			mark = "  <- region of interest"
		}
		fmt.Fprintf(w, "%10.2f %12.1f%s\n", r.Sparsity, r.Savings, mark)
	}
	fmt.Fprintf(w, "break-even sparsity: %.2f\n", core.BreakEvenSparsity)
	return rows
}

// Figure3 renders the paper's pipeline illustration (Ginter=3, 5
// microbatches, backward = 2× forward) as an ASCII Gantt chart and verifies
// the 6-unit bubble.
func Figure3(w io.Writer) simulate.PipelineResult {
	res := simulate.SimulatePipeline(simulate.PipelineSpec{
		Stages: 3, Microbatches: 5, FwdTime: 1, BwdTime: 2,
	}, true)
	fmt.Fprintln(w, "Figure 3: inter-layer pipeline schedule, Ginter=3, 5 microbatches")
	fmt.Fprintln(w, "(F=forward, B=backward, .=bubble; one column per time unit)")
	span := int(res.Span + 0.5)
	grid := make([][]byte, 3)
	for s := range grid {
		grid[s] = make([]byte, span)
		for i := range grid[s] {
			grid[s][i] = '.'
		}
	}
	for _, op := range res.Trace {
		ch := byte('0' + op.Microbatch)
		glyph := byte('F')
		if op.Backward {
			glyph = 'B'
		}
		for tt := int(op.Start); tt < int(op.End+0.5) && tt < span; tt++ {
			if tt == int(op.Start) {
				grid[op.Stage][tt] = glyph
			} else {
				grid[op.Stage][tt] = ch
			}
		}
	}
	for s := 0; s < 3; s++ {
		fmt.Fprintf(w, "GPU %d |%s|  bubble=%.0f units\n", s, grid[s], res.Stages[s].Bubble)
	}
	fmt.Fprintf(w, "bubble per GPU = (Ginter-1)x(tf+tb) = %.0f units; makespan = %.0f\n",
		res.Stages[0].Bubble, res.Span)
	return res
}

// scalingStudy runs one strong-scaling panel.
func scalingStudy(w io.Writer, j simulate.Job, methods []simulate.Method) map[simulate.Method][]simulate.Result {
	m := hw.Summit()
	out := make(map[simulate.Method][]simulate.Result)
	fmt.Fprintf(w, "\nTime per iteration for %s (batch %d)\n", j.Name, j.Batch)
	fmt.Fprintf(w, "%8s", "GPUs")
	for _, meth := range methods {
		fmt.Fprintf(w, " %14s", meth)
	}
	fmt.Fprintf(w, " %10s\n", "speedup*")
	for g := j.MinGPUs; g <= j.MaxGPUs; g *= 2 {
		fmt.Fprintf(w, "%8d", g)
		var ax, sa simulate.Result
		for _, meth := range methods {
			r := simulate.Run(meth, j, m, g, Sparsity)
			out[meth] = append(out[meth], r)
			if meth == simulate.MethodAxoNN {
				ax = r
			}
			if meth == simulate.MethodSAMO {
				sa = r
			}
			if r.Feasible {
				fmt.Fprintf(w, " %13.3fs", r.BatchTime)
			} else {
				fmt.Fprintf(w, " %14s", "OOM")
			}
		}
		fmt.Fprintf(w, " %9.0f%%\n", simulate.Speedup(ax, sa))
	}
	fmt.Fprintln(w, "(*) AxoNN+SAMO speedup over AxoNN, the annotation of Figs. 5-7")
	return out
}

// Figure5 reproduces the CNN strong-scaling study (WideResnet-101, VGG-19;
// 16–128 GPUs; Sputnik omitted — no sparse convolutions, as in the paper).
func Figure5(w io.Writer) map[string]map[simulate.Method][]simulate.Result {
	fmt.Fprintln(w, "Figure 5: strong scaling, CNNs on Summit (simulated)")
	jobs := simulate.StandardJobs()
	methods := []simulate.Method{simulate.MethodDeepSpeed3D, simulate.MethodAxoNN, simulate.MethodSAMO}
	return map[string]map[simulate.Method][]simulate.Result{
		jobs[0].Name: scalingStudy(w, jobs[0], methods),
		jobs[1].Name: scalingStudy(w, jobs[1], methods),
	}
}

// Figure6 reproduces GPT-3 XL and GPT-3 2.7B strong scaling (64–512 GPUs).
func Figure6(w io.Writer) map[string]map[simulate.Method][]simulate.Result {
	fmt.Fprintln(w, "Figure 6: strong scaling, GPT-3 XL and 2.7B on Summit (simulated)")
	jobs := simulate.StandardJobs()
	methods := []simulate.Method{simulate.MethodSputnik, simulate.MethodDeepSpeed3D, simulate.MethodAxoNN, simulate.MethodSAMO}
	return map[string]map[simulate.Method][]simulate.Result{
		jobs[2].Name: scalingStudy(w, jobs[2], methods),
		jobs[3].Name: scalingStudy(w, jobs[3], methods),
	}
}

// Figure7 reproduces GPT-3 6.7B and 13B strong scaling (128–2048 GPUs).
func Figure7(w io.Writer) map[string]map[simulate.Method][]simulate.Result {
	fmt.Fprintln(w, "Figure 7: strong scaling, GPT-3 6.7B and 13B on Summit (simulated)")
	jobs := simulate.StandardJobs()
	methods := []simulate.Method{simulate.MethodSputnik, simulate.MethodDeepSpeed3D, simulate.MethodAxoNN, simulate.MethodSAMO}
	return map[string]map[simulate.Method][]simulate.Result{
		jobs[4].Name: scalingStudy(w, jobs[4], methods),
		jobs[5].Name: scalingStudy(w, jobs[5], methods),
	}
}

// Figure8 reproduces the batch-time breakdown of GPT-3 2.7B on 128/256/512
// GPUs: non-overlapping phases on GPU 0 for AxoNN (A) and AxoNN+SAMO (B).
func Figure8(w io.Writer) map[int][2]simulate.Result {
	m := hw.Summit()
	j := simulate.TransformerJob(nn.GPT3_2B7)
	fmt.Fprintln(w, "Figure 8: breakdown of batch time for GPT-3 2.7B on GPU 0 (simulated)")
	fmt.Fprintf(w, "%6s %14s %9s %9s %9s %9s %9s %9s\n",
		"GPUs", "method", "total(s)", "compute", "p2p", "bubble", "coll.", "other")
	out := make(map[int][2]simulate.Result)
	for _, g := range []int{128, 256, 512} {
		ax := simulate.Run(simulate.MethodAxoNN, j, m, g, Sparsity)
		sa := simulate.Run(simulate.MethodSAMO, j, m, g, Sparsity)
		out[g] = [2]simulate.Result{ax, sa}
		for _, r := range []simulate.Result{ax, sa} {
			fmt.Fprintf(w, "%6d %14s %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f\n",
				g, r.Method, r.BatchTime, r.Compute, r.P2P, r.Bubble, r.Collective, r.Other)
		}
		fmt.Fprintf(w, "       savings as %% of AxoNN batch: p2p %.0f%%  bubble %.0f%%  collective %.0f%%  (compression overhead %.0f%%)\n",
			100*(ax.P2P-sa.P2P)/ax.BatchTime,
			100*(ax.Bubble-sa.Bubble)/ax.BatchTime,
			100*(ax.Collective-sa.Collective)/ax.BatchTime,
			100*(sa.Compute-ax.Compute)/ax.BatchTime)
	}
	return out
}

// Table1 prints the model zoo (Table I).
func Table1(w io.Writer) {
	fmt.Fprintln(w, "Table I: neural networks used in this study")
	fmt.Fprintf(w, "%-16s %14s %12s %14s\n", "Neural Network", "# Parameters", "Batch Size", "No. of GPUs")
	for _, j := range simulate.StandardJobs() {
		fmt.Fprintf(w, "%-16s %13.2fM %12d %8d-%d\n",
			j.Name, float64(j.Phi)/1e6, j.Batch, j.MinGPUs, j.MaxGPUs)
	}
}

// Table2Row is one row of the utilization table.
type Table2Row struct {
	GPUs                            int
	Sputnik, DeepSpeed, AxoNN, SAMO float64 // percent of fp16 peak
}

// Table2 reproduces the percentage-of-peak table for GPT-3 13B.
func Table2(w io.Writer) []Table2Row {
	m := hw.Summit()
	j := simulate.TransformerJob(nn.GPT3_13B)
	fmt.Fprintln(w, "Table II: % of peak half-precision throughput, GPT-3 13B (simulated)")
	fmt.Fprintf(w, "%8s %10s %14s %8s %12s\n", "GPUs", "Sputnik", "DeepSpeed-3D", "AxoNN", "AxoNN+SAMO")
	var rows []Table2Row
	for _, g := range []int{256, 512, 1024, 2048} {
		r := Table2Row{GPUs: g}
		r.Sputnik = 100 * simulate.Run(simulate.MethodSputnik, j, m, g, Sparsity).PeakFraction
		r.DeepSpeed = 100 * simulate.Run(simulate.MethodDeepSpeed3D, j, m, g, Sparsity).PeakFraction
		r.AxoNN = 100 * simulate.Run(simulate.MethodAxoNN, j, m, g, Sparsity).PeakFraction
		r.SAMO = 100 * simulate.Run(simulate.MethodSAMO, j, m, g, Sparsity).PeakFraction
		rows = append(rows, r)
		fmt.Fprintf(w, "%8d %10.1f %14.1f %8.1f %12.1f\n", g, r.Sputnik, r.DeepSpeed, r.AxoNN, r.SAMO)
	}
	return rows
}

// MemoryReport prints the §VI-C headline: GPT-3 2.7B model-state memory
// drops 74% under SAMO.
func MemoryReport(w io.Writer) (dense, samo int64) {
	phi := nn.GPT3_2B7.NumParams()
	dense = core.DefaultModelStateBytes(phi)
	samo = core.SAMOModelStateBytes(phi, Sparsity)
	fmt.Fprintf(w, "GPT-3 2.7B model states: dense %.2f GB -> SAMO %.2f GB (%.0f%% reduction)\n",
		core.GiB(dense), core.GiB(samo), 100*(1-float64(samo)/float64(dense)))
	return dense, samo
}
