package experiments

import (
	"fmt"
	"io"

	"github.com/sparse-dl/samo/internal/axonn"
	"github.com/sparse-dl/samo/internal/core"
	"github.com/sparse-dl/samo/internal/data"
	"github.com/sparse-dl/samo/internal/nn"
	"github.com/sparse-dl/samo/internal/optim"
	"github.com/sparse-dl/samo/internal/prune"
	"github.com/sparse-dl/samo/internal/tensor"
)

// Fig4Point is one evaluation of validation perplexity.
type Fig4Point struct {
	Iteration  int
	Perplexity float64
}

// Fig4Series is one training curve.
type Fig4Series struct {
	Label  string
	Points []Fig4Point
}

// Fig4Result holds the paired curves for one model/dataset.
type Fig4Result struct {
	Model   string
	Dataset string
	Dense   Fig4Series
	SAMO    Fig4Series
}

// fig4Spec is a scaled-down stand-in for one of the paper's Figure 4 runs
// (GPT-3 XL on Wikitext-103; GPT-3 2.7B on BookCorpus). The stand-ins keep
// the experiment's logic intact — same pruning algorithm (Early-Bird), same
// sparsity (0.9), same metric (validation perplexity), dense-vs-SAMO pairing
// with identical initialization — at a size a CPU can train.
type fig4Spec struct {
	model, dataset string
	cfg            nn.GPTConfig
	corpusSeed     uint64
	modelSeed      uint64
	batch          int
}

func fig4Specs() []fig4Spec {
	return []fig4Spec{
		{
			model: "GPT-3 XL (stand-in)", dataset: "synthtext-103",
			cfg:        nn.GPTConfig{Name: "xl-mini", Layers: 2, Hidden: 48, Heads: 4, Seq: 12, Vocab: 48},
			corpusSeed: 101, modelSeed: 7, batch: 8,
		},
		{
			model: "GPT-3 2.7B (stand-in)", dataset: "synthbooks",
			cfg:        nn.GPTConfig{Name: "2.7b-mini", Layers: 3, Hidden: 48, Heads: 4, Seq: 12, Vocab: 48},
			corpusSeed: 202, modelSeed: 9, batch: 8,
		},
	}
}

// Figure4 trains each stand-in to completion twice — dense AxoNN vs
// AxoNN+SAMO with a 90%-sparse Early-Bird ticket — and reports validation
// perplexity curves. iters controls the training length (the paper runs
// 300–400 iterations; tests use fewer). Statistical efficiency is invariant
// to the parallel layout (the engine tests prove bitwise equivalence with
// serial execution), so the curves are produced with the serial trainer.
func Figure4(w io.Writer, iters int) []Fig4Result {
	var out []Fig4Result
	for _, spec := range fig4Specs() {
		res := runFig4(spec, iters)
		out = append(out, res)
		fmt.Fprintf(w, "\nFigure 4: validation perplexity for %s on %s\n", res.Model, res.Dataset)
		fmt.Fprintf(w, "%10s %14s %14s\n", "iteration", "AxoNN", "AxoNN+SAMO")
		for i := range res.Dense.Points {
			fmt.Fprintf(w, "%10d %14.2f %14.2f\n",
				res.Dense.Points[i].Iteration,
				res.Dense.Points[i].Perplexity,
				res.SAMO.Points[i].Perplexity)
		}
		d := res.Dense.Points[len(res.Dense.Points)-1].Perplexity
		s := res.SAMO.Points[len(res.SAMO.Points)-1].Perplexity
		fmt.Fprintf(w, "final: dense %.2f vs SAMO %.2f (%+.1f%%)\n", d, s, 100*(s-d)/d)
	}
	return out
}

func runFig4(spec fig4Spec, iters int) Fig4Result {
	corpus := data.SynthText(spec.dataset, spec.cfg.Vocab, 20000, spec.corpusSeed)
	valBatch, _ := corpus.LMBatch(15000, 16, spec.cfg.Seq)

	// Draw the Early-Bird ticket: train a scout copy briefly, observing the
	// magnitude mask each "epoch" until it stabilizes (You et al.).
	ticket := drawTicket(spec, corpus, iters/4+10)

	dense := trainCurve(spec, corpus, valBatch, nil, core.Dense, iters, "AxoNN")
	samo := trainCurve(spec, corpus, valBatch, ticket, core.SAMO, iters, "AxoNN+SAMO")
	return Fig4Result{Model: spec.model, Dataset: spec.dataset, Dense: dense, SAMO: samo}
}

func drawTicket(spec fig4Spec, corpus *data.Corpus, warmupIters int) *prune.Result {
	m := nn.BuildGPT(spec.cfg, tensor.NewRNG(spec.modelSeed))
	ms := core.NewModelState(m, optim.NewAdamW(3e-3, 0.01), core.Dense, nil)
	tr := core.NewTrainer(ms)
	eb := prune.NewEarlyBird(Sparsity)
	eb.Window = 3
	eb.Epsilon = 0.05

	cursor := 0
	const epoch = 5 // iterations per mask observation
	for i := 0; i < warmupIters; i++ {
		b, c := corpus.LMBatch(cursor, spec.batch, spec.cfg.Seq)
		cursor = c
		tr.TrainStep(b.Input, b.Targets)
		if (i+1)%epoch == 0 {
			if eb.Observe(pruneView(m)) {
				break
			}
		}
	}
	return eb.Force(pruneView(m))
}

func pruneView(m *nn.Model) []prune.Layer {
	var layers []prune.Layer
	for _, e := range m.PruneLayers() {
		layers = append(layers, prune.Layer{Name: e.Name, Values: e.Param.Value.Data()})
	}
	return layers
}

func trainCurve(spec fig4Spec, corpus *data.Corpus, val axonn.Batch,
	ticket *prune.Result, mode core.Mode, iters int, label string) Fig4Series {
	m := nn.BuildGPT(spec.cfg, tensor.NewRNG(spec.modelSeed))
	ms := core.NewModelState(m, optim.NewAdamW(3e-3, 0.01), mode, ticket)
	ms.ClipNorm = 1.0
	tr := core.NewTrainer(ms)

	series := Fig4Series{Label: label}
	evalEvery := iters / 10
	if evalEvery < 1 {
		evalEvery = 1
	}
	record := func(iter int) {
		loss := tr.EvalLoss(val.Input, val.Targets)
		series.Points = append(series.Points, Fig4Point{Iteration: iter, Perplexity: nn.Perplexity(loss)})
	}
	record(0)
	cursor := 0
	for i := 1; i <= iters; i++ {
		b, c := corpus.LMBatch(cursor, spec.batch, spec.cfg.Seq)
		cursor = c
		tr.TrainStep(b.Input, b.Targets)
		if i%evalEvery == 0 {
			record(i)
		}
	}
	return series
}
