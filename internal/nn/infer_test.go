package nn

import (
	"fmt"
	"math"
	"testing"

	"github.com/sparse-dl/samo/internal/prune"
	"github.com/sparse-dl/samo/internal/sparse"
	"github.com/sparse-dl/samo/internal/tensor"
)

// inferTestModels builds one representative model per family — together
// they cover every layer the repo ships (Linear, ReLU, GELU, LayerNorm,
// Embedding, attention, Conv2d, BatchNorm2d, MaxPool, GlobalAvgPool,
// residual blocks, Flatten) — plus a matching input batch.
func inferTestModels() []struct {
	name  string
	model *Model
	x     *tensor.Tensor
} {
	rng := tensor.NewRNG(42)
	mlp := BuildMLP("mlp", []int{20, 32, 10}, rng)
	xMLP := tensor.New(6, 20)
	tensor.FillNormal(xMLP, 1, rng)

	cnn := BuildVGG("cnn", []int{8, -1, 16, -1}, 3, 8, 10, rng)
	xCNN := tensor.New(2, 3, 8, 8)
	tensor.FillNormal(xCNN, 1, rng)

	gpt := BuildGPT(GPTConfig{Name: "gpt", Layers: 2, Hidden: 32, Heads: 4,
		Seq: 8, Vocab: 30}, rng)
	ids := make([]int, 2*8)
	for i := range ids {
		ids[i] = (7 * i) % 30
	}
	xGPT := TokensToTensor(ids)

	return []struct {
		name  string
		model *Model
		x     *tensor.Tensor
	}{
		{"mlp", mlp, xMLP},
		{"cnn", cnn, xCNN},
		{"gpt", gpt, xGPT},
	}
}

func bitwiseDiff(a, b []float32) (int, bool) {
	if len(a) != len(b) {
		return -1, false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return i, false
		}
	}
	return -1, true
}

// TestInferMatchesEvalForward pins the inference-path determinism golden:
// Model.Infer and the windowed two-arena InferWindowed must be
// bitwise-identical to ForwardArena(train=false) at every worker count the
// training stack uses, on all three model families. The reference is the
// eval forward at one worker; every kernel's single-owner partitioning
// makes the rest identical to it.
func TestInferMatchesEvalForward(t *testing.T) {
	defer tensor.SetWorkers(tensor.SetWorkers(0))
	for _, tc := range inferTestModels() {
		t.Run(tc.name, func(t *testing.T) {
			tensor.SetWorkers(1)
			refArena := tensor.NewArena()
			caches := make([]any, len(tc.model.Layers))
			ref := append([]float32(nil),
				tc.model.ForwardArena(refArena, tc.x, false, caches).Data()...)
			for i, c := range caches {
				if c != nil {
					t.Errorf("layer %d (%T) built a cache on the eval forward", i, tc.model.Layers[i])
				}
			}

			for _, workers := range []int{1, 2, 3, 4, 8, 16} {
				t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
					tensor.SetWorkers(workers)
					a, b := tensor.NewArena(), tensor.NewArena()

					a.Reset()
					y := tc.model.Infer(a, tc.x)
					if i, ok := bitwiseDiff(ref, y.Data()); !ok {
						t.Fatalf("Infer differs from eval forward at %d", i)
					}
					yw := tc.model.InferWindowed(a, b, tc.x)
					if i, ok := bitwiseDiff(ref, yw.Data()); !ok {
						t.Fatalf("InferWindowed differs from eval forward at %d", i)
					}
				})
			}
		})
	}
}

// TestInferSparsifiedMatchesEvalForward extends the golden to sparse
// execution: a Sparsify'd MLP's inference path must match its own eval
// forward bitwise at every worker count. The crossover is pinned sparse —
// path choice is the one legitimately timing-dependent decision in the
// stack, and pinning is exactly what reproducibility-sensitive runs do.
func TestInferSparsifiedMatchesEvalForward(t *testing.T) {
	defer tensor.SetWorkers(tensor.SetWorkers(0))
	for _, mode := range []string{"sparse", "dense"} {
		t.Run(mode, func(t *testing.T) {
			prev, err := sparse.SetXover(mode)
			if err != nil {
				t.Fatal(err)
			}
			defer sparse.SetXover(prev)

			rng := tensor.NewRNG(5)
			base := BuildMLP("smlp", []int{24, 48, 10}, rng)
			var layers []prune.Layer
			for _, e := range base.PruneLayers() {
				layers = append(layers, prune.Layer{Name: e.Name, Values: e.Param.Value.Data()})
			}
			pr := prune.MagnitudePerLayer(layers, 0.9)
			m := Sparsify(base, pr)
			x := tensor.New(6, 24)
			tensor.FillNormal(x, 1, rng)

			tensor.SetWorkers(1)
			refArena := tensor.NewArena()
			caches := make([]any, len(m.Layers))
			ref := append([]float32(nil), m.ForwardArena(refArena, x, false, caches).Data()...)
			for i, c := range caches {
				if c != nil {
					t.Errorf("layer %d (%T) built a cache on the eval forward", i, m.Layers[i])
				}
			}
			for _, workers := range []int{1, 2, 3, 4, 8, 16} {
				tensor.SetWorkers(workers)
				a := tensor.NewArena()
				y := m.Infer(a, x)
				if i, ok := bitwiseDiff(ref, y.Data()); !ok {
					t.Fatalf("workers=%d: sparse Infer differs from eval forward at %d", workers, i)
				}
			}
		})
	}
}

// TestInferNoAliasing pins the InferLayer no-aliasing contract on the one
// layer whose eval Forward returns a view: Flatten.Infer must copy, so
// InferWindowed's early arena reset cannot corrupt a result that flows
// through it — including when Flatten is wrapped in Recompute.
func TestInferNoAliasing(t *testing.T) {
	rng := tensor.NewRNG(9)
	x := tensor.New(3, 2, 4, 4)
	tensor.FillNormal(x, 1, rng)

	var fl Flatten
	a := tensor.NewArena()
	y := fl.Infer(a, x)
	if &y.Data()[0] == &x.Data()[0] {
		t.Fatal("Flatten.Infer aliases its input")
	}
	if i, ok := bitwiseDiff(x.Data(), y.Data()); !ok {
		t.Fatalf("Flatten.Infer copy differs at %d", i)
	}
	yr := (&Recompute{Inner: &fl}).Infer(a, x)
	if &yr.Data()[0] == &x.Data()[0] {
		t.Fatal("Recompute(Flatten).Infer aliases its input")
	}

	// End-to-end: a model whose tail flows through Flatten survives the
	// windowed runner's ping-pong resets.
	m := &Model{Name: "flat", Layers: []Layer{&fl, NewLinear("fc", 32, 4, rng)}}
	refArena := tensor.NewArena()
	ref := append([]float32(nil), m.ForwardArena(refArena, x, false, make([]any, 2)).Data()...)
	yw := m.InferWindowed(tensor.NewArena(), tensor.NewArena(), x)
	if i, ok := bitwiseDiff(ref, yw.Data()); !ok {
		t.Fatalf("windowed result through Flatten differs at %d", i)
	}
}

// TestInferWindowedZeroAlloc pins the serving perf contract at the model
// level: after warm-up, the windowed inference forward performs zero heap
// allocations on every model family — activations ping-pong between two
// arenas sized to the forward working set, and no cache pools are touched.
func TestInferWindowedZeroAlloc(t *testing.T) {
	// Hermetic allocation counting: a background tune-table save would
	// show up as phantom allocs (see TestCompressExpandZeroAlloc in
	// internal/sparse).
	t.Setenv("SAMO_GEMM_TUNE", "off")
	t.Setenv("SAMO_SPARSE_XOVER_TABLE", "off")
	for _, tc := range inferTestModels() {
		t.Run(tc.name, func(t *testing.T) {
			a, b := tensor.NewArena(), tensor.NewArena()
			for i := 0; i < 3; i++ { // warm arenas, autotuner, job pools
				tc.model.InferWindowed(a, b, tc.x)
			}
			if n := testing.AllocsPerRun(20, func() {
				tc.model.InferWindowed(a, b, tc.x)
			}); n != 0 {
				t.Fatalf("steady-state InferWindowed allocates %.1f per run, want 0", n)
			}
		})
	}
}
