package nn

import "github.com/sparse-dl/samo/internal/tensor"

// Forward-only execution mode. Forward with train=false is contractually
// cache-free — it returns a nil cache and touches none of the per-type
// cache pools that Backward recycles — so an inference pass leaves the
// pools exactly as it found them and a serving process can run forwards
// forever without growing (or draining) training-side free lists.
//
// InferLayer is the optional extension a layer implements when its
// inference forward differs from Forward(train=false) in more than the
// returned cache — LayerNorm skips the x̂ tensor entirely, Flatten copies
// instead of aliasing (see below), Recompute unwraps. Everything else is
// served by the generic fallback.

// InferLayer is a Layer with a dedicated cache-free inference forward.
//
// Contract: Infer must be bitwise-identical to Forward(train=false) on the
// same input, must touch no cache pools, and must return a tensor that does
// NOT alias x's storage (own data from a, or layer-owned). The no-aliasing
// rule is what lets the windowed runner below reclaim the producing arena
// of x one layer later.
type InferLayer interface {
	Infer(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor
}

// InferForward runs one layer forward-only: the layer's Infer method when
// implemented, otherwise Forward with train=false, discarding the (nil)
// cache.
func InferForward(l Layer, a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	if il, ok := l.(InferLayer); ok {
		return il.Infer(a, x)
	}
	y, _ := l.Forward(a, x, false)
	return y
}

// Infer runs the whole model forward-only on a single arena — the
// cache-free replacement for ForwardArena(a, x, false, caches) that needs
// no cache slice. Tensors remain valid until the caller's next Reset.
func (m *Model) Infer(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	for _, l := range m.Layers {
		x = InferForward(l, a, x)
	}
	return x
}

// InferWindowed runs the model forward-only across two arenas in
// alternation: layer i draws its scratch and output from arenas[i%2], and
// the opposite arena is reset as soon as layer i completes — the moment
// layer i-1's activation (layer i's input) is dead. Peak activation
// memory is therefore the two largest consecutive layer working sets, not
// the whole forward pass — there is no backward pass coming to read
// step-lifetime caches, so nothing else needs to survive.
//
// Safe because InferLayer's contract forbids output/input aliasing (Flatten,
// the only view-returning layer, copies in its Infer). Both arenas are
// reset on entry — x must not be owned by either — and the returned tensor
// lives in one of them: it is valid until either arena's next use.
func (m *Model) InferWindowed(a, b *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	arenas := [2]*tensor.Arena{a, b}
	a.Reset()
	b.Reset()
	for i, l := range m.Layers {
		x = InferForward(l, arenas[i&1], x)
		arenas[(i+1)&1].Reset()
	}
	return x
}
