package nn

import (
	"fmt"

	"github.com/sparse-dl/samo/internal/parallel"
	"github.com/sparse-dl/samo/internal/tensor"
)

// Embedding maps token ids to learned vectors and adds learned positional
// embeddings — the input stage of a GPT model. Token ids travel inside a
// float32 tensor of shape (batch·seq, 1) (exact for any realistic vocab),
// which lets the pipeline engine treat every stage boundary uniformly as a
// tensor message.
type Embedding struct {
	Tok, Pos *Param // (vocab, d), (seq, d)
	vocab    int
	seq      int
	d        int
}

// NewEmbedding creates token + positional embedding tables with N(0, 0.02²)
// init (the GPT-2/3 convention).
func NewEmbedding(name string, vocab, seq, d int, rng *tensor.RNG) *Embedding {
	e := &Embedding{
		Tok:   newParam(name+".tok", vocab, d),
		Pos:   newParam(name+".pos", seq, d),
		vocab: vocab, seq: seq, d: d,
	}
	e.Tok.NoPrune = true
	e.Pos.NoPrune = true
	tensor.FillNormal(e.Tok.Value, 0.02, rng)
	tensor.FillNormal(e.Pos.Value, 0.02, rng)
	return e
}

// TokensToTensor packs integer token ids into the (n, 1) tensor format the
// Embedding layer accepts.
func TokensToTensor(tokens []int) *tensor.Tensor {
	t := tensor.New(len(tokens), 1)
	for i, tok := range tokens {
		t.Data()[i] = float32(tok)
	}
	return t
}

type embedCache struct{ ids []int }

var embedCaches parallel.Pool[embedCache]

// Forward looks up token and positional vectors.
func (e *Embedding) Forward(a *tensor.Arena, x *tensor.Tensor, train bool) (*tensor.Tensor, any) {
	if !train {
		return e.Infer(a, x), nil
	}
	if x.Rank() != 2 || x.Dim(1) != 1 || x.Dim(0)%e.seq != 0 {
		panic(fmt.Sprintf("nn: Embedding(seq=%d) got %v", e.seq, x.Shape()))
	}
	n := x.Dim(0)
	c := embedCaches.Get()
	if cap(c.ids) < n {
		c.ids = make([]int, n)
	}
	c.ids = c.ids[:n]
	ids := c.ids
	y := a.Get(n, e.d)
	tok, pos := e.Tok.Value.Data(), e.Pos.Value.Data()
	for i := 0; i < n; i++ {
		id := int(x.Data()[i])
		if id < 0 || id >= e.vocab {
			panic(fmt.Sprintf("nn: token id %d out of vocab %d", id, e.vocab))
		}
		ids[i] = id
		p := i % e.seq
		row := y.Data()[i*e.d : (i+1)*e.d]
		tv := tok[id*e.d : (id+1)*e.d]
		pv := pos[p*e.d : (p+1)*e.d]
		for j := range row {
			row[j] = tv[j] + pv[j]
		}
	}
	return y, c
}

// Infer looks up token and positional vectors without recording the id
// list (only Backward's scatter-add needs it), so the inference forward
// touches no cache pool.
func (e *Embedding) Infer(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != 1 || x.Dim(0)%e.seq != 0 {
		panic(fmt.Sprintf("nn: Embedding(seq=%d) got %v", e.seq, x.Shape()))
	}
	n := x.Dim(0)
	y := a.Get(n, e.d)
	tok, pos := e.Tok.Value.Data(), e.Pos.Value.Data()
	for i := 0; i < n; i++ {
		id := int(x.Data()[i])
		if id < 0 || id >= e.vocab {
			panic(fmt.Sprintf("nn: token id %d out of vocab %d", id, e.vocab))
		}
		row := y.Data()[i*e.d : (i+1)*e.d]
		tv := tok[id*e.d : (id+1)*e.d]
		pv := pos[(i%e.seq)*e.d : (i%e.seq+1)*e.d]
		for j := range row {
			row[j] = tv[j] + pv[j]
		}
	}
	return y
}

// Backward scatter-adds gradients into the embedding tables. The returned
// input gradient is zero-shaped (token ids are not differentiable) but keeps
// the pipeline's gradient message chain intact.
func (e *Embedding) Backward(a *tensor.Arena, cache any, gradOut *tensor.Tensor) *tensor.Tensor {
	c := cache.(*embedCache)
	dTok, dPos := e.Tok.Grad.Data(), e.Pos.Grad.Data()
	for i, id := range c.ids {
		g := gradOut.Data()[i*e.d : (i+1)*e.d]
		tv := dTok[id*e.d : (id+1)*e.d]
		pv := dPos[(i%e.seq)*e.d : (i%e.seq+1)*e.d]
		for j := range g {
			tv[j] += g[j]
			pv[j] += g[j]
		}
	}
	dx := a.GetZeroed(len(c.ids), 1)
	embedCaches.Put(c)
	return dx
}

// Params returns the token and positional tables.
func (e *Embedding) Params() []*Param { return []*Param{e.Tok, e.Pos} }

// TransformerBlock is a pre-LayerNorm GPT block:
//
//	h = x + Attn(LN1(x));  y = h + W2·GELU(W1·LN2(h)).
//
// It is a single Layer so that AxoNN's inter-layer partitioning operates on
// whole blocks, matching how the paper's models are split across GPUs.
type TransformerBlock struct {
	LN1  *LayerNorm
	Attn *CausalSelfAttention
	LN2  *LayerNorm
	FC1  *Linear // (d, 4d)
	FC2  *Linear // (4d, d)
}

// NewTransformerBlock builds a block with the standard 4× MLP expansion.
func NewTransformerBlock(name string, d, heads, seq int, rng *tensor.RNG) *TransformerBlock {
	return &TransformerBlock{
		LN1:  NewLayerNorm(name+".ln1", d),
		Attn: NewCausalSelfAttention(name+".attn", d, heads, seq, rng),
		LN2:  NewLayerNorm(name+".ln2", d),
		FC1:  NewLinear(name+".fc1", d, 4*d, rng),
		FC2:  NewLinear(name+".fc2", 4*d, d, rng),
	}
}

type blockCache struct {
	cLN1, cAttn, cLN2, cFC1, cGELU, cFC2 any
}

var blockCaches parallel.Pool[blockCache]

// Forward runs attention and MLP sublayers with residual connections.
func (t *TransformerBlock) Forward(a *tensor.Arena, x *tensor.Tensor, train bool) (*tensor.Tensor, any) {
	u, cLN1 := t.LN1.Forward(a, x, train)
	att, cAttn := t.Attn.Forward(a, u, train)
	h := a.Get(x.Shape()...)
	h.CopyFrom(x)
	tensor.Add(h, att)

	v, cLN2 := t.LN2.Forward(a, h, train)
	m1, cFC1 := t.FC1.Forward(a, v, train)
	var g GELULayer
	m2, cGELU := g.Forward(a, m1, train)
	m3, cFC2 := t.FC2.Forward(a, m2, train)
	y := a.Get(h.Shape()...)
	y.CopyFrom(h)
	tensor.Add(y, m3)
	if !train {
		return y, nil
	}
	c := blockCaches.Get()
	c.cLN1, c.cAttn, c.cLN2, c.cFC1, c.cGELU, c.cFC2 = cLN1, cAttn, cLN2, cFC1, cGELU, cFC2
	return y, c
}

// Backward reverses both sublayers, summing residual gradients.
func (t *TransformerBlock) Backward(a *tensor.Arena, cache any, gradOut *tensor.Tensor) *tensor.Tensor {
	c := cache.(*blockCache)
	// MLP path.
	g := t.FC2.Backward(a, c.cFC2, gradOut)
	var gl GELULayer
	g = gl.Backward(a, c.cGELU, g)
	g = t.FC1.Backward(a, c.cFC1, g)
	g = t.LN2.Backward(a, c.cLN2, g)
	dh := a.Get(gradOut.Shape()...)
	dh.CopyFrom(gradOut)
	tensor.Add(dh, g)
	// Attention path.
	g = t.Attn.Backward(a, c.cAttn, dh)
	g = t.LN1.Backward(a, c.cLN1, g)
	dx := a.Get(dh.Shape()...)
	dx.CopyFrom(dh)
	tensor.Add(dx, g)
	c.cLN1, c.cAttn, c.cLN2, c.cFC1, c.cGELU, c.cFC2 = nil, nil, nil, nil, nil, nil
	blockCaches.Put(c)
	return dx
}

// Params returns all block parameters.
func (t *TransformerBlock) Params() []*Param {
	ps := append(t.LN1.Params(), t.Attn.Params()...)
	ps = append(ps, t.LN2.Params()...)
	ps = append(ps, t.FC1.Params()...)
	ps = append(ps, t.FC2.Params()...)
	return ps
}
