package nn

import (
	"testing"

	"github.com/sparse-dl/samo/internal/tensor"
)

func TestRecomputeMatchesPlainGradients(t *testing.T) {
	// A transformer block with and without recomputation must produce
	// identical gradients (the recomputed forward is deterministic).
	rng := tensor.NewRNG(90)
	plain := NewTransformerBlock("blk", 8, 2, 4, rng)
	wrapped := Recompute{Inner: plain}

	x := randInput([]int{8, 8}, 91)
	gy := randInput([]int{8, 8}, 92)

	for _, p := range plain.Params() {
		p.ZeroGrad()
	}
	yP, cP := plain.Forward(nil, x, true)
	dxP := plain.Backward(nil, cP, gy)
	gradsP := make([]*tensor.Tensor, 0)
	for _, p := range plain.Params() {
		gradsP = append(gradsP, p.Grad.Clone())
		p.ZeroGrad()
	}

	yW, cW := wrapped.Forward(nil, x, true)
	dxW := wrapped.Backward(nil, cW, gy)

	if d := tensor.MaxAbsDiff(yP, yW); d != 0 {
		t.Errorf("forward outputs differ: %g", d)
	}
	if d := tensor.MaxAbsDiff(dxP, dxW); d != 0 {
		t.Errorf("input grads differ: %g", d)
	}
	for i, p := range wrapped.Params() {
		if d := tensor.MaxAbsDiff(gradsP[i], p.Grad); d != 0 {
			t.Errorf("param %s grads differ: %g", p.Name, d)
		}
	}
}

func TestRecomputeShrinksCache(t *testing.T) {
	rng := tensor.NewRNG(93)
	plain := NewTransformerBlock("blk", 16, 2, 8, rng)
	wrapped := Recompute{Inner: plain}
	x := randInput([]int{16, 16}, 94)

	_, cP := plain.Forward(nil, x, true)
	_, cW := wrapped.Forward(nil, x, true)
	full := CacheBytes(cP)
	check := CacheBytes(cW)
	if check >= full {
		t.Fatalf("recompute cache %d bytes not below full cache %d", check, full)
	}
	// The checkpointed cache is exactly the input tensor.
	if check != 4*int64(x.Len()) {
		t.Errorf("recompute cache %d bytes, want %d", check, 4*x.Len())
	}
	// The full transformer-block cache should dwarf the boundary tensor.
	if full < 4*check {
		t.Errorf("full cache (%d) suspiciously small vs boundary (%d)", full, check)
	}
}

func TestWithRecomputeWholeModel(t *testing.T) {
	rng := tensor.NewRNG(95)
	base := BuildMLP("mlp", []int{6, 12, 4}, rng)
	wrapped := WithRecompute(base)
	if len(wrapped.Layers) != len(base.Layers) {
		t.Fatal("layer count changed")
	}
	if wrapped.NumParams() != base.NumParams() {
		t.Fatal("params changed")
	}
	// End-to-end gradient equality through the model wrapper.
	x := randInput([]int{3, 6}, 96)
	targets := []int{0, 1, 2}

	base.ZeroGrads()
	y1, c1 := base.Forward(x, true)
	_, g1 := CrossEntropy(y1, targets)
	base.Backward(c1, g1, GradHook{})
	want := base.Params()[0].Grad.Clone()

	base.ZeroGrads() // wrapped shares the same params
	y2, c2 := wrapped.Forward(x, true)
	_, g2 := CrossEntropy(y2, targets)
	wrapped.Backward(c2, g2, GradHook{})
	if d := tensor.MaxAbsDiff(want, base.Params()[0].Grad); d != 0 {
		t.Errorf("wrapped model grads differ: %g", d)
	}
}

func TestRecomputeEvalMode(t *testing.T) {
	rng := tensor.NewRNG(97)
	l := Recompute{Inner: NewLinear("fc", 4, 3, rng)}
	y, cache := l.Forward(nil, randInput([]int{2, 4}, 98), false)
	if cache != nil {
		t.Error("eval mode must not cache")
	}
	if y.Dim(1) != 3 {
		t.Error("bad output")
	}
}
