package nn

import (
	"fmt"

	"github.com/sparse-dl/samo/internal/parallel"
	"github.com/sparse-dl/samo/internal/tensor"
)

// Linear is a fully connected layer y = x·W + b with W of shape (in, out).
// FC layers are the paper's Figure 1 workload and dominate transformer
// compute; their weights are the primary pruning target.
type Linear struct {
	W, B *Param
	in   int
	out  int
}

// NewLinear creates a Linear layer with Xavier-uniform weights.
func NewLinear(name string, in, out int, rng *tensor.RNG) *Linear {
	l := &Linear{
		W:  newParam(name+".weight", in, out),
		B:  newParam(name+".bias", out),
		in: in, out: out,
	}
	tensor.FillXavier(l.W.Value, in, out, rng)
	return l
}

type linearCache struct{ x *tensor.Tensor }

var linearCaches parallel.Pool[linearCache]

// Forward computes y = x·W + b for x of shape (n, in).
func (l *Linear) Forward(a *tensor.Arena, x *tensor.Tensor, train bool) (*tensor.Tensor, any) {
	if x.Rank() != 2 || x.Dim(1) != l.in {
		panic(fmt.Sprintf("nn: Linear(%d,%d) got input %v", l.in, l.out, x.Shape()))
	}
	y := a.Get(x.Dim(0), l.out)
	tensor.MatMulInto(y, x, l.W.Value, false)
	tensor.AddBias(y, l.B.Value)
	if !train {
		return y, nil
	}
	c := linearCaches.Get()
	c.x = x
	return y, c
}

// Backward computes dW += xᵀ·dy, db += Σrows dy, and returns dx = dy·Wᵀ.
// Parameter gradients accumulate directly into the Grad tensors (no
// temporaries).
func (l *Linear) Backward(a *tensor.Arena, cache any, gradOut *tensor.Tensor) *tensor.Tensor {
	c := cache.(*linearCache)
	tensor.TMatMulInto(l.W.Grad, c.x, gradOut, true)
	tensor.SumRowsInto(l.B.Grad, gradOut, true)
	dx := a.Get(gradOut.Dim(0), l.in)
	tensor.MatMulTInto(dx, gradOut, l.W.Value, false)
	c.x = nil
	linearCaches.Put(c)
	return dx
}

// Params returns the weight and bias.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// ReLULayer applies the rectifier elementwise.
type ReLULayer struct{}

// Forward clamps negatives to zero, caching the activation mask.
func (ReLULayer) Forward(a *tensor.Arena, x *tensor.Tensor, train bool) (*tensor.Tensor, any) {
	y := a.Get(x.Shape()...)
	y.CopyFrom(x)
	if !train {
		tensor.ReLUInPlace(y)
		return y, nil
	}
	mask := a.Get(x.Shape()...)
	tensor.ReLUWithMask(y, mask)
	return y, mask
}

// Backward zeroes gradient where the input was negative.
func (ReLULayer) Backward(a *tensor.Arena, cache any, gradOut *tensor.Tensor) *tensor.Tensor {
	g := a.Get(gradOut.Shape()...)
	g.CopyFrom(gradOut)
	tensor.Mul(g, cache.(*tensor.Tensor))
	return g
}

// Params returns nil: ReLU has no parameters.
func (ReLULayer) Params() []*Param { return nil }

// GELULayer applies the Gaussian error linear unit (transformer MLPs).
type GELULayer struct{}

// Forward applies GELU, caching pre-activations.
func (GELULayer) Forward(a *tensor.Arena, x *tensor.Tensor, train bool) (*tensor.Tensor, any) {
	y := a.Get(x.Shape()...)
	y.CopyFrom(x)
	if !train {
		tensor.GELUInPlace(y)
		return y, nil
	}
	pre := a.Get(x.Shape()...)
	tensor.GELUWithPre(y, pre)
	return y, pre
}

// Backward multiplies by dGELU/dx at the cached pre-activations.
func (GELULayer) Backward(a *tensor.Arena, cache any, gradOut *tensor.Tensor) *tensor.Tensor {
	g := a.Get(gradOut.Shape()...)
	g.CopyFrom(gradOut)
	tensor.GELUBackward(g, cache.(*tensor.Tensor))
	return g
}

// Params returns nil: GELU has no parameters.
func (GELULayer) Params() []*Param { return nil }

// Flatten reshapes (n, ...) to (n, rest), the CNN-to-classifier bridge.
type Flatten struct{}

type flattenCache struct{ shape []int }

var flattenCaches parallel.Pool[flattenCache]

// Forward flattens all but the leading dimension (a view: no copy).
func (Flatten) Forward(a *tensor.Arena, x *tensor.Tensor, train bool) (*tensor.Tensor, any) {
	rest := 1
	for _, d := range x.Shape()[1:] {
		rest *= d
	}
	y := a.ViewOf(x, x.Dim(0), rest)
	if !train {
		return y, nil
	}
	c := flattenCaches.Get()
	c.shape = append(c.shape[:0], x.Shape()...)
	return y, c
}

// Infer flattens into an owned copy instead of a view: the windowed
// inference runner reclaims the input's arena one layer later, so the
// output must not alias x's storage (InferLayer's no-aliasing contract).
func (Flatten) Infer(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	rest := 1
	for _, d := range x.Shape()[1:] {
		rest *= d
	}
	y := a.Get(x.Dim(0), rest)
	y.CopyFrom(x)
	return y
}

// Backward restores the original shape (a view: no copy).
func (Flatten) Backward(a *tensor.Arena, cache any, gradOut *tensor.Tensor) *tensor.Tensor {
	c := cache.(*flattenCache)
	g := a.ViewOf(gradOut, c.shape...)
	flattenCaches.Put(c)
	return g
}

// Params returns nil: Flatten has no parameters.
func (Flatten) Params() []*Param { return nil }
