package nn

import (
	"fmt"

	"github.com/sparse-dl/samo/internal/tensor"
)

// Linear is a fully connected layer y = x·W + b with W of shape (in, out).
// FC layers are the paper's Figure 1 workload and dominate transformer
// compute; their weights are the primary pruning target.
type Linear struct {
	W, B *Param
	in   int
	out  int
}

// NewLinear creates a Linear layer with Xavier-uniform weights.
func NewLinear(name string, in, out int, rng *tensor.RNG) *Linear {
	l := &Linear{
		W:  newParam(name+".weight", in, out),
		B:  newParam(name+".bias", out),
		in: in, out: out,
	}
	tensor.FillXavier(l.W.Value, in, out, rng)
	return l
}

type linearCache struct{ x *tensor.Tensor }

// Forward computes y = x·W + b for x of shape (n, in).
func (l *Linear) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, any) {
	if x.Rank() != 2 || x.Dim(1) != l.in {
		panic(fmt.Sprintf("nn: Linear(%d,%d) got input %v", l.in, l.out, x.Shape()))
	}
	y := tensor.MatMul(x, l.W.Value)
	tensor.AddBias(y, l.B.Value)
	if !train {
		return y, nil
	}
	return y, &linearCache{x: x}
}

// Backward computes dW += xᵀ·dy, db += Σrows dy, and returns dx = dy·Wᵀ.
func (l *Linear) Backward(cache any, gradOut *tensor.Tensor) *tensor.Tensor {
	c := cache.(*linearCache)
	dW := tensor.TMatMul(c.x, gradOut)
	tensor.Add(l.W.Grad, dW)
	tensor.Add(l.B.Grad, tensor.SumRows(gradOut))
	return tensor.MatMulT(gradOut, l.W.Value)
}

// Params returns the weight and bias.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// ReLULayer applies the rectifier elementwise.
type ReLULayer struct{}

// Forward clamps negatives to zero, caching the activation mask.
func (ReLULayer) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, any) {
	y := x.Clone()
	mask := tensor.ReLU(y)
	if !train {
		return y, nil
	}
	return y, mask
}

// Backward zeroes gradient where the input was negative.
func (ReLULayer) Backward(cache any, gradOut *tensor.Tensor) *tensor.Tensor {
	g := gradOut.Clone()
	tensor.Mul(g, cache.(*tensor.Tensor))
	return g
}

// Params returns nil: ReLU has no parameters.
func (ReLULayer) Params() []*Param { return nil }

// GELULayer applies the Gaussian error linear unit (transformer MLPs).
type GELULayer struct{}

// Forward applies GELU, caching pre-activations.
func (GELULayer) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, any) {
	y := x.Clone()
	pre := tensor.GELU(y)
	if !train {
		return y, nil
	}
	return y, pre
}

// Backward multiplies by dGELU/dx at the cached pre-activations.
func (GELULayer) Backward(cache any, gradOut *tensor.Tensor) *tensor.Tensor {
	g := gradOut.Clone()
	tensor.GELUBackward(g, cache.(*tensor.Tensor))
	return g
}

// Params returns nil: GELU has no parameters.
func (GELULayer) Params() []*Param { return nil }

// Flatten reshapes (n, ...) to (n, rest), the CNN-to-classifier bridge.
type Flatten struct{}

// Forward flattens all but the leading dimension.
func (Flatten) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, any) {
	return x.Reshape(x.Dim(0), -1), x.Shape()
}

// Backward restores the original shape.
func (Flatten) Backward(cache any, gradOut *tensor.Tensor) *tensor.Tensor {
	return gradOut.Reshape(cache.([]int)...)
}

// Params returns nil: Flatten has no parameters.
func (Flatten) Params() []*Param { return nil }
