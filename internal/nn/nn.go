// Package nn is the neural-network substrate of the SAMO reproduction:
// layers with explicit forward/backward passes, a parameter registry, loss
// functions, and builders for the paper's model zoo (VGG-19, WideResNet-101
// and the GPT-3 family from Table I).
//
// Layers are stateless with respect to activations: Forward returns an
// opaque cache that Backward consumes. This is load-bearing for the
// reproduction — AxoNN's pipeline keeps several microbatches in flight per
// GPU, so activation state cannot live inside the layer.
package nn

import (
	"fmt"
	"math"

	"github.com/sparse-dl/samo/internal/tensor"
)

// Layer cache structs recycle through parallel.Pool free lists, so
// steady-state forward/backward passes allocate no cache objects: Forward
// pops, Backward pushes back (see parallel.Pool for why not a sync.Pool).

// Param is one learnable tensor with its gradient accumulator. Value is the
// tensor the forward/backward kernels read (θ16's dense stand-in — under
// mixed precision it holds fp16-quantized values); Grad accumulates across
// microbatches.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
	// NoPrune excludes the parameter from pruning even if it is a matrix.
	// Embedding tables set it: pruning them harms accuracy disproportionately
	// and standard GPT pruning recipes (e.g. Cerebras' 90%-sparse GPT-3 runs
	// the paper cites) keep them dense.
	NoPrune bool
	// MetaBytes is layer-owned index/structure storage tied to this
	// parameter that the memory ledger should account beyond Value/Grad —
	// SparseLinear sets it to its CSR pattern bytes. Zero for dense layers.
	MetaBytes int64
}

func newParam(name string, shape ...int) *Param {
	return &Param{Name: name, Value: tensor.New(shape...), Grad: tensor.New(shape...)}
}

// Size returns the number of elements.
func (p *Param) Size() int { return p.Value.Len() }

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is a differentiable module. Forward computes the output and an
// opaque cache; Backward consumes the cache, accumulates parameter
// gradients into Params().Grad, and returns the gradient w.r.t. the input.
//
// The arena supplies activation/gradient/scratch tensors so steady-state
// training steps allocate nothing; it may be nil, in which case layers fall
// back to plain heap allocation (tests and one-off evaluations use this).
// The caller owns the arena's lifetime: tensors returned by Forward and the
// cache contents become invalid at the caller's next Arena.Reset, after the
// optimizer step that consumed them. Backward consumes the cache exactly
// once (cache structs are recycled through per-type pools).
//
// Forward with train=false is contractually cache-free: it returns a nil
// cache and must not touch the cache pools at all — no Get that eval
// discards, no compensating Put. Inference passes (Model.Infer, EvalLoss,
// the serving engine) therefore leave the pools untouched; see infer.go
// for the forward-only extension built on this contract.
type Layer interface {
	Forward(a *tensor.Arena, x *tensor.Tensor, train bool) (y *tensor.Tensor, cache any)
	Backward(a *tensor.Arena, cache any, gradOut *tensor.Tensor) *tensor.Tensor
	Params() []*Param
}

// Model is an ordered stack of layers — the unit AxoNN partitions across
// inter-layer-parallel GPUs.
type Model struct {
	Name   string
	Layers []Layer

	params []*Param // memoized by Params
}

// Params returns all parameters in layer order. The result is memoized
// (gradient capture and ZeroGrads call it every step and must not
// allocate); the layer list must not change after the first call.
func (m *Model) Params() []*Param {
	if m.params == nil {
		for _, l := range m.Layers {
			m.params = append(m.params, l.Params()...)
		}
	}
	return m.params
}

// NumParams returns the total parameter count φ.
func (m *Model) NumParams() int {
	n := 0
	for _, p := range m.Params() {
		n += p.Size()
	}
	return n
}

// ZeroGrads clears every gradient accumulator.
func (m *Model) ZeroGrads() {
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
}

// Forward runs all layers, returning the output and per-layer caches.
func (m *Model) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, []any) {
	caches := make([]any, len(m.Layers))
	return m.ForwardArena(nil, x, train, caches), caches
}

// ForwardArena runs all layers with tensors drawn from the arena, writing
// per-layer caches into the caller-provided slice (len = number of layers)
// so the steady-state forward pass allocates nothing.
func (m *Model) ForwardArena(a *tensor.Arena, x *tensor.Tensor, train bool, caches []any) *tensor.Tensor {
	if len(caches) != len(m.Layers) {
		panic(fmt.Sprintf("nn: %d cache slots for %d layers", len(caches), len(m.Layers)))
	}
	for i, l := range m.Layers {
		x, caches[i] = l.Forward(a, x, train)
	}
	return x
}

// GradHook observes the backward pass at layer boundaries. Capture is
// called after each layer's backward with that layer — the exact point SAMO
// compresses ∇θ16 at layer granularity so the whole model's dense gradients
// never coexist in memory (§III-C). LayerDone then fires with the layer's
// index, signalling that every parameter gradient owned by that layer is
// final for this backward pass; the engine uses it to launch the layer's
// bucketed all-reduce while earlier layers are still computing.
type GradHook struct {
	Capture   func(layer Layer)
	LayerDone func(layer int)
}

// Backward runs the reverse pass from the output gradient, invoking the hook
// callbacks (those that are non-nil) after each layer. Returns the gradient
// w.r.t. the model input.
func (m *Model) Backward(caches []any, gradOut *tensor.Tensor, hook GradHook) *tensor.Tensor {
	return m.BackwardArena(nil, caches, gradOut, hook)
}

// BackwardArena is Backward with intermediate gradients drawn from the
// arena (they are reclaimed wholesale at the caller's next Reset).
func (m *Model) BackwardArena(a *tensor.Arena, caches []any, gradOut *tensor.Tensor, hook GradHook) *tensor.Tensor {
	if len(caches) != len(m.Layers) {
		panic(fmt.Sprintf("nn: %d caches for %d layers", len(caches), len(m.Layers)))
	}
	g := gradOut
	for i := len(m.Layers) - 1; i >= 0; i-- {
		g = m.Layers[i].Backward(a, caches[i], g)
		if hook.Capture != nil {
			hook.Capture(m.Layers[i])
		}
		if hook.LayerDone != nil {
			hook.LayerDone(i)
		}
	}
	return g
}

// PruneLayers adapts the model's parameters for the prune package. Only
// weight matrices are prunable; biases and normalization affine parameters
// are kept dense (standard practice — they are a negligible fraction of φ
// and pruning them harms accuracy disproportionately).
func (m *Model) PruneLayers() []PruneEntry {
	var out []PruneEntry
	for _, p := range m.Params() {
		if Prunable(p) {
			out = append(out, PruneEntry{Name: p.Name, Param: p})
		}
	}
	return out
}

// PruneEntry pairs a parameter with its registry name.
type PruneEntry struct {
	Name  string
	Param *Param
}

// Prunable reports whether a parameter participates in pruning: rank >= 2
// (weight matrices and conv filters), not biases/affine vectors, and not
// explicitly excluded (embedding tables).
func Prunable(p *Param) bool { return p.Value.Rank() >= 2 && !p.NoPrune }

// CrossEntropy computes the mean cross-entropy loss of logits (N, V) against
// integer targets, and the gradient w.r.t. the logits. Target -1 means
// "ignore" (padding). The gradient is already divided by the number of
// counted targets, so microbatch gradients sum to the batch gradient after
// scaling by microbatch count (the engine handles that normalization).
func CrossEntropy(logits *tensor.Tensor, targets []int) (float64, *tensor.Tensor) {
	return CrossEntropyArena(nil, logits, targets)
}

// CrossEntropyArena is CrossEntropy with the gradient tensor drawn from the
// arena (nil falls back to heap allocation).
func CrossEntropyArena(a *tensor.Arena, logits *tensor.Tensor, targets []int) (float64, *tensor.Tensor) {
	if logits.Rank() != 2 || logits.Dim(0) != len(targets) {
		panic(fmt.Sprintf("nn: CrossEntropy logits %v vs %d targets", logits.Shape(), len(targets)))
	}
	n, v := logits.Dim(0), logits.Dim(1)
	grad := a.GetZeroed(n, v)
	var loss float64
	counted := 0
	for i := 0; i < n; i++ {
		if targets[i] < 0 {
			continue
		}
		counted++
	}
	if counted == 0 {
		return 0, grad
	}
	inv := 1 / float64(counted)
	for i := 0; i < n; i++ {
		t := targets[i]
		if t < 0 {
			continue
		}
		row := logits.Data()[i*v : (i+1)*v]
		max := row[0]
		for _, x := range row[1:] {
			if x > max {
				max = x
			}
		}
		var sum float64
		for _, x := range row {
			sum += math.Exp(float64(x - max))
		}
		logZ := math.Log(sum) + float64(max)
		loss += (logZ - float64(row[t])) * inv
		g := grad.Data()[i*v : (i+1)*v]
		for j, x := range row {
			p := math.Exp(float64(x)-logZ) * inv
			g[j] = float32(p)
			_ = x
		}
		g[t] -= float32(inv)
	}
	return loss, grad
}

// Perplexity converts a mean cross-entropy loss to perplexity, the paper's
// Figure 4 metric.
func Perplexity(loss float64) float64 { return math.Exp(loss) }
