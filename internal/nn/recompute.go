package nn

import (
	"github.com/sparse-dl/samo/internal/parallel"
	"github.com/sparse-dl/samo/internal/tensor"
)

// Recompute wraps a layer with activation checkpointing (Chen et al.,
// "Training Deep Nets with Sublinear Memory Cost"), which AxoNN enables for
// large models (§II-E): the forward pass stores only the layer INPUT; the
// backward pass re-runs the forward to rebuild the activation cache before
// differentiating. Memory per in-flight microbatch drops from the layer's
// full working set to one boundary tensor, at the cost of one extra forward
// (the 4/3 recompute factor in Narayanan et al.'s flop formula, which the
// simulator's FwdFraction=0.25 split already assumes).
//
// The wrapped layer must be deterministic given its input and parameters.
// BatchNorm2d in training mode is NOT safe to wrap: the recomputation would
// update its running statistics a second time. Transformer blocks,
// convolutions, LayerNorm and activations all qualify.
type Recompute struct {
	Inner Layer
}

// WithRecompute wraps each layer of a model in Recompute.
func WithRecompute(m *Model) *Model {
	out := &Model{Name: m.Name + "+recompute"}
	for _, l := range m.Layers {
		out.Layers = append(out.Layers, Recompute{Inner: l})
	}
	return out
}

type recomputeCache struct {
	x *tensor.Tensor
}

var recomputeCaches parallel.Pool[recomputeCache]

// Forward runs the inner layer and discards its cache, keeping only the
// input.
func (r Recompute) Forward(a *tensor.Arena, x *tensor.Tensor, train bool) (*tensor.Tensor, any) {
	y, _ := r.Inner.Forward(a, x, false) // eval-mode forward: no cache is built
	if !train {
		return y, nil
	}
	c := recomputeCaches.Get()
	c.x = x
	return y, c
}

// Infer unwraps to the inner layer's inference forward: checkpointing only
// exists to bound backward-pass memory, so forward-only execution sees
// straight through it (and inherits the inner layer's no-aliasing
// contract, e.g. a wrapped Flatten still copies).
func (r Recompute) Infer(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	return InferForward(r.Inner, a, x)
}

// Backward re-runs the inner forward in training mode to rebuild the cache,
// then differentiates through it. The recomputed activations come from the
// same arena and are reclaimed at the caller's next Reset.
func (r Recompute) Backward(a *tensor.Arena, cache any, gradOut *tensor.Tensor) *tensor.Tensor {
	c := cache.(*recomputeCache)
	_, inner := r.Inner.Forward(a, c.x, true)
	c.x = nil
	recomputeCaches.Put(c)
	return r.Inner.Backward(a, inner, gradOut)
}

// Params exposes the inner layer's parameters.
func (r Recompute) Params() []*Param { return r.Inner.Params() }

// CacheBytes estimates the activation bytes a cache value pins, for
// comparing checkpointed against full caching in tests. It understands the
// cache types of this package; unknown types report 0.
func CacheBytes(cache any) int64 {
	switch c := cache.(type) {
	case nil:
		return 0
	case *recomputeCache:
		return 4 * int64(c.x.Len())
	case *linearCache:
		return 4 * int64(c.x.Len())
	case *lnCache:
		return 4 * (int64(c.xhat.Len()) + int64(len(c.invStd)))
	case *attnCache:
		return 4 * (int64(c.x.Len()) + int64(c.qkv.Len()) + int64(c.probs.Len()) + int64(c.heads.Len()))
	case *blockCache:
		return CacheBytes(c.cLN1) + CacheBytes(c.cAttn) + CacheBytes(c.cLN2) +
			CacheBytes(c.cFC1) + CacheBytes(c.cGELU) + CacheBytes(c.cFC2)
	case *convCache:
		return 4 * int64(c.cols.Len())
	case *tensor.Tensor: // ReLU mask / GELU pre-activations
		return 4 * int64(c.Len())
	default:
		return 0
	}
}
