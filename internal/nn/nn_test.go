package nn

import (
	"math"
	"testing"

	"github.com/sparse-dl/samo/internal/tensor"
)

// scalarLoss reduces a layer output to a scalar via a fixed random
// projection, so d loss / d y is a known tensor and finite differences can
// probe any parameter or input coordinate.
func scalarLoss(y, r *tensor.Tensor) float64 { return tensor.Dot(y, r) }

// gradCheck verifies a layer's analytic gradients (input + all params)
// against central finite differences on a sample of coordinates.
func gradCheck(t *testing.T, name string, l Layer, x *tensor.Tensor, seed uint64) {
	t.Helper()
	rng := tensor.NewRNG(seed)

	forward := func() (*tensor.Tensor, any) { return l.Forward(nil, x, true) }
	y0, cache := forward()
	r := tensor.New(y0.Shape()...)
	tensor.FillNormal(r, 1, rng)

	for _, p := range l.Params() {
		p.ZeroGrad()
	}
	dx := l.Backward(nil, cache, r)

	lossAt := func() float64 {
		y, _ := l.Forward(nil, x, true)
		return scalarLoss(y, r)
	}

	const eps = 1e-2
	checkCoord := func(data []float32, i int, analytic float32, what string) {
		t.Helper()
		orig := data[i]
		data[i] = orig + eps
		lp := lossAt()
		data[i] = orig - eps
		lm := lossAt()
		data[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(float64(analytic)-numeric) > 2e-2*(1+math.Abs(numeric)) {
			t.Errorf("%s %s[%d]: analytic %g vs numeric %g", name, what, i, analytic, numeric)
		}
	}

	// Sample input coordinates.
	n := x.Len()
	for s := 0; s < 8 && s < n; s++ {
		i := rng.Intn(n)
		checkCoord(x.Data(), i, dx.Data()[i], "input")
	}
	// Sample parameter coordinates.
	for _, p := range l.Params() {
		pn := p.Size()
		for s := 0; s < 6 && s < pn; s++ {
			i := rng.Intn(pn)
			checkCoord(p.Value.Data(), i, p.Grad.Data()[i], "param "+p.Name)
		}
	}
}

func randInput(shape []int, seed uint64) *tensor.Tensor {
	x := tensor.New(shape...)
	tensor.FillNormal(x, 1, tensor.NewRNG(seed))
	return x
}

func TestLinearGradients(t *testing.T) {
	rng := tensor.NewRNG(1)
	l := NewLinear("fc", 7, 5, rng)
	gradCheck(t, "Linear", l, randInput([]int{4, 7}, 2), 3)
}

func TestReLUGradients(t *testing.T) {
	gradCheck(t, "ReLU", ReLULayer{}, randInput([]int{3, 9}, 4), 5)
}

func TestGELULayerGradients(t *testing.T) {
	gradCheck(t, "GELU", GELULayer{}, randInput([]int{3, 6}, 6), 7)
}

func TestLayerNormGradients(t *testing.T) {
	ln := NewLayerNorm("ln", 10)
	// Non-trivial gamma/beta so their gradients are exercised.
	tensor.FillNormal(ln.Gamma.Value, 0.5, tensor.NewRNG(8))
	tensor.Add(ln.Gamma.Value, onesLike(ln.Gamma.Value))
	tensor.FillNormal(ln.Beta.Value, 0.3, tensor.NewRNG(9))
	gradCheck(t, "LayerNorm", ln, randInput([]int{5, 10}, 10), 11)
}

func onesLike(x *tensor.Tensor) *tensor.Tensor {
	o := tensor.New(x.Shape()...)
	o.Fill(1)
	return o
}

func TestBatchNormGradients(t *testing.T) {
	bn := NewBatchNorm2d("bn", 3)
	tensor.FillNormal(bn.Beta.Value, 0.2, tensor.NewRNG(12))
	gradCheck(t, "BatchNorm2d", bn, randInput([]int{2, 3, 4, 4}, 13), 14)
}

func TestConv2dGradients(t *testing.T) {
	spec := tensor.ConvSpec{InC: 2, OutC: 3, Kernel: 3, Stride: 1, Pad: 1, InH: 5, InW: 5}
	c := NewConv2d("conv", spec, tensor.NewRNG(15))
	gradCheck(t, "Conv2d", c, randInput([]int{2, 2, 5, 5}, 16), 17)
}

func TestMaxPoolGradients(t *testing.T) {
	gradCheck(t, "MaxPool", MaxPool{}, randInput([]int{2, 2, 4, 4}, 18), 19)
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	gradCheck(t, "GlobalAvgPool", GlobalAvgPool{}, randInput([]int{2, 3, 4, 4}, 20), 21)
}

func TestAttentionGradients(t *testing.T) {
	a := NewCausalSelfAttention("attn", 8, 2, 4, tensor.NewRNG(22))
	gradCheck(t, "Attention", a, randInput([]int{8, 8}, 23), 24) // batch 2 × seq 4
}

func TestTransformerBlockGradients(t *testing.T) {
	b := NewTransformerBlock("blk", 8, 2, 4, tensor.NewRNG(25))
	gradCheck(t, "TransformerBlock", b, randInput([]int{8, 8}, 26), 27)
}

func TestResidualBlockGradients(t *testing.T) {
	b := NewResidualBlock("res", 2, 4, 4, 4, 2, tensor.NewRNG(28))
	// Keep both BN outputs away from the ReLU kink (γ small, β ≈ 2) so
	// finite differences stay valid: a perturbation that shifts a whole
	// normalized channel across zero would corrupt the numeric gradient.
	// ReLU's own kink behaviour is verified by TestReLUGradients.
	for _, bn := range []*BatchNorm2d{b.BN1, b.BN2} {
		bn.Gamma.Value.Fill(0.1)
		bn.Beta.Value.Fill(2)
	}
	gradCheck(t, "ResidualBlock", b, randInput([]int{2, 2, 4, 4}, 29), 30)
}

func TestEmbeddingGradients(t *testing.T) {
	e := NewEmbedding("emb", 11, 3, 6, tensor.NewRNG(31))
	x := TokensToTensor([]int{1, 5, 10, 0, 2, 7}) // batch 2 × seq 3
	y, cache := e.Forward(nil, x, true)
	r := tensor.New(y.Shape()...)
	tensor.FillNormal(r, 1, tensor.NewRNG(32))
	e.Tok.ZeroGrad()
	e.Pos.ZeroGrad()
	e.Backward(nil, cache, r)
	// Token 5 appears once at position 1: its grad row equals r's row 1.
	d := 6
	for j := 0; j < d; j++ {
		if e.Tok.Grad.At(5, j) != r.At(1, j) {
			t.Fatalf("token grad wrong at %d", j)
		}
	}
	// Position 0 is used by rows 0 and 3.
	for j := 0; j < d; j++ {
		want := r.At(0, j) + r.At(3, j)
		if math.Abs(float64(e.Pos.Grad.At(0, j)-want)) > 1e-5 {
			t.Fatalf("pos grad wrong at %d", j)
		}
	}
}

func TestCausalityOfAttention(t *testing.T) {
	// Changing a future token must not affect earlier outputs.
	a := NewCausalSelfAttention("attn", 8, 2, 4, tensor.NewRNG(33))
	x := randInput([]int{4, 8}, 34) // batch 1 × seq 4
	y1, _ := a.Forward(nil, x, false)
	x2 := x.Clone()
	for j := 0; j < 8; j++ {
		x2.Set(x2.At(3, j)+5, 3, j) // perturb last position
	}
	y2, _ := a.Forward(nil, x2, false)
	for i := 0; i < 3; i++ {
		for j := 0; j < 8; j++ {
			if y1.At(i, j) != y2.At(i, j) {
				t.Fatalf("causality violated at (%d,%d)", i, j)
			}
		}
	}
}

func TestCrossEntropyValueAndGrad(t *testing.T) {
	logits := tensor.FromSlice([]float32{1, 2, 3, 0.5, 0.5, 0.5}, 2, 3)
	loss, grad := CrossEntropy(logits, []int{2, 0})
	// Manual computation.
	want := 0.0
	{
		z := []float64{1, 2, 3}
		lse := math.Log(math.Exp(z[0]) + math.Exp(z[1]) + math.Exp(z[2]))
		want += lse - 3
		want += math.Log(3*math.Exp(0.5)) - 0.5
		want /= 2
	}
	if math.Abs(loss-want) > 1e-6 {
		t.Errorf("loss %g want %g", loss, want)
	}
	// Grad rows sum to zero (softmax minus one-hot).
	for i := 0; i < 2; i++ {
		var s float64
		for j := 0; j < 3; j++ {
			s += float64(grad.At(i, j))
		}
		if math.Abs(s) > 1e-6 {
			t.Errorf("grad row %d sums to %g", i, s)
		}
	}
	// Finite difference on one logit.
	const eps = 1e-3
	l2 := logits.Clone()
	l2.Set(l2.At(0, 1)+eps, 0, 1)
	lp, _ := CrossEntropy(l2, []int{2, 0})
	num := (lp - loss) / eps
	if math.Abs(num-float64(grad.At(0, 1))) > 1e-3 {
		t.Errorf("CE grad: numeric %g analytic %g", num, grad.At(0, 1))
	}
}

func TestCrossEntropyIgnoreIndex(t *testing.T) {
	logits := tensor.FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	loss1, grad := CrossEntropy(logits, []int{0, -1})
	if grad.At(1, 0) != 0 || grad.At(1, 1) != 0 {
		t.Error("ignored row must have zero grad")
	}
	loss2, _ := CrossEntropy(logits.Slice(0, 1), []int{0})
	if math.Abs(loss1-loss2) > 1e-6 {
		t.Errorf("ignore index changes loss: %g vs %g", loss1, loss2)
	}
	lossAll, gradAll := CrossEntropy(logits, []int{-1, -1})
	if lossAll != 0 || tensor.Sum(gradAll) != 0 {
		t.Error("all-ignored batch should be zero loss/grad")
	}
}

func TestModelEndToEndGradient(t *testing.T) {
	// Whole-model gradient through an MLP with a cross-entropy head.
	rng := tensor.NewRNG(40)
	m := BuildMLP("mlp", []int{6, 8, 4}, rng)
	x := randInput([]int{3, 6}, 41)
	targets := []int{1, 3, 0}

	loss := func() float64 {
		y, _ := m.Forward(x, true)
		l, _ := CrossEntropy(y, targets)
		return l
	}
	m.ZeroGrads()
	y, caches := m.Forward(x, true)
	_, g := CrossEntropy(y, targets)
	m.Backward(caches, g, GradHook{})

	p := m.Params()[0] // first weight matrix
	const eps = 1e-2
	rng2 := tensor.NewRNG(42)
	for s := 0; s < 8; s++ {
		i := rng2.Intn(p.Size())
		orig := p.Value.Data()[i]
		p.Value.Data()[i] = orig + eps
		lp := loss()
		p.Value.Data()[i] = orig - eps
		lm := loss()
		p.Value.Data()[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(p.Grad.Data()[i])) > 2e-2*(1+math.Abs(num)) {
			t.Errorf("model grad [%d]: numeric %g analytic %g", i, num, p.Grad.Data()[i])
		}
	}
}

func TestGradHookFiresPerLayerInReverse(t *testing.T) {
	rng := tensor.NewRNG(50)
	m := BuildMLP("mlp", []int{4, 5, 3}, rng)
	x := randInput([]int{2, 4}, 51)
	y, caches := m.Forward(x, true)
	_, g := CrossEntropy(y, []int{0, 1})
	var order []Layer
	var done []int
	m.Backward(caches, g, GradHook{
		Capture:   func(l Layer) { order = append(order, l) },
		LayerDone: func(i int) { done = append(done, i) },
	})
	if len(order) != len(m.Layers) {
		t.Fatalf("hook fired %d times for %d layers", len(order), len(m.Layers))
	}
	for i := range order {
		if order[i] != m.Layers[len(m.Layers)-1-i] {
			t.Fatalf("hook order not reverse of layer order")
		}
	}
	if len(done) != len(m.Layers) {
		t.Fatalf("LayerDone fired %d times for %d layers", len(done), len(m.Layers))
	}
	for i, l := range done {
		if l != len(m.Layers)-1-i {
			t.Fatalf("LayerDone order = %v, want reverse layer indices", done)
		}
	}
}

func TestMicrobatchGradientsSumToBatch(t *testing.T) {
	// Two half-batches accumulated must equal one full batch (scaled):
	// the property AxoNN's pipelined accumulation relies on.
	rng := tensor.NewRNG(60)
	m := BuildMLP("mlp", []int{4, 6, 3}, rng)
	x := randInput([]int{4, 4}, 61)
	targets := []int{0, 1, 2, 1}

	run := func(lo, hi int) {
		y, caches := m.Forward(x.Slice(lo, hi), true)
		_, g := CrossEntropy(y, targets[lo:hi])
		tensor.Scale(g, float32(hi-lo)/4) // weight by sub-batch fraction
		m.Backward(caches, g, GradHook{})
	}
	m.ZeroGrads()
	run(0, 4)
	full := m.Params()[0].Grad.Clone()
	m.ZeroGrads()
	run(0, 2)
	run(2, 4)
	split := m.Params()[0].Grad
	if d := tensor.MaxAbsDiff(full, split); d > 1e-5 {
		t.Errorf("microbatch sum mismatch: %g", d)
	}
}

func TestGPTConfigParamCounts(t *testing.T) {
	cases := []struct {
		cfg  GPTConfig
		want float64 // billions
	}{
		{GPT3XL, 1.3}, {GPT3_2B7, 2.7}, {GPT3_6B7, 6.7}, {GPT3_13B, 13},
	}
	for _, c := range cases {
		got := float64(c.cfg.NumParams()) / 1e9
		if math.Abs(got-c.want)/c.want > 0.1 {
			t.Errorf("%s: %.2fB params, want ≈%.1fB", c.cfg.Name, got, c.want)
		}
	}
}

func TestFlopsFormulaSanity(t *testing.T) {
	f := GPT3_2B7.FlopsPerBatch(512)
	// ≈ 6·φ per token × recompute factor 4/3 = 8·φ per token:
	// 512·2048 tokens × 2.7e9 params × 8 ≈ 2.3e16.
	if f < 1e16 || f > 4e16 {
		t.Errorf("2.7B flops per 512-batch = %g, outside sanity band", f)
	}
	if GPT3_13B.FlopsPerBatch(2048) <= GPT3XL.FlopsPerBatch(512) {
		t.Error("13B batch must cost more than XL batch")
	}
}

func TestTinyGPTForwardShapes(t *testing.T) {
	cfg := GPTConfig{Name: "tiny", Layers: 2, Hidden: 16, Heads: 2, Seq: 4, Vocab: 17}
	m := BuildGPT(cfg, tensor.NewRNG(70))
	x := TokensToTensor([]int{1, 2, 3, 4, 5, 6, 7, 8}) // batch 2 × seq 4
	y, _ := m.Forward(x, false)
	if y.Dim(0) != 8 || y.Dim(1) != 17 {
		t.Errorf("GPT output %v, want (8,17)", y.Shape())
	}
	if m.NumParams() == 0 {
		t.Error("no params")
	}
}

func TestVGGAndWRNForwardShapes(t *testing.T) {
	rng := tensor.NewRNG(71)
	vgg := BuildVGG("vgg-s", SmallVGGPlan, 3, 16, 10, rng)
	x := randInput([]int{2, 3, 16, 16}, 72)
	y, _ := vgg.Forward(x, false)
	if y.Dim(0) != 2 || y.Dim(1) != 10 {
		t.Errorf("VGG output %v", y.Shape())
	}
	wrn := BuildWideResNet("wrn-s", 1, 2, 3, 16, 10, rng)
	y2, _ := wrn.Forward(x, false)
	if y2.Dim(0) != 2 || y2.Dim(1) != 10 {
		t.Errorf("WRN output %v", y2.Shape())
	}
}

func TestPrunableSelection(t *testing.T) {
	rng := tensor.NewRNG(73)
	m := BuildMLP("mlp", []int{4, 5, 3}, rng)
	entries := m.PruneLayers()
	// Two Linear layers -> two prunable weight matrices, biases excluded.
	if len(entries) != 2 {
		t.Fatalf("%d prunable entries, want 2", len(entries))
	}
	for _, e := range entries {
		if e.Param.Value.Rank() < 2 {
			t.Errorf("non-matrix %s marked prunable", e.Name)
		}
	}
}

func TestPerplexity(t *testing.T) {
	if Perplexity(0) != 1 {
		t.Error("perplexity of zero loss must be 1")
	}
	if math.Abs(Perplexity(math.Log(50))-50) > 1e-9 {
		t.Error("perplexity inverse of log")
	}
}

func TestEvalModeNoCaches(t *testing.T) {
	rng := tensor.NewRNG(74)
	m := BuildMLP("mlp", []int{4, 5, 3}, rng)
	_, caches := m.Forward(randInput([]int{2, 4}, 75), false)
	for i, c := range caches {
		if c != nil {
			t.Errorf("layer %d returned a cache in eval mode", i)
		}
	}
}
