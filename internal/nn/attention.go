package nn

import (
	"fmt"
	"math"

	"github.com/sparse-dl/samo/internal/parallel"
	"github.com/sparse-dl/samo/internal/tensor"
)

// CausalSelfAttention is multi-head scaled-dot-product attention with a
// causal mask — the attention of GPT-style decoders. Input and output are
// (batch·seq, d) with the sequence length fixed at construction (static
// shapes keep the pipeline engine's message sizes constant, as in AxoNN).
type CausalSelfAttention struct {
	Wqkv, Bqkv   *Param // (d, 3d), (3d)
	Wproj, Bproj *Param // (d, d), (d)
	d, heads, dh int
	seq          int
}

// NewCausalSelfAttention creates an attention layer with d model dims and
// the given head count over sequences of length seq.
func NewCausalSelfAttention(name string, d, heads, seq int, rng *tensor.RNG) *CausalSelfAttention {
	if d%heads != 0 {
		panic(fmt.Sprintf("nn: d=%d not divisible by heads=%d", d, heads))
	}
	a := &CausalSelfAttention{
		Wqkv:  newParam(name+".wqkv", d, 3*d),
		Bqkv:  newParam(name+".bqkv", 3*d),
		Wproj: newParam(name+".wproj", d, d),
		Bproj: newParam(name+".bproj", d),
		d:     d, heads: heads, dh: d / heads, seq: seq,
	}
	tensor.FillXavier(a.Wqkv.Value, d, 3*d, rng)
	tensor.FillXavier(a.Wproj.Value, d, d, rng)
	return a
}

type attnCache struct {
	x     *tensor.Tensor // (B·T, d)
	qkv   *tensor.Tensor // (B·T, 3d)
	probs *tensor.Tensor // (B·H·T·T) softmax rows
	heads *tensor.Tensor // (B·T, d) concatenated head outputs
	batch int
}

var attnCaches parallel.Pool[attnCache]

// attnJob carries one attention pass's state to the worker pool. Forward
// and backward both fan out over (batch, head) pairs through parallel.Run
// with a pooled job instead of parallel.For with a closure — the per-head
// loops run once per microbatch, and a closure there was one of the last
// per-step allocations on the GPT path.
type attnJob struct {
	qd, probs, hd, dqd []float32
	T, H, dh, d        int
	scale              float32
}

var attnJobFree parallel.Pool[attnJob]

// attnScratch is the per-chunk dp row buffer of the backward pass,
// recycled through a pool so backward chunks allocate nothing in steady
// state.
type attnScratch struct{ dp []float32 }

var attnScratchFree parallel.Pool[attnScratch]

func getAttnScratch(n int) *attnScratch {
	s := attnScratchFree.Get()
	if cap(s.dp) < n {
		s.dp = make([]float32, n)
	}
	s.dp = s.dp[:n]
	return s
}

// Forward computes attention over x of shape (batch·seq, d). The per-head
// score/softmax/value loop runs in parallel over (batch, head) pairs on the
// shared worker pool — each pair touches disjoint slices of probs and
// disjoint columns of the head output.
func (a *CausalSelfAttention) Forward(ar *tensor.Arena, x *tensor.Tensor, train bool) (*tensor.Tensor, any) {
	if x.Rank() != 2 || x.Dim(1) != a.d || x.Dim(0)%a.seq != 0 {
		panic(fmt.Sprintf("nn: attention(d=%d,seq=%d) got %v", a.d, a.seq, x.Shape()))
	}
	batch := x.Dim(0) / a.seq
	T, H, dh := a.seq, a.heads, a.dh

	qkv := ar.Get(x.Dim(0), 3*a.d)
	tensor.MatMulInto(qkv, x, a.Wqkv.Value, false)
	tensor.AddBias(qkv, a.Bqkv.Value)

	probsT := ar.Get(batch * H * T * T)
	headsOut := ar.GetZeroed(batch*T, a.d)
	j := attnJobFree.Get()
	j.qd, j.probs, j.hd = qkv.Data(), probsT.Data(), headsOut.Data()
	j.T, j.H, j.dh, j.d = T, H, dh, a.d
	j.scale = float32(1 / math.Sqrt(float64(dh)))
	parallel.Run(batch*H, 1, j, attnForwardChunk)
	j.qd, j.probs, j.hd, j.dqd = nil, nil, nil, nil
	attnJobFree.Put(j)

	y := ar.Get(batch*T, a.d)
	tensor.MatMulInto(y, headsOut, a.Wproj.Value, false)
	tensor.AddBias(y, a.Bproj.Value)
	if !train {
		return y, nil
	}
	c := attnCaches.Get()
	c.x, c.qkv, c.probs, c.heads, c.batch = x, qkv, probsT, headsOut, batch
	return y, c
}

// Backward propagates through projection, attention weights and the QKV
// projection, accumulating all four parameter gradients. The per-head loop
// parallelizes over (batch, head): every write — dQKV column bands, probs
// slices — is disjoint across pairs.
func (a *CausalSelfAttention) Backward(ar *tensor.Arena, cache any, gradOut *tensor.Tensor) *tensor.Tensor {
	c := cache.(*attnCache)
	batch, T, H, dh := c.batch, a.seq, a.heads, a.dh
	stride := 3 * a.d
	scale := float32(1 / math.Sqrt(float64(dh)))
	d := a.d

	// Projection backward (gradients accumulate into the Param tensors).
	tensor.TMatMulInto(a.Wproj.Grad, c.heads, gradOut, true)
	tensor.SumRowsInto(a.Bproj.Grad, gradOut, true)
	dHeads := ar.Get(batch*T, a.d)
	tensor.MatMulTInto(dHeads, gradOut, a.Wproj.Value, false)

	dQKV := ar.GetZeroed(batch*T, stride)

	j := attnJobFree.Get()
	j.qd, j.probs, j.hd, j.dqd = c.qkv.Data(), c.probs.Data(), dHeads.Data(), dQKV.Data()
	j.T, j.H, j.dh, j.d = T, H, dh, d
	j.scale = scale
	parallel.Run(batch*H, 1, j, attnBackwardChunk)
	j.qd, j.probs, j.hd, j.dqd = nil, nil, nil, nil
	attnJobFree.Put(j)

	// QKV projection backward.
	tensor.TMatMulInto(a.Wqkv.Grad, c.x, dQKV, true)
	tensor.SumRowsInto(a.Bqkv.Grad, dQKV, true)
	dx := ar.Get(batch*T, a.d)
	tensor.MatMulTInto(dx, dQKV, a.Wqkv.Value, false)
	c.x, c.qkv, c.probs, c.heads = nil, nil, nil, nil
	attnCaches.Put(c)
	return dx
}

// Params returns the QKV and output-projection parameters.
func (a *CausalSelfAttention) Params() []*Param {
	return []*Param{a.Wqkv, a.Bqkv, a.Wproj, a.Bproj}
}

// attnForwardChunk computes scores, causal softmax and head outputs for
// (batch, head) pairs [lo,hi). Each pair touches disjoint slices of probs
// and disjoint columns of the head output.
func attnForwardChunk(ctx any, lo, hi int) {
	g := ctx.(*attnJob)
	qd, probs, hd := g.qd, g.probs, g.hd
	T, H, dh, d := g.T, g.H, g.dh, g.d
	scale := g.scale
	stride := 3 * d
	for bh := lo; bh < hi; bh++ {
		b, h := bh/H, bh%H
		qOff := h * dh
		kOff := d + h*dh
		vOff := 2*d + h*dh
		pBase := bh * T * T
		// scores + softmax row by row (causal: j <= i).
		for i := 0; i < T; i++ {
			qi := qd[(b*T+i)*stride+qOff : (b*T+i)*stride+qOff+dh]
			row := probs[pBase+i*T : pBase+i*T+T]
			maxv := float32(math.Inf(-1))
			for j := 0; j <= i; j++ {
				kj := qd[(b*T+j)*stride+kOff : (b*T+j)*stride+kOff+dh]
				var s float32
				for c := 0; c < dh; c++ {
					s += qi[c] * kj[c]
				}
				s *= scale
				row[j] = s
				if s > maxv {
					maxv = s
				}
			}
			var sum float64
			for j := 0; j <= i; j++ {
				e := float32(math.Exp(float64(row[j] - maxv)))
				row[j] = e
				sum += float64(e)
			}
			inv := float32(1 / sum)
			for j := 0; j <= i; j++ {
				row[j] *= inv
			}
			for j := i + 1; j < T; j++ {
				row[j] = 0
			}
			// out_i = Σ_j p_ij v_j
			oi := hd[(b*T+i)*d+h*dh : (b*T+i)*d+h*dh+dh]
			for j := 0; j <= i; j++ {
				p := row[j]
				if p == 0 {
					continue
				}
				vj := qd[(b*T+j)*stride+vOff : (b*T+j)*stride+vOff+dh]
				for c := 0; c < dh; c++ {
					oi[c] += p * vj[c]
				}
			}
		}
	}
}

// attnBackwardChunk propagates through attention weights for (batch, head)
// pairs [lo,hi): every write — dQKV column bands, probs slices — is
// disjoint across pairs.
func attnBackwardChunk(ctx any, lo, hi int) {
	g := ctx.(*attnJob)
	qd, probs, hd, dqd := g.qd, g.probs, g.hd, g.dqd
	T, H, dh, d := g.T, g.H, g.dh, g.d
	scale := g.scale
	stride := 3 * d
	sc := getAttnScratch(T)
	dp := sc.dp
	for bh := lo; bh < hi; bh++ {
		b, h := bh/H, bh%H
		qOff := h * dh
		kOff := d + h*dh
		vOff := 2*d + h*dh
		pBase := bh * T * T
		for i := 0; i < T; i++ {
			do := hd[(b*T+i)*d+h*dh : (b*T+i)*d+h*dh+dh]
			row := probs[pBase+i*T : pBase+i*T+T]
			// dV_j += p_ij * do ; dp_ij = do · v_j
			for j := 0; j <= i; j++ {
				p := row[j]
				vj := qd[(b*T+j)*stride+vOff : (b*T+j)*stride+vOff+dh]
				dvj := dqd[(b*T+j)*stride+vOff : (b*T+j)*stride+vOff+dh]
				var s float32
				for cc := 0; cc < dh; cc++ {
					dvj[cc] += p * do[cc]
					s += do[cc] * vj[cc]
				}
				dp[j] = s
			}
			// Softmax backward: ds_j = p_j (dp_j - Σ_k p_k dp_k).
			var dot float32
			for j := 0; j <= i; j++ {
				dot += row[j] * dp[j]
			}
			qi := qd[(b*T+i)*stride+qOff : (b*T+i)*stride+qOff+dh]
			dqi := dqd[(b*T+i)*stride+qOff : (b*T+i)*stride+qOff+dh]
			for j := 0; j <= i; j++ {
				ds := row[j] * (dp[j] - dot) * scale
				if ds == 0 {
					continue
				}
				kj := qd[(b*T+j)*stride+kOff : (b*T+j)*stride+kOff+dh]
				dkj := dqd[(b*T+j)*stride+kOff : (b*T+j)*stride+kOff+dh]
				for cc := 0; cc < dh; cc++ {
					dqi[cc] += ds * kj[cc]
					dkj[cc] += ds * qi[cc]
				}
			}
		}
	}
	attnScratchFree.Put(sc)
}
