package nn

import (
	"fmt"
	"math"

	"github.com/sparse-dl/samo/internal/tensor"
)

// CausalSelfAttention is multi-head scaled-dot-product attention with a
// causal mask — the attention of GPT-style decoders. Input and output are
// (batch·seq, d) with the sequence length fixed at construction (static
// shapes keep the pipeline engine's message sizes constant, as in AxoNN).
type CausalSelfAttention struct {
	Wqkv, Bqkv   *Param // (d, 3d), (3d)
	Wproj, Bproj *Param // (d, d), (d)
	d, heads, dh int
	seq          int
}

// NewCausalSelfAttention creates an attention layer with d model dims and
// the given head count over sequences of length seq.
func NewCausalSelfAttention(name string, d, heads, seq int, rng *tensor.RNG) *CausalSelfAttention {
	if d%heads != 0 {
		panic(fmt.Sprintf("nn: d=%d not divisible by heads=%d", d, heads))
	}
	a := &CausalSelfAttention{
		Wqkv:  newParam(name+".wqkv", d, 3*d),
		Bqkv:  newParam(name+".bqkv", 3*d),
		Wproj: newParam(name+".wproj", d, d),
		Bproj: newParam(name+".bproj", d),
		d:     d, heads: heads, dh: d / heads, seq: seq,
	}
	tensor.FillXavier(a.Wqkv.Value, d, 3*d, rng)
	tensor.FillXavier(a.Wproj.Value, d, d, rng)
	return a
}

type attnCache struct {
	x     *tensor.Tensor // (B·T, d)
	qkv   *tensor.Tensor // (B·T, 3d)
	probs []float32      // (B, H, T, T) softmax rows
	heads *tensor.Tensor // (B·T, d) concatenated head outputs
	batch int
}

// Forward computes attention over x of shape (batch·seq, d).
func (a *CausalSelfAttention) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, any) {
	if x.Rank() != 2 || x.Dim(1) != a.d || x.Dim(0)%a.seq != 0 {
		panic(fmt.Sprintf("nn: attention(d=%d,seq=%d) got %v", a.d, a.seq, x.Shape()))
	}
	batch := x.Dim(0) / a.seq
	T, H, dh := a.seq, a.heads, a.dh

	qkv := tensor.MatMul(x, a.Wqkv.Value)
	tensor.AddBias(qkv, a.Bqkv.Value)

	probs := make([]float32, batch*H*T*T)
	headsOut := tensor.New(batch*T, a.d)
	scale := float32(1 / math.Sqrt(float64(dh)))
	qd := qkv.Data()
	stride := 3 * a.d

	for b := 0; b < batch; b++ {
		for h := 0; h < H; h++ {
			qOff := h * dh
			kOff := a.d + h*dh
			vOff := 2*a.d + h*dh
			pBase := (b*H + h) * T * T
			// scores + softmax row by row (causal: j <= i).
			for i := 0; i < T; i++ {
				qi := qd[(b*T+i)*stride+qOff : (b*T+i)*stride+qOff+dh]
				row := probs[pBase+i*T : pBase+i*T+T]
				maxv := float32(math.Inf(-1))
				for j := 0; j <= i; j++ {
					kj := qd[(b*T+j)*stride+kOff : (b*T+j)*stride+kOff+dh]
					var s float32
					for c := 0; c < dh; c++ {
						s += qi[c] * kj[c]
					}
					s *= scale
					row[j] = s
					if s > maxv {
						maxv = s
					}
				}
				var sum float64
				for j := 0; j <= i; j++ {
					e := float32(math.Exp(float64(row[j] - maxv)))
					row[j] = e
					sum += float64(e)
				}
				inv := float32(1 / sum)
				for j := 0; j <= i; j++ {
					row[j] *= inv
				}
				for j := i + 1; j < T; j++ {
					row[j] = 0
				}
				// out_i = Σ_j p_ij v_j
				oi := headsOut.Data()[(b*T+i)*a.d+h*dh : (b*T+i)*a.d+h*dh+dh]
				for j := 0; j <= i; j++ {
					p := row[j]
					if p == 0 {
						continue
					}
					vj := qd[(b*T+j)*stride+vOff : (b*T+j)*stride+vOff+dh]
					for c := 0; c < dh; c++ {
						oi[c] += p * vj[c]
					}
				}
			}
		}
	}

	y := tensor.MatMul(headsOut, a.Wproj.Value)
	tensor.AddBias(y, a.Bproj.Value)
	if !train {
		return y, nil
	}
	return y, &attnCache{x: x, qkv: qkv, probs: probs, heads: headsOut, batch: batch}
}

// Backward propagates through projection, attention weights and the QKV
// projection, accumulating all four parameter gradients.
func (a *CausalSelfAttention) Backward(cache any, gradOut *tensor.Tensor) *tensor.Tensor {
	c := cache.(*attnCache)
	batch, T, H, dh := c.batch, a.seq, a.heads, a.dh
	stride := 3 * a.d
	scale := float32(1 / math.Sqrt(float64(dh)))

	// Projection backward.
	dWp := tensor.TMatMul(c.heads, gradOut)
	tensor.Add(a.Wproj.Grad, dWp)
	tensor.Add(a.Bproj.Grad, tensor.SumRows(gradOut))
	dHeads := tensor.MatMulT(gradOut, a.Wproj.Value) // (B·T, d)

	dQKV := tensor.New(batch*T, stride)
	qd, dqd := c.qkv.Data(), dQKV.Data()
	hd := dHeads.Data()

	for b := 0; b < batch; b++ {
		for h := 0; h < H; h++ {
			qOff := h * dh
			kOff := a.d + h*dh
			vOff := 2*a.d + h*dh
			pBase := (b*H + h) * T * T
			for i := 0; i < T; i++ {
				do := hd[(b*T+i)*a.d+h*dh : (b*T+i)*a.d+h*dh+dh]
				row := c.probs[pBase+i*T : pBase+i*T+T]
				// dV_j += p_ij * do ; dp_ij = do · v_j
				dp := make([]float32, i+1)
				for j := 0; j <= i; j++ {
					p := row[j]
					vj := qd[(b*T+j)*stride+vOff : (b*T+j)*stride+vOff+dh]
					dvj := dqd[(b*T+j)*stride+vOff : (b*T+j)*stride+vOff+dh]
					var s float32
					for cc := 0; cc < dh; cc++ {
						dvj[cc] += p * do[cc]
						s += do[cc] * vj[cc]
					}
					dp[j] = s
				}
				// Softmax backward: ds_j = p_j (dp_j - Σ_k p_k dp_k).
				var dot float32
				for j := 0; j <= i; j++ {
					dot += row[j] * dp[j]
				}
				qi := qd[(b*T+i)*stride+qOff : (b*T+i)*stride+qOff+dh]
				dqi := dqd[(b*T+i)*stride+qOff : (b*T+i)*stride+qOff+dh]
				for j := 0; j <= i; j++ {
					ds := row[j] * (dp[j] - dot) * scale
					if ds == 0 {
						continue
					}
					kj := qd[(b*T+j)*stride+kOff : (b*T+j)*stride+kOff+dh]
					dkj := dqd[(b*T+j)*stride+kOff : (b*T+j)*stride+kOff+dh]
					for cc := 0; cc < dh; cc++ {
						dqi[cc] += ds * kj[cc]
						dkj[cc] += ds * qi[cc]
					}
				}
			}
		}
	}

	// QKV projection backward.
	dWqkv := tensor.TMatMul(c.x, dQKV)
	tensor.Add(a.Wqkv.Grad, dWqkv)
	tensor.Add(a.Bqkv.Grad, tensor.SumRows(dQKV))
	return tensor.MatMulT(dQKV, a.Wqkv.Value)
}

// Params returns the QKV and output-projection parameters.
func (a *CausalSelfAttention) Params() []*Param {
	return []*Param{a.Wqkv, a.Bqkv, a.Wproj, a.Bproj}
}
