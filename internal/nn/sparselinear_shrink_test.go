package nn

import (
	"reflect"
	"testing"

	"github.com/sparse-dl/samo/internal/sparse"
	"github.com/sparse-dl/samo/internal/tensor"
)

var _ PatternLayer = (*SparseLinear)(nil)

// TestShrinkPatternMatchesFreshLayer shrinks a live layer in place and
// compares every structure bitwise against a layer built directly from the
// shrunk pattern: same CSR, same cached transpose and refresh permutation,
// same parameter values — and the same backing arrays as before the shrink.
func TestShrinkPatternMatchesFreshLayer(t *testing.T) {
	_, sl, _ := sparsePair(12, 9, 0.5, 31)
	nnz := sl.NNZ()
	keep := make([]bool, nnz)
	for i := range keep {
		keep[i] = i%3 != 0 // drop every third stored position
	}
	valHead := &sl.W.Val[0]
	wtValHead := &sl.Wt.Val[0]

	// Fresh reference: a layer built from the already-shrunk pattern.
	denseW := tensor.Transpose(sl.W.Dense()) // (in, out) view
	kept := sl.W.LinearIDs()
	var keptIDs []int32
	for i, k := range keep {
		if k {
			keptIDs = append(keptIDs, kept[i])
		}
	}
	// LinearIDs are (out, in)-view; NewSparseLinear wants (in, out)-view ids.
	var inOutIDs []int32
	for _, id := range keptIDs {
		r, c := int(id)/12, int(id)%12 // (out, in) coords
		inOutIDs = append(inOutIDs, int32(c*9+r))
	}
	want := NewSparseLinear("fc", denseW, sparse.IndexFromSlice(sortedInt32(inOutIDs), 12*9))

	sl.ShrinkPattern(keep)

	if !reflect.DeepEqual(sl.W.RowPtr, want.W.RowPtr) ||
		!reflect.DeepEqual(sl.W.ColIdx, want.W.ColIdx) ||
		!reflect.DeepEqual(sl.W.Val, want.W.Val) {
		t.Fatal("shrunk CSR differs from freshly built layer")
	}
	if !reflect.DeepEqual(sl.Wt.RowPtr, want.Wt.RowPtr) ||
		!reflect.DeepEqual(sl.Wt.ColIdx, want.Wt.ColIdx) ||
		!reflect.DeepEqual(sl.Wt.Val, want.Wt.Val) {
		t.Fatal("refreshed transpose differs from freshly built layer")
	}
	if !reflect.DeepEqual(sl.wtPerm, want.wtPerm) {
		t.Fatalf("refresh permutation %v differs from fresh %v", sl.wtPerm, want.wtPerm)
	}
	if &sl.W.Val[0] != valHead || &sl.Wt.Val[0] != wtValHead {
		t.Fatal("ShrinkPattern reallocated CSR backing arrays")
	}
	if sl.Wv.Value.Len() != len(sl.W.Val) || &sl.Wv.Value.Data()[0] != &sl.W.Val[0] {
		t.Fatal("Wv.Value no longer aliases W.Val after shrink")
	}
}

// TestShrinkPatternRefreshesTransposeCache is the staleness golden for the
// cached-transpose path: shrink the pattern between two forward/backward
// pairs and verify the input gradient equals the dense reference computed
// from the SHRUNK weights — a stale Wt (the pre-shrink pattern or values)
// would produce the old product.
func TestShrinkPatternRefreshesTransposeCache(t *testing.T) {
	_, sl, _ := sparsePair(10, 8, 0.5, 41)
	sl.Exec = ExecSparse
	x := tensor.New(4, 10)
	tensor.FillNormal(x, 1, tensor.NewRNG(42))
	gy := tensor.New(4, 8)
	tensor.FillNormal(gy, 1, tensor.NewRNG(43))

	// Prime the transpose cache with the pre-shrink pattern.
	_, c := sl.Forward(nil, x, true)
	sl.Backward(nil, c, gy)

	keep := make([]bool, sl.NNZ())
	for i := range keep {
		keep[i] = i%2 == 0
	}
	sl.ShrinkPattern(keep)

	sl.Wv.Grad.Zero()
	sl.B.Grad.Zero()
	y, c := sl.Forward(nil, x, true)
	dx := sl.Backward(nil, c, gy)

	wantY := tensor.MatMulT(x, sl.W.Dense())
	for i, b := range sl.B.Value.Data() {
		for r := 0; r < 4; r++ {
			wantY.Data()[r*8+i] += b
		}
	}
	if d := tensor.MaxAbsDiff(y, wantY); d > 1e-4 {
		t.Fatalf("forward after shrink differs from dense reference by %g", d)
	}
	wantDx := tensor.MatMul(gy, sl.W.Dense())
	if d := tensor.MaxAbsDiff(dx, wantDx); d > 1e-4 {
		t.Fatalf("input gradient after shrink differs by %g — stale cached transpose", d)
	}
}

// TestShrinkPatternToEmpty drives the layer to a fully-pruned pattern and
// runs a forward/backward through it: outputs are bias-only, the input
// gradient is zero, nothing panics.
func TestShrinkPatternToEmpty(t *testing.T) {
	_, sl, _ := sparsePair(6, 5, 0.5, 51)
	sl.Exec = ExecSparse
	sl.ShrinkPattern(make([]bool, sl.NNZ()))
	if sl.NNZ() != 0 {
		t.Fatalf("NNZ = %d after full shrink", sl.NNZ())
	}
	if ids := sl.PatternIDs(); len(ids) != 0 {
		t.Fatalf("PatternIDs = %v, want empty", ids)
	}
	x := tensor.New(3, 6)
	tensor.FillNormal(x, 1, tensor.NewRNG(52))
	gy := tensor.New(3, 5)
	gy.Fill(1)
	y, c := sl.Forward(nil, x, true)
	for r := 0; r < 3; r++ {
		for j := 0; j < 5; j++ {
			if got, want := y.Data()[r*5+j], sl.B.Value.Data()[j]; got != want {
				t.Fatalf("y[%d,%d] = %g, want bias %g", r, j, got, want)
			}
		}
	}
	dx := sl.Backward(nil, c, gy)
	for i, v := range dx.Data() {
		if v != 0 {
			t.Fatalf("dx[%d] = %g through an empty pattern, want 0", i, v)
		}
	}
}

func sortedInt32(s []int32) []int32 {
	out := append([]int32(nil), s...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
