package nn

import (
	"fmt"

	"github.com/sparse-dl/samo/internal/tensor"
)

// GPTConfig describes a GPT-3-family decoder (Brown et al., Table 2.1). The
// paper's Table I models are instances of this config; the same struct also
// builds tiny runnable variants for in-process training.
type GPTConfig struct {
	Name      string
	Layers    int
	Hidden    int
	Heads     int
	Seq       int
	Vocab     int
	BatchSize int // paper's global batch size (Table I)
	MinGPUs   int
	MaxGPUs   int
}

// NumParams returns the parameter count: 12·L·h² for the blocks
// (QKV 3h², proj h², MLP 8h²), plus LayerNorms, embeddings and the LM head.
func (c GPTConfig) NumParams() int64 {
	L, h := int64(c.Layers), int64(c.Hidden)
	block := 12*h*h + 13*h // 4 LN vectors + qkv/proj/fc biases ≈ 13h
	embed := int64(c.Vocab)*h + int64(c.Seq)*h
	head := int64(c.Vocab) * h
	return L*block + embed + head + 2*h
}

// FlopsPerBatch returns the floating point operations for one training batch
// using Narayanan et al.'s formula (SC'21, eq. for activation-recompute
// training, the mode AxoNN runs): F = 96·B·s·L·h²·(1 + s/6h + V/16Lh).
func (c GPTConfig) FlopsPerBatch(batch int) float64 {
	B := float64(batch)
	s := float64(c.Seq)
	L := float64(c.Layers)
	h := float64(c.Hidden)
	V := float64(c.Vocab)
	return 96 * B * s * L * h * h * (1 + s/(6*h) + V/(16*L*h))
}

// GPT3Vocab is the GPT-3 BPE vocabulary size.
const GPT3Vocab = 50257

// GPT3Seq is the GPT-3 training sequence length.
const GPT3Seq = 2048

// The paper's Table I transformer models with Brown et al.'s architecture
// hyperparameters.
var (
	GPT3XL = GPTConfig{Name: "GPT-3 XL", Layers: 24, Hidden: 2048, Heads: 24,
		Seq: GPT3Seq, Vocab: GPT3Vocab, BatchSize: 512, MinGPUs: 64, MaxGPUs: 512}
	GPT3_2B7 = GPTConfig{Name: "GPT-3 2.7B", Layers: 32, Hidden: 2560, Heads: 32,
		Seq: GPT3Seq, Vocab: GPT3Vocab, BatchSize: 512, MinGPUs: 64, MaxGPUs: 512}
	GPT3_6B7 = GPTConfig{Name: "GPT-3 6.7B", Layers: 32, Hidden: 4096, Heads: 32,
		Seq: GPT3Seq, Vocab: GPT3Vocab, BatchSize: 1024, MinGPUs: 128, MaxGPUs: 1024}
	GPT3_13B = GPTConfig{Name: "GPT-3 13B", Layers: 40, Hidden: 5140, Heads: 40,
		Seq: GPT3Seq, Vocab: GPT3Vocab, BatchSize: 2048, MinGPUs: 256, MaxGPUs: 2048}
)

// BuildGPT constructs a runnable GPT model from a config. Intended for tiny
// configs (tests, Figure 4); the Table I configs are used for accounting
// only — building 13B parameters in-process is neither possible nor needed.
func BuildGPT(c GPTConfig, rng *tensor.RNG) *Model {
	m := &Model{Name: c.Name}
	m.Layers = append(m.Layers, NewEmbedding("embed", c.Vocab, c.Seq, c.Hidden, rng))
	for i := 0; i < c.Layers; i++ {
		m.Layers = append(m.Layers, NewTransformerBlock(fmt.Sprintf("block%d", i), c.Hidden, c.Heads, c.Seq, rng))
	}
	m.Layers = append(m.Layers, NewLayerNorm("lnf", c.Hidden))
	m.Layers = append(m.Layers, NewLinear("lmhead", c.Hidden, c.Vocab, rng))
	return m
}

// CNNConfig describes one of the paper's convolutional models for
// accounting, with an architecture generator for runnable scaled variants.
type CNNConfig struct {
	Name      string
	Params    int64 // Table I parameter count
	BatchSize int
	MinGPUs   int
	MaxGPUs   int
	// FlopsPerImage is the forward-pass flops for one 224×224 image;
	// backward is ~2× forward.
	FlopsPerImage float64
}

// The paper's Table I CNN models.
var (
	WideResnet101 = CNNConfig{Name: "WideResnet-101", Params: 126_890_000,
		BatchSize: 128, MinGPUs: 16, MaxGPUs: 128, FlopsPerImage: 2 * 22.8e9}
	VGG19 = CNNConfig{Name: "VGG-19", Params: 143_670_000,
		BatchSize: 128, MinGPUs: 16, MaxGPUs: 128, FlopsPerImage: 2 * 19.6e9}
)

// FlopsPerBatch returns forward+backward flops for one batch (backward
// costs twice the forward pass).
func (c CNNConfig) FlopsPerBatch(batch int) float64 {
	return 3 * c.FlopsPerImage * float64(batch)
}

// BuildVGG constructs a runnable VGG-style network for images of size
// (channels, dim, dim) with the given channel widths (one conv per entry,
// 'M' encoded as -1 for max-pool) and class count. BuildVGG(SmallVGGPlan...)
// is the test-scale stand-in for VGG-19.
func BuildVGG(name string, plan []int, inC, dim, classes int, rng *tensor.RNG) *Model {
	m := &Model{Name: name}
	c, d := inC, dim
	i := 0
	for _, p := range plan {
		if p == -1 {
			m.Layers = append(m.Layers, MaxPool{})
			d /= 2
			continue
		}
		spec := tensor.ConvSpec{InC: c, OutC: p, Kernel: 3, Stride: 1, Pad: 1, InH: d, InW: d}
		m.Layers = append(m.Layers, NewConv2d(fmt.Sprintf("conv%d", i), spec, rng))
		m.Layers = append(m.Layers, NewBatchNorm2d(fmt.Sprintf("bn%d", i), p))
		m.Layers = append(m.Layers, ReLULayer{})
		c = p
		i++
	}
	m.Layers = append(m.Layers, Flatten{})
	m.Layers = append(m.Layers, NewLinear("fc", c*d*d, classes, rng))
	return m
}

// SmallVGGPlan is a 6-conv VGG-style plan for 32×32 inputs used by tests and
// examples (-1 = max-pool).
var SmallVGGPlan = []int{16, 16, -1, 32, 32, -1, 64, 64, -1}

// BuildWideResNet constructs a runnable WideResNet for (inC, dim, dim)
// inputs: an initial conv, three groups of n residual blocks with widths
// 16k/32k/64k, global average pooling and a linear classifier.
func BuildWideResNet(name string, n, k, inC, dim, classes int, rng *tensor.RNG) *Model {
	m := &Model{Name: name}
	spec := tensor.ConvSpec{InC: inC, OutC: 16, Kernel: 3, Stride: 1, Pad: 1, InH: dim, InW: dim}
	m.Layers = append(m.Layers, NewConv2d("conv0", spec, rng))
	widths := []int{16 * k, 32 * k, 64 * k}
	c, d := 16, dim
	for g, w := range widths {
		for b := 0; b < n; b++ {
			stride := 1
			if g > 0 && b == 0 {
				stride = 2
			}
			m.Layers = append(m.Layers, NewResidualBlock(fmt.Sprintf("g%db%d", g, b), c, w, d, d, stride, rng))
			if stride == 2 {
				d /= 2
			}
			c = w
		}
	}
	m.Layers = append(m.Layers, NewBatchNorm2d("bnf", c))
	m.Layers = append(m.Layers, ReLULayer{})
	m.Layers = append(m.Layers, GlobalAvgPool{})
	m.Layers = append(m.Layers, NewLinear("fc", c, classes, rng))
	return m
}

// BuildMLP constructs a plain multi-layer perceptron — the quickstart model.
func BuildMLP(name string, dims []int, rng *tensor.RNG) *Model {
	m := &Model{Name: name}
	for i := 0; i+1 < len(dims); i++ {
		m.Layers = append(m.Layers, NewLinear(fmt.Sprintf("fc%d", i), dims[i], dims[i+1], rng))
		if i+2 < len(dims) {
			m.Layers = append(m.Layers, ReLULayer{})
		}
	}
	return m
}
