package nn

import (
	"fmt"

	"github.com/sparse-dl/samo/internal/tensor"
)

// Conv2d is a 2-D convolution lowered to im2col + dense GEMM (the cuDNN
// strategy): the weight stays a dense matrix so SAMO's dense-compute
// requirement holds for CNNs exactly as for FC layers.
type Conv2d struct {
	W, B *Param // W stored as (outC, inC·k·k); B as (outC)
	Spec tensor.ConvSpec
}

// NewConv2d creates a convolution with He-normal init.
func NewConv2d(name string, spec tensor.ConvSpec, rng *tensor.RNG) *Conv2d {
	fanIn := spec.InC * spec.Kernel * spec.Kernel
	c := &Conv2d{
		W:    newParam(name+".weight", spec.OutC, fanIn),
		B:    newParam(name+".bias", spec.OutC),
		Spec: spec,
	}
	tensor.FillKaiming(c.W.Value, fanIn, rng)
	return c
}

type convCache struct {
	cols *tensor.Tensor
	n    int
}

// Forward lowers the input and multiplies against the filter matrix,
// producing an NCHW output.
func (c *Conv2d) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, any) {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: Conv2d got input %v", x.Shape()))
	}
	n := x.Dim(0)
	cols := tensor.Im2Col(x, c.Spec) // (n·oh·ow, inC·k·k)
	out := tensor.MatMulT(cols, c.W.Value)
	tensor.AddBias(out, c.B.Value)
	y := rowsToNCHW(out, n, c.Spec.OutC, c.Spec.OutH(), c.Spec.OutW())
	if !train {
		return y, nil
	}
	return y, &convCache{cols: cols, n: n}
}

// Backward computes filter/bias gradients and the input gradient via the
// col2im adjoint.
func (c *Conv2d) Backward(cache any, gradOut *tensor.Tensor) *tensor.Tensor {
	cc := cache.(*convCache)
	oh, ow := c.Spec.OutH(), c.Spec.OutW()
	// NCHW grad -> (n·oh·ow, outC) rows matching im2col layout.
	gRows := nchwToRows(gradOut, cc.n, c.Spec.OutC, oh, ow)
	// dW (outC, inC·k·k) = gRowsᵀ · cols
	dW := tensor.TMatMul(gRows, cc.cols)
	tensor.Add(c.W.Grad, dW)
	tensor.Add(c.B.Grad, tensor.SumRows(gRows))
	// dcols (n·oh·ow, inC·k·k) = gRows · W
	dCols := tensor.MatMul(gRows, c.W.Value)
	return tensor.Col2Im(dCols, c.Spec, cc.n)
}

// Params returns the filter matrix and bias.
func (c *Conv2d) Params() []*Param { return []*Param{c.W, c.B} }

func rowsToNCHW(rows *tensor.Tensor, n, ch, oh, ow int) *tensor.Tensor {
	out := tensor.New(n, ch, oh, ow)
	hw := oh * ow
	for r := 0; r < n*hw; r++ {
		img := r / hw
		pos := r % hw
		for oc := 0; oc < ch; oc++ {
			out.Data()[(img*ch+oc)*hw+pos] = rows.Data()[r*ch+oc]
		}
	}
	return out
}

func nchwToRows(t *tensor.Tensor, n, ch, oh, ow int) *tensor.Tensor {
	rows := tensor.New(n*oh*ow, ch)
	hw := oh * ow
	for r := 0; r < n*hw; r++ {
		img := r / hw
		pos := r % hw
		for oc := 0; oc < ch; oc++ {
			rows.Data()[r*ch+oc] = t.Data()[(img*ch+oc)*hw+pos]
		}
	}
	return rows
}

// MaxPool halves spatial dimensions with a 2×2/stride-2 max pool.
type MaxPool struct{}

type poolCache struct {
	arg     []int32
	inShape []int
}

// Forward pools and caches argmax indices.
func (MaxPool) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, any) {
	y, arg := tensor.MaxPool2x2(x)
	if !train {
		return y, nil
	}
	return y, &poolCache{arg: arg, inShape: append([]int(nil), x.Shape()...)}
}

// Backward scatters gradient to argmax positions.
func (MaxPool) Backward(cache any, gradOut *tensor.Tensor) *tensor.Tensor {
	c := cache.(*poolCache)
	return tensor.MaxPool2x2Backward(gradOut, c.arg, c.inShape)
}

// Params returns nil: pooling has no parameters.
func (MaxPool) Params() []*Param { return nil }

// GlobalAvgPool reduces NCHW to (n, c) by averaging each channel, the head
// of ResNet-style networks.
type GlobalAvgPool struct{}

// Forward averages spatial positions per channel.
func (GlobalAvgPool) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, any) {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	hw := h * w
	y := tensor.New(n, c)
	inv := 1 / float32(hw)
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			off := (img*c + ch) * hw
			var s float32
			for i := 0; i < hw; i++ {
				s += x.Data()[off+i]
			}
			y.Data()[img*c+ch] = s * inv
		}
	}
	return y, append([]int(nil), x.Shape()...)
}

// Backward broadcasts the gradient uniformly over spatial positions.
func (GlobalAvgPool) Backward(cache any, gradOut *tensor.Tensor) *tensor.Tensor {
	shape := cache.([]int)
	n, c, h, w := shape[0], shape[1], shape[2], shape[3]
	hw := h * w
	dx := tensor.New(shape...)
	inv := 1 / float32(hw)
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			g := gradOut.Data()[img*c+ch] * inv
			off := (img*c + ch) * hw
			for i := 0; i < hw; i++ {
				dx.Data()[off+i] = g
			}
		}
	}
	return dx
}

// Params returns nil: pooling has no parameters.
func (GlobalAvgPool) Params() []*Param { return nil }

// ResidualBlock is a pre-activation WideResNet basic block:
// y = shortcut(x) + Conv2(ReLU(BN2(Conv1(ReLU(BN1(x)))))). When the channel
// count or stride changes, the shortcut is a 1×1 convolution.
type ResidualBlock struct {
	BN1, BN2     *BatchNorm2d
	Conv1, Conv2 *Conv2d
	Shortcut     *Conv2d // nil for identity
}

// NewResidualBlock builds a block mapping (inC, h, w) to (outC, h/stride,
// w/stride).
func NewResidualBlock(name string, inC, outC, h, w, stride int, rng *tensor.RNG) *ResidualBlock {
	b := &ResidualBlock{
		BN1: NewBatchNorm2d(name+".bn1", inC),
		Conv1: NewConv2d(name+".conv1", tensor.ConvSpec{
			InC: inC, OutC: outC, Kernel: 3, Stride: stride, Pad: 1, InH: h, InW: w}, rng),
	}
	oh, ow := b.Conv1.Spec.OutH(), b.Conv1.Spec.OutW()
	b.BN2 = NewBatchNorm2d(name+".bn2", outC)
	b.Conv2 = NewConv2d(name+".conv2", tensor.ConvSpec{
		InC: outC, OutC: outC, Kernel: 3, Stride: 1, Pad: 1, InH: oh, InW: ow}, rng)
	if inC != outC || stride != 1 {
		b.Shortcut = NewConv2d(name+".shortcut", tensor.ConvSpec{
			InC: inC, OutC: outC, Kernel: 1, Stride: stride, Pad: 0, InH: h, InW: w}, rng)
	}
	return b
}

type resCache struct {
	x                *tensor.Tensor
	c1, c2, cb1, cb2 any
	r1, r2           *tensor.Tensor // relu masks
	cs               any
}

// Forward runs the two-conv residual path plus shortcut.
func (b *ResidualBlock) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, any) {
	h1, cb1 := b.BN1.Forward(x, train)
	r1 := tensor.ReLU(h1)
	h2, c1 := b.Conv1.Forward(h1, train)
	h3, cb2 := b.BN2.Forward(h2, train)
	r2 := tensor.ReLU(h3)
	h4, c2 := b.Conv2.Forward(h3, train)
	var short *tensor.Tensor
	var cs any
	if b.Shortcut != nil {
		short, cs = b.Shortcut.Forward(x, train)
	} else {
		short = x
	}
	y := h4.Clone()
	tensor.Add(y, short)
	if !train {
		return y, nil
	}
	return y, &resCache{x: x, c1: c1, c2: c2, cb1: cb1, cb2: cb2, r1: r1, r2: r2, cs: cs}
}

// Backward propagates through both paths and sums the input gradients.
func (b *ResidualBlock) Backward(cache any, gradOut *tensor.Tensor) *tensor.Tensor {
	c := cache.(*resCache)
	// Main path: conv2 <- relu2 <- bn2 <- conv1 <- relu1 <- bn1.
	g := b.Conv2.Backward(c.c2, gradOut)
	tensor.Mul(g, c.r2)
	g = b.BN2.Backward(c.cb2, g)
	g = b.Conv1.Backward(c.c1, g)
	tensor.Mul(g, c.r1)
	g = b.BN1.Backward(c.cb1, g)
	// Shortcut path.
	if b.Shortcut != nil {
		gs := b.Shortcut.Backward(c.cs, gradOut)
		tensor.Add(g, gs)
	} else {
		tensor.Add(g, gradOut)
	}
	return g
}

// Params returns all parameters of the block.
func (b *ResidualBlock) Params() []*Param {
	ps := append(b.BN1.Params(), b.Conv1.Params()...)
	ps = append(ps, b.BN2.Params()...)
	ps = append(ps, b.Conv2.Params()...)
	if b.Shortcut != nil {
		ps = append(ps, b.Shortcut.Params()...)
	}
	return ps
}
