package nn

import (
	"fmt"

	"github.com/sparse-dl/samo/internal/parallel"
	"github.com/sparse-dl/samo/internal/tensor"
)

// Conv2d is a 2-D convolution lowered to im2col + dense GEMM (the cuDNN
// strategy): the weight stays a dense matrix so SAMO's dense-compute
// requirement holds for CNNs exactly as for FC layers.
type Conv2d struct {
	W, B *Param // W stored as (outC, inC·k·k); B as (outC)
	Spec tensor.ConvSpec
}

// NewConv2d creates a convolution with He-normal init.
func NewConv2d(name string, spec tensor.ConvSpec, rng *tensor.RNG) *Conv2d {
	fanIn := spec.InC * spec.Kernel * spec.Kernel
	c := &Conv2d{
		W:    newParam(name+".weight", spec.OutC, fanIn),
		B:    newParam(name+".bias", spec.OutC),
		Spec: spec,
	}
	tensor.FillKaiming(c.W.Value, fanIn, rng)
	return c
}

type convCache struct {
	cols *tensor.Tensor
	n    int
}

var convCaches parallel.Pool[convCache]

// Forward lowers the input and multiplies against the filter matrix,
// producing an NCHW output.
func (c *Conv2d) Forward(a *tensor.Arena, x *tensor.Tensor, train bool) (*tensor.Tensor, any) {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: Conv2d got input %v", x.Shape()))
	}
	n := x.Dim(0)
	oh, ow := c.Spec.OutH(), c.Spec.OutW()
	cols := a.Get(n*oh*ow, c.Spec.InC*c.Spec.Kernel*c.Spec.Kernel)
	tensor.Im2ColInto(cols, x, c.Spec)
	out := a.Get(n*oh*ow, c.Spec.OutC)
	tensor.MatMulTInto(out, cols, c.W.Value, false)
	tensor.AddBias(out, c.B.Value)
	y := a.Get(n, c.Spec.OutC, oh, ow)
	rowsToNCHW(y, out, n, c.Spec.OutC, oh, ow)
	if !train {
		return y, nil
	}
	cc := convCaches.Get()
	cc.cols, cc.n = cols, n
	return y, cc
}

// Backward computes filter/bias gradients (accumulating directly into the
// Grad tensors) and the input gradient via the col2im adjoint.
func (c *Conv2d) Backward(a *tensor.Arena, cache any, gradOut *tensor.Tensor) *tensor.Tensor {
	cc := cache.(*convCache)
	oh, ow := c.Spec.OutH(), c.Spec.OutW()
	// NCHW grad -> (n·oh·ow, outC) rows matching im2col layout.
	gRows := a.Get(cc.n*oh*ow, c.Spec.OutC)
	nchwToRows(gRows, gradOut, cc.n, c.Spec.OutC, oh, ow)
	// dW (outC, inC·k·k) += gRowsᵀ · cols
	tensor.TMatMulInto(c.W.Grad, gRows, cc.cols, true)
	tensor.SumRowsInto(c.B.Grad, gRows, true)
	// dcols (n·oh·ow, inC·k·k) = gRows · W
	dCols := a.Get(cc.n*oh*ow, c.Spec.InC*c.Spec.Kernel*c.Spec.Kernel)
	tensor.MatMulInto(dCols, gRows, c.W.Value, false)
	// Col2ImZeroInto runs the parallel gather kernel and zeroes each output
	// strip in-worker, so the arena tensor needs no serial pre-zeroing pass.
	dx := a.Get(cc.n, c.Spec.InC, c.Spec.InH, c.Spec.InW)
	tensor.Col2ImZeroInto(dx, dCols, c.Spec, cc.n)
	cc.cols = nil
	convCaches.Put(cc)
	return dx
}

// Params returns the filter matrix and bias.
func (c *Conv2d) Params() []*Param { return []*Param{c.W, c.B} }

func rowsToNCHW(out, rows *tensor.Tensor, n, ch, oh, ow int) {
	hw := oh * ow
	od, rd := out.Data(), rows.Data()
	for r := 0; r < n*hw; r++ {
		img := r / hw
		pos := r % hw
		for oc := 0; oc < ch; oc++ {
			od[(img*ch+oc)*hw+pos] = rd[r*ch+oc]
		}
	}
}

func nchwToRows(rows, t *tensor.Tensor, n, ch, oh, ow int) {
	hw := oh * ow
	rd, td := rows.Data(), t.Data()
	for r := 0; r < n*hw; r++ {
		img := r / hw
		pos := r % hw
		for oc := 0; oc < ch; oc++ {
			rd[r*ch+oc] = td[(img*ch+oc)*hw+pos]
		}
	}
}

// MaxPool halves spatial dimensions with a 2×2/stride-2 max pool.
type MaxPool struct{}

type poolCache struct {
	arg     []int32
	inShape []int
}

var poolCaches parallel.Pool[poolCache]

// Forward pools and caches argmax indices.
func (mp MaxPool) Forward(a *tensor.Arena, x *tensor.Tensor, train bool) (*tensor.Tensor, any) {
	if !train {
		return mp.Infer(a, x), nil
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	y := a.Get(n, c, h/2, w/2)
	pc := poolCaches.Get()
	if cap(pc.arg) < y.Len() {
		pc.arg = make([]int32, y.Len())
	}
	pc.arg = pc.arg[:y.Len()]
	tensor.MaxPool2x2Into(y, pc.arg, x)
	pc.inShape = append(pc.inShape[:0], x.Shape()...)
	return y, pc
}

// Infer pools without tracking argmax positions (nothing will scatter
// gradients back), so the inference forward needs no index scratch and no
// pool traffic.
func (MaxPool) Infer(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	y := a.Get(n, c, h/2, w/2)
	tensor.MaxPool2x2Into(y, nil, x)
	return y
}

// Backward scatters gradient to argmax positions.
func (MaxPool) Backward(a *tensor.Arena, cache any, gradOut *tensor.Tensor) *tensor.Tensor {
	c := cache.(*poolCache)
	dx := a.GetZeroed(c.inShape...)
	tensor.MaxPool2x2BackwardInto(dx, gradOut, c.arg)
	poolCaches.Put(c)
	return dx
}

// Params returns nil: pooling has no parameters.
func (MaxPool) Params() []*Param { return nil }

// GlobalAvgPool reduces NCHW to (n, c) by averaging each channel, the head
// of ResNet-style networks.
type GlobalAvgPool struct{}

type gapCache struct{ shape []int }

var gapCaches parallel.Pool[gapCache]

// Forward averages spatial positions per channel.
func (GlobalAvgPool) Forward(a *tensor.Arena, x *tensor.Tensor, train bool) (*tensor.Tensor, any) {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	hw := h * w
	y := a.Get(n, c)
	inv := 1 / float32(hw)
	xd, yd := x.Data(), y.Data()
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			off := (img*c + ch) * hw
			var s float32
			for i := 0; i < hw; i++ {
				s += xd[off+i]
			}
			yd[img*c+ch] = s * inv
		}
	}
	if !train {
		return y, nil
	}
	gc := gapCaches.Get()
	gc.shape = append(gc.shape[:0], x.Shape()...)
	return y, gc
}

// Backward broadcasts the gradient uniformly over spatial positions.
func (GlobalAvgPool) Backward(a *tensor.Arena, cache any, gradOut *tensor.Tensor) *tensor.Tensor {
	gc := cache.(*gapCache)
	n, c, h, w := gc.shape[0], gc.shape[1], gc.shape[2], gc.shape[3]
	hw := h * w
	dx := a.Get(gc.shape...)
	inv := 1 / float32(hw)
	gd, dd := gradOut.Data(), dx.Data()
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			g := gd[img*c+ch] * inv
			off := (img*c + ch) * hw
			for i := 0; i < hw; i++ {
				dd[off+i] = g
			}
		}
	}
	gapCaches.Put(gc)
	return dx
}

// Params returns nil: pooling has no parameters.
func (GlobalAvgPool) Params() []*Param { return nil }

// ResidualBlock is a pre-activation WideResNet basic block:
// y = shortcut(x) + Conv2(ReLU(BN2(Conv1(ReLU(BN1(x)))))). When the channel
// count or stride changes, the shortcut is a 1×1 convolution.
type ResidualBlock struct {
	BN1, BN2     *BatchNorm2d
	Conv1, Conv2 *Conv2d
	Shortcut     *Conv2d // nil for identity
}

// NewResidualBlock builds a block mapping (inC, h, w) to (outC, h/stride,
// w/stride).
func NewResidualBlock(name string, inC, outC, h, w, stride int, rng *tensor.RNG) *ResidualBlock {
	b := &ResidualBlock{
		BN1: NewBatchNorm2d(name+".bn1", inC),
		Conv1: NewConv2d(name+".conv1", tensor.ConvSpec{
			InC: inC, OutC: outC, Kernel: 3, Stride: stride, Pad: 1, InH: h, InW: w}, rng),
	}
	oh, ow := b.Conv1.Spec.OutH(), b.Conv1.Spec.OutW()
	b.BN2 = NewBatchNorm2d(name+".bn2", outC)
	b.Conv2 = NewConv2d(name+".conv2", tensor.ConvSpec{
		InC: outC, OutC: outC, Kernel: 3, Stride: 1, Pad: 1, InH: oh, InW: ow}, rng)
	if inC != outC || stride != 1 {
		b.Shortcut = NewConv2d(name+".shortcut", tensor.ConvSpec{
			InC: inC, OutC: outC, Kernel: 1, Stride: stride, Pad: 0, InH: h, InW: w}, rng)
	}
	return b
}

type resCache struct {
	x                *tensor.Tensor
	c1, c2, cb1, cb2 any
	r1, r2           *tensor.Tensor // relu masks
	cs               any
}

var resCaches parallel.Pool[resCache]

// Forward runs the two-conv residual path plus shortcut.
func (b *ResidualBlock) Forward(a *tensor.Arena, x *tensor.Tensor, train bool) (*tensor.Tensor, any) {
	h1, cb1 := b.BN1.Forward(a, x, train)
	var r1, r2 *tensor.Tensor
	if train {
		r1 = a.Get(h1.Shape()...)
		tensor.ReLUWithMask(h1, r1)
	} else {
		tensor.ReLUInPlace(h1)
	}
	h2, c1 := b.Conv1.Forward(a, h1, train)
	h3, cb2 := b.BN2.Forward(a, h2, train)
	if train {
		r2 = a.Get(h3.Shape()...)
		tensor.ReLUWithMask(h3, r2)
	} else {
		tensor.ReLUInPlace(h3)
	}
	h4, c2 := b.Conv2.Forward(a, h3, train)
	var short *tensor.Tensor
	var cs any
	if b.Shortcut != nil {
		short, cs = b.Shortcut.Forward(a, x, train)
	} else {
		short = x
	}
	y := a.Get(h4.Shape()...)
	y.CopyFrom(h4)
	tensor.Add(y, short)
	if !train {
		return y, nil
	}
	c := resCaches.Get()
	c.x, c.c1, c.c2, c.cb1, c.cb2, c.r1, c.r2, c.cs = x, c1, c2, cb1, cb2, r1, r2, cs
	return y, c
}

// Backward propagates through both paths and sums the input gradients.
func (b *ResidualBlock) Backward(a *tensor.Arena, cache any, gradOut *tensor.Tensor) *tensor.Tensor {
	c := cache.(*resCache)
	// Main path: conv2 <- relu2 <- bn2 <- conv1 <- relu1 <- bn1.
	g := b.Conv2.Backward(a, c.c2, gradOut)
	tensor.Mul(g, c.r2)
	g = b.BN2.Backward(a, c.cb2, g)
	g = b.Conv1.Backward(a, c.c1, g)
	tensor.Mul(g, c.r1)
	g = b.BN1.Backward(a, c.cb1, g)
	// Shortcut path.
	if b.Shortcut != nil {
		gs := b.Shortcut.Backward(a, c.cs, gradOut)
		tensor.Add(g, gs)
	} else {
		tensor.Add(g, gradOut)
	}
	c.x, c.c1, c.c2, c.cb1, c.cb2, c.r1, c.r2, c.cs = nil, nil, nil, nil, nil, nil, nil, nil
	resCaches.Put(c)
	return g
}

// Params returns all parameters of the block.
func (b *ResidualBlock) Params() []*Param {
	ps := append(b.BN1.Params(), b.Conv1.Params()...)
	ps = append(ps, b.BN2.Params()...)
	ps = append(ps, b.Conv2.Params()...)
	if b.Shortcut != nil {
		ps = append(ps, b.Shortcut.Params()...)
	}
	return ps
}
