package nn

import (
	"fmt"
	"strings"
	"time"

	"github.com/sparse-dl/samo/internal/parallel"
	"github.com/sparse-dl/samo/internal/prune"
	"github.com/sparse-dl/samo/internal/sparse"
	"github.com/sparse-dl/samo/internal/tensor"
)

// SparseLinear is a fully connected layer whose pruned weight lives in CSR
// and whose hot paths run real sparse kernels — the first-class sparse
// execution path the paper's Figure 1 argues about. Only the surviving
// weights exist anywhere: the forward pass is the transposed-CSR SpMM
// y = x·Wᵀ against the (out, in) pattern, the input gradient is the same
// kernel against a cached Transpose(), and the weight gradient is SDDMM
// restricted to the pattern — gradient entries for pruned weights are never
// materialized, so the whole model state downstream (capture, all-reduce,
// optimizer) is sized fφ with no masking step.
//
// Because sparse kernels only win above a density-dependent threshold
// (Hoefler et al. 2021), each product consults the sparse/dense crossover
// (sparse.XoverDecide): low-sparsity layers fall back to a dense GEMM over
// a lazily materialized masked-dense copy of the weight and never regress,
// while the weight gradient stays SDDMM on either path (the dense-masked
// weight-gradient would materialize exactly the pruned entries this layer
// exists to avoid). The Exec field pins the choice per layer.
//
// The optimizer sees the weight as Wv — a rank-1 parameter of length NNZ
// whose Value aliases W.Val — so core.ModelState drives it through its
// ordinary dense-vector path: θ32/∇θ16/∇θ32/os all have length NNZ and the
// fp16 down-cast writes straight into the CSR values the kernels read. The
// cached transpose and the dense-masked copy are refreshed from W.Val at
// use time (weights only change between step boundaries, never between a
// microbatch's forward and backward).
type SparseLinear struct {
	// W is the primary pattern: (out, in) CSR — row j holds output neuron
	// j's surviving input weights. Wv.Value aliases W.Val, so optimizer
	// writes are immediately visible to the kernels.
	W *sparse.CSR
	// Wt caches Transpose(W) (in, out) for the input gradient; its values
	// are refreshed from W.Val through wtPerm before each use.
	Wt     *sparse.CSR
	wtPerm []int32

	// Wv is the weight parameter in pattern order (rank-1, length NNZ);
	// B is the dense bias.
	Wv, B *Param

	// Exec pins this layer's execution path (benchmarks, the pure-sparse
	// baseline); ExecAuto consults the crossover per product shape.
	Exec ExecMode

	in, out int

	// Masked-dense fallback state, materialized only while the crossover
	// probes or has chosen the dense path and dropped again after
	// denseDropAfter consecutive sparse-path products. denseFresh marks the
	// copy as synced by THIS microbatch's Forward, letting its Backward
	// skip the O(out·in) re-materialization (weights cannot change between
	// a microbatch's forward and backward — only at step boundaries).
	denseW     *tensor.Tensor // (out, in), zeros at pruned positions
	denseIx    *sparse.Index  // scatter map: pattern order -> (out, in) view
	denseIdle  int
	denseFresh bool
}

// PatternLayer is a layer whose parameter support can shrink during
// training — the hook in-training gradual pruning drives. The pattern is a
// set of surviving positions over a hypothetical dense view of one rank-1
// parameter (PatternParam, values in stored pattern order); ShrinkPattern
// drops positions in place, so NNZ only ever decreases and no structure is
// reallocated. core.ModelState discovers implementations at construction
// and keeps their stored vectors, optimizer state and reduce-bucket
// segments aligned with the shrinking pattern.
type PatternLayer interface {
	Layer
	// PatternParam returns the pattern-ordered value parameter whose
	// length is the pattern's NNZ.
	PatternParam() *Param
	// PatternFullLen returns the dense-view element count the pattern
	// addresses (the layer's unpruned parameter count).
	PatternFullLen() int
	// PatternIDs returns the strictly increasing linearized dense-view ids
	// of the stored pattern (freshly allocated; checkpoint serialization).
	PatternIDs() []int32
	// ShrinkPattern drops the stored positions where keep is false
	// (keep indexed in stored pattern order), compacting every cached
	// structure in place and re-heading PatternParam onto the compacted
	// prefix.
	ShrinkPattern(keep []bool)
}

// ExecMode selects a SparseLinear's execution path.
type ExecMode uint8

const (
	// ExecAuto probes sparse vs dense per (shape, density) bucket and
	// freezes the winner (the default).
	ExecAuto ExecMode = iota
	// ExecSparse always runs the CSR kernels.
	ExecSparse
	// ExecDense always runs the dense GEMM over the masked-dense weight.
	ExecDense
)

// denseDropAfter is how many consecutive sparse-path products release the
// masked-dense copy: once the relevant buckets freeze sparse, the dense
// tensor is dead weight exactly where SAMO wants memory back.
const denseDropAfter = 16

// NewSparseLinear materializes the layer from a dense (in, out) weight and
// a pruning index over its linearized view. Only indexed entries are read;
// the bias starts at zero (copy one in for layer surgery).
func NewSparseLinear(name string, w *tensor.Tensor, ix *sparse.Index) *SparseLinear {
	if w.Rank() != 2 {
		panic("nn: NewSparseLinear needs a rank-2 weight")
	}
	return NewSparseLinearCSR(name, sparse.CSRFromDenseIndexed(ix, w.Data(), w.Dim(0), w.Dim(1)))
}

// NewSparseLinearCSR builds the layer from an already materialized (in, out)
// CSR weight — the output of prune.Result.MaterializeCSR. The matrix is
// transposed once into the (out, in) primary the kernels want; the caller's
// CSR is not retained.
func NewSparseLinearCSR(name string, w *sparse.CSR) *SparseLinear {
	in, out := w.Rows, w.Cols
	W := w.Transpose()
	Wt, perm := W.TransposePerm()
	l := &SparseLinear{W: W, Wt: Wt, wtPerm: perm, in: in, out: out}
	l.Wv = &Param{Name: name + ".weight",
		Value: tensor.FromSlice(W.Val, len(W.Val)),
		Grad:  tensor.New(len(W.Val))}
	// The CSR structure (two patterns plus the refresh permutation) is
	// model state the dense layer does not carry; expose it to the memory
	// ledger.
	l.Wv.MetaBytes = 4 * int64(len(W.RowPtr)+len(W.ColIdx)+
		len(Wt.RowPtr)+len(Wt.ColIdx)+len(perm))
	l.B = newParam(name+".bias", out)
	return l
}

// Sparsify returns a model in which every pruned Linear layer is replaced
// by a SparseLinear built from its weights and the pruning result; all
// other layers (and any unpruned Linear) are shared with the original
// model, parameters included — train one model or the other, not both.
// Biases of converted layers are copied, so the returned model trains
// independently of the original on the paper's FC workloads.
func Sparsify(m *Model, pr *prune.Result) *Model {
	out := &Model{Name: m.Name + "-sparse"}
	for _, l := range m.Layers {
		lin, ok := l.(*Linear)
		if !ok {
			out.Layers = append(out.Layers, l)
			continue
		}
		w := pr.MaterializeCSR(lin.W.Name, lin.W.Value.Data(),
			lin.W.Value.Dim(0), lin.W.Value.Dim(1))
		if w == nil {
			out.Layers = append(out.Layers, l) // not pruned: keep dense
			continue
		}
		sl := NewSparseLinearCSR(strings.TrimSuffix(lin.W.Name, ".weight"), w)
		copy(sl.B.Value.Data(), lin.B.Value.Data())
		out.Layers = append(out.Layers, sl)
	}
	return out
}

type sparseLinearCache struct{ x *tensor.Tensor }

var sparseLinearCaches parallel.Pool[sparseLinearCache]

// decide resolves the execution path for one product of this layer.
func (l *SparseLinear) decide(op sparse.XoverOp, m, k, n int) (*sparse.XoverEntry, sparse.XoverChoice, bool) {
	switch l.Exec {
	case ExecSparse:
		return nil, sparse.XoverSparse, false
	case ExecDense:
		return nil, sparse.XoverDense, false
	}
	return sparse.XoverDecide(op, m, k, n, l.W.NNZ(), l.in*l.out)
}

// noteUse tracks dense-copy liveness: sparse-path products age it out.
func (l *SparseLinear) noteUse(c sparse.XoverChoice) {
	if c == sparse.XoverDense {
		l.denseIdle = 0
		return
	}
	if l.denseW != nil {
		if l.denseIdle++; l.denseIdle >= denseDropAfter {
			l.denseW, l.denseIx, l.denseFresh = nil, nil, false
		}
	}
}

// syncDense (re)materializes the masked-dense (out, in) weight from the
// current CSR values: zero-fill plus pattern scatter, both parallel and
// allocation-free after the first call. fresh=true marks the copy valid
// for the rest of this microbatch (consumed by Backward).
func (l *SparseLinear) syncDense(fresh bool) {
	if l.denseW == nil {
		l.denseW = tensor.New(l.out, l.in)
		l.denseIx = sparse.IndexFromSlice(l.W.LinearIDs(), l.out*l.in)
	}
	l.denseIx.Expand(l.denseW.Data(), l.W.Val)
	l.denseFresh = fresh
}

// syncWt refreshes the cached transpose's values from the primary pattern.
// Per-backward on purpose: the layer cannot observe optimizer steps, and
// the O(nnz) gather is ≤1/batch of the O(batch·nnz) product it precedes.
func (l *SparseLinear) syncWt() {
	sparse.Gather(l.Wt.Val, l.W.Val, l.wtPerm)
}

// Forward computes y = x·Wᵀ + b for x (n, in) — transposed-CSR SpMM on the
// sparse path, a dense A·Bᵀ GEMM over the masked-dense weight otherwise.
func (l *SparseLinear) Forward(a *tensor.Arena, x *tensor.Tensor, train bool) (*tensor.Tensor, any) {
	if x.Rank() != 2 || x.Dim(1) != l.in {
		panic(fmt.Sprintf("nn: SparseLinear(%d,%d) got input %v", l.in, l.out, x.Shape()))
	}
	n := x.Dim(0)
	y := a.Get(n, l.out)
	// A fresh flag may only ever be set by THIS microbatch's forward: an
	// optimizer step may have run since the flag was last set (e.g. when a
	// probing backward took the sparse path and never consumed it), so the
	// copy it describes can hold pre-step weights.
	l.denseFresh = false
	e, ch, probe := l.decide(sparse.XoverOpForward, n, l.in, l.out)
	if probe {
		t0 := time.Now()
		l.runForward(ch, y, x, train)
		e.Record(ch, time.Since(t0), n*l.in*l.out)
	} else {
		l.runForward(ch, y, x, train)
	}
	l.noteUse(ch)
	tensor.AddBias(y, l.B.Value)
	if !train {
		return y, nil
	}
	c := sparseLinearCaches.Get()
	c.x = x
	return y, c
}

func (l *SparseLinear) runForward(ch sparse.XoverChoice, y, x *tensor.Tensor, train bool) {
	if ch == sparse.XoverDense {
		// In training the copy stays valid through this microbatch's
		// backward (an optimizer step cannot intervene).
		l.syncDense(train)
		tensor.MatMulTInto(y, x, l.denseW, false)
		return
	}
	l.W.SpMMTInto(y, x)
}

// Backward accumulates dW on the pattern via SDDMM (pruned entries are
// never computed), db via a row sum, and returns dx = dy·W — the
// transposed-CSR SpMM against the cached transpose on the sparse path, a
// dense GEMM otherwise.
func (l *SparseLinear) Backward(a *tensor.Arena, cache any, gradOut *tensor.Tensor) *tensor.Tensor {
	c := cache.(*sparseLinearCache)
	nb := gradOut.Dim(0)
	// Weight gradient, always sampled at the pattern: SDDMM row-dots need
	// both operands feature-major, so transpose into arena scratch (two
	// parallel copies, O(nb·(in+out)) against the products' O(nnz·nb)).
	dyT := a.Get(l.out, nb)
	tensor.TransposeInto(dyT, gradOut)
	xT := a.Get(l.in, nb)
	tensor.TransposeInto(xT, c.x)
	l.W.SDDMMInto(l.Wv.Grad.Data(), dyT, xT, true)
	tensor.SumRowsInto(l.B.Grad, gradOut, true)

	dx := a.Get(nb, l.in)
	e, ch, probe := l.decide(sparse.XoverOpBackward, nb, l.out, l.in)
	if probe {
		t0 := time.Now()
		l.runBackward(ch, dx, gradOut)
		e.Record(ch, time.Since(t0), nb*l.out*l.in)
	} else {
		l.runBackward(ch, dx, gradOut)
	}
	l.noteUse(ch)
	c.x = nil
	sparseLinearCaches.Put(c)
	return dx
}

func (l *SparseLinear) runBackward(ch sparse.XoverChoice, dx, dy *tensor.Tensor) {
	if ch == sparse.XoverDense {
		// Skip the O(out·in) re-materialization when this microbatch's
		// forward already synced the copy.
		if l.denseW == nil || !l.denseFresh {
			l.syncDense(false)
		}
		l.denseFresh = false
		tensor.MatMulInto(dx, dy, l.denseW, false)
		return
	}
	l.syncWt()
	l.Wt.SpMMTInto(dx, dy)
}

// Params returns the compressed weight vector and the bias.
func (l *SparseLinear) Params() []*Param { return []*Param{l.Wv, l.B} }

// PatternParam returns Wv, the NNZ-length weight vector in W's CSR order.
func (l *SparseLinear) PatternParam() *Param { return l.Wv }

// PatternFullLen returns the dense-equivalent weight element count.
func (l *SparseLinear) PatternFullLen() int { return l.in * l.out }

// PatternIDs returns the linearized (out, in)-view ids of the pattern.
func (l *SparseLinear) PatternIDs() []int32 { return l.W.LinearIDs() }

// ShrinkPattern compacts the layer onto the kept pattern positions, in
// place: W's CSR shrinks, the cached transpose and its refresh permutation
// are rebuilt inside their existing backing arrays, the masked-dense
// fallback (which addresses the old pattern) is dropped for the crossover
// to re-materialize — and re-probe, since the density band changed — and
// Wv re-heads onto the compacted value prefix so the optimizer state
// vectors can shrink in lockstep. Weight values are untouched: kept
// weights keep their exact bits.
func (l *SparseLinear) ShrinkPattern(keep []bool) {
	if len(keep) != l.W.NNZ() {
		panic(fmt.Sprintf("nn: ShrinkPattern keep length %d, want %d", len(keep), l.W.NNZ()))
	}
	if l.Wv.Grad != nil {
		// Compact the gradient accumulator alongside the values (it is
		// zero between steps, but mid-step callers keep a coherent view).
		g := l.Wv.Grad.Data()
		w := 0
		for i, k := range keep {
			if k {
				g[w] = g[i]
				w++
			}
		}
	}
	l.W.ShrinkTo(keep)
	l.wtPerm = l.W.TransposePermInto(l.Wt, l.wtPerm)
	l.denseW, l.denseIx, l.denseIdle, l.denseFresh = nil, nil, 0, false
	nnz := l.W.NNZ()
	l.Wv.Value = tensor.FromSlice(l.W.Val, nnz)
	if l.Wv.Grad != nil {
		l.Wv.Grad = tensor.FromSlice(l.Wv.Grad.Data()[:nnz], nnz)
	}
	l.Wv.MetaBytes = 4 * int64(len(l.W.RowPtr)+len(l.W.ColIdx)+
		len(l.Wt.RowPtr)+len(l.Wt.ColIdx)+len(l.wtPerm))
}

// GradVals exposes the pattern-aligned weight gradient (W's CSR order).
func (l *SparseLinear) GradVals() []float32 { return l.Wv.Grad.Data() }

// NNZ returns the surviving weight count.
func (l *SparseLinear) NNZ() int { return l.W.NNZ() }

// WeightBytes reports the sparse weight storage: values plus both patterns
// and the refresh permutation (what replaces the dense 4·in·out weight).
func (l *SparseLinear) WeightBytes() int64 {
	return int64(len(l.W.Val))*4 + l.Wv.MetaBytes
}

// DenseEquivalent materializes the (in, out) dense weight for verification
// against nn.Linear.
func (l *SparseLinear) DenseEquivalent() *tensor.Tensor {
	return tensor.Transpose(l.W.Dense())
}
