package nn

import (
	"fmt"
	"math"

	"github.com/sparse-dl/samo/internal/parallel"
	"github.com/sparse-dl/samo/internal/tensor"
)

const normEps = 1e-5

// LayerNorm normalizes each row of an (n, d) tensor to zero mean and unit
// variance, then applies a learned affine transform — the normalization used
// throughout GPT-style transformers.
type LayerNorm struct {
	Gamma, Beta *Param
	d           int
}

// NewLayerNorm creates a LayerNorm over feature dimension d (γ=1, β=0).
func NewLayerNorm(name string, d int) *LayerNorm {
	ln := &LayerNorm{Gamma: newParam(name+".gamma", d), Beta: newParam(name+".beta", d), d: d}
	ln.Gamma.Value.Fill(1)
	return ln
}

type lnCache struct {
	xhat   *tensor.Tensor
	invStd []float32
}

var lnCaches parallel.Pool[lnCache]

// Forward normalizes rows and applies γ,β.
func (ln *LayerNorm) Forward(a *tensor.Arena, x *tensor.Tensor, train bool) (*tensor.Tensor, any) {
	if !train {
		return ln.Infer(a, x), nil
	}
	if x.Rank() != 2 || x.Dim(1) != ln.d {
		panic(fmt.Sprintf("nn: LayerNorm(%d) got input %v", ln.d, x.Shape()))
	}
	n, d := x.Dim(0), ln.d
	y := a.Get(n, d)
	c := lnCaches.Get()
	c.xhat = a.Get(n, d)
	if cap(c.invStd) < n {
		c.invStd = make([]float32, n)
	}
	c.invStd = c.invStd[:n]
	xhat, invStd := c.xhat, c.invStd
	g, b := ln.Gamma.Value.Data(), ln.Beta.Value.Data()
	for i := 0; i < n; i++ {
		row := x.Data()[i*d : (i+1)*d]
		var mean float64
		for _, v := range row {
			mean += float64(v)
		}
		mean /= float64(d)
		var varr float64
		for _, v := range row {
			dv := float64(v) - mean
			varr += dv * dv
		}
		varr /= float64(d)
		is := float32(1 / math.Sqrt(varr+normEps))
		invStd[i] = is
		xr := xhat.Data()[i*d : (i+1)*d]
		yr := y.Data()[i*d : (i+1)*d]
		for j, v := range row {
			xh := (v - float32(mean)) * is
			xr[j] = xh
			yr[j] = g[j]*xh + b[j]
		}
	}
	return y, c
}

// Infer normalizes rows without materializing x̂: the normalized value is
// folded straight into the affine output, so the inference forward needs no
// cache tensor and no pool traffic.
func (ln *LayerNorm) Infer(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != ln.d {
		panic(fmt.Sprintf("nn: LayerNorm(%d) got input %v", ln.d, x.Shape()))
	}
	n, d := x.Dim(0), ln.d
	y := a.Get(n, d)
	g, b := ln.Gamma.Value.Data(), ln.Beta.Value.Data()
	for i := 0; i < n; i++ {
		row := x.Data()[i*d : (i+1)*d]
		var mean float64
		for _, v := range row {
			mean += float64(v)
		}
		mean /= float64(d)
		var varr float64
		for _, v := range row {
			dv := float64(v) - mean
			varr += dv * dv
		}
		varr /= float64(d)
		is := float32(1 / math.Sqrt(varr+normEps))
		yr := y.Data()[i*d : (i+1)*d]
		for j, v := range row {
			xh := (v - float32(mean)) * is
			yr[j] = g[j]*xh + b[j]
		}
	}
	return y
}

// Backward computes input, γ and β gradients with the standard LayerNorm
// backward identity.
func (ln *LayerNorm) Backward(a *tensor.Arena, cache any, gradOut *tensor.Tensor) *tensor.Tensor {
	c := cache.(*lnCache)
	n, d := gradOut.Dim(0), ln.d
	dx := a.Get(n, d)
	g := ln.Gamma.Value.Data()
	dg, db := ln.Gamma.Grad.Data(), ln.Beta.Grad.Data()
	for i := 0; i < n; i++ {
		dy := gradOut.Data()[i*d : (i+1)*d]
		xh := c.xhat.Data()[i*d : (i+1)*d]
		// Accumulate parameter grads and the two row means.
		var m1, m2 float64 // mean(dxhat), mean(dxhat*xhat)
		for j := 0; j < d; j++ {
			dg[j] += dy[j] * xh[j]
			db[j] += dy[j]
			dxh := float64(dy[j] * g[j])
			m1 += dxh
			m2 += dxh * float64(xh[j])
		}
		m1 /= float64(d)
		m2 /= float64(d)
		out := dx.Data()[i*d : (i+1)*d]
		for j := 0; j < d; j++ {
			dxh := float64(dy[j] * g[j])
			out[j] = float32((dxh - m1 - float64(xh[j])*m2)) * c.invStd[i]
		}
	}
	c.xhat = nil
	lnCaches.Put(c)
	return dx
}

// Params returns γ and β.
func (ln *LayerNorm) Params() []*Param { return []*Param{ln.Gamma, ln.Beta} }

// BatchNorm2d is per-channel batch normalization over NCHW tensors, used by
// the CNN architectures (VGG with BN, WideResNet). Running statistics are
// kept for evaluation mode.
type BatchNorm2d struct {
	Gamma, Beta     *Param
	RunMean, RunVar []float32
	Momentum        float32
	c               int
}

// NewBatchNorm2d creates a BatchNorm over c channels.
func NewBatchNorm2d(name string, c int) *BatchNorm2d {
	bn := &BatchNorm2d{
		Gamma: newParam(name+".gamma", c), Beta: newParam(name+".beta", c),
		RunMean: make([]float32, c), RunVar: make([]float32, c),
		Momentum: 0.1, c: c,
	}
	bn.Gamma.Value.Fill(1)
	for i := range bn.RunVar {
		bn.RunVar[i] = 1
	}
	return bn
}

type bnCache struct {
	xhat   *tensor.Tensor
	invStd []float32
}

var bnCaches parallel.Pool[bnCache]

// Forward normalizes each channel using batch statistics (training) or
// running statistics (eval).
func (bn *BatchNorm2d) Forward(a *tensor.Arena, x *tensor.Tensor, train bool) (*tensor.Tensor, any) {
	if x.Rank() != 4 || x.Dim(1) != bn.c {
		panic(fmt.Sprintf("nn: BatchNorm2d(%d) got input %v", bn.c, x.Shape()))
	}
	n, c, h, w := x.Dim(0), bn.c, x.Dim(2), x.Dim(3)
	hw := h * w
	cnt := float64(n * hw)
	y := a.Get(x.Shape()...)
	g, b := bn.Gamma.Value.Data(), bn.Beta.Value.Data()

	if !train {
		for ch := 0; ch < c; ch++ {
			is := float32(1 / math.Sqrt(float64(bn.RunVar[ch])+normEps))
			mean := bn.RunMean[ch]
			for img := 0; img < n; img++ {
				off := (img*c + ch) * hw
				for i := 0; i < hw; i++ {
					y.Data()[off+i] = g[ch]*(x.Data()[off+i]-mean)*is + b[ch]
				}
			}
		}
		return y, nil
	}

	cc := bnCaches.Get()
	cc.xhat = a.Get(x.Shape()...)
	if cap(cc.invStd) < c {
		cc.invStd = make([]float32, c)
	}
	cc.invStd = cc.invStd[:c]
	xhat, invStd := cc.xhat, cc.invStd
	for ch := 0; ch < c; ch++ {
		var mean float64
		for img := 0; img < n; img++ {
			off := (img*c + ch) * hw
			for i := 0; i < hw; i++ {
				mean += float64(x.Data()[off+i])
			}
		}
		mean /= cnt
		var varr float64
		for img := 0; img < n; img++ {
			off := (img*c + ch) * hw
			for i := 0; i < hw; i++ {
				d := float64(x.Data()[off+i]) - mean
				varr += d * d
			}
		}
		varr /= cnt
		is := float32(1 / math.Sqrt(varr+normEps))
		invStd[ch] = is
		bn.RunMean[ch] = (1-bn.Momentum)*bn.RunMean[ch] + bn.Momentum*float32(mean)
		bn.RunVar[ch] = (1-bn.Momentum)*bn.RunVar[ch] + bn.Momentum*float32(varr)
		for img := 0; img < n; img++ {
			off := (img*c + ch) * hw
			for i := 0; i < hw; i++ {
				xh := (x.Data()[off+i] - float32(mean)) * is
				xhat.Data()[off+i] = xh
				y.Data()[off+i] = g[ch]*xh + b[ch]
			}
		}
	}
	return y, cc
}

// Backward computes input and affine gradients from batch statistics.
func (bn *BatchNorm2d) Backward(a *tensor.Arena, cache any, gradOut *tensor.Tensor) *tensor.Tensor {
	cc := cache.(*bnCache)
	n, c := gradOut.Dim(0), bn.c
	hw := gradOut.Dim(2) * gradOut.Dim(3)
	cnt := float64(n * hw)
	dx := a.Get(gradOut.Shape()...)
	g := bn.Gamma.Value.Data()
	dg, db := bn.Gamma.Grad.Data(), bn.Beta.Grad.Data()
	for ch := 0; ch < c; ch++ {
		var sumDy, sumDyXhat float64
		for img := 0; img < n; img++ {
			off := (img*c + ch) * hw
			for i := 0; i < hw; i++ {
				dy := float64(gradOut.Data()[off+i])
				sumDy += dy
				sumDyXhat += dy * float64(cc.xhat.Data()[off+i])
			}
		}
		dg[ch] += float32(sumDyXhat)
		db[ch] += float32(sumDy)
		m1 := sumDy / cnt
		m2 := sumDyXhat / cnt
		scale := g[ch] * cc.invStd[ch]
		for img := 0; img < n; img++ {
			off := (img*c + ch) * hw
			for i := 0; i < hw; i++ {
				dy := float64(gradOut.Data()[off+i])
				xh := float64(cc.xhat.Data()[off+i])
				dx.Data()[off+i] = scale * float32(dy-m1-xh*m2)
			}
		}
	}
	cc.xhat = nil
	bnCaches.Put(cc)
	return dx
}

// Params returns γ and β.
func (bn *BatchNorm2d) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }
