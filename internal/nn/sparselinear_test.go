package nn

import (
	"fmt"
	"math"
	"testing"

	"github.com/sparse-dl/samo/internal/prune"
	"github.com/sparse-dl/samo/internal/sparse"
	"github.com/sparse-dl/samo/internal/tensor"
)

// sparsePair builds a masked-dense Linear and the SparseLinear holding the
// same pruned weights and bias.
func sparsePair(in, out int, sparsity float64, seed uint64) (*Linear, *SparseLinear, *sparse.Index) {
	rng := tensor.NewRNG(seed)
	dense := NewLinear("fc", in, out, rng)
	tensor.FillNormal(dense.B.Value, 0.5, rng)
	pr := prune.MagnitudePerLayer(
		[]prune.Layer{{Name: "fc.weight", Values: dense.W.Value.Data()}}, sparsity)
	ix := pr.Index("fc.weight")
	ix.Mask().Apply(dense.W.Value.Data())
	sl := NewSparseLinear("fc", dense.W.Value, ix)
	copy(sl.B.Value.Data(), dense.B.Value.Data())
	return dense, sl, ix
}

// TestSparseLinearMatchesMaskedDense pins both execution paths of the
// layer — the CSR kernels and the masked-dense GEMM fallback — against the
// masked-dense nn.Linear reference: same outputs, same input gradients,
// weight gradients equal to the dense gradient restricted to the pattern
// (and NO entries beyond it), same bias gradients. Run through an arena,
// as the trainer drives it.
func TestSparseLinearMatchesMaskedDense(t *testing.T) {
	for _, exec := range []ExecMode{ExecSparse, ExecDense} {
		t.Run(fmt.Sprintf("exec=%d", exec), func(t *testing.T) {
			dense, sl, ix := sparsePair(12, 9, 0.8, 1)
			sl.Exec = exec
			x := tensor.New(5, 12)
			tensor.FillNormal(x, 1, tensor.NewRNG(2))
			gy := tensor.New(5, 9)
			tensor.FillNormal(gy, 1, tensor.NewRNG(3))
			arena := tensor.NewArena()

			yd, cd := dense.Forward(nil, x, true)
			dense.W.ZeroGrad()
			dense.B.ZeroGrad()
			dxD := dense.Backward(nil, cd, gy)

			ys, cs := sl.Forward(arena, x, true)
			if d := tensor.MaxAbsDiff(yd, ys); d > 1e-4 {
				t.Errorf("forward diff %g", d)
			}
			dxS := sl.Backward(arena, cs, gy)
			if d := tensor.MaxAbsDiff(dxD, dxS); d > 1e-4 {
				t.Errorf("input grad diff %g", d)
			}
			if d := tensor.MaxAbsDiff(dense.B.Grad, sl.B.Grad); d > 1e-4 {
				t.Errorf("bias grad diff %g", d)
			}
			// The sparse weight gradient is the dense one sampled at the
			// pattern — compare through the (out, in) scatter.
			gradDense := tensor.New(9, 12)
			for i := 0; i < 9; i++ {
				for p := sl.W.RowPtr[i]; p < sl.W.RowPtr[i+1]; p++ {
					gradDense.Set(sl.GradVals()[p], i, int(sl.W.ColIdx[p]))
				}
			}
			back := tensor.Transpose(gradDense) // (in, out)
			wantComp := make([]float32, ix.NNZ())
			ix.Compress(wantComp, dense.W.Grad.Data())
			gotComp := make([]float32, ix.NNZ())
			ix.Compress(gotComp, back.Data())
			for i := range wantComp {
				if math.Abs(float64(wantComp[i]-gotComp[i])) > 1e-3 {
					t.Fatalf("weight grad %d: dense %g vs sparse %g", i, wantComp[i], gotComp[i])
				}
			}
			// No gradient storage exists beyond the pattern at all: the
			// parameter is exactly NNZ long.
			if sl.Wv.Grad.Len() != ix.NNZ() {
				t.Fatalf("gradient vector has %d entries, want exactly %d", sl.Wv.Grad.Len(), ix.NNZ())
			}
			arena.Reset()
		})
	}
}

// TestSparseLinearOptimizerAliasing pins the Wv.Value/W.Val alias both
// kernels' weight views depend on: a write through the parameter (what the
// optimizer's down-cast does) must be visible to the forward product and —
// after the backward's refresh — to the cached transpose.
func TestSparseLinearOptimizerAliasing(t *testing.T) {
	_, sl, _ := sparsePair(8, 6, 0.5, 5)
	sl.Exec = ExecSparse
	x := tensor.New(3, 8)
	tensor.FillNormal(x, 1, tensor.NewRNG(6))
	for i, v := range sl.Wv.Value.Data() {
		sl.Wv.Value.Data()[i] = 2 * v
	}
	sl.B.Value.Zero()
	y, c := sl.Forward(nil, x, true)
	// Forward must see the doubled weights through the alias.
	ref := tensor.MatMulT(x, sl.W.Dense())
	if d := tensor.MaxAbsDiff(y, ref); d > 1e-4 {
		t.Fatalf("forward does not see optimizer writes: diff %g", d)
	}
	// The backward's cached transpose must also see them.
	gy := tensor.New(3, 6)
	tensor.FillNormal(gy, 1, tensor.NewRNG(7))
	dx := sl.Backward(nil, c, gy)
	refDx := tensor.MatMul(gy, sl.W.Dense())
	if d := tensor.MaxAbsDiff(dx, refDx); d > 1e-4 {
		t.Fatalf("cached transpose stale after weight update: diff %g", d)
	}
}

// TestSparseLinearDenseCopyNeverStale pins the denseFresh protocol against
// path flips: a fresh flag set by one microbatch's dense forward must not
// let a LATER microbatch's dense backward skip re-materialization after the
// weights changed — the flag may only be consumed by the same microbatch
// that set it. (The sequence below is what crossover probing produces when
// forward and backward buckets flip paths independently.)
func TestSparseLinearDenseCopyNeverStale(t *testing.T) {
	_, sl, _ := sparsePair(10, 8, 0.5, 21)
	x := tensor.New(4, 10)
	tensor.FillNormal(x, 1, tensor.NewRNG(22))
	gy := tensor.New(4, 8)
	tensor.FillNormal(gy, 1, tensor.NewRNG(23))

	// Microbatch 1: dense forward sets the fresh flag, sparse backward
	// leaves it unconsumed.
	sl.Exec = ExecDense
	_, c := sl.Forward(nil, x, true)
	sl.Exec = ExecSparse
	sl.Backward(nil, c, gy)
	// Optimizer step: weights change through the alias.
	for i, v := range sl.Wv.Value.Data() {
		sl.Wv.Value.Data()[i] = v + 1
	}
	// Microbatch 2: sparse forward, dense backward — must re-materialize.
	_, c = sl.Forward(nil, x, true)
	sl.Exec = ExecDense
	dx := sl.Backward(nil, c, gy)
	want := tensor.MatMul(gy, sl.W.Dense())
	if d := tensor.MaxAbsDiff(dx, want); d > 1e-4 {
		t.Fatalf("dense backward used a stale masked-dense copy: diff %g", d)
	}
}

// TestSparsify checks the layer surgery: pruned Linears become
// SparseLinears with the same bias and masked weights, other layers pass
// through, and the sparse model's eval forward matches the masked-dense
// original.
func TestSparsify(t *testing.T) {
	rng := tensor.NewRNG(11)
	m := BuildMLP("mlp", []int{16, 32, 8}, rng)
	var layers []prune.Layer
	for _, e := range m.PruneLayers() {
		layers = append(layers, prune.Layer{Name: e.Name, Values: e.Param.Value.Data()})
	}
	pr := prune.MagnitudePerLayer(layers, 0.75)
	// The reference masked-dense model: apply the masks in place.
	for _, e := range m.PruneLayers() {
		pr.Index(e.Name).Mask().Apply(e.Param.Value.Data())
	}
	sm := Sparsify(m, pr)
	if len(sm.Layers) != len(m.Layers) {
		t.Fatalf("layer count changed: %d vs %d", len(sm.Layers), len(m.Layers))
	}
	nSparse := 0
	for _, l := range sm.Layers {
		if sl, ok := l.(*SparseLinear); ok {
			sl.Exec = ExecSparse
			nSparse++
		}
	}
	if nSparse != 2 {
		t.Fatalf("sparsified %d layers, want 2", nSparse)
	}
	x := tensor.New(4, 16)
	tensor.FillNormal(x, 1, rng)
	yd, _ := m.Forward(x, false)
	ys, _ := sm.Forward(x, false)
	if d := tensor.MaxAbsDiff(yd, ys); d > 1e-4 {
		t.Fatalf("sparsified model diverges from masked-dense: %g", d)
	}
}

// TestSparseLinearCrossoverProbesAndFreezes drives an auto-mode layer until
// its forward bucket freezes and checks the decision machinery: probes
// alternate deterministically, a frozen bucket stops probing, and the
// masked-dense scratch is dropped after enough sparse-path calls.
func TestSparseLinearCrossoverProbesAndFreezes(t *testing.T) {
	sparse.ResetXover()
	defer sparse.ResetXover()
	if prev, err := sparse.SetXover("auto"); err != nil {
		t.Fatal(err)
	} else {
		defer sparse.SetXover(prev)
	}
	_, sl, _ := sparsePair(32, 24, 0.9, 13)
	x := tensor.New(16, 32)
	tensor.FillNormal(x, 1, tensor.NewRNG(14))
	gy := tensor.New(16, 24)
	tensor.FillNormal(gy, 1, tensor.NewRNG(15))
	for i := 0; i < 64; i++ {
		_, c := sl.Forward(nil, x, true)
		sl.Backward(nil, c, gy)
	}
	e, _, probe := sparse.XoverDecide(sparse.XoverOpForward, 16, 32, 24, sl.NNZ(), 32*24)
	if probe {
		t.Fatal("forward bucket still probing after 64 calls")
	}
	if _, ok := e.Decided(); !ok {
		t.Fatal("forward bucket not frozen")
	}
	// Force the sparse path from here: the dense scratch must age out.
	sl.Exec = ExecSparse
	for i := 0; i < 2*denseDropAfter; i++ {
		_, c := sl.Forward(nil, x, true)
		sl.Backward(nil, c, gy)
	}
	if sl.denseW != nil {
		t.Error("masked-dense scratch not released after sparse-only steady state")
	}
}
