package axonn

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"github.com/sparse-dl/samo/internal/comm"
	"github.com/sparse-dl/samo/internal/core"
	"github.com/sparse-dl/samo/internal/nn"
	"github.com/sparse-dl/samo/internal/prune"
	"github.com/sparse-dl/samo/internal/tensor"
)

// Gradual-pruning determinism suite. The contract: a prune.Schedule is pure
// arithmetic over (step, θ32), and θ32 is bitwise-identical on every replica
// after the overflow consensus — so the same schedule produces identical
// events, identical survivors and identical losses at every worker count,
// on both transports, with the overlapped reducer on or off, and recovers
// bitwise from a crash landing exactly on a prune event.

// gradualSchedule fires events at steps 1, 3 and 5 of a 6-batch run,
// ramping 0.3 → 0.8.
func gradualSchedule() *prune.Schedule {
	return &prune.Schedule{Initial: 0.3, Final: 0.8, BeginStep: 1, EndStep: 5, Frequency: 2}
}

// TestGradualPruneOverlapBitwiseWorkerSweep pins overlap-on ≡ overlap-off
// under an active pruning schedule at every acceptance worker count: the
// in-place shrinks re-head the bucket slabs both reducers consume.
func TestGradualPruneOverlapBitwiseWorkerSweep(t *testing.T) {
	pr := pruneMLP(61, 0.3)
	for _, gdata := range []int{1, 2, 3, 4, 8, 16} {
		gdata := gdata
		t.Run(fmt.Sprintf("gdata%d", gdata), func(t *testing.T) {
			t.Parallel()
			// 48 samples divide evenly by every gdata in the sweep.
			batches := makeBatches(6, 48, uint64(7000+gdata))
			cfg := Config{
				Ginter: 1, Gdata: gdata, Microbatch: 1,
				Mode:              core.SAMO,
				OrderedReduce:     true,
				ReduceBucketElems: overlapBucketElems,
				PruneSchedule:     gradualSchedule(),
			}
			off := Train(cfg, mlpBuilder(61), adamBuilder(), pr, batches)
			cfg.OverlapReduce = true
			on := Train(cfg, mlpBuilder(61), adamBuilder(), pr, batches)
			assertTrainBitwise(t, fmt.Sprintf("gradual gdata=%d", gdata), off, on)
		})
	}
}

// TestGradualPruneScheduleShrinksState checks the ramp actually bites in
// the engine: the final stage state of a scheduled run serializes smaller
// than the unscheduled run's, and differs from it.
func TestGradualPruneScheduleShrinksState(t *testing.T) {
	pr := pruneMLP(63, 0.3)
	batches := makeBatches(6, 8, 7100)
	cfg := Config{
		Ginter: 1, Gdata: 2, Microbatch: 1,
		Mode: core.SAMO, OrderedReduce: true,
	}
	plain := Train(cfg, mlpBuilder(63), adamBuilder(), pr, batches)
	if plain.Err != nil {
		t.Fatalf("unscheduled run: %v", plain.Err)
	}
	cfg.PruneSchedule = gradualSchedule()
	ramped := Train(cfg, mlpBuilder(63), adamBuilder(), pr, batches)
	if ramped.Err != nil {
		t.Fatalf("scheduled run: %v", ramped.Err)
	}
	if len(ramped.StageStates[0]) >= len(plain.StageStates[0]) {
		t.Fatalf("ramped state %d bytes not smaller than unscheduled %d",
			len(ramped.StageStates[0]), len(plain.StageStates[0]))
	}
}

// TestGradualPruneOverTCPBitwise drives the schedule with every collective
// crossing a real TCP wire and requires bitwise identity with the local
// golden at worker counts 2 and 4 — prune events sequence after the
// transport-independent overflow consensus, so the wire cannot reorder them.
func TestGradualPruneOverTCPBitwise(t *testing.T) {
	pr := pruneMLP(65, 0.3)
	for _, gdata := range []int{2, 4} {
		gdata := gdata
		t.Run(fmt.Sprintf("gdata%d", gdata), func(t *testing.T) {
			cfg := Config{
				Ginter: 1, Gdata: gdata, Microbatch: 2,
				Mode:               core.SAMO,
				OrderedReduce:      true,
				ReduceBucketElems:  overlapBucketElems,
				CollectiveDeadline: 15 * time.Second,
				PruneSchedule:      gradualSchedule(),
			}
			batches := makeBatches(6, 8*gdata, uint64(7200+gdata))
			golden := Train(cfg, mlpBuilder(65), adamBuilder(), pr, batches)
			if golden.Err != nil {
				t.Fatalf("local golden: %v", golden.Err)
			}

			cfg.OverlapReduce = true
			n := cfg.GPUs()
			addrs := freeLoopbackAddrs(t, n)
			results := make([]Result, n)
			var wg sync.WaitGroup
			for p := 0; p < n; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					c := cfg
					c.Net = &NetConfig{Peers: addrs, Proc: p, DialTimeout: 30 * time.Second}
					results[p] = Train(c, mlpBuilder(65), adamBuilder(), pr, batches)
				}(p)
			}
			wg.Wait()
			for p := range results {
				if results[p].Err != nil {
					t.Fatalf("proc %d: %v", p, results[p].Err)
				}
				if results[p].Fabric != nil {
					defer results[p].Fabric.Close()
				}
			}
			loss := results[0]
			for i := range golden.Losses {
				if math.Float64bits(loss.Losses[i]) != math.Float64bits(golden.Losses[i]) {
					t.Fatalf("loss[%d] = %x over tcp, golden %x", i,
						math.Float64bits(loss.Losses[i]), math.Float64bits(golden.Losses[i]))
				}
			}
			if !bytes.Equal(results[0].StageStates[0], golden.StageStates[0]) {
				t.Fatal("stage 0 state differs between tcp and local under the schedule")
			}
		})
	}
}

// sparseMLPBuilder builds the test MLP with its Linears replaced by
// first-class SparseLinear layers on the pinned sparse kernels, so the
// engine's prune events exercise the in-place CSR pattern shrink.
func sparseMLPBuilder(seed uint64, sparsity float64) Builder {
	return func() *nn.Model {
		m := nn.BuildMLP("mlp", []int{inDim, 10, 8, classes}, tensor.NewRNG(seed))
		var layers []prune.Layer
		for _, e := range m.PruneLayers() {
			layers = append(layers, prune.Layer{Name: e.Name, Values: e.Param.Value.Data()})
		}
		pr := prune.MagnitudePerLayer(layers, sparsity)
		sm := nn.Sparsify(m, pr)
		for _, l := range sm.Layers {
			if sl, ok := l.(*nn.SparseLinear); ok {
				sl.Exec = nn.ExecSparse
			}
		}
		return sm
	}
}

// TestGradualPruneSparseLayersBitwise runs the ramp over SparseLinear
// pattern layers — CSR shrink, cached-transpose refresh, bucket compaction
// of the rank-1 weight vectors — and pins overlap-on ≡ overlap-off.
func TestGradualPruneSparseLayersBitwise(t *testing.T) {
	pr := pruneMLP(67, 0.3)
	batches := makeBatches(6, 16, 7300)
	cfg := Config{
		Ginter: 1, Gdata: 2, Microbatch: 1,
		Mode:              core.SAMO,
		OrderedReduce:     true,
		ReduceBucketElems: overlapBucketElems,
		PruneSchedule:     gradualSchedule(),
	}
	off := Train(cfg, sparseMLPBuilder(67, 0.3), adamBuilder(), pr, batches)
	cfg.OverlapReduce = true
	on := Train(cfg, sparseMLPBuilder(67, 0.3), adamBuilder(), pr, batches)
	assertTrainBitwise(t, "sparse-layer gradual", off, on)
}

// TestCrashAtPruneEventRecoversBitwise is the recovery golden the schedule
// adds to the chaos suite: a rank crash landing exactly ON a prune-event
// batch resumes from the checkpoint written BEFORE the shrink (replaying
// the event), and a crash one batch later resumes from the post-shrink
// checkpoint (shrinking the rebuilt state on load). Both must land bitwise
// on the uninterrupted golden.
func TestCrashAtPruneEventRecoversBitwise(t *testing.T) {
	pr := pruneMLP(69, 0.3)
	batches := makeBatches(6, 8, 7400)
	gradualChaosCfg := func(dir string) Config {
		c := chaosCfg(dir)
		c.Mode = core.SAMO
		c.PruneSchedule = gradualSchedule()
		return c
	}
	golden := Train(gradualChaosCfg(t.TempDir()), mlpBuilder(69), adamBuilder(), pr, batches)
	if golden.Err != nil {
		t.Fatalf("golden run: %v", golden.Err)
	}
	// Batch 3 is a prune event (checkpoint 3 predates its shrink; checkpoint
	// 4 follows it); batch 4 is the step after. Crash every rank position at
	// both, plus the final event at batch 5.
	for _, step := range []int{3, 4, 5} {
		step := step
		t.Run(fmt.Sprintf("crash-step-%d", step), func(t *testing.T) {
			t.Parallel()
			cfg := gradualChaosCfg(t.TempDir())
			cfg.Fault = &comm.FaultPlan{CrashAtStep: map[int]int{step % cfg.GPUs(): step}}
			res := Train(cfg, mlpBuilder(69), adamBuilder(), pr, batches)
			if res.Restarts != 1 {
				t.Fatalf("restarts = %d, want 1 (err: %v)", res.Restarts, res.Err)
			}
			assertBitwiseEqual(t, golden, res)
		})
	}
}

// TestGradualPruneResumeFromPreAndPostShrinkCheckpoints pins the two resume
// flavors directly, without fault injection: run A stops right after the
// event at batch 3; separate Resume=true runs restart from its newest
// checkpoint (post-shrink) and from a run stopped BEFORE the event
// (pre-shrink, replaying it), both finishing bitwise on the golden.
func TestGradualPruneResumeFromPreAndPostShrinkCheckpoints(t *testing.T) {
	pr := pruneMLP(71, 0.3)
	all := makeBatches(6, 8, 7500)
	mkCfg := func(dir string) Config {
		c := chaosCfg(dir)
		c.Mode = core.SAMO
		c.PruneSchedule = gradualSchedule()
		return c
	}
	golden := Train(mkCfg(t.TempDir()), mlpBuilder(71), adamBuilder(), pr, all)
	if golden.Err != nil {
		t.Fatalf("golden run: %v", golden.Err)
	}
	// stop ∈ {3, 4}: run A's newest checkpoint is written after batch
	// stop−1 — batch 3 holds the pre-shrink pattern of event 3, batch 4 the
	// post-shrink one.
	for _, stop := range []int{3, 4} {
		stop := stop
		t.Run(fmt.Sprintf("resume-from-%d", stop), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			a := Train(mkCfg(dir), mlpBuilder(71), adamBuilder(), pr, all[:stop])
			if a.Err != nil {
				t.Fatalf("run A: %v", a.Err)
			}
			cfg := mkCfg(dir)
			cfg.Resume = true
			b := Train(cfg, mlpBuilder(71), adamBuilder(), pr, all)
			if b.Err != nil {
				t.Fatalf("resumed run: %v", b.Err)
			}
			if b.StartBatch != stop {
				t.Fatalf("resumed at %d, want %d", b.StartBatch, stop)
			}
			for i := stop; i < len(all); i++ {
				if b.Losses[i] != golden.Losses[i] {
					t.Fatalf("batch %d loss %v != golden %v", i, b.Losses[i], golden.Losses[i])
				}
			}
			for s := range golden.StageStates {
				if !bytes.Equal(b.StageStates[s], golden.StageStates[s]) {
					t.Fatalf("stage %d state diverged after resume across a prune event", s)
				}
			}
		})
	}
}
