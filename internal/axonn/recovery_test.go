package axonn

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/sparse-dl/samo/internal/comm"
	"github.com/sparse-dl/samo/internal/core"
)

// chaosCfg is the tiny layout every recovery test trains: 2 pipeline stages
// × 2 data groups over a 3-layer MLP, ordered reductions so losses and θ32
// are bitwise-comparable across runs.
func chaosCfg(dir string) Config {
	return Config{
		Ginter: 2, Gdata: 2, Microbatch: 2,
		Mode:          core.Dense,
		OrderedReduce: true,
		CheckpointDir: dir,
	}
}

// assertBitwiseEqual compares a recovered run against the uninterrupted
// golden: every per-batch loss float64-identical, every stage's serialized
// ModelState byte-identical.
func assertBitwiseEqual(t *testing.T, golden, got Result) {
	t.Helper()
	if got.Err != nil {
		t.Fatalf("recovered run failed: %v", got.Err)
	}
	if len(got.Losses) != len(golden.Losses) {
		t.Fatalf("loss count %d, golden %d", len(got.Losses), len(golden.Losses))
	}
	for i := range golden.Losses {
		if got.Losses[i] != golden.Losses[i] {
			t.Fatalf("batch %d loss %v != golden %v (must be bitwise)", i, got.Losses[i], golden.Losses[i])
		}
	}
	if len(got.StageStates) != len(golden.StageStates) {
		t.Fatalf("stage count %d, golden %d", len(got.StageStates), len(golden.StageStates))
	}
	for s := range golden.StageStates {
		if !bytes.Equal(got.StageStates[s], golden.StageStates[s]) {
			t.Fatalf("stage %d θ32/optimizer state diverged from golden after recovery", s)
		}
	}
	if got.SkippedSteps != golden.SkippedSteps {
		t.Fatalf("skipped steps %d != golden %d", got.SkippedSteps, golden.SkippedSteps)
	}
}

func TestTrainSurvivesRankCrash(t *testing.T) {
	batches := makeBatches(6, 8, 1100)
	golden := Train(chaosCfg(t.TempDir()), mlpBuilder(11), adamBuilder(), nil, batches)
	if golden.Err != nil {
		t.Fatalf("golden run: %v", golden.Err)
	}

	cfg := chaosCfg(t.TempDir())
	cfg.Fault = &comm.FaultPlan{CrashAtStep: map[int]int{2: 3}}
	res := Train(cfg, mlpBuilder(11), adamBuilder(), nil, batches)
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1 (warnings: %v)", res.Restarts, res.Warnings)
	}
	if len(res.Warnings) == 0 {
		t.Fatal("recovery must surface a warning describing the abort")
	}
	assertBitwiseEqual(t, golden, res)
}

func TestCrashAtEveryStepBitwiseGolden(t *testing.T) {
	// The acceptance golden: a single-rank crash injected at EVERY step k
	// aborts cleanly and recovers to a bitwise-identical final state. Rank
	// choice rotates so every pipeline/data position gets hit.
	batches := makeBatches(5, 8, 1200)
	golden := Train(chaosCfg(t.TempDir()), mlpBuilder(7), adamBuilder(), nil, batches)
	if golden.Err != nil {
		t.Fatalf("golden run: %v", golden.Err)
	}
	for k := 0; k < len(batches); k++ {
		k := k
		t.Run(fmt.Sprintf("crash-step-%d", k), func(t *testing.T) {
			t.Parallel()
			cfg := chaosCfg(t.TempDir())
			cfg.Fault = &comm.FaultPlan{CrashAtStep: map[int]int{k % cfg.GPUs(): k}}
			res := Train(cfg, mlpBuilder(7), adamBuilder(), nil, batches)
			if res.Restarts != 1 {
				t.Fatalf("restarts = %d, want 1 (err: %v)", res.Restarts, res.Err)
			}
			assertBitwiseEqual(t, golden, res)
		})
	}
}

func TestCrashMidBatchCollective(t *testing.T) {
	// CrashAtOp lands INSIDE a batch (between a stage-group reduce and the
	// global consensus), the window where partial gradient state exists.
	// Recovery must discard it and still match the golden bitwise.
	batches := makeBatches(5, 8, 1300)
	golden := Train(chaosCfg(t.TempDir()), mlpBuilder(9), adamBuilder(), nil, batches)
	if golden.Err != nil {
		t.Fatalf("golden run: %v", golden.Err)
	}
	// Rank 1 (last stage, data group 0) enters 3 collectives per batch under
	// the bucketed reduce plan — one bucket all-reduce, the overflow
	// consensus, the loss average — so ops 0..14 span the 5 batches; 14 is
	// the final batch's loss reduce.
	for _, op := range []int{0, 3, 10, 14} {
		op := op
		t.Run(fmt.Sprintf("crash-op-%d", op), func(t *testing.T) {
			t.Parallel()
			cfg := chaosCfg(t.TempDir())
			cfg.Fault = &comm.FaultPlan{CrashAtOp: map[int]int{1: op}}
			res := Train(cfg, mlpBuilder(9), adamBuilder(), nil, batches)
			if res.Restarts == 0 {
				t.Fatal("fault did not fire")
			}
			assertBitwiseEqual(t, golden, res)
		})
	}
}

func TestMessageDropRecoveredByDeadline(t *testing.T) {
	// A silently dropped activation leaves the receiver blocked with no
	// failed rank to poison the fabric — only the deadline backstop can
	// detect it. The run must abort with a typed DeadlineError and recover
	// to the bitwise golden.
	batches := makeBatches(4, 8, 1400)
	golden := Train(chaosCfg(t.TempDir()), mlpBuilder(13), adamBuilder(), nil, batches)
	if golden.Err != nil {
		t.Fatalf("golden run: %v", golden.Err)
	}
	cfg := chaosCfg(t.TempDir())
	cfg.Fault = &comm.FaultPlan{DropP2PEvery: 7}
	cfg.CollectiveDeadline = 2 * time.Second
	res := Train(cfg, mlpBuilder(13), adamBuilder(), nil, batches)
	if res.Restarts == 0 {
		t.Fatalf("drop fault did not trigger recovery (err: %v)", res.Err)
	}
	assertBitwiseEqual(t, golden, res)
}

func TestAbortWithoutRecoverySurfacesTypedError(t *testing.T) {
	// MaxRestarts<0 disables recovery: the injected crash must surface as a
	// typed RankFailedError on Result.Err — promptly, with no deadlock.
	cfg := chaosCfg(t.TempDir())
	cfg.Fault = &comm.FaultPlan{CrashAtStep: map[int]int{1: 1}}
	cfg.MaxRestarts = -1
	res := Train(cfg, mlpBuilder(15), adamBuilder(), nil, makeBatches(4, 8, 1500))
	var rf *comm.RankFailedError
	if !errors.As(res.Err, &rf) {
		t.Fatalf("Err = %v, want RankFailedError", res.Err)
	}
	if rf.Rank != 1 || rf.Step != 1 {
		t.Fatalf("RankFailedError{%d,%d}, want {1,1}", rf.Rank, rf.Step)
	}
	if res.Restarts != 0 {
		t.Fatalf("restarts = %d with recovery disabled", res.Restarts)
	}
}

func TestRecoveryWithoutCheckpointReplaysFromScratch(t *testing.T) {
	// No checkpoint dir: recovery still works by replaying the whole run on
	// a fresh fabric (the failed hardware is replaced, state rebuilt from
	// batch 0). Results must match the golden exactly.
	batches := makeBatches(4, 8, 1600)
	cfg := chaosCfg("")
	golden := Train(cfg, mlpBuilder(17), adamBuilder(), nil, batches)
	if golden.Err != nil {
		t.Fatalf("golden run: %v", golden.Err)
	}
	cfg.Fault = &comm.FaultPlan{CrashAtStep: map[int]int{3: 2}}
	res := Train(cfg, mlpBuilder(17), adamBuilder(), nil, batches)
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1 (err: %v)", res.Restarts, res.Err)
	}
	assertBitwiseEqual(t, golden, res)
}

func TestResumeAcrossProcesses(t *testing.T) {
	// Simulated process restart: run A trains the first 3 batches and exits;
	// run B (fresh Train, Resume=true, same dir) trains the rest. B's final
	// stage states must be bitwise-identical to one uninterrupted run, and
	// the losses it computed must match the golden's tail.
	all := makeBatches(6, 8, 1700)
	golden := Train(chaosCfg(t.TempDir()), mlpBuilder(19), adamBuilder(), nil, all)
	if golden.Err != nil {
		t.Fatalf("golden run: %v", golden.Err)
	}

	dir := t.TempDir()
	cfgA := chaosCfg(dir)
	a := Train(cfgA, mlpBuilder(19), adamBuilder(), nil, all[:3])
	if a.Err != nil {
		t.Fatalf("run A: %v", a.Err)
	}
	cfgB := chaosCfg(dir)
	cfgB.Resume = true
	b := Train(cfgB, mlpBuilder(19), adamBuilder(), nil, all)
	if b.Err != nil {
		t.Fatalf("run B: %v", b.Err)
	}
	if b.StartBatch != 3 {
		t.Fatalf("run B resumed at %d, want 3", b.StartBatch)
	}
	for i := 3; i < len(all); i++ {
		if b.Losses[i] != golden.Losses[i] {
			t.Fatalf("batch %d loss %v != golden %v", i, b.Losses[i], golden.Losses[i])
		}
	}
	for s := range golden.StageStates {
		if !bytes.Equal(b.StageStates[s], golden.StageStates[s]) {
			t.Fatalf("stage %d state diverged after cross-process resume", s)
		}
	}
	// Resuming when everything is already trained is a no-op success.
	c := Train(cfgB, mlpBuilder(19), adamBuilder(), nil, all)
	if c.Err != nil || c.StartBatch != len(all) {
		t.Fatalf("fully-trained resume: start %d err %v", c.StartBatch, c.Err)
	}
}

func TestRecoveredRunKeepsSAMOCompression(t *testing.T) {
	// Fault tolerance must not disturb the paper's core property: a SAMO
	// run that recovers from a crash still trains, still matches its own
	// golden, and still reports compressed state.
	batches := makeBatches(4, 8, 1800)
	pr := pruneMLP(21, 0.5)
	cfg := chaosCfg(t.TempDir())
	cfg.Mode = core.SAMO
	golden := Train(cfg, mlpBuilder(21), adamBuilder(), pr, batches)
	if golden.Err != nil {
		t.Fatalf("golden run: %v", golden.Err)
	}
	cfg2 := chaosCfg(t.TempDir())
	cfg2.Mode = core.SAMO
	cfg2.Fault = &comm.FaultPlan{CrashAtStep: map[int]int{0: 2}}
	res := Train(cfg2, mlpBuilder(21), adamBuilder(), pr, batches)
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1 (err: %v)", res.Restarts, res.Err)
	}
	assertBitwiseEqual(t, golden, res)
}
