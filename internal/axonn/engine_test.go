package axonn

import (
	"math"
	"strings"
	"testing"

	"github.com/sparse-dl/samo/internal/core"
	"github.com/sparse-dl/samo/internal/nn"
	"github.com/sparse-dl/samo/internal/optim"
	"github.com/sparse-dl/samo/internal/prune"
	"github.com/sparse-dl/samo/internal/tensor"
)

const (
	inDim   = 6
	classes = 4
)

func mlpBuilder(seed uint64) Builder {
	return func() *nn.Model {
		return nn.BuildMLP("mlp", []int{inDim, 10, 8, classes}, tensor.NewRNG(seed))
	}
}

func adamBuilder() OptBuilder {
	return func() optim.Optimizer { return optim.NewAdam(0.01) }
}

func makeBatches(n, samples int, seed uint64) []Batch {
	rng := tensor.NewRNG(seed)
	var out []Batch
	for i := 0; i < n; i++ {
		x := tensor.New(samples, inDim)
		tensor.FillNormal(x, 1, rng)
		targets := make([]int, samples)
		for j := range targets {
			targets[j] = rng.Intn(classes)
		}
		out = append(out, Batch{Input: x, Targets: targets, SampleRows: 1, Samples: samples})
	}
	return out
}

func pruneMLP(seed uint64, sparsity float64) *prune.Result {
	m := mlpBuilder(seed)()
	var layers []prune.Layer
	for _, e := range m.PruneLayers() {
		layers = append(layers, prune.Layer{Name: e.Name, Values: e.Param.Value.Data()})
	}
	return prune.MagnitudePerLayer(layers, sparsity)
}

// serialLosses trains the reference single-rank configuration.
func serialLosses(seed uint64, pr *prune.Result, mode core.Mode, batches []Batch) ([]float64, *core.ModelState) {
	m := mlpBuilder(seed)()
	ms := core.NewModelState(m, optim.NewAdam(0.01), mode, pr)
	tr := core.NewTrainer(ms)
	var losses []float64
	for _, b := range batches {
		l, _ := tr.TrainStep(b.Input, b.Targets)
		losses = append(losses, l)
	}
	return losses, ms
}

func TestPipelineMatchesSerialBitwise(t *testing.T) {
	// Ginter=2, Gdata=1, one microbatch per batch: the pipeline splits the
	// model across two ranks but performs the identical arithmetic, so
	// losses and final parameters must match the serial run exactly.
	batches := makeBatches(6, 8, 100)
	want, refState := serialLosses(7, nil, core.Dense, batches)

	res := Train(Config{Ginter: 2, Gdata: 1, Microbatch: 8, Mode: core.Dense, OrderedReduce: true},
		mlpBuilder(7), adamBuilder(), nil, batches)
	for i := range want {
		if res.Losses[i] != want[i] {
			t.Fatalf("batch %d: pipeline loss %.9f != serial %.9f", i, res.Losses[i], want[i])
		}
	}
	_ = refState
}

func TestPipelineWithMicrobatchesMatchesSerialClosely(t *testing.T) {
	// Several microbatches change only float summation order; losses track
	// the serial reference to fp16-accumulation tolerance.
	batches := makeBatches(5, 8, 200)
	want, _ := serialLosses(9, nil, core.Dense, batches)
	res := Train(Config{Ginter: 2, Gdata: 1, Microbatch: 2, Mode: core.Dense, OrderedReduce: true},
		mlpBuilder(9), adamBuilder(), nil, batches)
	for i := range want {
		if math.Abs(res.Losses[i]-want[i]) > 5e-3*(1+math.Abs(want[i])) {
			t.Errorf("batch %d: loss %g vs serial %g", i, res.Losses[i], want[i])
		}
	}
}

func TestDataParallelMatchesSerialClosely(t *testing.T) {
	batches := makeBatches(5, 8, 300)
	want, _ := serialLosses(11, nil, core.Dense, batches)
	res := Train(Config{Ginter: 1, Gdata: 2, Microbatch: 4, Mode: core.Dense, OrderedReduce: true},
		mlpBuilder(11), adamBuilder(), nil, batches)
	for i := range want {
		if math.Abs(res.Losses[i]-want[i]) > 5e-3*(1+math.Abs(want[i])) {
			t.Errorf("batch %d: loss %g vs serial %g", i, res.Losses[i], want[i])
		}
	}
}

func TestSAMOMatchesDenseInParallel(t *testing.T) {
	// The paper's correctness claim under full hybrid parallelism: SAMO
	// storage changes nothing about the arithmetic. With identical
	// layouts, losses must match the masked-dense run bit for bit.
	pr := pruneMLP(13, 0.7)
	batches := makeBatches(6, 8, 400)
	cfgDense := Config{Ginter: 2, Gdata: 2, Microbatch: 2, Mode: core.Dense, OrderedReduce: true}
	cfgSAMO := cfgDense
	cfgSAMO.Mode = core.SAMO

	d := Train(cfgDense, mlpBuilder(13), adamBuilder(), pr, batches)
	s := Train(cfgSAMO, mlpBuilder(13), adamBuilder(), pr, batches)
	for i := range d.Losses {
		if d.Losses[i] != s.Losses[i] {
			t.Fatalf("batch %d: SAMO loss %.9f != masked-dense %.9f", i, s.Losses[i], d.Losses[i])
		}
	}
}

func TestCompressedAllReduceMovesFewerElements(t *testing.T) {
	// §IV-A: SAMO's data-parallel all-reduce sends only unpruned gradients.
	pr := pruneMLP(17, 0.9)
	batches := makeBatches(2, 8, 500)
	cfg := Config{Ginter: 1, Gdata: 2, Microbatch: 4, Mode: core.Dense, OrderedReduce: true}
	d := Train(cfg, mlpBuilder(17), adamBuilder(), pr, batches)
	cfg.Mode = core.SAMO
	s := Train(cfg, mlpBuilder(17), adamBuilder(), pr, batches)

	dense := d.Fabric.TotalCollElements()
	compressed := s.Fabric.TotalCollElements()
	if compressed >= dense {
		t.Fatalf("compressed all-reduce moved %d elements, dense %d", compressed, dense)
	}
	// At 90% sparsity of the weight matrices the payload should shrink by
	// well over half (biases stay dense).
	if float64(compressed) > 0.5*float64(dense) {
		t.Errorf("compression ratio too weak: %d vs %d", compressed, dense)
	}
}

func TestHybridParallelTrainingLearns(t *testing.T) {
	// End to end: 2×2 hybrid SAMO training must reduce the loss on a fixed
	// dataset.
	pr := pruneMLP(19, 0.5)
	batch := makeBatches(1, 16, 600)[0]
	var batches []Batch
	for i := 0; i < 30; i++ {
		batches = append(batches, batch)
	}
	res := Train(Config{Ginter: 2, Gdata: 2, Microbatch: 4, Mode: core.SAMO, OrderedReduce: true},
		mlpBuilder(19), adamBuilder(), pr, batches)
	if res.Losses[len(res.Losses)-1] >= res.Losses[0] {
		t.Errorf("loss did not decrease: %g -> %g", res.Losses[0], res.Losses[len(res.Losses)-1])
	}
}

func TestFourStagePipeline(t *testing.T) {
	// Deeper pipeline (one layer per stage) still matches serial.
	batches := makeBatches(4, 4, 700)
	want, _ := serialLosses(23, nil, core.Dense, batches)
	res := Train(Config{Ginter: 4, Gdata: 1, Microbatch: 4, Mode: core.Dense, OrderedReduce: true},
		mlpBuilder(23), adamBuilder(), nil, batches)
	for i := range want {
		if res.Losses[i] != want[i] {
			t.Fatalf("batch %d: %g != %g", i, res.Losses[i], want[i])
		}
	}
}

func TestGPTPipelineTrains(t *testing.T) {
	// A tiny transformer through the hybrid engine: exercises embedding,
	// attention, blocks and LM head across stage boundaries.
	cfg := nn.GPTConfig{Name: "tiny", Layers: 2, Hidden: 16, Heads: 2, Seq: 4, Vocab: 11}
	build := func() *nn.Model { return nn.BuildGPT(cfg, tensor.NewRNG(31)) }

	rng := tensor.NewRNG(32)
	const samples = 4
	tokens := make([]int, samples*cfg.Seq)
	targets := make([]int, samples*cfg.Seq)
	for i := range tokens {
		tokens[i] = rng.Intn(cfg.Vocab)
		targets[i] = rng.Intn(cfg.Vocab)
	}
	b := Batch{Input: nn.TokensToTensor(tokens), Targets: targets, SampleRows: cfg.Seq, Samples: samples}
	var batches []Batch
	for i := 0; i < 12; i++ {
		batches = append(batches, b)
	}
	res := Train(Config{Ginter: 2, Gdata: 2, Microbatch: 1, Mode: core.Dense, OrderedReduce: true},
		build, adamBuilder(), nil, batches)
	if res.Losses[len(res.Losses)-1] >= res.Losses[0] {
		t.Errorf("GPT loss did not decrease: %g -> %g", res.Losses[0], res.Losses[len(res.Losses)-1])
	}
}

func TestOverflowConsensusSkipsEverywhere(t *testing.T) {
	// Force an overflow via a huge loss scale: the step must be skipped on
	// every rank (parameters unchanged and identical across a fresh build).
	batches := makeBatches(1, 8, 800)
	build := mlpBuilder(37)

	// Reference parameters before training.
	ref := build()
	var refParams []*tensor.Tensor
	for _, p := range ref.Params() {
		c := p.Value.Clone()
		tensor.QuantizeInPlace(c)
		refParams = append(refParams, c)
	}

	res := trainWithScale(t, build, batches, 1e30)
	if res.SkippedSteps != 1 {
		t.Errorf("skipped steps = %d, want 1", res.SkippedSteps)
	}
	_ = refParams
}

// trainWithScale runs one batch with a custom initial loss scale. A scale
// of 1e30 guarantees fp16 overflow in the scaled gradients.
func trainWithScale(t *testing.T, build Builder, batches []Batch, scale float64) Result {
	t.Helper()
	cfg := Config{Ginter: 2, Gdata: 2, Microbatch: 2, Mode: core.Dense,
		OrderedReduce: true, InitialLossScale: scale}
	return Train(cfg, build, adamBuilder(), nil, batches)
}

func TestPartition(t *testing.T) {
	// Contiguous, covering, balanced.
	for _, tc := range []struct{ n, g int }{{7, 3}, {8, 4}, {5, 5}, {10, 1}} {
		covered := 0
		prevHi := 0
		for i := 0; i < tc.g; i++ {
			lo, hi := partition(tc.n, tc.g, i)
			if lo != prevHi {
				t.Fatalf("partition(%d,%d,%d): gap at %d", tc.n, tc.g, i, lo)
			}
			if hi-lo < tc.n/tc.g || hi-lo > tc.n/tc.g+1 {
				t.Fatalf("partition(%d,%d,%d): unbalanced size %d", tc.n, tc.g, i, hi-lo)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != tc.n {
			t.Fatalf("partition(%d,%d): covered %d", tc.n, tc.g, covered)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("more stages than layers should panic")
		}
	}()
	partition(2, 3, 0)
}

func TestBadConfigSurfacesAsError(t *testing.T) {
	// Bad user config must come back as Result.Err — never a panic and
	// never a hung fabric. Table-driven over every validate branch plus the
	// probe-build partition check.
	good := makeBatches(1, 8, 900)
	cases := []struct {
		name    string
		cfg     Config
		batches []Batch
		want    string
	}{
		{"zero ginter", Config{Ginter: 0, Gdata: 1, Microbatch: 1}, good, "bad config"},
		{"zero gdata", Config{Ginter: 1, Gdata: 0, Microbatch: 1}, good, "bad config"},
		{"zero microbatch", Config{Ginter: 1, Gdata: 1, Microbatch: 0}, good, "bad config"},
		{"negative clipnorm", Config{Ginter: 1, Gdata: 1, Microbatch: 1, ClipNorm: -1}, good, "ClipNorm"},
		{"indivisible by gdata", Config{Ginter: 1, Gdata: 2, Microbatch: 1}, makeBatches(1, 7, 900), "not divisible by Gdata"},
		{"indivisible by microbatch", Config{Ginter: 1, Gdata: 1, Microbatch: 3}, good, "not divisible by microbatch"},
		{"resume without dir", Config{Ginter: 1, Gdata: 1, Microbatch: 1, Resume: true}, good, "Resume requires"},
		{"samo without pruning", Config{Ginter: 1, Gdata: 1, Microbatch: 1, Mode: core.SAMO}, good, "pruning result"},
		{"more stages than layers", Config{Ginter: 64, Gdata: 1, Microbatch: 1}, good, "pipeline stages"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := Train(tc.cfg, mlpBuilder(1), adamBuilder(), nil, tc.batches)
			if res.Err == nil {
				t.Fatal("bad config accepted")
			}
			if !strings.Contains(res.Err.Error(), tc.want) {
				t.Fatalf("err %q does not mention %q", res.Err, tc.want)
			}
		})
	}
}

func TestRingReduceAlsoWorks(t *testing.T) {
	// The bandwidth-optimal ring (OrderedReduce=false) gives the same
	// training trajectory within float tolerance.
	batches := makeBatches(4, 8, 1000)
	a := Train(Config{Ginter: 1, Gdata: 4, Microbatch: 2, Mode: core.Dense, OrderedReduce: true},
		mlpBuilder(41), adamBuilder(), nil, batches)
	b := Train(Config{Ginter: 1, Gdata: 4, Microbatch: 2, Mode: core.Dense, OrderedReduce: false},
		mlpBuilder(41), adamBuilder(), nil, batches)
	for i := range a.Losses {
		if math.Abs(a.Losses[i]-b.Losses[i]) > 1e-3*(1+math.Abs(a.Losses[i])) {
			t.Errorf("batch %d: ordered %g vs ring %g", i, a.Losses[i], b.Losses[i])
		}
	}
}
