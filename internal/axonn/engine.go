// Package axonn is the working reimplementation of the parallel training
// framework the paper builds on (Singh & Bhatele, IPDPS'22) with the SAMO
// optimizations integrated: a hybrid of inter-layer (pipeline) and data
// parallelism over Ginter × Gdata ranks, asynchronous point-to-point
// messaging, message-driven microbatch scheduling, mixed precision with
// dynamic loss scaling, and — when SAMO is enabled — layer-granular gradient
// compression plus compressed data-parallel all-reduces.
//
// Ranks are goroutines and links are channels (internal/comm), so this
// engine really trains models in parallel in-process. It is the correctness
// half of the reproduction: the performance half at Summit scale lives in
// internal/simulate.
//
// Each worker owns a tensor arena that is reset at the end of every batch
// (the global overflow-consensus collective is a barrier, so no peer can
// still be reading this rank's activation or gradient payloads when the
// arena recycles them). Together with the pooled collective buffers in
// internal/comm and the cache pools in internal/nn, a steady-state training
// batch performs no heap allocations.
package axonn

import (
	"fmt"
	"sync"

	"github.com/sparse-dl/samo/internal/comm"
	"github.com/sparse-dl/samo/internal/core"
	"github.com/sparse-dl/samo/internal/nn"
	"github.com/sparse-dl/samo/internal/optim"
	"github.com/sparse-dl/samo/internal/prune"
	"github.com/sparse-dl/samo/internal/tensor"
)

// Config describes the hybrid-parallel layout and training options.
type Config struct {
	Ginter int // pipeline stages per model instance
	Gdata  int // data-parallel model instances
	// Microbatch is the samples per microbatch; a data group's batch shard
	// is split into shardSize/Microbatch microbatches.
	Microbatch int
	// Mode selects Dense mixed precision or SAMO-compressed model states.
	Mode core.Mode
	// OrderedReduce selects the rank-ordered all-reduce (bitwise
	// reproducible against a serial sum) instead of the bandwidth-optimal
	// ring. Numerically both are correct; tests use Ordered.
	OrderedReduce bool
	// ClipNorm forwards to core.ModelState (0 = off).
	ClipNorm float64
	// InitialLossScale overrides the dynamic loss scaler's starting scale
	// when positive (tests use it to provoke overflow skips).
	InitialLossScale float64
}

// GPUs returns the total rank count.
func (c Config) GPUs() int { return c.Ginter * c.Gdata }

// Batch is one global training batch. Input's leading dimension holds
// Samples × SampleRows rows (SampleRows = sequence length for token models,
// 1 for image/vector models); Targets has one entry per row.
type Batch struct {
	Input      *tensor.Tensor
	Targets    []int
	SampleRows int
	Samples    int
}

// shard returns data-parallel shard d of gdata. The worker's hot path
// slices through its arena instead (zero-alloc); this allocating form is
// kept for tests and external callers.
func (b Batch) shard(d, gdata int) Batch {
	per := b.Samples / gdata
	lo, hi := d*per, (d+1)*per
	return Batch{
		Input:      b.Input.Slice(lo*b.SampleRows, hi*b.SampleRows),
		Targets:    b.Targets[lo*b.SampleRows : hi*b.SampleRows],
		SampleRows: b.SampleRows,
		Samples:    per,
	}
}

// Builder constructs a fresh, deterministically initialized model. It is
// called once per rank; every invocation must produce identical parameters
// (use a fixed RNG seed), mirroring how every GPU loads the same checkpoint.
type Builder func() *nn.Model

// OptBuilder constructs a fresh optimizer per rank.
type OptBuilder func() optim.Optimizer

// Result aggregates a training run's outputs.
type Result struct {
	// Losses holds the mean unscaled loss of each batch (averaged over
	// data-parallel groups).
	Losses []float64
	// SkippedSteps counts loss-scale overflow skips.
	SkippedSteps int
	// Fabric exposes traffic statistics for assertions on communication
	// volume (e.g. compressed vs dense all-reduce payloads).
	Fabric *comm.Fabric
}

// Train runs len(batches) training iterations under the given layout and
// returns per-batch losses. pr may be nil for unpruned dense training.
func Train(cfg Config, build Builder, optb OptBuilder, pr *prune.Result, batches []Batch) Result {
	validate(cfg, batches)
	f := comm.NewFabric(cfg.GPUs())
	losses := make([][]float64, cfg.GPUs())
	skips := make([]int, cfg.GPUs())

	var wg sync.WaitGroup
	for r := 0; r < cfg.GPUs(); r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			w := newWorker(cfg, f.Rank(r), build, optb, pr)
			losses[r], skips[r] = w.run(batches)
		}(r)
	}
	wg.Wait()

	res := Result{Fabric: f, SkippedSteps: skips[lastStageRank(cfg, 0)]}
	res.Losses = losses[lastStageRank(cfg, 0)]
	return res
}

func lastStageRank(cfg Config, dataGroup int) int {
	return dataGroup*cfg.Ginter + cfg.Ginter - 1
}

func validate(cfg Config, batches []Batch) {
	if cfg.Ginter < 1 || cfg.Gdata < 1 || cfg.Microbatch < 1 {
		panic(fmt.Sprintf("axonn: bad config %+v", cfg))
	}
	for _, b := range batches {
		if b.Samples%cfg.Gdata != 0 {
			panic(fmt.Sprintf("axonn: batch of %d samples not divisible by Gdata=%d", b.Samples, cfg.Gdata))
		}
		shard := b.Samples / cfg.Gdata
		if shard%cfg.Microbatch != 0 {
			panic(fmt.Sprintf("axonn: shard of %d samples not divisible by microbatch=%d", shard, cfg.Microbatch))
		}
	}
}

// worker is one rank: a pipeline stage within a data-parallel group.
type worker struct {
	cfg   Config
	rk    *comm.Rank
	stage int
	dgrp  int

	model *nn.Model // this stage's layers only
	state *core.ModelState

	stageGroup []int // ranks holding the same stage across data groups
	allRanks   []int
	lossGroup  []int // last-stage ranks

	arena       *tensor.Arena
	caches      map[int][]any // microbatch -> per-layer caches
	cacheFree   [][]any       // recycled cache slices
	flagBuf     []float32     // overflow-consensus payload
	lossBuf     []float32     // loss-average payload
	first, last bool

	// Per-batch state (reset by trainBatch; fields rather than closure
	// captures so the steady-state batch loop does not allocate).
	shardIn      *tensor.Tensor
	shardTargets []int
	mCount       int
	gradScale    float32
	batchLoss    float64
	fwdDone      int
	bwdDone      int
	injected     int
}

func newWorker(cfg Config, rk *comm.Rank, build Builder, optb OptBuilder, pr *prune.Result) *worker {
	stage := rk.ID() % cfg.Ginter
	dgrp := rk.ID() / cfg.Ginter

	full := build()
	lo, hi := partition(len(full.Layers), cfg.Ginter, stage)
	stageModel := &nn.Model{Name: fmt.Sprintf("%s[%d:%d]", full.Name, lo, hi), Layers: full.Layers[lo:hi]}
	state := core.NewModelState(stageModel, optb(), cfg.Mode, pr)
	state.ClipNorm = cfg.ClipNorm
	if cfg.InitialLossScale > 0 {
		state.Scaler.Scale = cfg.InitialLossScale
	}

	w := &worker{
		cfg: cfg, rk: rk, stage: stage, dgrp: dgrp,
		model: stageModel, state: state,
		arena:   tensor.NewArena(),
		caches:  make(map[int][]any),
		flagBuf: make([]float32, 1),
		lossBuf: make([]float32, 1),
		first:   stage == 0,
		last:    stage == cfg.Ginter-1,
	}
	for d := 0; d < cfg.Gdata; d++ {
		w.stageGroup = append(w.stageGroup, d*cfg.Ginter+stage)
		w.lossGroup = append(w.lossGroup, lastStageRank(cfg, d))
	}
	for r := 0; r < cfg.GPUs(); r++ {
		w.allRanks = append(w.allRanks, r)
	}
	return w
}

// partition splits n layers into g contiguous chunks (earlier chunks get
// the remainder, matching AxoNN's contiguous layer assignment).
func partition(n, g, idx int) (lo, hi int) {
	if g > n {
		panic(fmt.Sprintf("axonn: %d stages for %d layers", g, n))
	}
	base, rem := n/g, n%g
	lo = idx*base + min(idx, rem)
	hi = lo + base
	if idx < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (w *worker) run(batches []Batch) ([]float64, int) {
	var losses []float64
	for _, b := range batches {
		losses = append(losses, w.trainBatch(b))
	}
	return losses, w.state.SkippedSteps()
}

// getCaches pops a recycled per-layer cache slice (or makes one).
func (w *worker) getCaches() []any {
	if l := len(w.cacheFree); l > 0 {
		c := w.cacheFree[l-1]
		w.cacheFree = w.cacheFree[:l-1]
		return c
	}
	return make([]any, len(w.model.Layers))
}

func (w *worker) putCaches(c []any) {
	for i := range c {
		c[i] = nil
	}
	w.cacheFree = append(w.cacheFree, c)
}

// microInput views microbatch mb of this rank's shard: a sample spans
// SampleRows rows for token models and one dim-0 entry for image/vector
// models (SampleRows = 1).
func (w *worker) microInput(mb int, rowsPerMB int) *tensor.Tensor {
	return w.arena.SliceOf(w.shardIn, mb*rowsPerMB, (mb+1)*rowsPerMB)
}

func (w *worker) microTargets(mb, rowsPerMB int) []int {
	lo := mb * rowsPerMB
	return w.shardTargets[lo : lo+rowsPerMB]
}

// forward runs one microbatch through this stage, then either starts the
// backward (last stage) or ships the activation downstream.
func (w *worker) forward(mb int, x *tensor.Tensor, rowsPerMB int) {
	caches := w.getCaches()
	y := w.model.ForwardArena(w.arena, x, true, caches)
	w.caches[mb] = caches
	w.fwdDone++
	if w.last {
		loss, grad := nn.CrossEntropyArena(w.arena, y, w.microTargets(mb, rowsPerMB))
		w.batchLoss += loss / float64(w.mCount)
		tensor.Scale(grad, w.gradScale)
		w.backward(mb, grad)
		w.bwdDone++
	} else {
		w.rk.Send(w.rk.ID()+1, comm.TagActivation, mb, y.Data(), y.Shape()...)
	}
}

func (w *worker) backward(mb int, grad *tensor.Tensor) {
	caches, ok := w.caches[mb]
	if !ok {
		panic(fmt.Sprintf("axonn: gradient for unknown microbatch %d on rank %d", mb, w.rk.ID()))
	}
	delete(w.caches, mb)
	gin := w.model.BackwardArena(w.arena, caches, grad, w.state.GradHook())
	w.putCaches(caches)
	if !w.first {
		w.rk.Send(w.rk.ID()-1, comm.TagGradient, mb, gin.Data(), gin.Shape()...)
	}
}

// trainBatch drives one batch through the pipeline with message-driven
// scheduling, reduces gradients across the data-parallel group, and steps.
// The entire steady-state path — shard views, activations, caches,
// collective chunks — runs on recycled memory; the arena reset at the end
// is safe because the overflow-consensus collective below is a global
// barrier (no peer still holds references into this batch's payloads).
func (w *worker) trainBatch(global Batch) float64 {
	cfg := w.cfg
	per := global.Samples / cfg.Gdata
	rowsShard := per * global.SampleRows
	lo := w.dgrp * rowsShard
	w.shardIn = w.arena.SliceOf(global.Input, lo, lo+rowsShard)
	w.shardTargets = global.Targets[lo : lo+rowsShard]

	m := per / cfg.Microbatch
	w.mCount = m
	w.model.ZeroGrads()

	// Loss-gradient normalization: each microbatch's CrossEntropy gradient
	// is a mean over its own rows; scaling by 1/(M·Gdata) makes the summed,
	// all-reduced gradient the mean over the global batch.
	w.gradScale = w.state.LossScale() / float32(m*cfg.Gdata)
	w.batchLoss = 0
	w.fwdDone, w.bwdDone, w.injected = 0, 0, 0
	rowsPerMB := cfg.Microbatch * global.SampleRows

	// Warmup: stage 0 injects up to Ginter forwards (1F1B's in-flight
	// bound — exactly the memory-limiting behaviour AxoNN manages). With a
	// single stage there is no pipeline and every microbatch runs inline.
	if w.first {
		for w.injected < m && (w.injected < cfg.Ginter || w.last) {
			w.forward(w.injected, w.microInput(w.injected, rowsPerMB), rowsPerMB)
			w.injected++
		}
	}

	// Message-driven loop: process whatever arrives (§II-E).
	for w.fwdDone < m || w.bwdDone < m {
		msg := w.rk.Recv()
		switch msg.Tag {
		case comm.TagActivation:
			w.forward(msg.MB, w.arena.Wrap(msg.Data, msg.Shape...), rowsPerMB)
		case comm.TagGradient:
			w.backward(msg.MB, w.arena.Wrap(msg.Data, msg.Shape...))
			w.bwdDone++
			if w.first && w.injected < m {
				w.forward(w.injected, w.microInput(w.injected, rowsPerMB), rowsPerMB)
				w.injected++
			}
		default:
			panic(fmt.Sprintf("axonn: unexpected message tag %v", msg.Tag))
		}
	}

	// Data-parallel phase: all-reduce the (compressed under SAMO) fp16
	// gradient buffers across the stage group — §IV-A.
	for _, buf := range w.state.ReduceBuffers() {
		if cfg.OrderedReduce {
			w.rk.AllReduceOrdered(w.stageGroup, buf)
		} else {
			w.rk.AllReduce(w.stageGroup, buf)
		}
	}

	// Global overflow consensus so every rank agrees to step or skip. This
	// collective doubles as the batch-end barrier that makes the arena
	// reset below safe.
	w.flagBuf[0] = 0
	if w.state.Overflow() {
		w.flagBuf[0] = 1
	}
	w.rk.AllReduceOrdered(w.allRanks, w.flagBuf)
	w.state.StepGiven(w.flagBuf[0] > 0)

	// Average the reported loss across data-parallel groups (float64 stays
	// intact when there is only one group).
	if w.last && cfg.Gdata > 1 {
		w.lossBuf[0] = float32(w.batchLoss)
		w.rk.AllReduceOrdered(w.lossGroup, w.lossBuf)
		w.batchLoss = float64(w.lossBuf[0]) / float64(cfg.Gdata)
	}

	w.shardIn = nil
	w.shardTargets = nil
	w.arena.Reset()
	return w.batchLoss
}

// Evaluate runs a forward-only pass over the batch on a single rank layout
// (no parallelism needed for evaluation at test scale) and returns the mean
// loss. Provided for symmetry with core.Trainer.EvalLoss.
func Evaluate(model *nn.Model, b Batch) float64 {
	y, _ := model.Forward(b.Input, false)
	loss, _ := nn.CrossEntropy(y, b.Targets)
	return loss
}
