// Package axonn is the working reimplementation of the parallel training
// framework the paper builds on (Singh & Bhatele, IPDPS'22) with the SAMO
// optimizations integrated: a hybrid of inter-layer (pipeline) and data
// parallelism over Ginter × Gdata ranks, asynchronous point-to-point
// messaging, message-driven microbatch scheduling, mixed precision with
// dynamic loss scaling, and — when SAMO is enabled — layer-granular gradient
// compression plus compressed data-parallel all-reduces.
//
// Ranks are goroutines and links are channels (internal/comm), so this
// engine really trains models in parallel in-process. It is the correctness
// half of the reproduction: the performance half at Summit scale lives in
// internal/simulate.
package axonn

import (
	"fmt"
	"sync"

	"github.com/sparse-dl/samo/internal/comm"
	"github.com/sparse-dl/samo/internal/core"
	"github.com/sparse-dl/samo/internal/nn"
	"github.com/sparse-dl/samo/internal/optim"
	"github.com/sparse-dl/samo/internal/prune"
	"github.com/sparse-dl/samo/internal/tensor"
)

// Config describes the hybrid-parallel layout and training options.
type Config struct {
	Ginter int // pipeline stages per model instance
	Gdata  int // data-parallel model instances
	// Microbatch is the samples per microbatch; a data group's batch shard
	// is split into shardSize/Microbatch microbatches.
	Microbatch int
	// Mode selects Dense mixed precision or SAMO-compressed model states.
	Mode core.Mode
	// OrderedReduce selects the rank-ordered all-reduce (bitwise
	// reproducible against a serial sum) instead of the bandwidth-optimal
	// ring. Numerically both are correct; tests use Ordered.
	OrderedReduce bool
	// ClipNorm forwards to core.ModelState (0 = off).
	ClipNorm float64
	// InitialLossScale overrides the dynamic loss scaler's starting scale
	// when positive (tests use it to provoke overflow skips).
	InitialLossScale float64
}

// GPUs returns the total rank count.
func (c Config) GPUs() int { return c.Ginter * c.Gdata }

// Batch is one global training batch. Input's leading dimension holds
// Samples × SampleRows rows (SampleRows = sequence length for token models,
// 1 for image/vector models); Targets has one entry per row.
type Batch struct {
	Input      *tensor.Tensor
	Targets    []int
	SampleRows int
	Samples    int
}

// shard returns data-parallel shard d of gdata.
func (b Batch) shard(d, gdata int) Batch {
	per := b.Samples / gdata
	lo, hi := d*per, (d+1)*per
	return Batch{
		Input:      b.Input.Slice(lo*b.SampleRows, hi*b.SampleRows),
		Targets:    b.Targets[lo*b.SampleRows : hi*b.SampleRows],
		SampleRows: b.SampleRows,
		Samples:    per,
	}
}

// Builder constructs a fresh, deterministically initialized model. It is
// called once per rank; every invocation must produce identical parameters
// (use a fixed RNG seed), mirroring how every GPU loads the same checkpoint.
type Builder func() *nn.Model

// OptBuilder constructs a fresh optimizer per rank.
type OptBuilder func() optim.Optimizer

// Result aggregates a training run's outputs.
type Result struct {
	// Losses holds the mean unscaled loss of each batch (averaged over
	// data-parallel groups).
	Losses []float64
	// SkippedSteps counts loss-scale overflow skips.
	SkippedSteps int
	// Fabric exposes traffic statistics for assertions on communication
	// volume (e.g. compressed vs dense all-reduce payloads).
	Fabric *comm.Fabric
}

// Train runs len(batches) training iterations under the given layout and
// returns per-batch losses. pr may be nil for unpruned dense training.
func Train(cfg Config, build Builder, optb OptBuilder, pr *prune.Result, batches []Batch) Result {
	validate(cfg, batches)
	f := comm.NewFabric(cfg.GPUs())
	losses := make([][]float64, cfg.GPUs())
	skips := make([]int, cfg.GPUs())

	var wg sync.WaitGroup
	for r := 0; r < cfg.GPUs(); r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			w := newWorker(cfg, f.Rank(r), build, optb, pr)
			losses[r], skips[r] = w.run(batches)
		}(r)
	}
	wg.Wait()

	res := Result{Fabric: f, SkippedSteps: skips[lastStageRank(cfg, 0)]}
	res.Losses = losses[lastStageRank(cfg, 0)]
	return res
}

func lastStageRank(cfg Config, dataGroup int) int {
	return dataGroup*cfg.Ginter + cfg.Ginter - 1
}

func validate(cfg Config, batches []Batch) {
	if cfg.Ginter < 1 || cfg.Gdata < 1 || cfg.Microbatch < 1 {
		panic(fmt.Sprintf("axonn: bad config %+v", cfg))
	}
	for _, b := range batches {
		if b.Samples%cfg.Gdata != 0 {
			panic(fmt.Sprintf("axonn: batch of %d samples not divisible by Gdata=%d", b.Samples, cfg.Gdata))
		}
		shard := b.Samples / cfg.Gdata
		if shard%cfg.Microbatch != 0 {
			panic(fmt.Sprintf("axonn: shard of %d samples not divisible by microbatch=%d", shard, cfg.Microbatch))
		}
	}
}

// worker is one rank: a pipeline stage within a data-parallel group.
type worker struct {
	cfg   cfgView
	rk    *comm.Rank
	stage int
	dgrp  int

	model *nn.Model // this stage's layers only
	state *core.ModelState

	stageGroup []int // ranks holding the same stage across data groups
	allRanks   []int
	lossGroup  []int // last-stage ranks

	caches map[int][]any // microbatch -> per-layer caches
}

type cfgView struct {
	Config
}

func newWorker(cfg Config, rk *comm.Rank, build Builder, optb OptBuilder, pr *prune.Result) *worker {
	stage := rk.ID() % cfg.Ginter
	dgrp := rk.ID() / cfg.Ginter

	full := build()
	lo, hi := partition(len(full.Layers), cfg.Ginter, stage)
	stageModel := &nn.Model{Name: fmt.Sprintf("%s[%d:%d]", full.Name, lo, hi), Layers: full.Layers[lo:hi]}
	state := core.NewModelState(stageModel, optb(), cfg.Mode, pr)
	state.ClipNorm = cfg.ClipNorm
	if cfg.InitialLossScale > 0 {
		state.Scaler.Scale = cfg.InitialLossScale
	}

	w := &worker{
		cfg: cfgView{cfg}, rk: rk, stage: stage, dgrp: dgrp,
		model: stageModel, state: state,
		caches: make(map[int][]any),
	}
	for d := 0; d < cfg.Gdata; d++ {
		w.stageGroup = append(w.stageGroup, d*cfg.Ginter+stage)
		w.lossGroup = append(w.lossGroup, lastStageRank(cfg, d))
	}
	for r := 0; r < cfg.GPUs(); r++ {
		w.allRanks = append(w.allRanks, r)
	}
	return w
}

// partition splits n layers into g contiguous chunks (earlier chunks get
// the remainder, matching AxoNN's contiguous layer assignment).
func partition(n, g, idx int) (lo, hi int) {
	if g > n {
		panic(fmt.Sprintf("axonn: %d stages for %d layers", g, n))
	}
	base, rem := n/g, n%g
	lo = idx*base + min(idx, rem)
	hi = lo + base
	if idx < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (w *worker) run(batches []Batch) ([]float64, int) {
	var losses []float64
	for _, b := range batches {
		losses = append(losses, w.trainBatch(b.shard(w.dgrp, w.cfg.Gdata)))
	}
	return losses, w.state.SkippedSteps()
}

// trainBatch drives one batch through the pipeline with message-driven
// scheduling, reduces gradients across the data-parallel group, and steps.
func (w *worker) trainBatch(shard Batch) float64 {
	cfg := w.cfg
	m := shard.Samples / cfg.Microbatch
	w.model.ZeroGrads()

	// Loss-gradient normalization: each microbatch's CrossEntropy gradient
	// is a mean over its own rows; scaling by 1/(M·Gdata) makes the summed,
	// all-reduced gradient the mean over the global batch.
	gradScale := w.state.LossScale() / float32(m*cfg.Gdata)

	first, last := w.stage == 0, w.stage == cfg.Ginter-1
	next, prev := w.rk.ID()+1, w.rk.ID()-1

	// microInput slices microbatch mb along dim 0: a sample spans
	// SampleRows rows for token models ((samples·seq, 1) inputs) and one
	// dim-0 entry for image/vector models (SampleRows = 1).
	rowsPerMB := cfg.Microbatch * shard.SampleRows
	microInput := func(mb int) *tensor.Tensor {
		return shard.Input.Slice(mb*rowsPerMB, (mb+1)*rowsPerMB)
	}
	microTargets := func(mb int) []int {
		lo := mb * cfg.Microbatch * shard.SampleRows
		return shard.Targets[lo : lo+cfg.Microbatch*shard.SampleRows]
	}

	var batchLoss float64
	fwdDone, bwdDone := 0, 0
	injected := 0

	forward := func(mb int, x *tensor.Tensor) {
		y, caches := w.model.Forward(x, true)
		w.caches[mb] = caches
		fwdDone++
		if last {
			loss, grad := nn.CrossEntropy(y, microTargets(mb))
			batchLoss += loss / float64(m)
			tensor.Scale(grad, gradScale)
			w.backward(mb, grad, first, prev)
			bwdDone++
		} else {
			w.rk.Send(next, comm.TagActivation, mb, y.Data(), y.Shape()...)
		}
	}

	// Warmup: stage 0 injects up to Ginter forwards (1F1B's in-flight
	// bound — exactly the memory-limiting behaviour AxoNN manages). With a
	// single stage there is no pipeline and every microbatch runs inline.
	if first {
		for injected < m && (injected < cfg.Ginter || last) {
			forward(injected, microInput(injected))
			injected++
		}
	}

	// Message-driven loop: process whatever arrives (§II-E).
	for fwdDone < m || bwdDone < m {
		msg := w.rk.Recv()
		switch msg.Tag {
		case comm.TagActivation:
			forward(msg.MB, tensor.FromSlice(msg.Data, msg.Shape...))
		case comm.TagGradient:
			w.backward(msg.MB, tensor.FromSlice(msg.Data, msg.Shape...), first, prev)
			bwdDone++
			if first && injected < m {
				forward(injected, microInput(injected))
				injected++
			}
		default:
			panic(fmt.Sprintf("axonn: unexpected message tag %v", msg.Tag))
		}
	}

	// Data-parallel phase: all-reduce the (compressed under SAMO) fp16
	// gradient buffers across the stage group — §IV-A.
	for _, buf := range w.state.ReduceBuffers() {
		if cfg.OrderedReduce {
			w.rk.AllReduceOrdered(w.stageGroup, buf)
		} else {
			w.rk.AllReduce(w.stageGroup, buf)
		}
	}

	// Global overflow consensus so every rank agrees to step or skip.
	flag := []float32{0}
	if w.state.Overflow() {
		flag[0] = 1
	}
	w.rk.AllReduceOrdered(w.allRanks, flag)
	w.state.StepGiven(flag[0] > 0)

	// Average the reported loss across data-parallel groups (float64 stays
	// intact when there is only one group).
	if w.stage == cfg.Ginter-1 && cfg.Gdata > 1 {
		lbuf := []float32{float32(batchLoss)}
		w.rk.AllReduceOrdered(w.lossGroup, lbuf)
		batchLoss = float64(lbuf[0]) / float64(cfg.Gdata)
	}

	// Release activation caches.
	for k := range w.caches {
		delete(w.caches, k)
	}
	return batchLoss
}

func (w *worker) backward(mb int, grad *tensor.Tensor, first bool, prev int) {
	caches, ok := w.caches[mb]
	if !ok {
		panic(fmt.Sprintf("axonn: gradient for unknown microbatch %d on rank %d", mb, w.rk.ID()))
	}
	delete(w.caches, mb)
	gin := w.model.Backward(caches, grad, w.state.GradHook())
	if !first {
		w.rk.Send(prev, comm.TagGradient, mb, gin.Data(), gin.Shape()...)
	}
}

// Evaluate runs a forward-only pass over the batch on a single rank layout
// (no parallelism needed for evaluation at test scale) and returns the mean
// loss. Provided for symmetry with core.Trainer.EvalLoss.
func Evaluate(model *nn.Model, b Batch) float64 {
	y, _ := model.Forward(b.Input, false)
	loss, _ := nn.CrossEntropy(y, b.Targets)
	return loss
}
