// Package axonn is the working reimplementation of the parallel training
// framework the paper builds on (Singh & Bhatele, IPDPS'22) with the SAMO
// optimizations integrated: a hybrid of inter-layer (pipeline) and data
// parallelism over Ginter × Gdata ranks, asynchronous point-to-point
// messaging, message-driven microbatch scheduling, mixed precision with
// dynamic loss scaling, and — when SAMO is enabled — layer-granular gradient
// compression plus compressed data-parallel all-reduces.
//
// Ranks are goroutines and links are channels (internal/comm), so this
// engine really trains models in parallel in-process. It is the correctness
// half of the reproduction: the performance half at Summit scale lives in
// internal/simulate.
//
// Each worker owns a tensor arena that is reset at the end of every batch
// (the global overflow-consensus collective is a barrier, so no peer can
// still be reading this rank's activation or gradient payloads when the
// arena recycles them). Together with the pooled collective buffers in
// internal/comm and the cache pools in internal/nn, a steady-state training
// batch performs no heap allocations.
package axonn

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/sparse-dl/samo/internal/ckpt"
	"github.com/sparse-dl/samo/internal/comm"
	"github.com/sparse-dl/samo/internal/comm/tcp"
	"github.com/sparse-dl/samo/internal/core"
	"github.com/sparse-dl/samo/internal/nn"
	"github.com/sparse-dl/samo/internal/optim"
	"github.com/sparse-dl/samo/internal/prune"
	"github.com/sparse-dl/samo/internal/tensor"
)

// Config describes the hybrid-parallel layout and training options.
type Config struct {
	Ginter int // pipeline stages per model instance
	Gdata  int // data-parallel model instances
	// Microbatch is the samples per microbatch; a data group's batch shard
	// is split into shardSize/Microbatch microbatches.
	Microbatch int
	// Mode selects Dense mixed precision or SAMO-compressed model states.
	Mode core.Mode
	// OrderedReduce selects the rank-ordered all-reduce (bitwise
	// reproducible against a serial sum) instead of the bandwidth-optimal
	// ring. Numerically both are correct; tests use Ordered.
	OrderedReduce bool
	// OverlapReduce launches each gradient bucket's data-parallel all-reduce
	// asynchronously the moment the bucket's last layer finishes its final
	// backward, hiding communication behind the remaining backward compute
	// (the paper's §IV-A overlap, at bucket granularity). All handles are
	// drained before the overflow consensus. Off, the engine reduces the
	// same buckets serially after backward. Both paths consume the identical
	// bucket plan in the identical order, so losses are bitwise-identical
	// with overlap on vs off — on every transport, at every worker count.
	// Composes with OrderedReduce (the reduction algorithm is orthogonal to
	// when it launches).
	OverlapReduce bool
	// ReduceBucketElems caps each all-reduce bucket's element count,
	// overriding core.DefaultReduceBucketElems when positive. Smaller
	// buckets pipeline more aggressively behind backward; larger ones
	// amortize per-collective latency.
	ReduceBucketElems int
	// ClipNorm forwards to core.ModelState (0 = off).
	ClipNorm float64
	// PruneSchedule, when non-nil, runs gradual magnitude pruning during
	// training (core.GradualPruner): at each schedule event — evaluated on
	// the global batch index, after the step's overflow consensus — every
	// replica shrinks its patterns in place to the event's sparsity.
	// Selection is a pure function of (step, θ32), which is bitwise-identical
	// across replicas at that point, so all ranks shrink identically with no
	// extra communication. Checkpoints written after an event carry the
	// shrunk pattern; resuming from one written before an event replays the
	// event deterministically.
	PruneSchedule *prune.Schedule
	// InitialLossScale overrides the dynamic loss scaler's starting scale
	// when positive (tests use it to provoke overflow skips).
	InitialLossScale float64

	// Fault, when non-nil, arms a deterministic fault-injection plan on the
	// FIRST fabric only — a restart replaces the failed hardware, so the
	// recovery fabric runs clean. Chaos tests use it; production leaves nil.
	Fault *comm.FaultPlan
	// CollectiveDeadline bounds every blocking receive (comm.SetDeadline):
	// the backstop detector for stalled or silently dead peers. It must
	// comfortably exceed a batch plus a checkpoint fsync; 0 disables it.
	CollectiveDeadline time.Duration
	// CheckpointDir enables crash-consistent checkpointing when non-empty:
	// the data-group-0 rank of each pipeline stage saves its shard through
	// internal/ckpt after every CheckpointEvery-th batch (and the final
	// one). A checkpoint at step k captures the state AFTER batch k-1.
	CheckpointDir string
	// CheckpointEvery is the save period in batches (default 1).
	CheckpointEvery int
	// CheckpointKeep is the retention passed to ckpt.Options (minimum 2).
	CheckpointKeep int
	// Resume starts from the newest verified checkpoint in CheckpointDir
	// instead of batch 0; batches before the resume point are not replayed
	// and their Losses entries stay zero (see Result.StartBatch).
	Resume bool
	// MaxRestarts bounds in-process recovery attempts after a fabric abort
	// (rank failure or deadline). 0 means the default of 2; negative
	// disables recovery so the first abort surfaces as Result.Err.
	MaxRestarts int

	// Net, when non-nil, runs the fabric over TCP across multiple
	// cooperating processes instead of in-process channels. This process
	// hosts only its contiguous rank block; checkpointing and Resume
	// require CheckpointDir on a filesystem shared by all processes.
	Net *NetConfig
}

// NetConfig describes a multi-process TCP fabric (see internal/comm/tcp).
// Every process of the run must pass identical Peers and an identical
// training Config apart from Proc.
type NetConfig struct {
	// Peers lists one listen address per process; the fabric's ranks are
	// split into contiguous blocks over the processes in this order.
	Peers []string
	// Proc is this process's index into Peers.
	Proc int
	// DialTimeout bounds fabric construction per attempt, including the
	// wait for a crashed peer process to be restarted during recovery
	// (0 = the transport default of 15s).
	DialTimeout time.Duration
}

// tag names the training configuration for the checkpoint manifest: a
// checkpoint only resumes into the same parallel layout and mode.
func (c Config) tag() string {
	t := fmt.Sprintf("axonn:g%dx%d:mb%d:%v", c.Ginter, c.Gdata, c.Microbatch, c.Mode)
	if s := c.PruneSchedule; s != nil {
		scope := "layer"
		if s.Global {
			scope = "global"
		}
		t += fmt.Sprintf(":gp%g-%g@%d-%d/%d:%s",
			s.Initial, s.Final, s.BeginStep, s.EndStep, s.Frequency, scope)
	}
	return t
}

// GPUs returns the total rank count.
func (c Config) GPUs() int { return c.Ginter * c.Gdata }

// Batch is one global training batch. Input's leading dimension holds
// Samples × SampleRows rows (SampleRows = sequence length for token models,
// 1 for image/vector models); Targets has one entry per row.
type Batch struct {
	Input      *tensor.Tensor
	Targets    []int
	SampleRows int
	Samples    int
}

// shard returns data-parallel shard d of gdata. The worker's hot path
// slices through its arena instead (zero-alloc); this allocating form is
// kept for tests and external callers.
func (b Batch) shard(d, gdata int) Batch {
	per := b.Samples / gdata
	lo, hi := d*per, (d+1)*per
	return Batch{
		Input:      b.Input.Slice(lo*b.SampleRows, hi*b.SampleRows),
		Targets:    b.Targets[lo*b.SampleRows : hi*b.SampleRows],
		SampleRows: b.SampleRows,
		Samples:    per,
	}
}

// Builder constructs a fresh, deterministically initialized model. It is
// called once per rank; every invocation must produce identical parameters
// (use a fixed RNG seed), mirroring how every GPU loads the same checkpoint.
type Builder func() *nn.Model

// OptBuilder constructs a fresh optimizer per rank.
type OptBuilder func() optim.Optimizer

// Result aggregates a training run's outputs.
type Result struct {
	// Losses holds the mean unscaled loss of each batch (averaged over
	// data-parallel groups), indexed by global batch. Entries before
	// StartBatch were not trained in this process (Resume) and stay zero.
	Losses []float64
	// SkippedSteps counts loss-scale overflow skips (cumulative across a
	// resume, restored from the checkpoint).
	SkippedSteps int
	// Fabric exposes traffic statistics for assertions on communication
	// volume (e.g. compressed vs dense all-reduce payloads). After a
	// recovery it is the LAST fabric; aborted fabrics are closed and
	// discarded with the hardware they model.
	Fabric *comm.Fabric
	// Err is the terminal error: bad config, or a fabric abort that
	// exhausted MaxRestarts. A successful (possibly recovered) run has nil.
	Err error
	// Restarts counts in-process recoveries that were needed.
	Restarts int
	// StartBatch is the first batch index actually trained (non-zero under
	// Resume).
	StartBatch int
	// Warnings surfaces non-fatal degradations: checkpoints skipped as
	// corrupt or incomplete during resume, and each abort that was
	// recovered from.
	Warnings []string
	// StageStates holds each pipeline stage's serialized ModelState
	// (core snapshot bytes) at the end of a successful run, from the
	// data-group-0 replica. Recovery goldens compare these bitwise.
	StageStates [][]byte
}

// Train runs len(batches) training iterations under the given layout and
// returns per-batch losses. pr may be nil for unpruned dense training.
// Config errors and fabric aborts surface in Result.Err; when checkpointing
// is enabled, a fabric abort (injected fault, rank failure, deadline) is
// recovered in-process: the fabric is torn down, a fresh one built, state
// reloaded from the newest durable checkpoint, and the remaining batches
// replayed deterministically — the recovered run is bitwise-identical to an
// uninterrupted one.
func Train(cfg Config, build Builder, optb OptBuilder, pr *prune.Result, batches []Batch) Result {
	var res Result
	if err := validate(cfg, batches); err != nil {
		res.Err = err
		return res
	}
	if cfg.Mode == core.SAMO && pr == nil {
		res.Err = fmt.Errorf("axonn: SAMO mode requires a pruning result")
		return res
	}
	// Probe-build once so a partition mismatch is a config error here, not
	// a panic inside a rank goroutine.
	if n := len(build().Layers); cfg.Ginter > n {
		res.Err = fmt.Errorf("axonn: %d pipeline stages for %d layers", cfg.Ginter, n)
		return res
	}

	var mgr *ckpt.Manager
	every := cfg.CheckpointEvery
	if every < 1 {
		every = 1
	}
	if cfg.CheckpointDir != "" {
		var err error
		mgr, err = ckpt.New(ckpt.Options{
			Dir:    cfg.CheckpointDir,
			Shards: cfg.Ginter,
			Keep:   cfg.CheckpointKeep,
			Tag:    cfg.tag(),
		})
		if err != nil {
			res.Err = err
			return res
		}
	}

	maxRestarts := cfg.MaxRestarts
	switch {
	case maxRestarts == 0:
		maxRestarts = 2
	case maxRestarts < 0:
		maxRestarts = 0
	}

	start := 0
	if cfg.Resume && mgr != nil {
		if step, warns, ok := mgr.LatestStep(); ok {
			res.Warnings = append(res.Warnings, warns...)
			start = min(step, len(batches))
		}
	}
	res.StartBatch = start
	res.Losses = make([]float64, len(batches))

	for attempt := 0; ; attempt++ {
		f, ferr := newFabric(cfg)
		if ferr != nil {
			res.Err = ferr
			return res
		}
		if attempt == 0 {
			f.InjectFaults(cfg.Fault)
		}
		if cfg.CollectiveDeadline > 0 {
			f.SetDeadline(cfg.CollectiveDeadline)
		}
		workers := make([]*worker, cfg.GPUs())
		errs := make([]error, cfg.GPUs())
		var wg sync.WaitGroup
		for r := 0; r < cfg.GPUs(); r++ {
			if !f.IsLocal(r) {
				continue // hosted by a peer process
			}
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				rk := f.Rank(r)
				// Wind down the async reduce lane when the rank finishes or
				// fails. Registered BEFORE the recover defer (LIFO) so a
				// panic poisons the fabric first — a worker blocked inside a
				// collective then unwinds instead of deadlocking CloseAsync.
				defer rk.CloseAsync()
				// A panic anywhere in the stack must poison the fabric, or
				// the surviving ranks deadlock on the dead one's messages.
				defer func() {
					if p := recover(); p != nil {
						errs[r] = rk.Fail(fmt.Errorf("panic: %v", p))
					}
				}()
				w := newWorker(cfg, rk, build, optb, pr)
				workers[r] = w
				errs[r] = w.runFrom(batches, start, mgr, every, res.Losses)
			}(r)
		}
		wg.Wait()

		// Success is judged by the local workers, not the fabric: once every
		// local rank has trained every batch the attempt is complete, and a
		// poison arriving afterwards is teardown noise — over TCP, a peer
		// process that finishes first and exits EOFs its sockets, which must
		// not turn a completed run into a spurious restart. The fabric error
		// is consulted only when a worker actually failed, because it records
		// the first (root-cause) poison rather than a secondary unwind.
		var err error
		for _, e := range errs {
			if e != nil {
				err = e
				break
			}
		}
		if err != nil {
			if fe := f.Err(); fe != nil {
				err = fe
			}
		}
		if err == nil {
			res.Fabric = f
			if lw := workers[lastStageRank(cfg, 0)]; lw != nil {
				res.SkippedSteps = lw.state.SkippedSteps()
			}
			res.StageStates = make([][]byte, cfg.Ginter)
			for stage := 0; stage < cfg.Ginter; stage++ {
				w := workers[stage] // data-group-0 replica of this stage
				if w == nil {
					continue // lives in a peer process
				}
				var buf bytes.Buffer
				if _, serr := w.state.Save(&buf); serr != nil {
					res.Err = serr
					return res
				}
				res.StageStates[stage] = buf.Bytes()
			}
			return res
		}

		f.Close() // poison stragglers (none left) and drain pooled buffers
		if !recoverable(err) || attempt >= maxRestarts {
			res.Err = err
			res.Fabric = f
			return res
		}
		res.Restarts++
		res.Warnings = append(res.Warnings,
			fmt.Sprintf("axonn: recovering from abort (attempt %d): %v", attempt+1, err))
		start = 0
		if mgr != nil {
			if step, warns, ok := mgr.LatestStep(); ok {
				res.Warnings = append(res.Warnings, warns...)
				start = min(step, len(batches))
			}
		}
	}
}

// newFabric builds the attempt's fabric: in-process channels by default, a
// fresh TCP mesh per attempt when cfg.Net is set — recovery replaces the
// connections along with the fabric, waiting (within DialTimeout) for a
// killed peer process to be restarted and re-dial.
func newFabric(cfg Config) (*comm.Fabric, error) {
	if cfg.Net == nil {
		return comm.NewFabric(cfg.GPUs()), nil
	}
	tr, err := tcp.Connect(tcp.Config{
		Addrs:       cfg.Net.Peers,
		Proc:        cfg.Net.Proc,
		Ranks:       cfg.GPUs(),
		DialTimeout: cfg.Net.DialTimeout,
	})
	if err != nil {
		return nil, fmt.Errorf("axonn: building tcp fabric: %w", err)
	}
	return comm.NewFabricOver(tr), nil
}

// recoverable reports whether err is a fabric abort that a restart can heal
// (a failed rank or a tripped deadline) rather than a config or I/O error
// that would just fail again.
func recoverable(err error) bool {
	var rf *comm.RankFailedError
	var de *comm.DeadlineError
	return errors.As(err, &rf) || errors.As(err, &de)
}

func lastStageRank(cfg Config, dataGroup int) int {
	return dataGroup*cfg.Ginter + cfg.Ginter - 1
}

func validate(cfg Config, batches []Batch) error {
	if cfg.Ginter < 1 || cfg.Gdata < 1 || cfg.Microbatch < 1 {
		return fmt.Errorf("axonn: bad config: Ginter=%d Gdata=%d Microbatch=%d (all must be ≥1)",
			cfg.Ginter, cfg.Gdata, cfg.Microbatch)
	}
	if cfg.ClipNorm < 0 {
		return fmt.Errorf("axonn: negative ClipNorm %g", cfg.ClipNorm)
	}
	if cfg.PruneSchedule != nil {
		if err := cfg.PruneSchedule.Validate(); err != nil {
			return fmt.Errorf("axonn: %w", err)
		}
	}
	for i, b := range batches {
		if b.Samples%cfg.Gdata != 0 {
			return fmt.Errorf("axonn: batch %d of %d samples not divisible by Gdata=%d", i, b.Samples, cfg.Gdata)
		}
		shard := b.Samples / cfg.Gdata
		if shard%cfg.Microbatch != 0 {
			return fmt.Errorf("axonn: batch %d shard of %d samples not divisible by microbatch=%d", i, shard, cfg.Microbatch)
		}
	}
	if cfg.Resume && cfg.CheckpointDir == "" {
		return fmt.Errorf("axonn: Resume requires CheckpointDir")
	}
	if net := cfg.Net; net != nil {
		if len(net.Peers) < 1 {
			return fmt.Errorf("axonn: Net.Peers is empty")
		}
		if net.Proc < 0 || net.Proc >= len(net.Peers) {
			return fmt.Errorf("axonn: Net.Proc %d outside [0,%d)", net.Proc, len(net.Peers))
		}
		if cfg.GPUs() < len(net.Peers) {
			return fmt.Errorf("axonn: %d ranks cannot cover %d processes", cfg.GPUs(), len(net.Peers))
		}
	}
	return nil
}

// worker is one rank: a pipeline stage within a data-parallel group.
type worker struct {
	cfg   Config
	rk    *comm.Rank
	stage int
	dgrp  int

	model  *nn.Model // this stage's layers only
	state  *core.ModelState
	pruner *core.GradualPruner // nil without a PruneSchedule

	stageGroup []int // ranks holding the same stage across data groups
	allRanks   []int
	lossGroup  []int // last-stage ranks

	arena       *tensor.Arena
	caches      map[int][]any // microbatch -> per-layer caches
	cacheFree   [][]any       // recycled cache slices
	flagBuf     []float32     // overflow-consensus payload
	lossBuf     []float32     // loss-average payload
	first, last bool

	// Overlapped-reduce state. hook is the state's capture hook, with
	// LayerDone wired to onLayerDone when OverlapReduce is on (bound once
	// here — binding a method value per batch would allocate). buckets is
	// the state's plan; handles is reused across batches.
	hook    nn.GradHook
	buckets []core.ReduceBucket
	handles []*comm.ReduceHandle

	// Per-batch state (reset by trainBatch; fields rather than closure
	// captures so the steady-state batch loop does not allocate).
	shardIn      *tensor.Tensor
	shardTargets []int
	mCount       int
	gradScale    float32
	batchLoss    float64
	fwdDone      int
	bwdDone      int
	injected     int
	launched     int  // buckets whose reduce is in flight this batch
	finalBwd     bool // the currently running backward is the shard's last
}

func newWorker(cfg Config, rk *comm.Rank, build Builder, optb OptBuilder, pr *prune.Result) *worker {
	stage := rk.ID() % cfg.Ginter
	dgrp := rk.ID() / cfg.Ginter

	full := build()
	lo, hi := partition(len(full.Layers), cfg.Ginter, stage)
	stageModel := &nn.Model{Name: fmt.Sprintf("%s[%d:%d]", full.Name, lo, hi), Layers: full.Layers[lo:hi]}
	state := core.NewModelState(stageModel, optb(), cfg.Mode, pr)
	state.ClipNorm = cfg.ClipNorm
	if cfg.InitialLossScale > 0 {
		state.Scaler.Scale = cfg.InitialLossScale
	}

	w := &worker{
		cfg: cfg, rk: rk, stage: stage, dgrp: dgrp,
		model: stageModel, state: state,
		arena:   tensor.NewArena(),
		caches:  make(map[int][]any),
		flagBuf: make([]float32, 1),
		lossBuf: make([]float32, 1),
		first:   stage == 0,
		last:    stage == cfg.Ginter-1,
	}
	for d := 0; d < cfg.Gdata; d++ {
		w.stageGroup = append(w.stageGroup, d*cfg.Ginter+stage)
		w.lossGroup = append(w.lossGroup, lastStageRank(cfg, d))
	}
	for r := 0; r < cfg.GPUs(); r++ {
		w.allRanks = append(w.allRanks, r)
	}
	if cfg.ReduceBucketElems > 0 {
		state.PlanReduceBuckets(cfg.ReduceBucketElems)
	}
	w.hook = state.GradHook()
	w.buckets = state.ReduceBuckets()
	if cfg.OverlapReduce {
		w.hook.LayerDone = w.onLayerDone
	}
	if cfg.PruneSchedule != nil {
		// The schedule was validated with the config; a stage with no
		// prunable parameters gets a no-op pruner.
		w.pruner, _ = core.NewGradualPruner(state, *cfg.PruneSchedule)
	}
	return w
}

// onLayerDone fires from the backward hook after each layer's gradients are
// captured. During the shard's FINAL microbatch backward every earlier
// microbatch has already been fully accumulated, so once layer l completes,
// each bucket whose lowest layer is ≥ l holds its final sum — launch those
// reduces now, while backward still has layers < l to compute. The ready
// set is a plan-order prefix, so launch order (hence accumulation order on
// the wire) is fixed by the plan, never by timing.
func (w *worker) onLayerDone(layer int) {
	if !w.finalBwd {
		return
	}
	for n := w.state.BucketReady(layer); w.launched < n; w.launched++ {
		buf := w.buckets[w.launched].Data
		var h *comm.ReduceHandle
		if w.cfg.OrderedReduce {
			h = w.rk.AllReduceOrderedAsync(w.stageGroup, buf)
		} else {
			h = w.rk.AllReduceAsync(w.stageGroup, buf)
		}
		w.handles = append(w.handles, h)
	}
}

// partition splits n layers into g contiguous chunks (earlier chunks get
// the remainder, matching AxoNN's contiguous layer assignment).
func partition(n, g, idx int) (lo, hi int) {
	if g > n {
		panic(fmt.Sprintf("axonn: %d stages for %d layers", g, n))
	}
	base, rem := n/g, n%g
	lo = idx*base + min(idx, rem)
	hi = lo + base
	if idx < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// runFrom trains batches[start:], loading this stage's shard of checkpoint
// `start` first when resuming. The data-group-0 replica of each stage is
// the checkpoint saver: after the global overflow consensus all replicas
// are bitwise-identical, so one copy per stage suffices, and a checkpoint
// at step i+1 captures the state after batch i. losses is indexed by global
// batch and written only by the data-group-0 last-stage rank.
func (w *worker) runFrom(batches []Batch, start int, mgr *ckpt.Manager, every int, losses []float64) error {
	if w.rk.RemotePeers() {
		// Multi-process run: the processes may briefly disagree about the
		// newest durable checkpoint (a peer can die between its own save
		// and ours). Rank 0 broadcasts the authoritative start step so
		// every process resumes from the same batch.
		w.flagBuf[0] = float32(start)
		if err := w.rk.Broadcast(w.allRanks, 0, w.flagBuf); err != nil {
			return err
		}
		start = int(w.flagBuf[0])
	}
	if start > 0 {
		if err := mgr.Load(start, w.stage, w.state); err != nil {
			return w.rk.Fail(err)
		}
	}
	saver := mgr != nil && w.dgrp == 0
	for i := start; i < len(batches); i++ {
		if err := w.rk.BeginStep(i); err != nil {
			return err
		}
		loss, err := w.trainBatch(batches[i])
		if err != nil {
			return err
		}
		// Gradual-pruning events run after the batch's overflow consensus
		// and optimizer step, so every replica shrinks from identical θ32;
		// a checkpoint at step i+1 then carries the post-event pattern.
		if w.pruner != nil {
			w.pruner.MaybePrune(i)
		}
		if w.last && w.dgrp == 0 {
			losses[i] = loss
		}
		if saver && ((i+1)%every == 0 || i == len(batches)-1) {
			if err := mgr.Save(i+1, w.stage, w.state); err != nil {
				return w.rk.Fail(err)
			}
			if w.stage == 0 {
				if err := mgr.Prune(); err != nil {
					return w.rk.Fail(err)
				}
			}
		}
	}
	return nil
}

// getCaches pops a recycled per-layer cache slice (or makes one).
func (w *worker) getCaches() []any {
	if l := len(w.cacheFree); l > 0 {
		c := w.cacheFree[l-1]
		w.cacheFree = w.cacheFree[:l-1]
		return c
	}
	return make([]any, len(w.model.Layers))
}

func (w *worker) putCaches(c []any) {
	for i := range c {
		c[i] = nil
	}
	w.cacheFree = append(w.cacheFree, c)
}

// microInput views microbatch mb of this rank's shard: a sample spans
// SampleRows rows for token models and one dim-0 entry for image/vector
// models (SampleRows = 1).
func (w *worker) microInput(mb int, rowsPerMB int) *tensor.Tensor {
	return w.arena.SliceOf(w.shardIn, mb*rowsPerMB, (mb+1)*rowsPerMB)
}

func (w *worker) microTargets(mb, rowsPerMB int) []int {
	lo := mb * rowsPerMB
	return w.shardTargets[lo : lo+rowsPerMB]
}

// forward runs one microbatch through this stage, then either starts the
// backward (last stage) or ships the activation downstream.
func (w *worker) forward(mb int, x *tensor.Tensor, rowsPerMB int) error {
	caches := w.getCaches()
	y := w.model.ForwardArena(w.arena, x, true, caches)
	w.caches[mb] = caches
	w.fwdDone++
	if w.last {
		loss, grad := nn.CrossEntropyArena(w.arena, y, w.microTargets(mb, rowsPerMB))
		w.batchLoss += loss / float64(w.mCount)
		tensor.Scale(grad, w.gradScale)
		if err := w.backward(mb, grad); err != nil {
			return err
		}
		w.bwdDone++
		return nil
	}
	return w.rk.Send(w.rk.ID()+1, comm.TagActivation, mb, y.Data(), y.Shape()...)
}

func (w *worker) backward(mb int, grad *tensor.Tensor) error {
	caches, ok := w.caches[mb]
	if !ok {
		// A gradient for a microbatch this rank never forwarded means the
		// schedule (or a peer) is corrupt: attribute it to this rank so the
		// whole fabric unwinds with a typed error instead of panicking.
		return w.rk.Fail(fmt.Errorf("axonn: gradient for unknown microbatch %d on rank %d", mb, w.rk.ID()))
	}
	delete(w.caches, mb)
	// Mark whether this is the shard's last backward before running it: the
	// LayerDone hook only launches overlapped reduces on the final pass.
	w.finalBwd = w.bwdDone == w.mCount-1
	gin := w.model.BackwardArena(w.arena, caches, grad, w.hook)
	w.putCaches(caches)
	if !w.first {
		return w.rk.Send(w.rk.ID()-1, comm.TagGradient, mb, gin.Data(), gin.Shape()...)
	}
	return nil
}

// trainBatch drives one batch through the pipeline with message-driven
// scheduling, reduces gradients across the data-parallel group, and steps.
// The entire steady-state path — shard views, activations, caches,
// collective chunks — runs on recycled memory; the arena reset at the end
// is safe because the overflow-consensus collective below is a global
// barrier (no peer still holds references into this batch's payloads).
func (w *worker) trainBatch(global Batch) (float64, error) {
	cfg := w.cfg
	per := global.Samples / cfg.Gdata
	rowsShard := per * global.SampleRows
	lo := w.dgrp * rowsShard
	w.shardIn = w.arena.SliceOf(global.Input, lo, lo+rowsShard)
	w.shardTargets = global.Targets[lo : lo+rowsShard]

	m := per / cfg.Microbatch
	w.mCount = m
	w.model.ZeroGrads()

	// Loss-gradient normalization: each microbatch's CrossEntropy gradient
	// is a mean over its own rows; scaling by 1/(M·Gdata) makes the summed,
	// all-reduced gradient the mean over the global batch.
	w.gradScale = w.state.LossScale() / float32(m*cfg.Gdata)
	w.batchLoss = 0
	w.fwdDone, w.bwdDone, w.injected = 0, 0, 0
	w.launched, w.finalBwd = 0, false
	w.handles = w.handles[:0]
	rowsPerMB := cfg.Microbatch * global.SampleRows

	// Warmup: stage 0 injects up to Ginter forwards (1F1B's in-flight
	// bound — exactly the memory-limiting behaviour AxoNN manages). With a
	// single stage there is no pipeline and every microbatch runs inline.
	if w.first {
		for w.injected < m && (w.injected < cfg.Ginter || w.last) {
			if err := w.forward(w.injected, w.microInput(w.injected, rowsPerMB), rowsPerMB); err != nil {
				return 0, err
			}
			w.injected++
		}
	}

	// Message-driven loop: process whatever arrives (§II-E). A poisoned
	// fabric surfaces here as a Recv error: the batch aborts mid-flight and
	// the engine restarts from the last durable checkpoint — per-batch
	// state (arena, caches) is torn down with the worker.
	for w.fwdDone < m || w.bwdDone < m {
		msg, err := w.rk.Recv()
		if err != nil {
			return 0, err
		}
		switch msg.Tag {
		case comm.TagActivation:
			if err := w.forward(msg.MB, w.arena.Wrap(msg.Data, msg.Shape...), rowsPerMB); err != nil {
				return 0, err
			}
		case comm.TagGradient:
			if err := w.backward(msg.MB, w.arena.Wrap(msg.Data, msg.Shape...)); err != nil {
				return 0, err
			}
			w.bwdDone++
			if w.first && w.injected < m {
				if err := w.forward(w.injected, w.microInput(w.injected, rowsPerMB), rowsPerMB); err != nil {
					return 0, err
				}
				w.injected++
			}
		default:
			return 0, w.rk.Fail(fmt.Errorf("axonn: unexpected message tag %v", msg.Tag))
		}
	}

	// Data-parallel phase: all-reduce the (compressed under SAMO) fp16
	// gradient buckets across the stage group — §IV-A. With OverlapReduce
	// the backward hook already launched them in plan order; drain every
	// handle (keeping the first error) so no operation is in flight when
	// the consensus collective below reuses the rank's matching state.
	if cfg.OverlapReduce {
		var err error
		for _, h := range w.handles {
			if werr := h.Wait(); werr != nil && err == nil {
				err = werr
			}
		}
		w.handles = w.handles[:0]
		if err != nil {
			return 0, err
		}
	} else {
		for _, buf := range w.state.ReduceBuffers() {
			var err error
			if cfg.OrderedReduce {
				err = w.rk.AllReduceOrdered(w.stageGroup, buf)
			} else {
				err = w.rk.AllReduce(w.stageGroup, buf)
			}
			if err != nil {
				return 0, err
			}
		}
	}

	// Global overflow consensus so every rank agrees to step or skip. This
	// collective doubles as the batch-end barrier that makes the arena
	// reset below safe — and the reason a checkpoint at step k+1 can only
	// exist if EVERY rank finished batch k.
	w.flagBuf[0] = 0
	if w.state.Overflow() {
		w.flagBuf[0] = 1
	}
	if err := w.rk.AllReduceOrdered(w.allRanks, w.flagBuf); err != nil {
		return 0, err
	}
	w.state.StepGiven(w.flagBuf[0] > 0)

	// Average the reported loss across data-parallel groups (float64 stays
	// intact when there is only one group).
	if w.last && cfg.Gdata > 1 {
		w.lossBuf[0] = float32(w.batchLoss)
		if err := w.rk.AllReduceOrdered(w.lossGroup, w.lossBuf); err != nil {
			return 0, err
		}
		w.batchLoss = float64(w.lossBuf[0]) / float64(cfg.Gdata)
	}

	w.shardIn = nil
	w.shardTargets = nil
	w.arena.Reset()
	return w.batchLoss, nil
}

// Evaluate runs a forward-only pass over the batch on a single rank layout
// (no parallelism needed for evaluation at test scale) and returns the mean
// loss. Provided for symmetry with core.Trainer.EvalLoss.
func Evaluate(model *nn.Model, b Batch) float64 {
	y, _ := model.Forward(b.Input, false)
	loss, _ := nn.CrossEntropy(y, b.Targets)
	return loss
}
