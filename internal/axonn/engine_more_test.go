package axonn

import (
	"math"
	"testing"

	"github.com/sparse-dl/samo/internal/core"
	"github.com/sparse-dl/samo/internal/nn"
	"github.com/sparse-dl/samo/internal/tensor"
)

func TestSingleRankDegenerateConfigMatchesSerial(t *testing.T) {
	// Ginter=1, Gdata=1, one microbatch: the engine collapses to serial
	// training and must match it bitwise.
	batches := makeBatches(4, 8, 1100)
	want, _ := serialLosses(51, nil, core.Dense, batches)
	res := Train(Config{Ginter: 1, Gdata: 1, Microbatch: 8, Mode: core.Dense, OrderedReduce: true},
		mlpBuilder(51), adamBuilder(), nil, batches)
	for i := range want {
		if res.Losses[i] != want[i] {
			t.Fatalf("batch %d: %g != %g", i, res.Losses[i], want[i])
		}
	}
}

func TestSingleRankWithMicrobatching(t *testing.T) {
	// Ginter=1 with several microbatches exercises the inline
	// forward+backward warm path (no pipeline messages at all).
	batches := makeBatches(3, 8, 1200)
	want, _ := serialLosses(53, nil, core.Dense, batches)
	res := Train(Config{Ginter: 1, Gdata: 1, Microbatch: 2, Mode: core.Dense, OrderedReduce: true},
		mlpBuilder(53), adamBuilder(), nil, batches)
	for i := range want {
		if math.Abs(res.Losses[i]-want[i]) > 5e-3*(1+math.Abs(want[i])) {
			t.Errorf("batch %d: %g vs %g", i, res.Losses[i], want[i])
		}
	}
}

func TestAsymmetricLayout4x2(t *testing.T) {
	// Deep pipeline with data parallelism: 4 stages × 2 groups = 8 ranks.
	pr := pruneMLP(57, 0.6)
	batch := makeBatches(1, 16, 1300)[0]
	var batches []Batch
	for i := 0; i < 12; i++ {
		batches = append(batches, batch)
	}
	res := Train(Config{Ginter: 4, Gdata: 2, Microbatch: 2, Mode: core.SAMO, OrderedReduce: true},
		mlpBuilder(57), adamBuilder(), pr, batches)
	if res.Losses[len(res.Losses)-1] >= res.Losses[0] {
		t.Errorf("4x2 SAMO training did not learn: %g -> %g",
			res.Losses[0], res.Losses[len(res.Losses)-1])
	}
}

func TestP2PVolumeScalesWithMicrobatches(t *testing.T) {
	// Eq. 9's mechanism on the real fabric: halving the microbatch size
	// doubles the message count at constant total bytes.
	batches := makeBatches(1, 8, 1400)
	countMsgs := func(mbs int) (int64, int64) {
		res := Train(Config{Ginter: 2, Gdata: 1, Microbatch: mbs, Mode: core.Dense, OrderedReduce: true},
			mlpBuilder(59), adamBuilder(), nil, batches)
		var msgs, elems int64
		for r := 0; r < 2; r++ {
			msgs += res.Fabric.Stats(r).P2PMessages.Load()
			elems += res.Fabric.Stats(r).P2PElements.Load()
		}
		return msgs, elems
	}
	m4, e4 := countMsgs(4) // 2 microbatches
	m2, e2 := countMsgs(2) // 4 microbatches
	if m2 != 2*m4 {
		t.Errorf("message count %d vs %d: halving mbs must double messages", m2, m4)
	}
	if e2 != e4 {
		t.Errorf("total elements changed with mbs: %d vs %d", e2, e4)
	}
}

func TestEngineWithRecomputeLayers(t *testing.T) {
	// Activation checkpointing composes with the pipeline engine: wrapping
	// every layer leaves the training trajectory unchanged.
	batches := makeBatches(4, 8, 1500)
	plain := Train(Config{Ginter: 2, Gdata: 1, Microbatch: 8, Mode: core.Dense, OrderedReduce: true},
		mlpBuilder(61), adamBuilder(), nil, batches)
	wrapped := Train(Config{Ginter: 2, Gdata: 1, Microbatch: 8, Mode: core.Dense, OrderedReduce: true},
		func() *nn.Model { return nn.WithRecompute(mlpBuilder(61)()) },
		adamBuilder(), nil, batches)
	for i := range plain.Losses {
		if plain.Losses[i] != wrapped.Losses[i] {
			t.Fatalf("batch %d: recompute changed training: %g vs %g",
				i, plain.Losses[i], wrapped.Losses[i])
		}
	}
}

func TestLossScaleRecoveryDuringTraining(t *testing.T) {
	// Start with an absurd loss scale: the first step(s) overflow and are
	// skipped, the scaler halves until gradients fit, then training
	// proceeds and learns.
	batch := makeBatches(1, 16, 1600)[0]
	var batches []Batch
	for i := 0; i < 25; i++ {
		batches = append(batches, batch)
	}
	cfg := Config{Ginter: 2, Gdata: 2, Microbatch: 4, Mode: core.Dense,
		OrderedReduce: true, InitialLossScale: 1e9}
	res := Train(cfg, mlpBuilder(63), adamBuilder(), nil, batches)
	if res.SkippedSteps == 0 {
		t.Error("expected overflow skips with a 1e9 scale")
	}
	if res.SkippedSteps > 20 {
		t.Errorf("scaler failed to recover: %d skips", res.SkippedSteps)
	}
	if res.Losses[len(res.Losses)-1] >= res.Losses[0] {
		t.Errorf("training did not recover after overflow: %g -> %g",
			res.Losses[0], res.Losses[len(res.Losses)-1])
	}
}

func TestShardSlicing(t *testing.T) {
	b := Batch{
		Input:      tensor.FromSlice([]float32{0, 1, 2, 3, 4, 5, 6, 7}, 8, 1),
		Targets:    []int{0, 1, 2, 3, 4, 5, 6, 7},
		SampleRows: 2, // 4 samples × 2 rows
		Samples:    4,
	}
	s1 := b.shard(1, 2)
	if s1.Samples != 2 || s1.Input.Dim(0) != 4 {
		t.Fatalf("shard geometry: %+v", s1)
	}
	if s1.Input.At(0, 0) != 4 || s1.Targets[0] != 4 {
		t.Errorf("shard 1 should start at sample 2 (row 4): %v", s1.Input.Data())
	}
}
