package axonn

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"github.com/sparse-dl/samo/internal/comm"
	"github.com/sparse-dl/samo/internal/core"
)

// Overlap determinism suite. The contract under test: Config.OverlapReduce
// changes WHEN bucket all-reduces run (behind the backward pass) but never
// WHAT they compute — both paths consume the identical plan-ordered bucket
// list, so losses and stage states are bitwise-identical overlap-on vs
// overlap-off, at every worker count, on both transports.

// overlapBucketElems forces several buckets even on the tiny test MLP
// (per-parameter tensors are 4–80 elements), so the overlapped path really
// pipelines multiple in-flight reduces instead of degenerating to one.
const overlapBucketElems = 16

func assertTrainBitwise(t *testing.T, label string, want, got Result) {
	t.Helper()
	if want.Err != nil || got.Err != nil {
		t.Fatalf("%s: errs want=%v got=%v", label, want.Err, got.Err)
	}
	if len(got.Losses) != len(want.Losses) {
		t.Fatalf("%s: %d losses, want %d", label, len(got.Losses), len(want.Losses))
	}
	for i := range want.Losses {
		if math.Float64bits(got.Losses[i]) != math.Float64bits(want.Losses[i]) {
			t.Fatalf("%s: loss[%d] = %x, want %x (must be bitwise)", label, i,
				math.Float64bits(got.Losses[i]), math.Float64bits(want.Losses[i]))
		}
	}
	if got.SkippedSteps != want.SkippedSteps {
		t.Fatalf("%s: skipped %d, want %d", label, got.SkippedSteps, want.SkippedSteps)
	}
	for s := range want.StageStates {
		if !bytes.Equal(got.StageStates[s], want.StageStates[s]) {
			t.Fatalf("%s: stage %d state diverged", label, s)
		}
	}
}

// TestOverlapReduceBitwiseWorkerSweep pins overlap-on ≡ overlap-off at every
// acceptance worker count, for both reduction algorithms (the rank-ordered
// serial sum and the ring). Pure data parallelism: worker count == Gdata.
func TestOverlapReduceBitwiseWorkerSweep(t *testing.T) {
	for _, gdata := range []int{1, 2, 3, 4, 8, 16} {
		for _, ordered := range []bool{true, false} {
			gdata, ordered := gdata, ordered
			t.Run(fmt.Sprintf("gdata%d/ordered=%v", gdata, ordered), func(t *testing.T) {
				t.Parallel()
				// 48 samples divide evenly by every gdata in the sweep.
				batches := makeBatches(3, 48, uint64(2000+gdata))
				cfg := Config{
					Ginter: 1, Gdata: gdata, Microbatch: 1,
					Mode:              core.Dense,
					OrderedReduce:     ordered,
					ReduceBucketElems: overlapBucketElems,
				}
				off := Train(cfg, mlpBuilder(31), adamBuilder(), nil, batches)
				cfg.OverlapReduce = true
				on := Train(cfg, mlpBuilder(31), adamBuilder(), nil, batches)
				assertTrainBitwise(t, fmt.Sprintf("gdata=%d ordered=%v", gdata, ordered), off, on)
			})
		}
	}
}

// TestOverlapReduceBitwiseHybridSAMO pins the overlap contract in the full
// hybrid layout — pipeline stages × data groups, multiple microbatches,
// SAMO-compressed gradients — where bucket launches interleave with p2p
// activation traffic on the same ranks.
func TestOverlapReduceBitwiseHybridSAMO(t *testing.T) {
	batches := makeBatches(4, 8, 2100)
	pr := pruneMLP(33, 0.5)
	for _, mode := range []core.Mode{core.Dense, core.SAMO} {
		mode := mode
		t.Run(fmt.Sprintf("mode=%v", mode), func(t *testing.T) {
			ticket := pr
			if mode == core.Dense {
				ticket = nil
			}
			cfg := Config{
				Ginter: 2, Gdata: 2, Microbatch: 2,
				Mode:              mode,
				OrderedReduce:     true,
				ReduceBucketElems: overlapBucketElems,
			}
			off := Train(cfg, mlpBuilder(33), adamBuilder(), ticket, batches)
			cfg.OverlapReduce = true
			on := Train(cfg, mlpBuilder(33), adamBuilder(), ticket, batches)
			assertTrainBitwise(t, fmt.Sprintf("hybrid mode=%v", mode), off, on)
		})
	}
}

// TestOverlapReduceOverTCPBitwise drives the overlapped path with every
// collective crossing a real TCP wire — one process per rank — and requires
// bitwise identity with the serial-reduce local golden at worker counts 2
// and 4.
func TestOverlapReduceOverTCPBitwise(t *testing.T) {
	for _, gdata := range []int{2, 4} {
		gdata := gdata
		t.Run(fmt.Sprintf("gdata%d", gdata), func(t *testing.T) {
			cfg := Config{
				Ginter: 1, Gdata: gdata, Microbatch: 2,
				Mode:               core.Dense,
				OrderedReduce:      true,
				ReduceBucketElems:  overlapBucketElems,
				CollectiveDeadline: 15 * time.Second,
			}
			batches := makeBatches(3, 8*gdata, uint64(2200+gdata))
			golden := Train(cfg, mlpBuilder(35), adamBuilder(), nil, batches)
			if golden.Err != nil {
				t.Fatalf("local serial golden: %v", golden.Err)
			}

			cfg.OverlapReduce = true
			n := cfg.GPUs()
			addrs := freeLoopbackAddrs(t, n)
			results := make([]Result, n)
			var wg sync.WaitGroup
			for p := 0; p < n; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					c := cfg
					c.Net = &NetConfig{Peers: addrs, Proc: p, DialTimeout: 30 * time.Second}
					results[p] = Train(c, mlpBuilder(35), adamBuilder(), nil, batches)
				}(p)
			}
			wg.Wait()
			for p := range results {
				if results[p].Err != nil {
					t.Fatalf("proc %d: %v", p, results[p].Err)
				}
				if results[p].Fabric != nil {
					defer results[p].Fabric.Close()
				}
			}
			// Ginter=1: rank 0 (process 0) hosts the loss writer and stage 0.
			loss := results[0]
			for i := range golden.Losses {
				if math.Float64bits(loss.Losses[i]) != math.Float64bits(golden.Losses[i]) {
					t.Fatalf("loss[%d] = %x overlapped over tcp, golden %x", i,
						math.Float64bits(loss.Losses[i]), math.Float64bits(golden.Losses[i]))
				}
			}
			if !bytes.Equal(results[0].StageStates[0], golden.StageStates[0]) {
				t.Fatal("stage 0 state differs between overlapped-tcp and serial-local")
			}
		})
	}
}

// TestCrashMidOverlappedReduce injects CrashAtOp while bucket reduces are in
// flight on the async lane: the poison must unwind the worker goroutines
// without deadlock and recovery must land bitwise on the overlapped golden.
// Small buckets mean rank 1 runs many per-batch collectives, so the chosen
// ops land inside the overlapped launch window, between buckets, and at the
// batch-final loss reduce.
func TestCrashMidOverlappedReduce(t *testing.T) {
	overlapCfg := func(dir string) Config {
		c := chaosCfg(dir)
		c.OverlapReduce = true
		c.ReduceBucketElems = overlapBucketElems
		return c
	}
	batches := makeBatches(5, 8, 2300)
	golden := Train(overlapCfg(t.TempDir()), mlpBuilder(37), adamBuilder(), nil, batches)
	if golden.Err != nil {
		t.Fatalf("golden run: %v", golden.Err)
	}
	// Cross-check: the overlapped golden itself must match the serial path.
	serialCfg := chaosCfg("")
	serialCfg.ReduceBucketElems = overlapBucketElems
	serial := Train(serialCfg, mlpBuilder(37), adamBuilder(), nil, batches)
	assertTrainBitwise(t, "overlap golden vs serial", serial, golden)

	for _, op := range []int{0, 1, 2, 5, 9} {
		op := op
		t.Run(fmt.Sprintf("crash-op-%d", op), func(t *testing.T) {
			t.Parallel()
			cfg := overlapCfg(t.TempDir())
			cfg.Fault = &comm.FaultPlan{CrashAtOp: map[int]int{1: op}}
			res := Train(cfg, mlpBuilder(37), adamBuilder(), nil, batches)
			if res.Restarts == 0 {
				t.Fatalf("fault did not fire (err: %v)", res.Err)
			}
			assertBitwiseEqual(t, golden, res)
		})
	}
}
