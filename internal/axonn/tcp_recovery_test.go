package axonn

// Recovery-over-TCP goldens. Two levels:
//
//   - TestTrainOverTCPBitwise runs one Train per "process" (goroutines in
//     this test binary, one rank each over TCP loopback) and requires the
//     merged result to be bitwise-identical to the single-process local
//     fabric run — losses, stage states, and skip counts.
//
//   - TestTCPRecoverKilledPeerProcess is the real thing: two OS processes
//     (this test binary re-exec'd via TestMain), data-parallel over TCP.
//     The non-saver process SIGKILLs itself mid-run once a durable
//     checkpoint exists; the survivor aborts with a typed wire error,
//     rebuilds the mesh, and waits while the test restarts the dead
//     process with Resume. The recovered run's losses must be
//     bitwise-equal to an uninterrupted local run.
//
// The worker side lives in tcpWorkerMain, dispatched by TestMain when the
// SAMO_TCP_WORKER environment variable carries a JSON spec.

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/sparse-dl/samo/internal/ckpt"
	"github.com/sparse-dl/samo/internal/core"
)

const tcpWorkerEnv = "SAMO_TCP_WORKER"

// Fixed seeds shared by the parent's golden run and the re-exec'd workers:
// both sides must build the same model and batches or bitwise comparison is
// meaningless.
const (
	tcpModelSeed  = 7
	tcpBatchSeed  = 900
	tcpNumBatches = 40
	tcpDieAtCkpt  = 6
)

// TestMain dispatches to the TCP worker body when this binary is re-exec'd
// as a peer process; otherwise it runs the test suite normally.
func TestMain(m *testing.M) {
	if spec := os.Getenv(tcpWorkerEnv); spec != "" {
		os.Exit(tcpWorkerMain(spec))
	}
	os.Exit(m.Run())
}

// tcpWorkerSpec is the JSON contract between the parent test and a re-exec'd
// worker process.
type tcpWorkerSpec struct {
	Proc   int      `json:"proc"`
	Peers  []string `json:"peers"`
	Dir    string   `json:"dir"`
	Resume bool     `json:"resume"`
	// DieAtCkpt > 0: SIGKILL this process (no cleanup, no poison frame —
	// exactly what an OOM kill or node loss looks like on the wire) as soon
	// as checkpoint step DieAtCkpt is durable in Dir.
	DieAtCkpt int `json:"dieAtCkpt"`
}

// tcpWorkerReport is what a worker prints on stdout when Train returns.
type tcpWorkerReport struct {
	Losses      []float64 `json:"losses"`
	StageStates []string  `json:"stageStates"` // hex per stage; "" = remote
	Skipped     int       `json:"skipped"`
	Restarts    int       `json:"restarts"`
	StartBatch  int       `json:"startBatch"`
	Warnings    []string  `json:"warnings"`
	Err         string    `json:"err"`
}

// tcpTrainCfg is the layout under test: pure data parallelism (Ginter=1,
// Gdata=2) so rank 0 — the checkpoint saver and loss writer — lives in
// process 0 and survives, while process 1's death severs every collective.
func tcpTrainCfg(dir string) Config {
	return Config{
		Ginter: 1, Gdata: 2, Microbatch: 2,
		Mode:          core.Dense,
		OrderedReduce: true,
		CheckpointDir: dir, CheckpointEvery: 1, CheckpointKeep: 4,
		CollectiveDeadline: 15 * time.Second,
	}
}

func tcpWorkerMain(specJSON string) int {
	var sp tcpWorkerSpec
	if err := json.Unmarshal([]byte(specJSON), &sp); err != nil {
		fmt.Fprintf(os.Stderr, "worker: bad spec: %v\n", err)
		return 2
	}
	cfg := tcpTrainCfg(sp.Dir)
	cfg.Resume = sp.Resume
	cfg.Net = &NetConfig{Peers: sp.Peers, Proc: sp.Proc, DialTimeout: 60 * time.Second}

	if sp.DieAtCkpt > 0 {
		go tcpDieWhenDurable(cfg, sp.DieAtCkpt)
	}

	batches := makeBatches(tcpNumBatches, 8, tcpBatchSeed)
	res := Train(cfg, mlpBuilder(tcpModelSeed), adamBuilder(), nil, batches)

	rep := tcpWorkerReport{
		Losses:      res.Losses,
		Skipped:     res.SkippedSteps,
		Restarts:    res.Restarts,
		StartBatch:  res.StartBatch,
		Warnings:    res.Warnings,
		StageStates: make([]string, len(res.StageStates)),
	}
	for i, st := range res.StageStates {
		rep.StageStates[i] = hex.EncodeToString(st)
	}
	if res.Err != nil {
		rep.Err = res.Err.Error()
	}
	if err := json.NewEncoder(os.Stdout).Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "worker: encode report: %v\n", err)
		return 2
	}
	if res.Err != nil {
		return 1
	}
	return 0
}

// tcpDieWhenDurable polls the shared checkpoint directory and SIGKILLs the
// current process once step is durably complete. SIGKILL (not os.Exit)
// guarantees no deferred teardown runs: connections die by kernel FIN/RST,
// the way a crashed peer's would.
func tcpDieWhenDurable(cfg Config, step int) {
	mgr, err := ckpt.New(ckpt.Options{
		Dir: cfg.CheckpointDir, Shards: cfg.Ginter,
		Keep: cfg.CheckpointKeep, Tag: cfg.tag(),
	})
	if err != nil {
		return
	}
	for {
		if got, _, ok := mgr.LatestStep(); ok && got >= step {
			syscall.Kill(os.Getpid(), syscall.SIGKILL)
		}
		time.Sleep(time.Millisecond)
	}
}

// freeLoopbackAddrs reserves n distinct loopback ports by binding and
// releasing them. The tiny window before the trainee rebinds is accepted;
// the TCP transport's dial-retry absorbs any startup skew.
func freeLoopbackAddrs(t testing.TB, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

func startTCPWorker(t *testing.T, exe string, sp tcpWorkerSpec, out *bytes.Buffer) *exec.Cmd {
	t.Helper()
	js, err := json.Marshal(sp)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), tcpWorkerEnv+"="+string(js))
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatalf("start worker %d: %v", sp.Proc, err)
	}
	return cmd
}

// waitWithin waits for cmd with a hang backstop, returning its exit error.
func waitWithin(t *testing.T, cmd *exec.Cmd, d time.Duration, what string) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(d):
		cmd.Process.Kill()
		<-done
		t.Fatalf("%s did not exit within %v", what, d)
		return nil
	}
}

// TestTCPRecoverKilledPeerProcess is the cross-process recovery golden: a
// killed worker process is restarted, resumes from the newest durable
// checkpoint, and the surviving process's losses come out bitwise-equal to
// an uninterrupted run.
func TestTCPRecoverKilledPeerProcess(t *testing.T) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}

	// Golden: the same config on the in-process local fabric, uninterrupted.
	batches := makeBatches(tcpNumBatches, 8, tcpBatchSeed)
	golden := Train(tcpTrainCfg(t.TempDir()), mlpBuilder(tcpModelSeed), adamBuilder(), nil, batches)
	if golden.Err != nil {
		t.Fatalf("golden run failed: %v", golden.Err)
	}

	dir := t.TempDir() // checkpoint dir shared by both worker processes
	addrs := freeLoopbackAddrs(t, 2)

	var out0, out1, out1b bytes.Buffer
	cmd0 := startTCPWorker(t, exe, tcpWorkerSpec{Proc: 0, Peers: addrs, Dir: dir}, &out0)
	defer func() {
		if cmd0.ProcessState == nil {
			cmd0.Process.Kill()
		}
	}()
	cmd1 := startTCPWorker(t, exe,
		tcpWorkerSpec{Proc: 1, Peers: addrs, Dir: dir, DieAtCkpt: tcpDieAtCkpt}, &out1)

	// First life of process 1 must die by SIGKILL, not exit on its own.
	if werr := waitWithin(t, cmd1, 60*time.Second, "worker 1 (doomed)"); werr == nil {
		t.Fatalf("worker 1 exited cleanly before its SIGKILL; output:\n%s", out1.String())
	}
	if code := cmd1.ProcessState.ExitCode(); code != -1 {
		t.Fatalf("worker 1 exited with code %d, want signal death; output:\n%s", code, out1.String())
	}

	// Restart it with Resume: it must rejoin the mesh (worker 0 is blocked
	// in its recovery dial loop) and replay from the newest checkpoint.
	cmd1b := startTCPWorker(t, exe,
		tcpWorkerSpec{Proc: 1, Peers: addrs, Dir: dir, Resume: true}, &out1b)
	if werr := waitWithin(t, cmd1b, 90*time.Second, "worker 1 (restarted)"); werr != nil {
		t.Fatalf("restarted worker 1 failed: %v\noutput:\n%s", werr, out1b.String())
	}
	if werr := waitWithin(t, cmd0, 90*time.Second, "worker 0"); werr != nil {
		t.Fatalf("worker 0 failed: %v\noutput:\n%s", werr, out0.String())
	}

	var rep tcpWorkerReport
	if err := json.Unmarshal(out0.Bytes(), &rep); err != nil {
		t.Fatalf("parse worker 0 report: %v\noutput:\n%s", err, out0.String())
	}
	if rep.Err != "" {
		t.Fatalf("worker 0 finished with error: %s (warnings: %v)", rep.Err, rep.Warnings)
	}
	if rep.Restarts == 0 {
		t.Fatalf("worker 0 reported no restarts; the kill was not observed (warnings: %v)", rep.Warnings)
	}

	// Bitwise golden comparison: every batch's loss, including the ones
	// trained before the kill and replayed after recovery.
	if len(rep.Losses) != len(golden.Losses) {
		t.Fatalf("losses length %d, want %d", len(rep.Losses), len(golden.Losses))
	}
	for i := range golden.Losses {
		if math.Float64bits(rep.Losses[i]) != math.Float64bits(golden.Losses[i]) {
			t.Fatalf("loss[%d] = %x, golden %x (not bitwise equal)",
				i, math.Float64bits(rep.Losses[i]), math.Float64bits(golden.Losses[i]))
		}
	}
	if want := hex.EncodeToString(golden.StageStates[0]); rep.StageStates[0] != want {
		t.Fatalf("stage 0 state differs from golden after recovery")
	}
	if rep.Skipped != golden.SkippedSteps {
		t.Fatalf("skipped steps = %d, golden %d", rep.Skipped, golden.SkippedSteps)
	}
}

// TestTrainOverTCPBitwise pins transport neutrality end-to-end: the same
// pipeline+data-parallel run, split one rank per TCP endpoint, must produce
// bitwise-identical losses and stage states to the local-fabric run.
func TestTrainOverTCPBitwise(t *testing.T) {
	cfg := Config{
		Ginter: 2, Gdata: 2, Microbatch: 2,
		Mode:               core.Dense,
		OrderedReduce:      true,
		CollectiveDeadline: 15 * time.Second,
	}
	batches := makeBatches(4, 8, 901)

	golden := Train(cfg, mlpBuilder(tcpModelSeed), adamBuilder(), nil, batches)
	if golden.Err != nil {
		t.Fatalf("local golden failed: %v", golden.Err)
	}

	n := cfg.GPUs() // one rank per endpoint: every p2p hop and collective crosses the wire
	addrs := freeLoopbackAddrs(t, n)
	results := make([]Result, n)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			c := cfg
			c.Net = &NetConfig{Peers: addrs, Proc: p, DialTimeout: 30 * time.Second}
			results[p] = Train(c, mlpBuilder(tcpModelSeed), adamBuilder(), nil, batches)
		}(p)
	}
	wg.Wait()
	for p := range results {
		if results[p].Err != nil {
			t.Fatalf("proc %d: %v", p, results[p].Err)
		}
		if results[p].Fabric != nil {
			defer results[p].Fabric.Close()
		}
	}

	// Rank layout is rank = dgrp*Ginter + stage with one rank per process,
	// so data-group-0 stage s is hosted by process s; the loss writer
	// (data-group-0 last stage) is process Ginter-1.
	loss := results[cfg.Ginter-1]
	for i := range golden.Losses {
		if math.Float64bits(loss.Losses[i]) != math.Float64bits(golden.Losses[i]) {
			t.Fatalf("loss[%d] = %x over tcp, golden %x", i,
				math.Float64bits(loss.Losses[i]), math.Float64bits(golden.Losses[i]))
		}
	}
	if loss.SkippedSteps != golden.SkippedSteps {
		t.Fatalf("skipped = %d over tcp, golden %d", loss.SkippedSteps, golden.SkippedSteps)
	}
	for s := 0; s < cfg.Ginter; s++ {
		st := results[s].StageStates[s]
		if st == nil {
			t.Fatalf("proc %d missing its stage %d state", s, s)
		}
		if !bytes.Equal(st, golden.StageStates[s]) {
			t.Fatalf("stage %d state differs between tcp and local fabrics", s)
		}
	}
}
