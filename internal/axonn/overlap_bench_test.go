package axonn

import (
	"sync"
	"testing"
	"time"

	"github.com/sparse-dl/samo/internal/core"
)

// BenchmarkOverlapStep measures the per-step cost of the serial-barrier
// reduce vs the backward-overlapped reduce, on both transports. scripts/
// bench.sh turns the serial/overlap ratio into the overlap_step_speedup
// matrix in BENCH_comm.json (warn-only: on a single hardware thread the
// async lane has nothing to overlap against and the ratio measures
// scheduler overhead, not the schedule).
func BenchmarkOverlapStep(b *testing.B) {
	base := Config{
		Ginter: 2, Gdata: 2, Microbatch: 2,
		Mode:               core.Dense,
		OrderedReduce:      true,
		ReduceBucketElems:  64, // several buckets in flight on the tiny MLP
		CollectiveDeadline: 60 * time.Second,
	}
	for _, bc := range []struct {
		name    string
		overlap bool
	}{{"serial", false}, {"overlap", true}} {
		cfg := base
		cfg.OverlapReduce = bc.overlap
		b.Run("local/"+bc.name, func(b *testing.B) {
			benchOverlapLocal(b, cfg)
		})
		b.Run("tcp/"+bc.name, func(b *testing.B) {
			benchOverlapTCP(b, cfg)
		})
	}
}

func benchOverlapLocal(b *testing.B, cfg Config) {
	bt := makeBatches(1, 16, 4100)[0]
	batches := make([]Batch, b.N)
	for i := range batches {
		batches[i] = bt
	}
	b.ReportAllocs()
	b.ResetTimer()
	res := Train(cfg, mlpBuilder(43), adamBuilder(), nil, batches)
	b.StopTimer()
	if res.Err != nil {
		b.Fatal(res.Err)
	}
}

func benchOverlapTCP(b *testing.B, cfg Config) {
	bt := makeBatches(1, 16, 4100)[0]
	batches := make([]Batch, b.N)
	for i := range batches {
		batches[i] = bt
	}
	n := cfg.GPUs()
	addrs := freeLoopbackAddrs(b, n)
	results := make([]Result, n)
	b.ResetTimer()
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			c := cfg
			c.Net = &NetConfig{Peers: addrs, Proc: p, DialTimeout: 60 * time.Second}
			results[p] = Train(c, mlpBuilder(43), adamBuilder(), nil, batches)
		}(p)
	}
	wg.Wait()
	b.StopTimer()
	for p := range results {
		if results[p].Err != nil {
			b.Fatalf("proc %d: %v", p, results[p].Err)
		}
		if results[p].Fabric != nil {
			results[p].Fabric.Close()
		}
	}
}
