package ckpt

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fakeState is a minimal State: Save emits its payload, Load replaces it.
type fakeState struct {
	payload []byte
	fp      uint64
}

func (s *fakeState) Save(w io.Writer) (int64, error) {
	n, err := w.Write(s.payload)
	return int64(n), err
}

func (s *fakeState) Load(r io.Reader) error {
	raw, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	s.payload = raw
	return nil
}

func (s *fakeState) Fingerprint() uint64 { return s.fp }

func newMgr(t *testing.T, shards, keep int) *Manager {
	t.Helper()
	m, err := New(Options{Dir: t.TempDir(), Shards: shards, Keep: keep, Tag: "test-cfg"})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func payload(step, shard int) []byte {
	return []byte(fmt.Sprintf("state step=%d shard=%d padded-to-make-it-nontrivial", step, shard))
}

func saveStep(t *testing.T, m *Manager, step, shards int) {
	t.Helper()
	for s := 0; s < shards; s++ {
		if err := m.Save(step, s, &fakeState{payload: payload(step, s), fp: uint64(s)}); err != nil {
			t.Fatalf("save step %d shard %d: %v", step, s, err)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m := newMgr(t, 2, 2)
	saveStep(t, m, 3, 2)
	step, warns, ok := m.LatestStep()
	if !ok || step != 3 || len(warns) != 0 {
		t.Fatalf("LatestStep = %d, %v, %v; want 3, none, true", step, warns, ok)
	}
	for s := 0; s < 2; s++ {
		st := &fakeState{fp: uint64(s)}
		if err := m.Load(3, s, st); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(st.payload, payload(3, s)) {
			t.Fatalf("shard %d round-trip mismatch: %q", s, st.payload)
		}
	}
}

func TestNoCheckpointYet(t *testing.T) {
	m := newMgr(t, 1, 2)
	if _, _, ok := m.LatestStep(); ok {
		t.Fatal("empty directory reported a checkpoint")
	}
}

func TestCorruptLatestFallsBackWithWarning(t *testing.T) {
	m := newMgr(t, 2, 3)
	saveStep(t, m, 1, 2)
	saveStep(t, m, 2, 2)
	// Bit-flip the newest step's shard-0 data file.
	path := filepath.Join(m.Dir(), m.dataName(2, 0))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	step, warns, ok := m.LatestStep()
	if !ok || step != 1 {
		t.Fatalf("corrupt latest: LatestStep = %d, ok=%v; want fallback to 1", step, ok)
	}
	if len(warns) != 1 || !strings.Contains(warns[0], "step 2") {
		t.Fatalf("fallback must surface a warning naming step 2, got %v", warns)
	}
}

func TestKillPointTruncationAlwaysLeavesLoadable(t *testing.T) {
	// Simulate a crash at every truncation point of the newest data file:
	// whatever survives, LatestStep must hand back a verified step (the
	// truncated one only if it still checks out — i.e. never).
	m := newMgr(t, 1, 3)
	saveStep(t, m, 1, 1)
	saveStep(t, m, 2, 1)
	path := filepath.Join(m.Dir(), m.dataName(2, 0))
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(full); cut += 7 {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		step, _, ok := m.LatestStep()
		if !ok {
			t.Fatalf("cut=%d: no loadable checkpoint at all", cut)
		}
		if step != 1 {
			t.Fatalf("cut=%d: truncated step %d passed verification", cut, step)
		}
		st := &fakeState{fp: 0}
		if err := m.Load(step, 0, st); err != nil {
			t.Fatalf("cut=%d: loading fallback: %v", cut, err)
		}
		if !bytes.Equal(st.payload, payload(1, 0)) {
			t.Fatalf("cut=%d: fallback payload mismatch", cut)
		}
	}
	// Restore the file: full bytes verify again and step 2 returns.
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	if step, _, ok := m.LatestStep(); !ok || step != 2 {
		t.Fatalf("restored file: LatestStep = %d, ok=%v; want 2", step, ok)
	}
}

func TestIncompleteStepIgnored(t *testing.T) {
	m := newMgr(t, 2, 2)
	saveStep(t, m, 1, 2)
	// Step 2 saved on shard 0 only: the crash window between shard saves.
	if err := m.Save(2, 0, &fakeState{payload: payload(2, 0), fp: 0}); err != nil {
		t.Fatal(err)
	}
	step, warns, ok := m.LatestStep()
	if !ok || step != 1 {
		t.Fatalf("incomplete step: LatestStep = %d, ok=%v; want 1", step, ok)
	}
	if len(warns) != 1 {
		t.Fatalf("incomplete step must warn, got %v", warns)
	}
}

func TestCorruptManifestSkipped(t *testing.T) {
	m := newMgr(t, 1, 2)
	saveStep(t, m, 1, 1)
	saveStep(t, m, 2, 1)
	path := filepath.Join(m.Dir(), m.manifestName(2, 0))
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	step, warns, ok := m.LatestStep()
	if !ok || step != 1 || len(warns) != 1 {
		t.Fatalf("corrupt manifest: LatestStep = %d, %v, %v; want 1 with warning", step, warns, ok)
	}
}

func TestLoadRefusesFingerprintMismatch(t *testing.T) {
	m := newMgr(t, 1, 2)
	if err := m.Save(1, 0, &fakeState{payload: payload(1, 0), fp: 0xAAAA}); err != nil {
		t.Fatal(err)
	}
	err := m.Load(1, 0, &fakeState{fp: 0xBBBB})
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("fingerprint mismatch must refuse load, got %v", err)
	}
}

func TestLoadRefusesTagMismatch(t *testing.T) {
	m := newMgr(t, 1, 2)
	saveStep(t, m, 1, 1)
	other, err := New(Options{Dir: m.Dir(), Shards: 1, Keep: 2, Tag: "different-cfg"})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Load(1, 0, &fakeState{fp: 0}); err == nil || !strings.Contains(err.Error(), "tag") {
		t.Fatalf("tag mismatch must refuse load, got %v", err)
	}
	if _, _, ok := other.LatestStep(); ok {
		t.Fatal("tag mismatch must hide the checkpoint from LatestStep")
	}
}

func TestPruneRetention(t *testing.T) {
	m := newMgr(t, 2, 2)
	for step := 1; step <= 5; step++ {
		saveStep(t, m, step, 2)
	}
	// Temp debris from an interrupted save must also be cleared.
	debris := filepath.Join(m.Dir(), "ckpt-0000000099-s000.samo.tmp-123")
	if err := os.WriteFile(debris, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := m.Prune(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(m.Dir())
	if err != nil {
		t.Fatal(err)
	}
	// 2 steps × 2 shards × (data + manifest) = 8 files.
	if len(ents) != 8 {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("after prune: %d files %v, want 8", len(ents), names)
	}
	if _, err := os.Stat(debris); !os.IsNotExist(err) {
		t.Fatal("prune left temp debris behind")
	}
	step, _, ok := m.LatestStep()
	if !ok || step != 5 {
		t.Fatalf("after prune: LatestStep = %d, ok=%v; want 5", step, ok)
	}
	if err := m.Load(4, 0, &fakeState{fp: 0}); err != nil {
		t.Fatalf("second-newest step must survive prune: %v", err)
	}
	if err := m.Load(3, 0, &fakeState{fp: 0}); err == nil {
		t.Fatal("pruned step still loadable")
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := New(Options{Dir: "", Shards: 1}); err == nil {
		t.Fatal("empty dir accepted")
	}
	if _, err := New(Options{Dir: t.TempDir(), Shards: 0}); err == nil {
		t.Fatal("zero shards accepted")
	}
	m, err := New(Options{Dir: t.TempDir(), Shards: 1, Keep: 0})
	if err != nil {
		t.Fatal(err)
	}
	if m.opts.Keep != 2 {
		t.Fatalf("Keep clamped to %d, want 2", m.opts.Keep)
	}
	if err := m.Save(1, 5, &fakeState{}); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
}
