// Package ckpt is the crash-consistent checkpoint manager: it wraps a
// snapshot-able training state (core.ModelState) with the durability
// discipline a fault-tolerant runtime needs and the snapshot format itself
// deliberately does not provide.
//
// Layout: one directory holds, per (step, shard), a data file
// ckpt-<step>-s<shard>.samo (the core snapshot bytes) and a sibling JSON
// manifest ckpt-<step>-s<shard>.json recording step, shard count, a
// caller-supplied tag, the state's structural fingerprint, and the byte
// length + CRC-32 of the data file. Shards exist because the axonn engine
// partitions the model across pipeline stages: shard s is stage s's slice of
// the model, and a step is durable only when EVERY shard of that step
// verifies.
//
// Durability discipline, in order: data to a temp file, fsync, rename;
// manifest to a temp file, fsync, rename; fsync the directory; then re-open
// the renamed data file and verify its CRC against the manifest (read-back:
// a checkpoint is not "saved" until the bytes that will be read at recovery
// have been read once). A crash at any point leaves either a complete
// (step, shard) pair or ignorable temp debris — never a manifest pointing at
// bytes that were not fully written. LatestStep re-verifies on the read
// side and falls back to the newest older step that checks out, surfacing a
// warning for everything it skipped, so a corrupt latest checkpoint degrades
// the resume point instead of wedging recovery.
package ckpt

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// State is what the manager checkpoints: core.ModelState satisfies it.
type State interface {
	Save(w io.Writer) (int64, error)
	Load(r io.Reader) error
	Fingerprint() uint64
}

// manifestVersion guards the manifest schema, independent of the snapshot
// format version inside the data file.
const manifestVersion = 1

// Manifest is the JSON sidecar that makes a data file trustworthy.
type Manifest struct {
	Version     int    `json:"version"`
	Step        int    `json:"step"`
	Shard       int    `json:"shard"`
	Shards      int    `json:"shards"`
	Tag         string `json:"tag"`
	Fingerprint uint64 `json:"fingerprint"`
	Bytes       int64  `json:"bytes"`
	CRC         uint32 `json:"crc32"`
	File        string `json:"file"`
}

// Options configures a Manager.
type Options struct {
	// Dir holds the checkpoint files; created if absent.
	Dir string
	// Shards is the number of model shards per step (axonn: Ginter stages).
	// Every shard in [0,Shards) must be saved for a step to count.
	Shards int
	// Keep retains the newest Keep complete steps at Prune time (minimum 2:
	// latest plus the fallback the corrupt-latest path depends on).
	Keep int
	// Tag names the training configuration (model/parallelism identity).
	// Load refuses a checkpoint whose tag differs — same spirit as the
	// fingerprint, but human-readable and covering engine-level config the
	// state cannot see.
	Tag string
}

// Manager reads and writes checkpoints in one directory. Safe for
// concurrent use by multiple shard-saving goroutines.
type Manager struct {
	opts Options
	mu   sync.Mutex
}

// New validates opts, creates the directory, and returns a Manager.
func New(opts Options) (*Manager, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("ckpt: empty directory")
	}
	if opts.Shards < 1 {
		return nil, fmt.Errorf("ckpt: shards %d < 1", opts.Shards)
	}
	if opts.Keep < 2 {
		opts.Keep = 2
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	return &Manager{opts: opts}, nil
}

// Dir returns the checkpoint directory.
func (m *Manager) Dir() string { return m.opts.Dir }

func (m *Manager) dataName(step, shard int) string {
	return fmt.Sprintf("ckpt-%010d-s%03d.samo", step, shard)
}

func (m *Manager) manifestName(step, shard int) string {
	return fmt.Sprintf("ckpt-%010d-s%03d.json", step, shard)
}

// Save checkpoints shard's state as of step. It returns only after the data
// file and manifest are durably on disk and the data file has been re-read
// and CRC-verified.
func (m *Manager) Save(step, shard int, st State) error {
	if shard < 0 || shard >= m.opts.Shards {
		return fmt.Errorf("ckpt: shard %d outside [0,%d)", shard, m.opts.Shards)
	}
	m.mu.Lock()
	defer m.mu.Unlock()

	dataFile := m.dataName(step, shard)
	tmp, err := os.CreateTemp(m.opts.Dir, dataFile+".tmp-*")
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename

	crc := crc32.NewIEEE()
	n, err := st.Save(io.MultiWriter(tmp, crc))
	if err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: save step %d shard %d: %w", step, shard, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	dataPath := filepath.Join(m.opts.Dir, dataFile)
	if err := os.Rename(tmp.Name(), dataPath); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}

	man := Manifest{
		Version:     manifestVersion,
		Step:        step,
		Shard:       shard,
		Shards:      m.opts.Shards,
		Tag:         m.opts.Tag,
		Fingerprint: st.Fingerprint(),
		Bytes:       n,
		CRC:         crc.Sum32(),
		File:        dataFile,
	}
	if err := m.writeManifest(step, shard, &man); err != nil {
		return err
	}
	if err := syncDir(m.opts.Dir); err != nil {
		return err
	}
	// Read-back: recovery will trust these bytes, so prove now that they
	// come off the disk intact.
	if err := verifyData(dataPath, &man); err != nil {
		return fmt.Errorf("ckpt: read-back verification failed: %w", err)
	}
	return nil
}

func (m *Manager) writeManifest(step, shard int, man *Manifest) error {
	raw, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	tmp, err := os.CreateTemp(m.opts.Dir, man.File+".json.tmp-*")
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	dst := filepath.Join(m.opts.Dir, m.manifestName(step, shard))
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	return nil
}

// verifyData checks the data file's length and CRC against its manifest.
func verifyData(path string, man *Manifest) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	crc := crc32.NewIEEE()
	n, err := io.Copy(crc, f)
	if err != nil {
		return err
	}
	if n != man.Bytes {
		return fmt.Errorf("%s: %d bytes, manifest says %d", path, n, man.Bytes)
	}
	if got := crc.Sum32(); got != man.CRC {
		return fmt.Errorf("%s: CRC %#x, manifest says %#x", path, got, man.CRC)
	}
	return nil
}

// readManifest parses and sanity-checks one manifest file.
func (m *Manager) readManifest(path string) (*Manifest, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var man Manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if man.Version != manifestVersion {
		return nil, fmt.Errorf("%s: manifest version %d, want %d", path, man.Version, manifestVersion)
	}
	if man.Shards != m.opts.Shards {
		return nil, fmt.Errorf("%s: %d shards, manager expects %d", path, man.Shards, m.opts.Shards)
	}
	if man.Tag != m.opts.Tag {
		return nil, fmt.Errorf("%s: tag %q, manager expects %q", path, man.Tag, m.opts.Tag)
	}
	return &man, nil
}

// steps scans the directory and returns the step numbers that have a
// manifest for at least one shard, ascending.
func (m *Manager) steps() ([]int, error) {
	ents, err := os.ReadDir(m.opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	seen := map[int]bool{}
	for _, e := range ents {
		var step, shard int
		if _, err := fmt.Sscanf(e.Name(), "ckpt-%d-s%d.json", &step, &shard); err == nil &&
			strings.HasSuffix(e.Name(), ".json") {
			seen[step] = true
		}
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Ints(out)
	return out, nil
}

// verifyStep checks that every shard of step has a parseable manifest and a
// data file matching it.
func (m *Manager) verifyStep(step int) error {
	for shard := 0; shard < m.opts.Shards; shard++ {
		man, err := m.readManifest(filepath.Join(m.opts.Dir, m.manifestName(step, shard)))
		if err != nil {
			return fmt.Errorf("step %d shard %d: %w", step, shard, err)
		}
		if err := verifyData(filepath.Join(m.opts.Dir, man.File), man); err != nil {
			return fmt.Errorf("step %d shard %d: %w", step, shard, err)
		}
	}
	return nil
}

// LatestStep returns the newest step whose every shard verifies (manifest
// parses, tag matches, data file length and CRC check out), along with one
// warning per newer step that was skipped as incomplete or corrupt — the
// graceful-fallback path the durability contract promises. ok is false when
// no verifiable checkpoint exists.
func (m *Manager) LatestStep() (step int, warnings []string, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	steps, err := m.steps()
	if err != nil {
		return 0, []string{err.Error()}, false
	}
	for i := len(steps) - 1; i >= 0; i-- {
		if err := m.verifyStep(steps[i]); err != nil {
			warnings = append(warnings, fmt.Sprintf("ckpt: skipping %v", err))
			continue
		}
		return steps[i], warnings, true
	}
	return 0, warnings, false
}

// Load restores shard's state from step. The manifest's fingerprint must
// match the live state's: a checkpoint from a different model, optimizer or
// pruning configuration is refused before any bytes are parsed.
func (m *Manager) Load(step, shard int, st State) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	man, err := m.readManifest(filepath.Join(m.opts.Dir, m.manifestName(step, shard)))
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	if man.Fingerprint != st.Fingerprint() {
		return fmt.Errorf("ckpt: step %d shard %d fingerprint %#x does not match state %#x (different model/optimizer/pruning config)",
			step, shard, man.Fingerprint, st.Fingerprint())
	}
	path := filepath.Join(m.opts.Dir, man.File)
	if err := verifyData(path, man); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	defer f.Close()
	if err := st.Load(f); err != nil {
		return fmt.Errorf("ckpt: load step %d shard %d: %w", step, shard, err)
	}
	return nil
}

// Prune deletes all but the newest Keep complete steps (and any leftover
// temp files from interrupted saves). Incomplete or corrupt steps older
// than the newest Keep are deleted too; newer ones are left for LatestStep
// to warn about.
func (m *Manager) Prune() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	steps, err := m.steps()
	if err != nil {
		return err
	}
	complete := make([]int, 0, len(steps))
	for _, s := range steps {
		if m.verifyStep(s) == nil {
			complete = append(complete, s)
		}
	}
	if len(complete) <= m.opts.Keep {
		return m.removeTemps()
	}
	cutoff := complete[len(complete)-m.opts.Keep]
	for _, s := range steps {
		if s >= cutoff {
			continue
		}
		for shard := 0; shard < m.opts.Shards; shard++ {
			os.Remove(filepath.Join(m.opts.Dir, m.dataName(s, shard)))
			os.Remove(filepath.Join(m.opts.Dir, m.manifestName(s, shard)))
		}
	}
	return m.removeTemps()
}

func (m *Manager) removeTemps() error {
	ents, err := os.ReadDir(m.opts.Dir)
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			os.Remove(filepath.Join(m.opts.Dir, e.Name()))
		}
	}
	return nil
}
