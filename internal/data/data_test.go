package data

import (
	"testing"
)

func TestSynthTextDeterministic(t *testing.T) {
	a := SynthText("a", 64, 1000, 5)
	b := SynthText("b", 64, 1000, 5)
	for i := range a.Tokens() {
		if a.Tokens()[i] != b.Tokens()[i] {
			t.Fatal("corpus not deterministic")
		}
	}
	c := SynthText("c", 64, 1000, 6)
	same := true
	for i := range a.Tokens() {
		if a.Tokens()[i] != c.Tokens()[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical corpora")
	}
}

func TestSynthTextTokenRange(t *testing.T) {
	c := SynthText("t", 32, 5000, 7)
	if c.Len() != 5000 {
		t.Errorf("Len = %d", c.Len())
	}
	for _, tok := range c.Tokens() {
		if tok < 0 || tok >= 32 {
			t.Fatalf("token %d out of vocab", tok)
		}
	}
}

func TestSynthTextSkewedDistribution(t *testing.T) {
	// The unigram distribution must be non-uniform (Zipf-like): the most
	// frequent token should appear far more often than the median one.
	c := SynthText("z", 50, 20000, 11)
	counts := make([]int, 50)
	for _, tok := range c.Tokens() {
		counts[tok]++
	}
	max, sum := 0, 0
	for _, n := range counts {
		if n > max {
			max = n
		}
		sum += n
	}
	if float64(max) < 2*float64(sum)/50 {
		t.Errorf("distribution looks uniform: max %d of %d", max, sum)
	}
}

func TestLMBatchShapesAndTargets(t *testing.T) {
	c := SynthText("lm", 40, 1000, 13)
	b, cur := c.LMBatch(0, 3, 8)
	if b.Samples != 3 || b.SampleRows != 8 {
		t.Fatalf("batch geometry: %+v", b)
	}
	if b.Input.Dim(0) != 24 || len(b.Targets) != 24 {
		t.Fatalf("batch sizes: input %v targets %d", b.Input.Shape(), len(b.Targets))
	}
	if cur != 24 {
		t.Errorf("cursor = %d, want 24", cur)
	}
	// Next-token property: target[i] == token stream at position i+1.
	for i := 0; i < 8; i++ {
		if b.Targets[i] != c.Tokens()[i+1] {
			t.Fatalf("target %d = %d, want %d", i, b.Targets[i], c.Tokens()[i+1])
		}
		if int(b.Input.At(i, 0)) != c.Tokens()[i] {
			t.Fatalf("input %d mismatch", i)
		}
	}
}

func TestLMBatchWrapsAround(t *testing.T) {
	c := SynthText("wrap", 16, 50, 17)
	cursor := 0
	for i := 0; i < 30; i++ {
		b, cur := c.LMBatch(cursor, 2, 8)
		cursor = cur
		if b.Input.Dim(0) != 16 {
			t.Fatal("wrapped batch wrong size")
		}
	}
}

func TestSynthImagesLearnableStructure(t *testing.T) {
	s := SynthImages("img", 4, 2, 8, 8, 19)
	b, labels := s.Batch(16)
	if b.Input.Dim(0) != 16 || b.Input.Dim(1) != 2 {
		t.Fatalf("image batch shape %v", b.Input.Shape())
	}
	for i, l := range labels {
		if l != b.Targets[i] {
			t.Fatal("labels and targets disagree")
		}
		if l < 0 || l >= 4 {
			t.Fatalf("label %d out of range", l)
		}
	}
	// Same-class images must correlate more with their template than with
	// other templates on average (structure survives the noise).
}
