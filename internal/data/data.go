// Package data provides the deterministic synthetic datasets that stand in
// for the paper's corpora (Wikitext-103 and BookCorpus) and image sets. The
// statistical-efficiency experiment (Figure 4) only needs a stationary
// learnable distribution — it checks that pruned+SAMO training converges
// like dense training, not what it converges to — so a Markov token source
// with Zipfian unigrams captures everything that matters: a skewed vocabulary
// and learnable short-range structure.
package data

import (
	"fmt"
	"math"

	"github.com/sparse-dl/samo/internal/axonn"
	"github.com/sparse-dl/samo/internal/nn"
	"github.com/sparse-dl/samo/internal/tensor"
)

// Corpus is a deterministic synthetic token stream.
type Corpus struct {
	Name   string
	Vocab  int
	tokens []int
}

// SynthText builds a corpus of n tokens over the given vocabulary from a
// first-order Markov chain whose rows are Zipf-distributed with
// state-dependent offsets — natural-language-like skew plus bigram structure
// a language model can learn.
func SynthText(name string, vocab, n int, seed uint64) *Corpus {
	if vocab < 2 || n < 1 {
		panic(fmt.Sprintf("data: bad corpus spec vocab=%d n=%d", vocab, n))
	}
	rng := tensor.NewRNG(seed)
	// Zipf CDF over the vocabulary.
	weights := make([]float64, vocab)
	var total float64
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), 1.1)
		total += weights[i]
	}
	cdf := make([]float64, vocab)
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cdf[i] = acc
	}
	sample := func(u float64) int {
		lo, hi := 0, vocab-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	tokens := make([]int, n)
	prev := 0
	for i := range tokens {
		// Mixture: mostly Zipf draws (skewed marginal), sometimes the
		// deterministic successor of the previous token (learnable bigram
		// structure that lowers the achievable perplexity well below the
		// unigram entropy).
		var t int
		if rng.Float64() < 0.35 {
			t = (prev*7 + 3) % vocab
		} else {
			t = sample(rng.Float64())
		}
		tokens[i] = t
		prev = t
	}
	return &Corpus{Name: name, Vocab: vocab, tokens: tokens}
}

// Len returns the token count.
func (c *Corpus) Len() int { return len(c.tokens) }

// Tokens returns the raw stream (not to be modified).
func (c *Corpus) Tokens() []int { return c.tokens }

// LMBatch cuts `samples` sequences of length seq starting at cursor and
// returns the axonn.Batch with next-token targets, plus the advanced cursor
// (wrapping). Target of the final position of each sample is the following
// token in the stream.
func (c *Corpus) LMBatch(cursor, samples, seq int) (axonn.Batch, int) {
	need := seq + 1
	toks := make([]int, 0, samples*seq)
	targets := make([]int, 0, samples*seq)
	for s := 0; s < samples; s++ {
		if cursor+need >= len(c.tokens) {
			cursor = 0
		}
		window := c.tokens[cursor : cursor+need]
		toks = append(toks, window[:seq]...)
		targets = append(targets, window[1:]...)
		cursor += seq
	}
	return axonn.Batch{
		Input:      nn.TokensToTensor(toks),
		Targets:    targets,
		SampleRows: seq,
		Samples:    samples,
	}, cursor
}

// ImageSet is a deterministic synthetic labeled image collection: each class
// is a distinct smooth template plus noise, linearly separable enough for a
// small CNN to learn quickly.
type ImageSet struct {
	Name      string
	Classes   int
	C, H, W   int
	templates []*tensor.Tensor
	rng       *tensor.RNG
}

// SynthImages builds an image set with the given geometry.
func SynthImages(name string, classes, c, h, w int, seed uint64) *ImageSet {
	rng := tensor.NewRNG(seed)
	s := &ImageSet{Name: name, Classes: classes, C: c, H: h, W: w, rng: rng}
	for k := 0; k < classes; k++ {
		t := tensor.New(c, h, w)
		fx := float64(k%3 + 1)
		fy := float64(k/3 + 1)
		for ch := 0; ch < c; ch++ {
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					v := math.Sin(fx*float64(x)/float64(w)*math.Pi+float64(ch)) *
						math.Cos(fy*float64(y)/float64(h)*math.Pi)
					t.Set(float32(v), ch, y, x)
				}
			}
		}
		s.templates = append(s.templates, t)
	}
	return s
}

// Batch draws n labeled images (template + Gaussian noise).
func (s *ImageSet) Batch(n int) (axonn.Batch, []int) {
	x := tensor.New(n, s.C, s.H, s.W)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		k := s.rng.Intn(s.Classes)
		labels[i] = k
		dst := x.Slice(i, i+1)
		dst.CopyFrom(s.templates[k].Reshape(1, s.C, s.H, s.W))
		for j := range dst.Data() {
			dst.Data()[j] += float32(s.rng.Norm()) * 0.3
		}
	}
	return axonn.Batch{Input: x, Targets: labels, SampleRows: 1, Samples: n}, labels
}
