// Package parallel provides the persistent worker pool that executes every
// CPU kernel in the repository — dense GEMMs, im2col, fp16 conversions, and
// the sparse compress/expand and SpMM/SDDMM hot paths all partition their
// iteration spaces through For or Run.
//
// The pool replaces the seed's per-call goroutine spawning: workers are
// started once (lazily, on first use) and fed fixed-size task descriptors
// through a buffered channel, so dispatching a kernel costs two channel
// operations instead of a goroutine create/destroy pair. Submission never
// blocks — when the queue is full the submitting goroutine runs the chunk
// inline — and waiters help drain the queue instead of sleeping, so nested
// parallel sections cannot deadlock and the pool is work-conserving.
//
// Run is allocation-free in steady state (task descriptors travel by value,
// completion counters are recycled through a free list), which is what lets
// kernels like MatMulInto promise zero allocations per call.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers bounds the parallelism of a single For/Run call. It is atomic
// so tests (and callers tuning mid-run) can flip it while kernels are in
// flight on other goroutines without a data race.
var maxWorkers atomic.Int64

func init() { maxWorkers.Store(int64(runtime.GOMAXPROCS(0))) }

// SetWorkers overrides the per-call worker bound (n < 1 resets to
// GOMAXPROCS) and returns the previous value. It is safe to call
// concurrently with running kernels: in-flight calls keep the bound they
// read at entry, subsequent calls observe the new one. The persistent pool
// itself is sized at GOMAXPROCS once; SetWorkers only narrows how many
// chunks a call fans out, so changing it mid-run never strands tasks.
func SetWorkers(n int) int {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	return int(maxWorkers.Swap(int64(n)))
}

// Workers returns the current per-call worker bound.
func Workers() int { return int(maxWorkers.Load()) }

// task is one contiguous chunk of an iteration space. fn is always a
// top-level function (never a closure) so building a task allocates
// nothing; per-call state travels through ctx.
type task struct {
	ctx     any
	fn      func(ctx any, lo, hi int)
	lo, hi  int
	pending *atomic.Int64
}

// Pool is a concurrency-safe typed free list: Get pops a recycled *T (or
// allocates a zero one), Put pushes it back. The zero value is ready to
// use. It is a plain locked list rather than a sync.Pool deliberately —
// the GC may clear sync.Pools, and the zero-allocation contracts on kernel
// dispatch and training steps must hold across collections. Shared by the
// pool's own completion counters, the tensor kernels' job descriptors, the
// sparse gather/scatter jobs, and the nn layer cache structs.
type Pool[T any] struct {
	mu   sync.Mutex
	list []*T
}

// Get returns a recycled or freshly zero-allocated *T.
func (p *Pool[T]) Get() *T {
	p.mu.Lock()
	n := len(p.list)
	if n == 0 {
		p.mu.Unlock()
		return new(T)
	}
	x := p.list[n-1]
	p.list = p.list[:n-1]
	p.mu.Unlock()
	return x
}

// Put recycles x. The caller must not use x afterwards; clear any pointer
// fields first if they should not be retained.
func (p *Pool[T]) Put(x *T) {
	p.mu.Lock()
	p.list = append(p.list, x)
	p.mu.Unlock()
}

// pendingFree recycles the per-call completion counters.
var pendingFree Pool[atomic.Int64]

// pool is the process-wide worker pool, started on first use. The task
// channel is buffered generously so bursts of small kernels from many
// training goroutines queue instead of forcing inline execution.
var pool struct {
	once  sync.Once
	tasks chan task
}

func startPool() {
	n := runtime.GOMAXPROCS(0)
	pool.tasks = make(chan task, 8*n)
	for i := 0; i < n; i++ {
		go func() {
			for t := range pool.tasks {
				t.fn(t.ctx, t.lo, t.hi)
				t.pending.Add(-1)
			}
		}()
	}
}

// Run partitions [0, n) into contiguous chunks of at least grain iterations
// and executes fn(ctx, lo, hi) over them on the worker pool, running the
// final chunk on the calling goroutine. fn must be safe for concurrent
// chunks (chunks are disjoint). To keep the call allocation-free, pass a
// top-level function for fn and carry per-call state in ctx (a pointer in an
// interface does not allocate).
func Run(n, grain int, ctx any, fn func(ctx any, lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	workers := Workers()
	if max := (n + grain - 1) / grain; workers > max {
		workers = max
	}
	if workers <= 1 {
		fn(ctx, 0, n)
		return
	}
	pool.once.Do(startPool)
	pending := pendingFree.Get()
	chunk := (n + workers - 1) / workers
	lo := 0
	for w := 0; w < workers-1; w++ {
		hi := lo + chunk
		if hi >= n {
			break
		}
		pending.Add(1)
		select {
		case pool.tasks <- task{ctx: ctx, fn: fn, lo: lo, hi: hi, pending: pending}:
		default:
			// Queue full: run the chunk inline rather than blocking.
			fn(ctx, lo, hi)
			pending.Add(-1)
		}
		lo = hi
	}
	// The caller always executes the last chunk itself, so at least one
	// chunk makes progress even when the pool is saturated.
	fn(ctx, lo, n)
	// Helping wait: drain queued tasks (ours or anyone's) until our chunks
	// are done. Waiters never sleep while work is queued, so a Run issued
	// from inside a pool task can always make progress — no deadlock.
	for pending.Load() > 0 {
		select {
		case t := <-pool.tasks:
			t.fn(t.ctx, t.lo, t.hi)
			t.pending.Add(-1)
		default:
			runtime.Gosched()
		}
	}
	pendingFree.Put(pending)
}

// forCtx adapts For's closure to Run's top-level-function shape.
func forCtx(ctx any, lo, hi int) { (*(ctx.(*func(lo, hi int))))(lo, hi) }

// For runs fn(lo, hi) over a static partition of [0, n), like Run, but with
// the convenience of a closure. The closure escapes into the pool, so For
// allocates per call — it is the prototyping form. Run IS the
// context-carrying variant: kernels with zero-allocation contracts define
// a job struct recycled through a Pool, pass it as ctx with a top-level
// fn, and allocate nothing (see gemmV2Job, ixJob, attnJob, im2colJob for
// the pattern). As of PR 2 every hot-path kernel in the repository uses
// Run; For remains for tests and one-off tools.
func For(n, grain int, fn func(lo, hi int)) {
	Run(n, grain, &fn, forCtx)
}
