package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1000, 4096} {
		var hits atomic.Int64
		seen := make([]int32, n)
		For(n, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
				hits.Add(1)
			}
		})
		if int(hits.Load()) != n {
			t.Fatalf("n=%d: covered %d iterations", n, hits.Load())
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestRunSerialWhenSmall(t *testing.T) {
	// Below the grain the whole range must run on the caller (one chunk).
	var chunks atomic.Int64
	Run(10, 100, nil, func(_ any, lo, hi int) {
		chunks.Add(1)
		if lo != 0 || hi != 10 {
			t.Errorf("expected single chunk [0,10), got [%d,%d)", lo, hi)
		}
	})
	if chunks.Load() != 1 {
		t.Fatalf("expected 1 chunk, got %d", chunks.Load())
	}
}

func TestSetWorkers(t *testing.T) {
	old := SetWorkers(3)
	defer SetWorkers(old)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", Workers())
	}
	if prev := SetWorkers(0); prev != 3 {
		t.Fatalf("SetWorkers returned %d, want 3", prev)
	}
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("SetWorkers(0) should reset to GOMAXPROCS, got %d", Workers())
	}
}

// TestNestedRun exercises Run called from inside a pool task. The helping
// wait must keep the pool deadlock-free even when nesting depth exceeds the
// worker count.
func TestNestedRun(t *testing.T) {
	var total atomic.Int64
	For(32, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			For(64, 1, func(l, h int) {
				total.Add(int64(h - l))
			})
		}
	})
	if total.Load() != 32*64 {
		t.Fatalf("nested iterations = %d, want %d", total.Load(), 32*64)
	}
}

// TestPoolRaceStress hammers the pool from many goroutines while SetWorkers
// flips concurrently — run under -race this is the regression test for the
// seed's unsynchronized maxWorkers write.
func TestPoolRaceStress(t *testing.T) {
	const goroutines = 8
	const iters = 200
	stop := make(chan struct{})
	flipperDone := make(chan struct{})
	go func() {
		defer close(flipperDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			SetWorkers(1 + i%7)
			runtime.Gosched()
		}
	}()
	var sum atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			buf := make([]int64, 512)
			for it := 0; it < iters; it++ {
				For(len(buf), 16, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						buf[i] = int64(seed + it + i)
					}
				})
				var local int64
				for _, v := range buf {
					local += v
				}
				sum.Add(local)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	<-flipperDone
	SetWorkers(0)
	if sum.Load() == 0 {
		t.Fatal("stress produced no work")
	}
}

func TestRunZeroAlloc(t *testing.T) {
	// Warm the pool and the pending free list.
	ctx := new(int)
	fn := func(_ any, lo, hi int) {}
	Run(1024, 1, ctx, fn)
	allocs := testing.AllocsPerRun(100, func() {
		Run(1024, 1, ctx, fn)
	})
	if allocs != 0 {
		t.Fatalf("Run allocated %.1f times per call, want 0", allocs)
	}
}
