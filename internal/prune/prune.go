// Package prune implements the neural-network pruning algorithms that
// produce the sparse subnetworks SAMO exploits. The paper uses You et al.'s
// "Early-Bird Tickets" (ICLR 2020) to prune 90% of the parameters; this
// package provides that algorithm plus the magnitude/random baselines pruning
// papers compare against, all emitting the same Result consumed by SAMO:
// per-layer index sets of unpruned parameters (the paper's ind = ⋃ indᵢ).
package prune

import (
	"fmt"
	"math"
	"sort"

	"github.com/sparse-dl/samo/internal/sparse"
)

// Layer describes one prunable parameter tensor.
type Layer struct {
	Name   string
	Values []float32 // current parameter values (flattened 1-D view)
}

// Result is the output of a pruning algorithm: one shared index per layer.
type Result struct {
	Names   []string
	Indices map[string]*sparse.Index
}

// Sparsity returns the achieved global pruned fraction.
func (r *Result) Sparsity() float64 {
	var total, kept int
	for _, ix := range r.Indices {
		total += ix.FullLen()
		kept += ix.NNZ()
	}
	if total == 0 {
		return 0
	}
	return 1 - float64(kept)/float64(total)
}

// TotalParams returns the unpruned parameter count φ.
func (r *Result) TotalParams() int {
	var total int
	for _, ix := range r.Indices {
		total += ix.FullLen()
	}
	return total
}

// KeptParams returns the number of surviving parameters fφ.
func (r *Result) KeptParams() int {
	var kept int
	for _, ix := range r.Indices {
		kept += ix.NNZ()
	}
	return kept
}

// Index returns the index for a layer, or nil if the layer is not pruned.
func (r *Result) Index(name string) *sparse.Index {
	if r == nil {
		return nil
	}
	return r.Indices[name]
}

// MaterializeCSR turns one layer's pruning index into executable sparse
// state: a CSR over the (rows, cols) matrix view of the layer, holding the
// surviving entries of values (the layer's current dense parameters, in the
// same 1-D view the index addresses). This is the bridge from "indices that
// compress storage" to "a matrix sparse kernels can run on" — nil if the
// layer is not pruned.
func (r *Result) MaterializeCSR(name string, values []float32, rows, cols int) *sparse.CSR {
	ix := r.Index(name)
	if ix == nil {
		return nil
	}
	if len(values) != ix.FullLen() {
		panic(fmt.Sprintf("prune: MaterializeCSR %s: %d values for a %d-element layer",
			name, len(values), ix.FullLen()))
	}
	return sparse.CSRFromDenseIndexed(ix, values, rows, cols)
}

// MagnitudeGlobal prunes the globally smallest |w| until the target sparsity
// is reached, the classic lottery-ticket criterion (Frankle & Carbin). Exact
// ties are broken by layer order then index, keeping results deterministic.
func MagnitudeGlobal(layers []Layer, sparsity float64) *Result {
	checkSparsity(sparsity)
	type entry struct {
		layer int
		idx   int32
		bits  uint32
	}
	var total int
	for _, l := range layers {
		total += len(l.Values)
	}
	entries := make([]entry, 0, total)
	for li, l := range layers {
		for i, v := range l.Values {
			entries = append(entries, entry{layer: li, idx: int32(i), bits: magBits(v)})
		}
	}
	sort.Slice(entries, func(a, b int) bool {
		ea, eb := entries[a], entries[b]
		if ea.bits != eb.bits {
			return ea.bits < eb.bits
		}
		if ea.layer != eb.layer {
			return ea.layer < eb.layer
		}
		return ea.idx < eb.idx
	})
	nPrune := int(sparsity * float64(total))
	masks := make([]*sparse.Mask, len(layers))
	for li, l := range layers {
		masks[li] = sparse.FullMask(len(l.Values))
	}
	for _, e := range entries[:nPrune] {
		masks[e.layer].Clear(int(e.idx))
	}
	return resultFromMasks(layers, masks)
}

// MagnitudePerLayer prunes the smallest |w| within each layer independently,
// so every layer hits exactly the target sparsity (the uniform pruning the
// paper's memory model assumes).
func MagnitudePerLayer(layers []Layer, sparsity float64) *Result {
	checkSparsity(sparsity)
	masks := make([]*sparse.Mask, len(layers))
	for li, l := range layers {
		masks[li] = maskSmallest(l.Values, int(sparsity*float64(len(l.Values))))
	}
	return resultFromMasks(layers, masks)
}

// maskSmallest prunes the nPrune smallest-magnitude entries. The sort key
// is the magnitude's IEEE-754 bit pattern packed with the element index,
// which is a TOTAL order: monotone with |v| over all finite values, −0
// tied with +0, every NaN above +Inf (so NaNs are kept, never silently
// pruned). A float comparator is not — NaN breaks its strict weak
// ordering and the selection at the cut becomes an implementation accident
// — so equal magnitudes at the threshold are pruned in ascending index
// order on every machine, and gradual schedules replay identically.
func maskSmallest(values []float32, nPrune int) *sparse.Mask {
	keys := make([]uint64, len(values))
	for i, v := range values {
		keys[i] = uint64(magBits(v))<<32 | uint64(uint32(i))
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	m := sparse.FullMask(len(values))
	for _, k := range keys[:nPrune] {
		m.Clear(int(uint32(k)))
	}
	return m
}

// magBits returns the IEEE-754 bit pattern of |v| — the order-preserving
// integer magnitude key shared by every magnitude criterion here and by
// the in-training gradual pruner, so all of them break ties identically.
func magBits(v float32) uint32 { return math.Float32bits(v) &^ (1 << 31) }

// Random prunes a uniformly random subset of each layer to the target
// sparsity — the control baseline showing magnitude information matters for
// accuracy (it does not matter for SAMO's memory/communication savings,
// which depend only on the count).
func Random(layers []Layer, sparsity float64, seed uint64) *Result {
	checkSparsity(sparsity)
	rng := newSplitMix(seed)
	masks := make([]*sparse.Mask, len(layers))
	for li, l := range layers {
		n := len(l.Values)
		perm := rng.perm(n)
		m := sparse.FullMask(n)
		for _, i := range perm[:int(sparsity*float64(n))] {
			m.Clear(i)
		}
		masks[li] = m
	}
	return resultFromMasks(layers, masks)
}

// BlockStructured prunes contiguous blocks of the given size by aggregate
// magnitude, the structured variant (Gray et al., Chen et al.) that real
// block-sparse kernels need. Block boundaries follow the 1-D view.
func BlockStructured(layers []Layer, sparsity float64, blockSize int) *Result {
	checkSparsity(sparsity)
	if blockSize < 1 {
		panic("prune: blockSize must be >= 1")
	}
	masks := make([]*sparse.Mask, len(layers))
	for li, l := range layers {
		n := len(l.Values)
		nBlocks := (n + blockSize - 1) / blockSize
		type entry struct {
			block int
			mag   float64
		}
		entries := make([]entry, nBlocks)
		for b := 0; b < nBlocks; b++ {
			var s float64
			for i := b * blockSize; i < (b+1)*blockSize && i < n; i++ {
				v := float64(l.Values[i])
				if v < 0 {
					v = -v
				}
				s += v
			}
			entries[b] = entry{block: b, mag: s}
		}
		sort.Slice(entries, func(a, b int) bool {
			if entries[a].mag != entries[b].mag {
				return entries[a].mag < entries[b].mag
			}
			return entries[a].block < entries[b].block
		})
		m := sparse.FullMask(n)
		toPrune := int(sparsity * float64(nBlocks))
		for _, e := range entries[:toPrune] {
			for i := e.block * blockSize; i < (e.block+1)*blockSize && i < n; i++ {
				m.Clear(i)
			}
		}
		masks[li] = m
	}
	return resultFromMasks(layers, masks)
}

func resultFromMasks(layers []Layer, masks []*sparse.Mask) *Result {
	r := &Result{Indices: make(map[string]*sparse.Index, len(layers))}
	for li, l := range layers {
		r.Names = append(r.Names, l.Name)
		r.Indices[l.Name] = sparse.NewIndex(masks[li])
	}
	return r
}

func checkSparsity(s float64) {
	if s < 0 || s >= 1 {
		panic(fmt.Sprintf("prune: sparsity %g out of range [0,1)", s))
	}
}

// splitMix is a local deterministic RNG (duplicated from tensor to avoid the
// dependency for a package that only needs permutations).
type splitMix struct{ state uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{state: seed} }

func (r *splitMix) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *splitMix) perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := int(r.next() % uint64(i+1))
		p[i], p[j] = p[j], p[i]
	}
	return p
}
