package prune

import "fmt"

// Schedule is Zhu & Gupta's gradual magnitude pruning schedule ("To prune,
// or not to prune", 2017): the target sparsity ramps from Initial to Final
// along a cubic curve over [BeginStep, EndStep], with a prune event every
// Frequency steps. The cubic front-loads pruning while the network still
// has redundancy to absorb it and slows down as the surviving weights
// become load-bearing — the standard recipe for recovering accuracy at
// high sparsity that one-shot pruning loses.
//
// A Schedule is pure arithmetic over the step index: every rank of a
// distributed run evaluates it independently and lands on identical events
// and identical targets, so gradual pruning needs no extra communication.
type Schedule struct {
	// Initial and Final are the sparsity endpoints of the ramp (fraction
	// of prunable weights removed), 0 ≤ Initial ≤ Final < 1. Initial is
	// normally the sparsity of the one-shot pruning the run started from;
	// an event whose target does not exceed the current sparsity prunes
	// nothing.
	Initial, Final float64
	// BeginStep and EndStep bound the ramp in training-step indices
	// (inclusive). EndStep is always a prune event, so Final is reached
	// exactly even when the window is not a multiple of Frequency.
	// BeginStep == EndStep degenerates to one-shot pruning at that step.
	BeginStep, EndStep int
	// Frequency is the step interval between prune events inside the
	// window (≥ 1).
	Frequency int
	// Global ranks all prunable parameters in one magnitude pool instead
	// of pruning each parameter to the target independently. Under
	// pipeline parallelism the pool is per stage: each stage ranks the
	// parameters it hosts (exactly global for a single stage).
	Global bool
}

// Validate reports whether the schedule is well-formed. CLI front-ends
// call this on flag values; the training engines call it again so a
// hand-built config cannot smuggle in an invalid ramp.
func (s Schedule) Validate() error {
	if s.Initial < 0 || s.Initial >= 1 {
		return fmt.Errorf("prune: schedule initial sparsity %g out of range [0,1)", s.Initial)
	}
	if s.Final < 0 || s.Final >= 1 {
		return fmt.Errorf("prune: schedule final sparsity %g out of range [0,1)", s.Final)
	}
	if s.Final < s.Initial {
		return fmt.Errorf("prune: schedule final sparsity %g below initial %g (sparsity can only grow)", s.Final, s.Initial)
	}
	if s.BeginStep < 0 {
		return fmt.Errorf("prune: schedule begin step %d negative", s.BeginStep)
	}
	if s.EndStep < s.BeginStep {
		return fmt.Errorf("prune: schedule end step %d before begin step %d", s.EndStep, s.BeginStep)
	}
	if s.Frequency < 1 {
		return fmt.Errorf("prune: schedule frequency %d, must be ≥ 1", s.Frequency)
	}
	return nil
}

// SparsityAt returns the cubic ramp target at step:
//
//	s(t) = Final + (Initial−Final)·(1 − (t−t0)/(te−t0))³
//
// clamped to Initial before BeginStep and Final from EndStep on.
func (s Schedule) SparsityAt(step int) float64 {
	// The Final clamp wins at BeginStep == EndStep: the one-shot degenerate
	// schedule fires its single event at the final sparsity.
	if step >= s.EndStep {
		return s.Final
	}
	if step <= s.BeginStep {
		return s.Initial
	}
	f := 1 - float64(step-s.BeginStep)/float64(s.EndStep-s.BeginStep)
	return s.Final + (s.Initial-s.Final)*f*f*f
}

// IsPruneEvent reports whether step is a prune event: BeginStep-aligned
// multiples of Frequency inside the window, plus EndStep itself.
func (s Schedule) IsPruneEvent(step int) bool {
	if step < s.BeginStep || step > s.EndStep {
		return false
	}
	return step == s.EndStep || (step-s.BeginStep)%s.Frequency == 0
}

// Events lists the prune-event steps in ascending order.
func (s Schedule) Events() []int {
	var out []int
	for t := s.BeginStep; t < s.EndStep; t += s.Frequency {
		out = append(out, t)
	}
	return append(out, s.EndStep)
}
