package prune

import (
	"math"
	"reflect"
	"testing"
)

func TestScheduleValidate(t *testing.T) {
	ok := Schedule{Initial: 0.5, Final: 0.9, BeginStep: 10, EndStep: 50, Frequency: 5}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	bad := []Schedule{
		{Initial: -0.1, Final: 0.9, EndStep: 1, Frequency: 1},
		{Initial: 0.5, Final: 1.0, EndStep: 1, Frequency: 1},
		{Initial: 0.9, Final: 0.5, EndStep: 1, Frequency: 1},
		{Initial: 0.5, Final: 0.9, BeginStep: -1, EndStep: 1, Frequency: 1},
		{Initial: 0.5, Final: 0.9, BeginStep: 5, EndStep: 4, Frequency: 1},
		{Initial: 0.5, Final: 0.9, BeginStep: 0, EndStep: 1, Frequency: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schedule %d accepted: %+v", i, s)
		}
	}
}

func TestScheduleCubicRamp(t *testing.T) {
	s := Schedule{Initial: 0.5, Final: 0.9, BeginStep: 100, EndStep: 200, Frequency: 10}
	if got := s.SparsityAt(0); got != 0.5 {
		t.Fatalf("before window: %g, want Initial", got)
	}
	if got := s.SparsityAt(100); got != 0.5 {
		t.Fatalf("at begin: %g, want Initial", got)
	}
	if got := s.SparsityAt(200); got != 0.9 {
		t.Fatalf("at end: %g, want Final", got)
	}
	if got := s.SparsityAt(10_000); got != 0.9 {
		t.Fatalf("after window: %g, want Final", got)
	}
	// Midpoint of the cubic: Final + (Initial-Final)·(1/2)³.
	want := 0.9 + (0.5-0.9)*0.125
	if got := s.SparsityAt(150); math.Abs(got-want) > 1e-12 {
		t.Fatalf("midpoint: %g, want %g", got, want)
	}
	// The ramp is monotone non-decreasing across the window.
	prev := -1.0
	for step := 90; step <= 210; step++ {
		got := s.SparsityAt(step)
		if got < prev {
			t.Fatalf("ramp decreased at step %d: %g < %g", step, got, prev)
		}
		prev = got
	}
}

func TestScheduleEvents(t *testing.T) {
	s := Schedule{Initial: 0.5, Final: 0.9, BeginStep: 10, EndStep: 27, Frequency: 5}
	want := []int{10, 15, 20, 25, 27} // EndStep always included
	if got := s.Events(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Events() = %v, want %v", got, want)
	}
	for step := 0; step < 40; step++ {
		isEvent := false
		for _, e := range want {
			if e == step {
				isEvent = true
			}
		}
		if got := s.IsPruneEvent(step); got != isEvent {
			t.Errorf("IsPruneEvent(%d) = %v, want %v", step, got, isEvent)
		}
	}
}

func TestScheduleOneShotDegenerate(t *testing.T) {
	s := Schedule{Initial: 0.5, Final: 0.9, BeginStep: 7, EndStep: 7, Frequency: 3}
	if err := s.Validate(); err != nil {
		t.Fatalf("degenerate one-shot schedule rejected: %v", err)
	}
	if got := s.Events(); !reflect.DeepEqual(got, []int{7}) {
		t.Fatalf("Events() = %v, want [7]", got)
	}
	if !s.IsPruneEvent(7) || s.IsPruneEvent(6) || s.IsPruneEvent(8) {
		t.Fatal("one-shot schedule must fire exactly at its step")
	}
	if got := s.SparsityAt(7); got != 0.9 {
		t.Fatalf("one-shot target %g, want Final", got)
	}
}

// TestMaskSmallestTieBreak pins the threshold tie-break: equal magnitudes at
// the cut are pruned in ascending index order — the sort key is the IEEE-754
// magnitude bit pattern packed with the index, never a float comparator.
func TestMaskSmallestTieBreak(t *testing.T) {
	// Five entries tie at |v| = 0.5 (including a -0.5 and a +0.5 pair and a
	// negative zero tying a positive zero below them).
	values := []float32{0.5, 2, -0.5, 0.5, float32(math.Copysign(0, -1)), -0.5, 0, 3}
	m := maskSmallest(values, 4)
	// The two zeros (idx 4, 6) go first; then the 0.5-magnitude tie breaks
	// by index: 0, 2 pruned, 3, 5 kept.
	wantPruned := map[int]bool{4: true, 6: true, 0: true, 2: true}
	for i := range values {
		if got := !m.Get(i); got != wantPruned[i] {
			t.Errorf("index %d pruned=%v, want %v", i, got, wantPruned[i])
		}
	}
}

// TestMaskSmallestNaNKept pins NaN ordering: NaN bit patterns sit above +Inf
// in the magnitude order, so NaN entries are never silently pruned while
// finite weights survive.
func TestMaskSmallestNaNKept(t *testing.T) {
	nan := float32(math.NaN())
	values := []float32{nan, 0.1, 0.2, nan, 0.3, float32(math.Inf(1))}
	m := maskSmallest(values, 3)
	for _, i := range []int{0, 3, 5} {
		if !m.Get(i) {
			t.Errorf("index %d (NaN/Inf) was pruned; must rank above all finite magnitudes", i)
		}
	}
	for _, i := range []int{1, 2, 4} {
		if m.Get(i) {
			t.Errorf("index %d (small finite) survived; want pruned", i)
		}
	}
}

// TestMagnitudeGlobalTieBreak pins the global criterion's total order:
// (magnitude bits, layer, index).
func TestMagnitudeGlobalTieBreak(t *testing.T) {
	layers := []Layer{
		{Name: "a", Values: []float32{0.5, 1, -0.5, 4}},
		{Name: "b", Values: []float32{-0.5, 5, 0.5, 6}},
	}
	r := MagnitudeGlobal(layers, 0.375) // prune 3 of 8: the tie pool has 4
	ixa, ixb := r.Index("a"), r.Index("b")
	// Layer a's ties (idx 0, 2) go first, then layer b's idx 0.
	if got := ixa.IDs(); !reflect.DeepEqual(got, []int32{1, 3}) {
		t.Fatalf("layer a kept %v, want [1 3]", got)
	}
	if got := ixb.IDs(); !reflect.DeepEqual(got, []int32{1, 2, 3}) {
		t.Fatalf("layer b kept %v, want [1 2 3]", got)
	}
}
