package prune

import "github.com/sparse-dl/samo/internal/sparse"

// EarlyBird implements the convergence test of You et al.'s "Drawing
// Early-Bird Tickets" (ICLR 2020), the pruning algorithm the paper uses for
// all experiments. The insight: the *mask* induced by magnitude pruning
// stabilizes very early in training, long before the weights converge. The
// algorithm therefore trains normally, recomputes the candidate mask every
// epoch, and stops ("draws the ticket") once the normalized Hamming distance
// between the last Window masks falls below Epsilon.
//
// Usage: call Observe after each epoch with the current parameter values;
// when Converged returns true, Ticket holds the final pruning Result.
type EarlyBird struct {
	// Sparsity is the target pruned fraction (paper: 0.9).
	Sparsity float64
	// Epsilon is the max normalized Hamming distance for convergence
	// (You et al. use 0.1 by default).
	Epsilon float64
	// Window is how many consecutive masks must agree (You et al. use 5).
	Window int
	// PerLayer selects layer-uniform pruning (true, the paper's setting)
	// versus global magnitude.
	PerLayer bool

	history   [][]*sparse.Mask // ring buffer of per-layer masks
	layerName []string
	ticket    *Result
	epochs    int
}

// NewEarlyBird returns an EarlyBird with You et al.'s default hyperparameters
// at the given sparsity.
func NewEarlyBird(sparsity float64) *EarlyBird {
	checkSparsity(sparsity)
	return &EarlyBird{Sparsity: sparsity, Epsilon: 0.1, Window: 5, PerLayer: true}
}

// Epochs returns how many epochs have been observed.
func (eb *EarlyBird) Epochs() int { return eb.epochs }

// Observe records the mask induced by the current parameters and reports
// whether the ticket has converged. Once converged, further Observe calls
// are no-ops returning true.
func (eb *EarlyBird) Observe(layers []Layer) bool {
	if eb.ticket != nil {
		return true
	}
	eb.epochs++
	var res *Result
	if eb.PerLayer {
		res = MagnitudePerLayer(layers, eb.Sparsity)
	} else {
		res = MagnitudeGlobal(layers, eb.Sparsity)
	}
	masks := make([]*sparse.Mask, len(layers))
	if eb.layerName == nil {
		for _, l := range layers {
			eb.layerName = append(eb.layerName, l.Name)
		}
	}
	for i, l := range layers {
		masks[i] = res.Indices[l.Name].Mask()
	}
	eb.history = append(eb.history, masks)
	if len(eb.history) > eb.Window {
		eb.history = eb.history[1:]
	}
	if len(eb.history) < eb.Window {
		return false
	}
	// Max pairwise distance between the newest mask and each mask in the
	// window (You et al. compare the last mask against the previous ones).
	newest := eb.history[len(eb.history)-1]
	for _, old := range eb.history[:len(eb.history)-1] {
		if maxLayerDistance(newest, old) > eb.Epsilon {
			return false
		}
	}
	eb.ticket = res
	return true
}

func maxLayerDistance(a, b []*sparse.Mask) float64 {
	var m float64
	for i := range a {
		if d := sparse.HammingDistance(a[i], b[i]); d > m {
			m = d
		}
	}
	return m
}

// Ticket returns the converged pruning result, or nil if not yet converged.
func (eb *EarlyBird) Ticket() *Result { return eb.ticket }

// Force draws the ticket from the given parameters immediately, regardless
// of convergence — the fallback when a training budget expires first.
func (eb *EarlyBird) Force(layers []Layer) *Result {
	if eb.ticket == nil {
		if eb.PerLayer {
			eb.ticket = MagnitudePerLayer(layers, eb.Sparsity)
		} else {
			eb.ticket = MagnitudeGlobal(layers, eb.Sparsity)
		}
	}
	return eb.ticket
}
