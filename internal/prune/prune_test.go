package prune

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/sparse-dl/samo/internal/tensor"
)

func makeLayers(sizes []int, seed uint64) []Layer {
	rng := tensor.NewRNG(seed)
	layers := make([]Layer, len(sizes))
	for i, n := range sizes {
		vals := make([]float32, n)
		for j := range vals {
			vals[j] = float32(rng.Norm())
		}
		layers[i] = Layer{Name: layerName(i), Values: vals}
	}
	return layers
}

func layerName(i int) string { return string(rune('a' + i)) }

func TestMagnitudeGlobalSparsity(t *testing.T) {
	layers := makeLayers([]int{100, 200, 50}, 1)
	r := MagnitudeGlobal(layers, 0.9)
	if got := r.Sparsity(); math.Abs(got-0.9) > 0.01 {
		t.Errorf("global sparsity %g, want 0.9", got)
	}
	if r.TotalParams() != 350 {
		t.Errorf("TotalParams = %d", r.TotalParams())
	}
	if r.KeptParams() != 35 {
		t.Errorf("KeptParams = %d", r.KeptParams())
	}
}

func TestMagnitudeKeepsLargest(t *testing.T) {
	layers := []Layer{{Name: "w", Values: []float32{0.1, -5, 0.2, 3, -0.05}}}
	r := MagnitudePerLayer(layers, 0.6) // prune 3, keep 2
	ids := r.Indices["w"].IDs()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Errorf("kept %v, want [1 3] (the largest magnitudes)", ids)
	}
}

func TestMagnitudePerLayerUniform(t *testing.T) {
	layers := makeLayers([]int{1000, 500}, 2)
	r := MagnitudePerLayer(layers, 0.9)
	for _, name := range r.Names {
		ix := r.Indices[name]
		got := 1 - float64(ix.NNZ())/float64(ix.FullLen())
		if math.Abs(got-0.9) > 0.01 {
			t.Errorf("layer %s sparsity %g", name, got)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	layers := makeLayers([]int{300}, 3)
	r1 := Random(layers, 0.8, 42)
	r2 := Random(layers, 0.8, 42)
	a, b := r1.Indices["a"].IDs(), r2.Indices["a"].IDs()
	if len(a) != len(b) {
		t.Fatal("nondeterministic count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic indices")
		}
	}
	r3 := Random(layers, 0.8, 43)
	same := true
	c := r3.Indices["a"].IDs()
	if len(c) == len(a) {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	} else {
		same = false
	}
	if same {
		t.Error("different seeds produced identical masks")
	}
}

func TestBlockStructuredAlignment(t *testing.T) {
	layers := makeLayers([]int{256}, 4)
	r := BlockStructured(layers, 0.75, 16)
	ids := r.Indices["a"].IDs()
	// Every surviving block must be fully present: indices come in complete
	// runs of 16 aligned to block boundaries.
	blocks := map[int32]int{}
	for _, id := range ids {
		blocks[id/16]++
	}
	for b, cnt := range blocks {
		if cnt != 16 {
			t.Errorf("block %d has %d survivors, want 16", b, cnt)
		}
	}
	if len(blocks) != 4 { // 16 blocks, 75% pruned -> 4 kept
		t.Errorf("%d blocks kept, want 4", len(blocks))
	}
}

func TestSparsityProperty(t *testing.T) {
	// Achieved sparsity tracks requested sparsity for all algorithms.
	f := func(s8 uint8, seed uint64) bool {
		s := float64(s8%90) / 100
		layers := makeLayers([]int{400, 300}, seed)
		for _, r := range []*Result{
			MagnitudeGlobal(layers, s),
			MagnitudePerLayer(layers, s),
			Random(layers, s, seed),
		} {
			if math.Abs(r.Sparsity()-s) > 0.02 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestZeroSparsityKeepsAll(t *testing.T) {
	layers := makeLayers([]int{64}, 5)
	r := MagnitudeGlobal(layers, 0)
	if r.KeptParams() != 64 {
		t.Errorf("kept %d at sparsity 0", r.KeptParams())
	}
}

func TestInvalidSparsityPanics(t *testing.T) {
	layers := makeLayers([]int{8}, 6)
	for _, s := range []float64{-0.1, 1.0, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("sparsity %g should panic", s)
				}
			}()
			MagnitudeGlobal(layers, s)
		}()
	}
}

func TestEarlyBirdConvergence(t *testing.T) {
	// Simulate training where weights shrink towards a stable ranking: the
	// mask stops changing, and Early-Bird must detect it.
	layers := makeLayers([]int{500}, 7)
	eb := NewEarlyBird(0.9)
	eb.Window = 3
	rng := tensor.NewRNG(8)
	converged := false
	for epoch := 0; epoch < 50; epoch++ {
		// Early epochs: add noise so masks churn. Later: freeze.
		if epoch < 5 {
			for i := range layers[0].Values {
				layers[0].Values[i] += float32(rng.Norm()) * 0.5
			}
		}
		if eb.Observe(layers) {
			converged = true
			break
		}
	}
	if !converged {
		t.Fatal("Early-Bird never converged on a frozen mask")
	}
	if eb.Ticket() == nil {
		t.Fatal("Ticket nil after convergence")
	}
	if got := eb.Ticket().Sparsity(); math.Abs(got-0.9) > 0.01 {
		t.Errorf("ticket sparsity %g", got)
	}
	if eb.Epochs() < eb.Window {
		t.Errorf("converged after %d epochs, before window filled", eb.Epochs())
	}
}

func TestEarlyBirdDoesNotConvergeOnChurn(t *testing.T) {
	// If the mask keeps churning, Early-Bird must not fire.
	layers := makeLayers([]int{400}, 9)
	eb := NewEarlyBird(0.9)
	eb.Window = 3
	rng := tensor.NewRNG(10)
	for epoch := 0; epoch < 10; epoch++ {
		for i := range layers[0].Values {
			layers[0].Values[i] = float32(rng.Norm()) // fully re-randomized
		}
		if eb.Observe(layers) {
			t.Fatalf("converged on churning masks at epoch %d", epoch)
		}
	}
}

func TestEarlyBirdForce(t *testing.T) {
	layers := makeLayers([]int{100}, 11)
	eb := NewEarlyBird(0.8)
	r := eb.Force(layers)
	if r == nil || math.Abs(r.Sparsity()-0.8) > 0.02 {
		t.Error("Force did not produce a ticket")
	}
	// Subsequent Observe is a no-op returning true.
	if !eb.Observe(layers) {
		t.Error("Observe after Force should report converged")
	}
}

func TestEarlyBirdObserveAfterConvergeStable(t *testing.T) {
	layers := makeLayers([]int{200}, 12)
	eb := NewEarlyBird(0.9)
	eb.Window = 2
	for i := 0; i < 5; i++ {
		eb.Observe(layers)
	}
	first := eb.Ticket()
	if first == nil {
		t.Fatal("should have converged on identical params")
	}
	eb.Observe(layers)
	if eb.Ticket() != first {
		t.Error("ticket changed after convergence")
	}
}

// TestMaterializeCSR pins the index→CSR bridge: the materialized matrix
// must hold exactly the surviving values at their (row, col) positions —
// its dense form equals the layer values with pruned entries zeroed — and
// unpruned layer names return nil.
func TestMaterializeCSR(t *testing.T) {
	layers := makeLayers([]int{6 * 4}, 33)
	r := MagnitudePerLayer(layers, 0.5)
	csr := r.MaterializeCSR(layerName(0), layers[0].Values, 6, 4)
	if csr == nil {
		t.Fatal("MaterializeCSR returned nil for a pruned layer")
	}
	ix := r.Index(layerName(0))
	if csr.NNZ() != ix.NNZ() || csr.Rows != 6 || csr.Cols != 4 {
		t.Fatalf("CSR %dx%d nnz=%d, want 6x4 nnz=%d", csr.Rows, csr.Cols, csr.NNZ(), ix.NNZ())
	}
	masked := append([]float32(nil), layers[0].Values...)
	ix.Mask().Apply(masked)
	dense := csr.Dense().Data()
	for i := range masked {
		if dense[i] != masked[i] {
			t.Fatalf("element %d: CSR %g, masked-dense %g", i, dense[i], masked[i])
		}
	}
	if r.MaterializeCSR("no-such-layer", layers[0].Values, 6, 4) != nil {
		t.Error("unknown layer should materialize to nil")
	}
}
