// Package baselines implements the comparator systems of the evaluation
// that are not part of AxoNN+SAMO itself. The DeepSpeed-3D and Sputnik
// *performance* models live in internal/simulate (they are simulator
// methods); this package holds the *executable* Sputnik-style baseline: a
// fully connected layer whose weights stay in CSR and whose forward/backward
// run real sparse kernels (SpMM and SDDMM, the two kernels Gale et al.'s
// Sputnik provides). It exists to demonstrate — in runnable Go, not just in
// the calibrated timing model — that computing sparse at DL sparsities
// produces identical numbers while exercising a completely different code
// path, and to let benchmarks compare it against the dense path SAMO keeps.
package baselines

import (
	"fmt"

	"github.com/sparse-dl/samo/internal/nn"
	"github.com/sparse-dl/samo/internal/sparse"
	"github.com/sparse-dl/samo/internal/tensor"
)

// SparseLinear is y = x·Wᵀ + b with W (out, in) stored in CSR. Only the
// unpruned weights exist; gradients are produced directly in the sparse
// pattern via SDDMM, so the layer never materializes a dense weight or
// weight-gradient tensor — the "pure sparse" design SAMO deliberately
// avoids for compute.
type SparseLinear struct {
	W        *sparse.CSR // (out, in)
	Wt       *sparse.CSR // cached transpose for the forward pass
	B        *nn.Param
	GradVals []float32 // gradient for W.Val (same pattern)
	in, out  int
}

// NewSparseLinear builds the layer from a dense weight matrix (in, out) and
// a pruning index over its linearized view, keeping only unpruned entries.
func NewSparseLinear(name string, dense *tensor.Tensor, ix *sparse.Index, rng *tensor.RNG) *SparseLinear {
	if dense.Rank() != 2 {
		panic("baselines: SparseLinear needs a rank-2 weight")
	}
	in, out := dense.Dim(0), dense.Dim(1)
	vals := make([]float32, ix.NNZ())
	ix.Compress(vals, dense.Data())
	// The paper's FC computes x(n,in)·W(in,out); storing W transposed as
	// (out, in) CSR lets SpMM produce yᵀ. We instead store W as (in, out)
	// CSR and use its transpose for the backward; kernels are symmetric.
	w := sparse.CSRFromIndex(ix, vals, in, out)
	l := &SparseLinear{
		W:        w.Transpose(), // (out, in)
		B:        nnParam(name+".bias", out),
		GradVals: make([]float32, ix.NNZ()),
		in:       in, out: out,
	}
	l.Wt = l.W.Transpose() // (in, out)
	return l
}

func nnParam(name string, n int) *nn.Param {
	return &nn.Param{Name: name, Value: tensor.New(n), Grad: tensor.New(n)}
}

type sparseCache struct{ x *tensor.Tensor }

// Forward computes y = SpMM(Wᵀ-form) against x: (n,in)·(in,out).
func (l *SparseLinear) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, any) {
	if x.Rank() != 2 || x.Dim(1) != l.in {
		panic(fmt.Sprintf("baselines: SparseLinear(%d,%d) got %v", l.in, l.out, x.Shape()))
	}
	// y(n,out) = x(n,in) · Wt(in,out): compute via SpMM on Wt's rows is a
	// (in,out)-sparse × dense product; equivalently yᵀ = W(out,in)·xᵀ.
	// We use the transpose trick to keep a row-major SpMM.
	yT := l.W.SpMM(tensor.Transpose(x)) // (out, n)
	y := tensor.Transpose(yT)           // (n, out)
	tensor.AddBias(y, l.B.Value)
	if !train {
		return y, nil
	}
	return y, &sparseCache{x: x}
}

// Backward computes the weight gradient restricted to the sparsity pattern
// with SDDMM (dW = dyᵀ·x sampled at W's non-zeros) and the input gradient
// with the transposed SpMM — exactly the kernel pair Sputnik accelerates.
func (l *SparseLinear) Backward(cache any, gradOut *tensor.Tensor) *tensor.Tensor {
	c := cache.(*sparseCache)
	// dW(out,in) sampled: rows=out uses A=dyᵀ rows -> dy columns. SDDMM
	// computes (A·Bᵀ) at the pattern with A (out,k) = dyᵀ and B (in,k) = xᵀ,
	// k = batch.
	dyT := tensor.Transpose(gradOut) // (out, n)
	xT := tensor.Transpose(c.x)      // (in, n)
	dW := l.W.SDDMM(dyT, xT)
	for i, v := range dW.Val {
		l.GradVals[i] += v
	}
	tensor.Add(l.B.Grad, tensor.SumRows(gradOut))
	// dx(n,in) = dy(n,out)·W(out,in): transpose trick again.
	dxT := l.Wt.SpMM(tensor.Transpose(gradOut)) // Wt(in,out)·dyᵀ(out,n) = (in,n)
	return tensor.Transpose(dxT)
}

// Params returns only the bias: the sparse values are managed by the layer
// itself (they have no dense tensor representation by design).
func (l *SparseLinear) Params() []*nn.Param { return []*nn.Param{l.B} }

// ApplyGradients runs a plain SGD step on the sparse values and bias,
// clearing the accumulators — enough machinery to demonstrate end-to-end
// sparse training.
func (l *SparseLinear) ApplyGradients(lr float32) {
	for i := range l.W.Val {
		l.W.Val[i] -= lr * l.GradVals[i]
		l.GradVals[i] = 0
	}
	// Keep the cached transpose coherent.
	l.Wt = l.W.Transpose()
	for i := range l.B.Value.Data() {
		l.B.Value.Data()[i] -= lr * l.B.Grad.Data()[i]
		l.B.Grad.Data()[i] = 0
	}
}

// DenseEquivalent materializes the dense (in, out) weight matrix for
// verification against nn.Linear.
func (l *SparseLinear) DenseEquivalent() *tensor.Tensor {
	return tensor.Transpose(l.W.Dense())
}

// Bytes reports the storage of the sparse weights (values + metadata) —
// what the Sputnik baseline saves relative to a dense fp32 weight.
func (l *SparseLinear) Bytes() int64 { return l.W.Bytes() }
