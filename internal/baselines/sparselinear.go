// Package baselines implements the comparator systems of the evaluation
// that are not part of AxoNN+SAMO itself. The DeepSpeed-3D and Sputnik
// *performance* models live in internal/simulate (they are simulator
// methods); this package holds the *executable* Sputnik-style baseline: a
// fully connected layer whose weights stay in CSR and whose forward/backward
// run real sparse kernels (SpMM and SDDMM, the two kernels Gale et al.'s
// Sputnik provides), with the density-aware crossover pinned OFF so the
// sparse path runs unconditionally. Since the sparse execution path became
// first-class (nn.SparseLinear), this is a thin pin of that layer to
// ExecSparse plus the plain-SGD machinery the baseline comparisons use.
package baselines

import (
	"github.com/sparse-dl/samo/internal/nn"
	"github.com/sparse-dl/samo/internal/sparse"
	"github.com/sparse-dl/samo/internal/tensor"
)

// SparseLinear is y = x·Wᵀ + b with W (out, in) stored in CSR, always
// executed sparse (ExecSparse): the pure-sparse design SAMO deliberately
// avoids for compute, kept runnable for benchmarks and equivalence tests.
type SparseLinear struct {
	*nn.SparseLinear
}

// NewSparseLinear builds the layer from a dense weight matrix (in, out) and
// a pruning index over its linearized view, keeping only unpruned entries.
// The rng parameter is retained for constructor symmetry with nn.NewLinear
// (the bias starts at zero either way).
func NewSparseLinear(name string, dense *tensor.Tensor, ix *sparse.Index, _ *tensor.RNG) *SparseLinear {
	l := nn.NewSparseLinear(name, dense, ix)
	l.Exec = nn.ExecSparse
	return &SparseLinear{SparseLinear: l}
}

// Forward computes y = x·Wᵀ + b on the sparse kernels (no arena — the
// baseline is exercised standalone, outside the trainer's step lifecycle).
func (l *SparseLinear) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, any) {
	return l.SparseLinear.Forward(nil, x, train)
}

// Backward computes the weight gradient restricted to the sparsity pattern
// with SDDMM and the input gradient with the transposed SpMM — exactly the
// kernel pair Sputnik accelerates.
func (l *SparseLinear) Backward(cache any, gradOut *tensor.Tensor) *tensor.Tensor {
	return l.SparseLinear.Backward(nil, cache, gradOut)
}

// ApplyGradients runs a plain SGD step on the sparse values and bias,
// clearing the accumulators — enough machinery to demonstrate end-to-end
// sparse training. The cached transpose needs no refresh here: it is
// re-synced from the primary values at its next use.
func (l *SparseLinear) ApplyGradients(lr float32) {
	w, g := l.Wv.Value.Data(), l.Wv.Grad.Data()
	for i := range w {
		w[i] -= lr * g[i]
		g[i] = 0
	}
	b, gb := l.B.Value.Data(), l.B.Grad.Data()
	for i := range b {
		b[i] -= lr * gb[i]
		gb[i] = 0
	}
}

// Bytes reports the storage of the sparse weights (values + metadata) —
// what the Sputnik baseline saves relative to a dense fp32 weight.
func (l *SparseLinear) Bytes() int64 { return l.WeightBytes() }
