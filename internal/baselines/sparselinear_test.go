package baselines

import (
	"math"
	"testing"

	"github.com/sparse-dl/samo/internal/nn"
	"github.com/sparse-dl/samo/internal/prune"
	"github.com/sparse-dl/samo/internal/sparse"
	"github.com/sparse-dl/samo/internal/tensor"
)

// buildPair makes a dense nn.Linear and the SparseLinear holding the same
// pruned weights, so their outputs must agree exactly on the support.
func buildPair(in, out int, sparsity float64, seed uint64) (*nn.Linear, *SparseLinear, *sparse.Index) {
	rng := tensor.NewRNG(seed)
	dense := nn.NewLinear("fc", in, out, rng)
	pr := prune.MagnitudePerLayer(
		[]prune.Layer{{Name: "fc.weight", Values: dense.W.Value.Data()}}, sparsity)
	ix := pr.Index("fc.weight")
	ix.Mask().Apply(dense.W.Value.Data()) // masked-dense reference
	sl := NewSparseLinear("fc", dense.W.Value, ix, rng)
	// Match biases.
	copy(sl.B.Value.Data(), dense.B.Value.Data())
	return dense, sl, ix
}

func TestSparseForwardMatchesMaskedDense(t *testing.T) {
	dense, sl, _ := buildPair(12, 9, 0.8, 1)
	x := tensor.New(5, 12)
	tensor.FillNormal(x, 1, tensor.NewRNG(2))
	yd, _ := dense.Forward(nil, x, false)
	ys, _ := sl.Forward(x, false)
	if d := tensor.MaxAbsDiff(yd, ys); d > 1e-4 {
		t.Errorf("sparse forward diff %g", d)
	}
}

func TestSparseBackwardMatchesMaskedDense(t *testing.T) {
	dense, sl, ix := buildPair(10, 7, 0.7, 3)
	x := tensor.New(4, 10)
	tensor.FillNormal(x, 1, tensor.NewRNG(4))
	gy := tensor.New(4, 7)
	tensor.FillNormal(gy, 1, tensor.NewRNG(5))

	_, cd := dense.Forward(nil, x, true)
	dense.W.ZeroGrad()
	dense.B.ZeroGrad()
	dxD := dense.Backward(nil, cd, gy)

	_, cs := sl.Forward(x, true)
	dxS := sl.Backward(cs, gy)

	// Input gradients agree (sparse weights == masked dense weights).
	if d := tensor.MaxAbsDiff(dxD, dxS); d > 1e-4 {
		t.Errorf("input grad diff %g", d)
	}
	// Weight gradients agree on the support: SDDMM computes exactly the
	// unpruned entries of the dense gradient.
	denseGrad := make([]float32, ix.NNZ())
	ix.Compress(denseGrad, dense.W.Grad.Data())
	// Map SDDMM output (pattern order of l.W, which is the transpose) back
	// through the dense equivalent for comparison.
	sparseGradDense := tensor.New(7, 10) // (out, in)
	for i := 0; i < 7; i++ {
		for p := sl.W.RowPtr[i]; p < sl.W.RowPtr[i+1]; p++ {
			sparseGradDense.Set(sl.GradVals()[p], i, int(sl.W.ColIdx[p]))
		}
	}
	back := tensor.Transpose(sparseGradDense) // (in, out)
	got := make([]float32, ix.NNZ())
	ix.Compress(got, back.Data())
	for i := range denseGrad {
		if math.Abs(float64(denseGrad[i]-got[i])) > 1e-3 {
			t.Fatalf("weight grad %d: dense %g vs sparse %g", i, denseGrad[i], got[i])
		}
	}
	// Bias gradients agree.
	if d := tensor.MaxAbsDiff(dense.B.Grad, sl.B.Grad); d > 1e-4 {
		t.Errorf("bias grad diff %g", d)
	}
}

func TestSparseTrainingStepTracksDense(t *testing.T) {
	dense, sl, ix := buildPair(8, 6, 0.6, 7)
	x := tensor.New(4, 8)
	tensor.FillNormal(x, 1, tensor.NewRNG(8))
	targets := []int{0, 3, 1, 5}

	const lr = 0.05
	for step := 0; step < 5; step++ {
		yd, cd := dense.Forward(nil, x, true)
		_, gd := nn.CrossEntropy(yd, targets)
		dense.W.ZeroGrad()
		dense.B.ZeroGrad()
		dense.Backward(nil, cd, gd)
		// Masked-dense SGD: zero pruned grads so they stay pruned.
		ix.Mask().Apply(dense.W.Grad.Data())
		for i, g := range dense.W.Grad.Data() {
			dense.W.Value.Data()[i] -= lr * g
		}
		for i, g := range dense.B.Grad.Data() {
			dense.B.Value.Data()[i] -= lr * g
		}

		ys, cs := sl.Forward(x, true)
		_, gs := nn.CrossEntropy(ys, targets)
		sl.Backward(cs, gs)
		sl.ApplyGradients(lr)
	}
	if d := tensor.MaxAbsDiff(dense.W.Value, tensor.Transpose(tensor.Transpose(sl.DenseEquivalent()))); d > 1e-3 {
		t.Errorf("weights diverged after sparse training: %g", d)
	}
}

func TestSparseStorageSavings(t *testing.T) {
	_, sl, ix := buildPair(64, 64, 0.9, 9)
	denseBytes := int64(64 * 64 * 4)
	if sl.Bytes() >= denseBytes {
		t.Errorf("sparse storage %d not below dense %d", sl.Bytes(), denseBytes)
	}
	if sl.W.NNZ() != ix.NNZ() {
		t.Errorf("NNZ mismatch: %d vs %d", sl.W.NNZ(), ix.NNZ())
	}
}

func TestParamsExposesWeightVectorAndBias(t *testing.T) {
	_, sl, ix := buildPair(8, 8, 0.5, 11)
	ps := sl.Params()
	if len(ps) != 2 || ps[0].Value.Len() != ix.NNZ() || ps[1].Value.Len() != 8 {
		t.Errorf("Params = %v", ps)
	}
	// The weight vector must alias the CSR values: the optimizer writes
	// through it and the kernels must see the update.
	ps[0].Value.Data()[0] = 42
	if sl.W.Val[0] != 42 {
		t.Error("weight param does not alias the CSR values")
	}
}

// BenchmarkDenseVsSparseFC is the measured (pure-Go) counterpart of
// Figure 1: the same FC layer computed dense versus CSR at 90% sparsity.
// On CPU the dense kernel's advantage is smaller than on tensor-core GPUs,
// but the direction (dense competitive despite 10× more flops) holds.
func BenchmarkDenseVsSparseFC(b *testing.B) {
	for _, dim := range []int{128, 256} {
		rng := tensor.NewRNG(uint64(dim))
		dense := nn.NewLinear("fc", dim, dim, rng)
		pr := prune.MagnitudePerLayer(
			[]prune.Layer{{Name: "fc.weight", Values: dense.W.Value.Data()}}, 0.9)
		ix := pr.Index("fc.weight")
		ix.Mask().Apply(dense.W.Value.Data())
		sl := NewSparseLinear("fc", dense.W.Value, ix, rng)
		x := tensor.New(64, dim)
		tensor.FillNormal(x, 1, rng)

		b.Run("dense-"+itoa(dim), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dense.Forward(nil, x, false)
			}
		})
		b.Run("sparse-"+itoa(dim), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sl.Forward(x, false)
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
