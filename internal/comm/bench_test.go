package comm_test

// Transport benchmarks: the same collective and p2p workloads over the
// in-process channel mesh and the TCP loopback wire. The ratio between
// the two is the framing + syscall overhead of the wire path; bench.sh
// records both to BENCH_comm.json and warns (never fails) when the
// overhead drifts past the expected envelope.

import (
	"fmt"
	"sync"
	"testing"

	"github.com/sparse-dl/samo/internal/comm"
)

// BenchmarkAllReduce times a full ring all-reduce (reduce-scatter +
// all-gather) across 4 ranks per transport and size. Ranks iterate in
// lockstep — collectives self-synchronize — so one iteration is one
// fabric-wide all-reduce.
func BenchmarkAllReduce(b *testing.B) {
	for _, transport := range []string{"local", "tcp"} {
		for _, sz := range []int{1024, 65536} {
			b.Run(fmt.Sprintf("%s/r4/sz%d", transport, sz), func(b *testing.B) {
				const n = 4
				m := newMesh(b, transport, n)
				defer m.closeAll()
				group := groupAll(n)
				bufs := make([][]float32, n)
				for r := range bufs {
					bufs[r] = testInput(r, sz)
				}
				b.SetBytes(int64(4 * sz))
				b.ResetTimer()
				var wg sync.WaitGroup
				for r := 0; r < n; r++ {
					wg.Add(1)
					go func(r int) {
						defer wg.Done()
						for i := 0; i < b.N; i++ {
							if err := m.ranks[r].AllReduce(group, bufs[r]); err != nil {
								b.Errorf("rank %d: %v", r, err)
								return
							}
						}
					}(r)
				}
				wg.Wait()
			})
		}
	}
}

// BenchmarkSendRecv times a p2p ping-pong between two ranks per
// transport: one iteration is one round trip (two sends, two receives),
// the latency-bound pattern of inter-layer activation/gradient exchange.
func BenchmarkSendRecv(b *testing.B) {
	for _, transport := range []string{"local", "tcp"} {
		for _, sz := range []int{1024, 65536} {
			b.Run(fmt.Sprintf("%s/sz%d", transport, sz), func(b *testing.B) {
				m := newMesh(b, transport, 2)
				defer m.closeAll()
				payload := testInput(1, sz)
				b.SetBytes(int64(4 * sz))
				b.ResetTimer()
				var wg sync.WaitGroup
				for r := 0; r < 2; r++ {
					wg.Add(1)
					go func(rk *comm.Rank) {
						defer wg.Done()
						peer := 1 - rk.ID()
						for i := 0; i < b.N; i++ {
							if rk.ID() == 0 {
								if err := rk.Send(peer, comm.TagActivation, i, payload); err != nil {
									b.Errorf("send: %v", err)
									return
								}
								if _, err := rk.Recv(); err != nil {
									b.Errorf("recv: %v", err)
									return
								}
							} else {
								msg, err := rk.Recv()
								if err != nil {
									b.Errorf("recv: %v", err)
									return
								}
								if err := rk.Send(peer, comm.TagGradient, i, msg.Data); err != nil {
									b.Errorf("send: %v", err)
									return
								}
							}
						}
					}(m.ranks[r])
				}
				wg.Wait()
			})
		}
	}
}
