package comm

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"github.com/sparse-dl/samo/internal/tensor"
)

// runGroup executes fn concurrently on every rank of a fresh fabric.
func runGroup(n int, fn func(rk *Rank)) *Fabric {
	f := NewFabric(n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			fn(f.Rank(r))
		}(r)
	}
	wg.Wait()
	return f
}

func group(n int) []int {
	g := make([]int, n)
	for i := range g {
		g[i] = i
	}
	return g
}

// must / must1 panic on a primitive error: these tests run on healthy
// fabrics, so any error is a test bug and the panic carries the cause.
func must(err error) {
	if err != nil {
		panic(err)
	}
}

func must1[T any](v T, err error) T {
	must(err)
	return v
}

func TestSendRecvBasic(t *testing.T) {
	f := NewFabric(2)
	s, r := f.Rank(0), f.Rank(1)
	must(s.Send(1, TagActivation, 7, []float32{1, 2, 3}))
	m := must1(r.Recv())
	if m.From != 0 || m.Tag != TagActivation || m.MB != 7 || len(m.Data) != 3 {
		t.Fatalf("bad message: %+v", m)
	}
	if f.Stats(0).P2PMessages.Load() != 1 || f.Stats(0).P2PElements.Load() != 3 {
		t.Error("stats not recorded")
	}
}

func TestSendIsAsync(t *testing.T) {
	// A send with no receiver posted must not block (buffered).
	f := NewFabric(2)
	s := f.Rank(0)
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			must(s.Send(1, TagGradient, i, []float32{float32(i)}))
		}
		close(done)
	}()
	<-done // would deadlock if Send were synchronous
	r := f.Rank(1)
	for i := 0; i < 100; i++ {
		m := must1(r.Recv())
		if m.MB != i {
			t.Fatalf("message %d arrived as %d: FIFO violated", i, m.MB)
		}
	}
}

func TestAllReduceRingSums(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7} {
		for _, sz := range []int{1, 5, 64, 129} {
			results := make([][]float32, n)
			runGroup(n, func(rk *Rank) {
				buf := make([]float32, sz)
				for i := range buf {
					buf[i] = float32(rk.ID()*1000 + i)
				}
				must(rk.AllReduce(group(n), buf))
				results[rk.ID()] = buf
			})
			for i := 0; i < sz; i++ {
				var want float32
				for r := 0; r < n; r++ {
					want += float32(r*1000 + i)
				}
				for r := 0; r < n; r++ {
					if math.Abs(float64(results[r][i]-want)) > 1e-3 {
						t.Fatalf("n=%d sz=%d rank %d elem %d: %g want %g",
							n, sz, r, i, results[r][i], want)
					}
				}
			}
		}
	}
}

func TestAllReduceOrderedMatchesSerialExactly(t *testing.T) {
	n, sz := 5, 100
	inputs := make([][]float32, n)
	rng := tensor.NewRNG(1)
	for r := range inputs {
		inputs[r] = make([]float32, sz)
		for i := range inputs[r] {
			inputs[r][i] = float32(rng.Norm())
		}
	}
	want := make([]float32, sz)
	for r := 0; r < n; r++ { // serial rank-ordered sum
		for i := range want {
			want[i] += inputs[r][i]
		}
	}
	results := make([][]float32, n)
	runGroup(n, func(rk *Rank) {
		buf := append([]float32(nil), inputs[rk.ID()]...)
		must(rk.AllReduceOrdered(group(n), buf))
		results[rk.ID()] = buf
	})
	for r := 0; r < n; r++ {
		for i := range want {
			if results[r][i] != want[i] {
				t.Fatalf("rank %d elem %d: %g != serial %g (must be bitwise)", r, i, results[r][i], want[i])
			}
		}
	}
}

func TestAllReduceSubgroupsConcurrently(t *testing.T) {
	// Two disjoint groups reducing at the same time must not interfere —
	// the data-parallel groups of AxoNN do exactly this.
	n := 4
	groups := [][]int{{0, 2}, {1, 3}}
	results := make([][]float32, n)
	runGroup(n, func(rk *Rank) {
		g := groups[rk.ID()%2]
		buf := []float32{float32(rk.ID() + 1)}
		must(rk.AllReduce(g, buf))
		results[rk.ID()] = buf
	})
	if results[0][0] != 4 || results[2][0] != 4 { // 1+3
		t.Errorf("group {0,2}: %v %v", results[0], results[2])
	}
	if results[1][0] != 6 || results[3][0] != 6 { // 2+4
		t.Errorf("group {1,3}: %v %v", results[1], results[3])
	}
}

func TestBroadcast(t *testing.T) {
	n := 4
	results := make([][]float32, n)
	runGroup(n, func(rk *Rank) {
		buf := []float32{0, 0}
		if rk.ID() == 2 {
			buf = []float32{5, 9}
		}
		must(rk.Broadcast(group(n), 2, buf))
		results[rk.ID()] = buf
	})
	for r := 0; r < n; r++ {
		if results[r][0] != 5 || results[r][1] != 9 {
			t.Errorf("rank %d got %v", r, results[r])
		}
	}
}

func TestReduceScatterThenAllGatherEqualsAllReduce(t *testing.T) {
	n, sz := 4, 37
	inputs := make([][]float32, n)
	rng := tensor.NewRNG(2)
	for r := range inputs {
		inputs[r] = make([]float32, sz)
		for i := range inputs[r] {
			inputs[r][i] = float32(rng.Norm())
		}
	}
	viaRS := make([][]float32, n)
	runGroup(n, func(rk *Rank) {
		buf := append([]float32(nil), inputs[rk.ID()]...)
		chunk := must1(rk.ReduceScatter(group(n), buf))
		viaRS[rk.ID()] = must1(rk.AllGather(group(n), chunk, sz))
	})
	viaAR := make([][]float32, n)
	runGroup(n, func(rk *Rank) {
		buf := append([]float32(nil), inputs[rk.ID()]...)
		must(rk.AllReduce(group(n), buf))
		viaAR[rk.ID()] = buf
	})
	for r := 0; r < n; r++ {
		for i := 0; i < sz; i++ {
			if math.Abs(float64(viaRS[r][i]-viaAR[r][i])) > 1e-4 {
				t.Fatalf("rank %d elem %d: RS+AG %g vs AR %g", r, i, viaRS[r][i], viaAR[r][i])
			}
		}
	}
}

func TestBarrierReleasesAll(t *testing.T) {
	n := 5
	var entered atomic32
	runGroup(n, func(rk *Rank) {
		entered.add(1)
		must(rk.Barrier(group(n)))
		// After the barrier, everyone must have entered.
		if entered.load() != int32(n) {
			t.Errorf("rank %d passed barrier with %d/%d entered", rk.ID(), entered.load(), n)
		}
	})
}

type atomic32 struct {
	mu sync.Mutex
	v  int32
}

func (a *atomic32) add(d int32) { a.mu.Lock(); a.v += d; a.mu.Unlock() }
func (a *atomic32) load() int32 { a.mu.Lock(); defer a.mu.Unlock(); return a.v }

func TestAllReduceLinearityProperty(t *testing.T) {
	// allreduce(a+b) == allreduce(a) + allreduce(b) elementwise (within fp
	// tolerance): the property gradient accumulation depends on.
	f := func(seed uint64) bool {
		n, sz := 3, 16
		rng := tensor.NewRNG(seed)
		a := make([][]float32, n)
		b := make([][]float32, n)
		for r := 0; r < n; r++ {
			a[r] = make([]float32, sz)
			b[r] = make([]float32, sz)
			for i := 0; i < sz; i++ {
				a[r][i] = float32(rng.Norm())
				b[r][i] = float32(rng.Norm())
			}
		}
		sum := func(in [][]float32) []float32 {
			var out []float32
			runGroup(n, func(rk *Rank) {
				buf := append([]float32(nil), in[rk.ID()]...)
				must(rk.AllReduce(group(n), buf))
				if rk.ID() == 0 {
					out = buf
				}
			})
			return out
		}
		ab := make([][]float32, n)
		for r := 0; r < n; r++ {
			ab[r] = make([]float32, sz)
			for i := range ab[r] {
				ab[r][i] = a[r][i] + b[r][i]
			}
		}
		ra, rb, rab := sum(a), sum(b), sum(ab)
		for i := 0; i < sz; i++ {
			if math.Abs(float64(ra[i]+rb[i]-rab[i])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestCollectiveElementAccounting(t *testing.T) {
	n, sz := 4, 100
	f := runGroup(n, func(rk *Rank) {
		buf := make([]float32, sz)
		must(rk.AllReduce(group(n), buf))
	})
	// Ring all-reduce receives 2·(G−1)/G·sz elements per rank.
	perRank := f.Stats(0).CollElements.Load()
	want := int64(2 * (n - 1) * sz / n)
	if math.Abs(float64(perRank-want)) > float64(n) {
		t.Errorf("per-rank collective elements %d, want ≈%d", perRank, want)
	}
}

func TestOutOfOrderCollMatching(t *testing.T) {
	// A rank that is late to one collective must still match messages from
	// a subsequent one correctly (pending-queue path): run two back-to-back
	// reductions with skewed entry.
	n := 3
	results := make([][]float32, n)
	runGroup(n, func(rk *Rank) {
		a := []float32{float32(rk.ID())}
		b := []float32{float32(rk.ID() * 10)}
		must(rk.AllReduce(group(n), a))
		must(rk.AllReduce(group(n), b))
		results[rk.ID()] = []float32{a[0], b[0]}
	})
	for r := 0; r < n; r++ {
		if results[r][0] != 3 || results[r][1] != 30 {
			t.Errorf("rank %d: %v, want [3 30]", r, results[r])
		}
	}
}

func TestBufferPoolBoundedAcrossFabrics(t *testing.T) {
	// Experiment sweeps create many fabrics and push many distinct buffer
	// sizes through each. The collective buffer pool is scoped per fabric
	// and bounded, so (a) one fabric can never retain more than the bound
	// no matter how many sizes it sees, and (b) finished fabrics take their
	// pools with them instead of growing process-global state.
	const cycles = 8
	for cyc := 0; cyc < cycles; cyc++ {
		n := 3 + cyc%3
		f := runGroup(n, func(rk *Rank) {
			g := group(rk.Size())
			// Many distinct sizes per cycle, as a sweep over layer shapes
			// would produce.
			for _, sz := range []int{31, 64, 257, 1024, 4099, 16384, 65537} {
				buf := make([]float32, sz)
				for i := range buf {
					buf[i] = float32(rk.ID() + i)
				}
				must(rk.AllReduce(g, buf))
				must(rk.Barrier(g))
			}
		})
		if got := f.PooledBytes(); got > maxPoolFloats*4 {
			t.Fatalf("cycle %d: fabric retains %d bytes, bound is %d", cyc, got, maxPoolFloats*4)
		}
	}
}

func TestBufferPoolCapacityReuse(t *testing.T) {
	// Nearly-equal sizes must share buffers (power-of-two classes), not
	// each pin their own: after cycling sizes 1000..1007 the pool holds at
	// most one 1024-class buffer, where the old exact-size map kept eight.
	var p bufPool
	for sz := 1000; sz < 1008; sz++ {
		b := p.get(sz)
		if len(b) != sz {
			t.Fatalf("get(%d) returned len %d", sz, len(b))
		}
		p.put(b)
	}
	if p.retained != 1024 {
		t.Fatalf("pool retains %d floats after same-class cycling, want 1024", p.retained)
	}
	// And the retained buffer satisfies any size in its class without
	// allocating a new one.
	b := p.get(1024)
	if p.retained != 0 {
		t.Fatalf("pool retains %d floats after get, want 0", p.retained)
	}
	p.put(b)
}
