package comm

import "time"

// Async collective lane.
//
// AllReduceAsync/AllReduceOrderedAsync hand a reduce off to a per-Rank
// worker goroutine and return a handle immediately; the caller overlaps its
// own compute and calls Wait when it needs the result. The worker executes
// queued operations SERIALLY in launch order — that, plus every rank
// launching the same operations in the same order, preserves the fabric's
// FIFO (from, tag) matching invariant with no new wire protocol, and means
// results are bitwise-identical to issuing the same calls synchronously.
//
// Concurrency contract (single-owner, no locks): between a launch and the
// completion of its Wait, the owner goroutine must not touch the Rank's
// matching state — i.e. no synchronous collectives and no Recv-side
// reordering while handles are outstanding. The engine obeys this by
// draining every handle before its next synchronous collective. The
// happens-before edges are the queue send (owner → worker) and the done
// receive (worker → owner); under that discipline the shared Rank fields
// (pending, bounds, ops) are data-race free.
//
// Fault behaviour matches the synchronous path exactly: the worker runs the
// same collective bodies, which race the fabric's poison channel and fire
// the same CrashAtOp/deadline fault points, so a poisoned fabric unwinds
// every in-flight and queued operation and Wait returns the typed error.

// asyncQueueDepth bounds the launch queue. Deep enough that a full model's
// bucket list launches without ever blocking the backward pass; if it does
// fill, the owner blocks on the send while the worker drains — progress,
// not deadlock, since matched peers run independently.
const asyncQueueDepth = 64

// asyncOp is one queued reduce.
type asyncOp struct {
	ordered bool
	group   []int
	buf     []float32
	h       *ReduceHandle
}

// ReduceHandle tracks one in-flight async all-reduce. Handles are pooled on
// the owning Rank: Wait returns the handle to the pool, so steady-state
// launch/wait cycles allocate nothing. A handle is single-use — do not Wait
// twice, and do not retain it after Wait.
type ReduceHandle struct {
	rk   *Rank
	done chan error // buffered (cap 1): the worker never blocks completing
}

// AllReduceAsync launches a ring all-reduce of buf over group on the async
// lane and returns immediately. buf must stay untouched until Wait returns.
func (rk *Rank) AllReduceAsync(group []int, buf []float32) *ReduceHandle {
	return rk.launch(asyncOp{ordered: false, group: group, buf: buf})
}

// AllReduceOrderedAsync is AllReduceAsync with the rank-ordered
// (bitwise-reproducible) reduction algorithm.
func (rk *Rank) AllReduceOrderedAsync(group []int, buf []float32) *ReduceHandle {
	return rk.launch(asyncOp{ordered: true, group: group, buf: buf})
}

func (rk *Rank) launch(op asyncOp) *ReduceHandle {
	if rk.asyncCh == nil {
		rk.asyncCh = make(chan asyncOp, asyncQueueDepth)
		rk.asyncDone = make(chan struct{})
		go rk.asyncWorker()
	}
	h := rk.getHandle()
	op.h = h
	rk.asyncCh <- op
	return h
}

func (rk *Rank) asyncWorker() {
	defer close(rk.asyncDone)
	for op := range rk.asyncCh {
		var err error
		if op.ordered {
			err = rk.allReduceOrdered(op.group, op.buf)
		} else {
			err = rk.allReduce(op.group, op.buf)
		}
		op.h.done <- err
	}
}

func (rk *Rank) getHandle() *ReduceHandle {
	if n := len(rk.freeHandles); n > 0 {
		h := rk.freeHandles[n-1]
		rk.freeHandles = rk.freeHandles[:n-1]
		return h
	}
	return &ReduceHandle{rk: rk, done: make(chan error, 1)}
}

// Wait blocks until the reduce completes (or the fabric is poisoned, in
// which case the collective body has already unwound and delivered the
// typed error). Only the time actually spent blocked here counts as exposed
// collective time — a reduce that finished behind compute costs nothing.
// Wait recycles the handle; it must not be used again.
func (h *ReduceHandle) Wait() error {
	var err error
	select {
	case err = <-h.done:
		// Completed behind compute: fully hidden, no exposed time.
	default:
		start := time.Now()
		err = <-h.done
		h.rk.f.stats[h.rk.r].ExposedCollNanos.Add(time.Since(start).Nanoseconds())
	}
	h.rk.freeHandles = append(h.rk.freeHandles, h)
	return err
}

// CloseAsync shuts down the rank's async lane, waiting for the worker to
// finish any queued operations (on a poisoned fabric they unwind
// immediately). Safe to call when the lane was never started, and the lane
// restarts lazily on the next launch. Callers must not hold un-Waited
// handles across CloseAsync — drain first.
func (rk *Rank) CloseAsync() {
	if rk.asyncCh == nil {
		return
	}
	close(rk.asyncCh)
	<-rk.asyncDone
	rk.asyncCh = nil
	rk.asyncDone = nil
}
