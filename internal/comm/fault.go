package comm

// Fault model. A Fabric is born healthy; a rank failure — injected by a
// FaultPlan in tests, or detected by the collective deadline in production —
// POISONS the fabric: a single typed error is recorded once and a
// fabric-wide channel is closed, so every blocking primitive (Recv,
// collective sends and receives) unwinds promptly with that error instead
// of deadlocking on a peer that will never answer. Poisoning is one-way and
// idempotent: the first error wins, later failures are ignored, and a
// poisoned fabric can only be torn down (Close) and replaced. Recovery —
// rebuilding ranks and resuming from a durable checkpoint — is the
// engine's job (internal/axonn + internal/ckpt); the fabric only
// guarantees that failure is prompt, typed and deterministic.

import (
	"errors"
	"fmt"
	"time"
)

// RankFailedError reports that a rank died (by fault injection or an
// engine-level failure attributed to a rank). Step is the engine step the
// rank had most recently begun (via BeginStep; -1 before the first step).
type RankFailedError struct {
	Rank int
	Step int
}

func (e *RankFailedError) Error() string {
	return fmt.Sprintf("comm: rank %d failed at step %d", e.Rank, e.Step)
}

// DeadlineError reports that a blocking receive gave up after the
// configured collective deadline — the backstop detector for a peer that
// stalled or died without poisoning the fabric (e.g. a dropped message).
type DeadlineError struct {
	Rank    int
	Step    int
	Timeout time.Duration
}

func (e *DeadlineError) Error() string {
	return fmt.Sprintf("comm: rank %d timed out after %v at step %d (peer stalled or dead)",
		e.Rank, e.Timeout, e.Step)
}

// ErrFabricClosed is the poison recorded by Close on a healthy fabric.
var ErrFabricClosed = errors.New("comm: fabric closed")

// FaultPlan is a deterministic fault-injection schedule for one Fabric.
// Every field is evaluated on fixed counters (engine step index, per-rank
// collective entry count, fabric-wide p2p message count), so a plan replays
// identically on every run — fault scenarios are tests, not dice rolls.
// Inject with Fabric.InjectFaults before handing out Ranks.
type FaultPlan struct {
	// CrashAtStep maps rank -> engine step: the rank dies (poisons the
	// fabric with RankFailedError) when BeginStep is called with that step.
	CrashAtStep map[int]int
	// CrashAtOp maps rank -> 0-based collective-entry index: the rank dies
	// entering its Nth collective call, mid-batch crash points included.
	CrashAtOp map[int]int
	// DropP2PEvery drops every Nth point-to-point message fabric-wide
	// (0 = none): the message is counted by the sender's stats but never
	// delivered, as on a lossy wire. The collective deadline is the
	// intended detector.
	DropP2PEvery int
	// DelayP2PEvery holds back every Nth point-to-point message and
	// re-delivers it after the next message bound for the same destination
	// (0 = none) — a deterministic reordering, not a timer.
	DelayP2PEvery int
	// Seed offsets the Drop/Delay schedules so different plans with the
	// same period hit different messages.
	Seed uint64
}

// InjectFaults arms the plan on the fabric. Call once, before the rank
// goroutines start. A nil plan is a no-op. Ranks named by the plan must
// exist (programmer error otherwise).
func (f *Fabric) InjectFaults(p *FaultPlan) {
	if p == nil {
		return
	}
	check := func(r int) {
		if r < 0 || r >= f.n {
			panic(fmt.Sprintf("comm: fault plan names rank %d outside [0,%d)", r, f.n))
		}
	}
	f.crashAtStep = make([]int, f.n)
	f.crashAtOp = make([]int, f.n)
	for i := range f.crashAtStep {
		f.crashAtStep[i] = -1
		f.crashAtOp[i] = -1
	}
	for r, s := range p.CrashAtStep {
		check(r)
		f.crashAtStep[r] = s
	}
	for r, op := range p.CrashAtOp {
		check(r)
		f.crashAtOp[r] = op
	}
	f.dropEvery = p.DropP2PEvery
	f.delayEvery = p.DelayP2PEvery
	f.faultSeed = p.Seed
	if f.delayEvery > 0 {
		f.delayed = make([]*Message, f.n)
	}
	f.faulty = true
}

// SetDeadline bounds every blocking receive (data-plane Recv and the
// collective receives). When a wait exceeds d the fabric is poisoned with a
// DeadlineError — the backstop detector for dead or stalled peers. Zero
// (the default) disables the detector; the deadline path allocates a timer
// per blocked receive, so leave it off where the zero-allocation contract
// matters more than fault detection.
func (f *Fabric) SetDeadline(d time.Duration) { f.deadlineNs.Store(int64(d)) }

func (f *Fabric) deadline() time.Duration { return time.Duration(f.deadlineNs.Load()) }

// Poison records err as the fabric's terminal error (first caller wins) and
// wakes every blocked primitive. Idempotent and safe from any goroutine.
// Engine code uses it to convert a local rank failure into a fabric-wide
// prompt unwind instead of letting peers deadlock on missing messages.
func (f *Fabric) Poison(err error) {
	if err == nil {
		err = errors.New("comm: fabric poisoned")
	}
	f.poisonOnce.Do(func() {
		f.poisonErr = err
		f.poisoned.Store(true)
		close(f.poisonCh)
		// Remote peers don't share poisonCh; tell them (best effort,
		// no-op on the local transport). After close(poisonCh) so local
		// unwinding never waits on the wire.
		f.tr.PropagatePoison(err)
	})
}

// Err returns the poison error, or nil while the fabric is healthy.
func (f *Fabric) Err() error {
	if f.poisoned.Load() {
		return f.poisonErr
	}
	return nil
}

// Close tears the fabric down: it poisons the fabric (with ErrFabricClosed
// if still healthy — an earlier failure's error is never masked) so any
// straggling rank unwinds, closes the transport's connections and
// listeners, and drains the pooled collective buffers so a replaced
// fabric's memory is reclaimed promptly.
func (f *Fabric) Close() {
	f.Poison(ErrFabricClosed)
	f.tr.Close()
	f.bufs.drain()
}

func (p *bufPool) drain() {
	p.mu.Lock()
	for i := range p.byClass {
		p.byClass[i] = nil
	}
	p.retained = 0
	p.mu.Unlock()
}

// Fail poisons the fabric with a RankFailedError for this rank, carrying
// cause when non-nil. The engine calls it when a rank hits a local,
// non-communication failure (bad message, panic converted to error) so
// peers unwind with a typed, attributable error.
func (rk *Rank) Fail(cause error) error {
	err := &RankFailedError{Rank: rk.r, Step: rk.step}
	if cause != nil {
		rk.f.Poison(fmt.Errorf("%w: %w", err, cause))
	} else {
		rk.f.Poison(err)
	}
	return rk.f.Err()
}

// BeginStep marks the start of engine step `step` on this rank (recorded in
// failure errors), returns the poison error if the fabric is already dead,
// and fires any CrashAtStep fault scheduled for this rank.
func (rk *Rank) BeginStep(step int) error {
	rk.step = step
	if err := rk.f.Err(); err != nil {
		return err
	}
	if rk.f.crashAtStep != nil && rk.f.crashAtStep[rk.r] == step {
		err := &RankFailedError{Rank: rk.r, Step: step}
		rk.f.Poison(err)
		return err
	}
	return nil
}

// enterColl is the common prologue of every collective call: fail fast on a
// poisoned fabric and fire any CrashAtOp fault scheduled for this rank's
// Nth collective entry.
func (rk *Rank) enterColl() error {
	if err := rk.f.Err(); err != nil {
		return err
	}
	op := rk.ops
	rk.ops++
	if rk.f.crashAtOp != nil && rk.f.crashAtOp[rk.r] == op {
		err := &RankFailedError{Rank: rk.r, Step: rk.step}
		rk.f.Poison(err)
		return err
	}
	return nil
}
