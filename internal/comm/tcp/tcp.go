// Package tcp is the wire transport for the communication fabric: the
// multi-process counterpart of comm.LocalTransport, standing in for the
// network links between Summit nodes. One Transport endpoint per process;
// the fabric's ranks are split into contiguous blocks over the processes
// in Config.Addrs order, and each pair of endpoints is connected by two
// one-directional TCP connections (each side dials its outbound link, so
// startup order does not matter and a restarted peer can always re-dial).
//
// Framing is length-prefixed little-endian: a u32 payload length, a kind
// byte (data / collective / poison), then the fixed header fields and the
// float32 payload (bit-preserving via math.Float32bits — collectives are
// bitwise-identical to the in-process transport). Wire byte buffers come
// from a power-of-two capacity-class pool mirroring the fabric's float
// pool, so steady-state sends and receives are allocation-free.
//
// Failure mapping follows the fabric's poison model: a connection read or
// write error poisons the local fabric with a RankFailedError attributed
// to the dead peer's first rank; a socket write that exceeds the fabric's
// collective deadline surfaces as a DeadlineError; and a poisoned fabric
// broadcasts a poison frame to every peer (best effort) so remote ranks
// unwind with the same typed error instead of waiting for their own
// detectors. Fabric.Close tears down connections without masking an
// earlier failure's error.
package tcp

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/bits"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sparse-dl/samo/internal/comm"
)

const (
	handshakeMagic    = 0x53414d4f // "SAMO"
	wireVersion       = 1
	frameData         = byte(0)
	frameColl         = byte(1)
	framePoison       = byte(2)
	maxFrameBytes     = 1 << 28 // defensive bound on a length prefix
	chanDepth         = 4096    // matches LocalTransport's eager buffering
	dialRetryEvery    = 25 * time.Millisecond
	defaultDialBudget = 15 * time.Second
	poisonWriteBudget = time.Second
)

// Config describes one process's endpoint of a multi-process fabric.
type Config struct {
	// Addrs lists one listen address per process. The fabric's ranks are
	// split into contiguous blocks over the processes in this order, so
	// every process must pass the same Addrs.
	Addrs []string
	// Proc is this process's index into Addrs.
	Proc int
	// Ranks is the total rank count of the fabric (>= len(Addrs)).
	Ranks int
	// DialTimeout bounds the whole mesh construction — dialing every peer
	// (with retries, so a peer that is still starting or restarting after
	// a crash is awaited) and accepting every inbound connection.
	// 0 means 15s.
	DialTimeout time.Duration
	// Listener optionally supplies a pre-bound listener for Addrs[Proc]
	// (tests bind port 0 first to learn the address). Connect takes
	// ownership either way.
	Listener net.Listener
}

// peerConn is the two-connection link to one peer process: out is dialed
// by us (writes serialized by mu), in is accepted from the peer (owned by
// its reader goroutine).
type peerConn struct {
	mu  sync.Mutex
	out net.Conn
	in  net.Conn
}

// Transport implements comm.Transport over TCP.
type Transport struct {
	cfg    Config
	nproc  int
	bounds []int // rank block boundaries per process, len nproc+1
	f      *comm.Fabric
	peers  []*peerConn // indexed by process, nil for self
	data   []chan comm.Message
	coll   []chan comm.CollFrame

	closed     atomic.Bool
	poisonMu   sync.Mutex
	poisonSent bool
	bytes      bytePool
}

// Connect builds this process's endpoint: it listens on Addrs[Proc], dials
// every other process (retrying until DialTimeout, so peers may start in
// any order), and accepts one inbound connection per peer. The returned
// transport is ready for comm.NewFabricOver.
func Connect(cfg Config) (*Transport, error) {
	nproc := len(cfg.Addrs)
	if nproc < 1 {
		return nil, errors.New("tcp: config needs at least one address")
	}
	if cfg.Proc < 0 || cfg.Proc >= nproc {
		return nil, fmt.Errorf("tcp: proc %d outside [0,%d)", cfg.Proc, nproc)
	}
	if cfg.Ranks < nproc {
		return nil, fmt.Errorf("tcp: %d ranks cannot cover %d processes", cfg.Ranks, nproc)
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = defaultDialBudget
	}
	t := &Transport{
		cfg:    cfg,
		nproc:  nproc,
		bounds: procBounds(cfg.Ranks, nproc),
		peers:  make([]*peerConn, nproc),
		data:   make([]chan comm.Message, cfg.Ranks),
		coll:   make([]chan comm.CollFrame, cfg.Ranks),
	}
	for r := t.bounds[cfg.Proc]; r < t.bounds[cfg.Proc+1]; r++ {
		t.data[r] = make(chan comm.Message, chanDepth)
		t.coll[r] = make(chan comm.CollFrame, chanDepth)
	}
	if nproc == 1 {
		if cfg.Listener != nil {
			cfg.Listener.Close()
		}
		return t, nil
	}

	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Addrs[cfg.Proc])
		if err != nil {
			return nil, fmt.Errorf("tcp: listen %s: %w", cfg.Addrs[cfg.Proc], err)
		}
	}
	deadline := time.Now().Add(cfg.DialTimeout)

	// Dial every peer concurrently while accepting their dials to us.
	outs := make([]net.Conn, nproc)
	dialErrs := make([]error, nproc)
	var wg sync.WaitGroup
	for j := 0; j < nproc; j++ {
		if j == cfg.Proc {
			continue
		}
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			outs[j], dialErrs[j] = dialPeer(cfg.Addrs[j], cfg.Proc, deadline)
		}(j)
	}

	ins := make([]net.Conn, nproc)
	var acceptErr error
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(deadline)
	}
	for need := nproc - 1; need > 0; {
		c, err := ln.Accept()
		if err != nil {
			acceptErr = fmt.Errorf("tcp: accepting peers on %s: %w", cfg.Addrs[cfg.Proc], err)
			break
		}
		c.SetReadDeadline(deadline)
		peer, err := readHandshake(c)
		c.SetReadDeadline(time.Time{})
		if err != nil || peer < 0 || peer >= nproc || peer == cfg.Proc || ins[peer] != nil {
			c.Close() // stray, malformed, or duplicate connection
			continue
		}
		ins[peer] = c
		need--
	}
	ln.Close()
	wg.Wait()

	fail := func(err error) (*Transport, error) {
		for _, c := range outs {
			if c != nil {
				c.Close()
			}
		}
		for _, c := range ins {
			if c != nil {
				c.Close()
			}
		}
		return nil, err
	}
	if acceptErr != nil {
		return fail(acceptErr)
	}
	for j := 0; j < nproc; j++ {
		if j == cfg.Proc {
			continue
		}
		if dialErrs[j] != nil {
			return fail(fmt.Errorf("tcp: dialing proc %d: %w", j, dialErrs[j]))
		}
		t.peers[j] = &peerConn{out: outs[j], in: ins[j]}
	}
	return t, nil
}

// Loopback builds n fully connected single-rank endpoints on 127.0.0.1
// (rank i lives on endpoint i) — the conformance and chaos harness for
// exercising the wire path inside one test process.
func Loopback(n int) ([]*Transport, error) {
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range lns[:i] {
				l.Close()
			}
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	trs := make([]*Transport, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			trs[i], errs[i] = Connect(Config{
				Addrs: addrs, Proc: i, Ranks: n,
				DialTimeout: 10 * time.Second, Listener: lns[i],
			})
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, tr := range trs {
				if tr != nil {
					tr.Close()
				}
			}
			return nil, err
		}
	}
	return trs, nil
}

func dialPeer(addr string, proc int, deadline time.Time) (net.Conn, error) {
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, fmt.Errorf("dial %s: timed out", addr)
		}
		step := 500 * time.Millisecond
		if remain < step {
			step = remain
		}
		c, err := net.DialTimeout("tcp", addr, step)
		if err == nil {
			c.SetWriteDeadline(deadline)
			err = writeHandshake(c, proc)
			c.SetWriteDeadline(time.Time{})
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("dial %s: handshake: %w", addr, err)
			}
			return c, nil
		}
		// The peer may not be listening yet (arbitrary startup order, or a
		// crashed process being restarted): retry until the budget runs out.
		time.Sleep(dialRetryEvery)
	}
}

func writeHandshake(c net.Conn, proc int) error {
	var b [9]byte
	binary.LittleEndian.PutUint32(b[0:4], handshakeMagic)
	b[4] = wireVersion
	binary.LittleEndian.PutUint32(b[5:9], uint32(proc))
	_, err := c.Write(b[:])
	return err
}

func readHandshake(c net.Conn) (int, error) {
	var b [9]byte
	if _, err := io.ReadFull(c, b[:]); err != nil {
		return -1, err
	}
	if binary.LittleEndian.Uint32(b[0:4]) != handshakeMagic {
		return -1, errors.New("tcp: bad handshake magic")
	}
	if b[4] != wireVersion {
		return -1, fmt.Errorf("tcp: wire version %d, want %d", b[4], wireVersion)
	}
	return int(binary.LittleEndian.Uint32(b[5:9])), nil
}

// procBounds splits n ranks into nproc contiguous blocks (same arithmetic
// as the fabric's chunkBounds, so rank->process mapping is deterministic).
func procBounds(n, nproc int) []int {
	b := make([]int, nproc+1)
	base, rem := n/nproc, n%nproc
	for i := 0; i < nproc; i++ {
		b[i+1] = b[i] + base
		if i < rem {
			b[i+1]++
		}
	}
	return b
}

func (t *Transport) procOf(r int) int {
	for j := 0; j < t.nproc; j++ {
		if r < t.bounds[j+1] {
			return j
		}
	}
	panic(fmt.Sprintf("tcp: rank %d outside fabric of %d", r, t.cfg.Ranks))
}

// Size returns the fabric's total rank count.
func (t *Transport) Size() int { return t.cfg.Ranks }

// IsLocal reports whether rank r's block is this process's.
func (t *Transport) IsLocal(r int) bool {
	return r >= t.bounds[t.cfg.Proc] && r < t.bounds[t.cfg.Proc+1]
}

// FirstLocalRank returns the lowest rank hosted by this endpoint.
func (t *Transport) FirstLocalRank() int { return t.bounds[t.cfg.Proc] }

// Attach binds the fabric and starts one reader goroutine per peer link.
func (t *Transport) Attach(f *comm.Fabric) {
	t.f = f
	for j, p := range t.peers {
		if p == nil {
			continue
		}
		go t.readLoop(j, p.in)
	}
}

// DataCh returns local rank r's data-plane receive channel.
func (t *Transport) DataCh(r int) <-chan comm.Message { return t.data[r] }

// CollCh returns local rank r's collective-plane receive channel.
func (t *Transport) CollCh(r int) <-chan comm.CollFrame { return t.coll[r] }

// SendData delivers a data-plane message: a channel send for a local
// destination, an encoded frame for a remote one.
func (t *Transport) SendData(to int, m comm.Message) error {
	if t.IsLocal(to) {
		select {
		case t.data[to] <- m:
			return nil
		case <-t.f.Done():
			return t.f.Err()
		}
	}
	buf := encodeData(&t.bytes, to, m)
	err := t.writePeer(t.procOf(to), buf)
	t.bytes.put(buf)
	return err
}

// SendColl delivers a collective frame. Remote sends serialize the payload
// and return fr.Data to the fabric's float pool — the wire analogue of the
// local receiver's fold-and-put, keeping steady-state collectives
// allocation-free on both sides.
func (t *Transport) SendColl(to int, fr comm.CollFrame) error {
	if t.IsLocal(to) {
		select {
		case t.coll[to] <- fr:
			return nil
		case <-t.f.Done():
			return t.f.Err()
		}
	}
	buf := encodeColl(&t.bytes, to, fr)
	err := t.writePeer(t.procOf(to), buf)
	t.bytes.put(buf)
	t.f.RecycleWireBuf(fr.Data)
	return err
}

func (t *Transport) writePeer(proc int, buf []byte) error {
	if err := t.f.Err(); err != nil {
		return err
	}
	p := t.peers[proc]
	p.mu.Lock()
	if d := time.Duration(t.f.Deadline()); d > 0 {
		p.out.SetWriteDeadline(time.Now().Add(d))
	} else {
		p.out.SetWriteDeadline(time.Time{})
	}
	_, err := p.out.Write(buf)
	p.mu.Unlock()
	if err != nil {
		return t.wireFailure(proc, err)
	}
	return nil
}

// wireFailure maps a connection error onto the fabric's poison path: a
// timeout becomes the DeadlineError backstop (attributed to this
// process's first rank, the detector), anything else a RankFailedError
// attributed to the dead peer's first rank. Errors during teardown are
// not new failures.
func (t *Transport) wireFailure(proc int, err error) error {
	if t.closed.Load() {
		if perr := t.f.Err(); perr != nil {
			return perr
		}
		return comm.ErrFabricClosed
	}
	var typed error
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		typed = fmt.Errorf("%w: tcp write to proc %d stalled: %v",
			&comm.DeadlineError{
				Rank:    t.FirstLocalRank(),
				Step:    -1,
				Timeout: time.Duration(t.f.Deadline()),
			}, proc, err)
	} else {
		typed = fmt.Errorf("%w: tcp link to proc %d (ranks %d-%d): %v",
			&comm.RankFailedError{Rank: t.bounds[proc], Step: -1},
			proc, t.bounds[proc], t.bounds[proc+1]-1, err)
	}
	t.f.Poison(typed)
	return t.f.Err()
}

// PropagatePoison broadcasts a poison frame to every peer so remote ranks
// unwind with the same typed error. Asynchronous: the poisoning rank's
// unwind must never wait on a wire whose peer may be the one that died.
func (t *Transport) PropagatePoison(err error) {
	go t.sendPoison(err)
}

func (t *Transport) sendPoison(err error) {
	t.poisonMu.Lock()
	defer t.poisonMu.Unlock()
	if t.poisonSent {
		return
	}
	t.poisonSent = true
	buf := encodePoison(&t.bytes, err)
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		p.mu.Lock()
		p.out.SetWriteDeadline(time.Now().Add(poisonWriteBudget))
		p.out.Write(buf) // best effort: the peer may already be gone
		p.mu.Unlock()
	}
	t.bytes.put(buf)
}

// Close tears down every connection. Idempotent; called by Fabric.Close
// after the fabric is poisoned, so peers are told (poison frame) before
// their reader sees the close — a graceful shutdown surfaces remotely as
// the recorded error, not as a raw connection reset.
func (t *Transport) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	if t.f != nil {
		err := t.f.Err()
		if err == nil {
			err = comm.ErrFabricClosed
		}
		t.sendPoison(err)
	}
	t.closeConns()
	return nil
}

// Abort hard-closes every connection with no poison frame — a chaos hook
// simulating a killed process: peers see only the wire drop (read error /
// EOF) and must unwind through their own failure mapping. Marking the
// poison as already sent is what keeps the death silent: closing the conns
// wakes this endpoint's own readLoops, whose failure mapping poisons the
// local fabric (the abortee's own ranks unwind typed) and would otherwise
// race a misattributed poison frame onto any not-yet-closed peer conn.
func (t *Transport) Abort() {
	t.poisonMu.Lock()
	t.poisonSent = true
	t.poisonMu.Unlock()
	t.closeConns()
}

func (t *Transport) closeConns() {
	for _, p := range t.peers {
		if p == nil {
			continue
		}
		p.out.Close()
		p.in.Close()
	}
}

// readLoop drains one peer's inbound connection, dispatching frames into
// the local rank channels until the connection dies or the fabric is
// poisoned.
func (t *Transport) readLoop(proc int, c net.Conn) {
	br := bufio.NewReaderSize(c, 1<<16)
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			t.readFailure(proc, err)
			return
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if n == 0 || n > maxFrameBytes {
			t.readFailure(proc, fmt.Errorf("frame length %d out of range", n))
			return
		}
		buf := t.bytes.get(int(n))
		if _, err := io.ReadFull(br, buf); err != nil {
			t.bytes.put(buf)
			t.readFailure(proc, err)
			return
		}
		ok := t.dispatch(buf)
		t.bytes.put(buf)
		if !ok {
			return
		}
	}
}

func (t *Transport) readFailure(proc int, err error) {
	if t.closed.Load() || t.f.Err() != nil {
		return // teardown or already-poisoned fabric: not a new failure
	}
	t.wireFailure(proc, err)
}

// dispatch decodes one frame and injects it into the destination rank's
// channel, reporting false when the reader should stop (fabric poisoned).
func (t *Transport) dispatch(buf []byte) bool {
	switch buf[0] {
	case frameData:
		to, m, err := decodeData(buf)
		if err != nil || !t.IsLocal(to) {
			return true // malformed or misrouted: drop, the deadline detector is the remedy
		}
		select {
		case t.data[to] <- m:
			return true
		case <-t.f.Done():
			return false
		}
	case frameColl:
		to, fr, err := decodeColl(buf, t.f)
		if err != nil || !t.IsLocal(to) {
			return true
		}
		select {
		case t.coll[to] <- fr:
			return true
		case <-t.f.Done():
			return false
		}
	case framePoison:
		t.f.Poison(decodePoison(buf))
		return false
	default:
		return true
	}
}

// --- Frame encoding ---------------------------------------------------------
//
// Layout (little-endian), after the u32 payload-length prefix:
//
//	data:   kind u8 | to i32 | from i32 | tag i32 | mb i32 | seq i32 |
//	        nshape u32 | shape i32... | n u32 | f32...
//	coll:   kind u8 | to i32 | from i32 | tag i32 | n u32 | f32...
//	poison: kind u8 | code u8 | rank i32 | step i32 | timeout i64 |
//	        msglen u32 | msg bytes

func encodeData(p *bytePool, to int, m comm.Message) []byte {
	n := 4 + 1 + 5*4 + 4 + 4*len(m.Shape) + 4 + 4*len(m.Data)
	buf := p.get(n)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(n-4))
	buf[4] = frameData
	off := 5
	for _, v := range []int{to, m.From, int(m.Tag), m.MB, m.Seq} {
		binary.LittleEndian.PutUint32(buf[off:], uint32(int32(v)))
		off += 4
	}
	binary.LittleEndian.PutUint32(buf[off:], uint32(len(m.Shape)))
	off += 4
	for _, s := range m.Shape {
		binary.LittleEndian.PutUint32(buf[off:], uint32(int32(s)))
		off += 4
	}
	off += putFloats(buf[off:], m.Data)
	return buf[:off]
}

func decodeData(buf []byte) (int, comm.Message, error) {
	var m comm.Message
	if len(buf) < 1+5*4+4 {
		return 0, m, errors.New("tcp: short data frame")
	}
	off := 1
	geti := func() int {
		v := int(int32(binary.LittleEndian.Uint32(buf[off:])))
		off += 4
		return v
	}
	to := geti()
	m.From = geti()
	m.Tag = comm.Tag(geti())
	m.MB = geti()
	m.Seq = geti()
	nshape := geti()
	if nshape < 0 || len(buf) < off+4*nshape+4 {
		return 0, m, errors.New("tcp: bad data frame shape")
	}
	if nshape > 0 {
		m.Shape = make([]int, nshape)
		for i := range m.Shape {
			m.Shape[i] = geti()
		}
	}
	nd := geti()
	if nd < 0 || len(buf) != off+4*nd {
		return 0, m, errors.New("tcp: bad data frame payload")
	}
	if nd > 0 {
		m.Data = make([]float32, nd)
		getFloats(buf[off:], m.Data)
	}
	return to, m, nil
}

func encodeColl(p *bytePool, to int, fr comm.CollFrame) []byte {
	n := 4 + 1 + 3*4 + 4 + 4*len(fr.Data)
	buf := p.get(n)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(n-4))
	buf[4] = frameColl
	off := 5
	for _, v := range []int{to, fr.From, fr.Tag} {
		binary.LittleEndian.PutUint32(buf[off:], uint32(int32(v)))
		off += 4
	}
	off += putFloats(buf[off:], fr.Data)
	return buf[:off]
}

// decodeColl decodes a collective frame, pulling the payload buffer from
// the fabric's float pool — the receiving collective returns it there, so
// the wire receive path recycles like the local zero-copy handoff.
func decodeColl(buf []byte, f *comm.Fabric) (int, comm.CollFrame, error) {
	var fr comm.CollFrame
	if len(buf) < 1+3*4+4 {
		return 0, fr, errors.New("tcp: short coll frame")
	}
	off := 1
	geti := func() int {
		v := int(int32(binary.LittleEndian.Uint32(buf[off:])))
		off += 4
		return v
	}
	to := geti()
	fr.From = geti()
	fr.Tag = geti()
	nd := geti()
	if nd < 0 || len(buf) != off+4*nd {
		return 0, fr, errors.New("tcp: bad coll frame payload")
	}
	fr.Data = f.WireBuf(nd)
	getFloats(buf[off:], fr.Data)
	return to, fr, nil
}

// Poison frame error codes.
const (
	poisonOther      = byte(0)
	poisonRankFailed = byte(1)
	poisonDeadline   = byte(2)
	poisonClosed     = byte(3)
)

// encodePoison serializes a typed fabric error so the receiving process
// reconstructs the same type — errors.As on RankFailedError/DeadlineError
// works across the wire, which is what lets a remote engine's restart
// loop classify a peer crash as recoverable.
func encodePoison(p *bytePool, err error) []byte {
	code, rank, step := poisonOther, 0, 0
	var timeout time.Duration
	var rf *comm.RankFailedError
	var de *comm.DeadlineError
	switch {
	case errors.As(err, &rf):
		code, rank, step = poisonRankFailed, rf.Rank, rf.Step
	case errors.As(err, &de):
		code, rank, step, timeout = poisonDeadline, de.Rank, de.Step, de.Timeout
	case errors.Is(err, comm.ErrFabricClosed):
		code = poisonClosed
	}
	msg := ""
	if code == poisonOther && err != nil {
		msg = err.Error()
	}
	n := 4 + 1 + 1 + 4 + 4 + 8 + 4 + len(msg)
	buf := p.get(n)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(n-4))
	buf[4] = framePoison
	buf[5] = code
	binary.LittleEndian.PutUint32(buf[6:], uint32(int32(rank)))
	binary.LittleEndian.PutUint32(buf[10:], uint32(int32(step)))
	binary.LittleEndian.PutUint64(buf[14:], uint64(timeout))
	binary.LittleEndian.PutUint32(buf[22:], uint32(len(msg)))
	copy(buf[26:], msg)
	return buf[:n]
}

func decodePoison(buf []byte) error {
	if len(buf) < 22 {
		return errors.New("tcp: short poison frame")
	}
	code := buf[1]
	rank := int(int32(binary.LittleEndian.Uint32(buf[2:])))
	step := int(int32(binary.LittleEndian.Uint32(buf[6:])))
	timeout := time.Duration(binary.LittleEndian.Uint64(buf[10:]))
	switch code {
	case poisonRankFailed:
		return &comm.RankFailedError{Rank: rank, Step: step}
	case poisonDeadline:
		return &comm.DeadlineError{Rank: rank, Step: step, Timeout: timeout}
	case poisonClosed:
		return comm.ErrFabricClosed
	default:
		msgLen := int(binary.LittleEndian.Uint32(buf[18:]))
		msg := "remote fabric poisoned"
		if msgLen > 0 && len(buf) >= 22+msgLen {
			msg = string(buf[22 : 22+msgLen])
		}
		return fmt.Errorf("tcp: %s", msg)
	}
}

func putFloats(dst []byte, src []float32) int {
	binary.LittleEndian.PutUint32(dst, uint32(len(src)))
	off := 4
	for _, v := range src {
		binary.LittleEndian.PutUint32(dst[off:], math.Float32bits(v))
		off += 4
	}
	return off
}

func getFloats(src []byte, dst []float32) {
	off := 0
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[off:]))
		off += 4
	}
}

// --- Wire byte pool ---------------------------------------------------------

// bytePool recycles wire buffers in power-of-two capacity classes,
// mirroring the fabric's float pool: encode/decode reslices a pooled
// buffer of the covering class, so steady-state framing is
// allocation-free. Retained capacity is bounded; put drops beyond it.
type bytePool struct {
	mu       sync.Mutex
	byClass  [bufClasses][][]byte
	retained int64
}

const (
	bufClasses   = 64
	maxPoolBytes = 8 << 20
)

func bufClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

func (p *bytePool) get(n int) []byte {
	if n == 0 {
		return nil
	}
	c := bufClass(n)
	p.mu.Lock()
	if list := p.byClass[c]; len(list) > 0 {
		b := list[len(list)-1]
		p.byClass[c] = list[:len(list)-1]
		p.retained -= int64(cap(b))
		p.mu.Unlock()
		return b[:n]
	}
	p.mu.Unlock()
	b := make([]byte, 1<<c)
	return b[:n]
}

func (p *bytePool) put(b []byte) {
	if cap(b) == 0 {
		return
	}
	c := bufClass(cap(b))
	if 1<<c != cap(b) {
		return
	}
	p.mu.Lock()
	if len(p.byClass[c]) > 0 && p.retained+int64(cap(b)) > maxPoolBytes {
		p.mu.Unlock()
		return
	}
	p.retained += int64(cap(b))
	p.byClass[c] = append(p.byClass[c], b)
	p.mu.Unlock()
}
