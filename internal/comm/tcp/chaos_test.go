package tcp

// Chaos tests for the wire: hard connection drops and stalled sockets.
// Each scenario requires every blocked rank to unwind promptly with the
// matching typed error — RankFailedError for a dead connection,
// DeadlineError for a peer that is accepted but silent — never a hang.
// The per-scenario watchdog is itself the no-deadlock assertion.

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/sparse-dl/samo/internal/comm"
)

const chaosWatchdog = 15 * time.Second

// loopbackFabrics builds n single-rank TCP endpoints with one fabric and
// rank per endpoint, registering teardown.
func loopbackFabrics(t *testing.T, n int) ([]*comm.Fabric, []*comm.Rank, []*Transport) {
	t.Helper()
	trs, err := Loopback(n)
	if err != nil {
		t.Fatalf("loopback: %v", err)
	}
	fabs := make([]*comm.Fabric, n)
	ranks := make([]*comm.Rank, n)
	for i, tr := range trs {
		fabs[i] = comm.NewFabricOver(tr)
		ranks[i] = fabs[i].Rank(i)
		t.Cleanup(fabs[i].Close)
	}
	return fabs, ranks, trs
}

// runRanks runs fn per rank under the chaos watchdog.
func runRanks(t *testing.T, ranks []*comm.Rank, fn func(rk *comm.Rank) error) []error {
	t.Helper()
	errs := make([]error, len(ranks))
	var wg sync.WaitGroup
	for i, rk := range ranks {
		wg.Add(1)
		go func(i int, rk *comm.Rank) {
			defer wg.Done()
			errs[i] = fn(rk)
		}(i, rk)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(chaosWatchdog):
		t.Fatal("chaos scenario deadlocked: ranks did not unwind")
	}
	return errs
}

// TestChaosHardClosePeerMidCollective kills one endpoint's connections
// (no poison frame — as a SIGKILLed process would) while every rank loops
// ring all-reduces. Every survivor must unwind with a RankFailedError;
// the aborted endpoint's own ranks unwind too.
func TestChaosHardClosePeerMidCollective(t *testing.T) {
	_, ranks, trs := loopbackFabrics(t, 3)
	group := []int{0, 1, 2}
	errs := runRanks(t, ranks, func(rk *comm.Rank) error {
		buf := make([]float32, 512)
		for i := range buf {
			buf[i] = float32(rk.ID() + i)
		}
		for i := 0; ; i++ {
			if rk.ID() == 1 && i == 3 {
				trs[1].Abort() // wire drops mid-stream, between collectives
			}
			if err := rk.AllReduce(group, buf); err != nil {
				return err
			}
		}
	})
	for r, err := range errs {
		var rf *comm.RankFailedError
		if !errors.As(err, &rf) {
			t.Fatalf("rank %d: got %v, want RankFailedError", r, err)
		}
	}
}

// TestChaosHardCloseMidSend drops the connection under a stream of p2p
// sends: the sender must surface a typed RankFailedError from Send or the
// next Recv, not block or silently succeed forever.
func TestChaosHardCloseMidSend(t *testing.T) {
	fabs, ranks, trs := loopbackFabrics(t, 2)
	errs := runRanks(t, ranks, func(rk *comm.Rank) error {
		if rk.ID() == 1 {
			// Receive a few messages, then die without a word.
			for i := 0; i < 3; i++ {
				if _, err := rk.Recv(); err != nil {
					return err
				}
			}
			trs[1].Abort()
			return errors.New("aborted")
		}
		buf := make([]float32, 4096)
		for i := 0; ; i++ {
			if err := rk.Send(1, comm.TagActivation, i, buf); err != nil {
				return err
			}
			// A send can land in socket buffers after the drop; the
			// reader side of the dead link is the reliable detector, so
			// poll the fabric between sends rather than relying on write
			// errors alone.
			if err := fabs[0].Err(); err != nil {
				return err
			}
			time.Sleep(time.Millisecond)
		}
	})
	var rf *comm.RankFailedError
	if !errors.As(errs[0], &rf) {
		t.Fatalf("sender: got %v, want RankFailedError", errs[0])
	}
	if rf.Rank != 1 {
		t.Fatalf("sender: failure attributed to rank %d, want 1", rf.Rank)
	}
}

// TestChaosStalledSocket wires a fake peer that completes the handshake
// and then never writes another byte — a stalled remote, not a dead one.
// No connection error ever fires, so the fabric's deadline backstop must
// unwind the blocked rank with a DeadlineError.
func TestChaosStalledSocket(t *testing.T) {
	// Fake peer: listener that accepts proc 0's dial, plus an outbound
	// dial to proc 0 with a valid handshake. Both connections then go
	// silent forever.
	fakeLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("fake listener: %v", err)
	}
	defer fakeLn.Close()

	realLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("real listener: %v", err)
	}
	addrs := []string{realLn.Addr().String(), fakeLn.Addr().String()}

	var held []net.Conn
	var heldMu sync.Mutex
	defer func() {
		heldMu.Lock()
		for _, c := range held {
			c.Close()
		}
		heldMu.Unlock()
	}()
	go func() {
		// Accept proc 0's outbound connection and hold it silently.
		c, err := fakeLn.Accept()
		if err != nil {
			return
		}
		heldMu.Lock()
		held = append(held, c)
		heldMu.Unlock()
	}()
	go func() {
		// Dial proc 0 as proc 1 with a valid handshake, then stall.
		c, err := net.DialTimeout("tcp", addrs[0], 5*time.Second)
		if err != nil {
			return
		}
		if err := writeHandshake(c, 1); err != nil {
			c.Close()
			return
		}
		heldMu.Lock()
		held = append(held, c)
		heldMu.Unlock()
	}()

	tr, err := Connect(Config{
		Addrs: addrs, Proc: 0, Ranks: 2,
		DialTimeout: 5 * time.Second, Listener: realLn,
	})
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	f := comm.NewFabricOver(tr)
	defer f.Close()
	f.SetDeadline(200 * time.Millisecond)

	rk := f.Rank(0)
	done := make(chan error, 1)
	go func() {
		buf := make([]float32, 256)
		done <- rk.AllReduce([]int{0, 1}, buf)
	}()
	select {
	case err := <-done:
		var de *comm.DeadlineError
		if !errors.As(err, &de) {
			t.Fatalf("got %v, want DeadlineError", err)
		}
		if de.Rank != 0 {
			t.Fatalf("deadline attributed to rank %d, want 0", de.Rank)
		}
	case <-time.After(chaosWatchdog):
		t.Fatal("rank hung on stalled socket despite deadline backstop")
	}
}

// TestChaosAbortDuringBarrier drops an endpoint while the others wait in
// a barrier (the all-to-one-to-all pattern most sensitive to a missing
// peer): both survivors must unwind typed.
func TestChaosAbortDuringBarrier(t *testing.T) {
	_, ranks, trs := loopbackFabrics(t, 3)
	group := []int{0, 1, 2}
	errs := runRanks(t, ranks, func(rk *comm.Rank) error {
		if rk.ID() == 2 {
			time.Sleep(30 * time.Millisecond) // let 0 and 1 block in the barrier
			trs[2].Abort()
			return errors.New("aborted")
		}
		for {
			if err := rk.Barrier(group); err != nil {
				return err
			}
		}
	})
	for r := 0; r < 2; r++ {
		var rf *comm.RankFailedError
		if !errors.As(errs[r], &rf) {
			t.Fatalf("rank %d: got %v, want RankFailedError", r, errs[r])
		}
		if rf.Rank != 2 {
			t.Fatalf("rank %d: failure attributed to rank %d, want 2", r, errs[r])
		}
	}
}

// TestConnectRejectsBadConfig pins the config validation surface.
func TestConnectRejectsBadConfig(t *testing.T) {
	cases := []Config{
		{Addrs: nil, Proc: 0, Ranks: 1},
		{Addrs: []string{"a", "b"}, Proc: 2, Ranks: 2},
		{Addrs: []string{"a", "b"}, Proc: -1, Ranks: 2},
		{Addrs: []string{"a", "b", "c"}, Proc: 0, Ranks: 2},
	}
	for i, cfg := range cases {
		if _, err := Connect(cfg); err == nil {
			t.Fatalf("case %d: Connect accepted invalid config %+v", i, cfg)
		}
	}
}

// TestRankBlocksCoverFabric pins the contiguous rank-block layout the
// engine relies on for checkpoint-shard ownership.
func TestRankBlocksCoverFabric(t *testing.T) {
	for _, tc := range []struct{ ranks, nproc int }{{4, 2}, {7, 3}, {8, 8}, {5, 1}} {
		b := procBounds(tc.ranks, tc.nproc)
		if b[0] != 0 || b[tc.nproc] != tc.ranks {
			t.Fatalf("%d/%d: bounds %v do not cover the fabric", tc.ranks, tc.nproc, b)
		}
		for j := 0; j < tc.nproc; j++ {
			if b[j+1] <= b[j] {
				t.Fatalf("%d/%d: empty block %d in %v", tc.ranks, tc.nproc, j, b)
			}
		}
	}
	tr := &Transport{cfg: Config{Proc: 1, Ranks: 7}, nproc: 3, bounds: procBounds(7, 3)}
	for r := 0; r < 7; r++ {
		wantLocal := r >= tr.bounds[1] && r < tr.bounds[2]
		if tr.IsLocal(r) != wantLocal {
			t.Fatalf("IsLocal(%d) = %v, want %v", r, tr.IsLocal(r), wantLocal)
		}
		want := 0
		for want+1 < tr.nproc && r >= tr.bounds[want+1] {
			want++
		}
		if got := tr.procOf(r); got != want {
			t.Fatalf("procOf(%d) = %d, want %d", r, got, want)
		}
	}
}
