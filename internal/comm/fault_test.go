package comm

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// waitAll runs fn on every rank like runGroup but with a watchdog: a fault
// test that deadlocks is a failed test, not a hung runner.
func waitAll(t *testing.T, f *Fabric, fn func(rk *Rank)) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		var wg sync.WaitGroup
		for r := 0; r < f.Size(); r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				fn(f.Rank(r))
			}(r)
		}
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("ranks deadlocked: abort path failed to unwind")
	}
}

func TestRecvAfterPoison(t *testing.T) {
	f := NewFabric(2)
	s, r := f.Rank(0), f.Rank(1)
	must(s.Send(1, TagActivation, 0, []float32{1}))
	want := &RankFailedError{Rank: 0, Step: 3}
	f.Poison(want)
	// The fast path must win even though a message is queued: a poisoned
	// fabric's history is suspect and the engine restarts from a checkpoint.
	if _, err := r.Recv(); !errors.Is(err, want) {
		t.Fatalf("Recv after poison: err=%v, want %v", err, want)
	}
	if err := s.Send(1, TagActivation, 1, []float32{2}); !errors.Is(err, want) {
		t.Fatalf("Send after poison: err=%v, want %v", err, want)
	}
	var rf *RankFailedError
	if !errors.As(f.Err(), &rf) || rf.Rank != 0 || rf.Step != 3 {
		t.Fatalf("Err() = %v, want typed RankFailedError{0,3}", f.Err())
	}
}

func TestPoisonFirstErrorWins(t *testing.T) {
	f := NewFabric(1)
	first := &RankFailedError{Rank: 0, Step: 1}
	f.Poison(first)
	f.Poison(&RankFailedError{Rank: 0, Step: 99})
	if !errors.Is(f.Err(), first) {
		t.Fatalf("second Poison overwrote first: %v", f.Err())
	}
}

func TestZeroLengthCollectivesUnderAbort(t *testing.T) {
	// Zero-length buffers take the same entry/abort path as real payloads:
	// healthy fabric reduces them fine, poisoned fabric rejects them with
	// the typed error instead of silently succeeding (the engine uses the
	// error as its abort signal, so a nil-error no-op would mask a failure).
	f := NewFabric(3)
	waitAll(t, f, func(rk *Rank) {
		if err := rk.AllReduce(group(3), nil); err != nil {
			t.Errorf("rank %d: healthy zero-length AllReduce: %v", rk.ID(), err)
		}
		if err := rk.AllReduceOrdered(group(3), []float32{}); err != nil {
			t.Errorf("rank %d: healthy zero-length ordered reduce: %v", rk.ID(), err)
		}
		if _, err := rk.ReduceScatter(group(3), nil); err != nil {
			t.Errorf("rank %d: healthy zero-length ReduceScatter: %v", rk.ID(), err)
		}
		if _, err := rk.AllGather(group(3), nil, 0); err != nil {
			t.Errorf("rank %d: healthy zero-length AllGather: %v", rk.ID(), err)
		}
	})
	want := &RankFailedError{Rank: 1, Step: 0}
	f.Poison(want)
	waitAll(t, f, func(rk *Rank) {
		if err := rk.AllReduce(group(3), nil); !errors.Is(err, want) {
			t.Errorf("rank %d: poisoned zero-length AllReduce: %v", rk.ID(), err)
		}
		if err := rk.Barrier(group(3)); !errors.Is(err, want) {
			t.Errorf("rank %d: poisoned Barrier: %v", rk.ID(), err)
		}
		if _, err := rk.ReduceScatter(group(3), nil); !errors.Is(err, want) {
			t.Errorf("rank %d: poisoned zero-length ReduceScatter: %v", rk.ID(), err)
		}
		if _, err := rk.AllGather(group(3), nil, 0); !errors.Is(err, want) {
			t.Errorf("rank %d: poisoned zero-length AllGather: %v", rk.ID(), err)
		}
	})
}

func TestConcurrentPoisonVsInflightRings(t *testing.T) {
	// -race stress: ranks hammer ring all-reduces while an outside goroutine
	// poisons the fabric mid-flight. Every rank must unwind promptly with
	// the poison error — no deadlock, no race on the poison state, and the
	// error every rank sees is the same first-winner.
	for trial := 0; trial < 20; trial++ {
		f := NewFabric(4)
		want := &RankFailedError{Rank: 2, Step: trial}
		go func() {
			// No timer: scheduling jitter alone lands the poison at a
			// different point in the ring each trial.
			f.Poison(want)
		}()
		waitAll(t, f, func(rk *Rank) {
			buf := make([]float32, 1024)
			for {
				if err := rk.AllReduce(group(4), buf); err != nil {
					if !errors.Is(err, want) {
						t.Errorf("trial %d rank %d: unwound with %v, want %v",
							trial, rk.ID(), err, want)
					}
					return
				}
			}
		})
	}
}

func TestCrashAtStepUnwindsPeers(t *testing.T) {
	f := NewFabric(3)
	f.InjectFaults(&FaultPlan{CrashAtStep: map[int]int{1: 2}})
	errs := make([]error, 3)
	waitAll(t, f, func(rk *Rank) {
		buf := []float32{float32(rk.ID())}
		for step := 0; step < 10; step++ {
			if err := rk.BeginStep(step); err != nil {
				errs[rk.ID()] = err
				return
			}
			if err := rk.AllReduce(group(3), buf); err != nil {
				errs[rk.ID()] = err
				return
			}
		}
		t.Errorf("rank %d finished all steps despite injected crash", rk.ID())
	})
	for r, err := range errs {
		var rf *RankFailedError
		if !errors.As(err, &rf) {
			t.Fatalf("rank %d: %v, want RankFailedError", r, err)
		}
		if rf.Rank != 1 || rf.Step != 2 {
			t.Fatalf("rank %d: crash attributed to rank %d step %d, want rank 1 step 2",
				r, rf.Rank, rf.Step)
		}
	}
}

func TestCrashAtOpIsDeterministic(t *testing.T) {
	// The op counter indexes collective entries per rank, so the same plan
	// must fire at the same collective on every run.
	run := func() error {
		f := NewFabric(2)
		f.InjectFaults(&FaultPlan{CrashAtOp: map[int]int{0: 3}})
		var got error
		waitAll(t, f, func(rk *Rank) {
			buf := []float32{1}
			for {
				if err := rk.AllReduce(group(2), buf); err != nil {
					if rk.ID() == 0 {
						got = err
					}
					return
				}
			}
		})
		return got
	}
	a, b := run(), run()
	var rf *RankFailedError
	if !errors.As(a, &rf) || rf.Rank != 0 {
		t.Fatalf("run 1: %v, want RankFailedError for rank 0", a)
	}
	if a.Error() != b.Error() {
		t.Fatalf("fault not deterministic: %q vs %q", a, b)
	}
}

func TestDeadlineDetectsSilentPeer(t *testing.T) {
	// Rank 1 never sends: rank 0's Recv must trip the deadline backstop and
	// poison the fabric with a typed DeadlineError, not block forever.
	f := NewFabric(2)
	f.SetDeadline(50 * time.Millisecond)
	r := f.Rank(0)
	if err := r.BeginStep(4); err != nil {
		t.Fatal(err)
	}
	_, err := r.Recv()
	var de *DeadlineError
	if !errors.As(err, &de) {
		t.Fatalf("Recv on silent peer: %v, want DeadlineError", err)
	}
	if de.Rank != 0 || de.Step != 4 {
		t.Fatalf("DeadlineError{%d,%d}, want {0,4}", de.Rank, de.Step)
	}
	if f.Err() == nil {
		t.Fatal("deadline did not poison the fabric")
	}
}

func TestDropP2PCaughtByDeadline(t *testing.T) {
	// Every message dropped; the collective deadline is the remedy the drop
	// schedule documents, so the receiver must surface DeadlineError.
	f := NewFabric(2)
	f.InjectFaults(&FaultPlan{DropP2PEvery: 1})
	f.SetDeadline(50 * time.Millisecond)
	waitAll(t, f, func(rk *Rank) {
		if rk.ID() == 0 {
			if err := rk.Send(1, TagActivation, 0, []float32{1}); err != nil {
				t.Errorf("drop must look like success to the sender: %v", err)
			}
			return
		}
		_, err := rk.Recv()
		var de *DeadlineError
		if !errors.As(err, &de) {
			t.Errorf("Recv of dropped message: %v, want DeadlineError", err)
		}
	})
}

func TestDelayP2PReordersWithoutLoss(t *testing.T) {
	// Delaying every 2nd message reorders the stream deterministically but
	// loses nothing once enough traffic flushes the held slot.
	f := NewFabric(2)
	f.InjectFaults(&FaultPlan{DelayP2PEvery: 2, Seed: 1})
	const n = 16
	s, r := f.Rank(0), f.Rank(1)
	for i := 0; i < n; i++ {
		must(s.Send(1, TagActivation, i, []float32{float32(i)}))
	}
	seen := make(map[int]bool)
	inOrder := true
	prev := -1
	for i := 0; i < n; i++ {
		m := must1(r.Recv())
		seen[m.MB] = true
		if m.MB < prev {
			inOrder = false
		}
		prev = m.MB
	}
	if len(seen) != n {
		t.Fatalf("lost messages under delay: got %d/%d distinct", len(seen), n)
	}
	if inOrder {
		t.Fatal("delay schedule produced no reordering: fault not exercised")
	}
}

func TestFailAttachesCause(t *testing.T) {
	f := NewFabric(2)
	rk := f.Rank(1)
	if err := rk.BeginStep(7); err != nil {
		t.Fatal(err)
	}
	cause := errors.New("loss exploded")
	err := rk.Fail(cause)
	var rf *RankFailedError
	if !errors.As(err, &rf) || rf.Rank != 1 || rf.Step != 7 {
		t.Fatalf("Fail: %v, want RankFailedError{1,7}", err)
	}
	if !errors.Is(err, cause) {
		t.Fatalf("Fail dropped the cause: %v", err)
	}
}

func TestCloseDrainsPoolAndPoisons(t *testing.T) {
	f := runGroup(2, func(rk *Rank) {
		buf := make([]float32, 4096)
		must(rk.AllReduce(group(2), buf))
	})
	if f.PooledBytes() == 0 {
		t.Fatal("test premise broken: pool empty before Close")
	}
	f.Close()
	if got := f.PooledBytes(); got != 0 {
		t.Fatalf("Close left %d pooled bytes", got)
	}
	if !errors.Is(f.Err(), ErrFabricClosed) {
		t.Fatalf("Close poison = %v, want ErrFabricClosed", f.Err())
	}
	// Close after a real failure must not mask the original error.
	f2 := NewFabric(1)
	want := &RankFailedError{Rank: 0, Step: 0}
	f2.Poison(want)
	f2.Close()
	if !errors.Is(f2.Err(), want) {
		t.Fatalf("Close masked poison: %v", f2.Err())
	}
}

func TestInjectFaultsRejectsUnknownRank(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("fault plan naming rank 9 on a 2-rank fabric must panic")
		}
	}()
	NewFabric(2).InjectFaults(&FaultPlan{CrashAtStep: map[int]int{9: 0}})
}
