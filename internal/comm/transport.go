package comm

// Transport abstraction. A Fabric is the failure-domain and collective-
// algorithm layer; the Transport underneath it is the wire: it owns the
// receive queues of the ranks that live in THIS process and knows how to
// move framed messages to every rank, local or remote.
//
// Two implementations exist:
//
//   - LocalTransport (here): the original in-process channel mesh. Every
//     rank is local, delivery is a zero-copy channel send, and payload
//     buffers migrate sender→receiver without serialization.
//   - tcp.Transport (internal/comm/tcp): length-prefixed frames over TCP
//     sockets, one endpoint per process, for multi-process training. Wire
//     buffers come from power-of-two capacity-class pools so steady-state
//     sends are allocation-free; connection errors map onto the poison
//     path (RankFailedError) and socket write timeouts onto the
//     DeadlineError backstop.
//
// The collective algorithms (ring all-reduce, reduce-scatter, all-gather,
// ordered reductions) run ABOVE the transport and are therefore identical
// on both — the conformance suite pins their results bitwise-equal across
// transports at every group size.

// CollFrame is one collective-plane message: a tagged chunk moving between
// two ranks inside a collective. Data buffers come from the fabric's
// capacity-class pool; the receiving collective folds the payload in and
// returns the buffer to the pool.
type CollFrame struct {
	From int
	Tag  int
	Data []float32
}

// Transport moves framed messages between the ranks of one fabric. A
// transport is bound to exactly one Fabric via Attach (called by
// NewFabricOver before any traffic flows); implementations use the
// fabric's Done channel to unwind blocking deliveries when the fabric is
// poisoned, and its Poison method to report wire failures as typed errors.
type Transport interface {
	// Size is the total rank count of the fabric.
	Size() int
	// IsLocal reports whether rank r's receive queues live in this process.
	IsLocal(r int) bool
	// Attach binds the transport to its fabric and starts any receive
	// machinery (reader goroutines for wire transports). Called exactly
	// once, by NewFabricOver.
	Attach(f *Fabric)
	// DataCh returns local rank r's data-plane receive channel.
	DataCh(r int) <-chan Message
	// CollCh returns local rank r's collective-plane receive channel.
	CollCh(r int) <-chan CollFrame
	// SendData delivers a data-plane message to rank to (local or remote).
	// Blocking deliveries must unwind with the fabric's poison error when
	// the fabric dies.
	SendData(to int, m Message) error
	// SendColl delivers a collective frame to rank to. A wire transport
	// serializes the payload and returns fr.Data to the fabric's buffer
	// pool; a local transport hands it to the receiver zero-copy.
	SendColl(to int, fr CollFrame) error
	// PropagatePoison tells remote peers the fabric died (best effort,
	// must not block the caller indefinitely). Local transports no-op:
	// every rank shares the poison channel already.
	PropagatePoison(err error)
	// Close tears down connections and listeners. Idempotent; called by
	// Fabric.Close after the fabric is poisoned.
	Close() error
}

// LocalTransport is the in-process channel mesh: the default transport,
// and the reference semantics every wire transport must match. Buffered
// channels model NCCL's eager protocol (sends are asynchronous until the
// buffer fills); payloads are handed sender→receiver zero-copy.
type LocalTransport struct {
	f    *Fabric
	data []chan Message
	coll []chan CollFrame
}

// NewLocalTransport returns an in-process transport connecting n ranks.
func NewLocalTransport(n int) *LocalTransport {
	t := &LocalTransport{
		data: make([]chan Message, n),
		coll: make([]chan CollFrame, n),
	}
	for i := range t.data {
		t.data[i] = make(chan Message, 4096)
		t.coll[i] = make(chan CollFrame, 4096)
	}
	return t
}

// Size returns the rank count.
func (t *LocalTransport) Size() int { return len(t.data) }

// IsLocal is true for every rank: the mesh lives in one process.
func (t *LocalTransport) IsLocal(int) bool { return true }

// Attach binds the transport to its fabric.
func (t *LocalTransport) Attach(f *Fabric) { t.f = f }

// DataCh returns rank r's data-plane receive channel.
func (t *LocalTransport) DataCh(r int) <-chan Message { return t.data[r] }

// CollCh returns rank r's collective-plane receive channel.
func (t *LocalTransport) CollCh(r int) <-chan CollFrame { return t.coll[r] }

// SendData delivers m to rank to, unwinding with the poison error if the
// fabric dies while the channel is full.
func (t *LocalTransport) SendData(to int, m Message) error {
	select {
	case t.data[to] <- m:
		return nil
	case <-t.f.Done():
		return t.f.Err()
	}
}

// SendColl delivers fr to rank to zero-copy.
func (t *LocalTransport) SendColl(to int, fr CollFrame) error {
	select {
	case t.coll[to] <- fr:
		return nil
	case <-t.f.Done():
		return t.f.Err()
	}
}

// PropagatePoison is a no-op: every local rank already shares the
// fabric's poison channel.
func (t *LocalTransport) PropagatePoison(error) {}

// Close is a no-op: channels die with the fabric.
func (t *LocalTransport) Close() error { return nil }

// --- Fabric-side transport hooks -------------------------------------------
//
// Exported surface a wire transport (a different package) needs to
// interoperate with the fabric's poison model and buffer pool.

// Done returns the channel closed when the fabric is poisoned. Transports
// select on it so blocking deliveries unwind promptly on failure.
func (f *Fabric) Done() <-chan struct{} { return f.poisonCh }

// WireBuf returns a pooled float32 buffer of length n from the fabric's
// capacity-class pool — wire transports decode incoming collective
// payloads into it, and the receiving collective returns it via the same
// pool, so steady-state receives recycle rather than allocate.
func (f *Fabric) WireBuf(n int) []float32 { return f.bufs.get(n) }

// RecycleWireBuf returns a pooled buffer after a wire transport has
// serialized it (the remote-send analogue of the receiver's fold-and-put).
func (f *Fabric) RecycleWireBuf(b []float32) { f.bufs.put(b) }

// Deadline returns the configured blocking-receive deadline (0 = off).
// Wire transports mirror it onto socket write deadlines so a peer that
// stops draining its socket surfaces as a DeadlineError, not a stuck send.
func (f *Fabric) Deadline() int64 { return f.deadlineNs.Load() }

// IsLocal reports whether rank r lives in this process.
func (f *Fabric) IsLocal(r int) bool { return f.tr.IsLocal(r) }

// RemotePeers reports whether any rank of this fabric lives in another
// process (true only for transport-backed multi-process fabrics).
func (f *Fabric) RemotePeers() bool { return f.remote }

// RemotePeers reports whether this rank's fabric spans processes.
func (rk *Rank) RemotePeers() bool { return rk.f.remote }
