package comm_test

// Transport conformance suite: every test here runs against BOTH
// transports — the in-process channel mesh and the TCP wire via loopback
// endpoints — and pins them to identical semantics: bitwise-equal
// collective results, exact p2p ordering, and the same typed errors
// (RankFailedError / DeadlineError / ErrFabricClosed) unwinding every
// blocked rank on failure, with the types surviving the wire.

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"github.com/sparse-dl/samo/internal/comm"
	"github.com/sparse-dl/samo/internal/comm/tcp"
)

// mesh is one fabric-per-rank view of a transport: on local all ranks
// share one fabric; on tcp-loopback each rank is its own single-rank
// process endpoint with its own fabric, so poison and faults must cross
// the wire to reach the others.
type mesh struct {
	name  string
	fabs  []*comm.Fabric // indexed by rank (local: same pointer repeated)
	ranks []*comm.Rank
}

func (m *mesh) closeAll() {
	for _, f := range m.fabs {
		f.Close() // idempotent; local repeats are fine
	}
}

func newMesh(t testing.TB, transport string, n int) *mesh {
	t.Helper()
	m := &mesh{name: transport}
	switch transport {
	case "local":
		f := comm.NewFabric(n)
		for r := 0; r < n; r++ {
			m.fabs = append(m.fabs, f)
			m.ranks = append(m.ranks, f.Rank(r))
		}
	case "tcp":
		trs, err := tcp.Loopback(n)
		if err != nil {
			t.Fatalf("tcp loopback: %v", err)
		}
		for r, tr := range trs {
			f := comm.NewFabricOver(tr)
			m.fabs = append(m.fabs, f)
			m.ranks = append(m.ranks, f.Rank(r))
		}
	default:
		t.Fatalf("unknown transport %q", transport)
	}
	return m
}

// forEachTransport runs fn against a fresh n-rank mesh of each transport.
func forEachTransport(t *testing.T, n int, fn func(t *testing.T, m *mesh)) {
	for _, transport := range []string{"local", "tcp"} {
		t.Run(fmt.Sprintf("%s/n%d", transport, n), func(t *testing.T) {
			m := newMesh(t, transport, n)
			defer m.closeAll()
			fn(t, m)
		})
	}
}

// runMesh runs fn concurrently on every rank under a watchdog: a fault
// that deadlocks instead of unwinding fails fast, not at the suite
// timeout.
func runMesh(t *testing.T, m *mesh, fn func(rk *comm.Rank) error) []error {
	t.Helper()
	errs := make([]error, len(m.ranks))
	var wg sync.WaitGroup
	for i, rk := range m.ranks {
		wg.Add(1)
		go func(i int, rk *comm.Rank) {
			defer wg.Done()
			errs[i] = fn(rk)
		}(i, rk)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("[%s] mesh deadlocked: ranks did not unwind", m.name)
	}
	return errs
}

func groupAll(n int) []int {
	g := make([]int, n)
	for i := range g {
		g[i] = i
	}
	return g
}

// testInput fills deterministic, bit-diverse per-rank inputs.
func testInput(rank, n int) []float32 {
	buf := make([]float32, n)
	for i := range buf {
		buf[i] = float32(math.Sin(float64(rank*131071+i*257+1)) * 3.25)
	}
	return buf
}

func bitsOf(buf []float32) []uint32 {
	b := make([]uint32, len(buf))
	for i, v := range buf {
		b[i] = math.Float32bits(v)
	}
	return b
}

// collResult is one rank's outputs from the three data-parallel
// collectives under test.
type collResult struct {
	allReduce []uint32
	rsChunk   []uint32
	allGather []uint32
	ordered   []uint32
}

// runCollectives executes AllReduce, ReduceScatter+AllGather, and
// AllReduceOrdered on deterministic inputs and records the result bits.
func runCollectives(t *testing.T, m *mesh, n, sz int) []collResult {
	t.Helper()
	group := groupAll(n)
	out := make([]collResult, n)
	errs := runMesh(t, m, func(rk *comm.Rank) error {
		r := rk.ID()
		ar := testInput(r, sz)
		if err := rk.AllReduce(group, ar); err != nil {
			return err
		}
		out[r].allReduce = bitsOf(ar)

		rs := testInput(r, sz)
		chunk, err := rk.ReduceScatter(group, rs)
		if err != nil {
			return err
		}
		out[r].rsChunk = bitsOf(chunk)
		full, err := rk.AllGather(group, chunk, sz)
		if err != nil {
			return err
		}
		out[r].allGather = bitsOf(full)

		ord := testInput(r, sz)
		if err := rk.AllReduceOrdered(group, ord); err != nil {
			return err
		}
		out[r].ordered = bitsOf(ord)
		return nil
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("[%s] rank %d: %v", m.name, r, err)
		}
	}
	return out
}

// TestConformanceCollectivesBitwise pins AllReduce, ReduceScatter,
// AllGather and AllReduceOrdered results bitwise-identical across the two
// transports at worker counts 1, 4 and 8 — float32 framing on the wire
// must be bit-preserving, and the collective schedules must not depend on
// the transport underneath.
func TestConformanceCollectivesBitwise(t *testing.T) {
	for _, n := range []int{1, 4, 8} {
		for _, sz := range []int{1, 5, 1024, 4099} {
			t.Run(fmt.Sprintf("n%d/sz%d", n, sz), func(t *testing.T) {
				mLocal := newMesh(t, "local", n)
				defer mLocal.closeAll()
				want := runCollectives(t, mLocal, n, sz)

				mTCP := newMesh(t, "tcp", n)
				defer mTCP.closeAll()
				got := runCollectives(t, mTCP, n, sz)

				for r := 0; r < n; r++ {
					check := func(kind string, w, g []uint32) {
						if len(w) != len(g) {
							t.Fatalf("rank %d %s: length %d vs %d", r, kind, len(w), len(g))
						}
						for i := range w {
							if w[i] != g[i] {
								t.Fatalf("rank %d %s[%d]: local bits %08x, tcp bits %08x",
									r, kind, i, w[i], g[i])
							}
						}
					}
					check("allreduce", want[r].allReduce, got[r].allReduce)
					check("reducescatter", want[r].rsChunk, got[r].rsChunk)
					check("allgather", want[r].allGather, got[r].allGather)
					check("ordered", want[r].ordered, got[r].ordered)
				}
			})
		}
	}
}

// TestConformanceOrderedReduceMatchesSerial pins AllReduceOrdered to the
// serial rank-order sum exactly, on both transports: bitwise
// reproducibility of the ordered reduction is a cross-transport contract,
// not a local-transport accident.
func TestConformanceOrderedReduceMatchesSerial(t *testing.T) {
	const n, sz = 4, 513
	want := make([]float32, sz)
	for r := 0; r < n; r++ {
		in := testInput(r, sz)
		for i := range want {
			if r == 0 {
				want[i] = in[i]
			} else {
				want[i] += in[i]
			}
		}
	}
	forEachTransport(t, n, func(t *testing.T, m *mesh) {
		group := groupAll(n)
		got := make([][]float32, n)
		errs := runMesh(t, m, func(rk *comm.Rank) error {
			buf := testInput(rk.ID(), sz)
			if err := rk.AllReduceOrdered(group, buf); err != nil {
				return err
			}
			got[rk.ID()] = buf
			return nil
		})
		for r, err := range errs {
			if err != nil {
				t.Fatalf("rank %d: %v", r, err)
			}
		}
		for r := 0; r < n; r++ {
			for i := range want {
				if math.Float32bits(got[r][i]) != math.Float32bits(want[i]) {
					t.Fatalf("rank %d elem %d: got bits %08x, want %08x",
						r, i, math.Float32bits(got[r][i]), math.Float32bits(want[i]))
				}
			}
		}
	})
}

// TestConformanceConcurrentAsyncCollectives pins the async lane on both
// transports: each rank launches a whole schedule of reduces — several
// in-flight at once, on DISTINCT groups (evens and odds run disjoint
// collectives concurrently), mixing the ring and rank-ordered algorithms —
// then drains and runs one synchronous global reduce. Results must be
// bitwise-identical to issuing the same schedule synchronously on the local
// transport: async vs sync and local vs tcp may not change a single bit.
func TestConformanceConcurrentAsyncCollectives(t *testing.T) {
	const n = 4
	szs := []int{3, 257, 1024, 33, 512, 65}
	half := func(parity int) []int {
		var g []int
		for r := parity; r < n; r += 2 {
			g = append(g, r)
		}
		return g
	}

	// runSchedule executes the per-rank schedule and returns, for each rank,
	// the result bits of every op (the K group reduces + the final global).
	runSchedule := func(m *mesh, async bool) [][][]uint32 {
		t.Helper()
		out := make([][][]uint32, n)
		errs := runMesh(t, m, func(rk *comm.Rank) error {
			r := rk.ID()
			group := half(r % 2)
			bufs := make([][]float32, len(szs))
			for i, sz := range szs {
				bufs[i] = testInput(r*17+i, sz)
			}
			if async {
				defer rk.CloseAsync()
				handles := make([]*comm.ReduceHandle, len(bufs))
				for i, buf := range bufs {
					if i%2 == 0 {
						handles[i] = rk.AllReduceAsync(group, buf)
					} else {
						handles[i] = rk.AllReduceOrderedAsync(group, buf)
					}
				}
				for _, h := range handles {
					if err := h.Wait(); err != nil {
						return err
					}
				}
			} else {
				for i, buf := range bufs {
					var err error
					if i%2 == 0 {
						err = rk.AllReduce(group, buf)
					} else {
						err = rk.AllReduceOrdered(group, buf)
					}
					if err != nil {
						return err
					}
				}
			}
			// Drained: a synchronous global collective must now be safe —
			// the engine's consensus-after-overlap pattern.
			global := testInput(r+100, 64)
			if err := rk.AllReduceOrdered(groupAll(n), global); err != nil {
				return err
			}
			res := make([][]uint32, 0, len(bufs)+1)
			for _, buf := range bufs {
				res = append(res, bitsOf(buf))
			}
			res = append(res, bitsOf(global))
			out[r] = res
			return nil
		})
		for r, err := range errs {
			if err != nil {
				t.Fatalf("[%s async=%v] rank %d: %v", m.name, async, r, err)
			}
		}
		return out
	}

	mRef := newMesh(t, "local", n)
	defer mRef.closeAll()
	want := runSchedule(mRef, false)

	for _, transport := range []string{"local", "tcp"} {
		t.Run(transport, func(t *testing.T) {
			m := newMesh(t, transport, n)
			defer m.closeAll()
			got := runSchedule(m, true)
			for r := 0; r < n; r++ {
				for op := range want[r] {
					if len(got[r][op]) != len(want[r][op]) {
						t.Fatalf("rank %d op %d: length %d vs %d", r, op, len(got[r][op]), len(want[r][op]))
					}
					for i := range want[r][op] {
						if got[r][op][i] != want[r][op][i] {
							t.Fatalf("rank %d op %d elem %d: async/%s bits %08x, sync/local bits %08x",
								r, op, i, transport, got[r][op][i], want[r][op][i])
						}
					}
				}
			}
		})
	}
}

// TestConformanceAsyncPoisonUnwinds pins async fault behaviour: a poisoned
// fabric must unwind queued and in-flight async reduces with the same typed
// error the synchronous path returns, on both transports, with Wait and
// CloseAsync both terminating.
func TestConformanceAsyncPoisonUnwinds(t *testing.T) {
	forEachTransport(t, 4, func(t *testing.T, m *mesh) {
		group := groupAll(4)
		go func() {
			time.Sleep(20 * time.Millisecond)
			m.fabs[1].Poison(&comm.RankFailedError{Rank: 1, Step: 9})
		}()
		errs := runMesh(t, m, func(rk *comm.Rank) error {
			defer rk.CloseAsync()
			buf := testInput(rk.ID(), 256)
			for {
				h := rk.AllReduceAsync(group, buf)
				if err := h.Wait(); err != nil {
					return err
				}
			}
		})
		for r, err := range errs {
			var rf *comm.RankFailedError
			if !errors.As(err, &rf) {
				t.Fatalf("rank %d: got %v, want RankFailedError", r, err)
			}
			if rf.Rank != 1 || rf.Step != 9 {
				t.Fatalf("rank %d: got RankFailedError{%d,%d}, want {1,9}", r, rf.Rank, rf.Step)
			}
		}
	})
}

// TestConformanceSendRecvOrder pins the p2p contract on both transports:
// per-sender FIFO delivery with payload bits, shape, tag, microbatch and
// sequence numbers intact.
func TestConformanceSendRecvOrder(t *testing.T) {
	const msgs = 100
	forEachTransport(t, 2, func(t *testing.T, m *mesh) {
		errs := runMesh(t, m, func(rk *comm.Rank) error {
			if rk.ID() == 0 {
				for i := 0; i < msgs; i++ {
					data := testInput(i, 7+i%5)
					if err := rk.Send(1, comm.TagActivation, i, data, 1, len(data)); err != nil {
						return err
					}
				}
				return nil
			}
			lastSeq := 0
			for i := 0; i < msgs; i++ {
				msg, err := rk.Recv()
				if err != nil {
					return err
				}
				if msg.From != 0 || msg.Tag != comm.TagActivation || msg.MB != i {
					return fmt.Errorf("msg %d: got from=%d tag=%d mb=%d", i, msg.From, msg.Tag, msg.MB)
				}
				if msg.Seq <= lastSeq {
					return fmt.Errorf("msg %d: seq %d not increasing past %d", i, msg.Seq, lastSeq)
				}
				lastSeq = msg.Seq
				want := testInput(i, 7+i%5)
				if len(msg.Shape) != 2 || msg.Shape[0] != 1 || msg.Shape[1] != len(want) {
					return fmt.Errorf("msg %d: shape %v", i, msg.Shape)
				}
				if len(msg.Data) != len(want) {
					return fmt.Errorf("msg %d: %d elements, want %d", i, len(msg.Data), len(want))
				}
				for j := range want {
					if math.Float32bits(msg.Data[j]) != math.Float32bits(want[j]) {
						return fmt.Errorf("msg %d elem %d: bits differ", i, j)
					}
				}
			}
			return nil
		})
		for r, err := range errs {
			if err != nil {
				t.Fatalf("rank %d: %v", r, err)
			}
		}
	})
}

// TestConformancePoisonUnwindsTyped poisons one rank's fabric mid-stream
// and requires every rank on every fabric to unwind promptly with the
// same typed RankFailedError — on tcp that means the type crosses the
// wire via poison frames, fields intact.
func TestConformancePoisonUnwindsTyped(t *testing.T) {
	forEachTransport(t, 4, func(t *testing.T, m *mesh) {
		group := groupAll(4)
		go func() {
			time.Sleep(20 * time.Millisecond)
			m.fabs[1].Poison(&comm.RankFailedError{Rank: 1, Step: 7})
		}()
		errs := runMesh(t, m, func(rk *comm.Rank) error {
			buf := testInput(rk.ID(), 256)
			for {
				if err := rk.AllReduce(group, buf); err != nil {
					return err
				}
			}
		})
		for r, err := range errs {
			var rf *comm.RankFailedError
			if !errors.As(err, &rf) {
				t.Fatalf("rank %d: got %v, want RankFailedError", r, err)
			}
			if rf.Rank != 1 || rf.Step != 7 {
				t.Fatalf("rank %d: got RankFailedError{Rank:%d, Step:%d}, want {1, 7}", r, rf.Rank, rf.Step)
			}
		}
	})
}

// TestConformanceCrashAtOpTyped arms a deterministic mid-collective crash
// on one rank's fabric and requires every rank to unwind with a
// RankFailedError attributing that rank, identically on both transports.
func TestConformanceCrashAtOpTyped(t *testing.T) {
	forEachTransport(t, 4, func(t *testing.T, m *mesh) {
		m.fabs[2].InjectFaults(&comm.FaultPlan{CrashAtOp: map[int]int{2: 5}})
		group := groupAll(4)
		errs := runMesh(t, m, func(rk *comm.Rank) error {
			buf := testInput(rk.ID(), 128)
			for i := 0; i < 50; i++ {
				if err := rk.AllReduce(group, buf); err != nil {
					return err
				}
			}
			return nil
		})
		for r, err := range errs {
			var rf *comm.RankFailedError
			if !errors.As(err, &rf) {
				t.Fatalf("rank %d: got %v, want RankFailedError", r, err)
			}
			if rf.Rank != 2 {
				t.Fatalf("rank %d: crash attributed to rank %d, want 2", r, rf.Rank)
			}
		}
	})
}

// TestConformanceDeadlineTyped pins the backstop detector on both
// transports: a rank blocked on a peer that never answers gives up after
// the configured deadline with a typed DeadlineError.
func TestConformanceDeadlineTyped(t *testing.T) {
	forEachTransport(t, 2, func(t *testing.T, m *mesh) {
		m.fabs[0].SetDeadline(150 * time.Millisecond)
		errs := runMesh(t, m, func(rk *comm.Rank) error {
			if rk.ID() != 0 {
				return nil // rank 1 never enters the collective
			}
			buf := testInput(0, 64)
			return rk.AllReduce(groupAll(2), buf)
		})
		var de *comm.DeadlineError
		if !errors.As(errs[0], &de) {
			t.Fatalf("rank 0: got %v, want DeadlineError", errs[0])
		}
		if de.Rank != 0 {
			t.Fatalf("deadline attributed to rank %d, want 0", de.Rank)
		}
	})
}

// TestConformanceCloseUnwinds pins teardown on both transports: Close
// unwinds blocked ranks with ErrFabricClosed, and closing a fabric that
// already failed never masks the original typed error.
func TestConformanceCloseUnwinds(t *testing.T) {
	forEachTransport(t, 2, func(t *testing.T, m *mesh) {
		go func() {
			time.Sleep(20 * time.Millisecond)
			m.closeAll()
		}()
		errs := runMesh(t, m, func(rk *comm.Rank) error {
			_, err := rk.Recv() // no deadline: only Close can release this
			return err
		})
		for r, err := range errs {
			if !errors.Is(err, comm.ErrFabricClosed) {
				t.Fatalf("rank %d: got %v, want ErrFabricClosed", r, err)
			}
		}
	})
	forEachTransport(t, 2, func(t *testing.T, m *mesh) {
		first := &comm.RankFailedError{Rank: 0, Step: 3}
		m.fabs[0].Poison(first)
		m.closeAll()
		var rf *comm.RankFailedError
		if err := m.fabs[0].Err(); !errors.As(err, &rf) || rf.Rank != 0 || rf.Step != 3 {
			t.Fatalf("Close masked the original failure: %v", err)
		}
	})
}
