// Package comm is the communication fabric standing in for NCCL/MPI on
// Summit: one goroutine per rank, a pluggable Transport as the links. It
// provides the two communication patterns the paper optimizes —
//
//   - asynchronous point-to-point messaging with a per-rank inbox (AxoNN's
//     message-driven scheduling reads whatever activation/gradient arrives
//     next, §II-E), used by inter-layer parallelism;
//   - ring-based collectives (all-reduce, reduce-scatter, all-gather,
//     broadcast, barrier) used by data parallelism.
//
// The default transport is the in-process channel mesh (LocalTransport);
// internal/comm/tcp supplies a multi-process wire transport with identical
// semantics (see transport.go). Every rank records the bytes it moved, so
// experiments can attribute communication volume exactly.
package comm

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// bufPool recycles collective chunk buffers. Buffers are handed from
// sender to receiver zero-copy; the receiver returns them here after
// folding the payload in, so steady-state collectives allocate nothing.
// The pool is shared across the ranks of ONE Fabric (buffers migrate
// between that fabric's goroutines by design) but scoped to the Fabric,
// not the process: experiment sweeps create many fabrics with many
// distinct buffer sizes, and a process-wide pool retained every one of
// them forever. A fabric's pool dies with the fabric.
//
// Buffers live in power-of-two capacity classes and are reused for any
// request the capacity covers (getBuf reslices), so nearly-equal sizes —
// ring chunk boundaries differ by one element across ranks — share
// buffers instead of each pinning their own. Total retained capacity is
// bounded; Put drops buffers beyond the bound and lets the GC take them.
type bufPool struct {
	mu       sync.Mutex
	byClass  [bufClasses][][]float32
	retained int64 // total float32 capacity currently pooled
}

const (
	// bufClasses covers every representable capacity (class = ceil-log2,
	// at most 63 for an int length); class i holds buffers with cap in
	// (2^(i-1), 2^i].
	bufClasses = 64
	// maxPoolFloats bounds a fabric pool's retained capacity (4 MiB of
	// float32s). A G-rank ring collective keeps at most a few chunks in
	// flight per rank, so steady state sits far below the bound; the bound
	// only bites when a sweep pushes many distinct large sizes through one
	// fabric. An EMPTY class may retain one buffer past the bound — a
	// chunk bigger than the whole budget must still round-trip through
	// the pool, or every ring step of a large model would allocate.
	maxPoolFloats = 1 << 20
)

// bufClass returns the class index whose buffers can hold n floats:
// ceil(log2(n)).
func bufClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

func (p *bufPool) get(n int) []float32 {
	if n == 0 {
		return nil
	}
	c := bufClass(n)
	p.mu.Lock()
	if list := p.byClass[c]; len(list) > 0 {
		b := list[len(list)-1]
		p.byClass[c] = list[:len(list)-1]
		p.retained -= int64(cap(b))
		p.mu.Unlock()
		return b[:n]
	}
	p.mu.Unlock()
	// Allocate the full class capacity so the buffer is reusable for every
	// size in its class.
	b := make([]float32, 1<<c)
	return b[:n]
}

func (p *bufPool) put(b []float32) {
	if cap(b) == 0 {
		return
	}
	c := bufClass(cap(b))
	if 1<<c != cap(b) {
		return // not class-aligned (foreign buffer): don't pool it
	}
	p.mu.Lock()
	if len(p.byClass[c]) > 0 && p.retained+int64(cap(b)) > maxPoolFloats {
		p.mu.Unlock() // over budget and class already served: drop for GC
		return
	}
	p.retained += int64(cap(b))
	p.byClass[c] = append(p.byClass[c], b)
	p.mu.Unlock()
}

// PooledBytes returns the bytes currently retained by the fabric's
// collective buffer pool (bounded by design; see bufPool).
func (f *Fabric) PooledBytes() int64 {
	f.bufs.mu.Lock()
	defer f.bufs.mu.Unlock()
	return f.bufs.retained * 4
}

// Tag classifies data-plane messages so the engine can dispatch them.
type Tag int

// Data-plane message tags used by the training engine.
const (
	TagActivation Tag = iota // forward activations, stage i -> i+1
	TagGradient              // backward gradients, stage i+1 -> i
	TagControl               // engine control messages
)

// Message is one point-to-point payload. MB identifies the microbatch it
// belongs to; Seq is a sender-assigned sequence number; Shape optionally
// carries the tensor geometry so the receiver can reconstruct it.
type Message struct {
	From  int
	Tag   Tag
	MB    int
	Data  []float32
	Shape []int
	Seq   int
}

// Stats counts a rank's traffic (bytes assume 4-byte elements unless the
// caller scales; the engine accounts fp16 payloads at 2 bytes itself).
type Stats struct {
	P2PMessages  atomic.Int64
	P2PElements  atomic.Int64
	CollOps      atomic.Int64
	CollElements atomic.Int64
	// ExposedCollNanos is wall time the rank's goroutine spent BLOCKED in
	// collectives: the full duration of synchronous calls plus only the
	// waiting tail of async ones (launch-to-completion time hidden behind
	// compute is, by definition, not exposed). The overlap win is this
	// counter shrinking while CollElements stays constant.
	ExposedCollNanos atomic.Int64
}

// Fabric connects n ranks. Create once, then hand each goroutine its Rank.
// A fabric carries a fault model (see fault.go): it can be poisoned — by an
// injected FaultPlan, the collective deadline detector, or an engine calling
// Poison/Fail — after which every blocking primitive returns the poison
// error instead of waiting on dead peers.
type Fabric struct {
	n      int
	tr     Transport
	remote bool // any rank not local to this process
	stats  []Stats
	bufs   bufPool

	// Poison state: one-way, first error wins (fault.go).
	poisonOnce sync.Once
	poisoned   atomic.Bool
	poisonErr  error
	poisonCh   chan struct{}

	// Backstop detector: blocking receives give up after this long (0=off).
	deadlineNs atomic.Int64

	// Armed fault plan (nil-equivalent when faulty is false).
	faulty      bool
	crashAtStep []int // per rank, -1 = never
	crashAtOp   []int
	dropEvery   int
	delayEvery  int
	faultSeed   uint64
	p2pSeen     atomic.Int64
	delayMu     sync.Mutex
	delayed     []*Message // per destination, at most one held-back message
}

// NewFabric creates an in-process fabric with n ranks and generous channel
// buffering (sends are asynchronous until the buffer fills, mirroring
// NCCL's eager protocol for small messages).
func NewFabric(n int) *Fabric {
	return NewFabricOver(NewLocalTransport(n))
}

// NewFabricOver creates a fabric on an explicit transport (the channel mesh
// via NewLocalTransport, or a wire transport such as tcp.Connect). The
// fabric takes ownership: Fabric.Close tears the transport down.
func NewFabricOver(tr Transport) *Fabric {
	n := tr.Size()
	if n < 1 {
		panic("comm: fabric needs at least one rank")
	}
	f := &Fabric{n: n,
		tr:       tr,
		stats:    make([]Stats, n),
		poisonCh: make(chan struct{}),
	}
	for r := 0; r < n; r++ {
		if !tr.IsLocal(r) {
			f.remote = true
			break
		}
	}
	tr.Attach(f)
	return f
}

// Size returns the number of ranks.
func (f *Fabric) Size() int { return f.n }

// Rank returns the handle for rank r, which must be local to this process's
// transport. Each handle must be used by a single goroutine.
func (f *Fabric) Rank(r int) *Rank {
	if r < 0 || r >= f.n {
		panic(fmt.Sprintf("comm: rank %d out of [0,%d)", r, f.n))
	}
	if !f.tr.IsLocal(r) {
		panic(fmt.Sprintf("comm: rank %d is not local to this process's transport", r))
	}
	return &Rank{f: f, r: r, step: -1, pending: make(map[pendKey]*pendQueue)}
}

// Stats returns the traffic counters for rank r.
func (f *Fabric) Stats(r int) *Stats { return &f.stats[r] }

// TotalP2PElements sums point-to-point elements over all ranks.
func (f *Fabric) TotalP2PElements() int64 {
	var s int64
	for i := range f.stats {
		s += f.stats[i].P2PElements.Load()
	}
	return s
}

// TotalCollElements sums collective elements over all ranks.
func (f *Fabric) TotalCollElements() int64 {
	var s int64
	for i := range f.stats {
		s += f.stats[i].CollElements.Load()
	}
	return s
}

// TotalExposedCollNanos sums exposed (blocking) collective wall time over
// all ranks. See Stats.ExposedCollNanos for the exposure semantics.
func (f *Fabric) TotalExposedCollNanos() int64 {
	var s int64
	for i := range f.stats {
		s += f.stats[i].ExposedCollNanos.Load()
	}
	return s
}

type pendKey struct {
	from, tag int
}

// pendQueue is a FIFO of out-of-order collective messages. It reuses its
// backing array (head index instead of re-slicing) so transient reordering
// does not allocate in steady state, and compacts the live tail to the
// front once the dead prefix dominates, so a queue that never fully drains
// (steady push/pop interleave) cannot grow its backing array without
// bound.
type pendQueue struct {
	items []CollFrame
	head  int
}

// pendCompactMin is the dead-prefix length below which pop skips
// compaction: tiny queues reset for free when they drain, and compacting
// every pop would turn the O(1) head-index pop back into O(n) shifting.
const pendCompactMin = 32

func (q *pendQueue) push(m CollFrame) { q.items = append(q.items, m) }

func (q *pendQueue) pop() (CollFrame, bool) {
	if q.head >= len(q.items) {
		return CollFrame{}, false
	}
	m := q.items[q.head]
	q.items[q.head] = CollFrame{}
	q.head++
	switch {
	case q.head == len(q.items):
		q.items = q.items[:0]
		q.head = 0
	case q.head >= pendCompactMin && q.head*2 >= len(q.items):
		// Dead prefix is at least half the array and worth reclaiming:
		// move the live tail down. Amortized O(1) — a compaction of k
		// moves is paid for by the >=k pops that created the prefix.
		n := copy(q.items, q.items[q.head:])
		clear(q.items[n:])
		q.items = q.items[:n]
		q.head = 0
	}
	return m, true
}

// Rank is one participant's endpoint. Not safe for concurrent use by
// multiple goroutines (each simulated GPU is one goroutine, as on the real
// machine each GPU has one process).
type Rank struct {
	f       *Fabric
	r       int
	pending map[pendKey]*pendQueue
	seq     int
	step    int       // current engine step (BeginStep), for failure attribution
	ops     int       // collective entries so far, for CrashAtOp fault points
	scratch []float32 // reusable single-element buffer (barriers, flags)
	bounds  []int     // reusable chunk-boundary scratch for ring collectives

	// Async collective lane (async.go). The worker goroutine executes
	// queued operations serially, reusing this Rank's matching state —
	// safe because the owner never runs a collective while handles are
	// outstanding (the engine drains before any synchronous call).
	asyncCh     chan asyncOp
	asyncDone   chan struct{}
	freeHandles []*ReduceHandle // owner-side handle pool (zero-alloc steady state)
}

// chunkBounds fills the rank's reusable boundary scratch (ring collectives
// run once per gradient buffer per batch; allocating here would defeat the
// engine's zero-alloc steady state).
func (rk *Rank) chunkBounds(n, g int) []int {
	if cap(rk.bounds) < g+1 {
		rk.bounds = make([]int, g+1)
	}
	rk.bounds = rk.bounds[:g+1]
	fillChunkBounds(rk.bounds, n, g)
	return rk.bounds
}

// ID returns this rank's index.
func (rk *Rank) ID() int { return rk.r }

// Size returns the fabric size.
func (rk *Rank) Size() int { return rk.f.n }

// Send delivers a data-plane message asynchronously. The data slice is
// handed over; the sender must not modify it afterwards (zero-copy, like a
// GPU handing a buffer to the NIC). shape, if given, describes the tensor
// geometry of data. On a poisoned fabric Send returns the poison error;
// under an armed fault plan the message may be deterministically dropped or
// held back (delivered after the destination's next message).
func (rk *Rank) Send(to int, tag Tag, mb int, data []float32, shape ...int) error {
	if err := rk.f.Err(); err != nil {
		return err
	}
	rk.seq++
	rk.f.stats[rk.r].P2PMessages.Add(1)
	rk.f.stats[rk.r].P2PElements.Add(int64(len(data)))
	msg := Message{From: rk.r, Tag: tag, MB: mb, Data: data, Shape: shape, Seq: rk.seq}
	if rk.f.faulty {
		n := uint64(rk.f.p2pSeen.Add(1)) + rk.f.faultSeed
		if d := rk.f.dropEvery; d > 0 && n%uint64(d) == 0 {
			return nil // lost on the wire; the deadline detector is the remedy
		}
		if d := rk.f.delayEvery; d > 0 && n%uint64(d) == 0 {
			rk.f.delayMu.Lock()
			held := rk.f.delayed[to]
			rk.f.delayed[to] = &msg
			rk.f.delayMu.Unlock()
			if held == nil {
				return nil
			}
			msg = *held // two holds collide: the older one goes out now
		}
	}
	if err := rk.deliver(to, msg); err != nil {
		return err
	}
	if rk.f.delayed != nil {
		rk.f.delayMu.Lock()
		held := rk.f.delayed[to]
		rk.f.delayed[to] = nil
		rk.f.delayMu.Unlock()
		if held != nil {
			return rk.deliver(to, *held)
		}
	}
	return nil
}

func (rk *Rank) deliver(to int, msg Message) error {
	return rk.f.tr.SendData(to, msg)
}

// Inbox returns the data-plane receive channel: the heart of message-driven
// scheduling. The engine blocks on it and processes whatever arrives.
// Prefer Recv, which also unwinds on fabric poison and deadline.
func (rk *Rank) Inbox() <-chan Message { return rk.f.tr.DataCh(rk.r) }

// Recv blocks for the next data-plane message. It returns the poison error
// as soon as the fabric dies (messages already queued are not drained), and
// trips the deadline detector when one is configured.
func (rk *Rank) Recv() (Message, error) {
	if err := rk.f.Err(); err != nil {
		return Message{}, err
	}
	var timeout <-chan time.Time
	d := rk.f.deadline()
	if d > 0 {
		timer := time.NewTimer(d)
		defer timer.Stop()
		timeout = timer.C
	}
	select {
	case m := <-rk.f.tr.DataCh(rk.r):
		return m, nil
	case <-rk.f.poisonCh:
		return Message{}, rk.f.Err()
	case <-timeout:
		err := &DeadlineError{Rank: rk.r, Step: rk.step, Timeout: d}
		rk.f.Poison(err)
		return Message{}, err
	}
}

// --- Collectives -----------------------------------------------------------
//
// All collective calls must be made by every rank of the group, with equal
// buffer lengths, in the same order. Internally they use a control-plane
// channel with (from, tag) matching so concurrent groups cannot interfere.

func (rk *Rank) sendColl(to, tag int, data []float32) error {
	return rk.f.tr.SendColl(to, CollFrame{From: rk.r, Tag: tag, Data: data})
}

func (rk *Rank) recvColl(from, tag int) ([]float32, error) {
	k := pendKey{from, tag}
	if q := rk.pending[k]; q != nil {
		if m, ok := q.pop(); ok {
			return m.Data, nil
		}
	}
	var timeout <-chan time.Time
	d := rk.f.deadline()
	if d > 0 {
		timer := time.NewTimer(d)
		defer timer.Stop()
		timeout = timer.C
	}
	for {
		if err := rk.f.Err(); err != nil {
			return nil, err
		}
		select {
		case m := <-rk.f.tr.CollCh(rk.r):
			if m.From == from && m.Tag == tag {
				return m.Data, nil
			}
			mk := pendKey{m.From, m.Tag}
			q := rk.pending[mk]
			if q == nil {
				q = &pendQueue{}
				rk.pending[mk] = q
			}
			q.push(m)
		case <-rk.f.poisonCh:
			return nil, rk.f.Err()
		case <-timeout:
			err := &DeadlineError{Rank: rk.r, Step: rk.step, Timeout: d}
			rk.f.Poison(err)
			return nil, err
		}
	}
}

// groupPos returns this rank's index within group, panicking if absent.
func (rk *Rank) groupPos(group []int) int {
	for i, g := range group {
		if g == rk.r {
			return i
		}
	}
	panic(fmt.Sprintf("comm: rank %d not in group %v", rk.r, group))
}

// Collective opcode bases for tag construction.
const (
	opAllReduce = 1 << 20
	opGather    = 2 << 20
	opBcast     = 3 << 20
	opBarrier   = 4 << 20
	opRS        = 5 << 20
	opAG        = 6 << 20
)

// AllReduce sums buf across the group in place using the bandwidth-optimal
// ring algorithm (reduce-scatter then all-gather), the same structure NCCL
// uses for large messages — each rank sends 2·(G−1)/G of the buffer. On a
// poisoned fabric (or when a fault fires) it unwinds with the typed error;
// buf's contents are then unspecified and the caller must not step on them.
func (rk *Rank) AllReduce(group []int, buf []float32) error {
	start := time.Now()
	err := rk.allReduce(group, buf)
	rk.f.stats[rk.r].ExposedCollNanos.Add(time.Since(start).Nanoseconds())
	return err
}

// allReduce is AllReduce without the exposed-time accounting, shared with
// the async lane (async hidden time must not count as exposed).
func (rk *Rank) allReduce(group []int, buf []float32) error {
	if err := rk.enterColl(); err != nil {
		return err
	}
	g := len(group)
	if g == 1 {
		return nil
	}
	pos := rk.groupPos(group)
	next := group[(pos+1)%g]
	prev := group[(pos-1+g)%g]
	bounds := rk.chunkBounds(len(buf), g)
	rk.f.stats[rk.r].CollOps.Add(1)

	// Reduce-scatter: after step s, each rank has accumulated chunk
	// (pos-s) from s+1 ranks; after G-1 steps rank p owns the full sum of
	// chunk (p+1) mod G.
	for s := 0; s < g-1; s++ {
		sendChunk := (pos - s + g) % g
		recvChunk := (pos - s - 1 + g) % g
		lo, hi := bounds[sendChunk], bounds[sendChunk+1]
		out := rk.f.bufs.get(hi - lo)
		copy(out, buf[lo:hi])
		if err := rk.sendColl(next, opAllReduce+s, out); err != nil {
			return err
		}
		in, err := rk.recvColl(prev, opAllReduce+s)
		if err != nil {
			return err
		}
		lo, hi = bounds[recvChunk], bounds[recvChunk+1]
		rk.f.stats[rk.r].CollElements.Add(int64(hi - lo))
		for i := range in {
			buf[lo+i] += in[i]
		}
		rk.f.bufs.put(in)
	}
	// All-gather: circulate the finished chunks.
	for s := 0; s < g-1; s++ {
		sendChunk := (pos + 1 - s + g) % g
		recvChunk := (pos - s + g) % g
		lo, hi := bounds[sendChunk], bounds[sendChunk+1]
		out := rk.f.bufs.get(hi - lo)
		copy(out, buf[lo:hi])
		if err := rk.sendColl(next, opAllReduce+1000+s, out); err != nil {
			return err
		}
		in, err := rk.recvColl(prev, opAllReduce+1000+s)
		if err != nil {
			return err
		}
		lo, hi = bounds[recvChunk], bounds[recvChunk+1]
		rk.f.stats[rk.r].CollElements.Add(int64(hi - lo))
		copy(buf[lo:hi], in)
		rk.f.bufs.put(in)
	}
	return nil
}

// AllReduceOrdered sums buf across the group with a rank-ordered
// gather-to-root reduction: the floating-point additions happen in group
// order, exactly matching a serial loop over ranks. Used where bitwise
// reproducibility against a serial reference matters more than bandwidth.
func (rk *Rank) AllReduceOrdered(group []int, buf []float32) error {
	start := time.Now()
	err := rk.allReduceOrdered(group, buf)
	rk.f.stats[rk.r].ExposedCollNanos.Add(time.Since(start).Nanoseconds())
	return err
}

// allReduceOrdered is AllReduceOrdered without the exposed-time accounting,
// shared with the async lane.
func (rk *Rank) allReduceOrdered(group []int, buf []float32) error {
	if err := rk.enterColl(); err != nil {
		return err
	}
	g := len(group)
	if g == 1 {
		return nil
	}
	pos := rk.groupPos(group)
	root := group[0]
	rk.f.stats[rk.r].CollOps.Add(1)
	if pos == 0 {
		for i := 1; i < g; i++ {
			in, err := rk.recvColl(group[i], opGather+i)
			if err != nil {
				return err
			}
			rk.f.stats[rk.r].CollElements.Add(int64(len(in)))
			for j := range buf {
				buf[j] += in[j]
			}
			rk.f.bufs.put(in)
		}
	} else {
		out := rk.f.bufs.get(len(buf))
		copy(out, buf)
		if err := rk.sendColl(root, opGather+pos, out); err != nil {
			return err
		}
	}
	return rk.broadcast(group, root, buf)
}

// Broadcast copies root's buf to every rank (binomial-tree free: simple
// root-sends-all, adequate in-process).
func (rk *Rank) Broadcast(group []int, root int, buf []float32) error {
	start := time.Now()
	err := rk.enterColl()
	if err == nil {
		err = rk.broadcast(group, root, buf)
	}
	rk.f.stats[rk.r].ExposedCollNanos.Add(time.Since(start).Nanoseconds())
	return err
}

// broadcast is Broadcast without the collective-entry prologue, for reuse
// inside AllReduceOrdered (one logical collective, one fault point).
func (rk *Rank) broadcast(group []int, root int, buf []float32) error {
	pos := rk.groupPos(group)
	rootPos := -1
	for i, g := range group {
		if g == root {
			rootPos = i
			break
		}
	}
	if rootPos < 0 {
		panic("comm: broadcast root not in group")
	}
	if pos == rootPos {
		for i, g := range group {
			if i == rootPos {
				continue
			}
			out := rk.f.bufs.get(len(buf))
			copy(out, buf)
			if err := rk.sendColl(g, opBcast+i, out); err != nil {
				return err
			}
		}
	} else {
		in, err := rk.recvColl(root, opBcast+pos)
		if err != nil {
			return err
		}
		rk.f.stats[rk.r].CollElements.Add(int64(len(in)))
		copy(buf, in)
		rk.f.bufs.put(in)
	}
	return nil
}

// ReduceScatter sums buf across the group and leaves each rank with its
// owned chunk in out (chunk boundaries from chunkBounds). buf is clobbered.
func (rk *Rank) ReduceScatter(group []int, buf []float32) ([]float32, error) {
	start := time.Now()
	out, err := rk.reduceScatter(group, buf)
	rk.f.stats[rk.r].ExposedCollNanos.Add(time.Since(start).Nanoseconds())
	return out, err
}

func (rk *Rank) reduceScatter(group []int, buf []float32) ([]float32, error) {
	if err := rk.enterColl(); err != nil {
		return nil, err
	}
	g := len(group)
	pos := rk.groupPos(group)
	bounds := rk.chunkBounds(len(buf), g)
	if g == 1 {
		out := make([]float32, len(buf))
		copy(out, buf)
		return out, nil
	}
	next := group[(pos+1)%g]
	prev := group[(pos-1+g)%g]
	rk.f.stats[rk.r].CollOps.Add(1)
	// Chunk schedule chosen so rank at position p finishes owning chunk p
	// (matching AllGather's convention): send (p−s−1), receive (p−s−2).
	for s := 0; s < g-1; s++ {
		sendChunk := (pos - s - 1 + 2*g) % g
		recvChunk := (pos - s - 2 + 2*g) % g
		lo, hi := bounds[sendChunk], bounds[sendChunk+1]
		out := rk.f.bufs.get(hi - lo)
		copy(out, buf[lo:hi])
		if err := rk.sendColl(next, opRS+s, out); err != nil {
			return nil, err
		}
		in, err := rk.recvColl(prev, opRS+s)
		if err != nil {
			return nil, err
		}
		lo, hi = bounds[recvChunk], bounds[recvChunk+1]
		rk.f.stats[rk.r].CollElements.Add(int64(hi - lo))
		for i := range in {
			buf[lo+i] += in[i]
		}
		rk.f.bufs.put(in)
	}
	own := pos
	lo, hi := bounds[own], bounds[own+1]
	out := make([]float32, hi-lo)
	copy(out, buf[lo:hi])
	return out, nil
}

// AllGather concatenates each rank's chunk into full (length = total);
// chunk sizes must follow chunkBounds(total, G).
func (rk *Rank) AllGather(group []int, chunk []float32, total int) ([]float32, error) {
	start := time.Now()
	full, err := rk.allGather(group, chunk, total)
	rk.f.stats[rk.r].ExposedCollNanos.Add(time.Since(start).Nanoseconds())
	return full, err
}

func (rk *Rank) allGather(group []int, chunk []float32, total int) ([]float32, error) {
	if err := rk.enterColl(); err != nil {
		return nil, err
	}
	g := len(group)
	pos := rk.groupPos(group)
	full := make([]float32, total)
	bounds := rk.chunkBounds(total, g)
	lo := bounds[pos]
	copy(full[lo:lo+len(chunk)], chunk)
	if g == 1 {
		return full, nil
	}
	next := group[(pos+1)%g]
	prev := group[(pos-1+g)%g]
	rk.f.stats[rk.r].CollOps.Add(1)
	cur := pos
	for s := 0; s < g-1; s++ {
		clo, chi := bounds[cur], bounds[cur+1]
		out := rk.f.bufs.get(chi - clo)
		copy(out, full[clo:chi])
		if err := rk.sendColl(next, opAG+s, out); err != nil {
			return nil, err
		}
		in, err := rk.recvColl(prev, opAG+s)
		if err != nil {
			return nil, err
		}
		cur = (cur - 1 + g) % g
		clo, chi = bounds[cur], bounds[cur+1]
		rk.f.stats[rk.r].CollElements.Add(int64(chi - clo))
		copy(full[clo:chi], in)
		rk.f.bufs.put(in)
	}
	return full, nil
}

// Barrier blocks until every rank of the group has entered it (or the
// fabric dies, in which case it unwinds with the poison error).
func (rk *Rank) Barrier(group []int) error {
	if rk.scratch == nil {
		rk.scratch = make([]float32, 1)
	}
	rk.scratch[0] = 1
	return rk.AllReduceOrdered(group, rk.scratch)
}

// chunkBounds splits n elements into g nearly equal contiguous chunks,
// returning g+1 boundaries.
func chunkBounds(n, g int) []int {
	b := make([]int, g+1)
	fillChunkBounds(b, n, g)
	return b
}

func fillChunkBounds(b []int, n, g int) {
	b[0] = 0
	base, rem := n/g, n%g
	for i := 0; i < g; i++ {
		b[i+1] = b[i] + base
		if i < rem {
			b[i+1]++
		}
	}
}
