package comm

import "testing"

// TestPendQueueFIFOCompaction pins the pending-queue fix: a queue that
// never fully drains (steady push/pop interleave, as under persistent
// collective reordering) must keep FIFO order, reuse its backing array,
// and compact its dead prefix so the array stays bounded by the live
// window instead of growing with the total message count.
func TestPendQueueFIFOCompaction(t *testing.T) {
	q := &pendQueue{}
	next, expect := 0, 0
	push := func() { q.push(CollFrame{Tag: next}); next++ }
	pop := func() {
		m, ok := q.pop()
		if !ok {
			t.Fatalf("pop: queue empty, expected tag %d", expect)
		}
		if m.Tag != expect {
			t.Fatalf("pop: got tag %d, want %d (FIFO violated)", m.Tag, expect)
		}
		expect++
	}

	// Build a live window of 8, then run a long interleave that never
	// drains the queue: without compaction the dead prefix (head) grows
	// with every pop and the backing array with every push.
	for i := 0; i < 8; i++ {
		push()
	}
	for i := 0; i < 10000; i++ {
		push()
		pop()
	}
	// Live window is 8 and the compaction threshold is 32: the backing
	// array must stay within one growth step of the largest
	// pre-compaction length (head<=39 + live 8), not anywhere near the
	// 10008 pushes that flowed through.
	if c := cap(q.items); c > 128 {
		t.Fatalf("backing array grew to cap %d under steady interleave (compaction broken)", c)
	}

	// Steady state is allocation-free: the capacity must not change over
	// another long interleave.
	before := cap(q.items)
	for i := 0; i < 10000; i++ {
		push()
		pop()
	}
	if cap(q.items) != before {
		t.Fatalf("steady-state interleave reallocated: cap %d -> %d", before, cap(q.items))
	}

	// Drain to empty: order intact to the last element, then reset.
	for expect < next {
		pop()
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop on drained queue returned a frame")
	}
	if q.head != 0 || len(q.items) != 0 {
		t.Fatalf("drained queue did not reset: head=%d len=%d", q.head, len(q.items))
	}
}
