// Package intra implements Megatron-LM-style intra-layer (tensor) parallelism
// (Shoeybi et al.), the third parallelism dimension of the paper's taxonomy
// (§II-D) and the ingredient that distinguishes the DeepSpeed-3D baseline
// from AxoNN. The simulator models its cost analytically; this package is
// the executable counterpart, so the baseline's math is demonstrated, not
// assumed.
//
// The canonical Megatron block splits an MLP's two matmuls so only one
// all-reduce is needed per direction:
//
//	Y = GeLU(X·A)    A split by COLUMNS  -> each rank holds Y_shard
//	Z = Y·B          B split by ROWS     -> partial sums, ALL-REDUCE -> Z
//
// ColumnParallelLinear and RowParallelLinear compose exactly that way, over
// the same comm fabric the pipeline engine uses.
package intra

import (
	"fmt"

	"github.com/sparse-dl/samo/internal/comm"
	"github.com/sparse-dl/samo/internal/nn"
	"github.com/sparse-dl/samo/internal/tensor"
)

// Group is one tensor-parallel group: a rank handle plus the member list.
type Group struct {
	Rank  *comm.Rank
	Ranks []int
}

// Size returns the tensor-parallel degree.
func (g Group) Size() int { return len(g.Ranks) }

// Pos returns this rank's index within the group.
func (g Group) Pos() int {
	for i, r := range g.Ranks {
		if r == g.Rank.ID() {
			return i
		}
	}
	panic(fmt.Sprintf("intra: rank %d not in group %v", g.Rank.ID(), g.Ranks))
}

// shardCols returns the [lo,hi) column range owned by position pos of g
// splitting n columns.
func shardCols(n, gsize, pos int) (lo, hi int) {
	base, rem := n/gsize, n%gsize
	lo = pos*base + min(pos, rem)
	hi = lo + base
	if pos < rem {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ColumnParallelLinear computes y_shard = x·W[:, lo:hi] + b[lo:hi]: the
// weight is split by output columns, every rank sees the full input and
// produces its shard of the output. No communication in forward; backward
// all-reduces the input gradient (each rank has only its shard's
// contribution).
type ColumnParallelLinear struct {
	W, B   *nn.Param // local shard: (in, cols), (cols)
	g      Group
	in     int
	outAll int
	lo, hi int
}

// NewColumnParallel builds rank-local shards from a full (in, out) weight
// initialization function so all ranks derive consistent shards: init is
// called once for the FULL matrix and sliced (mirroring how Megatron loads
// a common checkpoint).
func NewColumnParallel(name string, g Group, in, out int, rng *tensor.RNG) *ColumnParallelLinear {
	full := tensor.New(in, out)
	tensor.FillXavier(full, in, out, rng)
	lo, hi := shardCols(out, g.Size(), g.Pos())
	w := tensor.New(in, hi-lo)
	for r := 0; r < in; r++ {
		copy(w.Data()[r*(hi-lo):(r+1)*(hi-lo)], full.Data()[r*out+lo:r*out+hi])
	}
	l := &ColumnParallelLinear{
		W: &nn.Param{Name: name + ".weight", Value: w, Grad: tensor.New(in, hi-lo)},
		B: &nn.Param{Name: name + ".bias", Value: tensor.New(hi - lo), Grad: tensor.New(hi - lo)},
		g: g, in: in, outAll: out, lo: lo, hi: hi,
	}
	return l
}

type colCache struct{ x *tensor.Tensor }

// Forward computes the local output shard (n, hi-lo).
func (l *ColumnParallelLinear) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, any) {
	if x.Dim(1) != l.in {
		panic(fmt.Sprintf("intra: ColumnParallel(%d) got %v", l.in, x.Shape()))
	}
	y := tensor.MatMul(x, l.W.Value)
	tensor.AddBias(y, l.B.Value)
	if !train {
		return y, nil
	}
	return y, &colCache{x: x}
}

// Backward accumulates shard gradients and returns the FULL input gradient
// (all-reduced across the group: dX = Σ_shards dY_shard·W_shardᵀ).
func (l *ColumnParallelLinear) Backward(cache any, gradOut *tensor.Tensor) *tensor.Tensor {
	c := cache.(*colCache)
	dW := tensor.TMatMul(c.x, gradOut)
	tensor.Add(l.W.Grad, dW)
	tensor.Add(l.B.Grad, tensor.SumRows(gradOut))
	dx := tensor.MatMulT(gradOut, l.W.Value)
	if err := l.g.Rank.AllReduceOrdered(l.g.Ranks, dx.Data()); err != nil {
		panic(err) // intra groups run on private, fault-free fabrics
	}
	return dx
}

// Params returns the local shard parameters.
func (l *ColumnParallelLinear) Params() []*nn.Param { return []*nn.Param{l.W, l.B} }

// RowParallelLinear computes z = Σ_shards y_shard·W[lo:hi, :] + b: the
// weight is split by input rows, each rank consumes its input shard and the
// partial products are summed with one all-reduce (forward); backward needs
// no communication (the output gradient is already replicated).
type RowParallelLinear struct {
	W, B   *nn.Param // local shard: (rows, out), full (out)
	g      Group
	inAll  int
	out    int
	lo, hi int
}

// NewRowParallel builds rank-local row shards of a full (in, out) weight.
func NewRowParallel(name string, g Group, in, out int, rng *tensor.RNG) *RowParallelLinear {
	full := tensor.New(in, out)
	tensor.FillXavier(full, in, out, rng)
	lo, hi := shardCols(in, g.Size(), g.Pos()) // shard rows
	w := tensor.New(hi-lo, out)
	copy(w.Data(), full.Data()[lo*out:hi*out])
	return &RowParallelLinear{
		W: &nn.Param{Name: name + ".weight", Value: w, Grad: tensor.New(hi-lo, out)},
		B: &nn.Param{Name: name + ".bias", Value: tensor.New(out), Grad: tensor.New(out)},
		g: g, inAll: in, out: out, lo: lo, hi: hi,
	}
}

type rowCache struct{ xShard *tensor.Tensor }

// Forward consumes the rank's input shard (n, hi-lo) and returns the full
// summed output (n, out) after one all-reduce. Bias is added once (by
// construction all ranks add b/G — instead the bias is added post-reduce by
// rank-position 0's share trick; here simply: only position 0 adds it).
func (l *RowParallelLinear) Forward(xShard *tensor.Tensor, train bool) (*tensor.Tensor, any) {
	if xShard.Dim(1) != l.hi-l.lo {
		panic(fmt.Sprintf("intra: RowParallel shard %d got %v", l.hi-l.lo, xShard.Shape()))
	}
	z := tensor.MatMul(xShard, l.W.Value)
	if l.g.Pos() == 0 {
		tensor.AddBias(z, l.B.Value)
	}
	if err := l.g.Rank.AllReduceOrdered(l.g.Ranks, z.Data()); err != nil {
		panic(err) // intra groups run on private, fault-free fabrics
	}
	if !train {
		return z, nil
	}
	return z, &rowCache{xShard: xShard}
}

// Backward returns the input-shard gradient; no communication needed.
func (l *RowParallelLinear) Backward(cache any, gradOut *tensor.Tensor) *tensor.Tensor {
	c := cache.(*rowCache)
	dW := tensor.TMatMul(c.xShard, gradOut)
	tensor.Add(l.W.Grad, dW)
	tensor.Add(l.B.Grad, tensor.SumRows(gradOut))
	return tensor.MatMulT(gradOut, l.W.Value)
}

// Params returns the local shard parameters.
func (l *RowParallelLinear) Params() []*nn.Param { return []*nn.Param{l.W, l.B} }

// MLPBlock is the canonical Megatron tensor-parallel MLP:
// column-parallel expand, GELU, row-parallel contract — one all-reduce per
// direction for the whole block.
type MLPBlock struct {
	Col *ColumnParallelLinear
	Row *RowParallelLinear
}

// NewMLPBlock builds the sharded d→4d→d MLP.
func NewMLPBlock(name string, g Group, d int, rng *tensor.RNG) *MLPBlock {
	return &MLPBlock{
		Col: NewColumnParallel(name+".fc1", g, d, 4*d, rng),
		Row: NewRowParallel(name+".fc2", g, 4*d, d, rng),
	}
}

type mlpCache struct {
	cCol, cRow any
	pre        *tensor.Tensor
}

// Forward runs the sharded MLP, returning the replicated output.
func (b *MLPBlock) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, any) {
	h, cCol := b.Col.Forward(x, train)
	pre := tensor.GELU(h)
	z, cRow := b.Row.Forward(h, train)
	if !train {
		return z, nil
	}
	return z, &mlpCache{cCol: cCol, cRow: cRow, pre: pre}
}

// Backward reverses the block (row → GELU' → column, with the column
// layer's input-grad all-reduce).
func (b *MLPBlock) Backward(cache any, gradOut *tensor.Tensor) *tensor.Tensor {
	c := cache.(*mlpCache)
	g := b.Row.Backward(c.cRow, gradOut)
	tensor.GELUBackward(g, c.pre)
	return b.Col.Backward(c.cCol, g)
}

// Params returns both shards' parameters.
func (b *MLPBlock) Params() []*nn.Param {
	return append(b.Col.Params(), b.Row.Params()...)
}
