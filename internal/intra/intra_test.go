package intra

import (
	"sync"
	"testing"

	"github.com/sparse-dl/samo/internal/comm"
	"github.com/sparse-dl/samo/internal/tensor"
)

// runTP runs fn on every rank of a fresh gsize-way tensor-parallel group.
func runTP(gsize int, fn func(g Group)) {
	f := comm.NewFabric(gsize)
	ranks := make([]int, gsize)
	for i := range ranks {
		ranks[i] = i
	}
	var wg sync.WaitGroup
	for r := 0; r < gsize; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			fn(Group{Rank: f.Rank(r), Ranks: ranks})
		}(r)
	}
	wg.Wait()
}

// serialMLP is the unsharded reference: fc1 → GELU → fc2 built from the
// same seeds the parallel shards slice from.
func serialMLP(d int, seed uint64) (*tensor.Tensor, *tensor.Tensor, *tensor.Tensor, *tensor.Tensor) {
	rng := tensor.NewRNG(seed)
	w1 := tensor.New(d, 4*d)
	tensor.FillXavier(w1, d, 4*d, rng)
	rng2 := tensor.NewRNG(seed + 1)
	w2 := tensor.New(4*d, d)
	tensor.FillXavier(w2, 4*d, d, rng2)
	b1 := tensor.New(4 * d)
	b2 := tensor.New(d)
	return w1, b1, w2, b2
}

func serialForward(x, w1, b1, w2, b2 *tensor.Tensor) (*tensor.Tensor, *tensor.Tensor, *tensor.Tensor) {
	h := tensor.MatMul(x, w1)
	tensor.AddBias(h, b1)
	pre := tensor.GELU(h)
	z := tensor.MatMul(h, w2)
	tensor.AddBias(z, b2)
	return z, h, pre
}

func TestShardColsCoverExactly(t *testing.T) {
	for _, tc := range []struct{ n, g int }{{8, 2}, {9, 2}, {16, 4}, {7, 3}} {
		covered := 0
		prev := 0
		for p := 0; p < tc.g; p++ {
			lo, hi := shardCols(tc.n, tc.g, p)
			if lo != prev {
				t.Fatalf("gap in shards of %d over %d", tc.n, tc.g)
			}
			covered += hi - lo
			prev = hi
		}
		if covered != tc.n {
			t.Fatalf("shards cover %d of %d", covered, tc.n)
		}
	}
}

func TestMLPBlockMatchesSerialForward(t *testing.T) {
	const d, n = 8, 5
	x := tensor.New(n, d)
	tensor.FillNormal(x, 1, tensor.NewRNG(42))

	w1, b1, w2, b2 := serialMLP(d, 7)
	want, _, _ := serialForward(x.Clone(), w1, b1, w2, b2)

	for _, gsize := range []int{1, 2, 4} {
		outs := make([]*tensor.Tensor, gsize)
		runTP(gsize, func(g Group) {
			blk := tpBlock(g, d, 7)
			// The row layer consumes the column layer's local shard, so the
			// block wiring handles sharding internally; input is replicated.
			y, _ := blk.Forward(x.Clone(), false)
			outs[g.Pos()] = y
		})
		for p := 0; p < gsize; p++ {
			if d := tensor.MaxAbsDiff(outs[p], want); d > 1e-4 {
				t.Errorf("gsize %d pos %d: output diff %g", gsize, p, d)
			}
		}
	}
}

// tpBlock builds the sharded MLP from the same full-matrix seeds as
// serialMLP.
func tpBlock(g Group, d int, seed uint64) *MLPBlock {
	return &MLPBlock{
		Col: NewColumnParallel("fc1", g, d, 4*d, tensor.NewRNG(seed)),
		Row: NewRowParallel("fc2", g, 4*d, d, tensor.NewRNG(seed+1)),
	}
}

func TestMLPBlockGradientsMatchSerial(t *testing.T) {
	const d, n = 8, 4
	x := tensor.New(n, d)
	tensor.FillNormal(x, 1, tensor.NewRNG(50))
	gy := tensor.New(n, d)
	tensor.FillNormal(gy, 1, tensor.NewRNG(51))

	// Serial reference gradients, computed by hand:
	// z = gelu(x·w1+b1)·w2+b2.
	w1, b1, w2, b2 := serialMLP(d, 9)
	_, h, pre := serialForward(x.Clone(), w1, b1, w2, b2)
	// dZ = gy; dW2 = hᵀ·gy; dH = gy·w2ᵀ ∘ gelu'(pre); dW1 = xᵀ·dH; dX = dH·w1ᵀ.
	dW2 := tensor.TMatMul(h, gy)
	dH := tensor.MatMulT(gy, w2)
	tensor.GELUBackward(dH, pre)
	dW1 := tensor.TMatMul(x, dH)
	dX := tensor.MatMulT(dH, w1)

	const gsize = 2
	dxs := make([]*tensor.Tensor, gsize)
	colGrads := make([]*tensor.Tensor, gsize)
	rowGrads := make([]*tensor.Tensor, gsize)
	runTP(gsize, func(g Group) {
		blk := tpBlock(g, d, 9)
		y, cache := blk.Forward(x.Clone(), true)
		_ = y
		dxs[g.Pos()] = blk.Backward(cache, gy.Clone())
		colGrads[g.Pos()] = blk.Col.W.Grad
		rowGrads[g.Pos()] = blk.Row.W.Grad
	})
	// Input grads are replicated and must match the serial dX.
	for p := 0; p < gsize; p++ {
		if d := tensor.MaxAbsDiff(dxs[p], dX); d > 1e-3 {
			t.Errorf("pos %d: input grad diff %g", p, d)
		}
	}
	// Shard gradients reassemble the full weight gradients.
	fullCol := tensor.New(d, 4*d)
	for p := 0; p < gsize; p++ {
		lo, hi := shardCols(4*d, gsize, p)
		for r := 0; r < d; r++ {
			copy(fullCol.Data()[r*4*d+lo:r*4*d+hi],
				colGrads[p].Data()[r*(hi-lo):(r+1)*(hi-lo)])
		}
	}
	if diff := tensor.MaxAbsDiff(fullCol, dW1); diff > 1e-3 {
		t.Errorf("column weight grad diff %g", diff)
	}
	fullRow := tensor.New(4*d, d)
	for p := 0; p < gsize; p++ {
		lo, hi := shardCols(4*d, gsize, p)
		copy(fullRow.Data()[lo*d:hi*d], rowGrads[p].Data())
	}
	if diff := tensor.MaxAbsDiff(fullRow, dW2); diff > 1e-3 {
		t.Errorf("row weight grad diff %g", diff)
	}
}

func TestTensorParallelTrainingStep(t *testing.T) {
	// A few SGD steps on the sharded block track the serial block exactly:
	// the demonstration that intra-layer parallelism is a pure refactoring
	// of the math (what DeepSpeed-3D's baseline assumes).
	const d, n, gsize = 8, 4, 2
	x := tensor.New(n, d)
	tensor.FillNormal(x, 1, tensor.NewRNG(60))
	gy := tensor.New(n, d)
	tensor.FillNormal(gy, 0.1, tensor.NewRNG(61))
	const lr = 0.1

	// Serial run.
	w1, b1, w2, b2 := serialMLP(d, 11)
	for step := 0; step < 3; step++ {
		_, h, pre := serialForward(x.Clone(), w1, b1, w2, b2)
		dW2 := tensor.TMatMul(h, gy)
		db2 := tensor.SumRows(gy)
		dH := tensor.MatMulT(gy, w2)
		tensor.GELUBackward(dH, pre)
		dW1 := tensor.TMatMul(x, dH)
		db1 := tensor.SumRows(dH)
		tensor.Axpy(w1, dW1, -lr)
		tensor.Axpy(b1, db1, -lr)
		tensor.Axpy(w2, dW2, -lr)
		tensor.Axpy(b2, db2, -lr)
	}
	want, _, _ := serialForward(x.Clone(), w1, b1, w2, b2)

	outs := make([]*tensor.Tensor, gsize)
	runTP(gsize, func(g Group) {
		blk := tpBlock(g, d, 11)
		for step := 0; step < 3; step++ {
			_, cache := blk.Forward(x.Clone(), true)
			blk.Backward(cache, gy.Clone())
			for _, p := range blk.Params() {
				tensor.Axpy(p.Value, p.Grad, -lr)
				p.ZeroGrad()
			}
		}
		y, _ := blk.Forward(x.Clone(), false)
		outs[g.Pos()] = y
	})
	for p := 0; p < gsize; p++ {
		if diff := tensor.MaxAbsDiff(outs[p], want); diff > 1e-3 {
			t.Errorf("pos %d: post-training output diff %g", p, diff)
		}
	}
}
