// Package optim implements the optimizers the paper trains with — SGD with
// momentum for the CNNs, AdamW for the GPT models — plus dynamic loss
// scaling for mixed precision.
//
// Every optimizer operates on flat float32 slices (parameters, gradients,
// states). This is deliberate: SAMO's compressed model states are flat
// per-layer vectors over the unpruned coordinates, and the identical update
// code runs on them — the paper's observation that "the optimizer can be
// directly computed on the compressed state tensors using dense kernels"
// (§III-C) is literally this property.
package optim

import (
	"fmt"
	"math"
)

// Optimizer updates one flat parameter vector from its gradient. Each
// parameter tensor (or compressed state vector) gets its own state slot,
// addressed by key.
type Optimizer interface {
	// Step applies one update to params given grads (same length).
	Step(key string, params, grads []float32)
	// StateBytesPerParam reports the optimizer-state footprint in bytes per
	// parameter (Adam: 8 — two fp32 moments; SGD+momentum: 4).
	StateBytesPerParam() int
	// States returns the state vectors for a key (for SAMO to manage their
	// storage); created lazily on first Step.
	States(key string) [][]float32
	// StepCount returns the per-key update count (Adam's bias-correction
	// clock; 0 for stateless-in-time optimizers like SGD).
	StepCount(key string) int
	// SetStepCount restores the per-key update count (checkpoint resume).
	SetStepCount(key string, t int)
	// CompactState drops a key's state entries at positions where keep is
	// false, compacting each state vector in place (gradual pruning
	// shrinks a compressed parameter vector; its optimizer state must
	// shrink identically, entry for entry). A key with no state yet is a
	// no-op.
	CompactState(key string, keep []bool)
}

// SGD is stochastic gradient descent with classical momentum and optional
// L2 regularization (the paper's CNN recipe).
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
	velocity    map[string][]float32
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay,
		velocity: make(map[string][]float32)}
}

// Step applies v = μv + (g + λθ); θ -= lr·v.
func (s *SGD) Step(key string, params, grads []float32) {
	checkLens(key, params, grads)
	v, ok := s.velocity[key]
	if !ok {
		v = make([]float32, len(params))
		s.velocity[key] = v
	}
	lr := float32(s.LR)
	mu := float32(s.Momentum)
	wd := float32(s.WeightDecay)
	for i := range params {
		g := grads[i] + wd*params[i]
		v[i] = mu*v[i] + g
		params[i] -= lr * v[i]
	}
}

// StateBytesPerParam returns 4 (one fp32 velocity).
func (s *SGD) StateBytesPerParam() int { return 4 }

// States returns the velocity vector.
func (s *SGD) States(key string) [][]float32 {
	if v, ok := s.velocity[key]; ok {
		return [][]float32{v}
	}
	return nil
}

// StepCount returns 0: SGD's update rule is time-invariant.
func (s *SGD) StepCount(string) int { return 0 }

// SetStepCount is a no-op for SGD.
func (s *SGD) SetStepCount(string, int) {}

// CompactState shrinks the velocity vector onto the kept positions.
func (s *SGD) CompactState(key string, keep []bool) {
	if v, ok := s.velocity[key]; ok {
		s.velocity[key] = compactKept(key, v, keep)
	}
}

// Adam is the Adam optimizer (Kingma & Ba) — the paper's memory model
// assumes it: two fp32 states per parameter, the 8φ term in M_default.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	// WeightDecay, when set with Decoupled, gives AdamW (Loshchilov &
	// Hutter), the paper's optimizer for GPT models.
	WeightDecay float64
	Decoupled   bool

	m, v map[string][]float32
	t    map[string]int
}

// NewAdam returns Adam with the usual defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[string][]float32), v: make(map[string][]float32), t: make(map[string]int)}
}

// NewAdamW returns decoupled-weight-decay Adam.
func NewAdamW(lr, weightDecay float64) *Adam {
	a := NewAdam(lr)
	a.WeightDecay = weightDecay
	a.Decoupled = true
	return a
}

// Step applies one bias-corrected Adam/AdamW update.
func (a *Adam) Step(key string, params, grads []float32) {
	checkLens(key, params, grads)
	m, ok := a.m[key]
	if !ok {
		m = make([]float32, len(params))
		v := make([]float32, len(params))
		a.m[key], a.v[key] = m, v
	}
	v := a.v[key]
	a.t[key]++
	t := a.t[key]
	b1, b2 := float32(a.Beta1), float32(a.Beta2)
	c1 := 1 / (1 - float32(math.Pow(a.Beta1, float64(t))))
	c2 := 1 / (1 - float32(math.Pow(a.Beta2, float64(t))))
	lr := float32(a.LR)
	eps := float32(a.Eps)
	wd := float32(a.WeightDecay)
	for i := range params {
		g := grads[i]
		if wd != 0 && !a.Decoupled {
			g += wd * params[i]
		}
		m[i] = b1*m[i] + (1-b1)*g
		v[i] = b2*v[i] + (1-b2)*g*g
		mh := m[i] * c1
		vh := v[i] * c2
		upd := lr * mh / (float32(math.Sqrt(float64(vh))) + eps)
		if wd != 0 && a.Decoupled {
			upd += lr * wd * params[i]
		}
		params[i] -= upd
	}
}

// StateBytesPerParam returns 8 (two fp32 moments) — the paper's os term.
func (a *Adam) StateBytesPerParam() int { return 8 }

// States returns the first and second moment vectors.
func (a *Adam) States(key string) [][]float32 {
	if m, ok := a.m[key]; ok {
		return [][]float32{m, a.v[key]}
	}
	return nil
}

// StepCount returns the bias-correction clock for a key.
func (a *Adam) StepCount(key string) int { return a.t[key] }

// SetStepCount restores the bias-correction clock (checkpoint resume).
func (a *Adam) SetStepCount(key string, t int) { a.t[key] = t }

// CompactState shrinks both moment vectors onto the kept positions.
func (a *Adam) CompactState(key string, keep []bool) {
	if m, ok := a.m[key]; ok {
		a.m[key] = compactKept(key, m, keep)
		a.v[key] = compactKept(key, a.v[key], keep)
	}
}

// compactKept filters v to the kept positions in place and returns the
// shortened slice (the backing array is reused — state shrinkage never
// reallocates).
func compactKept(key string, v []float32, keep []bool) []float32 {
	if len(v) != len(keep) {
		panic(fmt.Sprintf("optim: %s state %d vs keep mask %d", key, len(v), len(keep)))
	}
	w := 0
	for i, k := range keep {
		if k {
			v[w] = v[i]
			w++
		}
	}
	return v[:w]
}

func checkLens(key string, params, grads []float32) {
	if len(params) != len(grads) {
		panic(fmt.Sprintf("optim: %s params %d vs grads %d", key, len(params), len(grads)))
	}
}

// LossScaler implements dynamic loss scaling for mixed precision
// (Micikevicius et al.): the loss is multiplied by Scale before backward so
// small gradients survive fp16; on overflow the step is skipped and the
// scale halved; after GrowthInterval good steps the scale doubles.
type LossScaler struct {
	Scale          float64
	GrowthInterval int
	MaxScale       float64

	goodSteps int
	skipped   int
}

// NewLossScaler returns a scaler with the PyTorch-AMP-like defaults.
func NewLossScaler() *LossScaler {
	return &LossScaler{Scale: 65536, GrowthInterval: 2000, MaxScale: 1 << 24}
}

// Update records whether the step overflowed and adjusts the scale. It
// returns true if the optimizer step should proceed (no overflow).
func (ls *LossScaler) Update(overflowed bool) bool {
	if overflowed {
		ls.Scale = math.Max(1, ls.Scale/2)
		ls.goodSteps = 0
		ls.skipped++
		return false
	}
	ls.goodSteps++
	if ls.goodSteps >= ls.GrowthInterval && ls.Scale < ls.MaxScale {
		ls.Scale *= 2
		ls.goodSteps = 0
	}
	return true
}

// SkippedSteps returns how many steps were dropped due to overflow.
func (ls *LossScaler) SkippedSteps() int { return ls.skipped }

// Snapshot returns the scaler's full mutable state for checkpointing.
func (ls *LossScaler) Snapshot() (scale float64, goodSteps, skipped int) {
	return ls.Scale, ls.goodSteps, ls.skipped
}

// Restore reinstates a snapshot taken with Snapshot.
func (ls *LossScaler) Restore(scale float64, goodSteps, skipped int) {
	ls.Scale, ls.goodSteps, ls.skipped = scale, goodSteps, skipped
}

// ClipGradNorm scales grads so their global L2 norm is at most maxNorm,
// returning the pre-clip norm (the paper's models all train with gradient
// clipping, per Brown et al.'s hyperparameters).
func ClipGradNorm(grads [][]float32, maxNorm float64) float64 {
	var sq float64
	for _, g := range grads {
		for _, x := range g {
			sq += float64(x) * float64(x)
		}
	}
	norm := math.Sqrt(sq)
	if norm > maxNorm && norm > 0 {
		s := float32(maxNorm / norm)
		for _, g := range grads {
			for i := range g {
				g[i] *= s
			}
		}
	}
	return norm
}
