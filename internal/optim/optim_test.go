package optim

import (
	"math"
	"testing"
)

func TestSGDPlainStep(t *testing.T) {
	s := NewSGD(0.1, 0, 0)
	p := []float32{1, 2}
	g := []float32{10, -10}
	s.Step("w", p, g)
	if p[0] != 0 || p[1] != 3 {
		t.Errorf("params = %v, want [0 3]", p)
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	s := NewSGD(1, 0.9, 0)
	p := []float32{0}
	s.Step("w", p, []float32{1}) // v=1, p=-1
	s.Step("w", p, []float32{1}) // v=1.9, p=-2.9
	if math.Abs(float64(p[0]+2.9)) > 1e-6 {
		t.Errorf("p = %v, want -2.9", p[0])
	}
	if s.StateBytesPerParam() != 4 {
		t.Error("SGD state bytes")
	}
	if len(s.States("w")) != 1 {
		t.Error("SGD should expose one state vector")
	}
}

func TestSGDWeightDecay(t *testing.T) {
	s := NewSGD(0.1, 0, 0.5)
	p := []float32{2}
	s.Step("w", p, []float32{0})
	// g_eff = 0 + 0.5*2 = 1; p = 2 - 0.1 = 1.9
	if math.Abs(float64(p[0]-1.9)) > 1e-6 {
		t.Errorf("p = %v", p[0])
	}
}

func TestAdamFirstStepIsLR(t *testing.T) {
	// With bias correction, the first Adam step moves by ≈ lr·sign(g).
	a := NewAdam(0.01)
	p := []float32{0, 0}
	a.Step("w", p, []float32{3, -7})
	for i, want := range []float32{-0.01, 0.01} {
		if math.Abs(float64(p[i]-want)) > 1e-4 {
			t.Errorf("p[%d] = %g, want %g", i, p[i], want)
		}
	}
	if a.StateBytesPerParam() != 8 {
		t.Error("Adam state bytes")
	}
	if len(a.States("w")) != 2 {
		t.Error("Adam should expose two state vectors")
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize f(x) = (x-3)²; Adam must approach 3.
	a := NewAdam(0.1)
	p := []float32{0}
	for i := 0; i < 500; i++ {
		g := []float32{2 * (p[0] - 3)}
		a.Step("w", p, g)
	}
	if math.Abs(float64(p[0]-3)) > 0.05 {
		t.Errorf("converged to %g, want 3", p[0])
	}
}

func TestAdamWDecoupledDecay(t *testing.T) {
	// With zero gradient, AdamW still shrinks weights by lr·wd·θ per step;
	// coupled Adam with zero grad also decays but through the moment
	// estimates. Check the decoupled form exactly on the first step.
	a := NewAdamW(0.1, 0.5)
	p := []float32{2}
	a.Step("w", p, []float32{0})
	// m=v=0 -> adam term 0; decoupled decay: 2 - 0.1*0.5*2 = 1.9
	if math.Abs(float64(p[0]-1.9)) > 1e-5 {
		t.Errorf("p = %g, want 1.9", p[0])
	}
}

func TestPerKeyStateIsolation(t *testing.T) {
	a := NewAdam(0.1)
	p1, p2 := []float32{0}, []float32{0}
	a.Step("a", p1, []float32{1})
	a.Step("b", p2, []float32{1})
	if p1[0] != p2[0] {
		t.Error("independent keys must evolve identically from identical inputs")
	}
	// Stepping "a" again must not touch "b"'s state.
	a.Step("a", p1, []float32{1})
	if p1[0] == p2[0] {
		t.Error("keys appear to share state")
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	NewSGD(0.1, 0, 0).Step("w", []float32{1, 2}, []float32{1})
}

func TestLossScalerHalvesOnOverflow(t *testing.T) {
	ls := NewLossScaler()
	s0 := ls.Scale
	if ls.Update(true) {
		t.Error("overflow step must be skipped")
	}
	if ls.Scale != s0/2 {
		t.Errorf("scale %g, want %g", ls.Scale, s0/2)
	}
	if ls.SkippedSteps() != 1 {
		t.Error("skip not counted")
	}
}

func TestLossScalerGrowsAfterInterval(t *testing.T) {
	ls := NewLossScaler()
	ls.GrowthInterval = 3
	s0 := ls.Scale
	for i := 0; i < 3; i++ {
		if !ls.Update(false) {
			t.Fatal("good step must proceed")
		}
	}
	if ls.Scale != s0*2 {
		t.Errorf("scale %g, want %g", ls.Scale, s0*2)
	}
}

func TestLossScalerOverflowResetsGrowth(t *testing.T) {
	ls := NewLossScaler()
	ls.GrowthInterval = 2
	s0 := ls.Scale
	ls.Update(false)
	ls.Update(true) // resets the good-step counter and halves
	ls.Update(false)
	if ls.Scale != s0/2 {
		t.Errorf("scale %g, want %g (growth must reset on overflow)", ls.Scale, s0/2)
	}
}

func TestLossScalerFloor(t *testing.T) {
	ls := NewLossScaler()
	for i := 0; i < 100; i++ {
		ls.Update(true)
	}
	if ls.Scale < 1 {
		t.Errorf("scale fell below 1: %g", ls.Scale)
	}
}

func TestClipGradNorm(t *testing.T) {
	g := [][]float32{{3}, {4}}
	norm := ClipGradNorm(g, 1)
	if math.Abs(norm-5) > 1e-6 {
		t.Errorf("pre-clip norm %g", norm)
	}
	var after float64
	for _, s := range g {
		for _, x := range s {
			after += float64(x) * float64(x)
		}
	}
	if math.Abs(math.Sqrt(after)-1) > 1e-5 {
		t.Errorf("post-clip norm %g, want 1", math.Sqrt(after))
	}
	// Below the threshold: untouched.
	g2 := [][]float32{{0.3, 0.4}}
	ClipGradNorm(g2, 1)
	if g2[0][0] != 0.3 || g2[0][1] != 0.4 {
		t.Error("clip must not modify small gradients")
	}
}

func TestOptimizerWorksOnCompressedVectors(t *testing.T) {
	// The SAMO property: running the optimizer on a compressed (shorter)
	// vector must produce the same values as running it on the dense vector
	// and then compressing — because pruned coordinates have zero grad and
	// zero value forever.
	dense := []float32{1, 0, 2, 0, 3}
	gDense := []float32{0.5, 0, -0.5, 0, 1}
	keepIdx := []int{0, 2, 4}
	comp := []float32{1, 2, 3}
	gComp := []float32{0.5, -0.5, 1}

	a1 := NewAdam(0.05)
	a2 := NewAdam(0.05)
	for step := 0; step < 10; step++ {
		a1.Step("w", dense, gDense)
		a2.Step("w", comp, gComp)
	}
	for i, k := range keepIdx {
		if math.Abs(float64(dense[k]-comp[i])) > 1e-6 {
			t.Errorf("coordinate %d: dense %g vs compressed %g", k, dense[k], comp[i])
		}
	}
	// Pruned coordinates stay exactly zero under Adam with zero grads.
	if dense[1] != 0 || dense[3] != 0 {
		t.Errorf("pruned coords moved: %v", dense)
	}
}
