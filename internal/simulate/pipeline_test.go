package simulate

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOneFBOrderStructure(t *testing.T) {
	for _, tc := range []struct{ s, stages, m int }{
		{0, 4, 8}, {3, 4, 8}, {0, 3, 5}, {2, 3, 5}, {0, 8, 2}, {7, 8, 2}, {0, 1, 4},
	} {
		ops := onefbOrder(tc.s, tc.stages, tc.m)
		if len(ops) != 2*tc.m {
			t.Fatalf("stage %d/%d M=%d: %d ops, want %d", tc.s, tc.stages, tc.m, len(ops), 2*tc.m)
		}
		// Forward m must precede backward m; each appears exactly once.
		seenF := map[int]int{}
		seenB := map[int]int{}
		for i, o := range ops {
			if o.kind == opF {
				seenF[o.mb] = i
			} else {
				seenB[o.mb] = i
			}
		}
		for mb := 0; mb < tc.m; mb++ {
			fi, fok := seenF[mb]
			bi, bok := seenB[mb]
			if !fok || !bok {
				t.Fatalf("stage %d: microbatch %d missing ops", tc.s, mb)
			}
			if fi >= bi {
				t.Fatalf("stage %d: F%d after B%d", tc.s, mb, mb)
			}
		}
		// Backwards drain in order (1F1B invariant).
		last := -1
		for _, o := range ops {
			if o.kind == opB {
				if o.mb != last+1 {
					t.Fatalf("stage %d: backwards out of order", tc.s)
				}
				last = o.mb
			}
		}
	}
}

func TestSingleStagePipeline(t *testing.T) {
	r := SimulatePipeline(PipelineSpec{Stages: 1, Microbatches: 5, FwdTime: 1, BwdTime: 2, XferTime: 9}, false)
	if r.Span != 15 {
		t.Errorf("span = %g, want 15 (no transfers on one stage)", r.Span)
	}
	if r.Stages[0].P2P != 0 || r.Stages[0].Bubble != 0 {
		t.Errorf("single stage must have no p2p/bubble: %+v", r.Stages[0])
	}
}

func TestFigure3Schedule(t *testing.T) {
	// The paper's Figure 3: Ginter=3, 5 microbatches, forward 1 unit,
	// backward 2 units, instantaneous transfers. Every GPU's bubble is 6
	// units = (Ginter−1)·(tf+tb), and the makespan is 21.
	r := SimulatePipeline(PipelineSpec{Stages: 3, Microbatches: 5, FwdTime: 1, BwdTime: 2}, true)
	if r.Span != 21 {
		t.Errorf("span = %g, want 21", r.Span)
	}
	for s, sb := range r.Stages {
		if math.Abs(sb.Bubble-6) > 1e-9 {
			t.Errorf("stage %d bubble = %g, want 6", s, sb.Bubble)
		}
		if math.Abs(sb.Compute-15) > 1e-9 {
			t.Errorf("stage %d compute = %g, want 15", s, sb.Compute)
		}
		if sb.P2P != 0 {
			t.Errorf("stage %d p2p = %g, want 0 with zero transfer time", s, sb.P2P)
		}
	}
	if len(r.Trace) != 2*3*5 {
		t.Errorf("trace has %d ops, want 30", len(r.Trace))
	}
}

func TestBubbleMatchesAnalyticZeroXfer(t *testing.T) {
	// With free transfers and M ≥ S, the simulated bubble equals eq. 7:
	// (S−1)·(f+b) per stage, i.e. (tf+tb)(1−1/Ginter) in whole-model terms.
	for _, s := range []int{2, 3, 4, 8} {
		for _, m := range []int{8, 16, 32} {
			if m < s {
				continue
			}
			f, b := 0.4, 0.8
			r := SimulatePipeline(PipelineSpec{Stages: s, Microbatches: m, FwdTime: f, BwdTime: b}, false)
			want := AnalyticBubble(float64(s)*f, float64(s)*b, s)
			for st := 0; st < s; st++ {
				if math.Abs(r.Stages[st].Bubble-want) > 1e-6 {
					t.Errorf("S=%d M=%d stage %d: bubble %g, want %g", s, m, st, r.Stages[st].Bubble, want)
				}
			}
		}
	}
}

func TestBubbleMonotoneInStages(t *testing.T) {
	// Eq. 8: ∂tbubble/∂Ginter > 0 — more stages, more bubble (fixed
	// whole-model compute per microbatch).
	tfModel, tbModel := 1.0, 2.0
	prev := -1.0
	for _, s := range []int{2, 4, 8, 16} {
		r := SimulatePipeline(PipelineSpec{
			Stages: s, Microbatches: 32,
			FwdTime: tfModel / float64(s), BwdTime: tbModel / float64(s),
		}, false)
		if r.Stages[0].Bubble <= prev {
			t.Errorf("bubble not increasing at S=%d: %g <= %g", s, r.Stages[0].Bubble, prev)
		}
		prev = r.Stages[0].Bubble
	}
}

func TestTransferTimeShowsUpAsP2P(t *testing.T) {
	none := SimulatePipeline(PipelineSpec{Stages: 4, Microbatches: 8, FwdTime: 1, BwdTime: 2}, false)
	wire := SimulatePipeline(PipelineSpec{Stages: 4, Microbatches: 8, FwdTime: 1, BwdTime: 2, XferTime: 0.5}, false)
	if wire.Span <= none.Span {
		t.Error("transfers must lengthen the batch")
	}
	for st := 0; st < 4; st++ {
		if wire.Stages[st].P2P <= 0 {
			t.Errorf("stage %d shows no p2p time", st)
		}
		// Compute time itself is unchanged.
		if wire.Stages[st].Compute != none.Stages[st].Compute {
			t.Errorf("stage %d compute changed with transfers", st)
		}
	}
	// Middle stages send in both directions; they bear at least the edge
	// stages' send load.
	if wire.Stages[1].P2P < wire.Stages[0].P2P-1e-9 {
		t.Error("middle stage should carry at least edge-stage p2p")
	}
}

func TestPipelineConservationProperty(t *testing.T) {
	// For any configuration: per-stage compute+p2p+bubble + lead-in time
	// equals the span; compute is exactly M·(f+b).
	f := func(s8, m8 uint8, fq, bq uint8) bool {
		s := int(s8%6) + 1
		m := int(m8%10) + 1
		fd := 0.1 + float64(fq%20)/10
		bd := 0.1 + float64(bq%20)/10
		xfer := 0.05
		r := SimulatePipeline(PipelineSpec{Stages: s, Microbatches: m, FwdTime: fd, BwdTime: bd, XferTime: xfer}, false)
		for st := 0; st < s; st++ {
			sb := r.Stages[st]
			if math.Abs(sb.Compute-float64(m)*(fd+bd)) > 1e-6 {
				return false
			}
			// Busy + idle can't exceed the span.
			if sb.Compute+sb.P2P+sb.Bubble > r.Span+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAnalyticSendCount(t *testing.T) {
	// Eq. 9: 4·B/(mbs·Gdata).
	if got := AnalyticSendCount(512, 1, 64); got != 32 {
		t.Errorf("send count %d, want 32", got)
	}
	// Eq. 11: decreasing Gdata (increasing Ginter at fixed G) increases it.
	if AnalyticSendCount(512, 1, 32) <= AnalyticSendCount(512, 1, 64) {
		t.Error("send count must grow as Gdata shrinks")
	}
}

func TestDeterminism(t *testing.T) {
	spec := PipelineSpec{Stages: 5, Microbatches: 7, FwdTime: 0.3, BwdTime: 0.7, XferTime: 0.1}
	a := SimulatePipeline(spec, false)
	b := SimulatePipeline(spec, false)
	if a.Span != b.Span {
		t.Error("simulation must be deterministic")
	}
	for i := range a.Stages {
		if a.Stages[i] != b.Stages[i] {
			t.Error("per-stage breakdown must be deterministic")
		}
	}
}
