package simulate

import (
	"github.com/sparse-dl/samo/internal/nn"
)

// JobKind distinguishes the two workload families of Table I.
type JobKind int

// Workload families.
const (
	KindTransformer JobKind = iota
	KindCNN
)

// Job is one Table I workload prepared for simulation.
type Job struct {
	Kind      JobKind
	Name      string
	Phi       int64 // parameters before pruning
	Batch     int   // fixed global batch size (strong scaling)
	NumLayers int   // partitionable layers (bounds Ginter)

	// Transformer geometry (message and activation sizing).
	Seq, Hidden, Heads int

	// FlopsPerBatch is the total forward+backward(+recompute) flops of one
	// global batch.
	FlopsPerBatch float64
	// FwdFraction is the share of FlopsPerBatch in the forward pass (0.25
	// under activation recomputation: fwd, re-fwd, 2×fwd for bwd).
	FwdFraction float64
	// Efficiency overrides the machine's training efficiency when > 0.
	// CNNs run far below GEMM efficiency on V100s (BatchNorm, small spatial
	// dims); calibrated per model so WideResnet spends ≈1.5× VGG's compute
	// time as §VI-B reports.
	Efficiency float64
	// SampleMsgBytes is the pipeline boundary payload per sample (fp16).
	SampleMsgBytes int64
	// MinGPUs/MaxGPUs are the Table I strong-scaling endpoints.
	MinGPUs, MaxGPUs int
}

// TransformerJob prepares a GPT config for simulation.
func TransformerJob(cfg nn.GPTConfig) Job {
	return Job{
		Kind:           KindTransformer,
		Name:           cfg.Name,
		Phi:            cfg.NumParams(),
		Batch:          cfg.BatchSize,
		NumLayers:      cfg.Layers,
		Seq:            cfg.Seq,
		Hidden:         cfg.Hidden,
		Heads:          cfg.Heads,
		FlopsPerBatch:  cfg.FlopsPerBatch(cfg.BatchSize),
		FwdFraction:    0.25,
		SampleMsgBytes: int64(2 * cfg.Seq * cfg.Hidden),
		MinGPUs:        cfg.MinGPUs,
		MaxGPUs:        cfg.MaxGPUs,
	}
}

// CNNJob prepares a CNN config for simulation. effOverride calibrates the
// model's achieved fraction of fp16 peak.
func CNNJob(cfg nn.CNNConfig, effOverride float64) Job {
	return Job{
		Kind:          KindCNN,
		Name:          cfg.Name,
		Phi:           cfg.Params,
		Batch:         cfg.BatchSize,
		NumLayers:     100,
		FlopsPerBatch: cfg.FlopsPerBatch(cfg.BatchSize),
		FwdFraction:   1.0 / 3.0,
		Efficiency:    effOverride,
		// 224×224 mid-network feature map in fp16 (pipeline unused for
		// CNNs at these scales, but the planner needs a value).
		SampleMsgBytes: 56 * 56 * 256 * 2,
		MinGPUs:        cfg.MinGPUs,
		MaxGPUs:        cfg.MaxGPUs,
	}
}

// StandardJobs returns the full Table I workload list with the calibrated
// CNN efficiencies (VGG's large uniform convolutions run closer to peak
// than WideResnet's BatchNorm-heavy blocks; ratio tuned so WideResnet's
// compute time is ≈1.5× VGG's, as §VI-B observes).
func StandardJobs() []Job {
	return []Job{
		CNNJob(nn.WideResnet101, 0.012),
		CNNJob(nn.VGG19, 0.030),
		TransformerJob(nn.GPT3XL),
		TransformerJob(nn.GPT3_2B7),
		TransformerJob(nn.GPT3_6B7),
		TransformerJob(nn.GPT3_13B),
	}
}
