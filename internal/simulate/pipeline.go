// Package simulate is the deterministic discrete-event performance simulator
// standing in for the Summit runs of §V–VI. It executes AxoNN's pipelined
// 1F1B schedule (the steady-state shape of AxoNN's message-driven scheduling)
// over virtual GPUs, attributes every idle interval to either message
// transmission or pipeline bubble, adds the data-parallel collective and the
// SAMO overheads, and reports the same batch-time breakdown the paper's
// Figure 8 plots.
package simulate

import "fmt"

// PipelineSpec parameterizes one inter-layer-parallel pipeline.
//
// Transfers OCCUPY the sending GPU for XferTime (the paper's Figure 8
// measures point-to-point communication as a non-overlapping phase via CUDA
// events: on Summit the MPI p2p path keeps the GPU's stream busy for the
// duration of the send, it does not disappear behind compute). The receiver
// additionally stalls if the message has not arrived when it needs it.
type PipelineSpec struct {
	Stages       int     // Ginter
	Microbatches int     // microbatches per batch per pipeline
	FwdTime      float64 // forward compute per microbatch per stage (s)
	BwdTime      float64 // backward compute per microbatch per stage (s)
	XferTime     float64 // activation/gradient transfer between stages (s)
}

// StageBreakdown attributes one stage's wall-clock time.
type StageBreakdown struct {
	Compute float64 // executing forward/backward kernels
	P2P     float64 // stalled on in-flight message transmission
	Bubble  float64 // idle with no message in flight (pipeline bubble)
}

// PipelineResult is the outcome of simulating one batch through the pipeline.
type PipelineResult struct {
	Span   float64 // makespan: first op start to last op end
	Stages []StageBreakdown
	// Trace holds op start/end times when tracing was requested.
	Trace []TraceOp
}

// TraceOp records one executed operation for schedule visualization (Fig. 3).
type TraceOp struct {
	Stage      int
	Microbatch int
	Backward   bool
	Start, End float64
}

type opKind int

const (
	opF opKind = iota
	opB
)

type op struct {
	kind opKind
	mb   int
}

// onefbOrder builds stage s's operation order under the 1F1B schedule:
// min(S−1−s, M) warmup forwards, then strict forward/backward alternation,
// then drain. This is the schedule AxoNN's message-driven scheduling
// converges to in steady state (Narayanan et al.'s analysis, which the
// paper's bubble formula eq. 7 assumes).
func onefbOrder(s, stages, m int) []op {
	w := stages - 1 - s
	if w > m {
		w = m
	}
	var ops []op
	for i := 0; i < w; i++ {
		ops = append(ops, op{opF, i})
	}
	for i := 0; i < m; i++ {
		if w+i < m {
			ops = append(ops, op{opF, w + i})
		}
		ops = append(ops, op{opB, i})
	}
	return ops
}

// SimulatePipeline runs the event-driven simulation. trace=true additionally
// records every op for visualization.
func SimulatePipeline(spec PipelineSpec, trace bool) PipelineResult {
	s, m := spec.Stages, spec.Microbatches
	if s < 1 || m < 1 {
		panic(fmt.Sprintf("simulate: bad pipeline %d stages, %d microbatches", s, m))
	}
	orders := make([][]op, s)
	for st := 0; st < s; st++ {
		orders[st] = onefbOrder(st, s, m)
	}
	ptr := make([]int, s)
	free := make([]float64, s)
	fDone := make([][]float64, s) // forward completion times
	bDone := make([][]float64, s)
	for st := 0; st < s; st++ {
		fDone[st] = make([]float64, m)
		bDone[st] = make([]float64, m)
		for i := 0; i < m; i++ {
			fDone[st][i] = -1
			bDone[st][i] = -1
		}
	}
	res := PipelineResult{Stages: make([]StageBreakdown, s)}
	remaining := 0
	for st := 0; st < s; st++ {
		remaining += len(orders[st])
	}

	// ready returns (arrivalTime, wireTime, ok): when the op's input message
	// is fully received, how much of the wait window is wire time, and
	// whether the producer has executed. fDone/bDone already include the
	// producer's blocking send, so arrival is simply the recorded time.
	ready := func(st int, o op) (float64, float64, bool) {
		switch o.kind {
		case opF:
			if st == 0 {
				return 0, 0, true // input batch resident from t=0
			}
			p := fDone[st-1][o.mb]
			if p < 0 {
				return 0, 0, false
			}
			return p, spec.XferTime, true
		default:
			if st == s-1 {
				p := fDone[st][o.mb] // loss computed locally, no transfer
				if p < 0 {
					return 0, 0, false
				}
				return p, 0, true
			}
			p := bDone[st+1][o.mb]
			if p < 0 {
				return 0, 0, false
			}
			return p, spec.XferTime, true
		}
	}

	for remaining > 0 {
		// Pick the executable op with the earliest start time.
		best := -1
		var bestStart, bestWire float64
		for st := 0; st < s; st++ {
			if ptr[st] >= len(orders[st]) {
				continue
			}
			r, wire, ok := ready(st, orders[st][ptr[st]])
			if !ok {
				continue
			}
			start := free[st]
			if r > start {
				start = r
			}
			if best == -1 || start < bestStart || (start == bestStart && st < best) {
				best, bestStart, bestWire = st, start, wire
			}
		}
		if best == -1 {
			panic("simulate: pipeline deadlock (schedule inconsistent with dependencies)")
		}
		st := best
		o := orders[st][ptr[st]]
		ptr[st]++
		remaining--

		// Attribute the idle gap before this op: up to one wire time of the
		// wait is P2P stall (the message was in flight); any remainder —
		// waiting for the producer itself to run — is pipeline bubble
		// (§IV-B's definition: not enough microbatches to stay busy).
		if gap := bestStart - free[st]; gap > 0 {
			p2p := bestWire
			if p2p > gap {
				p2p = gap
			}
			res.Stages[st].P2P += p2p
			res.Stages[st].Bubble += gap - p2p
		}
		dur := spec.FwdTime
		if o.kind == opB {
			dur = spec.BwdTime
		}
		end := bestStart + dur
		res.Stages[st].Compute += dur
		if trace {
			res.Trace = append(res.Trace, TraceOp{
				Stage: st, Microbatch: o.mb, Backward: o.kind == opB,
				Start: bestStart, End: end,
			})
		}
		// Blocking send to the downstream consumer (forward to st+1,
		// backward to st−1): the GPU's stream is busy for the transfer.
		done := end
		sends := (o.kind == opF && st < s-1) || (o.kind == opB && st > 0)
		if sends {
			done = end + spec.XferTime
			res.Stages[st].P2P += spec.XferTime
		}
		free[st] = done
		if o.kind == opF {
			fDone[st][o.mb] = done
		} else {
			bDone[st][o.mb] = done
		}
		if done > res.Span {
			res.Span = done
		}
	}

	// Trailing idle: stages that finish before the makespan sit in bubble
	// (the end-of-batch bubble of Figure 3).
	for st := 0; st < s; st++ {
		if idle := res.Span - free[st]; idle > 0 {
			res.Stages[st].Bubble += idle
		}
	}
	return res
}

// AnalyticBubble returns eq. 7's closed-form bubble time:
// (tf+tb)·(1 − 1/Ginter), with tf, tb the whole-model per-microbatch times.
func AnalyticBubble(tfModel, tbModel float64, ginter int) float64 {
	return (tfModel + tbModel) * (1 - 1/float64(ginter))
}

// AnalyticSendCount returns eq. 9's per-GPU message count:
// 4·B/(mbs·Gdata) (two sends and two receives per microbatch; counting
// boundary stages costs half, which the proportionality absorbs).
func AnalyticSendCount(batch, mbs, gdata int) int {
	return 4 * batch / (mbs * gdata)
}
