package simulate

import (
	"encoding/json"
	"math"
	"os"
	"testing"

	"github.com/sparse-dl/samo/internal/hw"
	"github.com/sparse-dl/samo/internal/nn"
)

func summit() hw.Machine { return hw.Summit() }

func job27B() Job { return TransformerJob(nn.GPT3_2B7) }

func TestPlannerReproducesPaperGinter(t *testing.T) {
	// The paper's central example (§I, §VI-C): GPT-3 2.7B needs ~80 GB of
	// model state dense but ~20 GB with SAMO, so SAMO deploys one model
	// instance on far fewer GPUs. Dense AxoNN needs Ginter=8 on Summit's
	// 16 GB V100s; SAMO fits in Ginter=2.
	j := job27B()
	dense := planWithOverhead(MethodAxoNN, j, summit(), 128, 0.9)
	samo := planWithOverhead(MethodSAMO, j, summit(), 128, 0.9)
	if !dense.Feasible || !samo.Feasible {
		t.Fatal("2.7B must be feasible on 128 GPUs")
	}
	if dense.Ginter != 8 {
		t.Errorf("dense Ginter = %d, want 8", dense.Ginter)
	}
	if samo.Ginter != 2 {
		t.Errorf("SAMO Ginter = %d, want 2", samo.Ginter)
	}
	if samo.Gdata <= dense.Gdata {
		t.Error("SAMO must free GPUs for data parallelism")
	}
}

func TestPlannerSAMONeverWorseThanDense(t *testing.T) {
	for _, j := range StandardJobs() {
		for g := j.MinGPUs; g <= j.MaxGPUs; g *= 2 {
			d := planWithOverhead(MethodAxoNN, j, summit(), g, 0.9)
			s := planWithOverhead(MethodSAMO, j, summit(), g, 0.9)
			if !d.Feasible || !s.Feasible {
				t.Fatalf("%s on %d GPUs must be feasible (dense %v samo %v)",
					j.Name, g, d.Feasible, s.Feasible)
			}
			if s.Ginter > d.Ginter {
				t.Errorf("%s G=%d: SAMO Ginter %d > dense %d", j.Name, g, s.Ginter, d.Ginter)
			}
		}
	}
}

func TestPlannerRespectsCapacity(t *testing.T) {
	m := summit()
	capacity := int64(float64(m.MemoryBytes)/memOverheadFactor) - frameworkReserve
	for _, j := range StandardJobs() {
		for _, meth := range []Method{MethodAxoNN, MethodSAMO, MethodDeepSpeed3D, MethodSputnik} {
			p := planWithOverhead(meth, j, m, j.MaxGPUs, 0.9)
			if p.Feasible && p.TotalPerGPU > capacity {
				t.Errorf("%s/%s: plan %d bytes exceeds capacity %d", j.Name, meth, p.TotalPerGPU, capacity)
			}
		}
	}
}

func TestInfeasibleWhenTooFewGPUs(t *testing.T) {
	// 13B dense cannot fit on 8 GPUs (needs ≥ 260 GB of state).
	p := planWithOverhead(MethodAxoNN, TransformerJob(nn.GPT3_13B), summit(), 8, 0.9)
	if p.Feasible {
		t.Error("13B dense on 8 GPUs should be infeasible")
	}
	r := Run(MethodAxoNN, TransformerJob(nn.GPT3_13B), summit(), 8, 0.9)
	if r.Feasible {
		t.Error("Run must propagate infeasibility")
	}
}

func TestCNNsRunPureDataParallel(t *testing.T) {
	// §VI-B: the CNNs fit on a single GPU, so all frameworks run them with
	// a full copy per GPU — all communication is the gradient all-reduce.
	for _, j := range StandardJobs()[:2] {
		for _, meth := range []Method{MethodAxoNN, MethodSAMO} {
			r := Run(meth, j, summit(), 64, 0.9)
			if !r.Feasible || r.Plan.Ginter != 1 {
				t.Errorf("%s/%s: Ginter = %d, want 1", j.Name, meth, r.Plan.Ginter)
			}
			if r.P2P != 0 || r.Bubble != 0 {
				t.Errorf("%s/%s: pure DP must have no pipeline phases", j.Name, meth)
			}
		}
	}
}

// figure 5-7 shape: SAMO wins everywhere, and its advantage grows with GPU
// count (the paper's headline observation: communication grows with scale
// and SAMO attacks communication).
func TestStrongScalingShape(t *testing.T) {
	m := summit()
	for _, j := range StandardJobs() {
		prev := -100.0
		for g := j.MinGPUs; g <= j.MaxGPUs; g *= 2 {
			ax := Run(MethodAxoNN, j, m, g, 0.9)
			sa := Run(MethodSAMO, j, m, g, 0.9)
			if !ax.Feasible || !sa.Feasible {
				t.Fatalf("%s infeasible at %d", j.Name, g)
			}
			sp := Speedup(ax, sa)
			if g > j.MinGPUs && sa.BatchTime >= ax.BatchTime {
				t.Errorf("%s G=%d: SAMO (%.3fs) not faster than AxoNN (%.3fs)", j.Name, g, sa.BatchTime, ax.BatchTime)
			}
			if sp < prev-3 { // allow small non-monotonic wiggle
				t.Errorf("%s G=%d: speedup %.1f%% fell from %.1f%%", j.Name, g, sp, prev)
			}
			prev = sp
		}
		// Largest speedup at the largest count, as in Figs. 5–7.
		axMax := Run(MethodAxoNN, j, m, j.MaxGPUs, 0.9)
		saMax := Run(MethodSAMO, j, m, j.MaxGPUs, 0.9)
		if s := Speedup(axMax, saMax); s < 10 {
			t.Errorf("%s at max GPUs: speedup %.1f%%, want >= 10%%", j.Name, s)
		}
	}
}

func TestDeepSpeedCloseToAxoNN(t *testing.T) {
	// §VI-B: AxoNN and DeepSpeed-3D have similar batch times (both dense).
	m := summit()
	for _, j := range StandardJobs() {
		g := j.MaxGPUs / 2
		ax := Run(MethodAxoNN, j, m, g, 0.9)
		ds := Run(MethodDeepSpeed3D, j, m, g, 0.9)
		if !ax.Feasible || !ds.Feasible {
			t.Fatalf("%s infeasible", j.Name)
		}
		ratio := ds.BatchTime / ax.BatchTime
		if ratio < 0.7 || ratio > 2.2 {
			t.Errorf("%s: DS-3D/AxoNN ratio %.2f outside plausible band", j.Name, ratio)
		}
	}
}

func TestSputnikWorstForTransformers(t *testing.T) {
	// §VI-B: "AxoNN+SAMO ends up being nearly twice as fast as Sputnik
	// across all the GPT-3 style neural networks."
	m := summit()
	for _, j := range StandardJobs()[2:] {
		for g := j.MinGPUs; g <= j.MaxGPUs; g *= 2 {
			sp := Run(MethodSputnik, j, m, g, 0.9)
			sa := Run(MethodSAMO, j, m, g, 0.9)
			if !sp.Feasible || !sa.Feasible {
				continue
			}
			ratio := sp.BatchTime / sa.BatchTime
			if ratio < 1.4 || ratio > 3.5 {
				t.Errorf("%s G=%d: Sputnik/SAMO ratio %.2f, want ≈2", j.Name, g, ratio)
			}
		}
	}
}

func TestCNNSpeedupBands(t *testing.T) {
	// Fig. 5 shapes: VGG-19 gains more than WideResnet-101 at every scale
	// (it spends proportionally more time in the all-reduce), and both land
	// in plausible bands (paper: 7–15% WRN, 18–44% VGG).
	m := summit()
	wrn, vgg := StandardJobs()[0], StandardJobs()[1]
	for g := 16; g <= 128; g *= 2 {
		sw := Speedup(Run(MethodAxoNN, wrn, m, g, 0.9), Run(MethodSAMO, wrn, m, g, 0.9))
		sv := Speedup(Run(MethodAxoNN, vgg, m, g, 0.9), Run(MethodSAMO, vgg, m, g, 0.9))
		if sv <= sw {
			t.Errorf("G=%d: VGG speedup %.1f%% should exceed WRN %.1f%%", g, sv, sw)
		}
		if sw < 2 || sw > 35 {
			t.Errorf("G=%d: WRN speedup %.1f%% outside band", g, sw)
		}
		if sv < 10 || sv > 55 {
			t.Errorf("G=%d: VGG speedup %.1f%% outside band", g, sv)
		}
	}
}

func TestFigure8BreakdownShape(t *testing.T) {
	// §VI-C: at 128 GPUs SAMO's win comes mostly from p2p; at 512 the
	// bubble+collective terms dominate and the p2p delta shrinks. The
	// compression overhead (compute delta) is ~8-12% of AxoNN's batch.
	m := summit()
	j := job27B()
	type deltas struct{ p2p, bubble, coll, overhead float64 }
	get := func(g int) deltas {
		ax := Run(MethodAxoNN, j, m, g, 0.9)
		sa := Run(MethodSAMO, j, m, g, 0.9)
		return deltas{
			p2p:      (ax.P2P - sa.P2P) / ax.BatchTime * 100,
			bubble:   (ax.Bubble - sa.Bubble) / ax.BatchTime * 100,
			coll:     (ax.Collective - sa.Collective) / ax.BatchTime * 100,
			overhead: (sa.Compute - ax.Compute) / ax.BatchTime * 100,
		}
	}
	d128, d512 := get(128), get(512)
	if d128.p2p <= d128.bubble || d128.p2p <= d128.coll {
		t.Errorf("at 128 GPUs p2p must dominate the savings: %+v", d128)
	}
	if d512.bubble+d512.coll <= d512.p2p {
		t.Errorf("at 512 GPUs bubble+collective must dominate: %+v", d512)
	}
	if d128.p2p <= d512.p2p {
		t.Errorf("p2p delta must shrink with scale: %.1f%% -> %.1f%%", d128.p2p, d512.p2p)
	}
	if d128.overhead < 4 || d128.overhead > 16 {
		t.Errorf("compression overhead %.1f%% of batch, want ≈8-12%%", d128.overhead)
	}
	// Net win everywhere: savings exceed overhead.
	if d128.p2p+d128.bubble+d128.coll <= d128.overhead {
		t.Error("savings must exceed overhead at 128 GPUs")
	}
}

func TestTable2UtilizationShape(t *testing.T) {
	// Table II: utilization decreases with scale for every framework;
	// AxoNN+SAMO holds the most; Sputnik by far the least.
	m := summit()
	j := TransformerJob(nn.GPT3_13B)
	prev := map[Method]float64{}
	for _, g := range []int{256, 512, 1024, 2048} {
		util := map[Method]float64{}
		for _, meth := range []Method{MethodSputnik, MethodDeepSpeed3D, MethodAxoNN, MethodSAMO} {
			r := Run(meth, j, m, g, 0.9)
			if !r.Feasible {
				t.Fatalf("%s infeasible at %d", meth, g)
			}
			util[meth] = 100 * r.PeakFraction
			if p, ok := prev[meth]; ok && util[meth] >= p {
				t.Errorf("%s: utilization rose with scale (%0.1f -> %0.1f)", meth, p, util[meth])
			}
		}
		if util[MethodSAMO] <= util[MethodAxoNN] {
			t.Errorf("G=%d: SAMO utilization must lead AxoNN", g)
		}
		if util[MethodSputnik] >= util[MethodAxoNN] {
			t.Errorf("G=%d: Sputnik utilization must trail the dense frameworks", g)
		}
		prev = util
	}
	// SAMO retains a materially higher fraction at 2048 GPUs (paper: 31.0
	// vs 22.9).
	sa := Run(MethodSAMO, j, m, 2048, 0.9)
	ax := Run(MethodAxoNN, j, m, 2048, 0.9)
	if 100*(sa.PeakFraction-ax.PeakFraction) < 4 {
		t.Errorf("SAMO advantage at 2048 GPUs too small: %.1f vs %.1f",
			100*sa.PeakFraction, 100*ax.PeakFraction)
	}
}

func TestSparsitySensitivity(t *testing.T) {
	// Higher sparsity → more memory savings → no worse Ginter and payloads.
	m := summit()
	j := job27B()
	s80 := Run(MethodSAMO, j, m, 256, 0.8)
	s90 := Run(MethodSAMO, j, m, 256, 0.9)
	if s90.Plan.Ginter > s80.Plan.Ginter {
		t.Error("higher sparsity must not need more pipeline stages")
	}
	if s90.BatchTime > s80.BatchTime*1.02 {
		t.Errorf("90%% sparsity (%.3fs) should be at least as fast as 80%% (%.3fs)",
			s90.BatchTime, s80.BatchTime)
	}
}

func TestOverlapReduceModelInvariants(t *testing.T) {
	// The overlap-aware schedule model must (a) never be slower than the
	// serial schedule, (b) never hide more than the backward window allows —
	// at least one bucket's wire time stays exposed, and (c) change nothing
	// but the collective term.
	m := summit()
	for _, j := range StandardJobs() {
		for _, meth := range []Method{MethodAxoNN, MethodSAMO} {
			for g := j.MinGPUs; g <= j.MaxGPUs; g *= 2 {
				serial := Run(meth, j, m, g, 0.9)
				over := RunWithOptions(meth, j, m, g, 0.9, Options{OverlapReduce: true})
				if !serial.Feasible {
					continue
				}
				if over.BatchTime > serial.BatchTime {
					t.Errorf("%s/%s G=%d: overlap %.4fs slower than serial %.4fs",
						j.Name, meth, g, over.BatchTime, serial.BatchTime)
				}
				if over.Collective > serial.Collective {
					t.Errorf("%s/%s G=%d: overlap exposed collective %.4fs exceeds serial %.4fs",
						j.Name, meth, g, over.Collective, serial.Collective)
				}
				if serial.Collective > 0 && over.Collective <= 0 {
					t.Errorf("%s/%s G=%d: overlap cannot hide the entire collective (last bucket launches at backward end)",
						j.Name, meth, g)
				}
				if over.Compute != serial.Compute || over.P2P != serial.P2P ||
					over.Bubble != serial.Bubble || over.Other != serial.Other {
					t.Errorf("%s/%s G=%d: overlap must only change the collective term", j.Name, meth, g)
				}
				if delta := serial.BatchTime - over.BatchTime; math.Abs(delta-(serial.Collective-over.Collective)) > 1e-12 {
					t.Errorf("%s/%s G=%d: batch-time saving %.6g != collective saving %.6g",
						j.Name, meth, g, delta, serial.Collective-over.Collective)
				}
			}
		}
	}
}

func TestOverlapReduceBucketSizeMonotonic(t *testing.T) {
	// Smaller buckets lower the un-hidable floor (tColl/B), so exposure is
	// non-increasing as the bucket bound shrinks; with one giant bucket
	// nothing can pipeline and exposure equals the serial collective.
	m := summit()
	j := job27B()
	serial := Run(MethodSAMO, j, m, 512, 0.9)
	one := RunWithOptions(MethodSAMO, j, m, 512, 0.9, Options{OverlapReduce: true, ReduceBucketElems: 1 << 40})
	if one.Collective != serial.Collective {
		t.Errorf("single-bucket overlap exposed %.4fs, want serial %.4fs", one.Collective, serial.Collective)
	}
	prev := math.Inf(1)
	for _, elems := range []int{1 << 24, 1 << 20, 1 << 16, 1 << 12} {
		r := RunWithOptions(MethodSAMO, j, m, 512, 0.9, Options{OverlapReduce: true, ReduceBucketElems: elems})
		if r.Collective > prev {
			t.Errorf("bucket %d elems: exposure %.4fs rose above %.4fs", elems, r.Collective, prev)
		}
		prev = r.Collective
	}
}

func TestOverlapNoCollectiveNoChange(t *testing.T) {
	// Gdata == 1 has no data-parallel reduce: overlap must be a strict no-op.
	m := summit()
	j := job27B()
	serial := Run(MethodAxoNN, j, m, 8, 0.9)
	if !serial.Feasible || serial.Plan.Gdata != 1 {
		t.Skipf("need a Gdata=1 plan, got Gdata=%d feasible=%v", serial.Plan.Gdata, serial.Feasible)
	}
	over := RunWithOptions(MethodAxoNN, j, m, 8, 0.9, Options{OverlapReduce: true})
	if over.BatchTime != serial.BatchTime || over.Collective != serial.Collective {
		t.Error("overlap with Gdata=1 must be bitwise-identical to serial")
	}
}

func TestOverlapModelAgainstMeasuredBench(t *testing.T) {
	// Validate the cost model against the measured overlap matrix in
	// BENCH_comm.json (written by scripts/bench.sh). The model must agree
	// directionally: it predicts overlap never loses, so a measured step-time
	// speedup catastrophically below parity would falsify the model. The gate
	// is deliberately loose — the CI box is often a single hardware thread,
	// where overlap cannot win and scheduler noise dominates.
	raw, err := os.ReadFile("../../BENCH_comm.json")
	if err != nil {
		t.Skip("BENCH_comm.json not present; run scripts/bench.sh")
	}
	var doc struct {
		CPUs    int                `json:"cpus"`
		Overlap map[string]float64 `json:"overlap_step_speedup"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("BENCH_comm.json: %v", err)
	}
	if len(doc.Overlap) == 0 {
		t.Skip("no overlap_step_speedup matrix; regenerate with scripts/bench.sh")
	}
	m := summit()
	j := job27B()
	serial := Run(MethodSAMO, j, m, 512, 0.9)
	over := RunWithOptions(MethodSAMO, j, m, 512, 0.9, Options{OverlapReduce: true})
	model := serial.BatchTime / over.BatchTime
	if model < 1 {
		t.Fatalf("model predicts overlap slowdown %.3f; contradicts schedule invariant", model)
	}
	for name, sp := range doc.Overlap {
		if sp <= 0 || math.IsNaN(sp) || math.IsInf(sp, 0) {
			t.Errorf("measured overlap speedup %q = %v is not a positive finite ratio", name, sp)
			continue
		}
		floor := 0.85
		if doc.CPUs <= 1 {
			floor = 0.5 // no parallelism: overlap is pure overhead + noise
		}
		if sp < floor {
			t.Errorf("measured overlap speedup %q = %.3f below floor %.2f (model predicts %.3f)",
				name, sp, floor, model)
		}
		t.Logf("overlap %s: measured %.3fx, model (SAMO 2.7B @512) %.3fx", name, sp, model)
	}
}

func TestResultString(t *testing.T) {
	r := Run(MethodSAMO, job27B(), summit(), 128, 0.9)
	if s := r.String(); len(s) == 0 {
		t.Error("empty result string")
	}
	bad := Result{Job: "x", Method: MethodAxoNN, GPUs: 4}
	if s := bad.String(); len(s) == 0 {
		t.Error("infeasible result must still render")
	}
}
