package simulate

import (
	"fmt"

	"github.com/sparse-dl/samo/internal/core"
	"github.com/sparse-dl/samo/internal/hw"
)

// Calibration constants. Each stands in for a measured quantity from the
// paper that cannot be derived from first principles on this substrate; the
// source of every number is documented.
const (
	// memOverheadFactor inflates the analytic model-state bytes to the
	// measured footprint (allocator fragmentation, NCCL buffers, fp32 comm
	// staging). Calibrated to §VI: the paper measures 80.16 GB for dense
	// GPT-3 2.7B whose analytic model-state is 20φ ≈ 54 GB → ≈1.4×.
	memOverheadFactor = 1.35

	// sputnikTrainFactor is Sputnik's end-to-end compute-time multiplier
	// versus dense training at 90% sparsity. Note this is far below the
	// single-layer 6–22× of Figure 1: training-size GEMMs (microbatch ×
	// 2048 tokens wide) amortize Sputnik's metadata traversal far better
	// than Figure 1's batch-576 layer, and the paper's own end-to-end data
	// (§VI-B: "AxoNN+SAMO ends up being nearly twice as fast as Sputnik")
	// pins the realized gap. Calibrated to reproduce Figures 6–7.
	sputnikTrainFactor = 2.4

	// compressBW is the effective HBM throughput of the (unfused) gradient
	// compression kernels, calibrated to §VI-C: compression overhead is
	// 8–12% of AxoNN's batch time. Far below the 900 GB/s streaming peak
	// because the operation is a gather with int32 indirection plus
	// per-layer kernel-launch overhead.
	compressBW = 110e9

	// cnnFixedOverhead is per-iteration framework time for the torchvision
	// CNNs (data loading, Python dispatch, many small kernel launches) that
	// does not shrink with GPU count.
	cnnFixedOverhead = 15e-3

	// p2pStreamBW is the effective per-stream bandwidth of AxoNN's pipeline
	// point-to-point path (PyTorch tensor → MPI send over NICs shared by 6
	// GPUs per node). Far below the 12.5 GB/s link peak: calibrated so the
	// exposed p2p share of AxoNN's batch time at 128 GPUs for GPT-3 2.7B
	// matches Figure 8 (~40% of the iteration).
	p2pStreamBW = 0.8e9

	// collectiveBW is the effective per-GPU bandwidth of the NCCL ring
	// all-reduce when the data-parallel peers are scattered one-per-node
	// (hybrid-parallel GPT runs): six concurrent rings share each node's
	// NIC. Calibrated to Figure 8's collective-phase share at 512 GPUs
	// (SAMO's saving there is 21% of AxoNN's batch time). Pure data
	// parallelism (the CNN runs) keeps whole nodes in one group, so NCCL's
	// hierarchical ring reaches the raw inter-node bandwidth instead.
	collectiveBW = 3e9

	// ds3dEfficiencyBonus reflects Megatron's fused kernels (Table II shows
	// DeepSpeed-3D slightly ahead of AxoNN in pure compute at small scale).
	ds3dEfficiencyBonus = 1.03
)

// Result is the simulated outcome of one (method, job, GPU-count) cell of
// the paper's evaluation.
type Result struct {
	Method Method
	Job    string
	GPUs   int
	Plan   Plan

	BatchTime float64 // seconds per iteration (the y-axis of Figs. 5–7)

	// Non-overlapping phase attribution on stage-0 GPUs (Figure 8):
	Compute    float64 // forward+backward kernels (+ SAMO compression, per §VI-C)
	P2P        float64 // exposed point-to-point transmission stalls
	Bubble     float64 // pipeline bubble
	Collective float64 // data-parallel all-reduce (+ ZeRO/Megatron extras)
	Other      float64 // optimizer step, expansion, bookkeeping

	PeakFraction float64 // fraction of aggregate fp16 peak (Table II)
	Feasible     bool
}

// Options tunes the schedule model beyond the paper's defaults.
type Options struct {
	// OverlapReduce models the engine's bucketed, backward-overlapped
	// data-parallel all-reduce (Config.OverlapReduce): the gradient
	// collective streams behind the final microbatch's backward compute,
	// so only the non-hidden remainder stays on the critical path. The
	// exposed time is max(tColl − tBwd, tColl/B): the last of the B buckets
	// launches only when backward finishes, so at least one bucket's worth
	// of wire time can never be hidden.
	OverlapReduce bool
	// ReduceBucketElems overrides core.DefaultReduceBucketElems for the
	// bucket-count estimate when positive.
	ReduceBucketElems int
}

// Run simulates one training iteration. sparsity applies to MethodSAMO and
// MethodSputnik (the paper prunes to 0.9 everywhere).
func Run(method Method, j Job, m hw.Machine, gpus int, sparsity float64) Result {
	return RunWithOptions(method, j, m, gpus, sparsity, Options{})
}

// RunWithOptions is Run with schedule-model options.
func RunWithOptions(method Method, j Job, m hw.Machine, gpus int, sparsity float64, opts Options) Result {
	r := Result{Method: method, Job: j.Name, GPUs: gpus}
	plan := planWithOverhead(method, j, m, gpus, sparsity)
	if !plan.Feasible {
		return r
	}
	r.Plan = plan
	r.Feasible = true

	eff := m.TrainEfficiency
	if j.Efficiency > 0 {
		eff = j.Efficiency
	}
	if method == MethodDeepSpeed3D {
		eff *= ds3dEfficiencyBonus
	}
	computeFactor := 1.0
	if method == MethodSputnik {
		computeFactor = sputnikTrainFactor
	}

	shards := plan.Ginter * plan.Gintra
	flopsPerMB := j.FlopsPerBatch * float64(plan.MBS) / float64(j.Batch)
	tf := flopsPerMB * j.FwdFraction / float64(shards) / (m.PeakHalfFlops * eff) * computeFactor
	tb := flopsPerMB * (1 - j.FwdFraction) / float64(shards) / (m.PeakHalfFlops * eff) * computeFactor

	if plan.Ginter > 1 {
		msgBytes := int64(plan.MBS) * j.SampleMsgBytes / int64(plan.Gintra)
		xfer := m.InterLatency + float64(msgBytes)/p2pStreamBW
		if shards <= m.GPUsPerNode {
			xfer = m.IntraLatency + float64(msgBytes)/m.IntraBW
		}
		pr := SimulatePipeline(PipelineSpec{
			Stages: plan.Ginter, Microbatches: plan.Micro,
			FwdTime: tf, BwdTime: tb, XferTime: xfer,
		}, false)
		// Report stage 0 (the paper's Figure 8 profiles GPU 0).
		r.Compute = pr.Stages[0].Compute
		r.P2P = pr.Stages[0].P2P
		r.Bubble = pr.Stages[0].Bubble
		r.BatchTime = pr.Span
	} else {
		r.Compute = float64(plan.Micro) * (tf + tb)
		r.BatchTime = r.Compute
	}

	// SAMO's gradient compression: per microbatch, read the layer's dense
	// fp32 gradients and gather the unpruned ones (counted as compute, per
	// §VI-C: "the difference in the compute times is the overhead of
	// compressing the parameter gradients").
	if method == MethodSAMO {
		f := 1 - sparsity
		phiStage := float64(j.Phi) / float64(plan.Ginter)
		bytesPerMB := (4 + 6*f) * phiStage
		tCompress := float64(plan.Micro) * bytesPerMB / compressBW
		r.Compute += tCompress
		r.BatchTime += tCompress
	}

	// Data-parallel gradient all-reduce (fp16 payload). SAMO and Sputnik
	// reduce only unpruned gradients — the §IV-A optimization.
	gradBytes := 2 * j.Phi / int64(shards)
	if method == MethodSAMO || method == MethodSputnik {
		gradBytes = int64(2 * (1 - sparsity) * float64(j.Phi) / float64(plan.Ginter))
	}
	spanNodes := gpus > m.GPUsPerNode
	hierarchical := shards == 1 // pure DP: whole nodes in one group
	tColl := allReduce(m, gradBytes, plan.Gdata, spanNodes, hierarchical)

	if opts.OverlapReduce && tColl > 0 {
		// Only the gradient reduce overlaps (the engine launches it from
		// the backward hook); DeepSpeed-3D's extra collectives below stay
		// serial. The hidable window is the final microbatch's backward.
		bucketElems := opts.ReduceBucketElems
		if bucketElems <= 0 {
			bucketElems = core.DefaultReduceBucketElems
		}
		bucketBytes := int64(2 * bucketElems) // fp16 payload
		buckets := (gradBytes + bucketBytes - 1) / bucketBytes
		if buckets < 1 {
			buckets = 1
		}
		exposed := tColl - tb
		if floor := tColl / float64(buckets); exposed < floor {
			exposed = floor
		}
		tColl = exposed
	}

	if method == MethodDeepSpeed3D {
		// ZeRO-1: all-gather updated fp16 parameters across the data group.
		tColl += allReduce(m, 2*j.Phi/int64(shards), plan.Gdata, spanNodes, hierarchical) / 2
		if plan.Gintra > 1 && j.Kind == KindTransformer {
			// Megatron intra-layer all-reduces: 4 per layer per microbatch
			// (2 forward + 2 backward) of activation-sized payloads over
			// the NVLink-connected Gintra group.
			actBytes := int64(2 * plan.MBS * j.Seq * j.Hidden)
			layers := (j.NumLayers + plan.Ginter - 1) / plan.Ginter
			per := m.AllReduceTime(actBytes, plan.Gintra)
			tColl += float64(4*layers*plan.Micro) * per
		}
	}

	r.Collective = tColl
	r.BatchTime += tColl

	if j.Kind == KindCNN {
		r.Other += cnnFixedOverhead
		r.BatchTime += cnnFixedOverhead
	}

	// Optimizer step (+ SAMO expansion): streaming over the per-GPU states.
	r.Other = m.MemBoundTime(3 * float64(plan.StateBytesPerGPU) / memOverheadFactor)
	if method == MethodSAMO {
		r.Other += m.MemBoundTime(float64(2*j.Phi) / float64(plan.Ginter)) // expand into θ16
	}
	r.BatchTime += r.Other

	r.PeakFraction = j.FlopsPerBatch / (r.BatchTime * float64(gpus) * m.PeakHalfFlops)
	return r
}

// allReduce models the NCCL ring at the calibrated effective bandwidth,
// forcing the inter-node path when the data-parallel peers live on
// different nodes (they always do once the job spans nodes: peers with the
// same stage sit in different pipelines).
func allReduce(m hw.Machine, bytes int64, g int, spanNodes, hierarchical bool) float64 {
	if g <= 1 {
		return 0
	}
	if !spanNodes {
		return m.AllReduceTime(bytes, g)
	}
	bw := collectiveBW
	if hierarchical {
		bw = m.InterBW // NVLink-first hierarchical ring, full NIC per group
	}
	steps := float64(2 * (g - 1))
	return steps*m.InterLatency + 2*float64(g-1)/float64(g)*float64(bytes)/bw
}

// planWithOverhead applies the measured-footprint factor before planning.
func planWithOverhead(method Method, j Job, m hw.Machine, gpus int, sparsity float64) Plan {
	scaled := m
	// Shrink capacity instead of inflating every byte term: equivalent and
	// keeps Plan's reported bytes interpretable.
	scaled.MemoryBytes = int64(float64(m.MemoryBytes) / memOverheadFactor)
	plan := PlanConfig(method, j, scaled, gpus, sparsity)
	return plan
}

// Speedup returns the percentage improvement of b over a ((a−b)/a·100).
func Speedup(a, b Result) float64 {
	if !a.Feasible || !b.Feasible || a.BatchTime == 0 {
		return 0
	}
	return 100 * (a.BatchTime - b.BatchTime) / a.BatchTime
}

// String renders a result row.
func (r Result) String() string {
	if !r.Feasible {
		return fmt.Sprintf("%-14s %-16s %5d GPUs: OOM/infeasible", r.Job, r.Method, r.GPUs)
	}
	return fmt.Sprintf("%-14s %-16s %5d GPUs: %8.3fs  (Ginter=%d Gdata=%d Gintra=%d mbs=%d M=%d, %4.1f%% peak)",
		r.Job, r.Method, r.GPUs, r.BatchTime, r.Plan.Ginter, r.Plan.Gdata, r.Plan.Gintra,
		r.Plan.MBS, r.Plan.Micro, 100*r.PeakFraction)
}
