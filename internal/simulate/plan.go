package simulate

import (
	"fmt"

	"github.com/sparse-dl/samo/internal/core"
	"github.com/sparse-dl/samo/internal/hw"
)

// Method identifies a parallel-training framework configuration.
type Method int

// The four systems compared in Figures 5–8 and Table II.
const (
	MethodAxoNN Method = iota
	MethodSAMO
	MethodDeepSpeed3D
	MethodSputnik
)

func (m Method) String() string {
	switch m {
	case MethodAxoNN:
		return "AxoNN"
	case MethodSAMO:
		return "AxoNN+SAMO"
	case MethodDeepSpeed3D:
		return "DeepSpeed-3D"
	default:
		return "Sputnik"
	}
}

// Plan is a feasible device configuration: G = Gintra × Ginter × Gdata
// (Gintra is 1 except for DeepSpeed-3D's intra-layer parallelism).
type Plan struct {
	Feasible bool
	Ginter   int
	Gdata    int
	Gintra   int
	MBS      int // microbatch size (samples)
	Micro    int // microbatches per pipeline per batch

	StateBytesPerGPU int64
	ActBytesPerGPU   int64
	TotalPerGPU      int64
}

// frameworkReserve approximates CUDA context + NCCL buffers + allocator
// fragmentation, memory the model-state ledger does not see.
const frameworkReserve = int64(3) << 29 // 1.5 GiB

// ModelStateBytes returns the total (cluster-wide, before division by
// Ginter·Gintra) model-state footprint of each method at the given pruned
// fraction. ZeRO's optimizer-state sharding for DeepSpeed-3D is applied in
// the planner because it depends on Gdata.
func ModelStateBytes(method Method, phi int64, sparsity float64) int64 {
	f := 1 - sparsity
	switch method {
	case MethodSAMO:
		return core.SAMOModelStateBytes(phi, sparsity)
	case MethodSputnik:
		// Sputnik swaps the compute kernels: weights and gradients become
		// sparse (fp16 values 2fφ each + shared int32 metadata 4fφ), but
		// the optimizer path is untouched — θ32 and the Adam moments stay
		// dense (12φ). Memory sits between dense AxoNN and SAMO.
		return int64((2+2+4)*f*float64(phi)) + 12*phi
	default:
		return core.DefaultModelStateBytes(phi)
	}
}

// activationBytes estimates per-GPU activation memory for a pipeline stage:
// checkpointed layer-boundary activations for every in-flight microbatch
// plus the transient working set of one recomputed layer (attention scores
// included — no flash attention on V100s).
func activationBytes(j Job, ginter, gintra, mbs, micro int) int64 {
	inflight := ginter
	if micro < inflight {
		inflight = micro
	}
	if j.Kind == KindCNN {
		// Pure data parallelism in practice; per-sample activation storage
		// with checkpointing ≈ 48 MB at 224².
		return int64(mbs) * 48 << 20
	}
	// Per-layer activation checkpoints (Megatron-style: each transformer
	// layer's fp16 input is stored) for every in-flight microbatch, plus the
	// transient working set while one layer is recomputed during backward
	// (MLP intermediates 34·b·s·h bytes and the two attention score
	// matrices 2·a·s²·b — V100s predate flash attention).
	layersPerStage := (j.NumLayers + ginter - 1) / ginter
	boundary := int64(2*mbs*j.Seq*j.Hidden) * int64(layersPerStage) * int64(inflight)
	transient := int64(34*mbs*j.Seq*j.Hidden) + int64(2*mbs*j.Heads*j.Seq*j.Seq)
	return (boundary + transient) / int64(gintra)
}

// PlanConfig chooses the smallest Ginter (and for DeepSpeed-3D, Gintra)
// whose per-GPU footprint fits the machine — AxoNN's planning rule, and the
// mechanism by which SAMO's memory savings become communication savings:
// smaller state → smaller Ginter → larger Gdata (§IV-B).
func PlanConfig(method Method, j Job, m hw.Machine, gpus int, sparsity float64) Plan {
	if gpus < 1 {
		panic(fmt.Sprintf("simulate: %d GPUs", gpus))
	}
	capacity := m.MemoryBytes - frameworkReserve
	state := ModelStateBytes(method, j.Phi, sparsity)

	gintras := []int{1}
	if method == MethodDeepSpeed3D {
		gintras = []int{1, 2, 3, 6} // Megatron tensor parallelism within a node
	}
	for _, gintra := range gintras {
		if gpus%gintra != 0 {
			continue
		}
		for ginter := 1; ginter <= gpus/gintra; ginter *= 2 {
			if ginter > j.NumLayers {
				break
			}
			gdata := gpus / (gintra * ginter)
			if gdata < 1 || j.Batch < gdata {
				continue
			}
			mbs := 1
			if j.Kind == KindCNN {
				mbs = j.Batch / gdata
				if mbs > 8 {
					mbs = 8
				}
				if mbs < 1 {
					mbs = 1
				}
			}
			micro := j.Batch / (gdata * mbs)
			if micro < 1 {
				continue
			}
			perState := state / int64(ginter*gintra)
			if method == MethodDeepSpeed3D {
				// ZeRO-1: optimizer states (8φ of the 20φ) shard further
				// across the data-parallel group.
				perState = (12*j.Phi)/int64(ginter*gintra) +
					(8*j.Phi)/int64(ginter*gintra*gdata)
			}
			act := activationBytes(j, ginter, gintra, mbs, micro)
			total := perState + act
			if total <= capacity {
				return Plan{
					Feasible: true, Ginter: ginter, Gdata: gdata, Gintra: gintra,
					MBS: mbs, Micro: micro,
					StateBytesPerGPU: perState, ActBytesPerGPU: act, TotalPerGPU: total,
				}
			}
		}
	}
	return Plan{}
}
