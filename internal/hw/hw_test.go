package hw

import (
	"testing"
	"testing/quick"
)

func TestSummitConstantsFromPaper(t *testing.T) {
	m := Summit()
	if m.GPUsPerNode != 6 {
		t.Error("Summit has 6 GPUs per node")
	}
	if m.IntraBW != 50e9 || m.InterBW != 12.5e9 {
		t.Error("Summit bandwidths: 50 GB/s intra, 12.5 GB/s inter")
	}
	if m.PeakHalfFlops != 125e12 {
		t.Error("Summit V100 peak: 125 Tflop/s fp16")
	}
	if m.MemoryBytes != 16<<30 {
		t.Error("Summit V100 memory: 16 GB")
	}
}

func TestP2PTimeOrdering(t *testing.T) {
	m := Summit()
	const mb = 1 << 20
	if m.P2PTime(mb, true) >= m.P2PTime(mb, false) {
		t.Error("intra-node transfer must be faster than inter-node")
	}
	if m.P2PTime(2*mb, true) <= m.P2PTime(mb, true) {
		t.Error("more bytes must take longer")
	}
}

func TestAllReduceTimeProperties(t *testing.T) {
	m := Summit()
	if m.AllReduceTime(1<<20, 1) != 0 {
		t.Error("single-rank all-reduce is free")
	}
	// Within a node it uses NVLink; across nodes IB — a 12-GPU reduce of
	// the same payload must be slower than a 4-GPU one.
	if m.AllReduceTime(1<<24, 4) >= m.AllReduceTime(1<<24, 12) {
		t.Error("node-spanning all-reduce must be slower")
	}
	// Bandwidth term: asymptotically ~2·bytes/bw regardless of g.
	big := int64(1 << 30)
	t64 := m.AllReduceTime(big, 64)
	t512 := m.AllReduceTime(big, 512)
	if t512 < t64 || t512 > 1.2*t64+0.1 {
		t.Errorf("ring all-reduce should be nearly g-independent in bandwidth: %g vs %g", t64, t512)
	}
}

func TestGEMMEfficiencyMonotone(t *testing.T) {
	f := func(a, b uint8) bool {
		d1 := 64 + int(a)*16
		d2 := 64 + int(b)*16
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		return gemmEfficiency(d1, d1, d1) <= gemmEfficiency(d2, d2, d2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if e := gemmEfficiency(4096, 4096, 4096); e < 0.4 || e > 0.65 {
		t.Errorf("large-GEMM efficiency %g outside plausible cuBLAS band", e)
	}
}

func TestFigure1RatiosAt90Sparsity(t *testing.T) {
	// The calibration targets from the paper: dense is 6–22× faster than
	// Sputnik at 90% sparsity across 128²–4096² weights, and cuSPARSE is
	// slower than Sputnik everywhere.
	m := Summit()
	const batch = 576
	for _, dim := range []int{128, 256, 512, 1024, 2048, 4096} {
		dense := m.SparseFCTime(KernelCuBLAS, dim, batch, 0.9)
		sput := m.SparseFCTime(KernelSputnik, dim, batch, 0.9)
		cus := m.SparseFCTime(KernelCuSPARSE, dim, batch, 0.9)
		ratio := sput / dense
		if ratio < 4 || ratio > 25 {
			t.Errorf("dim %d: Sputnik/dense ratio %.1f outside the paper's 6–22× band", dim, ratio)
		}
		if cus <= sput {
			t.Errorf("dim %d: cuSPARSE must be slower than Sputnik", dim)
		}
	}
	// The gap grows with size (22× at the top end).
	small := m.SparseFCTime(KernelSputnik, 128, batch, 0.9) / m.SparseFCTime(KernelCuBLAS, 128, batch, 0.9)
	large := m.SparseFCTime(KernelSputnik, 4096, batch, 0.9) / m.SparseFCTime(KernelCuBLAS, 4096, batch, 0.9)
	if large <= small {
		t.Errorf("Sputnik gap should grow with size: %.1f -> %.1f", small, large)
	}
	if large < 18 || large > 25 {
		t.Errorf("gap at 4096² = %.1f, want ≈22", large)
	}
}

func TestSparsityScalesSparseKernelTime(t *testing.T) {
	// Higher sparsity -> fewer non-zeros -> faster sparse kernel; dense
	// time unchanged (it computes the zeros anyway).
	m := Summit()
	s80 := m.SparseFCTime(KernelSputnik, 1024, 576, 0.8)
	s95 := m.SparseFCTime(KernelSputnik, 1024, 576, 0.95)
	if s95 >= s80 {
		t.Error("sparser matrix must run faster under Sputnik")
	}
	d80 := m.SparseFCTime(KernelCuBLAS, 1024, 576, 0.8)
	d95 := m.SparseFCTime(KernelCuBLAS, 1024, 576, 0.95)
	if d80 != d95 {
		t.Error("dense time must not depend on sparsity")
	}
}

func TestComputeAndMemBoundTimes(t *testing.T) {
	m := Summit()
	if m.ComputeTime(125e12) <= 1.0 {
		t.Error("one peak-second of flops must take > 1s at <100% efficiency")
	}
	if m.MemBoundTime(900e9) != 1.0 {
		t.Error("MemBoundTime miscalibrated")
	}
	if m.SpansNodes(6) || !m.SpansNodes(7) {
		t.Error("node-boundary detection wrong")
	}
}
