// Package hw models the hardware of the paper's testbed — ORNL Summit — and
// the GPU kernel timings the evaluation depends on. Nothing here executes on
// a GPU; these are calibrated analytical models (see DESIGN.md's
// substitution table). Two kinds of numbers matter:
//
//   - machine constants, taken directly from §V: 6 NVIDIA V100s per node,
//     50 GB/s NVLink within a node, 12.5 GB/s between nodes, 125 Tflop/s
//     peak half-precision per GPU, 16 GB of HBM each;
//   - kernel efficiency curves, calibrated so the dense/sparse ratios match
//     Figure 1: at 90% sparsity a dense cuBLAS FC layer is 6–22× faster
//     than Sputnik (gap growing with size) and cuSPARSE is far slower
//     still.
//
// The strong-scaling experiments (Figs. 5–8, Table II) depend only on these
// ratios and the compute:communication balance, not on absolute magnitudes.
package hw

import "math"

// Machine describes one cluster configuration.
type Machine struct {
	Name        string
	GPUsPerNode int
	// IntraBW and InterBW are per-GPU link bandwidths in bytes/second for
	// intra-node (NVLink) and inter-node (InfiniBand) transfers.
	IntraBW float64
	InterBW float64
	// IntraLatency and InterLatency are per-message latencies in seconds.
	IntraLatency float64
	InterLatency float64
	// PeakHalfFlops is the per-GPU fp16 peak in flop/s.
	PeakHalfFlops float64
	// MemBW is the per-GPU HBM bandwidth in bytes/second (bounds
	// memory-bound operations such as SAMO's gradient compression).
	MemBW float64
	// MemoryBytes is usable HBM per GPU.
	MemoryBytes int64
	// TrainEfficiency is the fraction of peak a well-tuned dense training
	// step achieves in pure compute (kernel efficiency × launch overheads).
	// Calibrated so Table II's small-scale utilization lands in the paper's
	// 43–53% band once communication is added.
	TrainEfficiency float64
}

// Summit returns the Summit profile from §V of the paper.
func Summit() Machine {
	return Machine{
		Name:            "Summit",
		GPUsPerNode:     6,
		IntraBW:         50e9,
		InterBW:         12.5e9,
		IntraLatency:    5e-6,
		InterLatency:    12e-6,
		PeakHalfFlops:   125e12,
		MemBW:           900e9,
		MemoryBytes:     16 << 30,
		TrainEfficiency: 0.60,
	}
}

// P2PTime returns the time to move bytes over one link.
func (m Machine) P2PTime(bytes int64, sameNode bool) float64 {
	if sameNode {
		return m.IntraLatency + float64(bytes)/m.IntraBW
	}
	return m.InterLatency + float64(bytes)/m.InterBW
}

// SpansNodes reports whether a group of g consecutive GPUs crosses a node
// boundary.
func (m Machine) SpansNodes(g int) bool { return g > m.GPUsPerNode }

// AllReduceTime returns the ring all-reduce time for a payload of bytes
// across g GPUs: each rank moves 2·(g−1)/g of the buffer over the
// bottleneck link, plus per-step latency.
func (m Machine) AllReduceTime(bytes int64, g int) float64 {
	if g <= 1 {
		return 0
	}
	bw, lat := m.IntraBW, m.IntraLatency
	if m.SpansNodes(g) {
		bw, lat = m.InterBW, m.InterLatency
	}
	steps := float64(2 * (g - 1))
	return steps*lat + 2*float64(g-1)/float64(g)*float64(bytes)/bw
}

// ComputeTime converts a flop count into seconds at training efficiency.
func (m Machine) ComputeTime(flops float64) float64 {
	return flops / (m.PeakHalfFlops * m.TrainEfficiency)
}

// MemBoundTime returns the time for an operation that moves bytes through
// HBM (gathers/scatters, elementwise kernels).
func (m Machine) MemBoundTime(bytes float64) float64 {
	return bytes / m.MemBW
}

// --- Figure 1 kernel models -------------------------------------------------

// KernelKind selects the kernel model for the Figure 1 sweep.
type KernelKind int

// Kernel families compared in Figure 1.
const (
	KernelCuBLAS KernelKind = iota
	KernelSputnik
	KernelCuSPARSE
)

func (k KernelKind) String() string {
	switch k {
	case KernelCuBLAS:
		return "cuBLAS"
	case KernelSputnik:
		return "Sputnik"
	default:
		return "cuSPARSE"
	}
}

// kernelLaunch is the fixed overhead of one GPU kernel launch.
const kernelLaunch = 8e-6

// gemmEfficiency is the fraction of peak a mixed-precision GEMM reaches as a
// function of problem size: small problems are launch/occupancy bound, large
// ones approach ~65% of peak (typical for V100 cuBLAS HGEMM).
func gemmEfficiency(m, k, n int) float64 {
	s := math.Cbrt(float64(m) * float64(k) * float64(n)) // effective dim
	return 0.65 * s / (s + 700)
}

// DenseGEMMTime models a cuBLAS mixed-precision GEMM C(m,n) = A(m,k)·B(k,n).
func (mc Machine) DenseGEMMTime(m, k, n int) float64 {
	flops := 2 * float64(m) * float64(k) * float64(n)
	return kernelLaunch + flops/(mc.PeakHalfFlops*gemmEfficiency(m, k, n))
}

// sputnikSlowdown is the calibrated ratio of Sputnik spMM time to the dense
// GEMM computing the same (zero-filled) product at 90% sparsity, from
// Figure 1: ≈6× for 128² weights rising to ≈22× at 4096². Interpolation is
// linear in log-size; sparsity rescales the ratio by the non-zero fraction
// relative to the 0.9 calibration point (fewer non-zeros → proportionally
// less sparse work).
func sputnikSlowdown(dim int, sparsity float64) float64 {
	ld := math.Log2(float64(dim) / 128)
	if ld < 0 {
		ld = 0
	}
	frac := ld / 5 // 128 -> 4096 spans 5 doublings
	if frac > 1 {
		frac = 1
	}
	base := 6 + 16*frac
	return base * ((1 - sparsity) / 0.1)
}

// cuSPARSESlowdown is the calibrated cuSPARSE ratio: designed for >99%
// scientific sparsity, it is 1–2 orders of magnitude slower than dense at DL
// sparsities, with the gap widening with size (Figure 1 shows it worst
// everywhere).
func cuSPARSESlowdown(dim int, sparsity float64) float64 {
	return 5 * sputnikSlowdown(dim, sparsity)
}

// SparseFCTime models the time to compute a fully connected layer with a
// (dim × dim) weight matrix at the given sparsity on a batch of the given
// size, under the chosen kernel family. Dense kernels fill zeros and pay the
// full flop count; sparse kernels pay only non-zero flops but at far lower
// throughput — the trade Figure 1 quantifies.
func (mc Machine) SparseFCTime(kind KernelKind, dim, batch int, sparsity float64) float64 {
	dense := mc.DenseGEMMTime(batch, dim, dim)
	switch kind {
	case KernelCuBLAS:
		return dense
	case KernelSputnik:
		// The slowdown curves are calibrated against end-to-end layer time,
		// which is what Figure 1 plots (sparse kernels pay their metadata
		// traversal at every size, so the ratio holds even when the dense
		// kernel is launch-bound).
		return dense * sputnikSlowdown(dim, sparsity)
	default:
		return dense * cuSPARSESlowdown(dim, sparsity)
	}
}
