package tensor

import "github.com/sparse-dl/samo/internal/parallel"

// SetWorkers overrides the kernel worker count (n < 1 resets to GOMAXPROCS)
// and returns the previous value. It delegates to the shared persistent
// worker pool in internal/parallel, which every kernel in the repository
// dispatches through; the bound is atomic, so SetWorkers is safe to call
// while kernels are running on other goroutines (tests lower it mid-run for
// scheduling determinism — results are deterministic regardless: work
// partitioning is static, and no kernel reduces across goroutines
// non-deterministically).
func SetWorkers(n int) int { return parallel.SetWorkers(n) }

// parallelFor runs fn(lo, hi) over a static partition of [0, n) on the
// persistent worker pool. grain is the minimum chunk size below which the
// loop runs serially — dispatch overhead dominates tiny kernels. The
// closure may escape (one allocation); allocation-free kernels use
// parallel.Run with pooled job structs instead.
func parallelFor(n, grain int, fn func(lo, hi int)) {
	parallel.For(n, grain, fn)
}
