package tensor

import (
	"runtime"
	"sync"
)

// maxWorkers bounds kernel parallelism. Tests may lower it for determinism
// of scheduling (results are deterministic regardless: work partitioning is
// static, and no kernel reduces across goroutines non-deterministically).
var maxWorkers = runtime.GOMAXPROCS(0)

// SetWorkers overrides the kernel worker count (n < 1 resets to GOMAXPROCS).
// It returns the previous value.
func SetWorkers(n int) int {
	old := maxWorkers
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	maxWorkers = n
	return old
}

// parallelFor runs fn(lo, hi) over a static partition of [0, n) into
// contiguous chunks, one per worker. grain is the minimum chunk size below
// which the loop runs serially — goroutine overhead dominates tiny kernels.
func parallelFor(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := maxWorkers
	if grain < 1 {
		grain = 1
	}
	if max := (n + grain - 1) / grain; workers > max {
		workers = max
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
