package tensor

import "github.com/sparse-dl/samo/internal/parallel"

// SetWorkers overrides the kernel worker count (n < 1 resets to GOMAXPROCS)
// and returns the previous value. It delegates to the shared persistent
// worker pool in internal/parallel, which every kernel in the repository
// dispatches through; the bound is atomic, so SetWorkers is safe to call
// while kernels are running on other goroutines (tests lower it mid-run for
// scheduling determinism — results are deterministic regardless: work
// partitioning is static, and no kernel reduces across goroutines
// non-deterministically).
func SetWorkers(n int) int { return parallel.SetWorkers(n) }
