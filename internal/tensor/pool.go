package tensor

// Arena is a size-keyed tensor recycler that makes steady-state training
// steps allocation-free. Layers allocate activations, gradients and scratch
// tensors from the arena during a step; Reset at the end of the step
// returns every arena-owned buffer to its free list in one sweep, so the
// next step's Gets are pure pops. The wholesale reset sidesteps the
// double-free and view-aliasing hazards of per-tensor free calls: views
// (Wrap, SliceOf) recycle only their Tensor header, never the data they
// alias.
//
// An Arena is NOT safe for concurrent use; each training goroutine (each
// simulated rank) owns one. All methods are nil-receiver-safe and fall back
// to plain heap allocation, so code paths without an arena — tests, one-off
// evaluations — call the same layer APIs with a nil *Arena.
type Arena struct {
	free    map[int][]*Tensor // owned tensors, keyed by cap(data)
	headers []*Tensor         // recycled headers for views (data not owned)
	used    []arenaSlot
}

type arenaSlot struct {
	t    *Tensor
	owns bool
}

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{free: make(map[int][]*Tensor)}
}

// Get returns a tensor of the given shape with UNSPECIFIED contents —
// callers must fully overwrite it (use GetZeroed for accumulators). The
// tensor belongs to the arena and is reclaimed by the next Reset.
func (a *Arena) Get(shape ...int) *Tensor {
	if a == nil {
		return New(shape...)
	}
	n := checkShape(shape)
	list := a.free[n]
	var t *Tensor
	if l := len(list); l > 0 {
		t = list[l-1]
		a.free[n] = list[:l-1]
		t.data = t.data[:n]
		t.shape = append(t.shape[:0], shape...)
	} else {
		t = New(shape...)
	}
	a.used = append(a.used, arenaSlot{t: t, owns: true})
	return t
}

// GetZeroed returns a zero-filled arena tensor.
func (a *Arena) GetZeroed(shape ...int) *Tensor {
	if a == nil {
		return New(shape...)
	}
	t := a.Get(shape...)
	zeroSlice(t.data)
	return t
}

// Wrap returns an arena-tracked tensor header around existing data (for
// example a payload received over the communication fabric). The data is
// NOT owned: Reset recycles only the header. len(data) must match the
// shape's element count.
func (a *Arena) Wrap(data []float32, shape ...int) *Tensor {
	if a == nil {
		return FromSlice(data, shape...)
	}
	n := checkShape(shape)
	if len(data) != n {
		panic("tensor: Arena.Wrap data length does not match shape")
	}
	t := a.header()
	t.data = data
	t.shape = append(t.shape[:0], shape...)
	a.used = append(a.used, arenaSlot{t: t})
	return t
}

// SliceOf returns an arena-tracked view of rows [lo,hi) of t along its
// first dimension — the allocation-free counterpart of Tensor.Slice.
func (a *Arena) SliceOf(t *Tensor, lo, hi int) *Tensor {
	if a == nil {
		return t.Slice(lo, hi)
	}
	if len(t.shape) == 0 {
		panic("tensor: SliceOf requires rank >= 1")
	}
	if lo < 0 || hi > t.shape[0] || lo > hi {
		panic("tensor: SliceOf out of range")
	}
	stride := 1
	for _, d := range t.shape[1:] {
		stride *= d
	}
	v := a.header()
	v.data = t.data[lo*stride : hi*stride]
	v.shape = append(v.shape[:0], hi-lo)
	v.shape = append(v.shape, t.shape[1:]...)
	a.used = append(a.used, arenaSlot{t: v})
	return v
}

// ViewOf returns an arena-tracked reshaped view of t's data — the
// allocation-free counterpart of Tensor.Reshape (no -1 inference).
func (a *Arena) ViewOf(t *Tensor, shape ...int) *Tensor {
	if a == nil {
		return t.Reshape(shape...)
	}
	if checkShape(shape) != len(t.data) {
		panic("tensor: Arena.ViewOf changes element count")
	}
	v := a.header()
	v.data = t.data
	v.shape = append(v.shape[:0], shape...)
	a.used = append(a.used, arenaSlot{t: v})
	return v
}

func (a *Arena) header() *Tensor {
	if l := len(a.headers); l > 0 {
		t := a.headers[l-1]
		a.headers = a.headers[:l-1]
		return t
	}
	return &Tensor{}
}

// Reset reclaims every tensor handed out since the last Reset. Owned
// buffers return to the size-keyed free lists; view headers are stripped of
// their data reference and recycled. All tensors obtained from the arena
// are invalid after Reset — the caller is responsible for not retaining
// them across steps (activations never outlive the optimizer step that
// consumed them, which is the training loop's natural lifetime).
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	for i, s := range a.used {
		if s.owns {
			n := cap(s.t.data)
			a.free[n] = append(a.free[n], s.t)
		} else {
			s.t.data = nil
			s.t.shape = s.t.shape[:0]
			a.headers = append(a.headers, s.t)
		}
		a.used[i].t = nil
	}
	a.used = a.used[:0]
}

// Live returns how many tensors are currently handed out (test hook).
func (a *Arena) Live() int {
	if a == nil {
		return 0
	}
	return len(a.used)
}
