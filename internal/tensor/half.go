package tensor

import (
	"fmt"

	"github.com/sparse-dl/samo/internal/fp16"
)

// Half is a dense tensor stored in IEEE binary16, the storage format of θ16
// and ∇θ16 in mixed-precision training. Compute happens in float32 (kernels
// take/produce *Tensor); Half exists to make the 2-bytes-per-element memory
// accounting and the quantization behaviour real rather than notional.
type Half struct {
	shape []int
	data  []fp16.Bits
}

// NewHalf returns a zero-filled half tensor with the given shape.
func NewHalf(shape ...int) *Half {
	n := checkShape(shape)
	return &Half{shape: append([]int(nil), shape...), data: make([]fp16.Bits, n)}
}

// HalfFromTensor quantizes t to half precision. It returns the tensor and
// the number of elements that overflowed to ±Inf.
func HalfFromTensor(t *Tensor) (*Half, int) {
	h := NewHalf(t.shape...)
	ov := fp16.FromSlice(h.data, t.data)
	return h, ov
}

// Shape returns the dimensions (not to be modified).
func (h *Half) Shape() []int { return h.shape }

// Len returns the element count.
func (h *Half) Len() int { return len(h.data) }

// Bits returns the raw fp16 storage.
func (h *Half) Bits() []fp16.Bits { return h.data }

// Bytes returns the storage footprint in bytes (2 per element).
func (h *Half) Bytes() int64 { return int64(len(h.data)) * 2 }

// Float32 materializes the half tensor as float32 for compute.
func (h *Half) Float32() *Tensor {
	t := New(h.shape...)
	if len(h.data) > 0 {
		fp16.ToSlice(t.data, h.data)
	}
	return t
}

// StoreFrom quantizes src into h in place; shapes must match in element
// count. Returns the number of overflowed elements.
func (h *Half) StoreFrom(src *Tensor) int {
	if len(src.data) != len(h.data) {
		panic(fmt.Sprintf("tensor: Half.StoreFrom %d vs %d elements", len(src.data), len(h.data)))
	}
	if len(h.data) == 0 {
		return 0
	}
	return fp16.FromSlice(h.data, src.data)
}

// LoadInto dequantizes h into dst, which must have the same element count.
func (h *Half) LoadInto(dst *Tensor) {
	if len(dst.data) != len(h.data) {
		panic(fmt.Sprintf("tensor: Half.LoadInto %d vs %d elements", len(h.data), len(dst.data)))
	}
	if len(h.data) > 0 {
		fp16.ToSlice(dst.data, h.data)
	}
}

// Clone returns a deep copy.
func (h *Half) Clone() *Half {
	d := make([]fp16.Bits, len(h.data))
	copy(d, h.data)
	return &Half{shape: append([]int(nil), h.shape...), data: d}
}

// QuantizeInPlace rounds every element of a float32 tensor through fp16,
// simulating a store-to-half/load-from-half pair without allocating.
func QuantizeInPlace(t *Tensor) {
	for i, v := range t.data {
		t.data[i] = fp16.Round(v)
	}
}
