package tensor

import "math"

// RNG is a small, fast, deterministic generator (splitmix64 core) used for
// parameter initialization and synthetic data. Determinism across runs and
// across worker counts matters: the statistical-efficiency experiment
// (Fig. 4) compares two training configurations and must not be confounded
// by init noise.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float32 returns a uniform value in [0,1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) * (1.0 / (1 << 24))
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform value in [0,n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal variate (Box–Muller; one value per call for
// simplicity — initialization is not a hot path).
func (r *RNG) Norm() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a random permutation of [0,n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// FillNormal fills t with N(0, std²) values.
func FillNormal(t *Tensor, std float64, rng *RNG) {
	for i := range t.data {
		t.data[i] = float32(rng.Norm() * std)
	}
}

// FillXavier fills t with the Glorot-uniform distribution for a layer with
// the given fan-in and fan-out.
func FillXavier(t *Tensor, fanIn, fanOut int, rng *RNG) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range t.data {
		t.data[i] = float32((2*rng.Float64() - 1) * limit)
	}
}

// FillKaiming fills t with the He-normal distribution for the given fan-in,
// the standard init for ReLU networks (VGG, WideResNet).
func FillKaiming(t *Tensor, fanIn int, rng *RNG) {
	std := math.Sqrt(2.0 / float64(fanIn))
	FillNormal(t, std, rng)
}

// FillUniform fills t with uniform values in [lo, hi).
func FillUniform(t *Tensor, lo, hi float32, rng *RNG) {
	for i := range t.data {
		t.data[i] = lo + (hi-lo)*rng.Float32()
	}
}
