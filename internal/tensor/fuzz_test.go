package tensor

import (
	"math"
	"testing"
)

// FuzzMatMulInto drives every GEMM dispatch path — the saxpy small-shape
// kernel, the direct-B, shared-pack, strip and mc-blocked v2/v3 candidates
// — against the naive triple loop over fuzzer-chosen shapes. Shapes are
// folded into ranges that cross the dispatch boundaries (m around gemmMR
// and the v2 gate, k and n around the kc/nc candidates and the 8-wide
// strip width), and every candidate's output is additionally checked
// BITWISE against candidate 0: the autotuner may pick any of them, so a
// divergence would make tuning perturb training.
func FuzzMatMulInto(f *testing.F) {
	// Seeded degenerate corpus: dispatch-gate boundaries, micro-kernel
	// remainders, panel-boundary crossings, strip tails, empty dims.
	f.Add(uint16(0), uint16(8), uint16(8), uint64(1), false)
	f.Add(uint16(1), uint16(16), uint16(16), uint64(2), false)   // m=1: micro1 only
	f.Add(uint16(3), uint16(15), uint16(17), uint64(3), true)    // below the v2 gate: saxpy
	f.Add(uint16(4), uint16(16), uint16(16), uint64(4), false)   // exactly at the v2 gate
	f.Add(uint16(5), uint16(129), uint16(130), uint64(5), false) // kc=128 boundary, nc remainder
	f.Add(uint16(8), uint16(257), uint16(129), uint64(6), true)  // kc=256 crossing
	f.Add(uint16(7), uint16(300), uint16(9), uint64(7), false)   // one full strip + 1-wide tail
	f.Add(uint16(40), uint16(300), uint16(200), uint64(8), false)
	f.Add(uint16(47), uint16(319), uint16(223), uint64(9), true) // max folded shape
	f.Fuzz(func(t *testing.T, mr, kr, nr uint16, seed uint64, accumulate bool) {
		m, k, n := int(mr%48), int(kr%320), int(nr%224)
		rng := NewRNG(seed | 1)
		a, b := New(m, k), New(k, n)
		fillSeq(a, rng)
		fillSeq(b, rng)

		want := refMatMul(a, b)
		cSeed := New(m, n)
		fillSeq(cSeed, rng)
		if accumulate {
			Add(want, cSeed)
		}

		// 1. The public dispatcher, whatever path the autotuner is on.
		got := cSeed.Clone()
		MatMulInto(got, a, b, accumulate)
		if d := MaxAbsDiff(got, want); d > tol(k) {
			t.Fatalf("MatMulInto(%dx%dx%d, acc=%v) differs from naive by %g", m, k, n, accumulate, d)
		}

		if m == 0 || k == 0 || n == 0 {
			return // candidate kernels are only reachable through dispatch for non-empty dims
		}
		// 2. Every autotune candidate, pinned to naive and bitwise to each other.
		var first *Tensor
		for ci, cand := range tuneCands {
			out := cSeed.Clone()
			gemmV2(gemmNN, out.data, a.data, b.data, m, k, n, accumulate, cand)
			if d := MaxAbsDiff(out, want); d > tol(k) {
				t.Fatalf("candidate %d (%+v) on %dx%dx%d differs from naive by %g", ci, cand, m, k, n, d)
			}
			if first == nil {
				first = out
			} else if i, ok := bitwiseEqual(out, first); !ok {
				t.Fatalf("candidate %d (%+v) on %dx%dx%d: not bitwise-equal to candidate 0 at index %d",
					ci, cand, m, k, n, i)
			}
		}
	})
}

// FuzzMatMulTInto drives the C = A·Bᵀ dispatcher — the tiled small-shape
// kernel and every transposed-variant shared-pack/strip/mc candidate —
// against the naive triple loop over fuzzer-chosen shapes, with the same
// dispatch-boundary folding as FuzzMatMulInto; every candidate's output is
// additionally checked BITWISE against candidate 0 (the autotuner may pick
// any of them mid-training).
func FuzzMatMulTInto(f *testing.F) {
	seedTransposedCorpus(f)
	f.Fuzz(func(t *testing.T, mr, kr, nr uint16, seed uint64, accumulate bool) {
		m, k, n := int(mr%320), int(kr%320), int(nr%224)
		rng := NewRNG(seed | 1)
		a, b := New(m, k), New(n, k)
		fillSeq(a, rng)
		fillSeq(b, rng)

		want := refMatMulT(a, b)
		cSeed := New(m, n)
		fillSeq(cSeed, rng)
		if accumulate {
			Add(want, cSeed)
		}

		got := cSeed.Clone()
		MatMulTInto(got, a, b, accumulate)
		if d := MaxAbsDiff(got, want); d > tol(k) {
			t.Fatalf("MatMulTInto(%dx%dx%d, acc=%v) differs from naive by %g", m, k, n, accumulate, d)
		}

		if m == 0 || k == 0 || n == 0 {
			return
		}
		var first *Tensor
		for ci, cand := range tuneCandsT {
			out := cSeed.Clone()
			gemmV2(gemmNT, out.data, a.data, b.data, m, k, n, accumulate, cand)
			if d := MaxAbsDiff(out, want); d > tol(k) {
				t.Fatalf("NT candidate %d (%+v) on %dx%dx%d differs from naive by %g", ci, cand, m, k, n, d)
			}
			if first == nil {
				first = out
			} else if i, ok := bitwiseEqual(out, first); !ok {
				t.Fatalf("NT candidate %d (%+v) on %dx%dx%d: not bitwise-equal to candidate 0 at index %d",
					ci, cand, m, k, n, i)
			}
		}
	})
}

// FuzzTMatMulInto is FuzzMatMulTInto's twin for C = Aᵀ·B, which
// additionally exercises the per-block Aᵀ transpose-pack.
func FuzzTMatMulInto(f *testing.F) {
	seedTransposedCorpus(f)
	f.Fuzz(func(t *testing.T, mr, kr, nr uint16, seed uint64, accumulate bool) {
		m, k, n := int(mr%320), int(kr%320), int(nr%224)
		rng := NewRNG(seed | 1)
		a, b := New(k, m), New(k, n)
		fillSeq(a, rng)
		fillSeq(b, rng)

		want := refTMatMul(a, b)
		cSeed := New(m, n)
		fillSeq(cSeed, rng)
		if accumulate {
			Add(want, cSeed)
		}

		got := cSeed.Clone()
		TMatMulInto(got, a, b, accumulate)
		if d := MaxAbsDiff(got, want); d > tol(k) {
			t.Fatalf("TMatMulInto(%dx%dx%d, acc=%v) differs from naive by %g", m, k, n, accumulate, d)
		}

		if m == 0 || k == 0 || n == 0 {
			return
		}
		var first *Tensor
		for ci, cand := range tuneCandsT {
			out := cSeed.Clone()
			gemmV2(gemmTN, out.data, a.data, b.data, m, k, n, accumulate, cand)
			if d := MaxAbsDiff(out, want); d > tol(k) {
				t.Fatalf("TN candidate %d (%+v) on %dx%dx%d differs from naive by %g", ci, cand, m, k, n, d)
			}
			if first == nil {
				first = out
			} else if i, ok := bitwiseEqual(out, first); !ok {
				t.Fatalf("TN candidate %d (%+v) on %dx%dx%d: not bitwise-equal to candidate 0 at index %d",
					ci, cand, m, k, n, i)
			}
		}
	})
}

// seedTransposedCorpus seeds the degenerate corpus shared by both
// transposed-GEMM fuzz targets: dispatch-gate boundaries (the tiled
// fallback below m=4 / k,n=16), micro-kernel and strip-tail remainders,
// panel-boundary crossings (both transpose-packs have per-panel state),
// mc row-block boundaries (m past 128 runs the mc:128 candidate's
// per-block repack; m past 256 additionally splits the gemmTN Aᵀ pack at
// the packBufCap/kc clamp for kc=512), and empty dims.
func seedTransposedCorpus(f *testing.F) {
	f.Add(uint16(0), uint16(8), uint16(8), uint64(1), false)
	f.Add(uint16(1), uint16(16), uint16(16), uint64(2), false)   // m=1: tiled remainder row
	f.Add(uint16(3), uint16(15), uint16(17), uint64(3), true)    // below the v2 gate: tiled
	f.Add(uint16(4), uint16(16), uint16(16), uint64(4), false)   // exactly at the v2 gate
	f.Add(uint16(5), uint16(129), uint16(130), uint64(5), false) // kc=128 boundary, nc remainder
	f.Add(uint16(8), uint16(257), uint16(129), uint64(6), true)  // kc=256 crossing
	f.Add(uint16(7), uint16(300), uint16(9), uint64(7), false)   // one full strip + 1-wide tail
	f.Add(uint16(40), uint16(300), uint16(200), uint64(8), false)
	f.Add(uint16(33), uint16(319), uint16(130), uint64(9), true)  // odd k: global pairwise tail
	f.Add(uint16(150), uint16(300), uint16(40), uint64(10), true) // m crosses the mc=128 block boundary
	f.Add(uint16(300), uint16(319), uint16(66), uint64(11), true) // m crosses the TN kc=512 mc clamp (256)
	f.Add(uint16(319), uint16(318), uint16(223), uint64(12), true)
}

// FuzzCol2ImAdjoint checks the defining property of the backward lowering —
// <Im2Col(x), y> == <x, Col2Im(y)> for adjoint linear maps — over random
// kernel/stride/pad geometry, and pins the parallel Col2Im gather bitwise
// to the serial scatter at several worker counts on every fuzzed geometry.
func FuzzCol2ImAdjoint(f *testing.F) {
	// Seeded degenerate corpus: 1×1 kernels, stride > kernel (gap rows),
	// pad 0 and pad ≥ kernel, non-square inputs, minimum 1×1 output.
	f.Add(uint8(1), uint8(1), uint8(1), uint8(1), uint8(0), uint8(0), uint8(0), uint64(1))
	f.Add(uint8(2), uint8(3), uint8(3), uint8(1), uint8(1), uint8(5), uint8(5), uint64(2))
	f.Add(uint8(1), uint8(2), uint8(1), uint8(3), uint8(0), uint8(6), uint8(2), uint64(3)) // stride 3 > k: gap rows
	f.Add(uint8(2), uint8(4), uint8(5), uint8(2), uint8(2), uint8(9), uint8(3), uint64(4))
	f.Add(uint8(1), uint8(1), uint8(3), uint8(1), uint8(3), uint8(0), uint8(7), uint64(5)) // pad == k
	f.Fuzz(func(t *testing.T, nr, cr, kr, sr, pr, hr, wr uint8, seed uint64) {
		n := 1 + int(nr%2)
		inC := 1 + int(cr%4)
		k := 1 + int(kr%5)
		stride := 1 + int(sr%3)
		pad := int(pr % 4)
		inH := k + int(hr%10)
		inW := k + int(wr%10)
		s := ConvSpec{InC: inC, OutC: 1, Kernel: k, Stride: stride, Pad: pad, InH: inH, InW: inW}
		if s.OutH() < 1 || s.OutW() < 1 {
			t.Skip("degenerate output")
		}
		rng := NewRNG(seed | 1)
		x := New(n, inC, inH, inW)
		fillSeq(x, rng)
		cols := Im2Col(x, s)
		y := New(cols.Dim(0), cols.Dim(1))
		fillSeq(y, rng)

		lhs := Dot(cols, y)
		back := Col2Im(y, s, n)
		rhs := Dot(x, back)
		if scale := math.Abs(lhs) + math.Abs(rhs) + 1; math.Abs(lhs-rhs) > 1e-4*scale {
			t.Fatalf("adjoint identity violated for %+v n=%d: <Im2Col(x),y>=%g vs <x,Col2Im(y)>=%g",
				s, n, lhs, rhs)
		}

		ref := New(n, inC, inH, inW)
		col2imSerial(ref.Data(), y.Data(), s, n)
		defer SetWorkers(SetWorkers(0))
		for _, w := range []int{1, 2, 3, 8} {
			SetWorkers(w)
			out := New(n, inC, inH, inW)
			Col2ImInto(out, y, s, n)
			if i, ok := bitwiseEqual(out, ref); !ok {
				t.Fatalf("workers=%d %+v: parallel Col2Im differs from serial at index %d", w, s, i)
			}
		}
	})
}
