package tensor

import (
	"fmt"
	"sync"
	"time"

	"github.com/sparse-dl/samo/internal/parallel"
)

// GEMM blocking parameters. The default v1 blocking packs a kc×nc panel of
// B contiguously (kc·nc·4 = 128 KiB, L2-resident) and sweeps it with a
// 4-row, 2-k-unrolled register micro-kernel; the v2 shared-pack pipeline
// autotunes (kc, nc) per shape bucket (see autotune.go) with these values
// as the first candidate.
const (
	gemmKC = 256 // k-dimension block (panel height), v1 default
	gemmNC = 128 // n-dimension block (panel width), v1 default
	gemmMR = 4   // micro-kernel rows (A rows per strip)
	// gemmGrain is the minimum C rows per parallel chunk for the v1 and
	// saxpy kernels (each chunk re-packs panels, so chunks must be big).
	gemmGrain = 8
	// gemmPackGrain is the minimum panel rows per worker in the v2
	// cooperative pack: a row copy is ~nc·4 bytes of pure memcpy, so
	// fine-grained fan-out is all dispatch overhead.
	gemmPackGrain = 32
	// tiledKC blocks the k dimension of the transposed products so a 4-row
	// A strip and 4-row B strip stay L1-resident.
	tiledKC = 512
	// packBufCap sizes pooled panel buffers to the largest packing
	// candidate (512·256 floats = 512 KiB) so one free list serves every
	// autotuned blocking without reallocation.
	packBufCap = 512 * 256
)

// MatMul computes C = A·B for A of shape (m,k) and B of shape (k,n),
// returning a new (m,n) tensor. This is the dense kernel standing in for
// cuBLAS: SAMO's whole design rests on the observation that this path is far
// faster than sparse kernels at DL sparsities, so θ16 stays dense.
func MatMul(a, b *Tensor) *Tensor {
	m, k, n := gemmDims(a, b)
	c := New(m, n)
	gemm(c.data, a.data, b.data, m, k, n, false)
	return c
}

// MatMulInto computes C = A·B into an existing (m,n) tensor, avoiding the
// allocation. If accumulate is true it computes C += A·B. The call is
// allocation-free: kernel dispatch, panel packing and parallel fan-out all
// run on pooled state.
func MatMulInto(c, a, b *Tensor, accumulate bool) {
	m, k, n := gemmDims(a, b)
	if c.Len() != m*n {
		panic(fmt.Sprintf("tensor: MatMulInto output has %d elements, want %d", c.Len(), m*n))
	}
	gemm(c.data, a.data, b.data, m, k, n, accumulate)
}

func gemmDims(a, b *Tensor) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMul requires rank-2 tensors")
	}
	m, k = a.shape[0], a.shape[1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMul inner dimensions %d and %d differ", k, b.shape[0]))
	}
	n = b.shape[1]
	return m, k, n
}

// gemmJob carries one matrix product's arguments to the pool workers. Jobs
// and packing buffers are recycled through parallel.Pool free lists so
// kernel dispatch never allocates.
type gemmJob struct {
	c, a, b    []float32
	m, k, n    int
	accumulate bool
}

var gemmJobFree parallel.Pool[gemmJob]

func getGemmJob() *gemmJob { return gemmJobFree.Get() }

func putGemmJob(j *gemmJob) {
	j.c, j.a, j.b = nil, nil, nil
	gemmJobFree.Put(j)
}

var packFree struct {
	mu   sync.Mutex
	list [][]float32
}

func getPackBuf() []float32 {
	packFree.mu.Lock()
	l := len(packFree.list)
	if l == 0 {
		packFree.mu.Unlock()
		return make([]float32, packBufCap)
	}
	b := packFree.list[l-1]
	packFree.list = packFree.list[:l-1]
	packFree.mu.Unlock()
	return b
}

func putPackBuf(b []float32) {
	packFree.mu.Lock()
	packFree.list = append(packFree.list, b)
	packFree.mu.Unlock()
}

// gemmVariant identifies which member of the GEMM family a dispatch (and
// its autotune bucket) belongs to. All three run the same shared-pack
// sweep kernels; they differ only in how the operands are packed into the
// canonical panel layouts.
type gemmVariant uint8

const (
	gemmNN gemmVariant = iota // C = A·B        (forward)
	gemmNT                    // C = A·Bᵀ       (MatMulT, input gradient)
	gemmTN                    // C = Aᵀ·B       (TMatMul, weight gradient)
	gemmVariants
)

// gemm dispatches C (+)= A·B over the worker pool. Large shapes take the
// shared-pack v2 pipeline with autotuned blocking; small or skinny shapes
// fall back to the row-saxpy kernel, whose per-row cost model fits them
// better.
func gemm(c, a, b []float32, m, k, n int, accumulate bool) {
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		if !accumulate {
			zeroSlice(c[:m*n])
		}
		return
	}
	if m >= gemmMR && n >= 16 && k >= 16 {
		gemmTuned(gemmNN, c, a, b, m, k, n, accumulate)
		return
	}
	j := getGemmJob()
	j.c, j.a, j.b = c, a, b
	j.m, j.k, j.n = m, k, n
	j.accumulate = accumulate
	parallel.Run(m, gemmGrain, j, gemmSaxpyChunk)
	putGemmJob(j)
}

// gemmTuned runs one GEMM-family product through the per-(variant, shape)
// autotuner: frozen buckets take the winning candidate a single atomic
// load away; while a bucket is still probing, each call times one
// candidate blocking (the probe performs the real product, so no work is
// thrown away). Every tuneReprobeEvery-th call on a frozen bucket re-times
// one candidate round-robin, so contaminated startup probes self-correct
// (see tuneEntry).
func gemmTuned(v gemmVariant, c, a, b []float32, m, k, n int, accumulate bool) {
	e := tuneFor(v, m, k, n)
	if idx := int(e.chosen.Load()); idx >= 0 {
		if e.calls.Add(1)%tuneReprobeEvery != 0 {
			gemmV2(v, c, a, b, m, k, n, accumulate, e.cands[idx])
			return
		}
	}
	probe := e.nextProbe()
	t0 := time.Now()
	gemmV2(v, c, a, b, m, k, n, accumulate, e.cands[probe])
	e.record(probe, time.Since(t0), m*k*n)
}

// gemmV2Job carries the shared-pack pipeline's per-panel state to the pool
// workers. One job serves a whole gemmV2 call: the caller mutates the panel
// fields between parallel.Run barriers (Run returns only after every chunk
// finished, so workers never observe a mutation mid-panel).
type gemmV2Job struct {
	c, a, b    []float32
	m, k, n    int
	accumulate bool
	pb         []float32 // the one shared packed B panel (nil on direct path)
	pa         []float32 // packed Aᵀ block (gemmTN only; nil otherwise)
	k0, kcur   int       // current panel's k range
	j0, ncur   int       // current panel's n range
	i0, mcur   int       // current mc block's row range (sweep chunks offset by i0)
	kc, nc     int       // blocking (direct path iterates panels itself)
	// A addressing for the sweeps: row i of the effective (m,k) A lives at
	// as[(i-aBase)·aStride + aOff : +kcur]. For gemmNN/gemmNT this is A
	// itself (as=a, aBase=0, aStride=k, aOff=k0); for gemmTN it is the
	// transpose-packed block (as=pa, aBase=i0, aStride=kcur, aOff=0).
	as                   []float32
	aBase, aStride, aOff int
}

var gemmV2JobFree parallel.Pool[gemmV2Job]

// gemmV2 computes C (+)= A·B with the BLIS-style shared-pack pipeline: for
// each kc×nc panel of B the workers first pack it cooperatively — ONCE per
// call, into one process-pooled buffer — then all sweep their disjoint C
// row ranges over it. The v1 kernel packed every panel once per *worker*,
// which is pure duplicated memory traffic as soon as a call fans out; the
// shared pack removes it, which is exactly the win when rows-per-worker is
// small (the Figure-1 FC backward shapes). Candidates with pack=false skip
// packing entirely and read B in place — for very small m a panel is swept
// too few times for the pack traffic to amortize at all.
//
// Two further candidate dimensions (autotuned, see autotune.go):
//
//   - strip: pack the panel in 8-wide column strips (each strip k-major and
//     contiguous) and sweep it with the v3 strip kernel, whose inner loop
//     keeps eight C accumulators in registers and streams B sequentially —
//     C round-trips through memory once per panel instead of every other
//     k step.
//   - mc: block the C rows, re-running the whole panel loop per mc-row
//     block. Packing repeats once per block (m/mc times the traffic), but
//     the block's C rows and A slab stay cache-resident across the k sweep —
//     the classic BLIS ic loop, worth probing only for tall m.
//
// Every variant accumulates each C element in the same pairwise k order, so
// all candidates remain bitwise-identical (TestGEMMV2CandidatesGolden).
//
// The transposed family (v != gemmNN) runs the SAME panel loop and sweep
// kernels; only the packing differs per operand orientation:
//
//   - gemmNT (C = A·Bᵀ): B is (n,k), so the effective Bᵀ panel is packed by
//     reading B rows along their contiguous k extent and scattering each
//     into one panel column — a near-copy per B row (gemmPackPanelNTChunk /
//     gemmPackStripNTChunk). A is (m,k) row-major, exactly as in gemmNN.
//   - gemmTN (C = Aᵀ·B): B is (k,n) row-major, exactly as in gemmNN, so the
//     B pack routines are reused verbatim; A is (k,m) and is transpose-
//     packed per (mc,kc) block into a second pooled buffer the sweeps then
//     read as canonical row-major A (gemmPackATChunk). mc is bounded so the
//     block always fits the pooled buffer.
//
// Because the sweeps are shared, the transposed variants inherit the
// bitwise candidate-invariance contract for free: packing relocates
// operand bytes, never reorders the per-element float operations.
func gemmV2(v gemmVariant, c, a, b []float32, m, k, n int, accumulate bool, cand tuneCand) {
	j := gemmV2JobFree.Get()
	j.c, j.a, j.b = c, a, b
	j.m, j.k, j.n = m, k, n
	j.accumulate = accumulate
	j.kc, j.nc = cand.kc, cand.nc
	if !cand.pack {
		// Direct-B path (gemmNN candidates only: the transposed variants'
		// effective B is not materialized row-major, so their candidate
		// sets are all-pack).
		parallel.Run(m, gemmMR, j, gemmDirectChunk)
		j.c, j.a, j.b = nil, nil, nil
		gemmV2JobFree.Put(j)
		return
	}
	packB, sweep := gemmPackPanelChunk, gemmSweepChunk
	if cand.strip {
		packB, sweep = gemmPackStripChunk, gemmStripSweepChunk
	}
	if v == gemmNT {
		packB = gemmPackPanelNTChunk
		if cand.strip {
			packB = gemmPackStripNTChunk
		}
	}
	mc := cand.mc
	if mc <= 0 {
		mc = m
	}
	var pa []float32
	if v == gemmTN {
		if maxMC := packBufCap / cand.kc; mc > maxMC {
			mc = maxMC // keep the packed Aᵀ block inside one pooled buffer
		}
		pa = getPackBuf()
		j.pa = pa
	}
	pb := getPackBuf()
	j.pb = pb
	for i0 := 0; i0 < m; i0 += mc {
		j.i0, j.mcur = i0, min(mc, m-i0)
		for k0 := 0; k0 < k; k0 += cand.kc {
			kcur := min(cand.kc, k-k0)
			j.k0, j.kcur = k0, kcur
			if v == gemmTN {
				parallel.Run(j.mcur, gemmPackGrain, j, gemmPackATChunk)
				j.as, j.aBase, j.aStride, j.aOff = pa, i0, kcur, 0
			} else {
				j.as, j.aBase, j.aStride, j.aOff = a, 0, k, k0
			}
			for j0 := 0; j0 < n; j0 += cand.nc {
				j.j0, j.ncur = j0, min(cand.nc, n-j0)
				if v == gemmNT {
					// The NT pack fans out over B rows (panel columns), not
					// panel k-rows: that is the operand's contiguous axis.
					parallel.Run(j.ncur, gemmPackGrain, j, packB)
				} else {
					parallel.Run(kcur, gemmPackGrain, j, packB)
				}
				parallel.Run(j.mcur, gemmMR, j, sweep)
			}
		}
	}
	j.pb = nil
	putPackBuf(pb)
	if pa != nil {
		j.pa = nil
		putPackBuf(pa)
	}
	j.c, j.a, j.b, j.as = nil, nil, nil, nil
	gemmV2JobFree.Put(j)
}

// gemmPackPanelChunk copies panel rows [lo,hi) (relative to k0) of the
// current kc×nc panel of B into the shared buffer, making rows adjacent
// (stride ncur instead of n). Chunks touch disjoint panel rows.
func gemmPackPanelChunk(ctx any, lo, hi int) {
	g := ctx.(*gemmV2Job)
	b, pb := g.b, g.pb
	n, k0, j0, ncur := g.n, g.k0, g.j0, g.ncur
	for kk := lo; kk < hi; kk++ {
		copy(pb[kk*ncur:kk*ncur+ncur], b[(k0+kk)*n+j0:(k0+kk)*n+j0+ncur])
	}
}

// gemmSweepChunk updates C rows [lo,hi) of the current mc block (absolute
// rows i0+lo..i0+hi), cols [j0,j0+ncur) from the shared packed panel with
// the register micro-kernel. A rows come from the job's generalized A
// addressing (A in place, or the packed Aᵀ block for gemmTN). On the first
// k panel of a non-accumulating product it also zeroes its C band (each
// band is touched by exactly one chunk per panel, so the zeroing races
// with nothing).
func gemmSweepChunk(ctx any, lo, hi int) {
	g := ctx.(*gemmV2Job)
	c, as, pb := g.c, g.as, g.pb
	n := g.n
	k0, kcur, j0, ncur := g.k0, g.kcur, g.j0, g.ncur
	aStride := g.aStride
	aOff := (lo+g.i0-g.aBase)*aStride + g.aOff
	lo, hi = lo+g.i0, hi+g.i0
	if k0 == 0 && !g.accumulate {
		for i := lo; i < hi; i++ {
			zeroSlice(c[i*n+j0 : i*n+j0+ncur])
		}
	}
	i := lo
	for ; i+gemmMR <= hi; i += gemmMR {
		gemmMicro4(c, as, pb, aOff, aStride, 0, ncur, i, n, kcur, j0, ncur)
		aOff += gemmMR * aStride
	}
	for ; i < hi; i++ {
		gemmMicro1(c, as, pb, aOff, aStride, 0, ncur, i, n, kcur, j0, ncur)
		aOff += aStride
	}
}

// gemmPackStripChunk packs panel k-rows [lo,hi) (relative to k0) in the v3
// strip layout: the kc×nc panel is stored as a sequence of 8-wide column
// strips, each strip k-major and contiguous — strip js/8 occupies
// pb[js·kcur : js·kcur + kcur·8], element (kk, jj) at offset kk·8 + jj. The
// strip sweep then streams B strictly sequentially. A ragged final strip
// (ncur not a multiple of 8) keeps stride 8; its tail floats are left
// unwritten and never read. Chunks touch disjoint panel rows.
func gemmPackStripChunk(ctx any, lo, hi int) {
	g := ctx.(*gemmV2Job)
	b, pb := g.b, g.pb
	n, k0, j0, ncur, kcur := g.n, g.k0, g.j0, g.ncur, g.kcur
	for kk := lo; kk < hi; kk++ {
		brow := b[(k0+kk)*n+j0 : (k0+kk)*n+j0+ncur]
		for js := 0; js < ncur; js += 8 {
			w := min(8, ncur-js)
			copy(pb[js*kcur+kk*8:js*kcur+kk*8+w], brow[js:js+w])
		}
	}
}

// gemmPackPanelNTChunk packs panel columns [lo,hi) (relative to j0) of the
// effective Bᵀ panel for gemmNT: element (kk, jj) of the panel is
// B[(j0+jj)·k + k0+kk], so each B row is read contiguously along its k
// extent — a near-copy — and scattered into one panel column with stride
// ncur. Chunks touch disjoint panel columns.
func gemmPackPanelNTChunk(ctx any, lo, hi int) {
	g := ctx.(*gemmV2Job)
	b, pb := g.b, g.pb
	k, k0, j0, ncur, kcur := g.k, g.k0, g.j0, g.ncur, g.kcur
	for jj := lo; jj < hi; jj++ {
		brow := b[(j0+jj)*k+k0 : (j0+jj)*k+k0+kcur]
		for kk, v := range brow {
			pb[kk*ncur+jj] = v
		}
	}
}

// gemmPackStripNTChunk is gemmPackPanelNTChunk's strip-layout twin: panel
// column jj lands in strip jj/8 at within-strip offset jj%8 (see
// gemmPackStripChunk for the strip layout), so the contiguous B-row read
// scatters with stride 8. Chunks touch disjoint panel columns.
func gemmPackStripNTChunk(ctx any, lo, hi int) {
	g := ctx.(*gemmV2Job)
	b, pb := g.b, g.pb
	k, k0, j0, kcur := g.k, g.k0, g.j0, g.kcur
	for jj := lo; jj < hi; jj++ {
		brow := b[(j0+jj)*k+k0 : (j0+jj)*k+k0+kcur]
		ps := pb[(jj&^7)*kcur+(jj&7):]
		for kk, v := range brow {
			ps[kk*8] = v
		}
	}
}

// gemmPackATChunk transpose-packs rows [lo,hi) (relative to i0) of the
// current (mc,kc) block of the effective Aᵀ for gemmTN:
// pa[i'·kcur + kk] = a[(k0+kk)·m + i0+i']. The pack walks 32×32 tiles
// (like TransposeInto): within a tile the inner loop reads a source row of
// A contiguously and the 32 destination rows it scatters into stay
// cache-resident, so each source cache line is loaded once — the previous
// per-element gather walked down A's columns and paid a cache line per
// element, a constant that dominated the pack at kc=512 on small-n
// products. A pure relocation either way: the packed bytes, and therefore
// the product, are bitwise-unchanged (pinned by TestGemmPackATTiledGolden).
// Chunks write disjoint packed rows.
func gemmPackATChunk(ctx any, lo, hi int) {
	g := ctx.(*gemmV2Job)
	a, pa := g.a, g.pa
	m, k0, kcur, i0 := g.m, g.k0, g.kcur, g.i0
	const tile = 32
	for ii0 := lo; ii0 < hi; ii0 += tile {
		ii1 := min(ii0+tile, hi)
		for kk0 := 0; kk0 < kcur; kk0 += tile {
			kk1 := min(kk0+tile, kcur)
			for kk := kk0; kk < kk1; kk++ {
				src := a[(k0+kk)*m+i0+ii0 : (k0+kk)*m+i0+ii1]
				dst := pa[ii0*kcur+kk:]
				for j, v := range src {
					dst[j*kcur] = v
				}
			}
		}
	}
}

// gemmStripSweepChunk updates C rows [lo,hi) of the current mc block from a
// strip-packed panel with the v3 strip kernel: per row and 8-wide column
// strip, eight accumulators live in registers across the whole k sweep and
// C round-trips through memory once per panel (the 4-row micro-kernel
// reads and writes C every second k step). B streams sequentially from the
// strip.
//
// Bitwise contract: the accumulators are seeded from C (or zero on the
// first panel of a non-accumulating product) and updated with the same
// `c += a0·b0 + a1·b1` pairwise expression as gemmMicro4, so each element
// sees the identical sequence of float32 operations — staging the partial
// sum in a register instead of memory does not change its value.
func gemmStripSweepChunk(ctx any, lo, hi int) {
	g := ctx.(*gemmV2Job)
	c, as, pb := g.c, g.as, g.pb
	n := g.n
	k0, kcur, j0, ncur := g.k0, g.kcur, g.j0, g.ncur
	aStride := g.aStride
	aOff := (lo+g.i0-g.aBase)*aStride + g.aOff
	lo, hi = lo+g.i0, hi+g.i0
	seed := g.accumulate || k0 > 0
	for i := lo; i < hi; i++ {
		ai := as[aOff : aOff+kcur]
		aOff += aStride
		ci := c[i*n+j0 : i*n+j0+ncur]
		for js := 0; js < ncur; js += 8 {
			bs := pb[js*kcur:]
			if ncur-js >= 8 {
				gemmStrip8(ci[js:js+8], ai, bs, kcur, seed)
			} else {
				gemmStripTail(ci[js:], ai, bs, kcur, seed)
			}
		}
	}
}

// gemmStrip8 updates one C row's 8-wide column strip from a k-major strip
// of the packed panel. The 2-wide k unroll matches gemmMicro4's pairwise
// association exactly; the eight accumulators stay in registers.
func gemmStrip8(ci, ai []float32, bs []float32, kcur int, seed bool) {
	var c0, c1, c2, c3, c4, c5, c6, c7 float32
	_ = ci[7]
	if seed {
		c0, c1, c2, c3 = ci[0], ci[1], ci[2], ci[3]
		c4, c5, c6, c7 = ci[4], ci[5], ci[6], ci[7]
	}
	kk := 0
	for ; kk+2 <= kcur; kk += 2 {
		bp := bs[kk*8 : kk*8+16]
		a0, a1 := ai[kk], ai[kk+1]
		c0 += a0*bp[0] + a1*bp[8]
		c1 += a0*bp[1] + a1*bp[9]
		c2 += a0*bp[2] + a1*bp[10]
		c3 += a0*bp[3] + a1*bp[11]
		c4 += a0*bp[4] + a1*bp[12]
		c5 += a0*bp[5] + a1*bp[13]
		c6 += a0*bp[6] + a1*bp[14]
		c7 += a0*bp[7] + a1*bp[15]
	}
	if kk < kcur {
		bp := bs[kk*8 : kk*8+8]
		a0 := ai[kk]
		c0 += a0 * bp[0]
		c1 += a0 * bp[1]
		c2 += a0 * bp[2]
		c3 += a0 * bp[3]
		c4 += a0 * bp[4]
		c5 += a0 * bp[5]
		c6 += a0 * bp[6]
		c7 += a0 * bp[7]
	}
	ci[0], ci[1], ci[2], ci[3] = c0, c1, c2, c3
	ci[4], ci[5], ci[6], ci[7] = c4, c5, c6, c7
}

// gemmStripTail is the ragged final strip (width 1..7) of gemmStrip8; the
// strip keeps stride 8 in the packed buffer, only width values are read.
func gemmStripTail(ci, ai []float32, bs []float32, kcur int, seed bool) {
	var acc [8]float32
	w := len(ci)
	if seed {
		copy(acc[:w], ci)
	}
	kk := 0
	for ; kk+2 <= kcur; kk += 2 {
		bp := bs[kk*8 : kk*8+8+w]
		a0, a1 := ai[kk], ai[kk+1]
		for j := 0; j < w; j++ {
			acc[j] += a0*bp[j] + a1*bp[8+j]
		}
	}
	if kk < kcur {
		bp := bs[kk*8 : kk*8+w]
		a0 := ai[kk]
		for j := 0; j < w; j++ {
			acc[j] += a0 * bp[j]
		}
	}
	copy(ci, acc[:w])
}

// gemmDirectChunk computes C rows [lo,hi) reading B in place (no panel
// packing): the micro-kernel's inner loops stay contiguous along B rows,
// only the row stride changes from ncur to n. Each chunk runs the full
// blocked panel loop independently — there is no shared state, so the rows
// fan out at micro-kernel granularity.
func gemmDirectChunk(ctx any, lo, hi int) {
	g := ctx.(*gemmV2Job)
	c, a, b := g.c, g.a, g.b
	k, n := g.k, g.n
	if !g.accumulate {
		zeroSlice(c[lo*n : hi*n])
	}
	for k0 := 0; k0 < k; k0 += g.kc {
		kcur := min(g.kc, k-k0)
		for j0 := 0; j0 < n; j0 += g.nc {
			ncur := min(g.nc, n-j0)
			i := lo
			for ; i+gemmMR <= hi; i += gemmMR {
				gemmMicro4(c, a, b, i*k+k0, k, k0*n+j0, n, i, n, kcur, j0, ncur)
			}
			for ; i < hi; i++ {
				gemmMicro1(c, a, b, i*k+k0, k, k0*n+j0, n, i, n, kcur, j0, ncur)
			}
		}
	}
}

// gemmPackedChunk computes C rows [lo,hi) with the packed micro-kernel:
// for each kc×nc panel of B, pack it contiguously, then sweep 4-row strips
// of A with a 2-k-unrolled fused-axpy kernel. B is loaded once per 4 C rows
// (the seed's saxpy loaded it once per row) and the packed panel streams
// from one contiguous block, which is where the speedup comes from.
func gemmPackedChunk(ctx any, lo, hi int) {
	g := ctx.(*gemmJob)
	c, a, b := g.c, g.a, g.b
	k, n := g.k, g.n
	if !g.accumulate {
		zeroSlice(c[lo*n : hi*n])
	}
	pb := getPackBuf()
	for k0 := 0; k0 < k; k0 += gemmKC {
		k1 := min(k0+gemmKC, k)
		kcur := k1 - k0
		for j0 := 0; j0 < n; j0 += gemmNC {
			j1 := min(j0+gemmNC, n)
			ncur := j1 - j0
			// Pack the B panel: rows become adjacent (stride ncur, not n).
			for kk := 0; kk < kcur; kk++ {
				copy(pb[kk*ncur:kk*ncur+ncur], b[(k0+kk)*n+j0:(k0+kk)*n+j1])
			}
			i := lo
			for ; i+gemmMR <= hi; i += gemmMR {
				gemmMicro4(c, a, pb, i*k+k0, k, 0, ncur, i, n, kcur, j0, ncur)
			}
			for ; i < hi; i++ {
				gemmMicro1(c, a, pb, i*k+k0, k, 0, ncur, i, n, kcur, j0, ncur)
			}
		}
	}
	putPackBuf(pb)
}

// gemmMicro4 updates C rows i..i+3, cols [j0,j0+ncur) from kcur rows of B
// starting at bp[bOff] with row stride bStride — a packed panel (bOff=0,
// bStride=ncur) or B read in place (bOff=k0·n+j0, bStride=n); the inner
// loop is contiguous either way. A rows likewise start at a[aOff] with row
// stride aStride — A read in place (aOff=i·k+k0, aStride=k) or a
// transpose-packed block (see gemmSweepChunk). The 2-wide k unroll halves
// C read/write traffic per flop; the four A scalars per k-step live in
// registers across the j loop.
func gemmMicro4(c, a, bp []float32, aOff, aStride, bOff, bStride, i, n, kcur, j0, ncur int) {
	ci0 := c[i*n+j0 : i*n+j0+ncur]
	ci1 := c[(i+1)*n+j0 : (i+1)*n+j0+ncur]
	ci2 := c[(i+2)*n+j0 : (i+2)*n+j0+ncur]
	ci3 := c[(i+3)*n+j0 : (i+3)*n+j0+ncur]
	ai0 := a[aOff : aOff+kcur]
	ai1 := a[aOff+aStride : aOff+aStride+kcur]
	ai2 := a[aOff+2*aStride : aOff+2*aStride+kcur]
	ai3 := a[aOff+3*aStride : aOff+3*aStride+kcur]
	kk := 0
	for ; kk+2 <= kcur; kk += 2 {
		o := bOff + kk*bStride
		b0 := bp[o : o+ncur]
		b1 := bp[o+bStride : o+bStride+ncur]
		a00, a01 := ai0[kk], ai0[kk+1]
		a10, a11 := ai1[kk], ai1[kk+1]
		a20, a21 := ai2[kk], ai2[kk+1]
		a30, a31 := ai3[kk], ai3[kk+1]
		_ = b1[len(b0)-1]
		_ = ci0[len(b0)-1]
		_ = ci1[len(b0)-1]
		_ = ci2[len(b0)-1]
		_ = ci3[len(b0)-1]
		for j, v0 := range b0 {
			v1 := b1[j]
			ci0[j] += a00*v0 + a01*v1
			ci1[j] += a10*v0 + a11*v1
			ci2[j] += a20*v0 + a21*v1
			ci3[j] += a30*v0 + a31*v1
		}
	}
	if kk < kcur {
		o := bOff + kk*bStride
		b0 := bp[o : o+ncur]
		a0, a1, a2, a3 := ai0[kk], ai1[kk], ai2[kk], ai3[kk]
		_ = ci0[len(b0)-1]
		_ = ci1[len(b0)-1]
		_ = ci2[len(b0)-1]
		_ = ci3[len(b0)-1]
		for j, v := range b0 {
			ci0[j] += a0 * v
			ci1[j] += a1 * v
			ci2[j] += a2 * v
			ci3[j] += a3 * v
		}
	}
}

// gemmMicro1 is the single-row remainder of gemmMicro4.
func gemmMicro1(c, a, bp []float32, aOff, aStride, bOff, bStride, i, n, kcur, j0, ncur int) {
	ci := c[i*n+j0 : i*n+j0+ncur]
	ai := a[aOff : aOff+kcur]
	kk := 0
	for ; kk+2 <= kcur; kk += 2 {
		o := bOff + kk*bStride
		b0 := bp[o : o+ncur]
		b1 := bp[o+bStride : o+bStride+ncur]
		a0, a1 := ai[kk], ai[kk+1]
		_ = b1[len(b0)-1]
		_ = ci[len(b0)-1]
		for j, v0 := range b0 {
			ci[j] += a0*v0 + a1*b1[j]
		}
	}
	if kk < kcur {
		o := bOff + kk*bStride
		b0 := bp[o : o+ncur]
		a0 := ai[kk]
		_ = ci[len(b0)-1]
		for j, v := range b0 {
			ci[j] += a0 * v
		}
	}
}

// gemmSaxpyChunk is the seed kernel, kept for small/skinny shapes (and as
// the benchmark baseline): k-blocked i-k-j loops whose inner loop is a
// saxpy over contiguous rows of B and C.
func gemmSaxpyChunk(ctx any, lo, hi int) {
	g := ctx.(*gemmJob)
	c, a, b := g.c, g.a, g.b
	k, n := g.k, g.n
	if !g.accumulate {
		zeroSlice(c[lo*n : hi*n])
	}
	const blockM, blockK = 64, 128
	for i0 := lo; i0 < hi; i0 += blockM {
		i1 := min(i0+blockM, hi)
		for k0 := 0; k0 < k; k0 += blockK {
			k1 := min(k0+blockK, k)
			for i := i0; i < i1; i++ {
				ci := c[i*n : (i+1)*n]
				ai := a[i*k : (i+1)*k]
				for kk := k0; kk < k1; kk++ {
					av := ai[kk]
					if av == 0 {
						continue
					}
					saxpy(ci, b[kk*n:kk*n+n], av)
				}
			}
		}
	}
}

// saxpy computes ci += av * bk elementwise; split out so the compiler keeps
// the loop tight and bounds-check eliminated.
func saxpy(ci, bk []float32, av float32) {
	_ = ci[len(bk)-1]
	for j := range bk {
		ci[j] += av * bk[j]
	}
}

func zeroSlice(s []float32) {
	for i := range s {
		s[i] = 0
	}
}

// MatMulT computes C = A·Bᵀ for A (m,k) and B (n,k) without materializing
// the transpose. Used for weight-gradient and input-gradient passes.
func MatMulT(a, b *Tensor) *Tensor {
	m, k, n := gemmTDims(a, b)
	c := New(m, n)
	gemmT(c.data, a.data, b.data, m, k, n, false)
	return c
}

// MatMulTInto computes C (+)= A·Bᵀ into an existing (m,n) tensor without
// allocating.
func MatMulTInto(c, a, b *Tensor, accumulate bool) {
	m, k, n := gemmTDims(a, b)
	if c.Len() != m*n {
		panic(fmt.Sprintf("tensor: MatMulTInto output has %d elements, want %d", c.Len(), m*n))
	}
	gemmT(c.data, a.data, b.data, m, k, n, accumulate)
}

func gemmTDims(a, b *Tensor) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulT requires rank-2 tensors")
	}
	m, k = a.shape[0], a.shape[1]
	n = b.shape[0]
	if b.shape[1] != k {
		panic(fmt.Sprintf("tensor: MatMulT inner dimensions %d and %d differ", k, b.shape[1]))
	}
	return m, k, n
}

// gemmT dispatches C (+)= A·Bᵀ. Large shapes run the shared-pack v2/v3
// pipeline with per-shape autotuned blocking (the gemmNT variant
// transpose-packs B panels); small or skinny shapes keep the PR-1 4×4
// register tiles, whose tile setup cost fits them better.
func gemmT(c, a, b []float32, m, k, n int, accumulate bool) {
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		if !accumulate {
			zeroSlice(c[:m*n])
		}
		return
	}
	if m >= gemmMR && n >= 16 && k >= 16 {
		gemmTuned(gemmNT, c, a, b, m, k, n, accumulate)
		return
	}
	j := getGemmJob()
	j.c, j.a, j.b = c, a, b
	j.m, j.k, j.n = m, k, n
	j.accumulate = accumulate
	parallel.Run(m, gemmGrain, j, gemmTChunk)
	putGemmJob(j)
}

// gemmTChunk computes C rows [lo,hi) of C = A·Bᵀ with 4×4 register tiles:
// both operands are read along contiguous k-rows, 16 fused multiply-adds
// per 8 loads (the seed's dot kernel did 1 per 2). k is blocked so the
// four A rows and four B rows of a tile stay L1-resident. Kept as the
// small-shape path and the benchmark baseline the autotuned pipeline is
// gated against (BenchmarkMatMulT/tiled).
func gemmTChunk(ctx any, lo, hi int) {
	g := ctx.(*gemmJob)
	c, a, b := g.c, g.a, g.b
	k, n := g.k, g.n
	if !g.accumulate {
		zeroSlice(c[lo*n : hi*n])
	}
	for k0 := 0; k0 < k; k0 += tiledKC {
		k1 := min(k0+tiledKC, k)
		kcur := k1 - k0
		i := lo
		for ; i+4 <= hi; i += 4 {
			ai0 := a[i*k+k0 : i*k+k0+kcur]
			ai1 := a[(i+1)*k+k0 : (i+1)*k+k0+kcur]
			ai2 := a[(i+2)*k+k0 : (i+2)*k+k0+kcur]
			ai3 := a[(i+3)*k+k0 : (i+3)*k+k0+kcur]
			jj := 0
			for ; jj+4 <= n; jj += 4 {
				bj0 := b[jj*k+k0 : jj*k+k0+kcur]
				bj1 := b[(jj+1)*k+k0 : (jj+1)*k+k0+kcur]
				bj2 := b[(jj+2)*k+k0 : (jj+2)*k+k0+kcur]
				bj3 := b[(jj+3)*k+k0 : (jj+3)*k+k0+kcur]
				var s00, s01, s02, s03 float32
				var s10, s11, s12, s13 float32
				var s20, s21, s22, s23 float32
				var s30, s31, s32, s33 float32
				_ = bj0[len(ai0)-1]
				_ = bj1[len(ai0)-1]
				_ = bj2[len(ai0)-1]
				_ = bj3[len(ai0)-1]
				_ = ai1[len(ai0)-1]
				_ = ai2[len(ai0)-1]
				_ = ai3[len(ai0)-1]
				for kk, a0 := range ai0 {
					b0, b1, b2, b3 := bj0[kk], bj1[kk], bj2[kk], bj3[kk]
					a1, a2, a3 := ai1[kk], ai2[kk], ai3[kk]
					s00 += a0 * b0
					s01 += a0 * b1
					s02 += a0 * b2
					s03 += a0 * b3
					s10 += a1 * b0
					s11 += a1 * b1
					s12 += a1 * b2
					s13 += a1 * b3
					s20 += a2 * b0
					s21 += a2 * b1
					s22 += a2 * b2
					s23 += a2 * b3
					s30 += a3 * b0
					s31 += a3 * b1
					s32 += a3 * b2
					s33 += a3 * b3
				}
				c[i*n+jj] += s00
				c[i*n+jj+1] += s01
				c[i*n+jj+2] += s02
				c[i*n+jj+3] += s03
				c[(i+1)*n+jj] += s10
				c[(i+1)*n+jj+1] += s11
				c[(i+1)*n+jj+2] += s12
				c[(i+1)*n+jj+3] += s13
				c[(i+2)*n+jj] += s20
				c[(i+2)*n+jj+1] += s21
				c[(i+2)*n+jj+2] += s22
				c[(i+2)*n+jj+3] += s23
				c[(i+3)*n+jj] += s30
				c[(i+3)*n+jj+1] += s31
				c[(i+3)*n+jj+2] += s32
				c[(i+3)*n+jj+3] += s33
			}
			for ; jj < n; jj++ {
				bj := b[jj*k+k0 : jj*k+k0+kcur]
				c[i*n+jj] += dot(ai0, bj)
				c[(i+1)*n+jj] += dot(ai1, bj)
				c[(i+2)*n+jj] += dot(ai2, bj)
				c[(i+3)*n+jj] += dot(ai3, bj)
			}
		}
		for ; i < hi; i++ {
			ai := a[i*k+k0 : i*k+k0+kcur]
			for jj := 0; jj < n; jj++ {
				c[i*n+jj] += dot(ai, b[jj*k+k0:jj*k+k0+kcur])
			}
		}
	}
}

// TMatMul computes C = Aᵀ·B for A (k,m) and B (k,n) without materializing
// the transpose.
func TMatMul(a, b *Tensor) *Tensor {
	k, m, n := tGemmDims(a, b)
	c := New(m, n)
	tGemm(c.data, a.data, b.data, m, k, n, false)
	return c
}

// TMatMulInto computes C (+)= Aᵀ·B into an existing (m,n) tensor without
// allocating.
func TMatMulInto(c, a, b *Tensor, accumulate bool) {
	k, m, n := tGemmDims(a, b)
	if c.Len() != m*n {
		panic(fmt.Sprintf("tensor: TMatMulInto output has %d elements, want %d", c.Len(), m*n))
	}
	tGemm(c.data, a.data, b.data, m, k, n, accumulate)
}

func tGemmDims(a, b *Tensor) (k, m, n int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: TMatMul requires rank-2 tensors")
	}
	k, m = a.shape[0], a.shape[1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: TMatMul inner dimensions %d and %d differ", k, b.shape[0]))
	}
	n = b.shape[1]
	return k, m, n
}

// tGemm dispatches C (+)= Aᵀ·B. Large shapes run the shared-pack v2/v3
// pipeline with per-shape autotuned blocking (the gemmTN variant
// transpose-packs A blocks; B packs exactly as the forward product); small
// or skinny shapes keep the PR-1 4×4 register tiles.
func tGemm(c, a, b []float32, m, k, n int, accumulate bool) {
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		if !accumulate {
			zeroSlice(c[:m*n])
		}
		return
	}
	if m >= gemmMR && n >= 16 && k >= 16 {
		gemmTuned(gemmTN, c, a, b, m, k, n, accumulate)
		return
	}
	j := getGemmJob()
	j.c, j.a, j.b = c, a, b
	j.m, j.k, j.n = m, k, n
	j.accumulate = accumulate
	parallel.Run(m, gemmGrain, j, tGemmChunk)
	putGemmJob(j)
}

// tGemmChunk computes C rows [lo,hi) of C = Aᵀ·B with 4×4 register tiles.
// For each k step the tile loads 4 contiguous A values and 4 contiguous B
// values (both along the rows of the k-major operands) and performs 16
// fused multiply-adds; k is blocked so a tile's A column slab stays cached
// across the j sweep. Kept as the small-shape path and the benchmark
// baseline the autotuned pipeline is gated against (BenchmarkTMatMul/tiled).
func tGemmChunk(ctx any, lo, hi int) {
	g := ctx.(*gemmJob)
	c, a, b := g.c, g.a, g.b
	k, n := g.k, g.n
	m := g.m
	if !g.accumulate {
		zeroSlice(c[lo*n : hi*n])
	}
	for k0 := 0; k0 < k; k0 += tiledKC {
		k1 := min(k0+tiledKC, k)
		i := lo
		for ; i+4 <= hi; i += 4 {
			jj := 0
			for ; jj+4 <= n; jj += 4 {
				var s00, s01, s02, s03 float32
				var s10, s11, s12, s13 float32
				var s20, s21, s22, s23 float32
				var s30, s31, s32, s33 float32
				for kk := k0; kk < k1; kk++ {
					ar := a[kk*m+i : kk*m+i+4]
					br := b[kk*n+jj : kk*n+jj+4]
					a0, a1, a2, a3 := ar[0], ar[1], ar[2], ar[3]
					b0, b1, b2, b3 := br[0], br[1], br[2], br[3]
					s00 += a0 * b0
					s01 += a0 * b1
					s02 += a0 * b2
					s03 += a0 * b3
					s10 += a1 * b0
					s11 += a1 * b1
					s12 += a1 * b2
					s13 += a1 * b3
					s20 += a2 * b0
					s21 += a2 * b1
					s22 += a2 * b2
					s23 += a2 * b3
					s30 += a3 * b0
					s31 += a3 * b1
					s32 += a3 * b2
					s33 += a3 * b3
				}
				c[i*n+jj] += s00
				c[i*n+jj+1] += s01
				c[i*n+jj+2] += s02
				c[i*n+jj+3] += s03
				c[(i+1)*n+jj] += s10
				c[(i+1)*n+jj+1] += s11
				c[(i+1)*n+jj+2] += s12
				c[(i+1)*n+jj+3] += s13
				c[(i+2)*n+jj] += s20
				c[(i+2)*n+jj+1] += s21
				c[(i+2)*n+jj+2] += s22
				c[(i+2)*n+jj+3] += s23
				c[(i+3)*n+jj] += s30
				c[(i+3)*n+jj+1] += s31
				c[(i+3)*n+jj+2] += s32
				c[(i+3)*n+jj+3] += s33
			}
			for ; jj < n; jj++ {
				var s0, s1, s2, s3 float32
				for kk := k0; kk < k1; kk++ {
					ar := a[kk*m+i : kk*m+i+4]
					bv := b[kk*n+jj]
					s0 += ar[0] * bv
					s1 += ar[1] * bv
					s2 += ar[2] * bv
					s3 += ar[3] * bv
				}
				c[i*n+jj] += s0
				c[(i+1)*n+jj] += s1
				c[(i+2)*n+jj] += s2
				c[(i+3)*n+jj] += s3
			}
		}
		for ; i < hi; i++ {
			for jj := 0; jj < n; jj++ {
				var s float32
				for kk := k0; kk < k1; kk++ {
					s += a[kk*m+i] * b[kk*n+jj]
				}
				c[i*n+jj] += s
			}
		}
	}
}

func dot(a, b []float32) float32 {
	var s float32
	_ = b[len(a)-1]
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Transpose returns a new tensor that is the transpose of a rank-2 tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic("tensor: Transpose requires rank 2")
	}
	t := New(a.shape[1], a.shape[0])
	TransposeInto(t, a)
	return t
}

// TransposeInto writes the transpose of rank-2 a into t (shape (n,m) for a
// (m,n)) without allocating, parallelized over row tiles.
func TransposeInto(t, a *Tensor) {
	if a.Rank() != 2 {
		panic("tensor: Transpose requires rank 2")
	}
	m, n := a.shape[0], a.shape[1]
	if t.Len() != m*n {
		panic(fmt.Sprintf("tensor: TransposeInto output has %d elements, want %d", t.Len(), m*n))
	}
	j := getGemmJob()
	j.c, j.a = t.data, a.data
	j.m, j.n = m, n
	// Parallel over 32-row tiles: each chunk writes disjoint t columns.
	parallel.Run((m+transTile-1)/transTile, 1, j, transposeChunk)
	putGemmJob(j)
}

const transTile = 32

func transposeChunk(ctx any, lo, hi int) {
	g := ctx.(*gemmJob)
	t, a := g.c, g.a
	m, n := g.m, g.n
	for ti := lo; ti < hi; ti++ {
		i0 := ti * transTile
		i1 := min(i0+transTile, m)
		for j0 := 0; j0 < n; j0 += transTile {
			j1 := min(j0+transTile, n)
			for i := i0; i < i1; i++ {
				for j := j0; j < j1; j++ {
					t[j*m+i] = a[i*n+j]
				}
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
