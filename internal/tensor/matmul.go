package tensor

import "fmt"

// GEMM kernel block sizes, sized so a kc×nc panel of B plus an mc-row strip
// of A stay L2-resident on commodity cores.
const (
	blockM = 64
	blockK = 128
)

// MatMul computes C = A·B for A of shape (m,k) and B of shape (k,n),
// returning a new (m,n) tensor. This is the dense kernel standing in for
// cuBLAS: SAMO's whole design rests on the observation that this path is far
// faster than sparse kernels at DL sparsities, so θ16 stays dense.
func MatMul(a, b *Tensor) *Tensor {
	m, k, n := gemmDims(a, b)
	c := New(m, n)
	gemm(c.data, a.data, b.data, m, k, n, false)
	return c
}

// MatMulInto computes C = A·B into an existing (m,n) tensor, avoiding the
// allocation. If accumulate is true it computes C += A·B.
func MatMulInto(c, a, b *Tensor, accumulate bool) {
	m, k, n := gemmDims(a, b)
	if c.Len() != m*n {
		panic(fmt.Sprintf("tensor: MatMulInto output has %d elements, want %d", c.Len(), m*n))
	}
	gemm(c.data, a.data, b.data, m, k, n, accumulate)
}

func gemmDims(a, b *Tensor) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMul requires rank-2 tensors")
	}
	m, k = a.shape[0], a.shape[1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: MatMul inner dimensions %d and %d differ", k, b.shape[0]))
	}
	n = b.shape[1]
	return m, k, n
}

// gemm is a parallel, k-blocked, write-accumulating row-major GEMM using an
// i-k-j loop order so the inner loop is a saxpy over contiguous rows of B
// and C (good auto-vectorization, unit stride everywhere).
func gemm(c, a, b []float32, m, k, n int, accumulate bool) {
	if m == 0 || n == 0 {
		return
	}
	if !accumulate {
		for i := range c[:m*n] {
			c[i] = 0
		}
	}
	if k == 0 {
		return
	}
	// Parallelize over row blocks of A/C; each worker owns disjoint C rows.
	parallelFor(m, blockM/4, func(lo, hi int) {
		for i0 := lo; i0 < hi; i0 += blockM {
			i1 := min(i0+blockM, hi)
			for k0 := 0; k0 < k; k0 += blockK {
				k1 := min(k0+blockK, k)
				for i := i0; i < i1; i++ {
					ci := c[i*n : (i+1)*n]
					ai := a[i*k : (i+1)*k]
					for kk := k0; kk < k1; kk++ {
						av := ai[kk]
						if av == 0 {
							continue
						}
						bk := b[kk*n : kk*n+n]
						saxpy(ci, bk, av)
					}
				}
			}
		}
	})
}

// saxpy computes ci += av * bk elementwise; split out so the compiler keeps
// the loop tight and bounds-check eliminated.
func saxpy(ci, bk []float32, av float32) {
	_ = ci[len(bk)-1]
	for j := range bk {
		ci[j] += av * bk[j]
	}
}

// MatMulT computes C = A·Bᵀ for A (m,k) and B (n,k) without materializing
// the transpose. Used for weight-gradient and input-gradient passes.
func MatMulT(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMulT requires rank-2 tensors")
	}
	m, k := a.shape[0], a.shape[1]
	n := b.shape[0]
	if b.shape[1] != k {
		panic(fmt.Sprintf("tensor: MatMulT inner dimensions %d and %d differ", k, b.shape[1]))
	}
	c := New(m, n)
	ad, bd, cd := a.data, b.data, c.data
	parallelFor(m, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := ad[i*k : (i+1)*k]
			ci := cd[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				bj := bd[j*k : j*k+k]
				ci[j] = dot(ai, bj)
			}
		}
	})
	return c
}

// TMatMul computes C = Aᵀ·B for A (k,m) and B (k,n) without materializing
// the transpose.
func TMatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: TMatMul requires rank-2 tensors")
	}
	k, m := a.shape[0], a.shape[1]
	if b.shape[0] != k {
		panic(fmt.Sprintf("tensor: TMatMul inner dimensions %d and %d differ", k, b.shape[0]))
	}
	n := b.shape[1]
	c := New(m, n)
	ad, bd, cd := a.data, b.data, c.data
	// C[i,j] = Σ_kk A[kk,i]·B[kk,j]: accumulate row panels; parallel over
	// output rows i to keep writes disjoint.
	parallelFor(m, 8, func(lo, hi int) {
		for kk := 0; kk < k; kk++ {
			ak := ad[kk*m : kk*m+m]
			bk := bd[kk*n : kk*n+n]
			for i := lo; i < hi; i++ {
				av := ak[i]
				if av == 0 {
					continue
				}
				saxpy(cd[i*n:(i+1)*n], bk, av)
			}
		}
	})
	return c
}

func dot(a, b []float32) float32 {
	var s float32
	_ = b[len(a)-1]
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Transpose returns a new tensor that is the transpose of a rank-2 tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic("tensor: Transpose requires rank 2")
	}
	m, n := a.shape[0], a.shape[1]
	t := New(n, m)
	const tile = 32
	for i0 := 0; i0 < m; i0 += tile {
		i1 := min(i0+tile, m)
		for j0 := 0; j0 < n; j0 += tile {
			j1 := min(j0+tile, n)
			for i := i0; i < i1; i++ {
				for j := j0; j < j1; j++ {
					t.data[j*m+i] = a.data[i*n+j]
				}
			}
		}
	}
	return t
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
