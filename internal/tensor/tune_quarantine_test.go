package tensor

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCorruptTuneTableQuarantined pins the graceful-degradation contract: a
// damaged persisted tune table must never wedge startup. The startup load
// renames it to .corrupt, reports once, and continues with an empty table.
func TestCorruptTuneTableQuarantined(t *testing.T) {
	ResetTuneTable()
	defer ResetTuneTable()
	dir := t.TempDir()
	path := filepath.Join(dir, "gemm_tune.json")

	// A truncated file: valid JSON prefix, cut mid-document.
	if err := os.WriteFile(path, []byte(`{"entries":[{"v":0,"mb":3,`), 0o644); err != nil {
		t.Fatal(err)
	}
	msg := startupLoadTuneTable(path, true)
	if !strings.Contains(msg, "quarantined") {
		t.Fatalf("startup load of truncated table: %q, want quarantine message", msg)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt table still in place: next startup would trip on it again")
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	// Second startup: the file is gone, so nothing to report and nothing
	// to load — the table simply re-probes.
	if msg := startupLoadTuneTable(path, true); msg != "" {
		t.Fatalf("startup after quarantine must be silent, got %q", msg)
	}
}

func TestMissingTuneTableIsSilent(t *testing.T) {
	ResetTuneTable()
	defer ResetTuneTable()
	path := filepath.Join(t.TempDir(), "absent.json")
	for _, explicit := range []bool{false, true} {
		if msg := startupLoadTuneTable(path, explicit); msg != "" {
			t.Fatalf("missing table (explicit=%v) must be silent, got %q", explicit, msg)
		}
	}
}
