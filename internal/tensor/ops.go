package tensor

import (
	"fmt"
	"math"
	"sync/atomic"

	"github.com/sparse-dl/samo/internal/parallel"
)

// Add computes dst += src elementwise.
func Add(dst, src *Tensor) {
	binCheck(dst, src)
	d, s := dst.data, src.data
	for i := range d {
		d[i] += s[i]
	}
}

// Sub computes dst -= src elementwise.
func Sub(dst, src *Tensor) {
	binCheck(dst, src)
	d, s := dst.data, src.data
	for i := range d {
		d[i] -= s[i]
	}
}

// Mul computes dst *= src elementwise (Hadamard product).
func Mul(dst, src *Tensor) {
	binCheck(dst, src)
	d, s := dst.data, src.data
	for i := range d {
		d[i] *= s[i]
	}
}

// Scale computes t *= a.
func Scale(t *Tensor, a float32) {
	d := t.data
	for i := range d {
		d[i] *= a
	}
}

// Axpy computes dst += a*src elementwise.
func Axpy(dst, src *Tensor, a float32) {
	binCheck(dst, src)
	d, s := dst.data, src.data
	for i := range d {
		d[i] += a * s[i]
	}
}

func binCheck(dst, src *Tensor) {
	if len(dst.data) != len(src.data) {
		panic(fmt.Sprintf("tensor: elementwise op on %d vs %d elements", len(dst.data), len(src.data)))
	}
}

// AddBias adds a length-n bias vector to every row of an (m,n) tensor.
func AddBias(t, bias *Tensor) {
	if t.Rank() != 2 || bias.Rank() != 1 || t.shape[1] != bias.shape[0] {
		panic("tensor: AddBias requires (m,n) tensor and length-n bias")
	}
	n := t.shape[1]
	b := bias.data
	for i := 0; i < t.shape[0]; i++ {
		row := t.data[i*n : (i+1)*n]
		for j := range row {
			row[j] += b[j]
		}
	}
}

// SumRows accumulates the rows of an (m,n) tensor into a length-n vector
// (the bias-gradient reduction).
func SumRows(t *Tensor) *Tensor {
	if t.Rank() != 2 {
		panic("tensor: SumRows requires rank 2")
	}
	out := New(t.shape[1])
	SumRowsInto(out, t, true)
	return out
}

// SumRowsInto accumulates the rows of an (m,n) tensor into a length-n dst
// without allocating. If accumulate is false dst is overwritten.
func SumRowsInto(dst, t *Tensor, accumulate bool) {
	if t.Rank() != 2 || len(dst.data) != t.shape[1] {
		panic("tensor: SumRowsInto requires (m,n) tensor and length-n dst")
	}
	n := t.shape[1]
	d := dst.data
	if !accumulate {
		zeroSlice(d)
	}
	for i := 0; i < t.shape[0]; i++ {
		row := t.data[i*n : (i+1)*n]
		_ = d[len(row)-1]
		for j := range row {
			d[j] += row[j]
		}
	}
}

// Sum returns the sum of all elements (float64 accumulator for stability).
func Sum(t *Tensor) float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// Dot returns the inner product of two equal-length tensors.
func Dot(a, b *Tensor) float64 {
	binCheck(a, b)
	var s float64
	for i := range a.data {
		s += float64(a.data[i]) * float64(b.data[i])
	}
	return s
}

// Norm2 returns the Euclidean norm of t.
func Norm2(t *Tensor) float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute value in t.
func MaxAbs(t *Tensor) float32 {
	var m float32
	for _, v := range t.data {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// ReLU applies max(0,x) in place and returns a mask tensor (1 where active)
// for the backward pass.
func ReLU(t *Tensor) *Tensor {
	mask := New(t.shape...)
	ReLUWithMask(t, mask)
	return mask
}

// ReLUWithMask applies max(0,x) to t in place, writing the activation mask
// (1 where active, 0 elsewhere) into the caller-provided mask tensor.
func ReLUWithMask(t, mask *Tensor) {
	binCheck(t, mask)
	d, m := t.data, mask.data
	_ = m[len(d)-1]
	for i, v := range d {
		if v > 0 {
			m[i] = 1
		} else {
			m[i] = 0
			d[i] = 0
		}
	}
}

// ReLUInPlace applies max(0,x) to t without producing a mask (eval mode).
func ReLUInPlace(t *Tensor) {
	for i, v := range t.data {
		if v < 0 {
			t.data[i] = 0
		}
	}
}

// GELUInPlace applies GELU to t without saving pre-activations (eval mode).
func GELUInPlace(t *Tensor) {
	for i, x := range t.data {
		t.data[i] = geluScalar(x)
	}
}

// GELU applies the tanh-approximate Gaussian error linear unit in place and
// returns the pre-activation values needed by GELUBackward.
func GELU(t *Tensor) *Tensor {
	pre := t.Clone()
	for i, x := range t.data {
		t.data[i] = geluScalar(x)
	}
	return pre
}

// GELUWithPre applies GELU to t in place after copying the pre-activations
// into the caller-provided tensor (the allocation-free form of GELU).
func GELUWithPre(t, pre *Tensor) {
	binCheck(t, pre)
	copy(pre.data, t.data)
	for i, x := range t.data {
		t.data[i] = geluScalar(x)
	}
}

func geluScalar(x float32) float32 {
	const c = 0.7978845608028654 // sqrt(2/pi)
	x64 := float64(x)
	return float32(0.5 * x64 * (1 + math.Tanh(c*(x64+0.044715*x64*x64*x64))))
}

// GELUBackward multiplies grad (in place) by dGELU/dx evaluated at pre.
func GELUBackward(grad, pre *Tensor) {
	binCheck(grad, pre)
	const c = 0.7978845608028654
	for i, x := range pre.data {
		x64 := float64(x)
		u := c * (x64 + 0.044715*x64*x64*x64)
		t := math.Tanh(u)
		du := c * (1 + 3*0.044715*x64*x64)
		d := 0.5*(1+t) + 0.5*x64*(1-t*t)*du
		grad.data[i] *= float32(d)
	}
}

// SoftmaxRows applies a numerically stable softmax to each row of an (m,n)
// tensor in place. Degenerate shapes are no-ops like every other op: an
// (m,0) tensor has only empty rows (there is nothing to normalize), so it
// passes through instead of panicking on the max scan.
func SoftmaxRows(t *Tensor) {
	if t.Rank() != 2 {
		panic("tensor: SoftmaxRows requires rank 2")
	}
	n := t.shape[1]
	if n == 0 {
		return
	}
	for i := 0; i < t.shape[0]; i++ {
		row := t.data[i*n : (i+1)*n]
		max := row[0]
		for _, v := range row[1:] {
			if v > max {
				max = v
			}
		}
		var sum float64
		for j, v := range row {
			e := float32(math.Exp(float64(v - max)))
			row[j] = e
			sum += float64(e)
		}
		inv := float32(1 / sum)
		for j := range row {
			row[j] *= inv
		}
	}
}

// ArgmaxRows returns the index of the maximum in each row of an (m,n)
// tensor. Zero-width rows yield index 0 (no element compares higher).
func ArgmaxRows(t *Tensor) []int {
	if t.Rank() != 2 {
		panic("tensor: ArgmaxRows requires rank 2")
	}
	n := t.shape[1]
	out := make([]int, t.shape[0])
	for i := 0; i < t.shape[0]; i++ {
		row := t.data[i*n : (i+1)*n]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}

// HasNonFinite reports whether t contains an Inf or NaN — the overflow check
// that drives dynamic loss scaling.
func HasNonFinite(t *Tensor) bool { return HasNonFiniteSlice(t.data) }

// nonFiniteGrain is the minimum elements per parallel chunk of the
// non-finite scan: the per-element work is two integer ops, so fine-grained
// fan-out would be all dispatch overhead. Slices at or under one grain run
// serially on the caller.
const nonFiniteGrain = 16384

// nonFiniteJob carries one scan to the pool workers; the atomic flag both
// collects the verdict and lets later chunks exit early once any worker
// has found a non-finite value.
type nonFiniteJob struct {
	data  []float32
	found atomic.Bool
}

var nonFiniteJobFree parallel.Pool[nonFiniteJob]

// HasNonFiniteSlice is HasNonFinite on a raw slice — the form the
// mixed-precision state manager calls once per parameter per step on the
// captured fp16 gradients. Large slices are scanned in chunks on the
// worker pool with an early exit through a shared atomic flag; the scan is
// allocation-free (pooled job, pooled dispatch), which keeps the fp16
// train-step zero-alloc contract intact.
func HasNonFiniteSlice(s []float32) bool {
	if len(s) <= nonFiniteGrain {
		return hasNonFiniteSerial(s)
	}
	j := nonFiniteJobFree.Get()
	j.data = s
	j.found.Store(false)
	parallel.Run(len(s), nonFiniteGrain, j, hasNonFiniteChunk)
	found := j.found.Load()
	j.data = nil
	nonFiniteJobFree.Put(j)
	return found
}

func hasNonFiniteChunk(ctx any, lo, hi int) {
	g := ctx.(*nonFiniteJob)
	// Re-check the shared flag between sub-blocks so a chunk abandons its
	// scan soon after any worker finds a hit, without paying an atomic
	// load per element.
	const block = 8192
	for ; lo < hi; lo += block {
		if g.found.Load() {
			return
		}
		end := lo + block
		if end > hi {
			end = hi
		}
		if hasNonFiniteSerial(g.data[lo:end]) {
			g.found.Store(true)
			return
		}
	}
}

// hasNonFiniteSerial is the serial reference scan (and the small-slice
// path): a float32 is Inf or NaN exactly when its exponent bits are all
// ones, one mask-compare per element.
func hasNonFiniteSerial(s []float32) bool {
	for _, v := range s {
		if math.Float32bits(v)&0x7f800000 == 0x7f800000 {
			return true
		}
	}
	return false
}
