package tensor

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/bits"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// GEMM autotuner: a per-shape table of blocking parameters for the shared-
// pack v2 kernel. Buckets are keyed by (op variant, ceil-log2(m, k, n)):
// the forward product and the two transposed backward products (MatMulT,
// TMatMul) tune independently, because their packing costs differ even at
// identical shapes. Training reuses the same handful of GEMM shapes every
// microbatch, so the table stays tiny and every steady-state lookup is a
// read-locked map hit with no allocation. The first few calls on a new
// bucket each time one candidate blocking (the probe does the real
// multiplication, so no work is wasted); once every candidate has enough
// samples the winner is frozen into the entry and all later calls take it
// branch-free.
//
// Decisions persist by default: whenever a bucket first freezes, a
// background goroutine writes the table to TunePath() — SAMO_GEMM_TUNE if
// set, else <user cache dir>/samo/gemm_tune.json — and init pre-loads that
// file, so later processes skip the probe phase for every bucket a
// long-enough earlier run managed to save (best-effort: a process exiting
// within the save's short coalescing window loses that write and simply
// re-probes next time). SAMO_GEMM_TUNE=off disables persistence;
// SaveTuneTable and LoadTuneTable remain for explicit control. Loading a
// stale or foreign table is always safe: every candidate is
// bitwise-identical, so the worst case is a suboptimal blocking until
// drift probes correct it.

// tuneCand is one candidate blocking: pack=true runs the BLIS-style shared
// panel pipeline with kc×nc packed panels; pack=false runs the direct-B
// micro-kernel (no packing), which wins when m is so small that a panel
// would be swept only once or twice and the pack traffic cannot amortize.
// strip=true packs the panel in 8-wide k-major column strips and sweeps it
// with the v3 strip kernel (eight register accumulators per C row, one C
// memory round-trip per panel). mc>0 blocks the C rows: the panel loop —
// including the pack — reruns per mc-row block, trading repeated pack
// traffic for a cache-resident C block on tall m.
type tuneCand struct {
	kc, nc int
	pack   bool
	strip  bool
	mc     int
}

// tuneCands are the probe candidates. The first entry is the v1 default
// blocking (kc·nc·4 = 128 KiB, L2-resident); the next two trade panel
// height against width (taller panels amortize the sweep's C row traffic
// over more k, wider panels cut the number of j0 passes over A); the
// fourth skips packing entirely for pack-dominated small-m shapes; the
// fifth probes mc row blocking for tall-m shapes; and the last two are the
// v3 strip kernel at narrow and tall blockings. Every kc is even and every
// nc a multiple of 8, which is what keeps all candidates bitwise-identical
// (see gemmV2) and strip panels inside packBufCap.
var tuneCands = [...]tuneCand{
	{kc: 256, nc: 128, pack: true},
	{kc: 128, nc: 256, pack: true},
	{kc: 512, nc: 256, pack: true},
	{kc: 256, nc: 512, pack: false},
	{kc: 256, nc: 128, pack: true, mc: 128},
	{kc: 256, nc: 128, pack: true, strip: true},
	{kc: 512, nc: 256, pack: true, strip: true},
}

// tuneCandsT are the probe candidates for the transposed variants (gemmNT
// and gemmTN). They mirror tuneCands minus the direct-B entry: the
// transposed products' effective B is never materialized row-major, so
// every candidate packs (the pack IS the transpose). Same invariants: kc
// even, nc a multiple of 8, kc·nc within packBufCap.
var tuneCandsT = [...]tuneCand{
	{kc: 256, nc: 128, pack: true},
	{kc: 128, nc: 256, pack: true},
	{kc: 512, nc: 256, pack: true},
	{kc: 256, nc: 128, pack: true, mc: 128},
	{kc: 256, nc: 128, pack: true, strip: true},
	{kc: 512, nc: 256, pack: true, strip: true},
}

// maxTuneCands sizes the per-entry probe-state arrays to the largest
// candidate set across variants.
const maxTuneCands = max(len(tuneCands), len(tuneCandsT))

// tuneCandsFor returns the candidate set a variant probes.
func tuneCandsFor(v gemmVariant) []tuneCand {
	if v == gemmNN {
		return tuneCands[:]
	}
	return tuneCandsT[:]
}

// tuneProbeRuns is how many timed samples each candidate gets before the
// entry decides. The minimum over samples is compared (minimum, not mean:
// scheduling noise only ever adds time); three samples make a noise burst
// have to hit the same candidate three times to bias the choice.
const tuneProbeRuns = 3

// tuneKey buckets a GEMM dispatch by op variant and ceil(log2) of each
// dimension: shapes within a power of two share blocking, which keeps the
// table a few dozen entries for a whole training run while still
// separating the regimes that matter (small-m backward vs large-m forward,
// k or n under one panel). The variant keeps forward and transposed
// products in distinct buckets even at identical (m,k,n).
type tuneKey struct {
	v          uint8
	mb, kb, nb uint8
}

func log2Bucket(n int) uint8 {
	if n <= 1 {
		return 0
	}
	return uint8(bits.Len(uint(n - 1)))
}

func makeTuneKey(v gemmVariant, m, k, n int) tuneKey {
	return tuneKey{uint8(v), log2Bucket(m), log2Bucket(k), log2Bucket(n)}
}

// tuneEntry is the per-bucket probe state. chosen is -1 while probing and
// the winning candidate index afterwards; reads are a single atomic load.
//
// Freezing is not final: probe timings are wall-clock around parallel.Run,
// whose helping-wait can execute other goroutines' queued chunks inside
// the timed region, so under concurrent training (many ranks probing the
// same buckets at startup) every initial sample of a candidate can be
// contaminated and a slower blocking frozen. Every tuneReprobeEvery-th
// call on a decided bucket therefore re-times one candidate round-robin;
// minima only improve, so one clean sample of the truly fastest candidate
// eventually corrects the choice. Switching is always safe: every
// candidate produces bitwise-identical output.
type tuneEntry struct {
	chosen atomic.Int32
	calls  atomic.Int64 // post-freeze call counter driving re-probes

	// cands is the variant's candidate set (tuneCandsFor), fixed at entry
	// creation; chosen and the probe state below index into it.
	cands []tuneCand

	mu   sync.Mutex
	best [maxTuneCands]float64 // min ns per flop over recorded samples
	recs [maxTuneCands]int     // samples recorded (freeze gate)
	runs [maxTuneCands]int     // probes handed out (round-robin gate)
}

// tuneReprobeEvery is the period of post-freeze drift probes (one timed
// call in 512 keeps the correction overhead unmeasurable).
const tuneReprobeEvery = 512

// nextProbe picks the least-sampled candidate for the next timed call.
func (e *tuneEntry) nextProbe() int {
	e.mu.Lock()
	idx := 0
	for i := 1; i < len(e.cands); i++ {
		if e.runs[i] < e.runs[idx] {
			idx = i
		}
	}
	e.runs[idx]++
	e.mu.Unlock()
	return idx
}

// record stores a probe timing for a call of `work` = m·k·n flops-ish and
// freezes the winner once every candidate has tuneProbeRuns samples.
// Timings are compared per unit of work, not raw: a log2 bucket spans up
// to 2x per dimension, so two shapes in one bucket can differ ~8x in work
// and a raw-duration comparison would crown whichever candidate happened
// to be timed on the smallest shape.
func (e *tuneEntry) record(idx int, d time.Duration, work int) {
	if d < 1 {
		d = 1 // coarse clocks can report 0 on tiny shapes; 0 must still count as a sample
	}
	if work < 1 {
		work = 1
	}
	v := float64(d) / float64(work)
	e.mu.Lock()
	if e.recs[idx] == 0 || v < e.best[idx] {
		e.best[idx] = v
	}
	e.recs[idx]++
	done := true
	for i := range e.cands {
		if e.recs[i] < tuneProbeRuns {
			done = false
			break
		}
	}
	if done {
		// (Re-)evaluate the winner: the initial freeze, and any later
		// drift probe whose cleaner sample moved a minimum.
		win := 0
		for i := 1; i < len(e.cands); i++ {
			if e.best[i] < e.best[win] {
				win = i
			}
		}
		// The initial freeze marks the table dirty for the background
		// saver. Later drift-probe corrections update the in-process
		// choice but are deliberately NOT persisted: a winner flip can
		// happen at any point of a training run, and waking the saver
		// then would put filesystem work (and its allocations) inside
		// the steady state the zero-alloc contracts pin. The corrected
		// choice is bitwise-identical anyway; the next process simply
		// starts from the previously saved winner.
		if e.chosen.Swap(int32(win)) == -1 {
			tuneDirty.Store(true)
			scheduleTuneSave()
		}
	}
	e.mu.Unlock()
}

var tuneTable struct {
	mu sync.RWMutex
	m  map[tuneKey]*tuneEntry
}

// tuneDirty is set whenever a bucket freezes in THIS process — i.e. the
// in-memory table holds a decision the file may lack. Buckets pre-seeded
// from disk do not set it, so a process that probed nothing new never
// rewrites the file (FlushTuneTable would otherwise rename its possibly
// stale startup copy over decisions a concurrent process just saved).
var tuneDirty atomic.Bool

// tuneFor returns the (existing or new) entry for a (variant, shape)
// bucket. The fast path is a read-locked map hit — no allocation, no
// contention in steady state.
func tuneFor(v gemmVariant, m, k, n int) *tuneEntry {
	key := makeTuneKey(v, m, k, n)
	tuneTable.mu.RLock()
	e := tuneTable.m[key]
	tuneTable.mu.RUnlock()
	if e != nil {
		return e
	}
	tuneTable.mu.Lock()
	if e = tuneTable.m[key]; e == nil {
		if tuneTable.m == nil {
			tuneTable.m = make(map[tuneKey]*tuneEntry)
		}
		e = &tuneEntry{cands: tuneCandsFor(v)}
		e.chosen.Store(-1)
		tuneTable.m[key] = e
	}
	tuneTable.mu.Unlock()
	return e
}

// ResetTuneTable clears all autotuning decisions (tests, and benchmarks
// that want to re-probe on a new machine), including the dirty flag — the
// discarded decisions are no longer worth flushing.
func ResetTuneTable() {
	tuneTable.mu.Lock()
	tuneTable.m = nil
	tuneDirty.Store(false)
	tuneTable.mu.Unlock()
}

// tuneRecord is the persisted form of one decided bucket. V is the GEMM
// variant (0 forward, 1 MatMulT, 2 TMatMul); it is omitted when zero, so
// tables written before the variant key existed load unchanged as
// forward-product entries, and records with a variant this build does not
// know are skipped on load.
type tuneRecord struct {
	V     uint8 `json:"variant,omitempty"`
	MB    uint8 `json:"mb"`
	KB    uint8 `json:"kb"`
	NB    uint8 `json:"nb"`
	KC    int   `json:"kc"`
	NC    int   `json:"nc"`
	Pack  bool  `json:"pack"`
	Strip bool  `json:"strip,omitempty"`
	MC    int   `json:"mc,omitempty"`
}

type tuneFile struct {
	Description string       `json:"description"`
	Entries     []tuneRecord `json:"entries"`
}

// SaveTuneTable writes every decided bucket to path as JSON (written to a
// temp file and renamed, so concurrent readers never observe a partial
// table). Undecided buckets (still probing) are skipped.
func SaveTuneTable(path string) error {
	var f tuneFile
	f.Description = "SAMO GEMM autotuner decisions, keyed by ceil(log2) shape buckets. " +
		"Machine-specific; regenerate after hardware changes."
	tuneTable.mu.RLock()
	for k, e := range tuneTable.m {
		idx := e.chosen.Load()
		if idx < 0 {
			continue
		}
		c := e.cands[idx]
		f.Entries = append(f.Entries, tuneRecord{
			V: k.v, MB: k.mb, KB: k.kb, NB: k.nb,
			KC: c.kc, NC: c.nc, Pack: c.pack, Strip: c.strip, MC: c.mc})
	}
	tuneTable.mu.RUnlock()
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	// Unique temp name: the debounced background saver and a synchronous
	// FlushTuneTable can run concurrently, and two writers interleaving on
	// one shared temp file could rename a corrupt table into place.
	tmp, err := os.CreateTemp(filepath.Dir(path), ".gemm_tune-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// TunePath resolves where autotuner decisions persist: the file named by
// SAMO_GEMM_TUNE if set ("off" disables persistence entirely and returns
// ""), else gemm_tune.json under a samo directory in the user cache dir.
// Resolved on every call so tests can redirect it with a scoped setenv.
func TunePath() string {
	switch p := os.Getenv("SAMO_GEMM_TUNE"); p {
	case "off":
		return ""
	case "":
		dir, err := os.UserCacheDir()
		if err != nil {
			return ""
		}
		return filepath.Join(dir, "samo", "gemm_tune.json")
	default:
		return p
	}
}

// tuneSave is the background persistence machinery: record() marks the
// table dirty whenever a bucket's winner changes, and a single lazily
// started saver goroutine debounces the startup freeze burst into one
// atomic write of TunePath(). Callers never allocate (a channel send on a
// buffered channel), which keeps the drift-probe path inside the training
// steps' zero-allocation contract. Persistence is best-effort: a save that
// loses the process race, fails to write, or is cut off by process exit
// inside the coalescing window (Go has no exit hook) just means the next
// run re-probes the affected buckets.
var tuneSave struct {
	once sync.Once
	kick chan struct{}
}

func scheduleTuneSave() {
	// With persistence disabled (SAMO_GEMM_TUNE=off) the freeze path stays
	// completely inert — no saver goroutine, no channel — so tests pinning
	// process-wide allocation counts can opt out hermetically.
	if TunePath() == "" {
		return
	}
	tuneSave.once.Do(func() {
		tuneSave.kick = make(chan struct{}, 1)
		go tuneSaverLoop()
	})
	select {
	case tuneSave.kick <- struct{}{}:
	default:
	}
}

func tuneSaverLoop() {
	for range tuneSave.kick {
		// Brief coalescing window: at startup several hot buckets freeze
		// within a few steps of each other and one write covers them. Kept
		// short because the process gives no exit hook — a run that ends
		// inside this window loses the save (see the best-effort caveat on
		// tuneSave); later freezes re-kick and rewrite, so long-lived
		// trainers always persist their full table.
		time.Sleep(20 * time.Millisecond)
		select {
		case <-tuneSave.kick:
		default:
		}
		path := TunePath()
		if path == "" {
			continue
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			continue
		}
		_ = SaveTuneTable(path)
	}
}

// LoadTuneTable pre-seeds the autotuner from a file written by
// SaveTuneTable: matching buckets skip the probe phase. Records whose
// blocking is not among the current candidates are ignored (the candidate
// set may have changed between versions).
func LoadTuneTable(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var f tuneFile
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("tensor: tune table %s: %w: %w", path, errTuneTableParse, err)
	}
	tuneTable.mu.Lock()
	if tuneTable.m == nil {
		tuneTable.m = make(map[tuneKey]*tuneEntry)
	}
	for _, r := range f.Entries {
		if gemmVariant(r.V) >= gemmVariants {
			continue // written by a build with variants this one lacks
		}
		cands := tuneCandsFor(gemmVariant(r.V))
		for i, c := range cands {
			if c.kc == r.KC && c.nc == r.NC && c.pack == r.Pack &&
				c.strip == r.Strip && c.mc == r.MC {
				e := &tuneEntry{cands: cands}
				e.chosen.Store(int32(i))
				tuneTable.m[tuneKey{r.V, r.MB, r.KB, r.NB}] = e
				break
			}
		}
	}
	tuneTable.mu.Unlock()
	return nil
}

// FlushTuneTable synchronously persists the current autotuner decisions to
// TunePath(), creating the directory as needed. The debounced background
// saver (scheduleTuneSave) coalesces the startup freeze burst but gives no
// guarantee for short-lived processes — Go has no exit hook, so a process
// that exits inside the coalescing window loses every freeze it made. The
// cmds therefore call this from their run() exits. It is a no-op (nil)
// when persistence is disabled or when this process has frozen nothing new
// since startup (tuneDirty): a table holding only disk-loaded decisions
// must not be renamed over the file — it may be a stale copy of decisions
// a concurrent process has since extended — and an undecided table must
// not clobber a previous run's save when the init pre-load failed.
func FlushTuneTable() error {
	path := TunePath()
	if path == "" {
		return nil
	}
	if !tuneDirty.Swap(false) {
		return nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		tuneDirty.Store(true) // still unsaved; a later flush should retry
		return err
	}
	if err := SaveTuneTable(path); err != nil {
		tuneDirty.Store(true)
		return err
	}
	return nil
}

// errTuneTableParse marks a tune table that exists but does not parse —
// the one load failure worth quarantining at startup (I/O errors are
// transient and the file may be fine on the next run).
var errTuneTableParse = errors.New("unparseable tune table")

// startupLoadTuneTable is the init-time pre-load with graceful degradation:
// a corrupt table is quarantined (renamed to <path>.corrupt) so a damaged
// cache is moved out of the way once and can never wedge startup again —
// the probe phase rebuilds the table and the next save rewrites the file.
// A missing file just re-probes (first run on a machine); other errors are
// reported only when the operator pointed SAMO_GEMM_TUNE at the file,
// because silently re-probing is exactly what the variable was set to
// avoid. Returns the warning to log, or "" when there is nothing to say.
func startupLoadTuneTable(path string, explicit bool) string {
	err := LoadTuneTable(path)
	switch {
	case err == nil || os.IsNotExist(err):
		return ""
	case errors.Is(err, errTuneTableParse):
		quarantine := path + ".corrupt"
		if rerr := os.Rename(path, quarantine); rerr != nil {
			return fmt.Sprintf("tensor: ignoring corrupt tune table (quarantine failed: %v): %v", rerr, err)
		}
		return fmt.Sprintf("tensor: quarantined corrupt tune table to %s; re-probing (%v)", quarantine, err)
	case explicit:
		return fmt.Sprintf("tensor: SAMO_GEMM_TUNE not loaded: %v", err)
	default:
		return ""
	}
}

func init() {
	explicit := os.Getenv("SAMO_GEMM_TUNE") != ""
	path := TunePath()
	if path == "" {
		return
	}
	if msg := startupLoadTuneTable(path, explicit); msg != "" {
		fmt.Fprintf(os.Stderr, "%s\n", msg)
	}
}
