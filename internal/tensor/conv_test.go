package tensor

import (
	"math"
	"testing"
)

// naiveConv2d computes a direct NCHW convolution for cross-checking the
// im2col+GEMM path. Weight layout is (outC, inC, k, k).
func naiveConv2d(in, w *Tensor, s ConvSpec) *Tensor {
	n := in.Dim(0)
	oh, ow := s.OutH(), s.OutW()
	out := New(n, s.OutC, oh, ow)
	for img := 0; img < n; img++ {
		for oc := 0; oc < s.OutC; oc++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var acc float64
					for ic := 0; ic < s.InC; ic++ {
						for ky := 0; ky < s.Kernel; ky++ {
							for kx := 0; kx < s.Kernel; kx++ {
								iy := oy*s.Stride + ky - s.Pad
								ix := ox*s.Stride + kx - s.Pad
								if iy < 0 || iy >= s.InH || ix < 0 || ix >= s.InW {
									continue
								}
								acc += float64(in.At(img, ic, iy, ix)) * float64(w.At(oc, ic, ky, kx))
							}
						}
					}
					out.Set(float32(acc), img, oc, oy, ox)
				}
			}
		}
	}
	return out
}

func TestIm2ColGEMMEqualsDirectConv(t *testing.T) {
	specs := []ConvSpec{
		{InC: 3, OutC: 4, Kernel: 3, Stride: 1, Pad: 1, InH: 8, InW: 8},
		{InC: 2, OutC: 5, Kernel: 3, Stride: 2, Pad: 1, InH: 9, InW: 7},
		{InC: 1, OutC: 2, Kernel: 1, Stride: 1, Pad: 0, InH: 5, InW: 5},
		{InC: 4, OutC: 3, Kernel: 5, Stride: 1, Pad: 2, InH: 6, InW: 6},
	}
	for _, s := range specs {
		in := randTensor([]int{2, s.InC, s.InH, s.InW}, 11)
		w := randTensor([]int{s.OutC, s.InC, s.Kernel, s.Kernel}, 12)
		cols := Im2Col(in, s)
		wmat := w.Reshape(s.OutC, -1) // (outC, inC·k·k)
		out := MatMulT(cols, wmat)    // (n·oh·ow, outC)
		want := naiveConv2d(in, w, s)
		// Rearrange (n·oh·ow, outC) to NCHW for comparison.
		oh, ow := s.OutH(), s.OutW()
		got := New(2, s.OutC, oh, ow)
		for r := 0; r < out.Dim(0); r++ {
			img := r / (oh * ow)
			rem := r % (oh * ow)
			for oc := 0; oc < s.OutC; oc++ {
				got.Set(out.At(r, oc), img, oc, rem/ow, rem%ow)
			}
		}
		if d := MaxAbsDiff(got, want); d > 1e-3 {
			t.Errorf("spec %+v: max diff %g", s, d)
		}
	}
}

func TestCol2ImAdjointOfIm2Col(t *testing.T) {
	// <Im2Col(x), y> must equal <x, Col2Im(y)> — the defining property of the
	// backward lowering (they are adjoint linear maps).
	s := ConvSpec{InC: 3, OutC: 1, Kernel: 3, Stride: 2, Pad: 1, InH: 7, InW: 6}
	x := randTensor([]int{2, s.InC, s.InH, s.InW}, 21)
	cols := Im2Col(x, s)
	y := randTensor(cols.Shape(), 22)
	lhs := Dot(cols, y)
	back := Col2Im(y, s, 2)
	rhs := Dot(x, back)
	if math.Abs(lhs-rhs) > 1e-2*math.Abs(lhs) {
		t.Errorf("adjoint identity violated: %g vs %g", lhs, rhs)
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	in := FromSlice([]float32{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 1, 2, 3,
		1, 1, 4, 1,
	}, 1, 1, 4, 4)
	out, arg := MaxPool2x2(in)
	want := []float32{4, 8, 9, 4}
	for i, w := range want {
		if out.Data()[i] != w {
			t.Fatalf("pool out = %v, want %v", out.Data(), want)
		}
	}
	grad := FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	back := MaxPool2x2Backward(grad, arg, in.Shape())
	// Gradient flows only to the argmax positions.
	if back.At(0, 0, 1, 1) != 1 || back.At(0, 0, 1, 3) != 2 ||
		back.At(0, 0, 2, 0) != 3 || back.At(0, 0, 3, 2) != 4 {
		t.Errorf("pool backward: %v", back.Data())
	}
	if Sum(back) != 10 {
		t.Errorf("pool backward must conserve grad mass: %g", Sum(back))
	}
}

func TestConvSpecOutputDims(t *testing.T) {
	s := ConvSpec{Kernel: 3, Stride: 1, Pad: 1, InH: 32, InW: 32}
	if s.OutH() != 32 || s.OutW() != 32 {
		t.Errorf("same-pad conv: %dx%d", s.OutH(), s.OutW())
	}
	s = ConvSpec{Kernel: 3, Stride: 2, Pad: 1, InH: 32, InW: 32}
	if s.OutH() != 16 {
		t.Errorf("strided conv: %d", s.OutH())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("RNG not deterministic")
		}
	}
	c := NewRNG(43)
	if NewRNG(42).Uint64() == c.Uint64() {
		t.Error("different seeds should differ")
	}
}

func TestRNGNormMoments(t *testing.T) {
	rng := NewRNG(7)
	var sum, sum2 float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := rng.Norm()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.05 || math.Abs(variance-1) > 0.1 {
		t.Errorf("Norm moments off: mean %g var %g", mean, variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	rng := NewRNG(9)
	p := rng.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestHalfTensorRoundTrip(t *testing.T) {
	a := randTensor([]int{4, 5}, 31)
	h, ov := HalfFromTensor(a)
	if ov != 0 {
		t.Fatalf("unexpected overflows: %d", ov)
	}
	if h.Bytes() != 40 {
		t.Errorf("Bytes = %d, want 40", h.Bytes())
	}
	b := h.Float32()
	if d := MaxAbsDiff(a, b); d > 1e-2 {
		t.Errorf("half round trip diff %g", d)
	}
	// Values already on the fp16 grid survive exactly.
	QuantizeInPlace(a)
	h.StoreFrom(a)
	c := New(4, 5)
	h.LoadInto(c)
	if MaxAbsDiff(a, c) != 0 {
		t.Error("fp16-grid values must round trip exactly")
	}
}

func TestHalfOverflowCount(t *testing.T) {
	a := FromSlice([]float32{1e9, 2, 3, -1e9}, 4)
	_, ov := HalfFromTensor(a)
	if ov != 2 {
		t.Errorf("overflow count = %d, want 2", ov)
	}
}

func BenchmarkMatMul256(b *testing.B) {
	x := randTensor([]int{256, 256}, 1)
	y := randTensor([]int{256, 256}, 2)
	c := New(256, 256)
	b.SetBytes(2 * 256 * 256 * 256 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(c, x, y, false)
	}
}

func BenchmarkIm2Col(b *testing.B) {
	s := ConvSpec{InC: 16, OutC: 16, Kernel: 3, Stride: 1, Pad: 1, InH: 32, InW: 32}
	in := randTensor([]int{4, 16, 32, 32}, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2Col(in, s)
	}
}
