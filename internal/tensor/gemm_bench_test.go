package tensor

import (
	"fmt"
	"testing"

	"github.com/sparse-dl/samo/internal/parallel"
)

// warmAutotune drives a dispatcher until the autotuner has frozen a
// blocking for the (variant, shape) bucket, so the timed loop measures the
// steady-state kernel rather than the probe phase.
func warmAutotune(v gemmVariant, m, k, n int, call func()) {
	e := tuneFor(v, m, k, n)
	for i := 0; i < 4*len(e.cands)*tuneProbeRuns && e.chosen.Load() < 0; i++ {
		call()
	}
}

// BenchmarkGEMM times the dense kernel at the paper's Figure 1 FC shapes
// (batch 576, square weights): "seed" is the saxpy kernel the repository
// started with, "packed" the per-worker-packing v1 micro-kernel, and
// "shared" the autotuned shared-pack v2 pipeline that dispatch now uses.
// The seed/packed and seed/shared ratios are the kernel-path speedups
// recorded in BENCH_kernels.json (scripts/bench.sh gates on them).
func BenchmarkGEMM(b *testing.B) {
	const batch = 576
	for _, dim := range []int{128, 256, 512, 1024} {
		a, w, c := New(batch, dim), New(dim, dim), New(batch, dim)
		rng := NewRNG(7)
		fillSeq(a, rng)
		fillSeq(w, rng)
		flops := 2 * float64(batch) * float64(dim) * float64(dim)
		run := func(fn func(ctx any, lo, hi int)) func(b *testing.B) {
			return func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					j := getGemmJob()
					j.c, j.a, j.b = c.data, a.data, w.data
					j.m, j.k, j.n = batch, dim, dim
					j.accumulate = false
					parallel.Run(batch, gemmGrain, j, fn)
					putGemmJob(j)
				}
				b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
			}
		}
		b.Run(fmt.Sprintf("seed/%d", dim), run(gemmSaxpyChunk))
		b.Run(fmt.Sprintf("packed/%d", dim), run(gemmPackedChunk))
		b.Run(fmt.Sprintf("shared/%d", dim), func(b *testing.B) {
			warmAutotune(gemmNN, batch, dim, dim, func() {
				gemm(c.data, a.data, w.data, batch, dim, dim, false)
			})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gemm(c.data, a.data, w.data, batch, dim, dim, false)
			}
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
		})
	}
}

// BenchmarkGEMMSmallM times the small-m regime — the Figure-1 FC backward
// shapes where each worker owns only a few C rows, so v1's per-worker
// panel packing is almost pure overhead: the panel is swept too few times
// to amortize the pack traffic. The shared-pack dispatcher autotunes these
// buckets to the direct-B (pack-free) or shared-pack kernel, which is
// where the >1.1x win over packed v1 comes from.
func BenchmarkGEMMSmallM(b *testing.B) {
	for _, m := range []int{4, 8, 16} {
		for _, dim := range []int{512, 1024} {
			a, w, c := New(m, dim), New(dim, dim), New(m, dim)
			rng := NewRNG(11)
			fillSeq(a, rng)
			fillSeq(w, rng)
			flops := 2 * float64(m) * float64(dim) * float64(dim)
			run := func(fn func(ctx any, lo, hi int)) func(b *testing.B) {
				return func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						j := getGemmJob()
						j.c, j.a, j.b = c.data, a.data, w.data
						j.m, j.k, j.n = m, dim, dim
						j.accumulate = false
						parallel.Run(m, gemmGrain, j, fn)
						putGemmJob(j)
					}
					b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
				}
			}
			b.Run(fmt.Sprintf("seed/%dx%d", m, dim), run(gemmSaxpyChunk))
			b.Run(fmt.Sprintf("packed/%dx%d", m, dim), run(gemmPackedChunk))
			b.Run(fmt.Sprintf("shared/%dx%d", m, dim), func(b *testing.B) {
				warmAutotune(gemmNN, m, dim, dim, func() {
					gemm(c.data, a.data, w.data, m, dim, dim, false)
				})
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					gemm(c.data, a.data, w.data, m, dim, dim, false)
				}
				b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
			})
		}
	}
}

// BenchmarkMatMulT times the input-gradient product dX = G·Wᵀ at the
// Figure-1 FC backward shapes (batch 576, square weights): "tiled" is the
// PR-1 4×4 register-tile kernel the dispatcher used before the shared-pack
// port, "shared" the autotuned v2/v3 pipeline it uses now. The
// tiled/shared ratio is the MatMulT speedup matrix in BENCH_kernels.json,
// gated by MIN_GEMM_SPEEDUP in scripts/bench.sh.
func BenchmarkMatMulT(b *testing.B) {
	const batch = 576
	for _, dim := range []int{128, 256, 512, 1024} {
		g, w, c := New(batch, dim), New(dim, dim), New(batch, dim)
		rng := NewRNG(8)
		fillSeq(g, rng)
		fillSeq(w, rng)
		flops := 2 * float64(batch) * float64(dim) * float64(dim)
		b.Run(fmt.Sprintf("tiled/%d", dim), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				j := getGemmJob()
				j.c, j.a, j.b = c.data, g.data, w.data
				j.m, j.k, j.n = batch, dim, dim
				j.accumulate = false
				parallel.Run(batch, gemmGrain, j, gemmTChunk)
				putGemmJob(j)
			}
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
		})
		b.Run(fmt.Sprintf("shared/%d", dim), func(b *testing.B) {
			warmAutotune(gemmNT, batch, dim, dim, func() {
				MatMulTInto(c, g, w, false)
			})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulTInto(c, g, w, false)
			}
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
		})
	}
}

// BenchmarkTMatMul times the weight-gradient product dW = Xᵀ·G at the same
// Figure-1 backward shapes; "tiled" vs "shared" as in BenchmarkMatMulT.
func BenchmarkTMatMul(b *testing.B) {
	const batch = 576
	for _, dim := range []int{128, 256, 512, 1024} {
		x, g, c := New(batch, dim), New(batch, dim), New(dim, dim)
		rng := NewRNG(9)
		fillSeq(x, rng)
		fillSeq(g, rng)
		flops := 2 * float64(batch) * float64(dim) * float64(dim)
		b.Run(fmt.Sprintf("tiled/%d", dim), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				j := getGemmJob()
				j.c, j.a, j.b = c.data, x.data, g.data
				j.m, j.k, j.n = dim, batch, dim
				j.accumulate = false
				parallel.Run(dim, gemmGrain, j, tGemmChunk)
				putGemmJob(j)
			}
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
		})
		b.Run(fmt.Sprintf("shared/%d", dim), func(b *testing.B) {
			warmAutotune(gemmTN, dim, batch, dim, func() {
				TMatMulInto(c, x, g, false)
			})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				TMatMulInto(c, x, g, false)
			}
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
		})
	}
}
