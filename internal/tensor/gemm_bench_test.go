package tensor

import (
	"fmt"
	"testing"

	"github.com/sparse-dl/samo/internal/parallel"
)

// warmAutotune drives the dispatcher until the autotuner has frozen a
// blocking for the shape, so the timed loop measures the steady-state
// kernel rather than the probe phase.
func warmAutotune(c, a, b *Tensor, m, k, n int) {
	e := tuneFor(m, k, n)
	for i := 0; i < 4*len(tuneCands)*tuneProbeRuns && e.chosen.Load() < 0; i++ {
		gemm(c.data, a.data, b.data, m, k, n, false)
	}
}

// BenchmarkGEMM times the dense kernel at the paper's Figure 1 FC shapes
// (batch 576, square weights): "seed" is the saxpy kernel the repository
// started with, "packed" the per-worker-packing v1 micro-kernel, and
// "shared" the autotuned shared-pack v2 pipeline that dispatch now uses.
// The seed/packed and seed/shared ratios are the kernel-path speedups
// recorded in BENCH_kernels.json (scripts/bench.sh gates on them).
func BenchmarkGEMM(b *testing.B) {
	const batch = 576
	for _, dim := range []int{128, 256, 512, 1024} {
		a, w, c := New(batch, dim), New(dim, dim), New(batch, dim)
		rng := NewRNG(7)
		fillSeq(a, rng)
		fillSeq(w, rng)
		flops := 2 * float64(batch) * float64(dim) * float64(dim)
		run := func(fn func(ctx any, lo, hi int)) func(b *testing.B) {
			return func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					j := getGemmJob()
					j.c, j.a, j.b = c.data, a.data, w.data
					j.m, j.k, j.n = batch, dim, dim
					j.accumulate = false
					parallel.Run(batch, gemmGrain, j, fn)
					putGemmJob(j)
				}
				b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
			}
		}
		b.Run(fmt.Sprintf("seed/%d", dim), run(gemmSaxpyChunk))
		b.Run(fmt.Sprintf("packed/%d", dim), run(gemmPackedChunk))
		b.Run(fmt.Sprintf("shared/%d", dim), func(b *testing.B) {
			warmAutotune(c, a, w, batch, dim, dim)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gemm(c.data, a.data, w.data, batch, dim, dim, false)
			}
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
		})
	}
}

// BenchmarkGEMMSmallM times the small-m regime — the Figure-1 FC backward
// shapes where each worker owns only a few C rows, so v1's per-worker
// panel packing is almost pure overhead: the panel is swept too few times
// to amortize the pack traffic. The shared-pack dispatcher autotunes these
// buckets to the direct-B (pack-free) or shared-pack kernel, which is
// where the >1.1x win over packed v1 comes from.
func BenchmarkGEMMSmallM(b *testing.B) {
	for _, m := range []int{4, 8, 16} {
		for _, dim := range []int{512, 1024} {
			a, w, c := New(m, dim), New(dim, dim), New(m, dim)
			rng := NewRNG(11)
			fillSeq(a, rng)
			fillSeq(w, rng)
			flops := 2 * float64(m) * float64(dim) * float64(dim)
			run := func(fn func(ctx any, lo, hi int)) func(b *testing.B) {
				return func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						j := getGemmJob()
						j.c, j.a, j.b = c.data, a.data, w.data
						j.m, j.k, j.n = m, dim, dim
						j.accumulate = false
						parallel.Run(m, gemmGrain, j, fn)
						putGemmJob(j)
					}
					b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
				}
			}
			b.Run(fmt.Sprintf("seed/%dx%d", m, dim), run(gemmSaxpyChunk))
			b.Run(fmt.Sprintf("packed/%dx%d", m, dim), run(gemmPackedChunk))
			b.Run(fmt.Sprintf("shared/%dx%d", m, dim), func(b *testing.B) {
				warmAutotune(c, a, w, m, dim, dim)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					gemm(c.data, a.data, w.data, m, dim, dim, false)
				}
				b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
			})
		}
	}
}

// BenchmarkMatMulT and BenchmarkTMatMul time the transposed products used
// by the backward passes at a representative gradient shape.
func BenchmarkMatMulT(b *testing.B) {
	a, w := New(576, 512), New(512, 512)
	rng := NewRNG(8)
	fillSeq(a, rng)
	fillSeq(w, rng)
	c := New(576, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMulTInto(c, a, w, false)
	}
}

func BenchmarkTMatMul(b *testing.B) {
	x, g := New(576, 512), New(576, 512)
	rng := NewRNG(9)
	fillSeq(x, rng)
	fillSeq(g, rng)
	c := New(512, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		TMatMulInto(c, x, g, false)
	}
}
