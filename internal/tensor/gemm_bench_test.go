package tensor

import (
	"fmt"
	"testing"

	"github.com/sparse-dl/samo/internal/parallel"
)

// BenchmarkGEMM times the dense kernel at the paper's Figure 1 FC shapes
// (batch 576, square weights): "seed" is the saxpy kernel the repository
// started with, "packed" the blocked micro-kernel that replaced it. The
// ratio between the two is the kernel-path speedup recorded in
// BENCH_kernels.json.
func BenchmarkGEMM(b *testing.B) {
	const batch = 576
	for _, dim := range []int{128, 256, 512, 1024} {
		a, w, c := New(batch, dim), New(dim, dim), New(batch, dim)
		rng := NewRNG(7)
		fillSeq(a, rng)
		fillSeq(w, rng)
		flops := 2 * float64(batch) * float64(dim) * float64(dim)
		run := func(fn func(ctx any, lo, hi int)) func(b *testing.B) {
			return func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					j := getGemmJob()
					j.c, j.a, j.b = c.data, a.data, w.data
					j.m, j.k, j.n = batch, dim, dim
					j.accumulate = false
					parallel.Run(batch, gemmGrain, j, fn)
					putGemmJob(j)
				}
				b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
			}
		}
		b.Run(fmt.Sprintf("seed/%d", dim), run(gemmSaxpyChunk))
		b.Run(fmt.Sprintf("packed/%d", dim), run(gemmPackedChunk))
	}
}

// BenchmarkMatMulT and BenchmarkTMatMul time the transposed products used
// by the backward passes at a representative gradient shape.
func BenchmarkMatMulT(b *testing.B) {
	a, w := New(576, 512), New(512, 512)
	rng := NewRNG(8)
	fillSeq(a, rng)
	fillSeq(w, rng)
	c := New(576, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMulTInto(c, a, w, false)
	}
}

func BenchmarkTMatMul(b *testing.B) {
	x, g := New(576, 512), New(576, 512)
	rng := NewRNG(9)
	fillSeq(x, rng)
	fillSeq(g, rng)
	c := New(512, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		TMatMulInto(c, x, g, false)
	}
}
