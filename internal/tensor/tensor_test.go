package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewAndAccess(t *testing.T) {
	a := New(2, 3)
	if a.Len() != 6 || a.Rank() != 2 || a.Dim(0) != 2 || a.Dim(1) != 3 {
		t.Fatalf("bad metadata: %v", a)
	}
	a.Set(5, 1, 2)
	if a.At(1, 2) != 5 {
		t.Errorf("At(1,2) = %g, want 5", a.At(1, 2))
	}
	if a.Data()[5] != 5 {
		t.Errorf("row-major layout violated: %v", a.Data())
	}
}

func TestFromSliceAliases(t *testing.T) {
	d := []float32{1, 2, 3, 4}
	a := FromSlice(d, 2, 2)
	d[0] = 9
	if a.At(0, 0) != 9 {
		t.Error("FromSlice must alias, not copy")
	}
}

func TestReshapeInference(t *testing.T) {
	a := New(4, 6)
	b := a.Reshape(2, -1)
	if b.Dim(1) != 12 {
		t.Errorf("inferred dim = %d, want 12", b.Dim(1))
	}
	b.Set(7, 0, 0)
	if a.At(0, 0) != 7 {
		t.Error("Reshape must be a view")
	}
	defer func() {
		if recover() == nil {
			t.Error("bad reshape should panic")
		}
	}()
	a.Reshape(5, -1)
}

func TestSliceView(t *testing.T) {
	a := New(4, 3)
	for i := 0; i < 12; i++ {
		a.Data()[i] = float32(i)
	}
	s := a.Slice(1, 3)
	if s.Dim(0) != 2 || s.At(0, 0) != 3 || s.At(1, 2) != 8 {
		t.Errorf("Slice view wrong: %v", s)
	}
}

func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for kk := 0; kk < k; kk++ {
				s += float64(a.At(i, kk)) * float64(b.At(kk, j))
			}
			c.Set(float32(s), i, j)
		}
	}
	return c
}

func randTensor(shape []int, seed uint64) *Tensor {
	t := New(shape...)
	rng := NewRNG(seed)
	FillNormal(t, 1, rng)
	return t
}

func TestMatMulAgainstNaive(t *testing.T) {
	for _, dims := range [][3]int{{1, 1, 1}, {3, 4, 5}, {17, 31, 13}, {64, 64, 64}, {65, 129, 70}, {2, 200, 3}} {
		a := randTensor([]int{dims[0], dims[1]}, 1)
		b := randTensor([]int{dims[1], dims[2]}, 2)
		got := MatMul(a, b)
		want := naiveMatMul(a, b)
		if d := MaxAbsDiff(got, want); d > 1e-3 {
			t.Errorf("dims %v: max diff %g", dims, d)
		}
	}
}

func TestMatMulIntoAccumulate(t *testing.T) {
	a := randTensor([]int{5, 7}, 3)
	b := randTensor([]int{7, 4}, 4)
	c := MatMul(a, b)
	acc := c.Clone()
	MatMulInto(acc, a, b, true)
	want := c.Clone()
	Scale(want, 2)
	if d := MaxAbsDiff(acc, want); d > 1e-4 {
		t.Errorf("accumulate: max diff %g", d)
	}
}

func TestMatMulTAndTMatMul(t *testing.T) {
	a := randTensor([]int{6, 9}, 5)
	b := randTensor([]int{8, 9}, 6) // B is (n,k) for MatMulT
	got := MatMulT(a, b)
	want := MatMul(a, Transpose(b))
	if d := MaxAbsDiff(got, want); d > 1e-3 {
		t.Errorf("MatMulT: max diff %g", d)
	}
	c := randTensor([]int{9, 6}, 7) // A is (k,m) for TMatMul
	d2 := randTensor([]int{9, 5}, 8)
	got = TMatMul(c, d2)
	want = MatMul(Transpose(c), d2)
	if d := MaxAbsDiff(got, want); d > 1e-3 {
		t.Errorf("TMatMul: max diff %g", d)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(m8, n8 uint8) bool {
		m, n := int(m8%40)+1, int(n8%40)+1
		a := randTensor([]int{m, n}, uint64(m*100+n))
		return MaxAbsDiff(Transpose(Transpose(a)), a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMatMulWorkerInvariance(t *testing.T) {
	// Results must not depend on the worker count: partitioning is static
	// and each worker owns disjoint output rows.
	a := randTensor([]int{33, 47}, 9)
	b := randTensor([]int{47, 29}, 10)
	old := SetWorkers(1)
	c1 := MatMul(a, b)
	SetWorkers(4)
	c4 := MatMul(a, b)
	SetWorkers(old)
	if d := MaxAbsDiff(c1, c4); d != 0 {
		t.Errorf("worker-count dependent result: diff %g", d)
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 4)
	b := FromSlice([]float32{10, 20, 30, 40}, 4)
	c := a.Clone()
	Add(c, b)
	for i, w := range []float32{11, 22, 33, 44} {
		if c.Data()[i] != w {
			t.Fatalf("Add: %v", c.Data())
		}
	}
	Sub(c, b)
	if MaxAbsDiff(c, a) != 0 {
		t.Fatalf("Sub: %v", c.Data())
	}
	Mul(c, b)
	for i, w := range []float32{10, 40, 90, 160} {
		if c.Data()[i] != w {
			t.Fatalf("Mul: %v", c.Data())
		}
	}
	Scale(c, 0.5)
	Axpy(c, a, 2)
	// 0.5*(a*b) + 2a
	for i := range a.Data() {
		want := 0.5*a.Data()[i]*b.Data()[i] + 2*a.Data()[i]
		if math.Abs(float64(c.Data()[i]-want)) > 1e-6 {
			t.Fatalf("Axpy: %v", c.Data())
		}
	}
}

func TestAddBiasSumRows(t *testing.T) {
	a := New(3, 2)
	bias := FromSlice([]float32{1, -1}, 2)
	AddBias(a, bias)
	for i := 0; i < 3; i++ {
		if a.At(i, 0) != 1 || a.At(i, 1) != -1 {
			t.Fatalf("AddBias: %v", a.Data())
		}
	}
	s := SumRows(a)
	if s.At(0) != 3 || s.At(1) != -3 {
		t.Fatalf("SumRows: %v", s.Data())
	}
}

func TestSoftmaxRows(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 1000, 1000, 1000}, 2, 3)
	SoftmaxRows(a)
	for i := 0; i < 2; i++ {
		var s float64
		for j := 0; j < 3; j++ {
			s += float64(a.At(i, j))
		}
		if math.Abs(s-1) > 1e-5 {
			t.Errorf("row %d sums to %g", i, s)
		}
	}
	// Large inputs must not produce NaN (stability).
	if HasNonFinite(a) {
		t.Error("softmax overflowed")
	}
	if !(a.At(0, 2) > a.At(0, 1) && a.At(0, 1) > a.At(0, 0)) {
		t.Error("softmax not order preserving")
	}
}

func TestReLUAndMask(t *testing.T) {
	a := FromSlice([]float32{-1, 0, 2, -3}, 4)
	mask := ReLU(a)
	want := []float32{0, 0, 2, 0}
	wantMask := []float32{0, 0, 1, 0}
	for i := range want {
		if a.Data()[i] != want[i] || mask.Data()[i] != wantMask[i] {
			t.Fatalf("ReLU: %v mask %v", a.Data(), mask.Data())
		}
	}
}

func TestGELUGradientNumerically(t *testing.T) {
	xs := []float32{-2, -0.5, 0, 0.3, 1.7}
	for _, x := range xs {
		const h = 1e-3
		num := (geluScalar(x+h) - geluScalar(x-h)) / (2 * h)
		pre := FromSlice([]float32{x}, 1)
		grad := FromSlice([]float32{1}, 1)
		GELUBackward(grad, pre)
		if math.Abs(float64(grad.Data()[0]-num)) > 1e-2 {
			t.Errorf("GELU'(%g): analytic %g vs numeric %g", x, grad.Data()[0], num)
		}
	}
}

func TestSumDotNorm(t *testing.T) {
	a := FromSlice([]float32{3, 4}, 2)
	if Norm2(a) != 5 {
		t.Errorf("Norm2 = %g", Norm2(a))
	}
	if Dot(a, a) != 25 {
		t.Errorf("Dot = %g", Dot(a, a))
	}
	if Sum(a) != 7 {
		t.Errorf("Sum = %g", Sum(a))
	}
	if MaxAbs(FromSlice([]float32{-9, 2}, 2)) != 9 {
		t.Error("MaxAbs")
	}
}

func TestArgmaxRows(t *testing.T) {
	a := FromSlice([]float32{1, 5, 2, 9, 0, 3}, 2, 3)
	got := ArgmaxRows(a)
	if got[0] != 1 || got[1] != 0 {
		t.Errorf("ArgmaxRows = %v", got)
	}
}

// TestRowOpsDegenerateShapes pins the zero-width and zero-row cases:
// SoftmaxRows used to index row[0] and panic on an (m,0) tensor, unlike
// every other op, which passes degenerate shapes through as no-ops.
func TestRowOpsDegenerateShapes(t *testing.T) {
	SoftmaxRows(New(3, 0)) // must not panic; nothing to normalize
	SoftmaxRows(New(0, 4)) // no rows at all
	SoftmaxRows(New(0, 0))

	if got := ArgmaxRows(New(3, 0)); len(got) != 3 || got[0] != 0 || got[1] != 0 || got[2] != 0 {
		t.Errorf("ArgmaxRows on (3,0) = %v, want three zeros", got)
	}
	if got := ArgmaxRows(New(0, 4)); len(got) != 0 {
		t.Errorf("ArgmaxRows on (0,4) = %v, want empty", got)
	}

	// Non-degenerate rows must be untouched by the guard.
	a := FromSlice([]float32{0, 0}, 1, 2)
	SoftmaxRows(a)
	if a.At(0, 0) != 0.5 || a.At(0, 1) != 0.5 {
		t.Errorf("SoftmaxRows on (1,2) zeros = %v", a.Data())
	}
}

func TestHasNonFinite(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	if HasNonFinite(a) {
		t.Error("false positive")
	}
	a.Data()[1] = float32(math.Inf(1))
	if !HasNonFinite(a) {
		t.Error("missed Inf")
	}
	a.Data()[1] = float32(math.NaN())
	if !HasNonFinite(a) {
		t.Error("missed NaN")
	}
}

// refHasNonFinite is the pre-parallelization reference scan the pooled
// chunked scan is golden-tested against.
func refHasNonFinite(s []float32) bool {
	for _, v := range s {
		f := float64(v)
		if math.IsInf(f, 0) || math.IsNaN(f) {
			return true
		}
	}
	return false
}

// TestHasNonFiniteParallelGolden pins the chunked worker-pool scan to the
// serial reference across slice sizes spanning the serial/parallel
// dispatch boundary, poison values (±Inf, NaN) planted at chunk edges and
// interiors, and several worker counts.
func TestHasNonFiniteParallelGolden(t *testing.T) {
	defer SetWorkers(SetWorkers(0))
	sizes := []int{0, 1, 100, nonFiniteGrain, nonFiniteGrain + 1, 3*nonFiniteGrain + 17, 8 * nonFiniteGrain}
	for _, size := range sizes {
		base := New(size)
		fillSeq(base, NewRNG(uint64(size)|1))
		positions := []int{-1} // -1: clean slice
		if size > 0 {
			positions = append(positions, 0, size/2, size-1)
		}
		for _, pos := range positions {
			for _, poison := range []float64{math.Inf(1), math.Inf(-1), math.NaN()} {
				s := base.Clone().Data()
				if pos >= 0 {
					s[pos] = float32(poison)
				}
				want := refHasNonFinite(s)
				for _, w := range []int{1, 3, 8} {
					SetWorkers(w)
					if got := HasNonFiniteSlice(s); got != want {
						t.Fatalf("size=%d pos=%d poison=%g workers=%d: got %v, want %v",
							size, pos, poison, w, got, want)
					}
				}
			}
		}
	}
}

// TestHasNonFiniteZeroAlloc pins the overflow check's dispatch: the fp16
// training step calls it once per parameter per step inside a zero-alloc
// contract.
func TestHasNonFiniteZeroAlloc(t *testing.T) {
	t.Setenv("SAMO_GEMM_TUNE", "off") // hermetic process-wide alloc counting

	big := New(4 * nonFiniteGrain)
	HasNonFinite(big) // warm job pool and workers
	if n := testing.AllocsPerRun(50, func() { HasNonFinite(big) }); n != 0 {
		t.Fatalf("HasNonFinite allocates %.1f per call, want 0", n)
	}
}
