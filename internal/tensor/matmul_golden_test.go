package tensor

import (
	"fmt"
	"sync"
	"testing"
)

// naiveMatMul is the i-j-k reference triple loop the micro-kernels are
// pinned against. It must stay dumb: the tests exist to catch blocking and
// edge-handling bugs in the optimized kernels.
func refMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.shape[0], a.shape[1], b.shape[1]
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for kk := 0; kk < k; kk++ {
				s += a.data[i*k+kk] * b.data[kk*n+j]
			}
			c.data[i*n+j] = s
		}
	}
	return c
}

func refMatMulT(a, b *Tensor) *Tensor {
	m, k, n := a.shape[0], a.shape[1], b.shape[0]
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for kk := 0; kk < k; kk++ {
				s += a.data[i*k+kk] * b.data[j*k+kk]
			}
			c.data[i*n+j] = s
		}
	}
	return c
}

func refTMatMul(a, b *Tensor) *Tensor {
	k, m, n := a.shape[0], a.shape[1], b.shape[1]
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for kk := 0; kk < k; kk++ {
				s += a.data[kk*m+i] * b.data[kk*n+j]
			}
			c.data[i*n+j] = s
		}
	}
	return c
}

// goldenShapes stresses every edge of the blocked kernels: tile remainders
// in every dimension (m,k,n not multiples of 4/8/128/256), degenerate m=0,
// k=0, n=1 cases, exact tile multiples, and shapes large enough to take the
// packed parallel path.
var goldenShapes = [][3]int{
	{0, 8, 8},
	{8, 0, 8},
	{1, 1, 1},
	{7, 9, 1},
	{3, 5, 7},
	{4, 16, 16},
	{5, 17, 33},
	{13, 129, 31},
	{37, 65, 129},
	{63, 130, 129},
	{64, 128, 128},
	{129, 257, 130},
}

// tol returns an absolute tolerance for float32 products summed over k: the
// optimized kernels re-associate the k sum (pairwise unroll, block partial
// sums), so results differ from the naive loop by O(k·eps·|terms|).
func tol(k int) float64 { return 1e-5 * float64(k+1) }

func fillSeq(t *Tensor, rng *RNG) {
	for i := range t.data {
		t.data[i] = float32(rng.Float64()*2 - 1)
	}
}

func TestMatMulGolden(t *testing.T) {
	rng := NewRNG(42)
	for _, s := range goldenShapes {
		m, k, n := s[0], s[1], s[2]
		t.Run(fmt.Sprintf("%dx%dx%d", m, k, n), func(t *testing.T) {
			a, b := New(m, k), New(k, n)
			fillSeq(a, rng)
			fillSeq(b, rng)
			want := refMatMul(a, b)
			got := MatMul(a, b)
			if d := MaxAbsDiff(got, want); d > tol(k) {
				t.Fatalf("MatMul differs from naive by %g (tol %g)", d, tol(k))
			}
			// Into with accumulate: C = seed + A·B.
			acc := New(m, n)
			fillSeq(acc, rng)
			wantAcc := acc.Clone()
			Add(wantAcc, want)
			MatMulInto(acc, a, b, true)
			if d := MaxAbsDiff(acc, wantAcc); d > tol(k) {
				t.Fatalf("MatMulInto(accumulate) differs by %g", d)
			}
		})
	}
}

func TestMatMulTGolden(t *testing.T) {
	rng := NewRNG(43)
	for _, s := range goldenShapes {
		m, k, n := s[0], s[1], s[2]
		t.Run(fmt.Sprintf("%dx%dx%d", m, k, n), func(t *testing.T) {
			a, b := New(m, k), New(n, k)
			fillSeq(a, rng)
			fillSeq(b, rng)
			want := refMatMulT(a, b)
			got := MatMulT(a, b)
			if d := MaxAbsDiff(got, want); d > tol(k) {
				t.Fatalf("MatMulT differs from naive by %g (tol %g)", d, tol(k))
			}
			out := New(m, n)
			MatMulTInto(out, a, b, false)
			if d := MaxAbsDiff(out, want); d > tol(k) {
				t.Fatalf("MatMulTInto differs by %g", d)
			}
		})
	}
}

func TestTMatMulGolden(t *testing.T) {
	rng := NewRNG(44)
	for _, s := range goldenShapes {
		m, k, n := s[0], s[1], s[2]
		t.Run(fmt.Sprintf("%dx%dx%d", m, k, n), func(t *testing.T) {
			a, b := New(k, m), New(k, n)
			fillSeq(a, rng)
			fillSeq(b, rng)
			want := refTMatMul(a, b)
			got := TMatMul(a, b)
			if d := MaxAbsDiff(got, want); d > tol(k) {
				t.Fatalf("TMatMul differs from naive by %g (tol %g)", d, tol(k))
			}
			out := New(m, n)
			TMatMulInto(out, a, b, false)
			if d := MaxAbsDiff(out, want); d > tol(k) {
				t.Fatalf("TMatMulInto differs by %g", d)
			}
		})
	}
}

func TestTransposeGolden(t *testing.T) {
	rng := NewRNG(45)
	for _, s := range [][2]int{{1, 1}, {3, 7}, {32, 32}, {33, 65}, {128, 40}} {
		m, n := s[0], s[1]
		a := New(m, n)
		fillSeq(a, rng)
		tr := Transpose(a)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				if tr.At(j, i) != a.At(i, j) {
					t.Fatalf("(%d,%d): transpose mismatch", i, j)
				}
			}
		}
		back := Transpose(tr)
		if MaxAbsDiff(back, a) != 0 {
			t.Fatalf("%dx%d: double transpose is not identity", m, n)
		}
	}
}

// v2Shapes stresses the shared-pack pipeline's edges: m below the worker
// count (shared pack is the point of that regime), k below every kc
// candidate, n below every nc candidate, single-row and single-column
// outputs, panel-boundary remainders, shapes spanning several panels, strip
// tails of every width class, and m past the mc=128 row-blocking boundary.
var v2Shapes = [][3]int{
	{1, 16, 16},   // m=1: micro1-only sweep
	{4, 16, 1},    // n=1: one-column panels, 1-wide strip tail
	{3, 300, 40},  // m below gemmMR after chunking, 8-aligned strips
	{5, 700, 130}, // k spans panels with remainder, n just over one nc, 2-wide tail
	{8, 64, 520},  // n spans nc candidates with remainder
	{6, 530, 9},   // k just past the 512 panel, one full strip + 1-wide tail
	{31, 257, 129},
	{64, 512, 256},  // exact panel multiples
	{97, 1030, 70},  // 6-wide strip tail
	{150, 300, 40},  // m crosses the mc=128 row-block boundary
	{129, 256, 135}, // mc remainder of one row, 7-wide strip tail
}

// TestGEMMV2CandidatesGolden pins every autotune candidate — shared-pack,
// direct-B, mc row-blocked and the v3 8-wide strip kernels — against the
// naive reference at the degenerate shapes, under a worker count larger
// than m for the small shapes (the regime the shared pack exists for). It
// also asserts the candidates agree BITWISE: every kc candidate is even and
// every kernel accumulates each C element with the same pairwise
// k-association, so the autotuner's choice can never change results.
func TestGEMMV2CandidatesGolden(t *testing.T) {
	old := SetWorkers(8)
	defer SetWorkers(old)
	rng := NewRNG(47)
	for _, s := range v2Shapes {
		m, k, n := s[0], s[1], s[2]
		t.Run(fmt.Sprintf("%dx%dx%d", m, k, n), func(t *testing.T) {
			a, b := New(m, k), New(k, n)
			fillSeq(a, rng)
			fillSeq(b, rng)
			want := refMatMul(a, b)
			var first *Tensor
			for ci, cand := range tuneCands {
				got := New(m, n)
				gemmV2(gemmNN, got.data, a.data, b.data, m, k, n, false, cand)
				if d := MaxAbsDiff(got, want); d > tol(k) {
					t.Fatalf("candidate %d (%+v): differs from naive by %g", ci, cand, d)
				}
				if first == nil {
					first = got
				} else if d := MaxAbsDiff(got, first); d != 0 {
					t.Fatalf("candidate %d (%+v): not bitwise-equal to candidate 0 (diff %g)", ci, cand, d)
				}
				// Accumulating form: C = seed + A·B.
				acc := New(m, n)
				fillSeq(acc, rng)
				wantAcc := acc.Clone()
				Add(wantAcc, want)
				gemmV2(gemmNN, acc.data, a.data, b.data, m, k, n, true, cand)
				if d := MaxAbsDiff(acc, wantAcc); d > tol(k) {
					t.Fatalf("candidate %d (%+v) accumulate: differs by %g", ci, cand, d)
				}
			}
		})
	}
}

// TestMatMulSharedPanelRace hammers MatMulInto from many goroutines so
// concurrent calls contend on the shared panel buffer pool, the autotune
// table and the worker pool. Run under -race in CI; correctness of each
// result is also checked.
func TestMatMulSharedPanelRace(t *testing.T) {
	old := SetWorkers(4)
	defer SetWorkers(old)
	rng := NewRNG(48)
	shapes := [][3]int{{40, 300, 64}, {8, 512, 128}, {130, 96, 33}}
	type prob struct {
		a, b, want *Tensor
	}
	probs := make([]prob, len(shapes))
	for i, s := range shapes {
		a, b := New(s[0], s[1]), New(s[1], s[2])
		fillSeq(a, rng)
		fillSeq(b, rng)
		probs[i] = prob{a: a, b: b, want: refMatMul(a, b)}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := probs[g%len(probs)]
			m, n := p.a.shape[0], p.b.shape[1]
			c := New(m, n)
			for it := 0; it < 25; it++ {
				MatMulInto(c, p.a, p.b, false)
				if d := MaxAbsDiff(c, p.want); d > tol(p.a.shape[1]) {
					errs <- fmt.Errorf("goroutine %d iter %d: diff %g", g, it, d)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestTuneTablePersistence round-trips autotuner decisions through the
// JSON table: a loaded table must skip probing and reproduce the same
// blocking choice.
func TestTuneTablePersistence(t *testing.T) {
	ResetTuneTable()
	defer ResetTuneTable()
	a, b, c := New(24, 200), New(200, 48), New(24, 48)
	rng := NewRNG(49)
	fillSeq(a, rng)
	fillSeq(b, rng)
	e := tuneFor(gemmNN, 24, 200, 48)
	for i := 0; i < 4*len(tuneCands)*tuneProbeRuns && e.chosen.Load() < 0; i++ {
		gemm(c.data, a.data, b.data, 24, 200, 48, false)
	}
	if e.chosen.Load() < 0 {
		t.Fatal("autotuner did not decide after probe budget")
	}
	chosen := e.chosen.Load()
	path := t.TempDir() + "/tune.json"
	if err := SaveTuneTable(path); err != nil {
		t.Fatal(err)
	}
	ResetTuneTable()
	if err := LoadTuneTable(path); err != nil {
		t.Fatal(err)
	}
	e2 := tuneFor(gemmNN, 24, 200, 48)
	if got := e2.chosen.Load(); got != chosen {
		t.Fatalf("reloaded choice %d, want %d", got, chosen)
	}
}

func TestMatMulIntoZeroAlloc(t *testing.T) {
	// Hermetic allocation counting: AllocsPerRun tallies process-wide
	// mallocs, so a background tune-table save (triggered whenever a GEMM
	// bucket happens to freeze nearby) would show up as phantom allocs.
	// "off" makes the freeze path inert; persistence itself is pinned by
	// TestTunePersistenceRoundTripAllocFree.
	t.Setenv("SAMO_GEMM_TUNE", "off")

	a, b, c := New(64, 96), New(96, 80), New(64, 80)
	rng := NewRNG(46)
	fillSeq(a, rng)
	fillSeq(b, rng)
	MatMulInto(c, a, b, false) // warm pools
	for _, acc := range []bool{false, true} {
		acc := acc
		if n := testing.AllocsPerRun(50, func() { MatMulInto(c, a, b, acc) }); n != 0 {
			t.Fatalf("MatMulInto(accumulate=%v) allocates %.1f per call, want 0", acc, n)
		}
	}
	MatMulTInto(c, a, New(80, 96), false)
	bT := New(80, 96)
	if n := testing.AllocsPerRun(50, func() { MatMulTInto(c, a, bT, false) }); n != 0 {
		t.Fatalf("MatMulTInto allocates %.1f per call, want 0", n)
	}
	aT := New(96, 64)
	TMatMulInto(c, aT, b, false)
	if n := testing.AllocsPerRun(50, func() { TMatMulInto(c, aT, b, false) }); n != 0 {
		t.Fatalf("TMatMulInto allocates %.1f per call, want 0", n)
	}
}
