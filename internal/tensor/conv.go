package tensor

import (
	"fmt"

	"github.com/sparse-dl/samo/internal/parallel"
)

// ConvSpec describes a 2-D convolution: kernel size, stride and padding are
// symmetric in height and width (all the VGG/WideResNet layers used in the
// paper are square). Layout is NCHW.
type ConvSpec struct {
	InC, OutC int
	Kernel    int
	Stride    int
	Pad       int
	InH, InW  int
}

// OutH returns the output height.
func (s ConvSpec) OutH() int { return (s.InH+2*s.Pad-s.Kernel)/s.Stride + 1 }

// OutW returns the output width.
func (s ConvSpec) OutW() int { return (s.InW+2*s.Pad-s.Kernel)/s.Stride + 1 }

// Im2Col lowers an NCHW input (n, inC, inH, inW) to a matrix of shape
// (n·outH·outW, inC·k·k) so convolution becomes a single dense GEMM against
// the (inC·k·k, outC) weight matrix — the standard cuDNN-style lowering that
// lets the forward pass reuse the dense kernel SAMO depends on.
func Im2Col(in *Tensor, s ConvSpec) *Tensor {
	n := in.shape[0]
	oh, ow := s.OutH(), s.OutW()
	cols := New(n*oh*ow, s.InC*s.Kernel*s.Kernel)
	Im2ColInto(cols, in, s)
	return cols
}

// Im2ColInto lowers in into an existing (n·outH·outW, inC·k·k) cols tensor
// without allocating the output.
func Im2ColInto(cols, in *Tensor, s ConvSpec) {
	if in.Rank() != 4 {
		panic("tensor: Im2Col requires NCHW rank-4 input")
	}
	n := in.shape[0]
	if in.shape[1] != s.InC || in.shape[2] != s.InH || in.shape[3] != s.InW {
		panic(fmt.Sprintf("tensor: Im2Col input %v does not match spec %+v", in.shape, s))
	}
	oh, ow := s.OutH(), s.OutW()
	k := s.Kernel
	if cols.Len() != n*oh*ow*s.InC*k*k {
		panic(fmt.Sprintf("tensor: Im2ColInto output has %d elements, want %d", cols.Len(), n*oh*ow*s.InC*k*k))
	}
	j := im2colJobFree.Get()
	j.src, j.dst = in.data, cols.data
	j.spec, j.oh, j.ow = s, oh, ow
	parallel.Run(n*oh*ow, 64, j, im2colChunk)
	j.src, j.dst = nil, nil
	im2colJobFree.Put(j)
}

// im2colJob carries one lowering's arguments to the pool workers; pooled
// so the conv forward path (one Im2ColInto per conv layer per microbatch)
// dispatches without allocating a closure.
type im2colJob struct {
	src, dst []float32
	spec     ConvSpec
	oh, ow   int
}

var im2colJobFree parallel.Pool[im2colJob]

// im2colChunk lowers output rows [lo,hi); each row writes a disjoint
// rowLen slice of the column matrix.
func im2colChunk(ctx any, lo, hi int) {
	g := ctx.(*im2colJob)
	s, oh, ow := g.spec, g.oh, g.ow
	src, dst := g.src, g.dst
	k := s.Kernel
	rowLen := s.InC * k * k
	for r := lo; r < hi; r++ {
		img := r / (oh * ow)
		rem := r % (oh * ow)
		oy := rem / ow
		ox := rem % ow
		base := r * rowLen
		for c := 0; c < s.InC; c++ {
			chanOff := (img*s.InC + c) * s.InH * s.InW
			for ky := 0; ky < k; ky++ {
				iy := oy*s.Stride + ky - s.Pad
				rowOff := base + (c*k+ky)*k
				if iy < 0 || iy >= s.InH {
					for kx := 0; kx < k; kx++ {
						dst[rowOff+kx] = 0
					}
					continue
				}
				for kx := 0; kx < k; kx++ {
					ix := ox*s.Stride + kx - s.Pad
					if ix < 0 || ix >= s.InW {
						dst[rowOff+kx] = 0
					} else {
						dst[rowOff+kx] = src[chanOff+iy*s.InW+ix]
					}
				}
			}
		}
	}
}

// Col2Im scatter-adds a column matrix (as produced by Im2Col) back into an
// NCHW gradient tensor of shape (n, inC, inH, inW) — the backward of the
// lowering.
func Col2Im(cols *Tensor, s ConvSpec, n int) *Tensor {
	out := New(n, s.InC, s.InH, s.InW)
	Col2ImInto(out, cols, s, n)
	return out
}

// col2imCheck validates both operands of the backward lowering. The output
// is checked dimension by dimension, not just by element count: an NHWC-
// permuted tensor has the same length as the NCHW gradient and a length-only
// check would let it through silently.
func col2imCheck(out, cols *Tensor, s ConvSpec, n int) {
	oh, ow := s.OutH(), s.OutW()
	rowLen := s.InC * s.Kernel * s.Kernel
	if cols.Rank() != 2 || cols.shape[0] != n*oh*ow || cols.shape[1] != rowLen {
		panic(fmt.Sprintf("tensor: Col2Im input %v does not match spec %+v", cols.shape, s))
	}
	if out.Rank() != 4 || out.shape[0] != n || out.shape[1] != s.InC ||
		out.shape[2] != s.InH || out.shape[3] != s.InW {
		panic(fmt.Sprintf("tensor: Col2Im output %v does not match spec %+v (want [%d %d %d %d])",
			out.shape, s, n, s.InC, s.InH, s.InW))
	}
}

// Col2ImInto scatter-adds a column matrix into an existing zeroed (or
// accumulating) NCHW gradient tensor without allocating. The kernel runs in
// parallel on the worker pool and is bitwise-identical to the serial scatter
// at any worker count (see col2imChunk).
func Col2ImInto(out, cols *Tensor, s ConvSpec, n int) {
	col2imCheck(out, cols, s, n)
	col2imRun(out.data, cols.data, s, n, false)
}

// Col2ImZeroInto is Col2ImInto for a destination with unspecified contents:
// each worker zeroes the output rows it owns before gathering into them, so
// callers (the conv backward) skip the separate serial zeroing pass over the
// input-gradient tensor.
func Col2ImZeroInto(out, cols *Tensor, s ConvSpec, n int) {
	col2imCheck(out, cols, s, n)
	col2imRun(out.data, cols.data, s, n, true)
}

// col2imJob carries one backward lowering's arguments to the pool workers;
// pooled like im2colJob so the conv backward dispatches without allocating.
type col2imJob struct {
	src, dst []float32
	spec     ConvSpec
	oh, ow   int
	zero     bool
}

var col2imJobFree parallel.Pool[col2imJob]

// col2imRun dispatches the gather kernel over (image, input-row) units.
// Units write disjoint output rows, so any partition is race-free, and the
// per-element accumulation order is independent of the partition (see
// col2imChunk) — the result is bitwise-identical at every worker count.
func col2imRun(dst, src []float32, s ConvSpec, n int, zero bool) {
	j := col2imJobFree.Get()
	j.src, j.dst = src, dst
	j.spec, j.oh, j.ow = s, s.OutH(), s.OutW()
	j.zero = zero
	// Grain: one unit gathers ~(k/stride)·ow·inC·k values; bound chunks so a
	// chunk is worth a dispatch even for 1×1 kernels on small images.
	perRow := ((s.Kernel+s.Stride-1)/s.Stride)*j.ow*s.InC*s.Kernel + 1
	grain := (4096 + perRow - 1) / perRow
	parallel.Run(n*s.InH, grain, j, col2imChunk)
	j.src, j.dst = nil, nil
	col2imJobFree.Put(j)
}

// col2imChunk gathers output units [lo,hi), where unit u = img·inH + iy owns
// the output row iy of every channel of image img — a disjoint strip of the
// gradient, so chunks never race.
//
// Determinism: the serial scatter accumulates into a fixed output element
// (c, iy, ix) once per contributing column row, in ascending (oy, ox) order.
// The gather visits the contributions to each of its elements in exactly
// that order — oy ascending (each oy pins ky = iy - oy·stride + pad), then
// ox ascending (each ox pins the kx that lands on ix) — so every element
// sees the same additions in the same order as the serial kernel and the
// result is bitwise-identical regardless of how units are partitioned.
func col2imChunk(ctx any, lo, hi int) {
	g := ctx.(*col2imJob)
	s, oh, ow := g.spec, g.oh, g.ow
	src, dst := g.src, g.dst
	k, st, pad := s.Kernel, s.Stride, s.Pad
	inH, inW := s.InH, s.InW
	rowLen := s.InC * k * k
	for u := lo; u < hi; u++ {
		img := u / inH
		iy := u % inH
		if g.zero {
			for c := 0; c < s.InC; c++ {
				off := ((img*s.InC+c)*inH + iy) * inW
				zeroSlice(dst[off : off+inW])
			}
		}
		// Output rows oy whose kernel window covers input row iy:
		// iy = oy·stride + ky - pad with ky in [0, k).
		oyLo := (iy + pad - k + st) / st // ceil((iy+pad-k+1)/stride), then clamped
		if oyLo < 0 {
			oyLo = 0
		}
		oyHi := (iy + pad) / st
		if oyHi > oh-1 {
			oyHi = oh - 1
		}
		for oy := oyLo; oy <= oyHi; oy++ {
			ky := iy - oy*st + pad
			rbase := (img*oh + oy) * ow
			for c := 0; c < s.InC; c++ {
				drow := dst[((img*s.InC+c)*inH+iy)*inW:]
				colOff := (c*k + ky) * k
				for ox := 0; ox < ow; ox++ {
					rowOff := (rbase+ox)*rowLen + colOff
					xlo := ox*st - pad
					for kx := 0; kx < k; kx++ {
						ix := xlo + kx
						if ix >= 0 && ix < inW {
							drow[ix] += src[rowOff+kx]
						}
					}
				}
			}
		}
	}
}

// col2imSerial is the seed scatter kernel, kept as the reference the
// parallel gather is pinned (bitwise) and benchmarked against.
func col2imSerial(dst, src []float32, s ConvSpec, n int) {
	oh, ow := s.OutH(), s.OutW()
	k := s.Kernel
	rowLen := s.InC * k * k
	for r := 0; r < n*oh*ow; r++ {
		img := r / (oh * ow)
		rem := r % (oh * ow)
		oy := rem / ow
		ox := rem % ow
		base := r * rowLen
		for c := 0; c < s.InC; c++ {
			chanOff := (img*s.InC + c) * s.InH * s.InW
			for ky := 0; ky < k; ky++ {
				iy := oy*s.Stride + ky - s.Pad
				if iy < 0 || iy >= s.InH {
					continue
				}
				rowOff := base + (c*k+ky)*k
				for kx := 0; kx < k; kx++ {
					ix := ox*s.Stride + kx - s.Pad
					if ix >= 0 && ix < s.InW {
						dst[chanOff+iy*s.InW+ix] += src[rowOff+kx]
					}
				}
			}
		}
	}
}

// MaxPool2x2 performs 2×2 max pooling with stride 2 on an NCHW tensor,
// returning the pooled tensor and the flat argmax indices for backward.
func MaxPool2x2(in *Tensor) (*Tensor, []int32) {
	if in.Rank() != 4 {
		panic("tensor: MaxPool2x2 requires NCHW input")
	}
	n, c, h, w := in.shape[0], in.shape[1], in.shape[2], in.shape[3]
	out := New(n, c, h/2, w/2)
	arg := make([]int32, out.Len())
	MaxPool2x2Into(out, arg, in)
	return out, arg
}

// MaxPool2x2Into pools into an existing output tensor and argmax slice
// (len = out.Len()) without allocating. A nil arg skips argmax tracking —
// the forward-only form for inference, where no backward will scatter.
func MaxPool2x2Into(out *Tensor, arg []int32, in *Tensor) {
	if in.Rank() != 4 {
		panic("tensor: MaxPool2x2 requires NCHW input")
	}
	n, c, h, w := in.shape[0], in.shape[1], in.shape[2], in.shape[3]
	oh, ow := h/2, w/2
	if out.Len() != n*c*oh*ow || (arg != nil && len(arg) != out.Len()) {
		panic("tensor: MaxPool2x2Into size mismatch")
	}
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			inOff := (img*c + ch) * h * w
			outOff := (img*c + ch) * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := inOff + (2*oy)*w + 2*ox
					bv := in.data[best]
					for dy := 0; dy < 2; dy++ {
						for dx := 0; dx < 2; dx++ {
							idx := inOff + (2*oy+dy)*w + 2*ox + dx
							if in.data[idx] > bv {
								bv, best = in.data[idx], idx
							}
						}
					}
					out.data[outOff+oy*ow+ox] = bv
					if arg != nil {
						arg[outOff+oy*ow+ox] = int32(best)
					}
				}
			}
		}
	}
}

// MaxPool2x2Backward scatters grad back through the argmax indices into a
// tensor with the given input shape.
func MaxPool2x2Backward(grad *Tensor, arg []int32, inShape []int) *Tensor {
	out := New(inShape...)
	MaxPool2x2BackwardInto(out, grad, arg)
	return out
}

// MaxPool2x2BackwardInto scatter-adds grad through the argmax indices into
// an existing zeroed tensor of the pooled input's shape.
func MaxPool2x2BackwardInto(out, grad *Tensor, arg []int32) {
	for i, g := range grad.data {
		out.data[arg[i]] += g
	}
}
