package tensor

import (
	"fmt"

	"github.com/sparse-dl/samo/internal/parallel"
)

// ConvSpec describes a 2-D convolution: kernel size, stride and padding are
// symmetric in height and width (all the VGG/WideResNet layers used in the
// paper are square). Layout is NCHW.
type ConvSpec struct {
	InC, OutC int
	Kernel    int
	Stride    int
	Pad       int
	InH, InW  int
}

// OutH returns the output height.
func (s ConvSpec) OutH() int { return (s.InH+2*s.Pad-s.Kernel)/s.Stride + 1 }

// OutW returns the output width.
func (s ConvSpec) OutW() int { return (s.InW+2*s.Pad-s.Kernel)/s.Stride + 1 }

// Im2Col lowers an NCHW input (n, inC, inH, inW) to a matrix of shape
// (n·outH·outW, inC·k·k) so convolution becomes a single dense GEMM against
// the (inC·k·k, outC) weight matrix — the standard cuDNN-style lowering that
// lets the forward pass reuse the dense kernel SAMO depends on.
func Im2Col(in *Tensor, s ConvSpec) *Tensor {
	n := in.shape[0]
	oh, ow := s.OutH(), s.OutW()
	cols := New(n*oh*ow, s.InC*s.Kernel*s.Kernel)
	Im2ColInto(cols, in, s)
	return cols
}

// Im2ColInto lowers in into an existing (n·outH·outW, inC·k·k) cols tensor
// without allocating the output.
func Im2ColInto(cols, in *Tensor, s ConvSpec) {
	if in.Rank() != 4 {
		panic("tensor: Im2Col requires NCHW rank-4 input")
	}
	n := in.shape[0]
	if in.shape[1] != s.InC || in.shape[2] != s.InH || in.shape[3] != s.InW {
		panic(fmt.Sprintf("tensor: Im2Col input %v does not match spec %+v", in.shape, s))
	}
	oh, ow := s.OutH(), s.OutW()
	k := s.Kernel
	if cols.Len() != n*oh*ow*s.InC*k*k {
		panic(fmt.Sprintf("tensor: Im2ColInto output has %d elements, want %d", cols.Len(), n*oh*ow*s.InC*k*k))
	}
	j := im2colJobFree.Get()
	j.src, j.dst = in.data, cols.data
	j.spec, j.oh, j.ow = s, oh, ow
	parallel.Run(n*oh*ow, 64, j, im2colChunk)
	j.src, j.dst = nil, nil
	im2colJobFree.Put(j)
}

// im2colJob carries one lowering's arguments to the pool workers; pooled
// so the conv forward path (one Im2ColInto per conv layer per microbatch)
// dispatches without allocating a closure.
type im2colJob struct {
	src, dst []float32
	spec     ConvSpec
	oh, ow   int
}

var im2colJobFree parallel.Pool[im2colJob]

// im2colChunk lowers output rows [lo,hi); each row writes a disjoint
// rowLen slice of the column matrix.
func im2colChunk(ctx any, lo, hi int) {
	g := ctx.(*im2colJob)
	s, oh, ow := g.spec, g.oh, g.ow
	src, dst := g.src, g.dst
	k := s.Kernel
	rowLen := s.InC * k * k
	for r := lo; r < hi; r++ {
		img := r / (oh * ow)
		rem := r % (oh * ow)
		oy := rem / ow
		ox := rem % ow
		base := r * rowLen
		for c := 0; c < s.InC; c++ {
			chanOff := (img*s.InC + c) * s.InH * s.InW
			for ky := 0; ky < k; ky++ {
				iy := oy*s.Stride + ky - s.Pad
				rowOff := base + (c*k+ky)*k
				if iy < 0 || iy >= s.InH {
					for kx := 0; kx < k; kx++ {
						dst[rowOff+kx] = 0
					}
					continue
				}
				for kx := 0; kx < k; kx++ {
					ix := ox*s.Stride + kx - s.Pad
					if ix < 0 || ix >= s.InW {
						dst[rowOff+kx] = 0
					} else {
						dst[rowOff+kx] = src[chanOff+iy*s.InW+ix]
					}
				}
			}
		}
	}
}

// Col2Im scatter-adds a column matrix (as produced by Im2Col) back into an
// NCHW gradient tensor of shape (n, inC, inH, inW) — the backward of the
// lowering.
func Col2Im(cols *Tensor, s ConvSpec, n int) *Tensor {
	out := New(n, s.InC, s.InH, s.InW)
	Col2ImInto(out, cols, s, n)
	return out
}

// Col2ImInto scatter-adds a column matrix into an existing zeroed (or
// accumulating) NCHW gradient tensor without allocating.
func Col2ImInto(out, cols *Tensor, s ConvSpec, n int) {
	oh, ow := s.OutH(), s.OutW()
	k := s.Kernel
	rowLen := s.InC * k * k
	if cols.Rank() != 2 || cols.shape[0] != n*oh*ow || cols.shape[1] != rowLen {
		panic(fmt.Sprintf("tensor: Col2Im input %v does not match spec", cols.shape))
	}
	if out.Len() != n*s.InC*s.InH*s.InW {
		panic("tensor: Col2ImInto output size mismatch")
	}
	src := cols.data
	dst := out.data
	// Serial over rows: output positions overlap across rows, so the scatter
	// must not race. n·oh·ow is modest for the sizes we run in-process.
	for r := 0; r < n*oh*ow; r++ {
		img := r / (oh * ow)
		rem := r % (oh * ow)
		oy := rem / ow
		ox := rem % ow
		base := r * rowLen
		for c := 0; c < s.InC; c++ {
			chanOff := (img*s.InC + c) * s.InH * s.InW
			for ky := 0; ky < k; ky++ {
				iy := oy*s.Stride + ky - s.Pad
				if iy < 0 || iy >= s.InH {
					continue
				}
				rowOff := base + (c*k+ky)*k
				for kx := 0; kx < k; kx++ {
					ix := ox*s.Stride + kx - s.Pad
					if ix >= 0 && ix < s.InW {
						dst[chanOff+iy*s.InW+ix] += src[rowOff+kx]
					}
				}
			}
		}
	}
}

// MaxPool2x2 performs 2×2 max pooling with stride 2 on an NCHW tensor,
// returning the pooled tensor and the flat argmax indices for backward.
func MaxPool2x2(in *Tensor) (*Tensor, []int32) {
	if in.Rank() != 4 {
		panic("tensor: MaxPool2x2 requires NCHW input")
	}
	n, c, h, w := in.shape[0], in.shape[1], in.shape[2], in.shape[3]
	out := New(n, c, h/2, w/2)
	arg := make([]int32, out.Len())
	MaxPool2x2Into(out, arg, in)
	return out, arg
}

// MaxPool2x2Into pools into an existing output tensor and argmax slice
// (len = out.Len()) without allocating.
func MaxPool2x2Into(out *Tensor, arg []int32, in *Tensor) {
	if in.Rank() != 4 {
		panic("tensor: MaxPool2x2 requires NCHW input")
	}
	n, c, h, w := in.shape[0], in.shape[1], in.shape[2], in.shape[3]
	oh, ow := h/2, w/2
	if out.Len() != n*c*oh*ow || len(arg) != out.Len() {
		panic("tensor: MaxPool2x2Into size mismatch")
	}
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			inOff := (img*c + ch) * h * w
			outOff := (img*c + ch) * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := inOff + (2*oy)*w + 2*ox
					bv := in.data[best]
					for dy := 0; dy < 2; dy++ {
						for dx := 0; dx < 2; dx++ {
							idx := inOff + (2*oy+dy)*w + 2*ox + dx
							if in.data[idx] > bv {
								bv, best = in.data[idx], idx
							}
						}
					}
					out.data[outOff+oy*ow+ox] = bv
					arg[outOff+oy*ow+ox] = int32(best)
				}
			}
		}
	}
}

// MaxPool2x2Backward scatters grad back through the argmax indices into a
// tensor with the given input shape.
func MaxPool2x2Backward(grad *Tensor, arg []int32, inShape []int) *Tensor {
	out := New(inShape...)
	MaxPool2x2BackwardInto(out, grad, arg)
	return out
}

// MaxPool2x2BackwardInto scatter-adds grad through the argmax indices into
// an existing zeroed tensor of the pooled input's shape.
func MaxPool2x2BackwardInto(out, grad *Tensor, arg []int32) {
	for i, g := range grad.data {
		out.data[arg[i]] += g
	}
}
