package tensor

import (
	"fmt"
	"math"
	"testing"
)

// col2imShapes are the conv backward lowerings the paper's CNNs actually
// run: VGG same-pad 3×3 stacks at two depths, the WideResNet 3×3 body, its
// stride-2 downsampling block, and the pad-0 1×1 stride-2 shortcut.
var col2imShapes = []struct {
	name string
	s    ConvSpec
	n    int
}{
	{"vgg_64c_32x32", ConvSpec{InC: 64, OutC: 64, Kernel: 3, Stride: 1, Pad: 1, InH: 32, InW: 32}, 2},
	{"vgg_128c_16x16", ConvSpec{InC: 128, OutC: 128, Kernel: 3, Stride: 1, Pad: 1, InH: 16, InW: 16}, 2},
	{"wrn_16c_32x32", ConvSpec{InC: 16, OutC: 16, Kernel: 3, Stride: 1, Pad: 1, InH: 32, InW: 32}, 2},
	{"wrn_down_32c_s2", ConvSpec{InC: 32, OutC: 64, Kernel: 3, Stride: 2, Pad: 1, InH: 32, InW: 32}, 2},
	{"wrn_short_1x1_s2_p0", ConvSpec{InC: 16, OutC: 32, Kernel: 1, Stride: 2, Pad: 0, InH: 32, InW: 32}, 2},
}

func col2imCols(s ConvSpec, n int, seed uint64) *Tensor {
	cols := New(n*s.OutH()*s.OutW(), s.InC*s.Kernel*s.Kernel)
	fillSeq(cols, NewRNG(seed))
	return cols
}

// bitwiseEqual compares element representations, not values: it
// distinguishes -0 from +0 and would catch any NaN-payload drift, which
// MaxAbsDiff's arithmetic comparison cannot.
func bitwiseEqual(a, b *Tensor) (int, bool) {
	ad, bd := a.Data(), b.Data()
	for i := range ad {
		if math.Float32bits(ad[i]) != math.Float32bits(bd[i]) {
			return i, false
		}
	}
	return -1, true
}

// TestCol2ImParallelBitwiseDeterminism pins the parallel gather kernel to
// the serial scatter reference BITWISE at every worker count the training
// stack uses — the same contract the GEMM autotuner candidates carry: the
// conv backward must not change results when the pool is resized.
func TestCol2ImParallelBitwiseDeterminism(t *testing.T) {
	defer SetWorkers(SetWorkers(0))
	for _, tc := range col2imShapes {
		t.Run(tc.name, func(t *testing.T) {
			cols := col2imCols(tc.s, tc.n, 101)
			ref := New(tc.n, tc.s.InC, tc.s.InH, tc.s.InW)
			col2imSerial(ref.Data(), cols.Data(), tc.s, tc.n)
			for _, w := range []int{1, 2, 3, 4, 8, 16} {
				SetWorkers(w)
				out := New(tc.n, tc.s.InC, tc.s.InH, tc.s.InW)
				Col2ImInto(out, cols, tc.s, tc.n)
				if i, ok := bitwiseEqual(out, ref); !ok {
					t.Fatalf("workers=%d: Col2ImInto differs from serial at flat index %d: %g vs %g",
						w, i, out.Data()[i], ref.Data()[i])
				}
				// The zeroing variant must overwrite garbage and still match.
				dirty := New(tc.n, tc.s.InC, tc.s.InH, tc.s.InW)
				fillSeq(dirty, NewRNG(7))
				Col2ImZeroInto(dirty, cols, tc.s, tc.n)
				if i, ok := bitwiseEqual(dirty, ref); !ok {
					t.Fatalf("workers=%d: Col2ImZeroInto differs from serial at flat index %d",
						w, i)
				}
			}
		})
	}
}

// TestCol2ImAccumulates pins the documented accumulate semantics: a
// non-zero destination gains the scatter on top of its contents, in the
// serial kernel's exact order.
func TestCol2ImAccumulates(t *testing.T) {
	s := ConvSpec{InC: 3, OutC: 4, Kernel: 3, Stride: 1, Pad: 1, InH: 9, InW: 7}
	cols := col2imCols(s, 2, 55)
	seed := New(2, s.InC, s.InH, s.InW)
	fillSeq(seed, NewRNG(56))
	want := seed.Clone()
	col2imSerial(want.Data(), cols.Data(), s, 2)
	got := seed.Clone()
	Col2ImInto(got, cols, s, 2)
	if i, ok := bitwiseEqual(got, want); !ok {
		t.Fatalf("accumulating Col2ImInto differs from serial at flat index %d", i)
	}
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic, got none", name)
		}
	}()
	fn()
}

// TestCol2ImShapeValidation pins the full-shape output check: a same-length
// but mis-shaped destination (the NHWC permutation of the gradient) used to
// pass the old Len()-only validation silently and scatter into the wrong
// layout.
func TestCol2ImShapeValidation(t *testing.T) {
	s := ConvSpec{InC: 3, OutC: 2, Kernel: 3, Stride: 1, Pad: 1, InH: 8, InW: 6}
	const n = 2
	cols := col2imCols(s, n, 77)
	Col2ImInto(New(n, s.InC, s.InH, s.InW), cols, s, n) // correct shape passes

	mustPanic(t, "NHWC-permuted output", func() {
		Col2ImInto(New(n, s.InH, s.InW, s.InC), cols, s, n) // same Len, wrong dims
	})
	mustPanic(t, "flat rank-1 output", func() {
		Col2ImInto(New(n*s.InC*s.InH*s.InW), cols, s, n)
	})
	mustPanic(t, "wrong batch", func() {
		Col2ImInto(New(n+1, s.InC, s.InH, s.InW), cols, s, n)
	})
	mustPanic(t, "mis-shaped cols", func() {
		Col2ImZeroInto(New(n, s.InC, s.InH, s.InW), New(4, 4), s, n)
	})
}

// TestCol2ImIntoZeroAlloc pins the pooled-job dispatch: the conv backward
// calls this once per layer per microbatch and must not allocate.
func TestCol2ImIntoZeroAlloc(t *testing.T) {
	// Hermetic allocation counting: AllocsPerRun tallies process-wide
	// mallocs, so a background tune-table save (triggered whenever a GEMM
	// bucket happens to freeze nearby) would show up as phantom allocs.
	// "off" makes the freeze path inert; persistence itself is pinned by
	// TestTunePersistenceRoundTripAllocFree.
	t.Setenv("SAMO_GEMM_TUNE", "off")

	s := ConvSpec{InC: 8, OutC: 8, Kernel: 3, Stride: 1, Pad: 1, InH: 12, InW: 12}
	cols := col2imCols(s, 2, 88)
	out := New(2, s.InC, s.InH, s.InW)
	Col2ImZeroInto(out, cols, s, 2) // warm job pool and workers
	if a := testing.AllocsPerRun(50, func() { Col2ImZeroInto(out, cols, s, 2) }); a != 0 {
		t.Errorf("Col2ImZeroInto allocates %.1f per call, want 0", a)
	}
	if a := testing.AllocsPerRun(50, func() { Col2ImInto(out, cols, s, 2) }); a != 0 {
		t.Errorf("Col2ImInto allocates %.1f per call, want 0", a)
	}
}

// BenchmarkCol2Im times the serial scatter against the parallel gather on
// the paper's conv backward shapes at 8 workers — the serial/parallel ratio
// is the col2im speedup matrix in BENCH_kernels.json, gated by
// MIN_COL2IM_SPEEDUP in scripts/bench.sh on multi-core machines.
func BenchmarkCol2Im(b *testing.B) {
	for _, tc := range col2imShapes {
		cols := col2imCols(tc.s, tc.n, 9)
		out := New(tc.n, tc.s.InC, tc.s.InH, tc.s.InW)
		b.Run(fmt.Sprintf("serial/%s", tc.name), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				zeroSlice(out.Data())
				col2imSerial(out.Data(), cols.Data(), tc.s, tc.n)
			}
		})
		b.Run(fmt.Sprintf("parallel/%s", tc.name), func(b *testing.B) {
			defer SetWorkers(SetWorkers(8))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Col2ImZeroInto(out, cols, tc.s, tc.n)
			}
		})
	}
}
