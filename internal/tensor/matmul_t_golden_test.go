package tensor

import (
	"fmt"
	"os"
	"testing"
	"time"
)

// TestGEMMTransposedCandidatesGolden pins every transposed-variant autotune
// candidate — shared-pack, mc row-blocked and the v3 8-wide strip kernels,
// with B transpose-packed for C = A·Bᵀ and A transpose-packed for
// C = Aᵀ·B — against the naive references at the same degenerate shapes the
// forward pipeline is pinned on, under a worker count larger than m for
// the small shapes. As for the forward product, the candidates must agree
// BITWISE: they share the sweep kernels, so the per-element pairwise
// k-association is identical and the autotuner's choice can never change
// results.
func TestGEMMTransposedCandidatesGolden(t *testing.T) {
	old := SetWorkers(8)
	defer SetWorkers(old)
	rng := NewRNG(52)
	// The forward v2Shapes plus the transposed-only edges: m past 256
	// splits the gemmTN Aᵀ pack at the packBufCap/kc clamp for the kc=512
	// candidates (the mc=128 block boundary is already in v2Shapes).
	shapes := append(append([][3]int{}, v2Shapes...), [3]int{300, 520, 40}, [3]int{270, 600, 72})
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		t.Run(fmt.Sprintf("NT/%dx%dx%d", m, k, n), func(t *testing.T) {
			a, b := New(m, k), New(n, k)
			fillSeq(a, rng)
			fillSeq(b, rng)
			want := refMatMulT(a, b)
			checkTransposedCands(t, gemmNT, a, b, want, m, k, n, rng)
		})
		t.Run(fmt.Sprintf("TN/%dx%dx%d", m, k, n), func(t *testing.T) {
			a, b := New(k, m), New(k, n)
			fillSeq(a, rng)
			fillSeq(b, rng)
			want := refTMatMul(a, b)
			checkTransposedCands(t, gemmTN, a, b, want, m, k, n, rng)
		})
	}
}

func checkTransposedCands(t *testing.T, v gemmVariant, a, b, want *Tensor, m, k, n int, rng *RNG) {
	t.Helper()
	var first *Tensor
	for ci, cand := range tuneCandsT {
		got := New(m, n)
		gemmV2(v, got.data, a.data, b.data, m, k, n, false, cand)
		if d := MaxAbsDiff(got, want); d > tol(k) {
			t.Fatalf("candidate %d (%+v): differs from naive by %g", ci, cand, d)
		}
		if first == nil {
			first = got
		} else if i, ok := bitwiseEqual(got, first); !ok {
			t.Fatalf("candidate %d (%+v): not bitwise-equal to candidate 0 at index %d", ci, cand, i)
		}
		// Accumulating form: C = seed + product.
		acc := New(m, n)
		fillSeq(acc, rng)
		wantAcc := acc.Clone()
		Add(wantAcc, want)
		gemmV2(v, acc.data, a.data, b.data, m, k, n, true, cand)
		if d := MaxAbsDiff(acc, wantAcc); d > tol(k) {
			t.Fatalf("candidate %d (%+v) accumulate: differs by %g", ci, cand, d)
		}
	}
}

// transposedBackwardShapes are the Figure-1 FC backward products the
// determinism goldens run on: the batch-576 input-gradient (A·Bᵀ) and
// weight-gradient (Aᵀ·B) shapes, plus the small-m / small-n regimes where
// the shared pack matters most.
var transposedBackwardShapes = []struct {
	name    string
	v       gemmVariant
	m, k, n int
}{
	{"NT/input_grad_576x128", gemmNT, 576, 128, 128},
	{"NT/input_grad_8x512", gemmNT, 8, 512, 512},
	{"TN/weight_grad_128x576", gemmTN, 128, 576, 128},
	{"TN/weight_grad_16x576x512", gemmTN, 16, 576, 512},
}

// TestTransposedGEMMBitwiseDeterminism pins MatMulT/TMatMul to one
// reference output BITWISE at every worker count the training stack uses
// and across every autotune candidate — the same contract the forward GEMM
// and col2im carry: resizing the pool or re-tuning a bucket can never
// perturb the backward passes. The reference is candidate 0 at one worker;
// the public dispatcher is checked on top of the candidates, whatever
// probe state its bucket is in.
func TestTransposedGEMMBitwiseDeterminism(t *testing.T) {
	defer SetWorkers(SetWorkers(0))
	for _, tc := range transposedBackwardShapes {
		t.Run(tc.name, func(t *testing.T) {
			rng := NewRNG(53)
			var a, b *Tensor
			if tc.v == gemmNT {
				a, b = New(tc.m, tc.k), New(tc.n, tc.k)
			} else {
				a, b = New(tc.k, tc.m), New(tc.k, tc.n)
			}
			fillSeq(a, rng)
			fillSeq(b, rng)
			SetWorkers(1)
			ref := New(tc.m, tc.n)
			gemmV2(tc.v, ref.data, a.data, b.data, tc.m, tc.k, tc.n, false, tuneCandsT[0])
			for _, w := range []int{1, 2, 3, 4, 8, 16} {
				SetWorkers(w)
				for ci, cand := range tuneCandsT {
					out := New(tc.m, tc.n)
					gemmV2(tc.v, out.data, a.data, b.data, tc.m, tc.k, tc.n, false, cand)
					if i, ok := bitwiseEqual(out, ref); !ok {
						t.Fatalf("workers=%d candidate %d (%+v): differs from reference at index %d",
							w, ci, cand, i)
					}
				}
				out := New(tc.m, tc.n)
				if tc.v == gemmNT {
					MatMulTInto(out, a, b, false)
				} else {
					TMatMulInto(out, a, b, false)
				}
				if i, ok := bitwiseEqual(out, ref); !ok {
					t.Fatalf("workers=%d: dispatcher differs from reference at index %d", w, i)
				}
			}
		})
	}
}

// TestGemmPackATTiledGolden pins the tiled (32×32-block) Aᵀ transpose-pack
// bitwise to the per-element gather it replaced: the pack is pure data
// relocation, so every packed element must match
// a[(k0+kk)·m + i0+ii] exactly — including ragged tiles, offset (i0, k0)
// blocks and the full pooled-buffer block — and chunked invocation (how
// parallel.Run drives it) must produce the same bytes as one chunk.
func TestGemmPackATTiledGolden(t *testing.T) {
	rng := NewRNG(61)
	for _, s := range []struct{ m, k, i0, mcur, k0, kcur int }{
		{64, 64, 0, 64, 0, 64},
		{100, 300, 0, 100, 0, 256},
		{300, 520, 128, 172, 256, 264}, // ragged tiles, offset block
		{37, 45, 5, 31, 7, 33},
		{256, 512, 0, 256, 0, 512}, // exactly fills the pooled buffer
	} {
		a := New(s.k, s.m) // gemmTN's A operand is (k, m)
		fillSeq(a, rng)
		got := make([]float32, s.mcur*s.kcur)
		j := gemmV2JobFree.Get()
		j.a, j.m = a.data, s.m
		j.i0, j.k0, j.kcur = s.i0, s.k0, s.kcur
		j.pa = got
		gemmPackATChunk(j, 0, s.mcur)
		for ii := 0; ii < s.mcur; ii++ {
			for kk := 0; kk < s.kcur; kk++ {
				want := a.data[(s.k0+kk)*s.m+s.i0+ii]
				if got[ii*s.kcur+kk] != want {
					t.Fatalf("%+v: packed (%d,%d) = %g, gather reference %g",
						s, ii, kk, got[ii*s.kcur+kk], want)
				}
			}
		}
		// Chunked invocation with an uneven split must relocate identically.
		chunked := make([]float32, s.mcur*s.kcur)
		j.pa = chunked
		cut := s.mcur/3 + 1
		gemmPackATChunk(j, 0, cut)
		gemmPackATChunk(j, cut, s.mcur)
		for i := range got {
			if chunked[i] != got[i] {
				t.Fatalf("%+v: chunked pack differs at %d", s, i)
			}
		}
		j.a, j.pa = nil, nil
		gemmV2JobFree.Put(j)
	}
}

// TestTransposedTunePersistence round-trips a transposed-variant decision
// through the JSON table: the variant key must survive save/load, and a
// loaded bucket must skip probing with the same choice.
func TestTransposedTunePersistence(t *testing.T) {
	ResetTuneTable()
	defer ResetTuneTable()
	a, b, c := New(24, 200), New(48, 200), New(24, 48)
	rng := NewRNG(54)
	fillSeq(a, rng)
	fillSeq(b, rng)
	e := tuneFor(gemmNT, 24, 200, 48)
	for i := 0; i < 4*len(e.cands)*tuneProbeRuns && e.chosen.Load() < 0; i++ {
		gemmT(c.data, a.data, b.data, 24, 200, 48, false)
	}
	if e.chosen.Load() < 0 {
		t.Fatal("autotuner did not decide after probe budget")
	}
	chosen := e.chosen.Load()
	path := t.TempDir() + "/tune.json"
	if err := SaveTuneTable(path); err != nil {
		t.Fatal(err)
	}
	ResetTuneTable()
	if err := LoadTuneTable(path); err != nil {
		t.Fatal(err)
	}
	e2 := tuneFor(gemmNT, 24, 200, 48)
	if got := e2.chosen.Load(); got != chosen {
		t.Fatalf("reloaded choice %d, want %d", got, chosen)
	}
	// The forward bucket at the same shape must be unaffected: variants
	// tune independently.
	if got := tuneFor(gemmNN, 24, 200, 48).chosen.Load(); got != -1 {
		t.Fatalf("forward bucket pre-decided to %d by a transposed record", got)
	}
}

// TestFlushTuneTable pins the synchronous flush the cmds call at exit: the
// debounced background saver can lose every freeze when a short-lived
// process exits inside its coalescing window, so FlushTuneTable must write
// the file immediately — but only once something has actually decided (an
// undecided table must not clobber an earlier run's file).
func TestFlushTuneTable(t *testing.T) {
	path := t.TempDir() + "/tune.json"
	t.Setenv("SAMO_GEMM_TUNE", path)
	ResetTuneTable()
	defer ResetTuneTable()

	if err := FlushTuneTable(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("flush of an undecided table wrote a file")
	}

	a, b, c := New(24, 200), New(200, 48), New(24, 48)
	rng := NewRNG(55)
	fillSeq(a, rng)
	fillSeq(b, rng)
	e := tuneFor(gemmNN, 24, 200, 48)
	for i := 0; i < 4*len(e.cands)*tuneProbeRuns && e.chosen.Load() < 0; i++ {
		gemm(c.data, a.data, b.data, 24, 200, 48, false)
	}
	if e.chosen.Load() < 0 {
		t.Fatal("autotuner did not decide after probe budget")
	}
	if err := FlushTuneTable(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("flush did not write the tune table: %v", err)
	}
	// Let the background saver's pending kick (from the freeze above)
	// land before asserting on file absence below — its debounce window
	// is 20ms and it would otherwise recreate the file we remove.
	time.Sleep(150 * time.Millisecond)

	// The flushed file must round-trip.
	chosen := e.chosen.Load()
	ResetTuneTable()
	if err := LoadTuneTable(path); err != nil {
		t.Fatal(err)
	}
	if got := tuneFor(gemmNN, 24, 200, 48).chosen.Load(); got != chosen {
		t.Fatalf("flushed table reloaded choice %d, want %d", got, chosen)
	}
	// A table holding only disk-loaded decisions is not dirty: flushing
	// again must not rewrite the file (it could rename a stale startup
	// copy over a concurrent process's newer save).
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := FlushTuneTable(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("flush of a loaded-but-unchanged table rewrote the file")
	}
}
