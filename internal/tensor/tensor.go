// Package tensor provides the dense tensor substrate used throughout the
// SAMO reproduction: float32 tensors with shapes and views, a parallel
// blocked GEMM, im2col convolution lowering, elementwise kernels, and a
// half-precision (fp16-storage) tensor mirroring mixed-precision training.
//
// The package plays the role cuBLAS/cuDNN+PyTorch play in the paper: the
// dense compute path that SAMO deliberately keeps — θ16 stays dense so the
// forward and backward passes can use these kernels unmodified.
package tensor

import (
	"fmt"
	"strings"
)

// Tensor is a dense row-major float32 tensor. The zero value is an empty
// tensor; use New or FromSlice for anything else. Data is always contiguous:
// views that would require strides copy instead, keeping kernel code simple
// and cache-friendly (the same trade dense GPU kernels make).
type Tensor struct {
	shape []int
	data  []float32
}

// New returns a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	// make+copy rather than append-to-nil: this keeps the variadic shape
	// argument non-escaping at call sites (append's flow analysis would
	// force callers to heap-allocate it on every call — measurable on the
	// arena's hot path).
	sh := make([]int, len(shape))
	copy(sh, shape)
	return &Tensor{shape: sh, data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is NOT
// copied; the tensor aliases it. len(data) must equal the shape's element
// count.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice data length %d does not match shape %v (%d elements)", len(data), append([]int(nil), shape...), n))
	}
	sh := make([]int, len(shape))
	copy(sh, shape)
	return &Tensor{shape: sh, data: data}
}

func checkShape(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			// Copy before formatting: handing shape itself to Sprintf would
			// make the parameter escape and force every caller to heap-
			// allocate its variadic shape argument — on the non-panic path.
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", append([]int(nil), shape...)))
		}
		n *= d
	}
	return n
}

// Shape returns the tensor's dimensions. The caller must not modify it.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the backing slice in row-major order. Mutations are visible
// to the tensor; this is the primary interface for flat kernels (optimizer,
// compression) that do not care about shape.
func (t *Tensor) Data() []float32 { return t.data }

// At returns the element at the given indices.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set stores v at the given indices.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for rank-%d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range [0,%d) in dim %d", ix, t.shape[i], i))
		}
		off = off*t.shape[i] + ix
	}
	return off
}

// Reshape returns a view of t with a new shape (same backing data). One
// dimension may be -1, in which case it is inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	// Copy into a fresh variable rather than reassigning the parameter:
	// a reassigned variadic parameter is marked leaking by escape
	// analysis, which would force every caller (Arena.ViewOf among them)
	// to heap-allocate its shape literal on the non-panic path.
	sh := make([]int, len(shape))
	copy(sh, shape)
	infer := -1
	n := 1
	for i, d := range sh {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: at most one -1 dimension in Reshape")
			}
			infer = i
		} else {
			n *= d
		}
	}
	if infer >= 0 {
		if n == 0 || len(t.data)%n != 0 {
			panic(fmt.Sprintf("tensor: cannot infer dimension reshaping %v to %v", t.shape, sh))
		}
		sh[infer] = len(t.data) / n
		n *= sh[infer]
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: reshape %v to %v changes element count", t.shape, sh))
	}
	return &Tensor{shape: sh, data: t.data}
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	d := make([]float32, len(t.data))
	copy(d, t.data)
	return &Tensor{shape: append([]int(nil), t.shape...), data: d}
}

// CopyFrom copies src's data into t. Shapes must have equal element counts.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(src.data) != len(t.data) {
		panic("tensor: CopyFrom size mismatch")
	}
	copy(t.data, src.data)
}

// Zero sets every element to zero.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Row returns a view of row i of a rank-2 tensor as a 1-D tensor.
func (t *Tensor) Row(i int) *Tensor {
	if len(t.shape) != 2 {
		panic("tensor: Row requires rank 2")
	}
	c := t.shape[1]
	return &Tensor{shape: []int{c}, data: t.data[i*c : (i+1)*c]}
}

// Slice returns a view of rows [lo,hi) along the first dimension.
func (t *Tensor) Slice(lo, hi int) *Tensor {
	if len(t.shape) == 0 {
		panic("tensor: Slice requires rank >= 1")
	}
	if lo < 0 || hi > t.shape[0] || lo > hi {
		panic(fmt.Sprintf("tensor: Slice[%d:%d] out of range for dim %d", lo, hi, t.shape[0]))
	}
	stride := 1
	for _, d := range t.shape[1:] {
		stride *= d
	}
	shape := append([]int{hi - lo}, t.shape[1:]...)
	return &Tensor{shape: shape, data: t.data[lo*stride : hi*stride]}
}

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.shape) != len(u.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != u.shape[i] {
			return false
		}
	}
	return true
}

// String renders small tensors fully and large ones as a summary.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.shape)
	if len(t.data) <= 16 {
		fmt.Fprintf(&b, "%v", t.data)
	} else {
		fmt.Fprintf(&b, "[%g %g ... %g]", t.data[0], t.data[1], t.data[len(t.data)-1])
	}
	return b.String()
}

// MaxAbsDiff returns the largest absolute elementwise difference between t
// and u, which must have equal element counts. Used pervasively in tests.
func MaxAbsDiff(t, u *Tensor) float64 {
	if len(t.data) != len(u.data) {
		panic("tensor: MaxAbsDiff size mismatch")
	}
	var m float64
	for i := range t.data {
		d := float64(t.data[i] - u.data[i])
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}
