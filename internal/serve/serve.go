// Package serve runs forward-only models behind a dynamic micro-batching
// engine: concurrent callers submit single samples, a batching loop gathers
// them into padded power-of-two batches (the same ceil-log2 bucketing the
// GEMM autotuner keys on, so serving traffic hits a handful of frozen
// blocking decisions instead of probing one bucket per distinct batch
// size), and a bounded admission queue turns overload into immediate
// backpressure instead of unbounded latency.
//
// The engine's determinism contract is batch-composition independence: a
// sample's output bits depend only on the sample, never on what else
// shared its batch or on the traffic level. Every dense kernel computes
// each output row from that row's inputs alone, bitwise-identically at
// every worker count — but NOT identically across different batch heights:
// the GEMM autotuner freezes a blocking per ceil-log2(m) bucket, and
// different blockings accumulate k in different orders, so the same row
// through m=1 and m=8 products can differ in final bits. The default
// PadFixed policy therefore pads every batch to one fixed height
// (ceilPow2(MaxBatch)): with the geometry constant, row-value independence
// is all that is needed, and a sample served among strangers matches the
// same sample replicated into a batch by itself, bit for bit. PadPow2
// trades that invariance for less padding compute at light load. (Sparse
// crossover decisions are the other path-dependent choice; they freeze per
// shape bucket and persist across processes, so a served model keeps its
// training run's paths — see sparse.FlushXoverTable.)
package serve

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"time"

	"github.com/sparse-dl/samo/internal/core"
	"github.com/sparse-dl/samo/internal/sparse"
	"github.com/sparse-dl/samo/internal/tensor"
)

var (
	// ErrOverloaded is returned by Infer when the admission queue is full:
	// the caller sheds load (or retries with backoff) instead of queueing
	// without bound.
	ErrOverloaded = errors.New("serve: admission queue full")
	// ErrClosed is returned by Infer after Close has begun draining.
	ErrClosed = errors.New("serve: engine closed")
)

// PadPolicy selects how a gathered batch pads to its bucket.
type PadPolicy uint8

const (
	// PadFixed (the default) pads every batch to ceilPow2(MaxBatch):
	// constant batch geometry, so a sample's output bits are independent
	// of batch composition and traffic (see the package comment).
	PadFixed PadPolicy = iota
	// PadPow2 pads to the next power of two of the gathered count: less
	// padding compute at light load, but a sample's bits may vary with the
	// bucket it lands in (different GEMM m-buckets freeze different
	// accumulation orders).
	PadPow2
)

// Config tunes the batching engine. The zero value gets serving defaults.
type Config struct {
	// MaxBatch is the largest number of samples gathered into one forward
	// (default 8). Gathered batches pad up to their bucket per Pad, never
	// beyond ceilPow2(MaxBatch).
	MaxBatch int
	// Pad selects the padding policy (default PadFixed).
	Pad PadPolicy
	// QueueDepth bounds the admission queue (default 4×MaxBatch). A full
	// queue rejects with ErrOverloaded.
	QueueDepth int
	// BatchWindow is how long the batching loop holds an underfull batch
	// open for more arrivals (default 200µs). Zero means the default; a
	// negative value disables waiting (every batch ships immediately).
	BatchWindow time.Duration
}

func (c *Config) setDefaults() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxBatch
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 200 * time.Microsecond
	}
}

// Stats is a point-in-time snapshot of engine counters.
type Stats struct {
	Requests      int64 // samples admitted and answered
	Batches       int64 // forward passes run
	PaddedSamples int64 // replicated padding samples across all batches
	Rejected      int64 // ErrOverloaded rejections
}

// MeanBatch is the average samples per forward (0 before the first batch).
func (s Stats) MeanBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Requests) / float64(s.Batches)
}

// request is one admitted sample riding the queue to the batching loop.
type request struct {
	x    *tensor.Tensor // caller-owned; read once during batch assembly
	resp *tensor.Tensor // engine-allocated; caller-owned after done
	err  error
	done chan struct{}
}

// Engine serves an InferenceState. One batching goroutine owns the
// Inferencer (whose arenas are not concurrency-safe); any number of
// goroutines may call Infer concurrently.
type Engine struct {
	inf *core.Inferencer
	cfg Config

	mu     sync.RWMutex // closed/queue lifecycle; RLock on the submit path
	closed bool
	queue  chan *request

	// Sample-shape contract, fixed by the first admitted request: every
	// sample must share it, so batch buffers recycle by padded size alone.
	shapeMu sync.Mutex
	shape   []int

	done chan struct{} // batching loop exited

	// Batching-loop state (single goroutine; no locks).
	batchScratch []*request
	inBufs       map[int]*tensor.Tensor // padded sample count -> input buffer

	statMu sync.Mutex
	stats  Stats
}

// New builds an engine over a forward-only state and starts its batching
// loop. Call Close to drain and stop it.
func New(st *core.InferenceState, cfg Config) *Engine {
	cfg.setDefaults()
	e := &Engine{
		inf:    core.NewInferencer(st),
		cfg:    cfg,
		queue:  make(chan *request, cfg.QueueDepth),
		done:   make(chan struct{}),
		inBufs: make(map[int]*tensor.Tensor),
	}
	go e.loop()
	return e
}

// Infer submits one sample and blocks until its outputs are ready. x is one
// sample — for an MLP a (1, features) row, for a GPT model a (seq, 1)
// token column, for a CNN a (1, c, h, w) image — and every sample the
// engine ever sees must share one shape (the first request fixes it). The
// caller must not mutate x until Infer returns; the returned tensor is
// freshly allocated and owned by the caller. Under PadFixed the response
// bits depend only on the sample: whatever batch it lands in, they equal
// the offline inference forward of the sample at the serving geometry
// (the sample replicated to the fixed bucket).
func (e *Engine) Infer(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x == nil || x.Rank() == 0 || x.Dim(0) < 1 {
		return nil, fmt.Errorf("serve: invalid sample tensor")
	}
	if err := e.checkShape(x); err != nil {
		return nil, err
	}
	r := &request{x: x, done: make(chan struct{})}
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return nil, ErrClosed
	}
	select {
	case e.queue <- r:
		e.mu.RUnlock()
	default:
		e.mu.RUnlock()
		e.statMu.Lock()
		e.stats.Rejected++
		e.statMu.Unlock()
		return nil, ErrOverloaded
	}
	<-r.done
	return r.resp, r.err
}

func (e *Engine) checkShape(x *tensor.Tensor) error {
	e.shapeMu.Lock()
	defer e.shapeMu.Unlock()
	if e.shape == nil {
		e.shape = append([]int(nil), x.Shape()...)
		return nil
	}
	got := x.Shape()
	if len(got) != len(e.shape) {
		return fmt.Errorf("serve: sample shape %v does not match engine shape %v", got, e.shape)
	}
	for i, d := range e.shape {
		if got[i] != d {
			return fmt.Errorf("serve: sample shape %v does not match engine shape %v", got, e.shape)
		}
	}
	return nil
}

// Close drains gracefully: admission stops (ErrClosed), every already-
// queued request is served, the batching loop exits, and both autotuner
// tables — GEMM blockings and sparse/dense crossover decisions — flush to
// their persisted files so the next process starts warm. Safe to call more
// than once.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		<-e.done
		return nil
	}
	e.closed = true
	close(e.queue)
	e.mu.Unlock()
	<-e.done
	err := tensor.FlushTuneTable()
	if xerr := sparse.FlushXoverTable(); err == nil {
		err = xerr
	}
	return err
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	e.statMu.Lock()
	defer e.statMu.Unlock()
	return e.stats
}

func (e *Engine) loop() {
	defer close(e.done)
	for r := range e.queue {
		e.runBatch(e.gather(r))
	}
}

// gather assembles one batch: the leading request, then up to
// MaxBatch-1 more, waiting at most BatchWindow for stragglers. A closed
// queue ends gathering early with whatever arrived.
func (e *Engine) gather(first *request) []*request {
	batch := append(e.batchScratch[:0], first)
	if e.cfg.MaxBatch > 1 && e.cfg.BatchWindow > 0 {
		timer := time.NewTimer(e.cfg.BatchWindow)
		for len(batch) < e.cfg.MaxBatch {
			select {
			case r, ok := <-e.queue:
				if !ok {
					timer.Stop()
					e.batchScratch = batch
					return batch
				}
				batch = append(batch, r)
			case <-timer.C:
				e.batchScratch = batch
				return batch
			}
		}
		timer.Stop()
	} else {
		// No waiting: take only what is already queued.
		for len(batch) < e.cfg.MaxBatch {
			select {
			case r, ok := <-e.queue:
				if !ok {
					e.batchScratch = batch
					return batch
				}
				batch = append(batch, r)
			default:
				e.batchScratch = batch
				return batch
			}
		}
	}
	e.batchScratch = batch
	return batch
}

// ceilPow2 returns the smallest power of two ≥ n.
func ceilPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// runBatch pads the gathered samples to a power-of-two bucket (replicating
// the last sample, so padding rows exercise the exact kernels real rows
// do), runs one windowed inference forward, and slices each request's rows
// out of the batch output into its own response tensor.
func (e *Engine) runBatch(batch []*request) {
	k := len(batch)
	if k == 0 {
		return
	}
	kPad := ceilPow2(k)
	if e.cfg.Pad == PadFixed {
		kPad = ceilPow2(e.cfg.MaxBatch)
	}
	s0 := batch[0].x.Dim(0)
	sampleLen := batch[0].x.Len()

	in, ok := e.inBufs[kPad]
	if !ok {
		shape := append([]int{kPad * s0}, batch[0].x.Shape()[1:]...)
		in = tensor.New(shape...)
		e.inBufs[kPad] = in
	}
	dst := in.Data()
	for i, r := range batch {
		copy(dst[i*sampleLen:(i+1)*sampleLen], r.x.Data())
	}
	last := batch[k-1].x.Data()
	for i := k; i < kPad; i++ {
		copy(dst[i*sampleLen:(i+1)*sampleLen], last)
	}

	y := e.inf.Forward(in)
	if y.Dim(0)%kPad != 0 {
		err := fmt.Errorf("serve: model output dim 0 %d not divisible by batch %d", y.Dim(0), kPad)
		for _, r := range batch {
			r.err = err
			close(r.done)
		}
		return
	}
	rps := y.Dim(0) / kPad // output rows per sample
	rowLen := y.Len() / y.Dim(0)
	outShape := append([]int{rps}, y.Shape()[1:]...)
	src := y.Data()
	for i, r := range batch {
		r.resp = tensor.New(outShape...)
		copy(r.resp.Data(), src[i*rps*rowLen:(i+1)*rps*rowLen])
		close(r.done)
	}

	e.statMu.Lock()
	e.stats.Requests += int64(k)
	e.stats.Batches++
	e.stats.PaddedSamples += int64(kPad - k)
	e.statMu.Unlock()
}
