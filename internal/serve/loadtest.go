package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sparse-dl/samo/internal/tensor"
)

// Report is one load-test result, shaped for BENCH_serving.json: latency
// quantiles and throughput, plus the batching counters that explain them
// (a mean batch near 1 means the window never filled; padded samples are
// the price of power-of-two buckets).
type Report struct {
	Model         string  `json:"model"`
	Requests      int     `json:"requests"`
	Concurrency   int     `json:"concurrency"`
	WallSeconds   float64 `json:"wall_seconds"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	Batches       int64   `json:"batches"`
	MeanBatch     float64 `json:"mean_batch"`
	PaddedSamples int64   `json:"padded_samples"`
	Retries       int64   `json:"retries"` // ErrOverloaded rejections retried
}

// LoadTest drives the engine with `concurrency` goroutines issuing
// `requests` single-sample inferences total; sample(i) supplies the i-th
// input (called once per request, any order). Backpressure rejections are
// retried with capped exponential backoff — the load test measures the
// engine under saturation, it does not shed — and each retry is counted.
// Latency is measured around the whole submit-to-response round trip, the
// number a client would see.
func LoadTest(e *Engine, model string, sample func(i int) *tensor.Tensor, requests, concurrency int) (*Report, error) {
	if requests < 1 || concurrency < 1 {
		return nil, fmt.Errorf("serve: LoadTest needs requests ≥ 1 and concurrency ≥ 1 (got %d, %d)", requests, concurrency)
	}
	latencies := make([]float64, requests) // ms, indexed by request
	var next, retries atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= requests {
					return
				}
				x := sample(i)
				backoff := 50 * time.Microsecond
				t0 := time.Now()
				for {
					_, err := e.Infer(x)
					if err == nil {
						break
					}
					if err != ErrOverloaded {
						firstErr.CompareAndSwap(nil, err)
						return
					}
					retries.Add(1)
					time.Sleep(backoff)
					if backoff < 5*time.Millisecond {
						backoff *= 2
					}
				}
				latencies[i] = float64(time.Since(t0)) / float64(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	if err, _ := firstErr.Load().(error); err != nil {
		return nil, err
	}

	sort.Float64s(latencies)
	st := e.Stats()
	return &Report{
		Model:         model,
		Requests:      requests,
		Concurrency:   concurrency,
		WallSeconds:   wall.Seconds(),
		ThroughputRPS: float64(requests) / wall.Seconds(),
		P50Ms:         percentile(latencies, 0.50),
		P99Ms:         percentile(latencies, 0.99),
		Batches:       st.Batches,
		MeanBatch:     st.MeanBatch(),
		PaddedSamples: st.PaddedSamples,
		Retries:       retries.Load(),
	}, nil
}

// percentile returns the nearest-rank q-quantile of sorted values.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
