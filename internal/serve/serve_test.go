package serve

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/sparse-dl/samo/internal/core"
	"github.com/sparse-dl/samo/internal/nn"
	"github.com/sparse-dl/samo/internal/optim"
	"github.com/sparse-dl/samo/internal/prune"
	"github.com/sparse-dl/samo/internal/sparse"
	"github.com/sparse-dl/samo/internal/tensor"
)

// newInferenceState wraps a model in a forward-only state (dense mode, no
// pruning) — the serve engine's only dependency.
func newInferenceState(m *nn.Model) *core.InferenceState {
	return core.NewInferenceState(m, optim.NewAdam(0.01), core.Dense, nil)
}

// offlineRefs computes, for each sample, the offline inference forward at
// the engine's serving geometry: the sample replicated to the fixed
// power-of-two bucket, first sample's rows sliced out. Under PadFixed this
// is exactly what a served response must equal, bit for bit.
func offlineRefs(m *nn.Model, samples []*tensor.Tensor, maxBatch int) [][]float32 {
	bucket := 1
	for bucket < maxBatch {
		bucket *= 2
	}
	refs := make([][]float32, len(samples))
	a := tensor.NewArena()
	for i, x := range samples {
		s0 := x.Dim(0)
		shape := append([]int{bucket * s0}, x.Shape()[1:]...)
		xr := tensor.New(shape...)
		for r := 0; r < bucket; r++ {
			copy(xr.Data()[r*x.Len():(r+1)*x.Len()], x.Data())
		}
		y := m.Infer(a, xr)
		rps := y.Dim(0) / bucket
		rowLen := y.Len() / y.Dim(0)
		refs[i] = append([]float32(nil), y.Data()[:rps*rowLen]...)
		a.Reset()
	}
	return refs
}

// serveAll drives the engine with `concurrency` goroutines over all samples,
// retrying backpressure rejections, and returns each response's data.
func serveAll(t *testing.T, e *Engine, samples []*tensor.Tensor, concurrency int) [][]float32 {
	t.Helper()
	got := make([][]float32, len(samples))
	errs := make([]error, concurrency)
	var next atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(samples) {
					return
				}
				for {
					y, err := e.Infer(samples[i])
					if err == nil {
						got[i] = y.Data()
						break
					}
					if err != ErrOverloaded {
						errs[c] = fmt.Errorf("request %d: %w", i, err)
						return
					}
					time.Sleep(50 * time.Microsecond)
				}
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	return got
}

func assertBitwise(t *testing.T, refs, got [][]float32) {
	t.Helper()
	for i := range refs {
		if len(got[i]) != len(refs[i]) {
			t.Fatalf("request %d: served %d values, offline %d", i, len(got[i]), len(refs[i]))
		}
		for j := range refs[i] {
			if math.Float32bits(got[i][j]) != math.Float32bits(refs[i][j]) {
				t.Fatalf("request %d value %d: served %x != offline %x",
					i, j, math.Float32bits(got[i][j]), math.Float32bits(refs[i][j]))
			}
		}
	}
}

// TestServeBitwiseMatchesOffline is the serving determinism golden: under
// the default PadFixed policy, responses served among arbitrary concurrent
// traffic are bitwise-identical to the offline inference forward of each
// sample at the serving geometry — on the MLP and GPT families.
func TestServeBitwiseMatchesOffline(t *testing.T) {
	rng := tensor.NewRNG(17)
	mlp := nn.BuildMLP("smlp", []int{12, 24, 5}, rng)
	mlpSamples := make([]*tensor.Tensor, 40)
	for i := range mlpSamples {
		x := tensor.New(1, 12)
		tensor.FillNormal(x, 1, rng)
		mlpSamples[i] = x
	}

	gpt := nn.BuildGPT(nn.GPTConfig{Name: "sgpt", Layers: 1, Hidden: 32,
		Heads: 4, Seq: 6, Vocab: 20}, rng)
	gptSamples := make([]*tensor.Tensor, 24)
	for i := range gptSamples {
		ids := make([]int, 6)
		for j := range ids {
			ids[j] = (i*5 + j*3) % 20
		}
		gptSamples[i] = nn.TokensToTensor(ids)
	}

	for _, tc := range []struct {
		name    string
		model   *nn.Model
		samples []*tensor.Tensor
	}{{"mlp", mlp, mlpSamples}, {"gpt", gpt, gptSamples}} {
		t.Run(tc.name, func(t *testing.T) {
			// Build the state FIRST: its constructor quantizes the model's
			// weights to the fp16 grid in place, and the offline reference
			// must run on the same grid the engine serves.
			st := newInferenceState(tc.model)
			refs := offlineRefs(tc.model, tc.samples, 4)
			e := New(st, Config{MaxBatch: 4, BatchWindow: 100 * time.Microsecond})
			got := serveAll(t, e, tc.samples, 6)
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
			assertBitwise(t, refs, got)
			stats := e.Stats()
			if stats.Requests != int64(len(tc.samples)) {
				t.Fatalf("stats count %d requests, served %d", stats.Requests, len(tc.samples))
			}
			if stats.Batches < 1 || stats.Batches > int64(len(tc.samples)) {
				t.Fatalf("implausible batch count %d", stats.Batches)
			}
		})
	}
}

// TestServeSparsifiedBitwise extends the golden to sparse execution: a
// Sparsify'd model served through the engine matches its offline forward
// with the crossover pinned to each submode (the path choice is the one
// timing-dependent decision; serving pins it just like training runs do).
func TestServeSparsifiedBitwise(t *testing.T) {
	for _, mode := range []string{"sparse", "dense"} {
		t.Run(mode, func(t *testing.T) {
			prev, err := sparse.SetXover(mode)
			if err != nil {
				t.Fatal(err)
			}
			defer sparse.SetXover(prev)

			rng := tensor.NewRNG(23)
			base := nn.BuildMLP("xmlp", []int{16, 32, 6}, rng)
			var layers []prune.Layer
			for _, e := range base.PruneLayers() {
				layers = append(layers, prune.Layer{Name: e.Name, Values: e.Param.Value.Data()})
			}
			m := nn.Sparsify(base, prune.MagnitudePerLayer(layers, 0.9))
			samples := make([]*tensor.Tensor, 20)
			for i := range samples {
				x := tensor.New(1, 16)
				tensor.FillNormal(x, 1, rng)
				samples[i] = x
			}

			st := newInferenceState(m) // quantizes in place; refs must follow
			refs := offlineRefs(m, samples, 4)
			e := New(st, Config{MaxBatch: 4})
			got := serveAll(t, e, samples, 5)
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
			assertBitwise(t, refs, got)
		})
	}
}

// TestServePadPow2 exercises the lighter padding policy: responses carry
// the right geometry and the padded-sample count stays below what PadFixed
// would produce. No bitwise claim — pow2 buckets legitimately vary bits.
func TestServePadPow2(t *testing.T) {
	rng := tensor.NewRNG(29)
	m := nn.BuildMLP("pmlp", []int{10, 16, 4}, rng)
	samples := make([]*tensor.Tensor, 15)
	for i := range samples {
		x := tensor.New(1, 10)
		tensor.FillNormal(x, 1, rng)
		samples[i] = x
	}
	e := New(newInferenceState(m), Config{MaxBatch: 8, Pad: PadPow2, BatchWindow: -1})
	got := serveAll(t, e, samples, 3)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	for i, y := range got {
		if len(y) != 4 {
			t.Fatalf("request %d: %d values, want 4", i, len(y))
		}
	}
	st := e.Stats()
	// With BatchWindow<0 many batches ship as singletons: pow2 pads those
	// to 1, where PadFixed would pad every batch to 8.
	if fixed := st.Batches*8 - st.Requests; st.PaddedSamples >= fixed {
		t.Fatalf("PadPow2 padded %d samples, no better than PadFixed's %d", st.PaddedSamples, fixed)
	}
}

// TestServeBackpressure pins the admission contract: with the batching loop
// wedged, a full queue rejects instantly with ErrOverloaded and counts the
// rejection — it never blocks the caller.
func TestServeBackpressure(t *testing.T) {
	rng := tensor.NewRNG(31)
	m := nn.BuildMLP("bmlp", []int{8, 8, 3}, rng)
	// MaxBatch 1 + tiny queue: the loop is busy serving slow singleton
	// batches while we overfill the queue from many goroutines.
	e := New(newInferenceState(m), Config{MaxBatch: 1, QueueDepth: 2})
	defer e.Close()

	var rejected atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				x := tensor.New(1, 8)
				if _, err := e.Infer(x); err == ErrOverloaded {
					rejected.Add(1)
				} else if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if rejected.Load() == 0 {
		t.Skip("queue never filled on this machine; backpressure untestable here")
	}
	if got := e.Stats().Rejected; got != rejected.Load() {
		t.Fatalf("stats count %d rejections, callers saw %d", got, rejected.Load())
	}
}

// TestServeCloseDrains pins graceful shutdown: requests queued before Close
// are all answered, requests after Close get ErrClosed, and Close is
// idempotent.
func TestServeCloseDrains(t *testing.T) {
	rng := tensor.NewRNG(37)
	m := nn.BuildMLP("dmlp", []int{8, 8, 3}, rng)
	e := New(newInferenceState(m), Config{MaxBatch: 4, QueueDepth: 32, BatchWindow: time.Millisecond})

	const n = 12
	results := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			x := tensor.New(1, 8)
			tensor.FillNormal(x, 1, tensor.NewRNG(uint64(100+i)))
			_, results[i] = e.Infer(x)
		}(i)
	}
	time.Sleep(2 * time.Millisecond) // let the submissions reach the queue
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	served := 0
	for i, err := range results {
		switch err {
		case nil:
			served++
		case ErrClosed, ErrOverloaded:
			// Raced Close or a momentarily full queue — acceptable losses;
			// what matters is that nothing hangs and nothing else fails.
		default:
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if served == 0 {
		t.Fatal("Close drained zero requests")
	}
	if _, err := e.Infer(tensor.New(1, 8)); err != ErrClosed {
		t.Fatalf("post-Close Infer returned %v, want ErrClosed", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestServeShapeContract pins the fixed-shape admission rule: the first
// request fixes the sample shape and later mismatches are rejected up
// front, as is a nil or empty sample.
func TestServeShapeContract(t *testing.T) {
	rng := tensor.NewRNG(41)
	m := nn.BuildMLP("cmlp", []int{8, 8, 3}, rng)
	e := New(newInferenceState(m), Config{MaxBatch: 2, BatchWindow: -1})
	defer e.Close()

	x := tensor.New(1, 8)
	tensor.FillNormal(x, 1, rng)
	if _, err := e.Infer(x); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Infer(tensor.New(1, 9)); err == nil {
		t.Fatal("mismatched sample shape admitted")
	}
	if _, err := e.Infer(tensor.New(2, 8)); err == nil {
		t.Fatal("mismatched batch dim admitted")
	}
	if _, err := e.Infer(nil); err == nil {
		t.Fatal("nil sample admitted")
	}
	// The matching shape still works after rejections.
	if _, err := e.Infer(x); err != nil {
		t.Fatal(err)
	}
}
