// Package fp16 implements IEEE 754 binary16 (half precision) conversion and
// slice helpers. SAMO stores the dense parameter tensor θ16 and the compressed
// gradient tensor ∇θ16 in half precision, exactly as mixed-precision training
// does on V100-class hardware; this package is the software stand-in for that
// storage format.
//
// Conversions use round-to-nearest-even, which matches the behaviour of
// CUDA's __float2half_rn and of the float16 casts used by deep learning
// frameworks. Arithmetic is performed in float32 (as on real hardware, where
// fp16 inputs feed fp32 accumulators in tensor cores) — only storage is 16-bit.
package fp16

import (
	"math"
	"sync/atomic"

	"github.com/sparse-dl/samo/internal/parallel"
)

// convGrain is the minimum elements per parallel chunk for the slice
// converters; conversions are a few ALU ops per element, so small slices
// are not worth dispatching.
const convGrain = 8192

// Bits is a raw IEEE 754 binary16 value.
type Bits uint16

const (
	signMask     = 0x8000
	expMask      = 0x7C00
	fracMask     = 0x03FF
	expBias      = 15
	maxExp       = 0x1F
	fracBits     = 10
	f32FracBits  = 23
	f32ExpBias   = 127
	f32InfBits   = 0x7F800000
	maxFiniteF32 = 65504.0 // largest finite fp16 value
)

// PosInf and NegInf are the half-precision infinities.
const (
	PosInf Bits = 0x7C00
	NegInf Bits = 0xFC00
	NaN    Bits = 0x7E00
)

// FromFloat32 converts a float32 to binary16 with round-to-nearest-even.
// Values whose magnitude exceeds the largest finite half (65504) become
// infinities, matching hardware cast semantics (and making overflow visible
// to the dynamic loss scaler rather than silently saturating).
func FromFloat32(f float32) Bits {
	b := math.Float32bits(f)
	sign := Bits(b>>16) & signMask
	b &= 0x7FFFFFFF

	if b >= f32InfBits {
		if b > f32InfBits {
			// NaN: preserve a quiet NaN payload bit.
			return sign | expMask | 0x0200
		}
		return sign | expMask
	}

	// Rebias exponent from float32's 127 to float16's 15.
	exp := int32(b>>f32FracBits) - f32ExpBias + expBias
	frac := b & 0x007FFFFF

	switch {
	case exp >= maxExp:
		// Overflow to infinity.
		return sign | expMask
	case exp <= 0:
		// Subnormal half (or underflow to zero). Shift the implicit leading
		// one into the fraction and round.
		if exp < -10 {
			return sign // underflows to zero even after rounding
		}
		frac |= 0x00800000 // make the implicit bit explicit
		shift := uint32(14 - exp)
		halfFrac := frac >> shift
		// Round to nearest even.
		roundBit := uint32(1) << (shift - 1)
		if frac&roundBit != 0 && (frac&(roundBit-1) != 0 || halfFrac&1 != 0) {
			halfFrac++
		}
		return sign | Bits(halfFrac)
	default:
		halfFrac := frac >> (f32FracBits - fracBits)
		// Round to nearest even on the 13 dropped bits.
		const roundBit = 1 << (f32FracBits - fracBits - 1)
		if frac&roundBit != 0 && (frac&(roundBit-1) != 0 || halfFrac&1 != 0) {
			halfFrac++
			if halfFrac == 0x400 { // fraction overflow: bump exponent
				halfFrac = 0
				exp++
				if exp >= maxExp {
					return sign | expMask
				}
			}
		}
		return sign | Bits(exp<<fracBits) | Bits(halfFrac)
	}
}

// ToFloat32 converts a binary16 value to float32 exactly (every half value is
// representable in single precision).
func ToFloat32(h Bits) float32 {
	sign := uint32(h&signMask) << 16
	exp := uint32(h&expMask) >> fracBits
	frac := uint32(h & fracMask)

	switch {
	case exp == 0:
		if frac == 0 {
			return math.Float32frombits(sign) // ±0
		}
		// Subnormal half: normalize into float32. After k left shifts the
		// implicit bit is set and the value is (1+m/2^10)·2^(-14-k).
		k := uint32(0)
		for frac&0x400 == 0 {
			frac <<= 1
			k++
		}
		frac &= fracMask
		f32exp := uint32(f32ExpBias) - 14 - k
		return math.Float32frombits(sign | f32exp<<f32FracBits | frac<<(f32FracBits-fracBits))
	case exp == maxExp:
		if frac == 0 {
			return math.Float32frombits(sign | f32InfBits)
		}
		return math.Float32frombits(sign | f32InfBits | frac<<(f32FracBits-fracBits))
	default:
		f32exp := exp - expBias + f32ExpBias
		return math.Float32frombits(sign | f32exp<<f32FracBits | frac<<(f32FracBits-fracBits))
	}
}

// Round simulates a float32 value being stored to half precision and read
// back. It is the quantization applied to every θ16 element.
func Round(f float32) float32 { return ToFloat32(FromFloat32(f)) }

// IsInf reports whether h is ±infinity.
func IsInf(h Bits) bool { return h&0x7FFF == expMask }

// IsNaN reports whether h is a NaN.
func IsNaN(h Bits) bool { return h&expMask == expMask && h&fracMask != 0 }

// IsFinite reports whether h is neither infinity nor NaN.
func IsFinite(h Bits) bool { return h&expMask != expMask }

// MaxFinite returns the largest finite half-precision value as a float32.
func MaxFinite() float32 { return maxFiniteF32 }

// convJob carries a slice conversion's arguments to the worker pool;
// recycled so the converters stay allocation-free (they back Half storage
// on mixed-precision paths).
type convJob struct {
	dst []Bits
	src []float32
	ov  atomic.Int64
}

var convJobFree parallel.Pool[convJob]

func fromChunk(ctx any, lo, hi int) {
	j := ctx.(*convJob)
	local := 0
	for i := lo; i < hi; i++ {
		h := FromFloat32(j.src[i])
		j.dst[i] = h
		if IsInf(h) || IsNaN(h) {
			local++
		}
	}
	if local > 0 {
		j.ov.Add(int64(local))
	}
}

func toChunk(ctx any, lo, hi int) {
	j := ctx.(*convJob)
	for i := lo; i < hi; i++ {
		j.src[i] = ToFloat32(j.dst[i])
	}
}

// FromSlice converts src into dst, which must have len(src) capacity.
// It returns the number of elements that overflowed to infinity, which the
// dynamic loss scaler uses to detect an overflowed step. Large slices are
// converted in parallel on the shared worker pool; the call is
// allocation-free (pooled job descriptors, no closures).
func FromSlice(dst []Bits, src []float32) (overflows int) {
	_ = dst[len(src)-1]
	j := convJobFree.Get()
	j.dst, j.src = dst, src
	j.ov.Store(0)
	parallel.Run(len(src), convGrain, j, fromChunk)
	overflows = int(j.ov.Load())
	j.dst, j.src = nil, nil
	convJobFree.Put(j)
	return overflows
}

// ToSlice converts src into dst, which must have len(src) capacity. Large
// slices are converted in parallel on the shared worker pool;
// allocation-free like FromSlice.
func ToSlice(dst []float32, src []Bits) {
	_ = dst[len(src)-1]
	j := convJobFree.Get()
	j.dst, j.src = src, dst
	parallel.Run(len(src), convGrain, j, toChunk)
	j.dst, j.src = nil, nil
	convJobFree.Put(j)
}

// AnyNonFinite reports whether any element of s is infinity or NaN.
func AnyNonFinite(s []Bits) bool {
	for _, h := range s {
		if !IsFinite(h) {
			return true
		}
	}
	return false
}
