package fp16

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTripExactValues(t *testing.T) {
	// Every value exactly representable in fp16 must survive a round trip.
	cases := []float32{0, 1, -1, 0.5, -0.5, 2, 1024, 65504, -65504, 0.25,
		1.5, 3.140625, 6.1035156e-05 /* smallest normal */, 5.9604645e-08 /* smallest subnormal */}
	for _, f := range cases {
		if got := Round(f); got != f {
			t.Errorf("Round(%g) = %g, want exact", f, got)
		}
	}
}

func TestSpecialValues(t *testing.T) {
	if !IsInf(FromFloat32(float32(math.Inf(1)))) {
		t.Error("+Inf did not convert to half +Inf")
	}
	if !IsInf(FromFloat32(float32(math.Inf(-1)))) {
		t.Error("-Inf did not convert to half -Inf")
	}
	if !IsNaN(FromFloat32(float32(math.NaN()))) {
		t.Error("NaN did not convert to half NaN")
	}
	if got := ToFloat32(PosInf); !math.IsInf(float64(got), 1) {
		t.Errorf("ToFloat32(PosInf) = %g", got)
	}
	if got := ToFloat32(NegInf); !math.IsInf(float64(got), -1) {
		t.Errorf("ToFloat32(NegInf) = %g", got)
	}
	if got := ToFloat32(NaN); !math.IsNaN(float64(got)) {
		t.Errorf("ToFloat32(NaN) = %g", got)
	}
}

func TestOverflowToInfinity(t *testing.T) {
	for _, f := range []float32{65520, 1e5, 1e20, 3.4e38} {
		h := FromFloat32(f)
		if !IsInf(h) {
			t.Errorf("FromFloat32(%g) = %#04x, want +Inf", f, uint16(h))
		}
		h = FromFloat32(-f)
		if !IsInf(h) || h&signMask == 0 {
			t.Errorf("FromFloat32(%g) = %#04x, want -Inf", -f, uint16(h))
		}
	}
	// 65504 is the largest finite half; values that round to it stay finite.
	if h := FromFloat32(65504); IsInf(h) {
		t.Error("65504 must stay finite")
	}
}

func TestUnderflowToZero(t *testing.T) {
	h := FromFloat32(1e-10)
	if ToFloat32(h) != 0 {
		t.Errorf("1e-10 should underflow to zero, got %g", ToFloat32(h))
	}
	h = FromFloat32(-1e-10)
	if got := ToFloat32(h); got != 0 || math.Signbit(float64(got)) == false {
		t.Errorf("-1e-10 should underflow to -0, got %g", got)
	}
}

func TestSubnormals(t *testing.T) {
	// 2^-24 is the smallest positive subnormal half.
	small := float32(math.Ldexp(1, -24))
	if got := Round(small); got != small {
		t.Errorf("smallest subnormal: got %g want %g", got, small)
	}
	// Halfway below the smallest subnormal rounds to zero (ties to even).
	half := float32(math.Ldexp(1, -25))
	if got := Round(half); got != 0 {
		t.Errorf("2^-25 should round to zero (tie to even), got %g", got)
	}
}

func TestRoundToNearestEven(t *testing.T) {
	// 1 + 2^-11 is exactly halfway between 1 and 1+2^-10; ties go to even (1).
	f := float32(1 + math.Ldexp(1, -11))
	if got := Round(f); got != 1 {
		t.Errorf("tie should round to even: got %g want 1", got)
	}
	// 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; even neighbour is 1+2^-9.
	f = float32(1 + 3*math.Ldexp(1, -11))
	want := float32(1 + math.Ldexp(1, -9))
	if got := Round(f); got != want {
		t.Errorf("tie should round to even: got %g want %g", got, want)
	}
}

func TestRoundIdempotent(t *testing.T) {
	// Quantizing twice must equal quantizing once, for arbitrary floats.
	f := func(f float32) bool {
		once := Round(f)
		if math.IsNaN(float64(once)) {
			return true // NaN != NaN; skip
		}
		return Round(once) == once
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoundMonotone(t *testing.T) {
	// Rounding preserves (non-strict) order for finite inputs.
	f := func(a, b float32) bool {
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return Round(a) <= Round(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoundErrorBound(t *testing.T) {
	// For normal-range values, relative error is at most 2^-11.
	f := func(f float32) bool {
		a := math.Abs(float64(f))
		if a < 6.2e-5 || a > 65000 || math.IsNaN(float64(f)) {
			return true
		}
		r := Round(f)
		return math.Abs(float64(r-f)) <= a*math.Ldexp(1, -11)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExhaustiveBitsRoundTrip(t *testing.T) {
	// Every one of the 65536 half bit patterns must round-trip through
	// float32 exactly (fp16 ⊂ fp32).
	for i := 0; i <= 0xFFFF; i++ {
		h := Bits(i)
		f := ToFloat32(h)
		if math.IsNaN(float64(f)) {
			if !IsNaN(FromFloat32(f)) {
				t.Fatalf("NaN pattern %#04x did not round-trip to a NaN", i)
			}
			continue
		}
		if got := FromFloat32(f); got != h {
			t.Fatalf("bits %#04x -> %g -> %#04x", i, f, uint16(got))
		}
	}
}

func TestSliceConversions(t *testing.T) {
	src := []float32{1, 2.5, -3, 70000, 0}
	dst := make([]Bits, len(src))
	overflows := FromSlice(dst, src)
	if overflows != 1 {
		t.Errorf("overflows = %d, want 1", overflows)
	}
	back := make([]float32, len(src))
	ToSlice(back, dst)
	for i, f := range []float32{1, 2.5, -3, float32(math.Inf(1)), 0} {
		if back[i] != f {
			t.Errorf("back[%d] = %g, want %g", i, back[i], f)
		}
	}
	if !AnyNonFinite(dst) {
		t.Error("AnyNonFinite should report the infinity")
	}
	if AnyNonFinite(dst[:3]) {
		t.Error("AnyNonFinite reported false positive")
	}
}

func TestSignPreservation(t *testing.T) {
	f := func(f float32) bool {
		if math.IsNaN(float64(f)) {
			return true
		}
		r := Round(f)
		if r == 0 {
			return true // signed zero checked elsewhere
		}
		return (r < 0) == (f < 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkFromFloat32(b *testing.B) {
	src := make([]float32, 4096)
	for i := range src {
		src[i] = float32(i) * 0.37
	}
	dst := make([]Bits, len(src))
	b.SetBytes(int64(len(src) * 4))
	for i := 0; i < b.N; i++ {
		FromSlice(dst, src)
	}
}

func BenchmarkToFloat32(b *testing.B) {
	src := make([]Bits, 4096)
	for i := range src {
		src[i] = Bits(i & 0x7BFF)
	}
	dst := make([]float32, len(src))
	b.SetBytes(int64(len(src) * 2))
	for i := 0; i < b.N; i++ {
		ToSlice(dst, src)
	}
}
