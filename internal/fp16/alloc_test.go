package fp16

import "testing"

// TestSliceConvertersZeroAlloc pins the pooled-dispatch contract on the
// parallel slice converters (they back Half storage on the mixed-precision
// paths).
func TestSliceConvertersZeroAlloc(t *testing.T) {
	// Hermetic allocation counting: AllocsPerRun tallies process-wide
	// mallocs, so a background tune-table save (triggered whenever a GEMM
	// bucket happens to freeze nearby) would show up as phantom allocs.
	// "off" makes the freeze path inert; persistence itself is pinned by
	// TestTunePersistenceRoundTripAllocFree.
	t.Setenv("SAMO_GEMM_TUNE", "off")

	src := make([]float32, 1<<16)
	dst := make([]Bits, len(src))
	back := make([]float32, len(src))
	for i := range src {
		src[i] = float32(i%1000) / 999
	}
	FromSlice(dst, src) // warm pools
	ToSlice(back, dst)
	if a := testing.AllocsPerRun(50, func() { FromSlice(dst, src) }); a != 0 {
		t.Fatalf("FromSlice allocates %.1f per call, want 0", a)
	}
	if a := testing.AllocsPerRun(50, func() { ToSlice(back, dst) }); a != 0 {
		t.Fatalf("ToSlice allocates %.1f per call, want 0", a)
	}
}
