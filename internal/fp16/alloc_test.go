package fp16

import "testing"

// TestSliceConvertersZeroAlloc pins the pooled-dispatch contract on the
// parallel slice converters (they back Half storage on the mixed-precision
// paths).
func TestSliceConvertersZeroAlloc(t *testing.T) {
	src := make([]float32, 1<<16)
	dst := make([]Bits, len(src))
	back := make([]float32, len(src))
	for i := range src {
		src[i] = float32(i%1000) / 999
	}
	FromSlice(dst, src) // warm pools
	ToSlice(back, dst)
	if a := testing.AllocsPerRun(50, func() { FromSlice(dst, src) }); a != 0 {
		t.Fatalf("FromSlice allocates %.1f per call, want 0", a)
	}
	if a := testing.AllocsPerRun(50, func() { ToSlice(back, dst) }); a != 0 {
		t.Fatalf("ToSlice allocates %.1f per call, want 0", a)
	}
}
