package sparse

import (
	"testing"

	"github.com/sparse-dl/samo/internal/tensor"
)

// The sparse fuzz targets drive the CSR kernel family against dense-masked
// MatMul references over fuzzer-chosen shapes and random masks, with the
// degenerate corners seeded (empty rows, zero nnz, (m,0)/(0,n) operands,
// fully dense patterns) and the parallel dispatch additionally pinned
// BITWISE across worker counts on every fuzzed case — the same
// equivalence-plus-determinism contract FuzzMatMulInto pins for the dense
// family. CI runs 10s smoke passes with the corpus cached.

// fuzzCSR builds a rows×cols CSR with a pseudo-random mask of roughly
// density/255 kept entries (0 → empty pattern, 255 → fully dense).
func fuzzCSR(rows, cols int, density uint8, seed uint64) (*CSR, *tensor.Tensor) {
	rng := tensor.NewRNG(seed | 1)
	d := tensor.New(rows, cols)
	dd := d.Data()
	for i := range dd {
		if rng.Float64()*255 < float64(density) {
			v := float32(rng.Float64()*2 - 1)
			if v == 0 {
				v = 0.5 // exact zeros would be dropped and change the pattern
			}
			dd[i] = v
		}
	}
	return CSRFromDense(d), d
}

func fuzzTol(k int) float64 { return 1e-5 * float64(k+1) }

// maxAbsDiffSlice is MaxAbsDiff for raw value slices (SDDMM outputs).
func maxAbsDiffSlice(a, b []float32) float64 {
	var m float64
	for i := range a {
		d := float64(a[i] - b[i])
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// FuzzSpMMInto checks C = S·B against the dense reference S_dense·B and
// pins the parallel dispatch bitwise at several worker counts.
func FuzzSpMMInto(f *testing.F) {
	f.Add(uint16(0), uint16(8), uint16(8), uint8(128), uint64(1))  // no rows
	f.Add(uint16(8), uint16(0), uint16(8), uint8(128), uint64(2))  // k=0
	f.Add(uint16(8), uint16(8), uint16(0), uint8(128), uint64(3))  // n=0
	f.Add(uint16(7), uint16(9), uint16(5), uint8(0), uint64(4))    // zero nnz
	f.Add(uint16(9), uint16(7), uint16(3), uint8(255), uint64(5))  // fully dense
	f.Add(uint16(1), uint16(129), uint16(1), uint8(25), uint64(6)) // single row/col
	f.Add(uint16(64), uint16(48), uint16(32), uint8(25), uint64(7))
	f.Add(uint16(130), uint16(65), uint16(17), uint8(12), uint64(8)) // crosses row grain
	f.Add(uint16(130), uint16(65), uint16(17), uint8(0), uint64(9))  // empty pattern, many rows
	f.Add(uint16(0), uint16(0), uint16(0), uint8(0), uint64(10))     // empty pattern, empty dims
	f.Fuzz(func(t *testing.T, rr, cr, nr uint16, density uint8, seed uint64) {
		rows, cols, n := int(rr%144), int(cr%144), int(nr%48)
		m, dense := fuzzCSR(rows, cols, density, seed)
		b := randDense(cols, n, seed+1)
		want := tensor.MatMul(dense, b)

		got := tensor.New(rows, n)
		got.Fill(42) // Into must fully overwrite
		m.SpMMInto(got, b)
		if d := tensor.MaxAbsDiff(got, want); d > fuzzTol(cols) {
			t.Fatalf("SpMMInto(%dx%dx%d, %d nnz) differs from dense by %g", rows, cols, n, m.NNZ(), d)
		}

		defer tensor.SetWorkers(tensor.SetWorkers(1))
		ref := got.Clone()
		for _, w := range []int{2, 3, 8} {
			tensor.SetWorkers(w)
			m.SpMMInto(got, b)
			if i, ok := bitwiseEqualSlice(got.Data(), ref.Data()); !ok {
				t.Fatalf("workers=%d: SpMMInto differs from 1-worker result at %d", w, i)
			}
		}
	})
}

// FuzzSpMMTInto checks the transposed-CSR SpMM C = B·Sᵀ — the sparse FC
// forward/input-gradient product — against tensor.MatMulT(B, S_dense).
func FuzzSpMMTInto(f *testing.F) {
	f.Add(uint16(0), uint16(8), uint16(8), uint8(128), uint64(1))
	f.Add(uint16(8), uint16(0), uint16(8), uint8(128), uint64(2))
	f.Add(uint16(8), uint16(8), uint16(0), uint8(128), uint64(3))
	f.Add(uint16(7), uint16(9), uint16(5), uint8(0), uint64(4))
	f.Add(uint16(9), uint16(7), uint16(3), uint8(255), uint64(5))
	f.Add(uint16(1), uint16(129), uint16(1), uint8(25), uint64(6))
	f.Add(uint16(64), uint16(48), uint16(32), uint8(25), uint64(7))
	f.Add(uint16(130), uint16(65), uint16(17), uint8(12), uint64(8))
	f.Add(uint16(130), uint16(65), uint16(17), uint8(0), uint64(9)) // empty pattern, many rows
	f.Add(uint16(0), uint16(0), uint16(0), uint8(0), uint64(10))    // empty pattern, empty dims
	f.Fuzz(func(t *testing.T, rr, cr, nr uint16, density uint8, seed uint64) {
		rows, cols, n := int(rr%144), int(cr%144), int(nr%48)
		m, dense := fuzzCSR(rows, cols, density, seed)
		b := randDense(n, cols, seed+1)
		want := tensor.MatMulT(b, dense) // (n, rows)

		got := tensor.New(n, rows)
		got.Fill(42)
		m.SpMMTInto(got, b)
		if d := tensor.MaxAbsDiff(got, want); d > fuzzTol(cols) {
			t.Fatalf("SpMMTInto(%dx%dx%d, %d nnz) differs from dense by %g", n, cols, rows, m.NNZ(), d)
		}

		defer tensor.SetWorkers(tensor.SetWorkers(1))
		ref := got.Clone()
		for _, w := range []int{2, 3, 8} {
			tensor.SetWorkers(w)
			m.SpMMTInto(got, b)
			if i, ok := bitwiseEqualSlice(got.Data(), ref.Data()); !ok {
				t.Fatalf("workers=%d: SpMMTInto differs from 1-worker result at %d", w, i)
			}
		}
	})
}

// FuzzSDDMMInto checks the sampled product against (A·Bᵀ) restricted to the
// pattern, in both overwrite and accumulate forms.
func FuzzSDDMMInto(f *testing.F) {
	f.Add(uint16(0), uint16(8), uint16(8), uint8(128), uint64(1), false)
	f.Add(uint16(8), uint16(0), uint16(8), uint8(128), uint64(2), true)  // k... cols=0
	f.Add(uint16(8), uint16(8), uint16(0), uint8(128), uint64(3), false) // k=0 dot
	f.Add(uint16(7), uint16(9), uint16(5), uint8(0), uint64(4), true)
	f.Add(uint16(9), uint16(7), uint16(3), uint8(255), uint64(5), false)
	f.Add(uint16(64), uint16(48), uint16(32), uint8(25), uint64(6), true)
	f.Add(uint16(130), uint16(65), uint16(17), uint8(12), uint64(7), false)
	f.Add(uint16(130), uint16(65), uint16(17), uint8(0), uint64(8), true) // empty pattern, many rows
	f.Add(uint16(0), uint16(0), uint16(0), uint8(0), uint64(9), false)    // empty pattern, empty dims
	f.Fuzz(func(t *testing.T, rr, cr, kr uint16, density uint8, seed uint64, accumulate bool) {
		rows, cols, k := int(rr%144), int(cr%144), int(kr%48)
		m, _ := fuzzCSR(rows, cols, density, seed)
		a := randDense(rows, k, seed+1)
		b := randDense(cols, k, seed+2)
		dense := tensor.MatMulT(a, b) // (rows, cols)

		want := make([]float32, m.NNZ())
		got := make([]float32, m.NNZ())
		p := 0
		for i := 0; i < m.Rows; i++ {
			for q := m.RowPtr[i]; q < m.RowPtr[i+1]; q++ {
				want[p] = dense.At(i, int(m.ColIdx[q]))
				if accumulate {
					got[p] = float32(p%5) - 2
					want[p] += got[p]
				}
				p++
			}
		}
		seedVals := append([]float32(nil), got...)
		m.SDDMMInto(got, a, b, accumulate)
		if d := maxAbsDiffSlice(got, want); d > fuzzTol(k) {
			t.Fatalf("SDDMMInto(%dx%d k=%d acc=%v, %d nnz) differs from dense by %g",
				rows, cols, k, accumulate, m.NNZ(), d)
		}

		defer tensor.SetWorkers(tensor.SetWorkers(1))
		ref := append([]float32(nil), got...)
		for _, w := range []int{2, 3, 8} {
			tensor.SetWorkers(w)
			copy(got, seedVals)
			m.SDDMMInto(got, a, b, accumulate)
			if i, ok := bitwiseEqualSlice(got, ref); !ok {
				t.Fatalf("workers=%d: SDDMMInto differs from 1-worker result at %d", w, i)
			}
		}
	})
}
