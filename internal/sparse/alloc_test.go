package sparse

import (
	"testing"

	"github.com/sparse-dl/samo/internal/fp16"
	"github.com/sparse-dl/samo/internal/tensor"
)

// TestCompressExpandZeroAlloc pins the perf contract on SAMO's two
// primitives: they run on every layer's gradient every microbatch, so they
// must not allocate in steady state (pooled parallel dispatch only).
func TestCompressExpandZeroAlloc(t *testing.T) {
	// Hermetic allocation counting: AllocsPerRun tallies process-wide
	// mallocs, so a background tune-table save (triggered whenever a GEMM
	// bucket happens to freeze nearby) would show up as phantom allocs.
	// "off" makes the freeze path inert; persistence itself is pinned by
	// TestTunePersistenceRoundTripAllocFree.
	t.Setenv("SAMO_GEMM_TUNE", "off")

	const n = 1 << 18
	mask := NewMask(n)
	rng := tensor.NewRNG(11)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.1 {
			mask.Set(i)
		}
	}
	ix := NewIndex(mask)
	dense := make([]float32, n)
	comp := make([]float32, ix.NNZ())
	// Warm the job free list and the worker pool.
	ix.Compress(comp, dense)
	ix.Expand(dense, comp)

	if a := testing.AllocsPerRun(50, func() { ix.Compress(comp, dense) }); a != 0 {
		t.Fatalf("Compress allocates %.1f per call, want 0", a)
	}
	if a := testing.AllocsPerRun(50, func() { ix.Expand(dense, comp) }); a != 0 {
		t.Fatalf("Expand allocates %.1f per call, want 0", a)
	}

	// The fp16 twins sit on the same per-layer gradient path (∇θ16) and
	// carry the same contract.
	denseH := make([]fp16.Bits, n)
	compH := make([]fp16.Bits, ix.NNZ())
	ix.CompressHalf(compH, denseH)
	ix.ExpandHalf(denseH, compH)
	if a := testing.AllocsPerRun(50, func() { ix.CompressHalf(compH, denseH) }); a != 0 {
		t.Fatalf("CompressHalf allocates %.1f per call, want 0", a)
	}
	if a := testing.AllocsPerRun(50, func() { ix.ExpandHalf(denseH, compH) }); a != 0 {
		t.Fatalf("ExpandHalf allocates %.1f per call, want 0", a)
	}
}

// TestSparseKernelsZeroAlloc pins the sparse training kernels — SpMMInto,
// the transposed SpMMTInto, SDDMMInto and the cached-transpose Gather
// refresh — at zero steady-state allocations: since PR 5 they sit on the
// pruned FC layers' per-microbatch hot path, under the same contract as the
// dense GEMM family (pooled jobs, caller buffers).
func TestSparseKernelsZeroAlloc(t *testing.T) {
	t.Setenv("SAMO_GEMM_TUNE", "off") // hermetic: see TestCompressExpandZeroAlloc

	w, _ := randMaskedCSR(128, 96, 0.1, 5)
	wt, perm := w.TransposePerm()
	x := randDense(64, 96, 6)   // forward operand (batch, in)
	dy := randDense(64, 128, 7) // gradient operand (batch, out)
	xT := tensor.Transpose(x)   // (in, batch) for SpMM/SDDMM
	dyT := tensor.Transpose(dy) // (out, batch)
	y := tensor.New(64, 128)    // SpMMT output
	dx := tensor.New(64, 96)    // transposed SpMMT output
	yT := tensor.New(128, 64)   // SpMM output
	grad := make([]float32, w.NNZ())

	// Warm the job free lists and the worker pool.
	w.SpMMTInto(y, x)
	wt.SpMMTInto(dx, dy)
	w.SpMMInto(yT, xT)
	w.SDDMMInto(grad, dyT, xT, true)
	Gather(wt.Val, w.Val, perm)

	if a := testing.AllocsPerRun(50, func() { w.SpMMTInto(y, x) }); a != 0 {
		t.Errorf("SpMMTInto allocates %.1f per call, want 0", a)
	}
	if a := testing.AllocsPerRun(50, func() { wt.SpMMTInto(dx, dy) }); a != 0 {
		t.Errorf("transposed SpMMTInto allocates %.1f per call, want 0", a)
	}
	if a := testing.AllocsPerRun(50, func() { w.SpMMInto(yT, xT) }); a != 0 {
		t.Errorf("SpMMInto allocates %.1f per call, want 0", a)
	}
	if a := testing.AllocsPerRun(50, func() { w.SDDMMInto(grad, dyT, xT, true) }); a != 0 {
		t.Errorf("SDDMMInto allocates %.1f per call, want 0", a)
	}
	if a := testing.AllocsPerRun(50, func() { Gather(wt.Val, w.Val, perm) }); a != 0 {
		t.Errorf("Gather allocates %.1f per call, want 0", a)
	}
}
