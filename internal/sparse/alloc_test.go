package sparse

import (
	"testing"

	"github.com/sparse-dl/samo/internal/fp16"
	"github.com/sparse-dl/samo/internal/tensor"
)

// TestCompressExpandZeroAlloc pins the perf contract on SAMO's two
// primitives: they run on every layer's gradient every microbatch, so they
// must not allocate in steady state (pooled parallel dispatch only).
func TestCompressExpandZeroAlloc(t *testing.T) {
	// Hermetic allocation counting: AllocsPerRun tallies process-wide
	// mallocs, so a background tune-table save (triggered whenever a GEMM
	// bucket happens to freeze nearby) would show up as phantom allocs.
	// "off" makes the freeze path inert; persistence itself is pinned by
	// TestTunePersistenceRoundTripAllocFree.
	t.Setenv("SAMO_GEMM_TUNE", "off")

	const n = 1 << 18
	mask := NewMask(n)
	rng := tensor.NewRNG(11)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.1 {
			mask.Set(i)
		}
	}
	ix := NewIndex(mask)
	dense := make([]float32, n)
	comp := make([]float32, ix.NNZ())
	// Warm the job free list and the worker pool.
	ix.Compress(comp, dense)
	ix.Expand(dense, comp)

	if a := testing.AllocsPerRun(50, func() { ix.Compress(comp, dense) }); a != 0 {
		t.Fatalf("Compress allocates %.1f per call, want 0", a)
	}
	if a := testing.AllocsPerRun(50, func() { ix.Expand(dense, comp) }); a != 0 {
		t.Fatalf("Expand allocates %.1f per call, want 0", a)
	}

	// The fp16 twins sit on the same per-layer gradient path (∇θ16) and
	// carry the same contract.
	denseH := make([]fp16.Bits, n)
	compH := make([]fp16.Bits, ix.NNZ())
	ix.CompressHalf(compH, denseH)
	ix.ExpandHalf(denseH, compH)
	if a := testing.AllocsPerRun(50, func() { ix.CompressHalf(compH, denseH) }); a != 0 {
		t.Fatalf("CompressHalf allocates %.1f per call, want 0", a)
	}
	if a := testing.AllocsPerRun(50, func() { ix.ExpandHalf(denseH, compH) }); a != 0 {
		t.Fatalf("ExpandHalf allocates %.1f per call, want 0", a)
	}
}
