package sparse

import (
	"fmt"
	"math/bits"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Sparse/dense execution crossover. The sparsity literature's consistent
// finding (Hoefler et al. 2021; the paper's Figure 1) is that sparse kernels
// beat dense ones only above a density-dependent threshold: below it, the
// dense kernel's register blocking and contiguous streaming outweigh the
// flop savings. Which side of the threshold a layer sits on depends on the
// machine, the product shape AND the pattern density, so — following the
// GEMM autotuner in internal/tensor/autotune.go — the decision is probed at
// runtime per (shape bucket, density band) and frozen.
//
// Unlike the GEMM candidates, the two execution paths are NOT bitwise
// identical (they sum different terms in different orders), so a frozen
// bucket never re-probes: flipping the winner mid-training would perturb
// results. The probe phase itself is a deterministic alternation (choice by
// call count, not timing), so two runs diverge only after their freezes —
// and per-path results remain bitwise-identical at every worker count.
// Runs that need a machine-independent path can pin one with SetXover
// ("sparse"/"dense") or the SAMO_SPARSE_XOVER environment variable.

// XoverChoice is one execution path of a sparse-or-dense product.
type XoverChoice uint8

const (
	// XoverSparse runs the CSR kernel (SpMMT/SpMM).
	XoverSparse XoverChoice = iota
	// XoverDense runs the dense GEMM against a masked-dense materialization.
	XoverDense
)

func (c XoverChoice) String() string {
	if c == XoverDense {
		return "dense"
	}
	return "sparse"
}

// xoverProbeRuns is how many timed samples each path gets before a bucket
// freezes; minima are compared, as in the GEMM tuner (noise only adds).
const xoverProbeRuns = 3

// XoverOp identifies which product of a sparse layer a decision is for.
// Forward and input-gradient products tune in separate buckets even at
// identical shapes — the same reasoning as the GEMM tuner's variant key:
// their dense fallbacks are different kernels (A·Bᵀ vs A·B) with different
// packing costs, and a square layer would otherwise pool their timings
// into one bucket and freeze a winner that is wrong for one of them.
type XoverOp uint8

const (
	// XoverOpForward is the y = x·Wᵀ product.
	XoverOpForward XoverOp = iota
	// XoverOpBackward is the dx = dy·W product.
	XoverOpBackward
)

// xoverKey buckets a decision by op, ceil-log2 of each product dimension
// and the density band — ceil-log2 of 1/density — so 50%, 75%, 90%, 95%
// and 99% sparse patterns land in distinct bands while shapes within a
// power of two share a decision.
type xoverKey struct {
	op             XoverOp
	mb, kb, nb, db uint8
}

func xoverLog2(n int) uint8 {
	if n <= 1 {
		return 0
	}
	return uint8(bits.Len(uint(n - 1)))
}

// densityBand returns ceil(log2(full/nnz)) clamped to a byte: band 0 is
// fully dense, each further band halves the density.
func densityBand(nnz, full int) uint8 {
	if nnz <= 0 || full <= nnz {
		return 0
	}
	return xoverLog2((full + nnz - 1) / nnz)
}

// XoverEntry is one bucket's probe state. chosen is -1 while probing and
// the winning XoverChoice afterwards; steady-state reads are one atomic
// load.
type XoverEntry struct {
	chosen atomic.Int32

	mu   sync.Mutex
	best [2]float64 // min ns per unit of work per path
	recs [2]int
	runs [2]int
}

// Decided returns the frozen choice, or (_, false) while probing.
func (e *XoverEntry) Decided() (XoverChoice, bool) {
	if c := e.chosen.Load(); c >= 0 {
		return XoverChoice(c), true
	}
	return XoverSparse, false
}

// nextProbe picks the least-probed path — a deterministic alternation.
func (e *XoverEntry) nextProbe() XoverChoice {
	e.mu.Lock()
	c := XoverSparse
	if e.runs[XoverDense] < e.runs[XoverSparse] {
		c = XoverDense
	}
	e.runs[c]++
	e.mu.Unlock()
	return c
}

// Record stores one probe timing, normalized by the product's nominal work
// (the dense-equivalent m·k·n — both paths must share a unit, and a log2
// bucket spans shapes differing ~8x in it), and freezes the winner once
// both paths have xoverProbeRuns samples.
func (e *XoverEntry) Record(c XoverChoice, d time.Duration, work int) {
	if d < 1 {
		d = 1
	}
	if work < 1 {
		work = 1
	}
	v := float64(d) / float64(work)
	e.mu.Lock()
	if e.recs[c] == 0 || v < e.best[c] {
		e.best[c] = v
	}
	e.recs[c]++
	if e.chosen.Load() < 0 && e.recs[XoverSparse] >= xoverProbeRuns && e.recs[XoverDense] >= xoverProbeRuns {
		win := XoverSparse
		if e.best[XoverDense] < e.best[XoverSparse] {
			win = XoverDense
		}
		e.chosen.Store(int32(win))
		// A freeze in this process is the one event worth persisting;
		// disk-loaded entries arrive already frozen and never reach here.
		xoverDirty.Store(true)
		scheduleXoverSave()
	}
	e.mu.Unlock()
}

var xoverTable struct {
	mu sync.RWMutex
	m  map[xoverKey]*XoverEntry
}

// xoverForce: -1 probes per bucket (auto); otherwise every decision returns
// the forced XoverChoice.
var xoverForce atomic.Int32

func init() {
	xoverForce.Store(-1)
	switch os.Getenv("SAMO_SPARSE_XOVER") {
	case "sparse":
		xoverForce.Store(int32(XoverSparse))
	case "dense":
		xoverForce.Store(int32(XoverDense))
	}
}

// SetXover pins every crossover decision to "sparse" or "dense", or
// restores per-bucket probing with "auto". It returns the previous mode so
// tests and benchmarks can scope the override. SAMO_SPARSE_XOVER sets the
// initial mode.
func SetXover(mode string) (prev string, err error) {
	switch p := xoverForce.Load(); {
	case p == int32(XoverSparse):
		prev = "sparse"
	case p == int32(XoverDense):
		prev = "dense"
	default:
		prev = "auto"
	}
	switch mode {
	case "auto":
		xoverForce.Store(-1)
	case "sparse":
		xoverForce.Store(int32(XoverSparse))
	case "dense":
		xoverForce.Store(int32(XoverDense))
	default:
		return prev, fmt.Errorf("sparse: SetXover(%q): want auto, sparse or dense", mode)
	}
	return prev, nil
}

// ResetXover clears all frozen decisions (tests and benchmarks re-probing)
// and drops any pending persistence — decisions that no longer exist must
// not be flushed over the on-disk table.
func ResetXover() {
	xoverTable.mu.Lock()
	xoverTable.m = nil
	xoverTable.mu.Unlock()
	xoverDirty.Store(false)
}

// XoverDecide resolves the execution path for one sparse-vs-dense product
// of shape (m,k,n) whose sparse operand stores nnz of full elements. It
// returns the bucket entry, the path to run NOW, and whether this call is a
// probe the caller must time and report back via entry.Record. A forced
// mode, a degenerate pattern (nnz 0: nothing to multiply densely for) and a
// frozen bucket all return probe=false with a nil entry or the frozen one.
func XoverDecide(op XoverOp, m, k, n, nnz, full int) (e *XoverEntry, c XoverChoice, probe bool) {
	if f := xoverForce.Load(); f >= 0 {
		return nil, XoverChoice(f), false
	}
	if nnz <= 0 {
		return nil, XoverSparse, false
	}
	key := xoverKey{op, xoverLog2(m), xoverLog2(k), xoverLog2(n), densityBand(nnz, full)}
	xoverTable.mu.RLock()
	e = xoverTable.m[key]
	xoverTable.mu.RUnlock()
	if e == nil {
		xoverTable.mu.Lock()
		if e = xoverTable.m[key]; e == nil {
			if xoverTable.m == nil {
				xoverTable.m = make(map[xoverKey]*XoverEntry)
			}
			e = &XoverEntry{}
			e.chosen.Store(-1)
			xoverTable.m[key] = e
		}
		xoverTable.mu.Unlock()
	}
	if c, ok := e.Decided(); ok {
		return e, c, false
	}
	return e, e.nextProbe(), true
}
