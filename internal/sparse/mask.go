// Package sparse implements the sparsity substrate of the SAMO reproduction:
// pruning masks, the shared linearized index tensors that SAMO's compressed
// model states are built on (Section III-B of the paper), the gather/scatter
// "compress" and "expand" primitives (Section III-C), and reference CSR
// spMM/SDDMM kernels standing in for Sputnik/cuSPARSE.
package sparse

import "fmt"

// Mask is a bitset over the linearized (1-D view) elements of a parameter
// tensor: bit i set means parameter i is *unpruned* (non-zero). The paper
// stores only the indices of unpruned parameters; Mask is the intermediate
// representation produced by pruning algorithms.
type Mask struct {
	n    int
	bits []uint64
}

// NewMask returns an all-pruned (empty) mask over n elements.
func NewMask(n int) *Mask {
	return &Mask{n: n, bits: make([]uint64, (n+63)/64)}
}

// FullMask returns a mask with every element unpruned.
func FullMask(n int) *Mask {
	m := NewMask(n)
	for i := range m.bits {
		m.bits[i] = ^uint64(0)
	}
	if r := n % 64; r != 0 && len(m.bits) > 0 {
		m.bits[len(m.bits)-1] = (1 << r) - 1
	}
	return m
}

// Len returns the number of elements the mask covers.
func (m *Mask) Len() int { return m.n }

// Set marks element i unpruned.
func (m *Mask) Set(i int) {
	m.check(i)
	m.bits[i/64] |= 1 << (i % 64)
}

// Clear marks element i pruned.
func (m *Mask) Clear(i int) {
	m.check(i)
	m.bits[i/64] &^= 1 << (i % 64)
}

// Get reports whether element i is unpruned.
func (m *Mask) Get(i int) bool {
	m.check(i)
	return m.bits[i/64]&(1<<(i%64)) != 0
}

func (m *Mask) check(i int) {
	if i < 0 || i >= m.n {
		panic(fmt.Sprintf("sparse: mask index %d out of range [0,%d)", i, m.n))
	}
}

// Count returns the number of unpruned elements.
func (m *Mask) Count() int {
	c := 0
	for _, w := range m.bits {
		c += popcount(w)
	}
	return c
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Sparsity returns the pruned fraction p = 1 - count/n.
func (m *Mask) Sparsity() float64 {
	if m.n == 0 {
		return 0
	}
	return 1 - float64(m.Count())/float64(m.n)
}

// Indices returns the sorted linearized indices of unpruned elements as
// int32 — the paper's `ind` tensor (32-bit suffices for the largest models
// in existence, as the paper notes).
func (m *Mask) Indices() []int32 {
	idx := make([]int32, 0, m.Count())
	for w, word := range m.bits {
		for word != 0 {
			b := word & (-word)
			i := w*64 + trailingZeros(word)
			idx = append(idx, int32(i))
			word ^= b
		}
	}
	return idx
}

func trailingZeros(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// HammingDistance returns the number of positions where the two masks
// disagree, normalized by length — the convergence metric of the Early-Bird
// Ticket algorithm (You et al.).
func HammingDistance(a, b *Mask) float64 {
	if a.n != b.n {
		panic("sparse: HammingDistance on masks of different lengths")
	}
	if a.n == 0 {
		return 0
	}
	d := 0
	for i := range a.bits {
		d += popcount(a.bits[i] ^ b.bits[i])
	}
	return float64(d) / float64(a.n)
}

// Clone returns a deep copy of the mask.
func (m *Mask) Clone() *Mask {
	b := make([]uint64, len(m.bits))
	copy(b, m.bits)
	return &Mask{n: m.n, bits: b}
}

// FromIndices builds a mask over n elements with the given unpruned indices.
func FromIndices(n int, idx []int32) *Mask {
	m := NewMask(n)
	for _, i := range idx {
		m.Set(int(i))
	}
	return m
}

// Apply zeroes the pruned elements of data in place (the "fill zeros
// explicitly in the dense matrix" operation that keeps θ16 dense).
func (m *Mask) Apply(data []float32) {
	if len(data) != m.n {
		panic(fmt.Sprintf("sparse: Apply on %d elements with %d-element mask", len(data), m.n))
	}
	for i := range data {
		if !m.Get(i) {
			data[i] = 0
		}
	}
}
