package sparse

import (
	"reflect"
	"testing"

	"github.com/sparse-dl/samo/internal/tensor"
)

// shrinkFixture is a 3×4 CSR with a known pattern:
//
//	[ 1 0 2 0 ]
//	[ 0 3 0 4 ]
//	[ 5 0 0 6 ]
func shrinkFixture() *CSR {
	d := tensor.FromSlice([]float32{1, 0, 2, 0, 0, 3, 0, 4, 5, 0, 0, 6}, 3, 4)
	return CSRFromDense(d)
}

func TestCSRShrinkToGolden(t *testing.T) {
	m := shrinkFixture()
	valHead, colHead := &m.Val[0], &m.ColIdx[0]
	// Drop stored positions 1 (value 2) and 4 (value 5).
	m.ShrinkTo([]bool{true, false, true, true, false, true})
	if m.NNZ() != 4 {
		t.Fatalf("NNZ = %d, want 4", m.NNZ())
	}
	if got := m.RowPtr; !reflect.DeepEqual(got, []int32{0, 1, 3, 4}) {
		t.Fatalf("RowPtr = %v", got)
	}
	if got := m.ColIdx; !reflect.DeepEqual(got, []int32{0, 1, 3, 3}) {
		t.Fatalf("ColIdx = %v", got)
	}
	if got := m.Val; !reflect.DeepEqual(got, []float32{1, 3, 4, 6}) {
		t.Fatalf("Val = %v", got)
	}
	// In place: the compacted slices still head the original backing arrays.
	if &m.Val[0] != valHead || &m.ColIdx[0] != colHead {
		t.Fatal("ShrinkTo reallocated Val/ColIdx backing arrays")
	}
}

func TestCSRShrinkToLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched keep length did not panic")
		}
	}()
	shrinkFixture().ShrinkTo([]bool{true})
}

func TestTransposePermIntoMatchesFresh(t *testing.T) {
	m := shrinkFixture()
	tr, perm := m.TransposePerm()
	trColHead := &tr.ColIdx[0]
	m.ShrinkTo([]bool{true, false, true, true, false, true})
	perm = m.TransposePermInto(tr, perm)

	want, wantPerm := m.TransposePerm()
	if !reflect.DeepEqual(tr.RowPtr, want.RowPtr) ||
		!reflect.DeepEqual(tr.ColIdx, want.ColIdx) ||
		!reflect.DeepEqual(tr.Val, want.Val) {
		t.Fatalf("refreshed transpose %v/%v/%v differs from fresh %v/%v/%v",
			tr.RowPtr, tr.ColIdx, tr.Val, want.RowPtr, want.ColIdx, want.Val)
	}
	if !reflect.DeepEqual(perm, wantPerm) {
		t.Fatalf("refreshed perm %v differs from fresh %v", perm, wantPerm)
	}
	if &tr.ColIdx[0] != trColHead {
		t.Fatal("TransposePermInto reallocated the transpose's backing arrays")
	}
	// The perm invariant the cached-transpose refresh relies on.
	for p := range tr.Val {
		if tr.Val[p] != m.Val[perm[p]] {
			t.Fatalf("t.Val[%d] != m.Val[perm[%d]]", p, p)
		}
	}
}

func TestCSRShrinkToEmptyThenKernels(t *testing.T) {
	m := shrinkFixture()
	m.ShrinkTo(make([]bool, 6)) // drop everything
	if m.NNZ() != 0 {
		t.Fatalf("NNZ = %d, want 0", m.NNZ())
	}
	if got := m.RowPtr; !reflect.DeepEqual(got, []int32{0, 0, 0, 0}) {
		t.Fatalf("RowPtr = %v", got)
	}

	// Satellite sweep: a fully-pruned pattern must flow through every
	// kernel, writing zeros — not panic or divide by zero.
	b := tensor.New(4, 2)
	b.Fill(3)
	c := tensor.New(3, 2)
	c.Fill(42)
	m.SpMMInto(c, b)
	for i, v := range c.Data() {
		if v != 0 {
			t.Fatalf("SpMMInto on empty pattern: c[%d] = %g, want 0", i, v)
		}
	}

	bt := tensor.New(5, 4)
	bt.Fill(2)
	ct := tensor.New(5, 3)
	ct.Fill(42)
	m.SpMMTInto(ct, bt)
	for i, v := range ct.Data() {
		if v != 0 {
			t.Fatalf("SpMMTInto on empty pattern: c[%d] = %g, want 0", i, v)
		}
	}

	a := tensor.New(3, 7)
	bb := tensor.New(4, 7)
	m.SDDMMInto(nil, a, bb, false) // len(dstVal) == NNZ == 0

	tr := m.Transpose()
	if tr.NNZ() != 0 || tr.Rows != 4 || tr.Cols != 3 {
		t.Fatalf("empty transpose = %dx%d nnz %d", tr.Rows, tr.Cols, tr.NNZ())
	}
	if ids := m.LinearIDs(); len(ids) != 0 {
		t.Fatalf("LinearIDs on empty pattern = %v", ids)
	}
}

func TestDensityBandAndXoverEmptyPattern(t *testing.T) {
	if got := densityBand(0, 1024); got != 0 {
		t.Fatalf("densityBand(0, 1024) = %d, want 0 (no division by zero)", got)
	}
	if got := densityBand(0, 0); got != 0 {
		t.Fatalf("densityBand(0, 0) = %d, want 0", got)
	}
	e, c, probe := XoverDecide(XoverOpForward, 8, 8, 8, 0, 64)
	if e != nil || c != XoverSparse || probe {
		t.Fatalf("XoverDecide(nnz=0) = (%v, %v, %v), want (nil, sparse, false)", e, c, probe)
	}
}

func TestIndexCloneIndependence(t *testing.T) {
	base := NewIndex(maskOf(8, 1, 3, 5, 7))
	c := base.Clone()
	if !reflect.DeepEqual(c.IDs(), base.IDs()) || c.FullLen() != base.FullLen() {
		t.Fatal("clone does not match original")
	}
	c.ShrinkTo([]bool{true, false, true, false})
	if got := c.IDs(); !reflect.DeepEqual(got, []int32{1, 5}) {
		t.Fatalf("clone ids after shrink = %v, want [1 5]", got)
	}
	if got := base.IDs(); !reflect.DeepEqual(got, []int32{1, 3, 5, 7}) {
		t.Fatalf("shrinking the clone mutated the original: %v", got)
	}
}

func TestIndexShrinkToInPlace(t *testing.T) {
	ix := NewIndex(maskOf(10, 0, 2, 4, 6, 8))
	head := &ix.IDs()[0]
	ix.ShrinkTo([]bool{false, true, true, false, true})
	if got := ix.IDs(); !reflect.DeepEqual(got, []int32{2, 4, 8}) {
		t.Fatalf("ids = %v, want [2 4 8]", got)
	}
	if ix.FullLen() != 10 {
		t.Fatalf("FullLen changed to %d", ix.FullLen())
	}
	if &ix.IDs()[0] != head {
		t.Fatal("ShrinkTo reallocated the id array")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched keep length did not panic")
		}
	}()
	ix.ShrinkTo([]bool{true})
}

func maskOf(n int, set ...int) *Mask {
	m := NewMask(n)
	for _, i := range set {
		m.Set(i)
	}
	return m
}
